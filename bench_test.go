// Benchmarks regenerating the paper's tables and figures (see
// DESIGN.md §5 for the experiment index). Each benchmark runs its
// experiment at a reduced scale and reports the headline numbers as
// custom metrics, printing the full table with -v via b.Log.
//
// Run one artifact:
//
//	go test -bench=BenchmarkFig8 -benchtime=1x -v
//
// Scale up via PMP_SCALE=default or PMP_SCALE=full (hours).
//
// Micro-benchmarks of the core data structures follow at the bottom.
package pmp_test

import (
	"os"
	"strconv"
	"testing"

	"pmp/internal/bench"
	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

// benchScale selects the experiment scale (PMP_SCALE=quick|default|full).
func benchScale() bench.Scale {
	switch os.Getenv("PMP_SCALE") {
	case "default":
		return bench.DefaultScale()
	case "full":
		return bench.FullScale()
	default:
		return bench.QuickScale()
	}
}

// runTable executes an experiment once per benchmark iteration and
// logs the rendered table.
func runTable(b *testing.B, f func() *bench.Table) *bench.Table {
	b.Helper()
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = f()
	}
	b.Log("\n" + t.String())
	return t
}

// reportRowMetric extracts a float cell from a table row by row label
// and reports it as a benchmark metric.
func reportRowMetric(b *testing.B, t *bench.Table, rowPrefix string, col int, metric string) {
	for _, row := range t.Rows {
		if row[0] == rowPrefix && col < len(row) {
			if v, err := strconv.ParseFloat(row[col], 64); err == nil {
				b.ReportMetric(v, metric)
			}
			return
		}
	}
}

// --- One benchmark per paper artifact ---

// BenchmarkTableI regenerates Table I (PCR/PDR per feature).
func BenchmarkTableI(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableI(scale) })
}

// BenchmarkFig2 regenerates Fig 2 (pattern frequency concentration).
func BenchmarkFig2(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig2(scale) })
}

// BenchmarkFig4 regenerates Fig 4 (ICDD per clustering feature).
func BenchmarkFig4(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig4(scale) })
}

// BenchmarkFig5 regenerates Fig 5 (pattern heat maps).
func BenchmarkFig5(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig5(scale) })
}

// BenchmarkStorage regenerates Tables II/III/V (storage overhead).
func BenchmarkStorage(b *testing.B) {
	runTable(b, bench.Storage)
}

// BenchmarkFig8 regenerates Fig 8 (single-core NIPC of five prefetchers).
func BenchmarkFig8(b *testing.B) {
	scale := benchScale()
	t := runTable(b, func() *bench.Table { return bench.Fig8(bench.NewRunner(scale)) })
	reportRowMetric(b, t, "pmp", 5, "pmp-NIPC")
	reportRowMetric(b, t, "bingo", 5, "bingo-NIPC")
}

// BenchmarkFig9 regenerates Fig 9 (coverage and accuracy per level).
func BenchmarkFig9(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig9(bench.NewRunner(scale)) })
}

// BenchmarkFig10 regenerates Fig 10 (useful/useless prefetch volumes).
func BenchmarkFig10(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig10(bench.NewRunner(scale)) })
}

// BenchmarkNMT regenerates the §V-D normalized memory traffic numbers.
func BenchmarkNMT(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.NMT(bench.NewRunner(scale)) })
}

// BenchmarkTableVIII regenerates Table VIII (Design B ways sweep).
func BenchmarkTableVIII(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableVIII(bench.NewRunner(scale)) })
}

// BenchmarkExtraction regenerates the §V-E2 AFE/ANE/ARE comparison.
func BenchmarkExtraction(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Extraction(bench.NewRunner(scale)) })
}

// BenchmarkMultiFeature regenerates the §V-E3 structure comparison.
func BenchmarkMultiFeature(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.MultiFeature(bench.NewRunner(scale)) })
}

// BenchmarkTableIX regenerates Table IX (pattern length sweep).
func BenchmarkTableIX(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableIX(bench.NewRunner(scale)) })
}

// BenchmarkTableXOffsetWidth regenerates Table X left (trigger width).
func BenchmarkTableXOffsetWidth(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableXOffsetWidth(bench.NewRunner(scale)) })
}

// BenchmarkTableXCounterSize regenerates Table X right (counter width).
func BenchmarkTableXCounterSize(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableXCounterSize(bench.NewRunner(scale)) })
}

// BenchmarkTableXI regenerates Table XI (monitoring range sweep).
func BenchmarkTableXI(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.TableXI(bench.NewRunner(scale)) })
}

// BenchmarkFig12Bandwidth regenerates Fig 12a (bandwidth sensitivity).
func BenchmarkFig12Bandwidth(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig12Bandwidth(bench.NewRunner(scale)) })
}

// BenchmarkFig12LLC regenerates Fig 12b (LLC size sensitivity).
func BenchmarkFig12LLC(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig12LLC(bench.NewRunner(scale)) })
}

// BenchmarkFig13 regenerates Fig 13 (4-core mixes).
func BenchmarkFig13(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Fig13(bench.NewRunner(scale)) })
}

// --- Micro-benchmarks of the core machinery ---

// BenchmarkPMPTrain measures PMP's per-access training+prediction cost.
func BenchmarkPMPTrain(b *testing.B) {
	p := core.New(core.DefaultConfig())
	src := trace.NewStream("s", 1, 1<<20, trace.DefaultStreamParams())
	recs := trace.Collect(src, 1<<16).Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := recs[i&(len(recs)-1)]
		p.Train(prefetch.Access{PC: r.PC, Addr: r.Addr})
		p.Issue(8)
	}
}

// BenchmarkCounterVectorMerge measures the pattern-merge primitive.
func BenchmarkCounterVectorMerge(b *testing.B) {
	cv := mem.NewCounterVector(64, 5)
	pat := mem.BitVectorOf(64, 0, 1, 2, 3, 8, 16, 31, 63)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.Merge(pat)
	}
}

// BenchmarkAnchor measures bit-vector anchoring.
func BenchmarkAnchor(b *testing.B) {
	v := mem.BitVectorOf(64, 3, 7, 12, 40, 63)
	for i := 0; i < b.N; i++ {
		_ = v.Anchor(i & 63)
	}
}

// BenchmarkSimulator measures end-to-end simulation throughput
// (records/op covers a full demand access through the hierarchy).
func BenchmarkSimulator(b *testing.B) {
	recs := trace.Collect(trace.NewStream("s", 1, 1<<17, trace.DefaultStreamParams()), 0)
	cfg := sim.DefaultConfig()
	cfg.Warmup = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := sim.NewSystem(cfg, core.New(core.DefaultConfig()))
		res := sys.Run(recs)
		b.ReportMetric(float64(res.Instructions), "instructions/op")
	}
}

// BenchmarkAblations runs the extension ablations (halving, PB resume).
func BenchmarkAblations(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Ablations(bench.NewRunner(scale)) })
}

// BenchmarkRelated runs the related-work prefetcher comparison (§VI).
func BenchmarkRelated(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Related(bench.NewRunner(scale)) })
}

// BenchmarkPlacement runs the §V-B placement comparison (PMP@L1 vs
// original Bingo@LLC).
func BenchmarkPlacement(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Placement(bench.NewRunner(scale)) })
}

// BenchmarkThresholds runs the AFE threshold sweep extension.
func BenchmarkThresholds(b *testing.B) {
	scale := benchScale()
	runTable(b, func() *bench.Table { return bench.Thresholds(bench.NewRunner(scale)) })
}
