module pmp

go 1.22
