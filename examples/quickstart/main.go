// Quickstart: build a PMP prefetcher, train it on a handful of spatial
// patterns, and watch it predict — no simulator involved.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func main() {
	// PMP with the paper's default configuration: 4KB regions, dual
	// pattern tables, AFE extraction, ~4.3KB of state.
	cfg := core.DefaultConfig()
	pmp := core.New(cfg)
	fmt.Printf("PMP configured: %.1f KB of state (paper Table III: ~4.3 KB)\n\n",
		cfg.Storage().TotalBytes()/1024)

	// Teach it a pattern: a loop that touches offsets +1, +2 and +3
	// after entering each 4KB region at offset 0.
	pc := uint64(0x400100)
	addr := func(region uint64, offset int) mem.Addr {
		return mem.Addr(region*mem.PageBytes + uint64(offset)*mem.LineBytes)
	}
	for region := uint64(0); region < 24; region++ {
		for _, off := range []int{0, 1, 2, 3} {
			pmp.Train(prefetch.Access{PC: pc, Addr: addr(region, off)})
			pmp.Issue(64) // drain any in-training predictions
		}
		// A line of the region leaves the L1: accumulation closes and
		// the pattern is merged into the counter-vector tables.
		pmp.OnEvict(addr(region, 0))
	}
	fmt.Printf("trained on %d region patterns\n", pmp.Stats().PatternsMerged)

	// Now touch a region PMP has never seen. The trigger access alone
	// is enough: the merged pattern predicts the rest of the region.
	fresh := uint64(1_000_000)
	pmp.Train(prefetch.Access{PC: pc, Addr: addr(fresh, 0)})
	fmt.Printf("\ntrigger access at region %d, offset 0 -> prefetches:\n", fresh)
	for _, r := range pmp.Issue(64) {
		fmt.Printf("  line %#x (region offset %2d) -> %s\n",
			uint64(r.Addr), r.Addr.PageOffset(), r.Level)
	}
	fmt.Println("\nNote: offset 1 fills L2C, not L1D — it shares the PC Pattern")
	fmt.Println("Table's coarse group 0 with the trigger, so arbitration rule 3")
	fmt.Println("downgrades it (paper Fig 6e).")
}
