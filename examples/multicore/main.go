// multicore runs a heterogeneous 4-core mix (one trace per MPKI class
// plus a stream) with per-core PMP prefetchers sharing the LLC and two
// DRAM channels — a single-mix slice of the paper's Fig 13.
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"math"

	"pmp/internal/bench"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

func main() {
	cfg := sim.DefaultConfig()
	cfg.DRAM.Channels = 2 // Table IV: 8GB, 2 channels for the 4-core runs
	cfg.Warmup = 100_000
	cfg.Measure = 400_000

	// Half-low/half-high MPKI mix (paper Table VII).
	byClass := trace.ByClass(trace.Suite())
	mix := []trace.Spec{
		byClass[trace.LowMPKI][0],
		byClass[trace.LowMPKI][1],
		byClass[trace.HighMPKI][0],
		byClass[trace.HighMPKI][1],
	}
	const records = 300_000

	run := func(pfName string) []sim.Result {
		pfs := make([]prefetch.Prefetcher, 4)
		srcs := make([]trace.Source, 4)
		for i := range pfs {
			pfs[i] = bench.NewPrefetcher(pfName)
			srcs[i] = mix[i].New(records)
		}
		return sim.NewMulticore(cfg, pfs).Run(srcs)
	}

	base := run(bench.NameNone)
	fmt.Println("4-core heterogeneous mix (2 low-MPKI + 2 high-MPKI traces):")
	for _, name := range []string{bench.NamePMP, bench.NamePMPLimit, bench.NameBingo} {
		res := run(name)
		var logSum float64
		fmt.Printf("\n%s:\n", name)
		for i := range res {
			n := res[i].IPC() / base[i].IPC()
			logSum += math.Log(n)
			fmt.Printf("  core %d (%-18s) IPC %.3f -> NIPC %.3f\n",
				i, res[i].Trace, res[i].IPC(), n)
		}
		fmt.Printf("  geomean NIPC %.3f\n", math.Exp(logSum/4))
	}
	fmt.Println("\nPMP-Limit caps low-level prefetch degree at 1, trading coverage")
	fmt.Println("for bandwidth — the paper's answer to 4-core contention (§V-G).")
}
