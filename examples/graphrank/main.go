// graphrank runs a Ligra-like graph-analytics workload (CSR edge-array
// bursts + power-law property lookups) against all five evaluated
// prefetchers on the paper's Table IV system — a one-workload slice of
// Fig 8.
//
//	go run ./examples/graphrank
package main

import (
	"fmt"

	"pmp/internal/bench"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

func main() {
	mk := func() trace.Source {
		p := trace.DefaultGraphParams()
		return trace.NewGraph("pagerank-like", 7, 300_000, p)
	}
	cfg := sim.DefaultConfig()
	cfg.Warmup = 200_000

	base := sim.NewSystem(cfg, bench.NewPrefetcher(bench.NameNone)).Run(mk())
	fmt.Printf("baseline: IPC %.3f, LLC MPKI %.1f\n\n", base.IPC(), base.MPKI())
	fmt.Printf("%-10s %8s %8s %12s %14s %10s\n",
		"prefetcher", "NIPC", "NMT", "L1D useful", "L1D accuracy", "storage")

	for _, name := range bench.EvalNames() {
		pf := bench.NewPrefetcher(name)
		res := sim.NewSystem(cfg, pf).Run(mk())
		fmt.Printf("%-10s %8.3f %7.0f%% %12d %13.1f%% %7.1fKB\n",
			name,
			res.IPC()/base.IPC(),
			100*float64(res.DRAM.Requests)/float64(base.DRAM.Requests),
			res.L1D.UsefulPrefetch,
			100*res.L1D.Accuracy(),
			float64(pf.StorageBits())/8/1024)
	}
	fmt.Println("\nThe edge-array bursts are spatially dense, so region-pattern")
	fmt.Println("prefetchers cover them; the power-law property lookups are the")
	fmt.Println("irregular residue no prefetcher reaches (paper §V-B, Ligra bars).")
}
