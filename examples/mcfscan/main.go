// mcfscan reproduces the paper's §III MCF discussion end-to-end: a
// workload that walks big arrays backward through ->pred pointers
// enters every region at its top offset, producing the big-trigger-
// offset patterns PMP clusters perfectly. The example shows the heat
// map and then measures how much PMP recovers on a full system
// simulation.
//
//	go run ./examples/mcfscan
package main

import (
	"fmt"

	"pmp/internal/analysis"
	"pmp/internal/bench"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

func main() {
	mk := func() trace.Source {
		return trace.NewBackward("mcf-like", 42, 300_000, trace.DefaultBackwardParams())
	}

	// 1. The pattern structure (paper Fig 5a): trigger-offset-indexed
	// heat map of the captured patterns. The top rows fill leftward —
	// backward walks — and a diagonal slash marks the local window.
	corpus := analysis.Capture(mk(), 0)
	fmt.Printf("captured %d patterns; trigger-offset heat map (rows = trigger, cols = offset):\n\n",
		len(corpus.Patterns))
	fmt.Print(analysis.RenderHeatMap(analysis.HeatMap(corpus, analysis.FeatTriggerOffset)))

	// 2. The ICDD story (paper Fig 4): trigger offsets cluster these
	// patterns far better than PC+Address.
	fmt.Printf("\nICDD by feature (lower = tighter clusters):\n")
	for _, f := range []analysis.Feature{analysis.FeatTriggerOffset, analysis.FeatPC, analysis.FeatPCAddress} {
		fmt.Printf("  %-26s %6.3f\n", f, analysis.ICDD(corpus, f))
	}

	// 3. End to end: simulate the paper's Table IV system with and
	// without PMP.
	cfg := sim.DefaultConfig()
	cfg.Warmup = 200_000
	base := sim.NewSystem(cfg, bench.NewPrefetcher(bench.NameNone)).Run(mk())
	pmp := sim.NewSystem(cfg, bench.NewPrefetcher(bench.NamePMP)).Run(mk())

	fmt.Printf("\nsimulation (Table IV system):\n")
	fmt.Printf("  baseline: IPC %.3f, L1D misses %d\n", base.IPC(), base.L1D.DemandMisses)
	fmt.Printf("  with PMP: IPC %.3f, L1D misses %d, L1D accuracy %.1f%%\n",
		pmp.IPC(), pmp.L1D.DemandMisses, 100*pmp.L1D.Accuracy())
	fmt.Printf("  speedup: %.2fx — backward pointer walks serialize misses, so\n",
		pmp.IPC()/base.IPC())
	fmt.Println("  region-deep prefetching collapses the dependent-miss chain.")
}
