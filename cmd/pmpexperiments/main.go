// Command pmpexperiments runs the paper-reproduction experiment
// harness and prints each table/figure in DESIGN.md's experiment index.
//
// All requested experiments are submitted to a shared sweep scheduler
// up front (see docs/sweep.md): their per-trace simulations execute on
// one bounded worker pool, identical jobs are deduplicated across
// experiments, and tables print in index order as their jobs complete.
// With -store the per-job results persist to an append-only JSONL
// store, and -resume skips every job already completed there, so an
// interrupted run (Ctrl-C flushes the store before exit) picks up
// where it left off. Rendered tables are byte-identical to a serial
// run at the same scale.
//
// With -remote the per-trace simulations are submitted to a running
// pmpsweepd coordinator instead of the in-process pool: the
// coordinator deduplicates, shards and leases them across its
// registered workers, and this process polls for the records and
// renders the same tables. The results store then lives with the
// coordinator, so -store/-resume/-workers are rejected client-side.
//
// Usage:
//
//	pmpexperiments [-scale quick|default|full] [-exp ID[,ID...]] [-list]
//	               [-manifest traces.json] [-store file.jsonl [-resume]]
//	               [-workers N] [-job-timeout d] [-retries N] [-csv dir]
//	               [-remote coordinator:port [-auth-token secret]]
//
// With -manifest the external-suite manifest's converted traces (see
// docs/traces.md and `pmptrace convert`) register next to the
// synthetic suite and the EXTW experiment — the full prefetcher
// registry over those traces — joins the index.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pmp/internal/bench"
	"pmp/internal/prof"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// experiment is one registry entry: an experiment ID, its description
// for -list, and the table builder (bound to a runner/scale in main).
type experiment struct {
	id   string
	desc string
	run  func() *bench.Table
}

// registry returns the experiment index in DESIGN.md order. ext is
// the external trace set loaded from -manifest; when non-empty it
// appends the EXTW experiment over those traces.
func registry(r *bench.Runner, scale bench.Scale, ext []trace.Spec) []experiment {
	index := experiments(r, scale)
	if len(ext) > 0 {
		index = append(index, experiment{
			"EXTW", "extension: external workloads from -manifest",
			func() *bench.Table { return bench.External(r.WithSpecs(ext)) },
		})
	}
	return index
}

func experiments(r *bench.Runner, scale bench.Scale) []experiment {
	return []experiment{
		{"T1", "Table I: pattern collision/duplicate rates", func() *bench.Table { return bench.TableI(scale) }},
		{"F2", "Fig 2: pattern frequency concentration", func() *bench.Table { return bench.Fig2(scale) }},
		{"F4", "Fig 4: ICDD per clustering feature", func() *bench.Table { return bench.Fig4(scale) }},
		{"F5", "Fig 5: pattern heat maps", func() *bench.Table { return bench.Fig5(scale) }},
		{"T3", "Tables II/III/V: storage overhead", bench.Storage},
		{"F8", "Fig 8: single-core NIPC", func() *bench.Table { return bench.Fig8(r) }},
		{"F9", "Fig 9: coverage and accuracy", func() *bench.Table { return bench.Fig9(r) }},
		{"F10", "Fig 10: useful/useless prefetches", func() *bench.Table { return bench.Fig10(r) }},
		{"NMT", "§V-D: normalized memory traffic", func() *bench.Table { return bench.NMT(r) }},
		{"T8", "Table VIII: Design B ways sweep", func() *bench.Table { return bench.TableVIII(r) }},
		{"EXT", "§V-E2: extraction schemes", func() *bench.Table { return bench.Extraction(r) }},
		{"MF", "§V-E3: multi-feature structures", func() *bench.Table { return bench.MultiFeature(r) }},
		{"T9", "Table IX: pattern length sweep", func() *bench.Table { return bench.TableIX(r) }},
		{"T10a", "Table X: trigger offset width sweep", func() *bench.Table { return bench.TableXOffsetWidth(r) }},
		{"T10b", "Table X: counter size sweep", func() *bench.Table { return bench.TableXCounterSize(r) }},
		{"T11", "Table XI: monitoring range sweep", func() *bench.Table { return bench.TableXI(r) }},
		{"F12a", "Fig 12a: bandwidth sensitivity", func() *bench.Table { return bench.Fig12Bandwidth(r) }},
		{"F12b", "Fig 12b: LLC size sensitivity", func() *bench.Table { return bench.Fig12LLC(r) }},
		{"F13", "Fig 13: 4-core performance", func() *bench.Table { return bench.Fig13(r) }},
		{"ABL", "extension: PMP mechanism ablations", func() *bench.Table { return bench.Ablations(r) }},
		{"REL", "extension: related-work prefetchers (§VI)", func() *bench.Table { return bench.Related(r) }},
		{"PLC", "§V-B: PMP@L1 vs original Bingo@LLC placement", func() *bench.Table { return bench.Placement(r) }},
		{"INC", "extension: inclusion policy and hierarchy depth", func() *bench.Table { return bench.Inclusion(r) }},
		{"THR", "extension: AFE threshold sweep", func() *bench.Table { return bench.Thresholds(r) }},
		{"HETS", "extension: heterogeneous stacking (PMP@L1D + Bingo deeper)", func() *bench.Table { return bench.HETS(r) }},
		{"HETM", "extension: 8-core heterogeneous trace mixes", func() *bench.Table { return bench.HETM(r) }},
		{"HETH", "extension: 2-/3-/4-level hierarchy depth", func() *bench.Table { return bench.HETH(r) }},
		{"HETB", "extension: stacked prefetchers vs DRAM bandwidth", func() *bench.Table { return bench.HETB(r) }},
	}
}

// expResult carries one finished experiment back to the printer.
type expResult struct {
	tbl *bench.Table // nil when the sweep was interrupted
	dur time.Duration
}

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: quick, default or full")
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all); see -list")
	listFlag := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each experiment as <dir>/<ID>.csv")
	manifestPath := flag.String("manifest", "", "external-suite manifest of converted traces (docs/traces.md); enables the EXTW experiment")
	storePath := flag.String("store", "", "persist per-job results to this append-only JSONL store")
	resumeFlag := flag.Bool("resume", false, "skip jobs already completed in -store (requires -store)")
	remoteAddr := flag.String("remote", "", "submit jobs to a running pmpsweepd coordinator at this address")
	authToken := flag.String("auth-token", "", "shared-secret bearer token for a -remote coordinator started with -auth-token")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 30*time.Minute, "per-job attempt timeout (0 = none)")
	retries := flag.Int("retries", 2, "attempts per job before quarantine")
	progressFlag := flag.Bool("progress", true, "report sweep progress on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmpexperiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.QuickScale()
	case "default":
		scale = bench.DefaultScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	var extSpecs []trace.Spec
	if *manifestPath != "" {
		extSpecs, err = bench.LoadExternal(*manifestPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmpexperiments:", err)
			os.Exit(1)
		}
	}

	// The registry is built twice: once against a throwaway runner for
	// -list and -exp validation (nothing simulates until a builder
	// runs), and again below bound to the sweep-backed runner.
	index := registry(bench.NewRunner(scale), scale, extSpecs)
	if *listFlag {
		for _, e := range index {
			fmt.Printf("%-5s %s\n", e.id, e.desc)
		}
		return
	}

	known := map[string]bool{}
	for _, e := range index {
		known[e.id] = true
	}
	want := map[string]bool{}
	if *expFlag != "" {
		var unknown []string
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			// "HET" selects the whole heterogeneous-hierarchy family.
			if id == "HET" {
				for _, h := range []string{"HETS", "HETM", "HETH", "HETB"} {
					want[h] = true
				}
				continue
			}
			if !known[id] {
				unknown = append(unknown, id)
				continue
			}
			want[id] = true
		}
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "unknown experiment id(s): %s (see -list for valid IDs)\n",
				strings.Join(unknown, ", "))
			os.Exit(2)
		}
		if len(want) == 0 {
			fmt.Fprintln(os.Stderr, "-exp selected no experiments (see -list)")
			os.Exit(2)
		}
	}

	if *resumeFlag && *storePath == "" {
		fmt.Fprintln(os.Stderr, "-resume requires -store")
		os.Exit(2)
	}
	if *remoteAddr != "" && (*storePath != "" || *resumeFlag || *workers != 0) {
		fmt.Fprintln(os.Stderr, "-remote runs keep the store with the coordinator; drop -store/-resume/-workers")
		os.Exit(2)
	}
	var store *sweep.Store
	if *storePath != "" {
		store, err = sweep.OpenStore(*storePath, *resumeFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmpexperiments:", err)
			os.Exit(1)
		}
		if *resumeFlag {
			fmt.Fprintf(os.Stderr, "sweep: resuming from %s (%d records", *storePath, store.Loaded())
			if n := store.Skipped(); n > 0 {
				fmt.Fprintf(os.Stderr, ", %d malformed lines skipped", n)
			}
			fmt.Fprintln(os.Stderr, ")")
		}
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	start := time.Now()
	var sw *sweep.Sweep
	var r *bench.Runner
	if *remoteAddr != "" {
		rc := remote.NewClient(*remoteAddr)
		rc.Token = *authToken
		if _, err := rc.Status(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "pmpexperiments: coordinator %s: %v\n", *remoteAddr, err)
			os.Exit(1)
		}
		r = bench.NewRunnerRemote(ctx, scale, rc)
		if *progressFlag {
			go remoteProgress(ctx, rc)
		}
	} else {
		opts := sweep.Options{
			Workers:     *workers,
			MaxAttempts: *retries,
			JobTimeout:  *jobTimeout,
			Store:       store,
		}
		if *progressFlag {
			opts.Progress = sweep.WriterProgress(os.Stderr)
		}
		sw = sweep.New(ctx, opts)
		r = bench.NewRunnerWith(scale, sw)
	}
	index = registry(r, scale, extSpecs)

	var selected []experiment
	for _, e := range index {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		selected = append(selected, e)
	}

	// Launch every selected experiment up front; each builder submits
	// its simulations to the shared sweep and assembles its table when
	// they complete. Tables print in index order as they become ready.
	results := make([]chan expResult, len(selected))
	for i, e := range selected {
		ch := make(chan expResult, 1)
		results[i] = ch
		go func() {
			t0 := time.Now()
			defer func() {
				if p := recover(); p != nil {
					if _, ok := p.(sweep.Interrupted); ok {
						ch <- expResult{nil, time.Since(t0)}
						return
					}
					panic(p)
				}
			}()
			ch <- expResult{e.run(), time.Since(t0)}
		}()
	}

	interrupted := false
	for i, e := range selected {
		res := <-results[i]
		if res.tbl == nil {
			interrupted = true
			break
		}
		fmt.Println(res.tbl)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			} else {
				path := filepath.Join(*csvDir, e.id+".csv")
				if err := os.WriteFile(path, []byte(res.tbl.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				}
			}
		}
		fmt.Printf("-- %s completed in %v --\n\n", e.id, res.dur.Round(time.Millisecond))
	}

	if sw != nil {
		m := sw.Close()
		if store != nil {
			fmt.Fprintf(os.Stderr, "sweep: store %s: %d new, %d cached, %d quarantined (manifest: %s)\n",
				store.Path(), m.Completed, m.Cached, m.Quarantined, store.ManifestPath())
		}
	}
	if interrupted {
		if *remoteAddr != "" {
			fmt.Fprintln(os.Stderr, "interrupted: submitted jobs keep running on the coordinator; re-run -remote to re-attach")
		} else {
			fmt.Fprintln(os.Stderr, "interrupted: results store flushed; re-run with -resume to continue")
		}
		os.Exit(130)
	}
	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}

// remoteProgress prints one coordinator status line every 5s while a
// -remote run is in flight.
func remoteProgress(ctx context.Context, rc *remote.Client) {
	tick := time.NewTicker(5 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			st, err := rc.Status(ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "remote: status: %v\n", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "remote: %d/%d done · %d leased · %d workers",
				st.Done, st.Submitted, st.Leased, len(st.Workers))
			if st.Cached > 0 {
				fmt.Fprintf(os.Stderr, " · %d cached", st.Cached)
			}
			if st.Quarantined > 0 {
				fmt.Fprintf(os.Stderr, " · %d quarantined", st.Quarantined)
			}
			if st.Expired > 0 {
				fmt.Fprintf(os.Stderr, " · %d expired leases", st.Expired)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
}
