// Command pmpexperiments runs the paper-reproduction experiment
// harness and prints each table/figure in DESIGN.md's experiment index.
//
// Usage:
//
//	pmpexperiments [-scale quick|default|full] [-exp ID[,ID...]] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pmp/internal/bench"
	"pmp/internal/prof"
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: quick, default or full")
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all); see -list")
	listFlag := flag.Bool("list", false, "list experiment IDs and exit")
	csvDir := flag.String("csv", "", "also write each experiment as <dir>/<ID>.csv")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmpexperiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	ids := map[string]string{
		"T1":   "Table I: pattern collision/duplicate rates",
		"F2":   "Fig 2: pattern frequency concentration",
		"F4":   "Fig 4: ICDD per clustering feature",
		"F5":   "Fig 5: pattern heat maps",
		"T3":   "Tables II/III/V: storage overhead",
		"F8":   "Fig 8: single-core NIPC",
		"F9":   "Fig 9: coverage and accuracy",
		"F10":  "Fig 10: useful/useless prefetches",
		"NMT":  "§V-D: normalized memory traffic",
		"T8":   "Table VIII: Design B ways sweep",
		"EXT":  "§V-E2: extraction schemes",
		"MF":   "§V-E3: multi-feature structures",
		"T9":   "Table IX: pattern length sweep",
		"T10a": "Table X: trigger offset width sweep",
		"T10b": "Table X: counter size sweep",
		"T11":  "Table XI: monitoring range sweep",
		"F12a": "Fig 12a: bandwidth sensitivity",
		"F12b": "Fig 12b: LLC size sensitivity",
		"F13":  "Fig 13: 4-core performance",
		"ABL":  "extension: PMP mechanism ablations",
		"REL":  "extension: related-work prefetchers (§VI)",
		"PLC":  "§V-B: PMP@L1 vs original Bingo@LLC placement",
		"THR":  "extension: AFE threshold sweep",
	}
	if *listFlag {
		for _, id := range []string{"T1", "F2", "F4", "F5", "T3", "F8", "F9", "F10", "NMT",
			"T8", "EXT", "MF", "T9", "T10a", "T10b", "T11", "F12a", "F12b", "F13", "ABL", "REL", "PLC", "THR"} {
			fmt.Printf("%-5s %s\n", id, ids[id])
		}
		return
	}

	var scale bench.Scale
	switch *scaleFlag {
	case "quick":
		scale = bench.QuickScale()
	case "default":
		scale = bench.DefaultScale()
	case "full":
		scale = bench.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	start := time.Now()
	r := bench.NewRunner(scale)
	run := func(id string, f func() *bench.Table) {
		if len(want) > 0 && !want[id] {
			return
		}
		t0 := time.Now()
		tbl := f()
		fmt.Println(tbl)
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			} else {
				path := *csvDir + "/" + id + ".csv"
				if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				}
			}
		}
		fmt.Printf("-- %s completed in %v --\n\n", id, time.Since(t0).Round(time.Millisecond))
	}

	run("T1", func() *bench.Table { return bench.TableI(scale) })
	run("F2", func() *bench.Table { return bench.Fig2(scale) })
	run("F4", func() *bench.Table { return bench.Fig4(scale) })
	run("F5", func() *bench.Table { return bench.Fig5(scale) })
	run("T3", bench.Storage)
	run("F8", func() *bench.Table { return bench.Fig8(r) })
	run("F9", func() *bench.Table { return bench.Fig9(r) })
	run("F10", func() *bench.Table { return bench.Fig10(r) })
	run("NMT", func() *bench.Table { return bench.NMT(r) })
	run("T8", func() *bench.Table { return bench.TableVIII(r) })
	run("EXT", func() *bench.Table { return bench.Extraction(r) })
	run("MF", func() *bench.Table { return bench.MultiFeature(r) })
	run("T9", func() *bench.Table { return bench.TableIX(r) })
	run("T10a", func() *bench.Table { return bench.TableXOffsetWidth(r) })
	run("T10b", func() *bench.Table { return bench.TableXCounterSize(r) })
	run("T11", func() *bench.Table { return bench.TableXI(r) })
	run("F12a", func() *bench.Table { return bench.Fig12Bandwidth(r) })
	run("F12b", func() *bench.Table { return bench.Fig12LLC(r) })
	run("F13", func() *bench.Table { return bench.Fig13(scale) })
	run("ABL", func() *bench.Table { return bench.Ablations(r) })
	run("REL", func() *bench.Table { return bench.Related(r) })
	run("PLC", func() *bench.Table { return bench.Placement(r) })
	run("THR", func() *bench.Table { return bench.Thresholds(r) })

	fmt.Printf("total elapsed: %v\n", time.Since(start).Round(time.Millisecond))
}
