// Command pmpanalyze reproduces the paper's Section III pattern
// analysis on one trace or the suite: pattern collision/duplicate rates
// (Table I), frequency concentration (Fig 2), ICDD per feature (Fig 4)
// and offset heat maps (Fig 5).
//
// Usage:
//
//	pmpanalyze -trace spec06.mcf-26 -heatmap trigger
//	pmpanalyze -suite 12 -records 200000
package main

import (
	"flag"
	"fmt"
	"os"

	"pmp/internal/analysis"
	"pmp/internal/trace"
)

func main() {
	traceName := flag.String("trace", "", "single suite trace to analyze")
	suite := flag.Int("suite", 0, "analyze a representative subset of N suite traces")
	records := flag.Int("records", 200_000, "records per trace")
	heatmap := flag.String("heatmap", "", "render a heat map: trigger, pc, pcaddr, addr, pctrigger")
	flag.Parse()

	var corpus *analysis.Corpus
	switch {
	case *traceName != "":
		src, err := findTrace(*traceName, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		corpus = analysis.Capture(src, 0)
	case *suite > 0:
		var srcs []trace.Source
		for _, sp := range trace.Representative(*suite) {
			srcs = append(srcs, sp.New(*records))
		}
		corpus = analysis.CaptureAll(srcs, 0)
	default:
		fmt.Fprintln(os.Stderr, "pmpanalyze: need -trace or -suite")
		os.Exit(2)
	}

	if *heatmap != "" {
		f, err := featureByName(*heatmap)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("heat map (%s), rows = feature index, cols = offset:\n", f)
		fmt.Print(analysis.RenderHeatMap(analysis.HeatMap(corpus, f)))
		return
	}

	fmt.Printf("patterns captured: %d\n\n", len(corpus.Patterns))

	fmt.Println("Table I — collision and duplicate rates:")
	fmt.Printf("%-26s %10s %10s\n", "feature", "PCR", "PDR")
	for _, f := range analysis.Features() {
		pcr, pdr := analysis.PCRPDR(corpus, f)
		fmt.Printf("%-26s %10.1f %10.1f\n", f, pcr, pdr)
	}

	st := analysis.Frequencies(corpus, []int{10, 100, 1000})
	fmt.Printf("\nFig 2 — frequency concentration:\n")
	fmt.Printf("distinct %d of %d occurrences; %.1f%% seen once\n",
		st.Distinct, st.Occurrences, 100*st.OnceFrac)
	fmt.Printf("top-10 %.1f%%, top-100 %.1f%%, top-1000 %.1f%%\n",
		100*st.TopShare[0], 100*st.TopShare[1], 100*st.TopShare[2])

	fmt.Printf("\nFig 4 — average ICDD by clustering feature (lower = more similar):\n")
	for _, f := range analysis.Features() {
		fmt.Printf("%-26s %8.3f\n", f, analysis.ICDD(corpus, f))
	}
}

func findTrace(name string, records int) (trace.Source, error) {
	for _, sp := range trace.Suite() {
		if sp.Name == name {
			return sp.New(records), nil
		}
	}
	return nil, fmt.Errorf("pmpanalyze: unknown trace %q", name)
}

func featureByName(name string) (analysis.Feature, error) {
	switch name {
	case "trigger":
		return analysis.FeatTriggerOffset, nil
	case "pc":
		return analysis.FeatPC, nil
	case "pcaddr":
		return analysis.FeatPCAddress, nil
	case "addr":
		return analysis.FeatAddress, nil
	case "pctrigger":
		return analysis.FeatPCTrigger, nil
	default:
		return 0, fmt.Errorf("pmpanalyze: unknown feature %q", name)
	}
}
