// Command pmpsim runs a single simulation: one trace (a suite trace by
// name, a trace file, or a synthetic generator) against one prefetcher,
// and prints the measured result.
//
// Usage:
//
//	pmpsim -pf pmp -trace spec06.stream-0 -records 500000
//	pmpsim -pf bingo -file trace.pmpt
//	pmpsim -list-traces | head
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmp/internal/analysis"
	"pmp/internal/bench"
	"pmp/internal/prefetch"
	"pmp/internal/prof"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

func main() {
	pfName := flag.String("pf", "pmp", "prefetcher: a registry name (none, bingo, pmp, ...) or a variant grammar name (pmp-tw8, designb-32w, pmp-0.5-0.15, ...)")
	traceName := flag.String("trace", "spec06.stream-0", "suite trace name (see -list-traces)")
	file := flag.String("file", "", "trace file path (overrides -trace)")
	records := flag.Int("records", 500_000, "records to generate for suite traces")
	warmup := flag.Uint64("warmup", 200_000, "warm-up instructions")
	measure := flag.Uint64("measure", 0, "measured instructions (0 = rest of trace)")
	mtps := flag.Int("bandwidth", 3200, "DRAM transfer rate in MT/s")
	llcMB := flag.Int("llc", 2, "LLC size in MB")
	llcpf := flag.String("llcpf", "", "additionally attach a prefetcher at the LLC (trains on LLC accesses, fills LLC)")
	nonInclusive := flag.Bool("noninclusive", false, "make the LLC non-inclusive (no back-invalidation), as in ChampSim's default")
	noL2 := flag.Bool("no-l2", false, "run a 2-level hierarchy (private L1D directly over the LLC)")
	baseline := flag.Bool("baseline", false, "also run the non-prefetching baseline and report NIPC")
	traceLifecycle := flag.Bool("trace-lifecycle", false, "track every prefetch from issue to resolution and report timely/late/useless/redundant counts with fill-to-use slack")
	lifecycleJSONL := flag.String("lifecycle-jsonl", "", "write one JSON object per resolved prefetch lifecycle to this file (implies -trace-lifecycle)")
	topRegions := flag.Int("lifecycle-regions", 3, "hottest 4KB regions to list per prefetcher in the lifecycle report")
	listTraces := flag.Bool("list-traces", false, "list suite trace names and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmpsim:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *listTraces {
		for _, sp := range append(trace.Suite(), trace.ExtraSpecs()...) {
			fmt.Printf("%-24s %-8s %s MPKI class\n", sp.Name, sp.Family, sp.Class)
		}
		return
	}

	src, err := openSource(*file, *traceName, *records)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := sim.DefaultConfig().WithBandwidth(*mtps).WithLLCMB(*llcMB)
	cfg.Warmup = *warmup
	cfg.Measure = *measure
	cfg.NonInclusiveLLC = *nonInclusive
	if *noL2 {
		cfg.Levels = []sim.LevelSpec{
			{Cache: cfg.L1D},
			{Cache: cfg.LLC, Shared: true, Inclusive: !*nonInclusive},
		}
	}

	pf, err := buildVariant(*pfName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmpsim:", err)
		os.Exit(2)
	}
	sys := sim.NewSystem(cfg, pf)
	if *llcpf != "" {
		lp, err := buildVariant(*llcpf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmpsim:", err)
			os.Exit(2)
		}
		sys.AttachLLCPrefetcher(lp)
	}
	if *traceLifecycle || *lifecycleJSONL != "" {
		sink, flush, err := lifecycleSink(*lifecycleJSONL)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmpsim:", err)
			os.Exit(1)
		}
		sys.EnableLifecycleTracing(sink)
		defer flush()
	}
	res := sys.Run(src)
	printResult(res)
	for _, report := range analysis.Timeliness(res, *topRegions) {
		fmt.Print(report)
	}

	if *baseline {
		base := sim.NewSystem(cfg, bench.NewPrefetcher(bench.NameNone)).Run(src)
		fmt.Printf("\nbaseline IPC %.4f -> NIPC %.4f, NMT %.1f%%\n",
			base.IPC(), res.IPC()/base.IPC(),
			100*float64(res.DRAM.Requests)/float64(base.DRAM.Requests))
	}
}

// buildVariant resolves a -pf/-llcpf value through the full variant
// grammar — registry names plus parameterized experiment variants like
// "pmp-tw8" or "designb-32w" — and constructs the prefetcher.
func buildVariant(name string) (prefetch.Prefetcher, error) {
	v, err := bench.ParseVariant(name)
	if err != nil {
		return nil, fmt.Errorf("%w (known names: %s; plus variants like pmp-tw8, designb-32w, pmp-0.5-0.15)",
			err, strings.Join(bench.Names(), ", "))
	}
	return bench.BuildVariant(v)
}

// lifecycleSink returns the lifecycle event sink (nil when no JSONL
// path was given — aggregates only) plus a flush/close function.
func lifecycleSink(path string) (func(sim.LifecycleEvent), func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	sink := func(ev sim.LifecycleEvent) {
		if err := enc.Encode(ev); err != nil {
			fmt.Fprintln(os.Stderr, "pmpsim: lifecycle export:", err)
			os.Exit(1)
		}
	}
	flush := func() {
		err := w.Flush()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmpsim: lifecycle export:", err)
			os.Exit(1)
		}
	}
	return sink, flush, nil
}

func openSource(file, name string, records int) (trace.Source, error) {
	if file != "" {
		// Lazy streaming source: records decode on demand (mmap'd on
		// Linux) instead of materializing the whole trace up front. The
		// process exit releases the handle; simulation replays need the
		// source alive for its whole lifetime anyway.
		return trace.OpenFile(file)
	}
	for _, sp := range append(trace.Suite(), trace.ExtraSpecs()...) {
		if sp.Name == name {
			return sp.New(records), nil
		}
	}
	return nil, fmt.Errorf("pmpsim: unknown trace %q (try -list-traces)", name)
}

func printResult(r sim.Result) {
	fmt.Printf("trace       %s\nprefetcher  %s\n", r.Trace, r.Prefetcher)
	fmt.Printf("instructions %d, cycles %d, IPC %.4f, LLC MPKI %.2f\n",
		r.Instructions, r.Cycles, r.IPC(), r.MPKI())
	fmt.Printf("L1D: %d accesses, %d misses, useful/useless prefetch %d/%d (acc %.1f%%), late %d\n",
		r.L1D.DemandAccesses, r.L1D.DemandMisses,
		r.L1D.UsefulPrefetch, r.L1D.UselessPrefetx, 100*r.L1D.Accuracy(), r.L1D.LatePrefetch)
	fmt.Printf("L2C: %d misses, useful/useless prefetch %d/%d (acc %.1f%%)\n",
		r.L2C.DemandMisses, r.L2C.UsefulPrefetch, r.L2C.UselessPrefetx, 100*r.L2C.Accuracy())
	fmt.Printf("LLC: %d misses, useful/useless prefetch %d/%d (acc %.1f%%)\n",
		r.LLC.DemandMisses, r.LLC.UsefulPrefetch, r.LLC.UselessPrefetx, 100*r.LLC.Accuracy())
	fmt.Printf("DRAM: %d requests (%d demand, %d prefetch)\n",
		r.DRAM.Requests, r.DRAM.DemandRequests, r.DRAM.PrefetchRequests)
	fmt.Printf("prefetches issued: L1D %d, L2C %d, LLC %d (dropped: %d filtered, %d no-slot)\n",
		r.PF.Issued[1], r.PF.Issued[2], r.PF.Issued[3], r.PF.DroppedPQ, r.PF.DroppedMSH)
}
