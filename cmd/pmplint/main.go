// Command pmplint runs the repository's custom static-analysis suite
// (internal/lint) over Go package patterns, enforcing the simulator
// invariants described in docs/linting.md.
//
// Standalone use:
//
//	go run ./cmd/pmplint ./...
//	go run ./cmd/pmplint -analyzers magicgeometry,cyclemath ./internal/prefetchers/...
//	go run ./cmd/pmplint -json ./... > lint.jsonl
//
// With -json, each diagnostic is emitted as one JSON object per line
// ({"analyzer", "file", "line", "col", "message"}), for machine
// consumption (the CI lint artifact).
//
// It also speaks the cmd/go vet-tool protocol, so after `go build -o
// pmplint ./cmd/pmplint` it can run as:
//
//	go vet -vettool=$PWD/pmplint ./...
//
// Exit status is 1 (standalone) or 2 (vet mode) when diagnostics are
// reported, 0 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pmp/internal/lint"
)

func main() {
	// cmd/go probes vet tools with -V=full (build-cache identity,
	// must print "<name> version <non-devel>") and -flags (supported
	// flags as a JSON array) before invoking them on packages.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Println("pmplint version 1")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println(`[{"Name":"analyzers","Bool":false,"Usage":"comma-separated analyzers to run"}]`)
		return
	}

	var (
		analyzerList = flag.String("analyzers", "", "comma-separated analyzers to run (default: all)")
		list         = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut      = flag.Bool("json", false, "emit one JSON object per diagnostic on stdout")
	)
	flag.Parse()

	var names []string
	if *analyzerList != "" {
		names = strings.Split(*analyzerList, ",")
	}
	analyzers, err := lint.ByName(names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmplint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()

	// Vet-tool mode: cmd/go passes a single JSON config file ending in
	// ".cfg" describing one package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		found, err := lint.RunVetUnit(args[0], analyzers, os.Stderr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmplint:", err)
			os.Exit(1)
		}
		if found {
			os.Exit(2)
		}
		return
	}

	pkgs, err := lint.Load(".", args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmplint:", err)
		os.Exit(1)
	}
	diags := lint.Run(pkgs, analyzers)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			enc.Encode(jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pmplint: %d issue(s) found\n", len(diags))
		os.Exit(1)
	}
}

// jsonDiagnostic is the -json wire shape: one object per line.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}
