// Command pmpsweepd is the distributed sweep service (docs/sweep.md,
// "Distributed mode"): a coordinator that owns the job space and the
// merged results store of a sharded experiment run, and a worker mode
// that executes leased jobs on the local machine.
//
// Coordinator mode (default) serves the HTTP+JSON protocol of
// internal/sweep/remote on -listen, merging every reported record
// into the -store JSONL file. Clients submit work with
// `pmpexperiments -remote <addr>`; any number of clients can submit
// concurrently, and identical jobs are deduplicated by their
// deterministic sweep IDs. A worker that dies or stalls has its
// leased jobs re-leased to the survivors after -lease-ttl, then
// quarantined after -retries expired leases. On SIGINT/SIGTERM the
// coordinator writes the run manifest (including per-worker job
// tallies) next to the store and exits.
//
// Worker mode (-worker) registers with -connect, leases batches, runs
// them on a local sweep pool of -parallel goroutines, and streams the
// records back, heartbeating so slow jobs are not re-leased while the
// worker is alive.
//
// -canon prints the canonical resolution of a results store (last
// record per ID, sorted, timing fields zeroed); two stores that
// resolved the same jobs identically print byte-identical dumps,
// which is how scripts/distributed_smoke.sh compares a distributed
// run against its serial baseline.
//
// Usage:
//
//	pmpsweepd -listen 127.0.0.1:7077 -store runs/merged.jsonl [-resume]
//	          [-lease-ttl 60s] [-lease-max 16] [-retries 2] [-drain-grace 2s]
//	          [-auth-token secret]
//	pmpsweepd -worker -connect 127.0.0.1:7077 [-parallel N] [-name W]
//	          [-job-timeout 30m] [-retries 2] [-exit-when-drained]
//	          [-auth-token secret]
//	pmpsweepd -canon runs/merged.jsonl
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmp/internal/bench"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "coordinator listen address")
	storePath := flag.String("store", "", "merged results store (JSONL); required in coordinator mode")
	resume := flag.Bool("resume", false, "serve jobs already completed in -store without re-running them")
	leaseTTL := flag.Duration("lease-ttl", 60*time.Second, "lease lifetime without a report/heartbeat before re-leasing")
	leaseMax := flag.Int("lease-max", 16, "max jobs per lease batch")
	retries := flag.Int("retries", 2, "coordinator: lease attempts before quarantine; worker: local attempts per job")
	drainGrace := flag.Duration("drain-grace", 2*time.Second, "coordinator: quiet time after the last client contact before idle workers are told the run is over")
	authToken := flag.String("auth-token", "", "shared-secret bearer token: coordinator requires it on every endpoint; worker sends it with every request")

	workerMode := flag.Bool("worker", false, "run as a worker instead of the coordinator")
	connect := flag.String("connect", "", "worker: coordinator address to connect to")
	manifest := flag.String("manifest", "", "worker: external-suite manifest (docs/traces.md); registers its traces so manifest-named jobs resolve even without a trace_file on the wire")
	name := flag.String("name", "", "worker: label shown in /status and the manifest (default host/pid)")
	parallel := flag.Int("parallel", 0, "worker: local pool size (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 30*time.Minute, "worker: per-job attempt timeout (0 = none)")
	exitWhenDrained := flag.Bool("exit-when-drained", false, "worker: exit once the coordinator reports the run over (all jobs resolved, no client activity for -drain-grace)")

	canon := flag.String("canon", "", "print the canonical resolution of this store and exit")
	verbose := flag.Bool("v", false, "log every scheduling event")
	flag.Parse()

	logger := log.New(os.Stderr, "pmpsweepd: ", log.LstdFlags|log.Lmsgprefix)
	eventLog := func(string, ...any) {}
	if *verbose {
		eventLog = logger.Printf
	}

	switch {
	case *canon != "":
		if err := sweep.WriteCanonical(os.Stdout, *canon); err != nil {
			logger.Fatal(err)
		}
	case *workerMode:
		if *connect == "" {
			logger.Fatal("-worker requires -connect")
		}
		if *manifest != "" {
			specs, err := bench.LoadExternal(*manifest)
			if err != nil {
				logger.Fatal(err)
			}
			logger.Printf("registered %d external traces from %s", len(specs), *manifest)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := remote.RunWorker(ctx, remote.WorkerOptions{
			Coordinator:     *connect,
			Name:            *name,
			Parallel:        *parallel,
			Build:           bench.BuildJobRun,
			Token:           *authToken,
			MaxAttempts:     *retries,
			JobTimeout:      *jobTimeout,
			ExitWhenDrained: *exitWhenDrained,
			Logf:            logger.Printf,
		})
		if err != nil && ctx.Err() == nil {
			logger.Fatal(err)
		}
		logger.Printf("worker stopped: %v", err)
	default:
		if *storePath == "" {
			logger.Fatal("coordinator mode requires -store (or use -worker / -canon)")
		}
		store, err := sweep.OpenStore(*storePath, *resume)
		if err != nil {
			logger.Fatal(err)
		}
		if *resume && store.Loaded() > 0 {
			logger.Printf("resuming: %d records already in %s", store.Loaded(), *storePath)
		}
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			logger.Fatal(err)
		}
		coord := remote.NewCoordinator(remote.CoordinatorOptions{
			Store:       store,
			LeaseTTL:    *leaseTTL,
			LeaseMax:    *leaseMax,
			MaxAttempts: *retries,
			DrainGrace:  *drainGrace,
			AuthToken:   *authToken,
			Addr:        ln.Addr().String(),
			Logf:        eventLog,
		})
		srv := &http.Server{Handler: coord.Handler()}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		go func() {
			<-ctx.Done()
			shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(shctx)
		}()
		logger.Printf("coordinator listening on %s (store %s, lease TTL %v, %d attempts)",
			ln.Addr(), *storePath, *leaseTTL, *retries)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logger.Fatal(err)
		}
		st := coord.Status()
		m, err := coord.Shutdown()
		if err != nil {
			logger.Printf("shutdown: %v", err)
		}
		fmt.Fprintf(os.Stderr,
			"pmpsweepd: %d jobs (%d completed, %d cached, %d quarantined, %d deduped) via %d workers, %d expired leases (manifest: %s)\n",
			m.Submitted, m.Completed, m.Cached, m.Quarantined, m.Deduped,
			m.RemoteWorkers, st.Expired, store.ManifestPath())
	}
}
