// Command pmptrace generates synthetic workload traces and writes them
// as .pmpt files, or inspects existing trace files.
//
// Usage:
//
//	pmptrace -gen spec06.mcf-26 -records 1000000 -o mcf.pmpt
//	pmptrace -info mcf.pmpt
package main

import (
	"flag"
	"fmt"
	"os"

	"pmp/internal/trace"
)

func main() {
	gen := flag.String("gen", "", "suite trace name to generate (see pmpsim -list-traces)")
	records := flag.Int("records", 1_000_000, "records to generate")
	out := flag.String("o", "", "output file (required with -gen)")
	info := flag.String("info", "", "print summary of an existing trace file")
	flag.Parse()

	switch {
	case *info != "":
		if err := printInfo(*info); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *gen != "":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "pmptrace: -gen requires -o")
			os.Exit(2)
		}
		if err := generate(*gen, *records, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name string, records int, out string) error {
	for _, sp := range append(trace.Suite(), trace.ExtraSpecs()...) {
		if sp.Name != name {
			continue
		}
		tr := trace.Collect(sp.New(records), 0)
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", tr.Len(), out)
		return nil
	}
	return fmt.Errorf("pmptrace: unknown trace %q", name)
}

func printInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	var instr, deps uint64
	pcs := map[uint64]struct{}{}
	pages := map[uint64]struct{}{}
	for _, r := range tr.Records() {
		instr += r.Instructions()
		if r.Dep != trace.DepNone {
			deps++
		}
		pcs[r.PC] = struct{}{}
		pages[r.Addr.PageID()] = struct{}{}
	}
	fmt.Printf("name        %s\n", tr.Name())
	fmt.Printf("records     %d (%d instructions)\n", tr.Len(), instr)
	fmt.Printf("dependent   %d (%.1f%%)\n", deps, 100*float64(deps)/float64(tr.Len()))
	fmt.Printf("static PCs  %d\n", len(pcs))
	fmt.Printf("4KB pages   %d\n", len(pages))
	return nil
}
