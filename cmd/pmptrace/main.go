// Command pmptrace generates synthetic workload traces and writes them
// as .pmpt files, or inspects existing trace files.
//
// Usage:
//
//	pmptrace -gen spec06.mcf-26 -records 1000000 -o mcf.pmpt
//	pmptrace info [-verify] [-records] mcf.pmpt
//	pmptrace -info mcf.pmpt          (legacy spelling of the above)
//
// The info subcommand prints the file header (name, version, record
// count, size) and whether this platform serves it via mmap; -records
// additionally decodes every record for the distribution summary, and
// -verify round-trips the file through both the lazy FileSource and
// the buffered Read path and byte-compares the two.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmp/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "info" {
		if err := infoCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "pmptrace:", err)
			os.Exit(1)
		}
		return
	}

	gen := flag.String("gen", "", "suite trace name to generate (see pmpsim -list-traces)")
	records := flag.Int("records", 1_000_000, "records to generate")
	out := flag.String("o", "", "output file (required with -gen)")
	info := flag.String("info", "", "print summary of an existing trace file (legacy; see the info subcommand)")
	flag.Parse()

	switch {
	case *info != "":
		if err := printRecordSummary(*info); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *gen != "":
		if *out == "" {
			fmt.Fprintln(os.Stderr, "pmptrace: -gen requires -o")
			os.Exit(2)
		}
		if err := generate(*gen, *records, *out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(name string, records int, out string) error {
	for _, sp := range append(trace.Suite(), trace.ExtraSpecs()...) {
		if sp.Name != name {
			continue
		}
		tr := trace.Collect(sp.New(records), 0)
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", tr.Len(), out)
		return nil
	}
	return fmt.Errorf("pmptrace: unknown trace %q", name)
}

// infoCmd implements `pmptrace info [-verify] [-records] <file>`.
func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	verify := fs.Bool("verify", false, "cross-check the lazy (mmap/windowed) reader against the buffered reader")
	withRecords := fs.Bool("records", false, "decode all records for the distribution summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: expected exactly one trace file, got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	inf, err := trace.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("name           %s\n", inf.Name)
	fmt.Printf("format version %d\n", inf.Version)
	fmt.Printf("records        %d\n", inf.Records)
	fmt.Printf("file size      %d bytes\n", inf.SizeBytes)
	fmt.Printf("mmap eligible  %v\n", inf.MmapEligible)

	if *withRecords {
		if err := printRecordSummary(path); err != nil {
			return err
		}
	}
	if *verify {
		if err := verifyFile(path); err != nil {
			return err
		}
		fmt.Println("verify         OK (lazy and buffered readers agree)")
	}
	return nil
}

// verifyFile streams the file through the lazy FileSource and the
// buffered Read path and compares every record; the two decoders share
// no I/O machinery, so agreement certifies both.
func verifyFile(path string) error {
	src, err := trace.OpenFile(path)
	if err != nil {
		return err
	}
	defer src.Close()

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ref, err := trace.Read(f)
	if err != nil {
		return err
	}

	if src.Name() != ref.Name() {
		return fmt.Errorf("verify: name mismatch: lazy %q, buffered %q", src.Name(), ref.Name())
	}
	if src.Len() != ref.Len() {
		return fmt.Errorf("verify: record count mismatch: lazy %d, buffered %d", src.Len(), ref.Len())
	}
	for i, want := range ref.Records() {
		got, ok := src.Next()
		if !ok {
			return fmt.Errorf("verify: lazy reader ended early at record %d of %d", i, ref.Len())
		}
		if got != want {
			return fmt.Errorf("verify: record %d differs: lazy %+v, buffered %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		return fmt.Errorf("verify: lazy reader has records past %d", ref.Len())
	}
	return nil
}

func printRecordSummary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	var instr, deps uint64
	pcs := map[uint64]struct{}{}
	pages := map[uint64]struct{}{}
	for _, r := range tr.Records() {
		instr += r.Instructions()
		if r.Dep != trace.DepNone {
			deps++
		}
		pcs[r.PC] = struct{}{}
		pages[r.Addr.PageID()] = struct{}{}
	}
	fmt.Printf("name        %s\n", tr.Name())
	fmt.Printf("records     %d (%d instructions)\n", tr.Len(), instr)
	fmt.Printf("dependent   %d (%.1f%%)\n", deps, 100*float64(deps)/float64(tr.Len()))
	fmt.Printf("static PCs  %d\n", len(pcs))
	fmt.Printf("4KB pages   %d\n", len(pages))
	return nil
}
