// Command pmptrace generates synthetic workload traces, converts
// ChampSim/DPC instruction traces, and inspects trace files.
//
// Usage:
//
//	pmptrace -gen spec06.mcf-26 -records 1000000 -o mcf.pmpt
//	pmptrace convert [-o out.pmpt] [-name N] [-skip N] [-limit N]
//	                 [-family F] [-class C] [-verify] mcf.champsim.trace.xz
//	pmptrace info [-verify] [-records] mcf.pmpt
//
// The convert subcommand decodes a ChampSim/DPC-3 instruction trace
// (optionally xz- or gzip-compressed; see docs/traces.md for the field
// mapping) into a .pmpt load trace and prints the decode stats, the
// output's SHA-256, and a ready-to-paste external-manifest snippet.
//
// The info subcommand prints the file header (name, version, record
// count, size) and whether this platform serves it via mmap; -records
// additionally decodes every record for the distribution summary, and
// -verify round-trips the file through both the lazy FileSource and
// the buffered Read path and byte-compares the two. On a ChampSim
// input (by naming convention, e.g. *.champsim.trace.xz) info prints
// the instruction-stream summary instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pmp/internal/trace"
	"pmp/internal/trace/champsim"
)

func main() {
	if len(os.Args) > 1 {
		var err error
		switch os.Args[1] {
		case "info":
			err = infoCmd(os.Args[2:])
		case "convert":
			err = convertCmd(os.Args[2:])
		default:
			err = legacyMain()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "pmptrace:", err)
			os.Exit(1)
		}
		return
	}
	flag.Usage()
	os.Exit(2)
}

// legacyMain handles the flag-style spellings: -gen, and the
// deprecated -info (now the info subcommand).
func legacyMain() error {
	gen := flag.String("gen", "", "suite trace name to generate (see pmpsim -list-traces)")
	records := flag.Int("records", 1_000_000, "records to generate")
	out := flag.String("o", "", "output file (required with -gen)")
	info := flag.String("info", "", "deprecated: use `pmptrace info <file>`")
	flag.Parse()

	switch {
	case *info != "":
		// One code path: the legacy flag re-enters the subcommand.
		fmt.Fprintln(os.Stderr, "pmptrace: -info is deprecated; use `pmptrace info [-records] <file>`")
		return infoCmd([]string{"-records", *info})
	case *gen != "":
		if *out == "" {
			return fmt.Errorf("-gen requires -o")
		}
		return generate(*gen, *records, *out)
	default:
		flag.Usage()
		os.Exit(2)
		return nil
	}
}

func generate(name string, records int, out string) error {
	for _, sp := range append(trace.Suite(), trace.ExtraSpecs()...) {
		if sp.Name != name {
			continue
		}
		tr := trace.Collect(sp.New(records), 0)
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", tr.Len(), out)
		return nil
	}
	return fmt.Errorf("unknown trace %q", name)
}

// convertCmd implements `pmptrace convert [flags] <champsim-trace>`.
func convertCmd(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("o", "", "output .pmpt path (default: input base name + .pmpt)")
	name := fs.String("name", "", "trace name embedded in the output (default: derived from the input file)")
	skip := fs.Int("skip", 0, "skip the first N load records (fast-forward past initialization)")
	limit := fs.Int("limit", 0, "cap the converted records (0 = all)")
	family := fs.String("family", "external", "manifest family for the printed snippet")
	class := fs.String("class", "medium", "manifest MPKI class for the printed snippet (low|medium|high)")
	verify := fs.Bool("verify", false, "re-read the output through the lazy and buffered decoders and compare")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("convert: expected exactly one ChampSim trace file, got %d args", fs.NArg())
	}
	in := fs.Arg(0)
	if !champsim.IsTracePath(in) {
		fmt.Fprintf(os.Stderr, "pmptrace: warning: %s does not follow ChampSim naming (*.champsim.trace[.xz|.gz]); decoding anyway\n", in)
	}

	if *name == "" {
		*name = champsimBase(in)
	}
	if *out == "" {
		*out = champsimBase(in) + ".pmpt"
	}

	tr, st, err := champsim.ConvertFile(in, champsim.ConvertOptions{Name: *name, Skip: *skip, Limit: *limit})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := trace.Write(f, tr); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fmt.Printf("converted %s -> %s\n", in, *out)
	fmt.Printf("instructions   %d\n", st.Instructions)
	fmt.Printf("loads          %d (%d load instructions)\n", st.Loads, st.LoadInstrs)
	fmt.Printf("stores         %d\n", st.Stores)
	fmt.Printf("branches       %d\n", st.Branches)
	fmt.Printf("dep prev/chain %d / %d\n", st.DepPrev, st.DepChain)
	if st.ClampedGaps > 0 {
		fmt.Printf("clamped gaps   %d\n", st.ClampedGaps)
	}
	fmt.Printf("written        %d records (skip %d, limit %d)\n", tr.Len(), *skip, *limit)

	if *verify {
		if err := verifyFile(*out); err != nil {
			return err
		}
		fmt.Println("verify         OK (lazy and buffered readers agree)")
	}

	sum, err := trace.FileSHA256(*out)
	if err != nil {
		return err
	}
	fmt.Printf("sha256         %s\n", sum)
	snippet, err := json.MarshalIndent(trace.ExternalSpec{
		Name:    *name,
		Family:  trace.Family(*family),
		Class:   trace.MPKIClass(*class),
		Path:    filepath.Base(*out),
		SHA256:  sum,
		Records: tr.Len(),
	}, "  ", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("manifest entry (add to the \"traces\" list, path relative to the manifest):\n  %s\n", snippet)
	return nil
}

// champsimBase strips the compression and ChampSim naming suffixes:
// "dir/astar.champsim.trace.xz" -> "astar".
func champsimBase(path string) string {
	base := filepath.Base(path)
	if champsim.ForPath(base) != nil {
		base = strings.TrimSuffix(base, filepath.Ext(base))
	}
	base = strings.TrimSuffix(base, ".trace")
	base = strings.TrimSuffix(base, ".champsim")
	return base
}

// infoCmd implements `pmptrace info [-verify] [-records] <file>`.
func infoCmd(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	verify := fs.Bool("verify", false, "cross-check the lazy (mmap/windowed) reader against the buffered reader")
	withRecords := fs.Bool("records", false, "decode all records for the distribution summary")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("info: expected exactly one trace file, got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	if champsim.IsTracePath(path) {
		return champsimInfo(path)
	}

	inf, err := trace.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("name           %s\n", inf.Name)
	fmt.Printf("format version %d\n", inf.Version)
	fmt.Printf("records        %d\n", inf.Records)
	fmt.Printf("file size      %d bytes\n", inf.SizeBytes)
	fmt.Printf("mmap eligible  %v\n", inf.MmapEligible)

	if *withRecords {
		if err := printRecordSummary(path); err != nil {
			return err
		}
	}
	if *verify {
		if err := verifyFile(path); err != nil {
			return err
		}
		fmt.Println("verify         OK (lazy and buffered readers agree)")
	}
	return nil
}

// champsimInfo decodes a ChampSim instruction trace and prints the
// stream summary (`pmptrace info` on a not-yet-converted input).
func champsimInfo(path string) error {
	rc, err := champsim.Open(path)
	if err != nil {
		return err
	}
	defer rc.Close()
	d := champsim.NewDecoder(rc)
	for {
		if _, err := d.Next(); err != nil {
			if err == io.EOF {
				break
			}
			return err
		}
	}
	st := d.Stats()
	fmt.Printf("format         ChampSim instruction trace (convert with `pmptrace convert`)\n")
	fmt.Printf("instructions   %d\n", st.Instructions)
	fmt.Printf("loads          %d (%d load instructions)\n", st.Loads, st.LoadInstrs)
	fmt.Printf("stores         %d\n", st.Stores)
	fmt.Printf("branches       %d\n", st.Branches)
	fmt.Printf("dep prev/chain %d / %d\n", st.DepPrev, st.DepChain)
	return nil
}

// verifyFile streams the file through the lazy FileSource and the
// buffered Read path and compares every record; the two decoders share
// no I/O machinery, so agreement certifies both.
func verifyFile(path string) error {
	src, err := trace.OpenFile(path)
	if err != nil {
		return err
	}
	defer src.Close()

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ref, err := trace.Read(f)
	if err != nil {
		return err
	}

	if src.Name() != ref.Name() {
		return fmt.Errorf("verify: name mismatch: lazy %q, buffered %q", src.Name(), ref.Name())
	}
	if src.Len() != ref.Len() {
		return fmt.Errorf("verify: record count mismatch: lazy %d, buffered %d", src.Len(), ref.Len())
	}
	for i, want := range ref.Records() {
		got, ok := src.Next()
		if !ok {
			return fmt.Errorf("verify: lazy reader ended early at record %d of %d", i, ref.Len())
		}
		if got != want {
			return fmt.Errorf("verify: record %d differs: lazy %+v, buffered %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		return fmt.Errorf("verify: lazy reader has records past %d", ref.Len())
	}
	return nil
}

func printRecordSummary(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	var instr, deps uint64
	pcs := map[uint64]struct{}{}
	pages := map[uint64]struct{}{}
	for _, r := range tr.Records() {
		instr += r.Instructions()
		if r.Dep != trace.DepNone {
			deps++
		}
		pcs[r.PC] = struct{}{}
		pages[r.Addr.PageID()] = struct{}{}
	}
	fmt.Printf("name        %s\n", tr.Name())
	fmt.Printf("records     %d (%d instructions)\n", tr.Len(), instr)
	fmt.Printf("dependent   %d (%.1f%%)\n", deps, 100*float64(deps)/float64(tr.Len()))
	fmt.Printf("static PCs  %d\n", len(pcs))
	fmt.Printf("4KB pages   %d\n", len(pages))
	return nil
}
