package prefetch

import (
	"math/rand"
	"testing"

	"pmp/internal/mem"
)

// A non-positive capacity must yield a queue that accepts nothing
// rather than panicking (regression: NewOutQueue(-1) used to panic
// allocating the dedup map with a negative size hint).
func TestOutQueueNonPositiveCapacity(t *testing.T) {
	for _, c := range []int{0, -1, -100} {
		q := NewOutQueue(c)
		if q.Cap() != 0 || q.Len() != 0 {
			t.Fatalf("NewOutQueue(%d): Cap=%d Len=%d, want 0,0", c, q.Cap(), q.Len())
		}
		if q.Push(Request{Addr: 64, Level: LevelL1}) {
			t.Fatalf("NewOutQueue(%d) accepted a push", c)
		}
		if got := q.PopInto(nil, 4); len(got) != 0 {
			t.Fatalf("NewOutQueue(%d) popped %d requests", c, len(got))
		}
		q.Reset() // must not panic either
	}
}

// Capacities beyond the bitmap universe are clamped, not rejected.
func TestOutQueueCapacityClamp(t *testing.T) {
	q := NewOutQueue(mem.MaxHierBitmap + 1000)
	if q.Cap() != mem.MaxHierBitmap {
		t.Fatalf("Cap = %d, want clamp to %d", q.Cap(), mem.MaxHierBitmap)
	}
}

// PopInto must drain strictly by priority class (0 = most urgent
// first), FIFO within each class, regardless of push order.
func TestOutQueuePriorityDrainOrder(t *testing.T) {
	q := NewOutQueue(16)
	push := func(addr mem.Addr, pri int) {
		t.Helper()
		if !q.PushPri(Request{Addr: addr, Level: LevelL1}, pri) {
			t.Fatalf("push addr %#x pri %d rejected", addr, pri)
		}
	}
	// Interleave classes; addresses encode (class, sequence).
	push(0x2_0040, 2)
	push(0x0_0040, 0)
	push(0x1_0040, 1)
	push(0x2_0080, 2)
	push(0x0_0080, 0)
	push(0x1_0080, 1)
	got := q.PopInto(nil, 16)
	want := []mem.Addr{0x0_0040, 0x0_0080, 0x1_0040, 0x1_0080, 0x2_0040, 0x2_0080}
	if len(got) != len(want) {
		t.Fatalf("drained %d requests, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Addr != want[i] {
			t.Fatalf("drain[%d] = %#x, want %#x (full: %+v)", i, r.Addr, want[i], got)
		}
	}
}

// A request pushed into a higher-urgency class after lower-urgency
// entries are queued still jumps the line.
func TestOutQueueUrgentJumpsQueue(t *testing.T) {
	q := NewOutQueue(8)
	for i := 0; i < 4; i++ {
		q.PushPri(Request{Addr: mem.Addr(0x10000 + i*64), Level: LevelL2}, 5)
	}
	q.PushPri(Request{Addr: 0x20000, Level: LevelL1}, 0)
	got := q.PopInto(nil, 1)
	if len(got) != 1 || got[0].Addr != 0x20000 {
		t.Fatalf("first pop = %+v, want the urgent 0x20000", got)
	}
}

// Push (the FIFO-compatible entry point) and PushPri class 0 are the
// same thing: plain Push drains in strict arrival order.
func TestOutQueuePushIsFIFO(t *testing.T) {
	q := NewOutQueue(64)
	rng := rand.New(rand.NewSource(9))
	var want []mem.Addr
	for i := 0; i < 64; i++ {
		a := mem.Addr(rng.Intn(1<<20) * 64)
		if q.Push(Request{Addr: a, Level: LevelL1}) {
			want = append(want, a)
		}
	}
	got := q.PopInto(nil, 64)
	if len(got) != len(want) {
		t.Fatalf("drained %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Addr != want[i] {
			t.Fatalf("FIFO order broken at %d: got %#x, want %#x", i, got[i].Addr, want[i])
		}
	}
}

// The region bitmap must suppress duplicate lines while distinct lines
// in the same 4KB region coexist, and a drained line must become
// pushable again.
func TestOutQueueRegionDedup(t *testing.T) {
	q := NewOutQueue(8)
	if !q.Push(Request{Addr: 0x1000, Level: LevelL1}) {
		t.Fatal("first push rejected")
	}
	if q.Push(Request{Addr: 0x1000, Level: LevelL2}) {
		t.Fatal("duplicate line accepted")
	}
	if !q.Push(Request{Addr: 0x1040, Level: LevelL1}) {
		t.Fatal("distinct line in same region rejected")
	}
	if got := q.PopInto(nil, 1); len(got) != 1 || got[0].Addr != 0x1000 {
		t.Fatalf("pop = %+v", got)
	}
	if !q.Push(Request{Addr: 0x1000, Level: LevelL1}) {
		t.Fatal("drained line still counted as duplicate")
	}
}

// Mixed-priority churn against a reference model: a map of per-class
// FIFO slices must always agree with the bitmap queue's drain.
func TestOutQueueVsReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	q := NewOutQueue(32)
	type entry struct {
		addr mem.Addr
		pri  int
	}
	var model []entry
	inModel := func(a mem.Addr) bool {
		for _, e := range model {
			if e.addr == a {
				return true
			}
		}
		return false
	}
	for step := 0; step < 5000; step++ {
		if rng.Intn(3) != 0 {
			a := mem.Addr(rng.Intn(256) * 64)
			pri := rng.Intn(4)
			accepted := q.PushPri(Request{Addr: a, Level: LevelL1}, pri)
			wantAccept := len(model) < 32 && !inModel(a)
			if accepted != wantAccept {
				t.Fatalf("step %d: push %#x pri %d accepted=%v, model wants %v",
					step, a, pri, accepted, wantAccept)
			}
			if accepted {
				model = append(model, entry{a, pri})
			}
		} else {
			n := rng.Intn(4) + 1
			got := q.PopInto(nil, n)
			for _, r := range got {
				// The model's next pop: lowest class, FIFO within it.
				best := -1
				for i, e := range model {
					if best == -1 || e.pri < model[best].pri {
						best = i
					}
				}
				if best == -1 {
					t.Fatalf("step %d: queue popped %#x, model empty", step, r.Addr)
				}
				if model[best].addr != r.Addr {
					t.Fatalf("step %d: popped %#x, model wants %#x (pri %d)",
						step, r.Addr, model[best].addr, model[best].pri)
				}
				model = append(model[:best], model[best+1:]...)
			}
			if len(got) > n {
				t.Fatalf("step %d: PopInto(%d) returned %d", step, n, len(got))
			}
		}
		if q.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, q.Len(), len(model))
		}
	}
}

// PushPri clamps out-of-range priority classes instead of corrupting
// the bitmap (class < 0 -> most urgent, >= 64 -> least urgent).
func TestOutQueuePriorityClamp(t *testing.T) {
	q := NewOutQueue(4)
	if !q.PushPri(Request{Addr: 0x40, Level: LevelL1}, -5) {
		t.Fatal("negative priority rejected")
	}
	if !q.PushPri(Request{Addr: 0x80, Level: LevelL1}, 1000) {
		t.Fatal("huge priority rejected")
	}
	got := q.PopInto(nil, 2)
	if len(got) != 2 || got[0].Addr != 0x40 || got[1].Addr != 0x80 {
		t.Fatalf("clamped drain = %+v", got)
	}
}
