package prefetch_test

import (
	"testing"

	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check/conformance"
)

// TestNopConformance registers the non-prefetching baseline with the
// shared contract harness; it alone may report zero storage.
func TestNopConformance(t *testing.T) {
	conformance.Run(t, func() prefetch.Prefetcher { return prefetch.Nop{} }, conformance.AllowZeroStorage())
}
