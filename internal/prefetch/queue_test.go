package prefetch

import (
	"testing"

	"pmp/internal/mem"
)

// The issue path drains every prefetcher through OutQueue.PopInto with
// a reused buffer; a steady-state Push/PopInto cycle must therefore be
// allocation-free once the queue's backing slice has grown.

func TestOutQueuePopIntoAppends(t *testing.T) {
	q := NewOutQueue(4)
	for i := 0; i < 4; i++ {
		q.Push(Request{Addr: mem.Addr(i * 64), Level: LevelL1})
	}
	dst := []Request{{Addr: 4096, Level: LevelL2}}
	dst = q.PopInto(dst, 2)
	if len(dst) != 3 {
		t.Fatalf("PopInto appended %d requests, want 2 after the seed entry", len(dst)-1)
	}
	if dst[0].Addr != 4096 {
		t.Errorf("PopInto clobbered existing dst contents: %+v", dst[0])
	}
	if dst[1].Addr != 0 || dst[2].Addr != 64 {
		t.Errorf("PopInto order wrong: got %+v", dst[1:])
	}
	if q.Len() != 2 {
		t.Errorf("queue should retain 2 requests, has %d", q.Len())
	}
	// Drained lines must be re-pushable (dedup entry released).
	if !q.Push(Request{Addr: 0, Level: LevelL1}) {
		t.Error("drained line rejected as duplicate")
	}
}

func TestOutQueuePushPopIntoDoesNotAllocate(t *testing.T) {
	q := NewOutQueue(8)
	buf := make([]Request, 0, 8)
	addr := mem.Addr(0)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			q.Push(Request{Addr: addr, Level: LevelL1})
			addr += 64
		}
		buf = q.PopInto(buf[:0], 8)
	})
	if avg != 0 {
		t.Errorf("steady-state Push/PopInto allocates %.3f allocs/cycle, want 0", avg)
	}
	// Pop (the compatibility shim) must still allocate at most the one
	// result slice.
	q.Push(Request{Addr: addr, Level: LevelL1})
	if got := q.Pop(1); len(got) != 1 {
		t.Fatalf("Pop after PopInto cycles returned %d requests, want 1", len(got))
	}
}

func TestIssueIntoFallback(t *testing.T) {
	// Nop does not implement BulkIssuer: the dispatch helper must fall
	// back to Issue and leave dst untouched.
	dst := make([]Request, 0, 4)
	if got := IssueInto(Nop{}, dst, 4); len(got) != 0 {
		t.Errorf("IssueInto(Nop) returned %d requests, want 0", len(got))
	}
}
