package conformance

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

// timelinessMinUsed is the number of used prefetches below which the
// timeliness scenario refuses to judge a prefetcher: a handful of hits
// on an easy stream says nothing about fill timing, and some
// conservative prefetchers legitimately sit out a single-stream
// pattern.
const timelinessMinUsed = 25

// timelinessTrace is a single sequential stream with a wide
// instruction gap between loads: at the default 4-wide core one load
// dispatches every ~500 cycles while a full L1-to-DRAM miss costs
// ~235, so a prefetcher that runs even one line ahead of the demand
// has ample slack to fill in time.
func timelinessTrace() trace.Source {
	const records = 800
	recs := make([]trace.Record, records)
	base := mem.Addr(0x50_0000)
	for i := range recs {
		recs[i] = trace.Record{PC: 0x400, Addr: base + mem.Addr(i*mem.LineBytes), Gap: 2000}
	}
	return trace.NewTrace("timeliness-stream", recs)
}

func timelinessConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Warmup = 100_000 // ~50 records of training before measurement
	return cfg
}

// RunTimeliness drives a fresh prefetcher through a widely spaced
// sequential stream under the full system model with lifecycle tracing
// enabled, and fails if every prefetch the demand stream consumed was
// still in flight when it was needed. On this trace the demand spacing
// dwarfs the miss path, so an all-late profile means the prefetcher
// issues with no lead time at all — it converts misses into stalls of
// almost the same length and its coverage numbers overstate its value.
func RunTimeliness(t TB, mk func() prefetch.Prefetcher) {
	runTimeliness(t, mk, timelinessConfig())
}

func runTimeliness(t TB, mk func() prefetch.Prefetcher, cfg sim.Config) {
	sys := sim.NewSystem(cfg, mk())
	sys.EnableLifecycleTracing(nil)
	res := sys.Run(timelinessTrace())
	if len(res.Lifecycle) == 0 {
		return // never issued a prefetch; nothing to judge
	}
	if len(res.Lifecycle) != 1 {
		t.Errorf("timeliness: %d lifecycle snapshots, want 1", len(res.Lifecycle))
		return
	}
	total := res.Lifecycle[0].Total
	if total.Used() < timelinessMinUsed {
		return // too quiet on this pattern to judge
	}
	if total.Timely == 0 {
		t.Errorf("timeliness: %s used %d prefetches but none filled before its demand (late %d, avg lateness %.0f cyc)",
			res.Prefetcher, total.Used(), total.Late, total.AvgLateness())
	}
}
