// Package conformance is the shared contract test harness for every
// prefetcher in the repository. Each prefetcher package registers
// itself with a one-line test:
//
//	func TestConformance(t *testing.T) {
//		conformance.Run(t, func() prefetch.Prefetcher { return New(DefaultConfig()) })
//	}
//
// Run drives a fresh instance through adversarial access patterns
// (sequential, strided, pointer-chase-like random, page hopscotch,
// eviction/fill feedback, and Requeuer round-trips) with every call
// passing through the check.Checker runtime contract wrapper, so a
// prefetcher that over-issues, emits unaligned or LevelNone requests,
// or reports an unstable storage budget cannot ship.
package conformance

import (
	"math/rand"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check"
)

// TB is the slice of testing.TB the harness needs; using the narrow
// interface lets the harness's own tests record failures instead of
// failing.
type TB interface {
	Errorf(format string, args ...any)
}

// Option is re-exported so registrations can waive baseline-only
// checks (see check.AllowZeroStorage).
type Option = check.Option

// AllowZeroStorage waives the positive-StorageBits requirement for the
// non-prefetching baseline.
func AllowZeroStorage() Option { return check.AllowZeroStorage() }

// Run puts a freshly constructed prefetcher through the contract
// harness. It is deterministic: the "random" workload uses a fixed
// seed so failures reproduce.
func Run(t TB, mk func() prefetch.Prefetcher, opts ...Option) {
	inner := mk()
	p := check.Wrap(inner, t.Errorf, opts...)

	if name := p.Name(); name != "" {
		// Re-read to exercise the stability check.
		_ = p.Name()
	}
	_ = p.StorageBits()

	budgets := []int{0, 1, 3, 8, 64}
	cycle := uint64(0)
	drain := func() []prefetch.Request {
		var all []prefetch.Request
		for _, max := range budgets {
			all = append(all, p.Issue(max)...)
		}
		return all
	}
	train := func(pc uint64, addr mem.Addr, hit bool) {
		cycle += 4
		p.Train(prefetch.Access{PC: pc, Addr: addr, Cycle: cycle, Hit: hit})
		drain()
	}

	// Sequential walk through several pages: the bread-and-butter
	// spatial pattern.
	base := mem.Addr(0x10_0000)
	for i := 0; i < 4*mem.LinesPerPage; i++ {
		train(0x400, base+mem.Addr(i*mem.LineBytes), i%3 != 0)
	}

	// Strided walks under distinct PCs, including a stride that
	// repeatedly crosses page boundaries.
	for _, stride := range []int{2, 7, mem.LinesPerPage + 1} {
		sb := mem.Addr(0x40_0000) + mem.Addr(stride)*mem.Addr(mem.PageBytes)
		for i := 0; i < 128; i++ {
			train(0x500+uint64(stride), sb+mem.Addr(i*stride*mem.LineBytes), i%2 == 0)
		}
	}

	// Seeded random chaos: unaligned byte addresses (the prefetcher
	// must still emit line-aligned targets), scattered PCs.
	rng := rand.New(rand.NewSource(0x9e3779b9))
	for i := 0; i < 512; i++ {
		addr := mem.Addr(rng.Uint64() >> 16) // keep within a plausible VA range
		train(0x600+uint64(rng.Intn(8)), addr, rng.Intn(2) == 0)
	}

	// Page hopscotch with evictions closing regions mid-pattern.
	for i := 0; i < 64; i++ {
		a := base + mem.Addr((i%8)*mem.PageBytes) + mem.Addr((i%mem.LinesPerPage)*mem.LineBytes)
		train(0x700, a, false)
		if i%4 == 0 {
			p.OnEvict(a.Line())
			drain()
		}
	}

	// Fill feedback, useful and useless.
	for i := 0; i < 32; i++ {
		p.OnFill(base+mem.Addr(i*mem.LineBytes), prefetch.LevelL2, i%2 == 0)
		drain()
	}

	// Requeuer round-trip: hand every request back, then re-issue.
	if rq, ok := p.(prefetch.Requeuer); ok {
		for i := 0; i < 2*mem.LinesPerPage; i++ {
			cycle += 4
			p.Train(prefetch.Access{PC: 0x800, Addr: base + mem.Addr(i*mem.LineBytes), Cycle: cycle, Hit: false})
		}
		reqs := p.Issue(16)
		for _, r := range reqs {
			rq.Requeue(r)
		}
		again := p.Issue(len(reqs) + 8)
		if len(reqs) > 0 && len(again) == 0 {
			t.Errorf("conformance: %d requeued requests never re-issued", len(reqs))
		}
		drain()
	}

	// Budget and name must have stayed stable through the run.
	_ = p.StorageBits()
	_ = p.Name()
}
