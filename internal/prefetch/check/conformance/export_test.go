package conformance

import (
	"pmp/internal/prefetch"
	"pmp/internal/sim"
)

// RunTimelinessAt exposes the timeliness scenario with a custom system
// configuration so the harness's own tests can force late fills.
func RunTimelinessAt(t TB, mk func() prefetch.Prefetcher, cfg sim.Config) {
	runTimeliness(t, mk, cfg)
}

// TimelinessConfig returns the configuration RunTimeliness uses.
func TimelinessConfig() sim.Config { return timelinessConfig() }
