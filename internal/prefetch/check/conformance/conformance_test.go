package conformance_test

import (
	"fmt"
	"strings"
	"testing"

	"pmp/internal/bench"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check/conformance"
	"pmp/internal/prefetchers/nextline"
)

// TestAllRegisteredPrefetchers runs the contract harness over every
// prefetcher in the bench registry, so a prefetcher added to the
// registry cannot ship without passing the contract — even before its
// package adds its own one-line conformance test.
func TestAllRegisteredPrefetchers(t *testing.T) {
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			var opts []conformance.Option
			if name == bench.NameNone {
				opts = append(opts, conformance.AllowZeroStorage())
			}
			conformance.Run(t, func() prefetch.Prefetcher { return bench.NewPrefetcher(name) }, opts...)
		})
	}
}

// recorder stands in for *testing.T so harness failures can be
// asserted rather than propagated.
type recorder struct {
	violations []string
}

func (r *recorder) Errorf(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// overIssuer violates the Issue(max) bound.
type overIssuer struct{ prefetch.Nop }

func (overIssuer) Name() string { return "over-issuer" }

func (overIssuer) Issue(max int) []prefetch.Request {
	out := make([]prefetch.Request, max+1)
	for i := range out {
		out[i] = prefetch.Request{Addr: mem.Addr(i * mem.LineBytes), Level: prefetch.LevelL1}
	}
	return out
}

func (overIssuer) StorageBits() int { return 8 }

// TestHarnessCatchesOverIssue is the meta-test: deliberately breaking
// the Issue contract must fail the harness.
func TestHarnessCatchesOverIssue(t *testing.T) {
	rec := &recorder{}
	conformance.Run(rec, func() prefetch.Prefetcher { return overIssuer{} })
	found := false
	for _, v := range rec.violations {
		if strings.Contains(v, "over budget") || strings.Contains(v, "max <= 0") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("harness missed an over-budget Issue; violations: %v", rec.violations)
	}
}

// unalignedIssuer emits a mid-line target.
type unalignedIssuer struct{ prefetch.Nop }

func (unalignedIssuer) Name() string { return "unaligned-issuer" }

func (unalignedIssuer) Issue(max int) []prefetch.Request {
	if max < 1 {
		return nil
	}
	return []prefetch.Request{{Addr: mem.Addr(mem.LineBytes + 4), Level: prefetch.LevelL1}}
}

func (unalignedIssuer) StorageBits() int { return 8 }

// TestTimelinessAllRegisteredPrefetchers runs the late-fill timeliness
// scenario over every prefetcher in the registry: on a widely spaced
// stream, a prefetcher that consumes prefetches must get at least some
// of them filled before the demand arrives.
func TestTimelinessAllRegisteredPrefetchers(t *testing.T) {
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			conformance.RunTimeliness(t, func() prefetch.Prefetcher { return bench.NewPrefetcher(name) })
		})
	}
}

// TestTimelinessAcceptsTimelyPrefetcher pins the scenario's pass side:
// a plain next-line prefetcher on the wide-gap stream has hundreds of
// cycles of slack and must not be flagged.
func TestTimelinessAcceptsTimelyPrefetcher(t *testing.T) {
	rec := &recorder{}
	conformance.RunTimeliness(rec, func() prefetch.Prefetcher { return nextline.New(2) })
	if len(rec.violations) != 0 {
		t.Fatalf("timely prefetcher flagged: %v", rec.violations)
	}
}

// TestTimelinessCatchesLateFills is the meta-test: with DRAM slowed so
// far that no fill can complete inside the run, every used prefetch is
// late and the scenario must fail.
func TestTimelinessCatchesLateFills(t *testing.T) {
	cfg := conformance.TimelinessConfig()
	cfg.DRAM.LatencyCycles = 5_000_000
	rec := &recorder{}
	conformance.RunTimelinessAt(rec, func() prefetch.Prefetcher { return nextline.New(2) }, cfg)
	found := false
	for _, v := range rec.violations {
		if strings.Contains(v, "none filled before its demand") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("scenario missed an all-late prefetcher; violations: %v", rec.violations)
	}
}

func TestHarnessCatchesUnalignedTarget(t *testing.T) {
	rec := &recorder{}
	conformance.Run(rec, func() prefetch.Prefetcher { return unalignedIssuer{} })
	found := false
	for _, v := range rec.violations {
		if strings.Contains(v, "not line-aligned") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("harness missed an unaligned target; violations: %v", rec.violations)
	}
}
