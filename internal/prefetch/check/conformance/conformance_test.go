package conformance_test

import (
	"fmt"
	"strings"
	"testing"

	"pmp/internal/bench"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check/conformance"
)

// TestAllRegisteredPrefetchers runs the contract harness over every
// prefetcher in the bench registry, so a prefetcher added to the
// registry cannot ship without passing the contract — even before its
// package adds its own one-line conformance test.
func TestAllRegisteredPrefetchers(t *testing.T) {
	for _, name := range bench.Names() {
		t.Run(name, func(t *testing.T) {
			var opts []conformance.Option
			if name == bench.NameNone {
				opts = append(opts, conformance.AllowZeroStorage())
			}
			conformance.Run(t, func() prefetch.Prefetcher { return bench.NewPrefetcher(name) }, opts...)
		})
	}
}

// recorder stands in for *testing.T so harness failures can be
// asserted rather than propagated.
type recorder struct {
	violations []string
}

func (r *recorder) Errorf(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// overIssuer violates the Issue(max) bound.
type overIssuer struct{ prefetch.Nop }

func (overIssuer) Name() string { return "over-issuer" }

func (overIssuer) Issue(max int) []prefetch.Request {
	out := make([]prefetch.Request, max+1)
	for i := range out {
		out[i] = prefetch.Request{Addr: mem.Addr(i * mem.LineBytes), Level: prefetch.LevelL1}
	}
	return out
}

func (overIssuer) StorageBits() int { return 8 }

// TestHarnessCatchesOverIssue is the meta-test: deliberately breaking
// the Issue contract must fail the harness.
func TestHarnessCatchesOverIssue(t *testing.T) {
	rec := &recorder{}
	conformance.Run(rec, func() prefetch.Prefetcher { return overIssuer{} })
	found := false
	for _, v := range rec.violations {
		if strings.Contains(v, "over budget") || strings.Contains(v, "max <= 0") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("harness missed an over-budget Issue; violations: %v", rec.violations)
	}
}

// unalignedIssuer emits a mid-line target.
type unalignedIssuer struct{ prefetch.Nop }

func (unalignedIssuer) Name() string { return "unaligned-issuer" }

func (unalignedIssuer) Issue(max int) []prefetch.Request {
	if max < 1 {
		return nil
	}
	return []prefetch.Request{{Addr: mem.Addr(mem.LineBytes + 4), Level: prefetch.LevelL1}}
}

func (unalignedIssuer) StorageBits() int { return 8 }

func TestHarnessCatchesUnalignedTarget(t *testing.T) {
	rec := &recorder{}
	conformance.Run(rec, func() prefetch.Prefetcher { return unalignedIssuer{} })
	found := false
	for _, v := range rec.violations {
		if strings.Contains(v, "not line-aligned") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("harness missed an unaligned target; violations: %v", rec.violations)
	}
}
