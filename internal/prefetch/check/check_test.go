package check

import (
	"fmt"
	"strings"
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// recorder collects violations instead of failing a test, so we can
// assert the checker catches deliberately broken stubs.
type recorder struct {
	violations []string
}

func (r *recorder) report(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

func (r *recorder) contains(t *testing.T, substr string) {
	t.Helper()
	for _, v := range r.violations {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Errorf("no violation containing %q; got %v", substr, r.violations)
}

// stub is a configurable misbehaving prefetcher.
type stub struct {
	name     string
	names    []string // successive Name() results, if set
	issue    func(max int) []prefetch.Request
	storage  []int // successive StorageBits() results
	storageI int
	nameI    int
}

func (s *stub) Name() string {
	if len(s.names) > 0 {
		n := s.names[min(s.nameI, len(s.names)-1)]
		s.nameI++
		return n
	}
	return s.name
}

func (s *stub) Train(prefetch.Access) {}

func (s *stub) Issue(max int) []prefetch.Request {
	if s.issue == nil {
		return nil
	}
	return s.issue(max)
}

func (s *stub) OnEvict(mem.Addr) {}

func (s *stub) OnFill(mem.Addr, prefetch.Level, bool) {}

func (s *stub) StorageBits() int {
	if len(s.storage) == 0 {
		return 1
	}
	b := s.storage[min(s.storageI, len(s.storage)-1)]
	s.storageI++
	return b
}

func line(n uint64) mem.Addr { return mem.Addr(n * mem.LineBytes) }

func TestCatchesOverBudgetIssue(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "over", issue: func(max int) []prefetch.Request {
		out := make([]prefetch.Request, max+1)
		for i := range out {
			out[i] = prefetch.Request{Addr: line(uint64(i)), Level: prefetch.LevelL1}
		}
		return out
	}}, rec.report)
	p.Issue(4)
	rec.contains(t, "over budget")
}

func TestCatchesIssueOnZeroBudget(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "zero", issue: func(int) []prefetch.Request {
		return []prefetch.Request{{Addr: line(1), Level: prefetch.LevelL1}}
	}}, rec.report)
	p.Issue(0)
	rec.contains(t, "max <= 0")
}

func TestCatchesUnalignedAddress(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "unaligned", issue: func(int) []prefetch.Request {
		return []prefetch.Request{{Addr: line(1) + 8, Level: prefetch.LevelL1}}
	}}, rec.report)
	p.Issue(4)
	rec.contains(t, "not line-aligned")
}

func TestCatchesInvalidLevel(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "levelnone", issue: func(int) []prefetch.Request {
		return []prefetch.Request{{Addr: line(1), Level: prefetch.LevelNone}}
	}}, rec.report)
	p.Issue(4)
	rec.contains(t, "invalid level")
}

func TestCatchesEmptyAndUnstableName(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{names: []string{"", "a", "b"}}, rec.report)
	p.Name()
	p.Name()
	p.Name()
	rec.contains(t, "empty string")
	rec.contains(t, "unstable")
}

func TestCatchesZeroAndUnstableStorage(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "storage", storage: []int{0, 5, 7}}, rec.report)
	p.StorageBits()
	p.StorageBits()
	p.StorageBits()
	rec.contains(t, "want positive")
	rec.contains(t, "StorageBits() unstable")
}

func TestAllowZeroStorageWaiver(t *testing.T) {
	rec := &recorder{}
	p := Wrap(prefetch.Nop{}, rec.report, AllowZeroStorage())
	p.StorageBits()
	if len(rec.violations) != 0 {
		t.Errorf("Nop with waiver should be clean, got %v", rec.violations)
	}
}

func TestCleanPrefetcherPasses(t *testing.T) {
	rec := &recorder{}
	p := Wrap(&stub{name: "clean", issue: func(max int) []prefetch.Request {
		n := min(max, 2)
		out := make([]prefetch.Request, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, prefetch.Request{Addr: line(uint64(i)), Level: prefetch.LevelL2})
		}
		return out
	}}, rec.report)
	p.Name()
	p.Train(prefetch.Access{Addr: line(3)})
	p.Issue(8)
	p.Issue(1)
	p.OnEvict(line(3))
	p.OnFill(line(4), prefetch.LevelL2, true)
	p.StorageBits()
	if len(rec.violations) != 0 {
		t.Errorf("clean stub should produce no violations, got %v", rec.violations)
	}
}

// requeueStub exercises the Requeuer passthrough.
type requeueStub struct {
	stub
	requeued []prefetch.Request
}

func (r *requeueStub) Requeue(req prefetch.Request) { r.requeued = append(r.requeued, req) }

func TestRequeuerCapabilityPreserved(t *testing.T) {
	rec := &recorder{}
	rs := &requeueStub{stub: stub{name: "rq"}}
	p := Wrap(rs, rec.report)
	rq, ok := p.(prefetch.Requeuer)
	if !ok {
		t.Fatal("wrapper dropped the Requeuer capability")
	}
	rq.Requeue(prefetch.Request{Addr: line(9), Level: prefetch.LevelL1})
	if len(rs.requeued) != 1 {
		t.Fatalf("requeue not forwarded: %v", rs.requeued)
	}
	rq.Requeue(prefetch.Request{Addr: line(9) + 1, Level: prefetch.LevelL1})
	rec.contains(t, "Requeue target")
}

func TestNonRequeuerGainsNoCapability(t *testing.T) {
	p := Wrap(&stub{name: "plain"}, func(string, ...any) {})
	if _, ok := p.(prefetch.Requeuer); ok {
		t.Fatal("wrapper invented a Requeuer capability the inner prefetcher lacks")
	}
}
