// Package check wraps a prefetch.Prefetcher in a runtime contract
// checker that asserts, on every call, the invariants the simulator
// relies on for meaningful cross-prefetcher comparisons:
//
//   - Issue(max) returns at most max requests, and none when max <= 0;
//   - every Request.Addr is line-aligned;
//   - every Request.Level is a real cache level (L1/L2/LLC), never
//     LevelNone or an out-of-range value;
//   - Name() is non-empty and stable across calls;
//   - StorageBits() is positive (unless explicitly waived for the
//     non-prefetching baseline) and stable across calls.
//
// The conformance harness (package check/conformance) drives every
// registered prefetcher through this wrapper; simulator code can also
// wrap any prefetcher for debugging without changing behaviour, since
// the checker forwards all calls unmodified.
package check

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// ReportFunc receives one formatted contract violation.
// (*testing.T).Errorf satisfies it.
type ReportFunc func(format string, args ...any)

// Option adjusts what the checker enforces.
type Option func(*Checker)

// AllowZeroStorage waives the positive-StorageBits requirement; only
// the non-prefetching baseline legitimately reports zero bits.
func AllowZeroStorage() Option {
	return func(c *Checker) { c.allowZeroStorage = true }
}

// Checker is the contract-checking wrapper. Construct with Wrap.
type Checker struct {
	inner  prefetch.Prefetcher
	report ReportFunc

	allowZeroStorage bool
	name             string
	storage          int
	seenName         bool
	seenStorage      bool
}

// Wrap returns p wrapped in contract checks that report through
// report. When p also implements prefetch.Requeuer the returned value
// does too, so the simulator's capability probing still works; a
// non-Requeuer prefetcher never gains a Requeue method from wrapping.
func Wrap(p prefetch.Prefetcher, report ReportFunc, opts ...Option) prefetch.Prefetcher {
	c := &Checker{inner: p, report: report}
	for _, o := range opts {
		o(c)
	}
	if rq, ok := p.(prefetch.Requeuer); ok {
		return &requeueChecker{Checker: c, rq: rq}
	}
	return c
}

// Name implements prefetch.Prefetcher, asserting the name is non-empty
// and stable.
func (c *Checker) Name() string {
	name := c.inner.Name()
	if name == "" {
		c.report("contract: Name() returned an empty string")
	}
	if c.seenName && name != c.name {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: Name() unstable: %q then %q", c.name, name)
	}
	c.name, c.seenName = name, true
	//lint:ignore prefetcherimpl transparent wrapper forwards the inner prefetcher's name
	return name
}

// Train implements prefetch.Prefetcher.
func (c *Checker) Train(a prefetch.Access) { c.inner.Train(a) }

// Issue implements prefetch.Prefetcher, asserting the count bound and
// per-request validity.
func (c *Checker) Issue(max int) []prefetch.Request {
	reqs := c.inner.Issue(max)
	if max <= 0 && len(reqs) > 0 {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: Issue(%d) returned %d requests, want none for max <= 0", max, len(reqs))
	} else if len(reqs) > max {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: Issue(%d) returned %d requests (over budget)", max, len(reqs))
	}
	for i, r := range reqs {
		if r.Addr.Line() != r.Addr {
			//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
			c.report("contract: Issue request %d target %#x is not line-aligned", i, uint64(r.Addr))
		}
		switch r.Level {
		case prefetch.LevelL1, prefetch.LevelL2, prefetch.LevelLLC:
		default:
			//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
			c.report("contract: Issue request %d has invalid level %d (must be L1/L2/LLC)", i, r.Level)
		}
	}
	return reqs
}

// IssueInto implements prefetch.BulkIssuer with the same assertions as
// Issue, additionally checking that dst's existing contents are
// preserved. When the inner prefetcher does not implement BulkIssuer
// the checker falls back to Issue — safe to expose unconditionally,
// since the bulk path must produce exactly what Issue produces (unlike
// Requeuer, whose presence changes the simulator's issue policy).
//
//pmp:hotpath
func (c *Checker) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	base := len(dst)
	out := prefetch.IssueInto(c.inner, dst, max)
	if len(out) < base {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: IssueInto shrank dst from %d to %d entries", base, len(out))
		return out
	}
	reqs := out[base:]
	if max <= 0 && len(reqs) > 0 {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: IssueInto(dst, %d) appended %d requests, want none for max <= 0", max, len(reqs))
	} else if len(reqs) > max {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: IssueInto(dst, %d) appended %d requests (over budget)", max, len(reqs))
	}
	for i, r := range reqs {
		if r.Addr.Line() != r.Addr {
			//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
			c.report("contract: IssueInto request %d target %#x is not line-aligned", i, uint64(r.Addr))
		}
		switch r.Level {
		case prefetch.LevelL1, prefetch.LevelL2, prefetch.LevelLLC:
		default:
			//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
			c.report("contract: IssueInto request %d has invalid level %d (must be L1/L2/LLC)", i, r.Level)
		}
	}
	return out
}

// OnEvict implements prefetch.Prefetcher.
func (c *Checker) OnEvict(line mem.Addr) { c.inner.OnEvict(line) }

// OnFill implements prefetch.Prefetcher.
func (c *Checker) OnFill(line mem.Addr, level prefetch.Level, useful bool) {
	c.inner.OnFill(line, level, useful)
}

// StorageBits implements prefetch.Prefetcher, asserting the budget is
// positive (unless waived) and stable.
func (c *Checker) StorageBits() int {
	bits := c.inner.StorageBits()
	if bits < 0 || bits == 0 && !c.allowZeroStorage {
		c.report("contract: StorageBits() = %d, want positive (Table III/V accounting)", bits)
	}
	if c.seenStorage && bits != c.storage {
		c.report("contract: StorageBits() unstable: %d then %d", c.storage, bits)
	}
	c.storage, c.seenStorage = bits, true
	return bits
}

// requeueChecker adds the Requeuer capability for prefetchers that
// accept unadmitted requests back.
type requeueChecker struct {
	*Checker
	rq prefetch.Requeuer
}

// Requeue implements prefetch.Requeuer, validating the returned
// request before handing it back.
func (c *requeueChecker) Requeue(r prefetch.Request) {
	if r.Addr.Line() != r.Addr {
		//pmp:allocok contract-violation report: formats only when the wrapped prefetcher is broken
		c.report("contract: Requeue target %#x is not line-aligned", uint64(r.Addr))
	}
	c.rq.Requeue(r)
}
