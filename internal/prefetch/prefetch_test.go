package prefetch

import (
	"testing"

	"pmp/internal/mem"
)

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		LevelNone: "none", LevelL1: "L1D", LevelL2: "L2C", LevelLLC: "LLC",
		Level(9): "invalid",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", l, got, want)
		}
	}
}

func TestLevelDowngrade(t *testing.T) {
	if LevelL1.Downgrade() != LevelL2 {
		t.Error("L1 should downgrade to L2")
	}
	if LevelL2.Downgrade() != LevelLLC {
		t.Error("L2 should downgrade to LLC")
	}
	if LevelLLC.Downgrade() != LevelLLC {
		t.Error("LLC should downgrade to itself")
	}
	if LevelNone.Downgrade() != LevelNone {
		t.Error("none should stay none")
	}
}

func TestNopIsInert(t *testing.T) {
	var p Prefetcher = Nop{}
	p.Train(Access{PC: 1, Addr: 64})
	if got := p.Issue(8); got != nil {
		t.Errorf("Nop issued %v", got)
	}
	if p.StorageBits() != 0 {
		t.Error("Nop should cost 0 bits")
	}
	if p.Name() != "none" {
		t.Errorf("Nop name = %q", p.Name())
	}
}

func TestOutQueueFIFO(t *testing.T) {
	q := NewOutQueue(4)
	for i := 0; i < 3; i++ {
		if !q.Push(Request{Addr: mem.Addr(i * 64), Level: LevelL1}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	got := q.Pop(2)
	if len(got) != 2 || got[0].Addr != 0 || got[1].Addr != 64 {
		t.Fatalf("Pop(2) = %v", got)
	}
	got = q.Pop(10)
	if len(got) != 1 || got[0].Addr != 128 {
		t.Fatalf("second Pop = %v", got)
	}
	if q.Len() != 0 {
		t.Error("queue should be empty")
	}
}

func TestOutQueueDedupAndCapacity(t *testing.T) {
	q := NewOutQueue(2)
	if !q.Push(Request{Addr: 100, Level: LevelL1}) { // aligns to 64
		t.Fatal("first push rejected")
	}
	if q.Push(Request{Addr: 64, Level: LevelL2}) {
		t.Error("duplicate line should be rejected")
	}
	if !q.Push(Request{Addr: 128, Level: LevelL1}) {
		t.Fatal("second push rejected")
	}
	if q.Push(Request{Addr: 256, Level: LevelL1}) {
		t.Error("push beyond capacity should be rejected")
	}
	// After popping, the line can be requested again.
	q.Pop(2)
	if !q.Push(Request{Addr: 64, Level: LevelL1}) {
		t.Error("line should be pushable again after pop")
	}
}

func TestOutQueuePopZero(t *testing.T) {
	q := NewOutQueue(2)
	q.Push(Request{Addr: 64})
	if got := q.Pop(0); got != nil {
		t.Errorf("Pop(0) = %v, want nil", got)
	}
	if got := q.Pop(-1); got != nil {
		t.Errorf("Pop(-1) = %v, want nil", got)
	}
}

func TestOutQueueReset(t *testing.T) {
	q := NewOutQueue(4)
	q.Push(Request{Addr: 64})
	q.Reset()
	if q.Len() != 0 {
		t.Error("Reset should empty the queue")
	}
	if !q.Push(Request{Addr: 64}) {
		t.Error("line should be pushable after Reset")
	}
}
