// Package prefetch defines the contract between the simulator's L1D and
// any hardware prefetcher implementation: the training events a
// prefetcher observes, the requests it emits, and the bookkeeping every
// implementation must expose (name, storage budget).
//
// All prefetchers in this repository are single-level L1D-trained
// prefetchers, matching the paper's evaluation setup ("all prefetchers
// are placed at L1D, and no helper prefetchers exist in the other cache
// levels") — but they may direct individual fills to L1D, L2C or LLC.
package prefetch

import "pmp/internal/mem"

// Level identifies the cache level a prefetch should fill into.
type Level uint8

const (
	// LevelNone means "do not prefetch".
	LevelNone Level = iota
	// LevelL1 fills into the L1 data cache (and lower levels, inclusive).
	LevelL1
	// LevelL2 fills into the L2 cache (and LLC).
	LevelL2
	// LevelLLC fills into the last-level cache only.
	LevelLLC
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelL1:
		return "L1D"
	case LevelL2:
		return "L2C"
	case LevelLLC:
		return "LLC"
	default:
		return "invalid"
	}
}

// Downgrade returns the next level further from the core (paper
// arbitration rule 3): L1D -> L2C -> LLC -> LLC.
func (l Level) Downgrade() Level {
	switch l {
	case LevelL1:
		return LevelL2
	case LevelL2, LevelLLC:
		return LevelLLC
	default:
		return l
	}
}

// Access is one demand access observed at the L1D, the training input
// for every prefetcher.
type Access struct {
	PC    uint64   // program counter of the load
	Addr  mem.Addr // byte address accessed
	Cycle uint64   // core cycle of the access
	Hit   bool     // whether the access hit in the L1D
}

// Request is one prefetch the prefetcher wants issued.
type Request struct {
	Addr  mem.Addr // line-aligned target address
	Level Level    // destination cache level
}

// Prefetcher is the interface the simulator drives.
//
// The simulator calls Train on every demand load that reaches the L1D
// (hit or miss), then drains up to the free prefetch-queue capacity via
// Issue. OnEvict notifies the prefetcher of L1D line evictions so
// SMS-style accumulation can close regions.
type Prefetcher interface {
	// Name returns a short stable identifier ("pmp", "bingo", ...).
	Name() string

	// Train observes one demand access.
	Train(a Access)

	// Issue returns up to max prefetch requests. The simulator calls
	// this after each Train with the currently free PQ capacity; the
	// prefetcher should return its most valuable requests first
	// (nearest-first for spatial prefetchers).
	Issue(max int) []Request

	// OnEvict notifies that the given line-aligned address was evicted
	// from the L1D.
	OnEvict(line mem.Addr)

	// OnFill notifies that a previously issued prefetch for the given
	// line-aligned address completed, and whether it was later used by a
	// demand access before eviction. Feedback-driven prefetchers
	// (Pythia, SPP+PPF) learn from this; others may ignore it.
	OnFill(line mem.Addr, level Level, useful bool)

	// StorageBits returns the hardware storage budget of the prefetcher
	// in bits, for the Table III / Table V overhead comparison.
	StorageBits() int
}

// BulkIssuer is the allocation-free fast path of Issue: instead of
// returning a fresh slice per call, the prefetcher appends up to max
// requests to the caller-owned dst and returns the extended slice. The
// simulator drains every prefetcher through IssueInto with a reused
// per-system scratch buffer, so a steady-state simulated access
// performs no heap allocation on the issue path.
//
// Implementations must behave exactly like Issue: same requests, same
// order, at most max appended (none when max <= 0). Issue itself
// should remain correct — the idiomatic shim is
//
//	func (p *Prefetcher) Issue(max int) []prefetch.Request {
//		return p.IssueInto(nil, max)
//	}
type BulkIssuer interface {
	// IssueInto appends up to max requests to dst and returns it.
	IssueInto(dst []Request, max int) []Request
}

// IssueInto drains up to max requests from p into dst, using the
// allocation-free BulkIssuer fast path when p implements it and
// falling back to Issue (one allocation per call) otherwise, so
// third-party prefetchers keep working unmodified.
//
//pmp:hotpath
func IssueInto(p Prefetcher, dst []Request, max int) []Request {
	if b, ok := p.(BulkIssuer); ok {
		return b.IssueInto(dst, max)
	}
	//pmp:allocok documented fallback: Issue itself allocates once per call for non-BulkIssuer prefetchers
	return append(dst, p.Issue(max)...)
}

// Requeuer is implemented by prefetchers that can take back a request
// the memory system could not admit (prefetch queue or MSHRs full).
// Requeued requests are retried when slots free up — the paper's
// "prefetching process is suspended ... the process continues"
// semantics (§IV-B).
type Requeuer interface {
	// Requeue returns an unadmitted request to the prefetcher.
	Requeue(r Request)
}

// Nop is a no-op Prefetcher, the non-prefetching baseline.
type Nop struct{}

// Name implements Prefetcher.
func (Nop) Name() string { return "none" }

// Train implements Prefetcher.
func (Nop) Train(Access) {}

// Issue implements Prefetcher.
//
// Nop deliberately does not implement BulkIssuer: test doubles embed
// Nop and override Issue, and a promoted IssueInto would silently
// bypass their override. The IssueInto fallback path appends Issue's
// nil result, which allocates nothing either way.
func (Nop) Issue(int) []Request { return nil }

// OnEvict implements Prefetcher.
func (Nop) OnEvict(mem.Addr) {}

// OnFill implements Prefetcher.
func (Nop) OnFill(mem.Addr, Level, bool) {}

// StorageBits implements Prefetcher.
func (Nop) StorageBits() int { return 0 }
