package prefetch

import "pmp/internal/mem"

// OutQueue is a small FIFO of pending prefetch requests with duplicate
// suppression, shared by prefetcher implementations: generated targets
// are pushed once and drained by Issue in order.
type OutQueue struct {
	q       []Request
	pending map[mem.Addr]struct{}
	cap     int
}

// NewOutQueue returns a queue bounded at capacity requests. When full,
// Push drops the new request (matching hardware PQ behaviour, where the
// prefetcher simply stalls generation).
func NewOutQueue(capacity int) *OutQueue {
	return &OutQueue{
		q:       make([]Request, 0, max(capacity, 0)),
		pending: make(map[mem.Addr]struct{}, capacity),
		cap:     capacity,
	}
}

// Len returns the number of queued requests.
func (q *OutQueue) Len() int { return len(q.q) }

// Push enqueues a request unless the queue is full or the same line is
// already pending. It reports whether the request was accepted.
func (q *OutQueue) Push(r Request) bool {
	r.Addr = r.Addr.Line()
	if len(q.q) >= q.cap {
		return false
	}
	if _, dup := q.pending[r.Addr]; dup {
		return false
	}
	q.q = append(q.q, r)
	q.pending[r.Addr] = struct{}{}
	return true
}

// Pop dequeues up to max requests in FIFO order.
func (q *OutQueue) Pop(max int) []Request {
	if max <= 0 || len(q.q) == 0 {
		return nil
	}
	return q.PopInto(nil, max)
}

// PopInto dequeues up to max requests in FIFO order, appending them to
// dst. Unlike Pop it performs no allocation when dst has capacity, so
// a steady-state Push/PopInto cycle against a reused buffer is
// allocation-free.
//
//pmp:hotpath
func (q *OutQueue) PopInto(dst []Request, max int) []Request {
	if max <= 0 || len(q.q) == 0 {
		return dst
	}
	n := min(max, len(q.q))
	for _, r := range q.q[:n] {
		delete(q.pending, r.Addr)
	}
	dst = append(dst, q.q[:n]...)
	q.q = q.q[:copy(q.q, q.q[n:])]
	return dst
}

// Reset discards all queued requests.
func (q *OutQueue) Reset() {
	q.q = q.q[:0]
	clear(q.pending)
}
