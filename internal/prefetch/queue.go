package prefetch

import (
	"math/bits"

	"pmp/internal/mem"
)

// OutQueue is the bounded buffer of pending prefetch requests shared by
// the prefetcher implementations: generated targets are pushed once
// (duplicate lines suppressed) and drained by Issue.
//
// Internally it is a hierarchical-bitmap priority queue rather than a
// slice-plus-map FIFO:
//
//   - Requests live in a fixed slot array; a two-level HierBitmap over
//     the slots is the free list, so allocation is a CLZ (First) and
//     release is a masked OR — no Go allocator traffic ever.
//   - Each of the 64 priority classes is an intrusive FIFO (head/tail
//     plus a next-link per slot) and a one-word summary bitmap records
//     which classes are occupied; the next request to drain is found
//     with a single bits.LeadingZeros64 regardless of occupancy.
//   - Duplicate suppression is a compact per-region line bitmap (one
//     {regionID, uint64} pair per 4KB region with pending lines)
//     instead of a map[mem.Addr]struct{}: membership is a shift and an
//     AND against a handful of L1-resident words.
//
// Push enqueues at the highest priority class (0), so a Push-only
// producer drains in exact FIFO order — byte-identical to the historic
// FIFO implementation. PushPri lets confidence-aware producers demote
// low-confidence requests; lower class numbers drain first, FIFO within
// a class.
type OutQueue struct {
	slots []Request
	next  []int32 // intrusive bucket links, -1 terminates
	free  mem.HierBitmap
	head  [numPriorities]int32
	tail  [numPriorities]int32
	pris  uint64 // bit 63-p set when class p is non-empty
	n     int
	cap   int

	// Pending-line bitmaps, one entry per 4KB region with queued lines.
	// Queues are small (tens of slots), so a linear scan over a few
	// 16-byte entries beats hashing.
	regions []regionLines
}

// numPriorities is the number of priority classes (0 drains first).
const numPriorities = 64

type regionLines struct {
	id   uint64
	mask uint64
}

// regionOf splits a line address into its 4KB-region ID and the line's
// bit within that region's pending mask.
func regionOf(a mem.Addr) (id uint64, bit uint64) {
	return uint64(a) >> mem.PageShift, 1 << (uint64(a) >> mem.LineShift & (mem.LinesPerPage - 1))
}

// NewOutQueue returns a queue bounded at capacity requests. When full,
// Push drops the new request (matching hardware PQ behaviour, where the
// prefetcher simply stalls generation). Non-positive capacities yield a
// queue that accepts nothing; capacities beyond the bitmap universe
// (mem.MaxHierBitmap) are clamped to it.
func NewOutQueue(capacity int) *OutQueue {
	capacity = max(capacity, 0)
	capacity = min(capacity, mem.MaxHierBitmap)
	q := &OutQueue{
		slots:   make([]Request, capacity),
		next:    make([]int32, capacity),
		cap:     capacity,
		regions: make([]regionLines, 0, capacity),
	}
	if capacity > 0 {
		q.free = mem.NewHierBitmap(capacity)
		q.free.Fill()
	}
	for p := range q.head {
		q.head[p], q.tail[p] = -1, -1
	}
	return q
}

// Len returns the number of queued requests.
func (q *OutQueue) Len() int { return q.n }

// Cap returns the queue's capacity.
func (q *OutQueue) Cap() int { return q.cap }

// Push enqueues a request at the highest priority class unless the
// queue is full or the same line is already pending. It reports whether
// the request was accepted. A Push-only producer drains in FIFO order.
//
//pmp:hotpath
func (q *OutQueue) Push(r Request) bool { return q.PushPri(r, 0) }

// PushPri enqueues a request at priority class pri (clamped to
// [0, 63]); lower classes drain first, FIFO within a class. The full
// and duplicate checks match Push.
//
//pmp:hotpath
func (q *OutQueue) PushPri(r Request, pri int) bool {
	r.Addr = r.Addr.Line()
	if q.n >= q.cap {
		return false
	}
	if !q.markPending(r.Addr) {
		return false
	}
	if pri < 0 {
		pri = 0
	} else if pri >= numPriorities {
		pri = numPriorities - 1
	}
	s, _ := q.free.First() // n < cap, so a free slot exists
	q.free.Clear(s)
	q.slots[s] = r
	q.next[s] = -1
	if q.head[pri] < 0 {
		q.head[pri] = int32(s)
		q.pris |= 1 << uint(63-pri)
	} else {
		q.next[q.tail[pri]] = int32(s)
	}
	q.tail[pri] = int32(s)
	q.n++
	return true
}

// markPending records line a as pending; it reports false when the line
// was already pending (duplicate).
//
//pmp:hotpath
func (q *OutQueue) markPending(a mem.Addr) bool {
	id, bit := regionOf(a)
	for i := range q.regions {
		if q.regions[i].id == id {
			if q.regions[i].mask&bit != 0 {
				return false
			}
			q.regions[i].mask |= bit
			return true
		}
	}
	if len(q.regions) == cap(q.regions) {
		// Unreachable: each queued line holds a slot and contributes at
		// most one region entry, and NewOutQueue reserved cap entries.
		return true
	}
	q.regions = append(q.regions, regionLines{id: id, mask: bit})
	return true
}

// clearPending releases line a's pending bit, dropping its region entry
// when it empties.
//
//pmp:hotpath
func (q *OutQueue) clearPending(a mem.Addr) {
	id, bit := regionOf(a)
	for i := range q.regions {
		if q.regions[i].id == id {
			q.regions[i].mask &^= bit
			if q.regions[i].mask == 0 {
				last := len(q.regions) - 1
				q.regions[i] = q.regions[last]
				q.regions = q.regions[:last]
			}
			return
		}
	}
}

// Pop dequeues up to max requests in priority order.
func (q *OutQueue) Pop(max int) []Request {
	if max <= 0 || q.n == 0 {
		return nil
	}
	return q.PopInto(nil, max)
}

// PopInto dequeues up to max requests in priority order (FIFO within a
// class), appending them to dst. Unlike Pop it performs no allocation
// when dst has capacity, so a steady-state Push/PopInto cycle against a
// reused buffer is allocation-free.
//
//pmp:hotpath
func (q *OutQueue) PopInto(dst []Request, max int) []Request {
	for ; max > 0 && q.pris != 0; max-- {
		p := bits.LeadingZeros64(q.pris)
		s := q.head[p]
		q.head[p] = q.next[s]
		if q.head[p] < 0 {
			q.tail[p] = -1
			q.pris &^= 1 << uint(63-p)
		}
		q.free.Set(int(s))
		q.clearPending(q.slots[s].Addr)
		dst = append(dst, q.slots[s])
		q.n--
	}
	return dst
}

// Reset discards all queued requests.
func (q *OutQueue) Reset() {
	if q.cap > 0 {
		q.free.Fill()
	}
	for p := range q.head {
		q.head[p], q.tail[p] = -1, -1
	}
	q.pris = 0
	q.n = 0
	q.regions = q.regions[:0]
}
