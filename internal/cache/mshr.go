package cache

import "pmp/internal/mem"

// mshrFile tracks outstanding misses in a fixed-capacity array sized
// by Config.MSHRs, replacing the map the cache used previously. The
// simulator probes MSHR occupancy on every prefetch admission
// (prefetchRoom -> MSHRBusy), which made map iteration the single
// hottest path in whole-system profiles; a real MSHR file is a handful
// of SRAM entries searched associatively, and modelling it as a small
// linear-scan array is both faster and closer to the hardware.
//
// Two summaries sit in front of the array and keep the common probes
// O(1):
//
//   - minDone is a lower bound on every entry's completion cycle, so
//     prune — called on every prefetch admission — returns without
//     touching a single slot while no entry can have completed
//     (minDone > now). The bound is maintained monotonically on
//     insert/refresh and recomputed exactly whenever a scan happens
//     anyway.
//   - sig is a 64-bit line-hash signature (one Fibonacci-hashed bit per
//     resident line, a 1-hash Bloom filter): find rejects absent lines
//     with one AND instead of a scan. Bits are only ORed in; the
//     signature is rebuilt exactly during prune's scan.
//
// Semantics mirror the original map exactly (the simulator's outputs
// are bit-identical): an entry persists — even past its completion
// cycle — until a prune (MSHRBusy or a capacity check inside reserve)
// removes it, and reserving a line that still has an entry refreshes
// the completion time without a capacity check.
//
// Lines and completion cycles live in parallel arrays
// (structure-of-arrays) so the associative line search touches one
// densely packed cache line of tags.
type mshrFile struct {
	lines   []mem.Addr // entries [0:n] are occupied
	done    []uint64   // completion cycles, parallel to lines
	n       int
	minDone uint64 // lower bound on min done[0:n]; ^0 when empty
	sig     uint64 // superset of lineSig bits of resident lines
}

// lineSig hashes a line address to a single signature bit. Fibonacci
// hashing (multiply by 2^64/phi, take the top bits) spreads the
// low-entropy line addresses evenly across the 64 signature bits.
//
//pmp:hotpath
func lineSig(line mem.Addr) uint64 {
	return 1 << (uint64(line) * 0x9E3779B97F4A7C15 >> 58)
}

// newMSHRFile sizes the file for `capacity` simultaneous misses.
// Capacity is exact: reserve prunes completed entries before inserting
// and never admits past the caller's limit, so n <= capacity always.
func newMSHRFile(capacity int) mshrFile {
	return mshrFile{
		lines:   make([]mem.Addr, capacity),
		done:    make([]uint64, capacity),
		minDone: ^uint64(0),
	}
}

// find returns the slot index holding line, or -1. Stale entries
// (done in the past) are found too, matching the map's behaviour.
//
//pmp:hotpath
func (m *mshrFile) find(line mem.Addr) int {
	if m.sig&lineSig(line) == 0 {
		return -1
	}
	for i := 0; i < m.n; i++ {
		if m.lines[i] == line {
			return i
		}
	}
	return -1
}

// prune drops entries whose completion is at or before now and returns
// the number still busy. While the cached completion lower bound sits
// beyond now — the overwhelmingly common case between misses — nothing
// can be prunable and no slot is touched. A real scan compacts the
// file and rebuilds both summaries exactly.
//
//pmp:hotpath
func (m *mshrFile) prune(now uint64) int {
	if m.minDone > now {
		return m.n
	}
	minDone := ^uint64(0)
	var sig uint64
	for i := 0; i < m.n; {
		if m.done[i] <= now {
			m.n--
			m.lines[i] = m.lines[m.n]
			m.done[i] = m.done[m.n]
		} else {
			minDone = min(minDone, m.done[i])
			sig |= lineSig(m.lines[i])
			i++
		}
	}
	m.minDone = minDone
	m.sig = sig
	return m.n
}

// inFlight reports whether a miss for the line is outstanding strictly
// after now, and its completion cycle.
//
//pmp:hotpath
func (m *mshrFile) inFlight(line mem.Addr, now uint64) (uint64, bool) {
	i := m.find(line)
	if i < 0 || m.done[i] <= now {
		return 0, false
	}
	return m.done[i], true
}

// reserve allocates (or refreshes) the entry for line with completion
// `done`, admitting at most `limit` busy entries at `now`. A line that
// already holds an entry is refreshed unconditionally — the demand
// path reserves a placeholder before the hierarchy walk computes the
// real latency.
//
//pmp:hotpath
func (m *mshrFile) reserve(line mem.Addr, now, done uint64, limit int) bool {
	if i := m.find(line); i >= 0 {
		m.done[i] = done
		m.minDone = min(m.minDone, done)
		return true
	}
	if m.prune(now) >= limit {
		return false
	}
	m.lines[m.n] = line
	m.done[m.n] = done
	m.n++
	m.minDone = min(m.minDone, done)
	m.sig |= lineSig(line)
	return true
}

// earliest returns the soonest completion strictly after now, or false
// when none is in flight.
//
//pmp:hotpath
func (m *mshrFile) earliest(now uint64) (uint64, bool) {
	best := ^uint64(0)
	found := false
	for i := 0; i < m.n; i++ {
		if d := m.done[i]; d > now && d < best {
			best = d
			found = true
		}
	}
	return best, found
}

// reset discards every entry.
func (m *mshrFile) reset() {
	m.n = 0
	m.minDone = ^uint64(0)
	m.sig = 0
}
