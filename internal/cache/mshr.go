package cache

import "pmp/internal/mem"

// mshrFile tracks outstanding misses in a fixed-capacity array sized
// by Config.MSHRs, replacing the map the cache used previously. The
// simulator probes MSHR occupancy on every prefetch admission
// (prefetchRoom -> MSHRBusy), which made map iteration the single
// hottest path in whole-system profiles; a real MSHR file is a handful
// of SRAM entries searched associatively, and modelling it as a small
// linear-scan array is both faster and closer to the hardware.
//
// Semantics mirror the map exactly (the simulator's outputs are
// bit-identical): an entry persists — even past its completion cycle —
// until a prune (MSHRBusy or a capacity check inside reserve) removes
// it, and reserving a line that still has an entry refreshes the
// completion time without a capacity check.
type mshrEntry struct {
	line mem.Addr
	done uint64 // completion cycle
}

type mshrFile struct {
	slots []mshrEntry // entries [0:n] are occupied
	n     int
}

// newMSHRFile sizes the file for `capacity` simultaneous misses.
// Capacity is exact: reserve prunes completed entries before inserting
// and never admits past the caller's limit, so n <= capacity always.
func newMSHRFile(capacity int) mshrFile {
	return mshrFile{slots: make([]mshrEntry, capacity)}
}

// find returns the slot index holding line, or -1. Stale entries
// (done in the past) are found too, matching the map's behaviour.
//
//pmp:hotpath
func (m *mshrFile) find(line mem.Addr) int {
	for i := 0; i < m.n; i++ {
		if m.slots[i].line == line {
			return i
		}
	}
	return -1
}

// prune drops entries whose completion is at or before now and returns
// the number still busy.
//
//pmp:hotpath
func (m *mshrFile) prune(now uint64) int {
	for i := 0; i < m.n; {
		if m.slots[i].done <= now {
			m.n--
			m.slots[i] = m.slots[m.n]
		} else {
			i++
		}
	}
	return m.n
}

// inFlight reports whether a miss for the line is outstanding strictly
// after now, and its completion cycle.
//
//pmp:hotpath
func (m *mshrFile) inFlight(line mem.Addr, now uint64) (uint64, bool) {
	i := m.find(line)
	if i < 0 || m.slots[i].done <= now {
		return 0, false
	}
	return m.slots[i].done, true
}

// reserve allocates (or refreshes) the entry for line with completion
// `done`, admitting at most `limit` busy entries at `now`. A line that
// already holds an entry is refreshed unconditionally — the demand
// path reserves a placeholder before the hierarchy walk computes the
// real latency.
//
//pmp:hotpath
func (m *mshrFile) reserve(line mem.Addr, now, done uint64, limit int) bool {
	if i := m.find(line); i >= 0 {
		m.slots[i].done = done
		return true
	}
	if m.prune(now) >= limit {
		return false
	}
	m.slots[m.n] = mshrEntry{line: line, done: done}
	m.n++
	return true
}

// earliest returns the soonest completion strictly after now, or false
// when none is in flight.
//
//pmp:hotpath
func (m *mshrFile) earliest(now uint64) (uint64, bool) {
	best := ^uint64(0)
	found := false
	for i := 0; i < m.n; i++ {
		if d := m.slots[i].done; d > now && d < best {
			best = d
			found = true
		}
	}
	return best, found
}

// reset discards every entry.
func (m *mshrFile) reset() { m.n = 0 }
