// Package cache implements the set-associative caches, MSHRs and
// prefetch queues of the simulated memory hierarchy.
//
// The model is functional-with-timestamps rather than cycle-stepped:
// lookups and fills happen immediately in program order, but every line
// carries the cycle at which its fill completes, so a demand access that
// arrives before an in-flight (e.g. prefetched) line is ready pays the
// residual latency. This keeps simulation fast while preserving the
// timing effects prefetching is about (late prefetches, MSHR pressure,
// pollution).
package cache

import (
	"fmt"

	"pmp/internal/mem"
)

// Policy selects the replacement policy of a cache.
type Policy uint8

// Replacement policies.
const (
	// LRU evicts the least-recently-used line (the default).
	LRU Policy = iota
	// SRRIP is static re-reference interval prediction (Jaleel et al.,
	// ISCA'10): 2-bit re-reference predictions per line; fills insert
	// at long re-reference, hits promote to near, victims are lines at
	// distant re-reference (aging the set as needed). More scan- and
	// thrash-resistant than LRU at the LLC.
	SRRIP
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case SRRIP:
		return "srrip"
	default:
		return "invalid"
	}
}

// Config describes one cache level.
type Config struct {
	Name    string // display name ("L1D", "L2C", "LLC")
	Sets    int    // number of sets (power of two)
	Ways    int    // associativity
	Latency uint64 // access latency in core cycles
	MSHRs   int    // miss status holding registers
	PQSize  int    // prefetch queue entries
	Policy  Policy // replacement policy (default LRU)
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive, got %d", c.Name, c.MSHRs)
	}
	if c.Policy > SRRIP {
		return fmt.Errorf("cache %s: unknown replacement policy %d", c.Name, c.Policy)
	}
	return nil
}

// SizeBytes returns the data capacity of the configuration.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * mem.LineBytes }

// lineMeta is the per-line state other than the tag. Tags live in
// their own parallel array (structure-of-arrays): an associative probe
// then scans Ways*8 contiguous bytes — a single cache line for
// 8-way sets — instead of striding through interleaved metadata, and
// the valid bit is folded into the tag as a sentinel so the tag-match
// loop is one compare per way.
type lineMeta struct {
	lru        uint64 // last-touch stamp (LRU policy)
	ready      uint64 // cycle the fill completes
	rrpv       uint8  // re-reference prediction value (SRRIP policy)
	prefetched bool   // filled by a prefetch
	used       bool   // demand-touched since fill
}

// invalidTag marks an empty way. Real tags are line-aligned (low
// mem.LineShift bits zero), so this value can never collide.
const invalidTag mem.Addr = 1

// Stats accumulates per-level counters. Demand counters only advance
// while the owning Cache has stats enabled (warm-up runs with them off).
type Stats struct {
	DemandAccesses uint64
	DemandHits     uint64
	DemandMisses   uint64

	PrefetchFills  uint64 // prefetch fills inserted at this level
	UsefulPrefetch uint64 // prefetched lines later demand-hit
	UselessPrefetx uint64 // prefetched lines evicted untouched
	LatePrefetch   uint64 // demand hit a prefetched line still in flight
}

// Accuracy returns useful/(useful+useless) prefetch accuracy, or 0 when
// no prefetch outcome has been observed.
func (s Stats) Accuracy() float64 {
	tot := s.UsefulPrefetch + s.UselessPrefetx
	if tot == 0 {
		return 0
	}
	return float64(s.UsefulPrefetch) / float64(tot)
}

// EvictKind tells the hierarchy what was displaced by a fill.
type EvictKind uint8

const (
	// EvictNone means the fill landed in an invalid way.
	EvictNone EvictKind = iota
	// EvictClean means a valid line was displaced.
	EvictClean
)

// Eviction describes a displaced line.
type Eviction struct {
	Kind       EvictKind
	Line       mem.Addr
	Prefetched bool // was a prefetch
	Used       bool // was demand-touched since fill
}

// PrefetchEventKind identifies a step in a prefetched line's lifecycle.
type PrefetchEventKind uint8

const (
	// PrefetchFilled: a prefetch fill was inserted; Cycle is the cycle
	// the fill completes.
	PrefetchFilled PrefetchEventKind = iota
	// PrefetchUsed: first demand hit on a prefetched line; Cycle is the
	// demand cycle, FillCycle the line's fill-completion cycle, and Late
	// mirrors the Stats.LatePrefetch rule (the fill completes after a
	// plain hit would have returned).
	PrefetchUsed
	// PrefetchDead: a prefetched line left the cache untouched (evicted
	// or back-invalidated); Cycle approximates when (0 for
	// invalidations, which carry no clock).
	PrefetchDead
)

// String implements fmt.Stringer.
func (k PrefetchEventKind) String() string {
	switch k {
	case PrefetchFilled:
		return "filled"
	case PrefetchUsed:
		return "used"
	case PrefetchDead:
		return "dead"
	default:
		return "invalid"
	}
}

// PrefetchEvent is one per-request lifecycle observation for a
// prefetched line at this cache level. The simulator's lifecycle
// tracker correlates these with issue records to classify every
// prefetch as timely, late or useless.
type PrefetchEvent struct {
	Kind      PrefetchEventKind
	Line      mem.Addr
	Cycle     uint64 // when the event happened (see kind docs)
	FillCycle uint64 // fill-completion cycle (PrefetchUsed only)
	Late      bool   // PrefetchUsed: fill still in flight at use
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg     Config
	tags    []mem.Addr // Sets*Ways, row-major; invalidTag when empty
	meta    []lineMeta // parallel to tags
	setMask uint64
	stamp   uint64
	statsOn bool
	stats   Stats
	mshr    mshrFile // outstanding misses (fixed capacity, see mshr.go)

	// PrefetchOutcome, when non-nil, is invoked the moment a prefetched
	// line's fate is decided: useful (first demand hit after the
	// prefetch fill) or useless (evicted or invalidated untouched).
	// Feedback-driven prefetchers learn from this; it fires regardless
	// of whether statistics are enabled.
	PrefetchOutcome func(line mem.Addr, useful bool)

	// PrefetchTrace, when non-nil, receives per-request lifecycle
	// events for prefetched lines (fill, first demand use, untouched
	// death). Like PrefetchOutcome it fires regardless of whether
	// statistics are enabled; leave it nil to keep the hot path free of
	// tracing overhead.
	PrefetchTrace func(ev PrefetchEvent)
}

// New constructs a cache; it panics on invalid configuration (a
// programming error in the caller, not a runtime condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:     cfg,
		tags:    make([]mem.Addr, cfg.Sets*cfg.Ways),
		meta:    make([]lineMeta, cfg.Sets*cfg.Ways),
		setMask: uint64(cfg.Sets - 1),
		mshr:    newMSHRFile(cfg.MSHRs),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// EnableStats switches demand/prefetch accounting on or off (off during
// warm-up).
func (c *Cache) EnableStats(on bool) { c.statsOn = on }

// ResetStats zeroes the counters (end of warm-up).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// setBase returns the index of the set's first way in the parallel
// tag/meta arrays.
//
//pmp:hotpath
func (c *Cache) setBase(a mem.Addr) int {
	return int(a.LineID()&c.setMask) * c.cfg.Ways
}

// findWay returns the array index of the way holding line a (already
// line-aligned), or -1. One tag compare per way over contiguous tags.
//
//pmp:hotpath
func (c *Cache) findWay(a mem.Addr) int {
	base := c.setBase(a)
	for _, t := range c.tags[base : base+c.cfg.Ways] {
		if t == a {
			return base
		}
		base++
	}
	return -1
}

// Lookup probes for a line at the given cycle.
//
// On a hit it returns (true, readyCycle): the cycle at which the data is
// available (max of now+latency and the line's fill-completion time — a
// hit under a still-in-flight fill pays the residual). The LRU stamp is
// updated and, for demand lookups, prefetch-usefulness accounting runs.
//
// On a miss it returns (false, 0).
//
//pmp:hotpath
func (c *Cache) Lookup(a mem.Addr, now uint64, demand bool) (bool, uint64) {
	a = a.Line()
	c.stamp++
	if demand && c.statsOn {
		c.stats.DemandAccesses++
	}
	if i := c.findWay(a); i >= 0 {
		l := &c.meta[i]
		l.lru = c.stamp
		l.rrpv = 0 // SRRIP: near re-reference on hit
		ready := now + c.cfg.Latency
		if l.ready > ready {
			ready = l.ready
			if demand && l.prefetched && !l.used && c.statsOn {
				c.stats.LatePrefetch++
			}
		}
		if demand {
			if l.prefetched && !l.used {
				if c.statsOn {
					c.stats.UsefulPrefetch++
				}
				l.used = true
				if c.PrefetchTrace != nil {
					c.PrefetchTrace(PrefetchEvent{
						Kind: PrefetchUsed, Line: a, Cycle: now,
						FillCycle: l.ready, Late: l.ready > now+c.cfg.Latency,
					})
				}
				if c.PrefetchOutcome != nil {
					c.PrefetchOutcome(a, true)
				}
			}
			if c.statsOn {
				c.stats.DemandHits++
			}
		}
		return true, ready
	}
	if demand && c.statsOn {
		c.stats.DemandMisses++
	}
	return false, 0
}

// Contains reports whether the line is present, without touching LRU or
// statistics (used by back-invalidation and tests).
//
//pmp:hotpath
func (c *Cache) Contains(a mem.Addr) bool {
	return c.findWay(a.Line()) >= 0
}

// Fill inserts a line completing at readyCycle. prefetched marks
// prefetch fills for pollution accounting. It returns the eviction the
// fill caused, if any. Filling a line that is already present only
// refreshes its ready time (fills can race when a prefetch and a demand
// miss overlap).
//
//pmp:hotpath
func (c *Cache) Fill(a mem.Addr, readyCycle uint64, prefetched bool) Eviction {
	a = a.Line()
	c.stamp++
	if prefetched && c.statsOn {
		c.stats.PrefetchFills++
	}
	if i := c.findWay(a); i >= 0 {
		if readyCycle < c.meta[i].ready {
			c.meta[i].ready = readyCycle
		}
		return Eviction{}
	}
	victim := c.victimIn(c.setBase(a))
	ev := Eviction{}
	v := &c.meta[victim]
	if vt := c.tags[victim]; vt != invalidTag {
		ev = Eviction{Kind: EvictClean, Line: vt, Prefetched: v.prefetched, Used: v.used}
		if v.prefetched && !v.used {
			if c.statsOn {
				c.stats.UselessPrefetx++
			}
			if c.PrefetchTrace != nil {
				// The displacing fill's completion is the closest clock
				// this path has to "now".
				c.PrefetchTrace(PrefetchEvent{Kind: PrefetchDead, Line: vt, Cycle: readyCycle})
			}
			if c.PrefetchOutcome != nil {
				c.PrefetchOutcome(vt, false)
			}
		}
	}
	c.tags[victim] = a
	*v = lineMeta{lru: c.stamp, rrpv: 2, ready: readyCycle, prefetched: prefetched}
	if prefetched && c.PrefetchTrace != nil {
		c.PrefetchTrace(PrefetchEvent{Kind: PrefetchFilled, Line: a, Cycle: readyCycle})
	}
	return ev
}

// victimIn selects the replacement victim (as an array index) for the
// set starting at base under the configured policy.
//
//pmp:hotpath
func (c *Cache) victimIn(base int) int {
	end := base + c.cfg.Ways
	for i := base; i < end; i++ {
		if c.tags[i] == invalidTag {
			return i
		}
	}
	if c.cfg.Policy == SRRIP {
		for {
			for i := base; i < end; i++ {
				if c.meta[i].rrpv >= 3 {
					return i
				}
			}
			for i := base; i < end; i++ {
				c.meta[i].rrpv++
			}
		}
	}
	victim := base
	oldest := ^uint64(0)
	for i := base; i < end; i++ {
		if c.meta[i].lru < oldest {
			oldest = c.meta[i].lru
			victim = i
		}
	}
	return victim
}

// Invalidate removes a line (inclusive-hierarchy back-invalidation). It
// reports whether the line was present; an untouched prefetched line
// counts as a useless prefetch.
//
//pmp:hotpath
func (c *Cache) Invalidate(a mem.Addr) bool {
	a = a.Line()
	i := c.findWay(a)
	if i < 0 {
		return false
	}
	l := &c.meta[i]
	if l.prefetched && !l.used {
		if c.statsOn {
			c.stats.UselessPrefetx++
		}
		if c.PrefetchTrace != nil {
			c.PrefetchTrace(PrefetchEvent{Kind: PrefetchDead, Line: a})
		}
		if c.PrefetchOutcome != nil {
			c.PrefetchOutcome(a, false)
		}
	}
	c.tags[i] = invalidTag
	return true
}

// --- MSHR model ---
//
// Outstanding misses occupy MSHR entries until their completion cycle.
// A demand miss may always take the last entry; prefetches must leave at
// least one entry free (paper §IV-B: "at least one MSHR is remained for
// normal load/store requests"). Entries live in a fixed-capacity array
// (mshr.go) sized by Config.MSHRs.

// MSHRBusy returns the number of occupied MSHR entries at `now`.
func (c *Cache) MSHRBusy(now uint64) int { return c.mshr.prune(now) }

// InFlight reports whether a miss for the line is already outstanding
// and, if so, its completion cycle (requests merge onto it).
func (c *Cache) InFlight(a mem.Addr, now uint64) (uint64, bool) {
	return c.mshr.inFlight(a.Line(), now)
}

// ReserveMSHR allocates an MSHR entry completing at `done` for the line.
// Demand requests may use every entry; prefetches must leave one free.
// Reserving a line that already holds an entry updates its completion
// time without consuming a new slot (the demand path reserves a
// placeholder before the hierarchy walk computes the real latency).
// It reports whether the allocation succeeded.
func (c *Cache) ReserveMSHR(a mem.Addr, now, done uint64, demand bool) bool {
	limit := c.cfg.MSHRs
	if !demand {
		limit--
	}
	return c.mshr.reserve(a.Line(), now, done, limit)
}

// EarliestCompletion returns the soonest completion cycle among
// outstanding misses strictly after `now`, or false when none are in
// flight. The simulator uses it to model a demand request stalling on a
// full MSHR file.
func (c *Cache) EarliestCompletion(now uint64) (uint64, bool) {
	return c.mshr.earliest(now)
}

// Flush invalidates every line and clears in-flight state (used between
// runs that share a cache object).
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	clear(c.meta)
	c.mshr.reset()
	c.stamp = 0
}
