package cache

import (
	"testing"
	"testing/quick"

	"pmp/internal/mem"
)

func testConfig() Config {
	return Config{Name: "T", Sets: 4, Ways: 2, Latency: 5, MSHRs: 4, PQSize: 8}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "a", Sets: 0, Ways: 1, MSHRs: 1},
		{Name: "b", Sets: 3, Ways: 1, MSHRs: 1},
		{Name: "c", Sets: 4, Ways: 0, MSHRs: 1},
		{Name: "d", Sets: 4, Ways: 1, MSHRs: 0},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestConfigSizeBytes(t *testing.T) {
	cfg := Config{Name: "L1D", Sets: 64, Ways: 12, MSHRs: 16}
	if got := cfg.SizeBytes(); got != 48*1024 {
		t.Errorf("SizeBytes() = %d, want 49152", got)
	}
}

func TestMissThenFillThenHit(t *testing.T) {
	c := New(testConfig())
	c.EnableStats(true)
	a := mem.Addr(0x1000)
	if hit, _ := c.Lookup(a, 100, true); hit {
		t.Fatal("cold cache should miss")
	}
	c.Fill(a, 150, false)
	hit, ready := c.Lookup(a, 200, true)
	if !hit {
		t.Fatal("filled line should hit")
	}
	if ready != 205 {
		t.Errorf("ready = %d, want now+latency = 205", ready)
	}
	s := c.Stats()
	if s.DemandAccesses != 2 || s.DemandHits != 1 || s.DemandMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestHitUnderFillPaysResidual(t *testing.T) {
	c := New(testConfig())
	a := mem.Addr(0x2000)
	c.Fill(a, 500, false) // fill completes at cycle 500
	if _, ready := c.Lookup(a, 100, true); ready != 500 {
		t.Errorf("hit under fill: ready = %d, want 500", ready)
	}
	// After the fill is ready, normal latency applies.
	if _, ready := c.Lookup(a, 600, true); ready != 605 {
		t.Errorf("post-fill hit: ready = %d, want 605", ready)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(testConfig()) // 2 ways
	// Three lines mapping to the same set: line IDs differ by Sets.
	stride := mem.Addr(4 * mem.LineBytes)
	a, b, d := mem.Addr(0), stride, 2*stride
	c.Fill(a, 0, false)
	c.Fill(b, 0, false)
	c.Lookup(a, 10, true) // touch a, so b is LRU
	ev := c.Fill(d, 20, false)
	if ev.Kind != EvictClean || ev.Line != b {
		t.Errorf("eviction = %+v, want line %#x", ev, uint64(b))
	}
	if hit, _ := c.Lookup(a, 30, true); !hit {
		t.Error("a should survive")
	}
	if hit, _ := c.Lookup(b, 30, true); hit {
		t.Error("b should be evicted")
	}
}

func TestPrefetchAccounting(t *testing.T) {
	c := New(testConfig())
	c.EnableStats(true)
	stride := mem.Addr(4 * mem.LineBytes)

	// Useful: prefetched then demanded.
	c.Fill(0, 0, true)
	c.Lookup(0, 10, true)
	// Useless: prefetched, evicted untouched.
	c.Fill(stride, 0, true)
	c.Fill(2*stride, 0, false)
	c.Fill(3*stride, 0, false) // evicts one of the set; LRU is the prefetched line? order: stride(pf), 2*stride, 3*stride -> evicts stride
	s := c.Stats()
	if s.UsefulPrefetch != 1 {
		t.Errorf("useful = %d, want 1", s.UsefulPrefetch)
	}
	if s.UselessPrefetx != 1 {
		t.Errorf("useless = %d, want 1", s.UselessPrefetx)
	}
	if s.PrefetchFills != 2 {
		t.Errorf("prefetch fills = %d, want 2", s.PrefetchFills)
	}
	if got := s.Accuracy(); got != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", got)
	}
}

func TestUsefulCountedOnce(t *testing.T) {
	c := New(testConfig())
	c.EnableStats(true)
	c.Fill(0, 0, true)
	c.Lookup(0, 1, true)
	c.Lookup(0, 2, true)
	if s := c.Stats(); s.UsefulPrefetch != 1 {
		t.Errorf("useful = %d, want 1 (count once per fill)", s.UsefulPrefetch)
	}
}

func TestLatePrefetchCounted(t *testing.T) {
	c := New(testConfig())
	c.EnableStats(true)
	c.Fill(0, 1000, true)             // in flight until cycle 1000
	_, ready := c.Lookup(0, 10, true) // demand arrives early
	if ready != 1000 {
		t.Errorf("ready = %d, want 1000", ready)
	}
	if s := c.Stats(); s.LatePrefetch != 1 {
		t.Errorf("late = %d, want 1", s.LatePrefetch)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(testConfig())
	c.EnableStats(true)
	c.Fill(0, 0, true)
	if !c.Invalidate(0) {
		t.Fatal("invalidate should find the line")
	}
	if c.Invalidate(0) {
		t.Fatal("second invalidate should miss")
	}
	if hit, _ := c.Lookup(0, 5, true); hit {
		t.Error("invalidated line should miss")
	}
	if s := c.Stats(); s.UselessPrefetx != 1 {
		t.Errorf("invalidated untouched prefetch should be useless, got %d", s.UselessPrefetx)
	}
}

func TestContainsDoesNotTouchLRU(t *testing.T) {
	c := New(testConfig())
	stride := mem.Addr(4 * mem.LineBytes)
	c.Fill(0, 0, false)
	c.Fill(stride, 0, false)
	// 0 is LRU. Contains must not promote it.
	if !c.Contains(0) {
		t.Fatal("line should be present")
	}
	ev := c.Fill(2*stride, 0, false)
	if ev.Line != 0 {
		t.Errorf("evicted %#x, want 0 (Contains must not refresh LRU)", uint64(ev.Line))
	}
}

func TestRefillRefreshesReady(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 1000, true)
	ev := c.Fill(0, 400, false) // demand fill for the same line completes sooner
	if ev.Kind != EvictNone {
		t.Errorf("refill should not evict, got %+v", ev)
	}
	if _, ready := c.Lookup(0, 10, true); ready != 400 {
		t.Errorf("ready = %d, want earliest fill 400", ready)
	}
}

func TestMSHRReservation(t *testing.T) {
	c := New(testConfig()) // 4 MSHRs
	now := uint64(0)
	for i := 0; i < 3; i++ {
		if !c.ReserveMSHR(mem.Addr(i*64), now, 100, false) {
			t.Fatalf("prefetch reservation %d failed", i)
		}
	}
	// Prefetch must leave one MSHR for demand.
	if c.ReserveMSHR(mem.Addr(3*64), now, 100, false) {
		t.Error("4th prefetch reservation should fail (reserve one for demand)")
	}
	if !c.ReserveMSHR(mem.Addr(3*64), now, 100, true) {
		t.Error("demand should take the last MSHR")
	}
	if c.ReserveMSHR(mem.Addr(4*64), now, 100, true) {
		t.Error("5th reservation should fail outright")
	}
	// After completion they free up.
	if !c.ReserveMSHR(mem.Addr(5*64), 200, 300, false) {
		t.Error("MSHRs should be free after completions")
	}
	if got := c.MSHRBusy(200); got != 1 {
		t.Errorf("busy = %d, want 1", got)
	}
}

func TestInFlightMerge(t *testing.T) {
	c := New(testConfig())
	c.ReserveMSHR(0, 0, 500, true)
	done, ok := c.InFlight(0, 100)
	if !ok || done != 500 {
		t.Errorf("InFlight = (%d, %v), want (500, true)", done, ok)
	}
	if _, ok := c.InFlight(0, 600); ok {
		t.Error("completed miss should no longer be in flight")
	}
	if _, ok := c.InFlight(64, 100); ok {
		t.Error("other line should not be in flight")
	}
}

func TestFlush(t *testing.T) {
	c := New(testConfig())
	c.Fill(0, 0, false)
	c.ReserveMSHR(64, 0, 1000, true)
	c.Flush()
	if c.Contains(0) {
		t.Error("flush should invalidate lines")
	}
	if _, ok := c.InFlight(64, 10); ok {
		t.Error("flush should clear in-flight misses")
	}
}

func TestWarmupStatsFrozen(t *testing.T) {
	c := New(testConfig())
	c.Lookup(0, 0, true)
	c.Fill(0, 0, true)
	c.Lookup(0, 1, true)
	if s := c.Stats(); s != (Stats{}) {
		t.Errorf("stats should be frozen before EnableStats, got %+v", s)
	}
}

// Property: the cache never holds more distinct lines than its capacity,
// and a just-filled line is always present.
func TestCapacityInvariant(t *testing.T) {
	cfg := Config{Name: "t", Sets: 8, Ways: 2, Latency: 1, MSHRs: 2}
	f := func(raw []uint16) bool {
		c := New(cfg)
		live := map[mem.Addr]bool{}
		for _, r := range raw {
			a := mem.Addr(r) * mem.LineBytes
			ev := c.Fill(a, 0, false)
			live[a] = true
			if ev.Kind == EvictClean {
				delete(live, ev.Line)
			}
			if !c.Contains(a) {
				return false
			}
			if len(live) > cfg.Sets*cfg.Ways {
				return false
			}
		}
		// Everything we believe live must really be present.
		for a := range live {
			if !c.Contains(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "lru" || SRRIP.String() != "srrip" || Policy(9).String() != "invalid" {
		t.Error("policy strings wrong")
	}
}

func TestPolicyValidate(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = Policy(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSRRIPScanResistance(t *testing.T) {
	// A hot line that is re-referenced survives a scan of single-use
	// lines under SRRIP, where LRU would evict it.
	run := func(policy Policy) bool {
		cfg := Config{Name: "t", Sets: 1, Ways: 4, Latency: 1, MSHRs: 2, Policy: policy}
		c := New(cfg)
		hot := mem.Addr(0)
		c.Fill(hot, 0, false)
		cycle := uint64(1)
		for i := 1; i <= 12; i++ {
			// Re-reference the hot line between scan fills.
			c.Lookup(hot, cycle, true)
			cycle++
			c.Fill(mem.Addr(i*mem.LineBytes*1), cycle, false)
			cycle++
		}
		return c.Contains(hot)
	}
	if !run(SRRIP) {
		t.Error("SRRIP should keep the re-referenced hot line through a scan")
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	cfg := Config{Name: "t", Sets: 1, Ways: 2, Latency: 1, MSHRs: 2, Policy: SRRIP}
	c := New(cfg)
	c.Fill(0, 0, false)
	c.Fill(64, 0, false)
	// Both at rrpv=2; a third fill must age the set and evict one
	// without looping forever.
	ev := c.Fill(128, 0, false)
	if ev.Kind != EvictClean {
		t.Fatal("third fill must evict")
	}
	if !c.Contains(128) {
		t.Error("new line must be resident")
	}
}

func TestReserveMSHRUpdatesExisting(t *testing.T) {
	c := New(testConfig()) // 4 MSHRs
	// Fill the file completely with demand reservations.
	for i := 0; i < 4; i++ {
		if !c.ReserveMSHR(mem.Addr(i*64), 0, 10, true) {
			t.Fatalf("reservation %d failed", i)
		}
	}
	// Updating an existing line's completion must succeed even though
	// the file is full, and must not consume a new slot.
	if !c.ReserveMSHR(0, 0, 500, true) {
		t.Fatal("same-line update rejected on a full file")
	}
	if done, ok := c.InFlight(0, 100); !ok || done != 500 {
		t.Errorf("InFlight = (%d, %v), want (500, true)", done, ok)
	}
	if got := c.MSHRBusy(5); got != 4 {
		t.Errorf("busy = %d, want 4 (update must not add a slot)", got)
	}
}

func TestPrefetchTraceFillUseTimely(t *testing.T) {
	c := New(testConfig())
	var events []PrefetchEvent
	c.PrefetchTrace = func(ev PrefetchEvent) { events = append(events, ev) }
	a := mem.Addr(0x1000)
	c.Fill(a, 150, true)
	c.Lookup(a, 200, true) // demand use well after the fill completed
	if len(events) != 2 {
		t.Fatalf("got %d events, want fill+use: %+v", len(events), events)
	}
	fill, use := events[0], events[1]
	if fill.Kind != PrefetchFilled || fill.Line != a || fill.Cycle != 150 {
		t.Errorf("fill event = %+v", fill)
	}
	if use.Kind != PrefetchUsed || use.Line != a || use.Cycle != 200 || use.FillCycle != 150 {
		t.Errorf("use event = %+v", use)
	}
	if use.Late {
		t.Error("fill completed 50 cycles before use; must not be late")
	}
	// A second demand hit resolves nothing new.
	c.Lookup(a, 300, true)
	if len(events) != 2 {
		t.Errorf("second hit emitted extra events: %+v", events[2:])
	}
}

func TestPrefetchTraceLateUse(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	var events []PrefetchEvent
	c.PrefetchTrace = func(ev PrefetchEvent) { events = append(events, ev) }
	a := mem.Addr(0x2000)
	c.Fill(a, 500, true)       // fill still in flight...
	c.Lookup(a, 100, true)     // ...when the demand arrives
	if len(events) != 2 || events[1].Kind != PrefetchUsed {
		t.Fatalf("events = %+v", events)
	}
	if !events[1].Late {
		t.Error("fill completing 400 cycles after the demand must be late")
	}
	if events[1].FillCycle != 500 {
		t.Errorf("FillCycle = %d, want 500", events[1].FillCycle)
	}
	// Consistency with the aggregate counter.
	c.EnableStats(true)
	b := mem.Addr(0x4000)
	c.Fill(b, 900, true)
	c.Lookup(b, 200, true)
	if s := c.Stats(); s.LatePrefetch != 1 {
		t.Errorf("LatePrefetch = %d, want 1", s.LatePrefetch)
	}
	if last := events[len(events)-1]; last.Kind != PrefetchUsed || !last.Late {
		t.Errorf("trace and Stats.LatePrefetch disagree: %+v", last)
	}
}

func TestPrefetchTraceDeadOnEvictionAndInvalidate(t *testing.T) {
	cfg := testConfig()
	cfg.Ways = 1 // direct-mapped: second fill of a set evicts the first
	c := New(cfg)
	var events []PrefetchEvent
	c.PrefetchTrace = func(ev PrefetchEvent) { events = append(events, ev) }
	a := mem.Addr(0x1000)
	c.Fill(a, 100, true)
	// Same set (4 sets x 64B lines): 0x1000 + 4*64.
	conflict := a + mem.Addr(4*mem.LineBytes)
	c.Fill(conflict, 300, false)
	var dead []PrefetchEvent
	for _, ev := range events {
		if ev.Kind == PrefetchDead {
			dead = append(dead, ev)
		}
	}
	if len(dead) != 1 || dead[0].Line != a || dead[0].Cycle != 300 {
		t.Fatalf("dead events = %+v, want untouched %#x dead at 300", dead, a)
	}

	// Invalidation of an untouched prefetched line is dead too.
	b := mem.Addr(0x2000)
	c.Fill(b, 100, true)
	c.Invalidate(b)
	last := events[len(events)-1]
	if last.Kind != PrefetchDead || last.Line != b {
		t.Fatalf("invalidate emitted %+v, want dead %#x", last, b)
	}

	// A used prefetched line dies silently.
	u := mem.Addr(0x3000)
	c.Fill(u, 100, true)
	c.Lookup(u, 200, true)
	n := len(events)
	c.Invalidate(u)
	if len(events) != n {
		t.Errorf("used line emitted %+v on invalidate", events[n:])
	}
}

func TestPrefetchTraceSilentForDemandFills(t *testing.T) {
	c := New(testConfig())
	var events []PrefetchEvent
	c.PrefetchTrace = func(ev PrefetchEvent) { events = append(events, ev) }
	a := mem.Addr(0x1000)
	c.Fill(a, 100, false)
	c.Lookup(a, 200, true)
	c.Invalidate(a)
	if len(events) != 0 {
		t.Errorf("demand-filled line emitted %+v", events)
	}
}
