package cache

import (
	"math/rand"
	"testing"

	"pmp/internal/mem"
)

func TestMSHRFileBasics(t *testing.T) {
	m := newMSHRFile(4)

	// Miss: reserving a new line occupies a slot.
	if !m.reserve(0x1000, 10, 50, 4) {
		t.Fatal("reserve into empty file failed")
	}
	if done, ok := m.inFlight(0x1000, 10); !ok || done != 50 {
		t.Fatalf("inFlight = (%d, %v), want (50, true)", done, ok)
	}

	// Hit on a held line refreshes the completion without a new slot,
	// even when the file is at its limit.
	for _, l := range []mem.Addr{0x2000, 0x3000, 0x4000} {
		if !m.reserve(l, 10, 60, 4) {
			t.Fatalf("reserve %#x failed", l)
		}
	}
	if !m.reserve(0x1000, 10, 70, 4) {
		t.Fatal("refresh of held line must ignore the capacity limit")
	}
	if done, _ := m.inFlight(0x1000, 10); done != 70 {
		t.Fatalf("refresh kept completion %d, want 70", done)
	}

	// Full: a new line is rejected while 4 entries are busy, and a
	// tighter limit (prefetches hold one entry back for demands)
	// rejects with room to spare.
	if m.reserve(0x5000, 10, 80, 4) {
		t.Fatal("reserve into a full file must fail")
	}
	if m.reserve(0x5000, 10, 80, 3) {
		t.Fatal("reserve over the prefetch limit must fail")
	}
	if got := m.prune(10); got != 4 {
		t.Fatalf("prune = %d busy, want 4", got)
	}

	// Completion frees slots: at cycle 60 the three 60-cycle entries
	// are stale, so a reserve prunes them and succeeds.
	if !m.reserve(0x5000, 60, 90, 4) {
		t.Fatal("reserve after completions should succeed")
	}
	if got := m.prune(60); got != 2 {
		t.Fatalf("after pruning at 60: %d busy, want 2 (0x1000@70, 0x5000@90)", got)
	}

	if e, ok := m.earliest(60); !ok || e != 70 {
		t.Fatalf("earliest = (%d, %v), want (70, true)", e, ok)
	}
	m.reset()
	if got := m.prune(0); got != 0 {
		t.Fatalf("reset left %d entries", got)
	}
}

func TestMSHRFileCoalesce(t *testing.T) {
	// A stale entry (completion in the past) is still found by find and
	// refreshable by reserve — matching the old map, where entries
	// persisted until a prune touched them.
	m := newMSHRFile(2)
	m.reserve(0x1000, 0, 5, 2)
	if _, ok := m.inFlight(0x1000, 10); ok {
		t.Fatal("completed entry must not report in-flight")
	}
	if !m.reserve(0x1000, 10, 20, 2) {
		t.Fatal("re-reserve of stale entry must coalesce onto its slot")
	}
	if got := m.prune(10); got != 1 {
		t.Fatalf("coalesced reserve grew the file to %d entries, want 1", got)
	}
}

func TestMSHRFileOpsDoNotAllocate(t *testing.T) {
	m := newMSHRFile(8)
	cycle := uint64(0)
	avg := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			m.reserve(mem.Addr(i)<<6, cycle, cycle+100, 8)
		}
		m.inFlight(0x40, cycle)
		m.earliest(cycle)
		m.prune(cycle + 50)
		cycle += 60
	})
	if avg != 0 {
		t.Errorf("MSHR file operations allocate %.3f allocs/cycle, want 0", avg)
	}
}

// mapMSHR is the cache's previous map-backed implementation, kept here
// verbatim as the behavioural reference for the array file.
type mapMSHR struct {
	inflight map[mem.Addr]uint64
}

func (c *mapMSHR) prune(now uint64) int {
	busy := 0
	for l, done := range c.inflight {
		if done <= now {
			delete(c.inflight, l)
		} else {
			busy++
		}
	}
	return busy
}

func (c *mapMSHR) inFlight(line mem.Addr, now uint64) (uint64, bool) {
	done, ok := c.inflight[line]
	if !ok || done <= now {
		return 0, false
	}
	return done, true
}

func (c *mapMSHR) reserve(line mem.Addr, now, done uint64, limit int) bool {
	if _, held := c.inflight[line]; held {
		c.inflight[line] = done
		return true
	}
	if c.prune(now) >= limit {
		return false
	}
	c.inflight[line] = done
	return true
}

func (c *mapMSHR) earliest(now uint64) (uint64, bool) {
	best := ^uint64(0)
	found := false
	for _, done := range c.inflight {
		if done > now && done < best {
			best = done
			found = true
		}
	}
	return best, found
}

// TestMSHRFileMatchesMap drives both implementations through the same
// random workload and requires identical observable behaviour at every
// step: reserve outcomes, in-flight lookups, busy counts and earliest
// completions.
func TestMSHRFileMatchesMap(t *testing.T) {
	const capacity = 16
	rng := rand.New(rand.NewSource(42))
	arr := newMSHRFile(capacity)
	ref := &mapMSHR{inflight: make(map[mem.Addr]uint64, capacity*2)}

	now := uint64(0)
	for step := 0; step < 200_000; step++ {
		now += uint64(rng.Intn(30))
		line := mem.Addr(rng.Intn(64)) << 6 // small pool forces coalescing
		switch rng.Intn(4) {
		case 0: // reserve, demand or prefetch limit
			limit := capacity
			if rng.Intn(2) == 0 {
				limit--
			}
			done := now + uint64(rng.Intn(400))
			got, want := arr.reserve(line, now, done, limit), ref.reserve(line, now, done, limit)
			if got != want {
				t.Fatalf("step %d: reserve(%#x, now=%d) = %v, map says %v", step, line, now, want, got)
			}
		case 1:
			gd, gok := arr.inFlight(line, now)
			wd, wok := ref.inFlight(line, now)
			if gd != wd || gok != wok {
				t.Fatalf("step %d: inFlight(%#x) = (%d,%v), map says (%d,%v)", step, line, gd, gok, wd, wok)
			}
		case 2:
			if got, want := arr.prune(now), ref.prune(now); got != want {
				t.Fatalf("step %d: busy = %d, map says %d", step, got, want)
			}
		case 3:
			ge, gok := arr.earliest(now)
			we, wok := ref.earliest(now)
			if ge != we || gok != wok {
				t.Fatalf("step %d: earliest = (%d,%v), map says (%d,%v)", step, ge, gok, we, wok)
			}
		}
	}
}
