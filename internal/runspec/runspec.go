// Package runspec defines the declarative, serializable description of
// one simulation run: which traces drive which cores, which prefetcher
// variant each core trains, and which extra variants attach at which
// cache levels. It is the single vocabulary shared by the serial
// runner, the local sweep pool, and the distributed wire protocol —
// a run is *described* here and *constructed* exactly once, in
// bench.BuildRun, no matter which scheduler executes it.
//
// The package is a leaf: it depends only on the design-config packages
// (core, bingo) and sim, never on bench or sweep, so the wire protocol
// (internal/sweep/remote) can embed these types without an import
// cycle.
package runspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"pmp/internal/core"
	"pmp/internal/prefetchers/bingo"
	"pmp/internal/sim"
)

// VariantSpec names one prefetcher construction: either a registry
// design by name, or a typed configuration for one of the
// parameterized families (PMP, Design B, Bingo). Exactly one of the
// four fields besides Name must be set.
//
// Name is the variant's wire identity — the same legacy grammar string
// (`pmp-tw8`, `designb-32w`, `bingo@llc`, ablation literals, …) that
// keyed job IDs before specs existed, so stores and -resume files
// written by older builds keep resolving. The typed fields carry the
// construction itself; nothing parses Name at run time.
type VariantSpec struct {
	Name     string              `json:"name"`
	Registry string              `json:"registry,omitempty"`
	PMP      *core.Config        `json:"pmp,omitempty"`
	DesignB  *core.DesignBConfig `json:"designb,omitempty"`
	Bingo    *bingo.Config       `json:"bingo,omitempty"`
}

// Validate reports the first structural error: a missing name, or a
// variant that sets zero or several constructions.
func (v VariantSpec) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("runspec: variant has no name")
	}
	n := 0
	if v.Registry != "" {
		n++
	}
	if v.PMP != nil {
		n++
	}
	if v.DesignB != nil {
		n++
	}
	if v.Bingo != nil {
		n++
	}
	if n != 1 {
		return fmt.Errorf("runspec: variant %q must set exactly one of registry/pmp/designb/bingo, has %d", v.Name, n)
	}
	return nil
}

// Fingerprint returns the canonical JSON rendering of the variant.
// Two variants with equal fingerprints construct identical
// prefetchers; the round-trip tests pin that the legacy name grammar
// and this rendering agree.
func (v VariantSpec) Fingerprint() string {
	b, err := json.Marshal(v)
	if err != nil { // all fields are plain data; cannot fail
		panic(err)
	}
	return string(b)
}

// TraceRef names one trace: a registered suite/external name, plus an
// optional file path for wire-shipped traces with no registry entry on
// the worker.
type TraceRef struct {
	Name string `json:"name"`
	File string `json:"file,omitempty"`
}

// CoreSpec assigns one core its trace and its trained (level-0)
// prefetcher variant.
type CoreSpec struct {
	Trace   TraceRef    `json:"trace"`
	Variant VariantSpec `json:"variant"`
}

// Placement attaches an extra prefetcher variant at a deeper cache
// level (1 = the level below L1D, hierarchy depth - 1 = the LLC) on
// every core. The attached variant trains on that level's accesses and
// fills that level, via Core.AttachPrefetcher.
type Placement struct {
	Level   int         `json:"level"`
	Variant VariantSpec `json:"variant"`
}

// RunSpec describes one complete simulation run: N cores with their
// traces and variants, optional per-level placements, the record count
// per trace, and the full machine configuration. It is pure data —
// JSON-stable, comparable, and constructible anywhere — and BuildRun
// turns it into an executable job identically on every scheduler.
type RunSpec struct {
	Cores      []CoreSpec  `json:"cores"`
	Placements []Placement `json:"placements,omitempty"`
	Records    int         `json:"records"`
	Config     sim.Config  `json:"config"`

	// Replay enables multicore trace replay (traces wrap until every
	// core's measurement window completes); it requires a bounded
	// Config.Measure.
	Replay bool `json:"replay,omitempty"`
}

// Validate reports the first structural error. It is cheap — no
// construction, no trace resolution — so the coordinator can vet
// submissions without holding designs or traces itself.
func (rs RunSpec) Validate() error {
	if len(rs.Cores) == 0 {
		return fmt.Errorf("runspec: run has no cores")
	}
	for i, c := range rs.Cores {
		if c.Trace.Name == "" {
			return fmt.Errorf("runspec: core %d has no trace name", i)
		}
		if err := c.Variant.Validate(); err != nil {
			return fmt.Errorf("runspec: core %d: %w", i, err)
		}
	}
	depth := rs.Config.HierarchyDepth()
	for i, p := range rs.Placements {
		if p.Level < 1 || p.Level >= depth {
			return fmt.Errorf("runspec: placement %d level %d outside [1, %d) for a %d-level hierarchy",
				i, p.Level, depth, depth)
		}
		if err := p.Variant.Validate(); err != nil {
			return fmt.Errorf("runspec: placement %d: %w", i, err)
		}
	}
	if rs.Records <= 0 {
		return fmt.Errorf("runspec: records must be > 0, got %d", rs.Records)
	}
	if rs.Replay && rs.Config.Measure == 0 {
		return fmt.Errorf("runspec: trace replay requires a bounded measure window")
	}
	return rs.Config.Validate()
}

// TraceKey renders the run's trace identity for job IDs: the single
// trace name for single-core runs (so legacy store records keep
// matching), or a deterministic mix label for multicore runs.
func (rs RunSpec) TraceKey() string {
	if len(rs.Cores) == 1 {
		return rs.Cores[0].Trace.Name
	}
	names := make([]string, len(rs.Cores))
	for i, c := range rs.Cores {
		names[i] = c.Trace.Name
	}
	return "mix(" + strings.Join(names, ",") + ")"
}
