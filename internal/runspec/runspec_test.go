package runspec

import (
	"encoding/json"
	"reflect"
	"testing"

	"pmp/internal/core"
	"pmp/internal/sim"
)

func pmpVariant(name string) VariantSpec {
	c := core.DefaultConfig()
	return VariantSpec{Name: name, PMP: &c}
}

func validSpec() RunSpec {
	cfg := sim.DefaultConfig()
	return RunSpec{
		Cores:   []CoreSpec{{Trace: TraceRef{Name: "t0"}, Variant: pmpVariant("pmp")}},
		Records: 10_000,
		Config:  cfg,
	}
}

func TestVariantValidate(t *testing.T) {
	c := core.DefaultConfig()
	cases := []struct {
		label string
		v     VariantSpec
		ok    bool
	}{
		{"registry", VariantSpec{Name: "pmp", Registry: "pmp"}, true},
		{"typed", pmpVariant("pmp-tw8"), true},
		{"no name", VariantSpec{Registry: "pmp"}, false},
		{"no construction", VariantSpec{Name: "x"}, false},
		{"two constructions", VariantSpec{Name: "x", Registry: "pmp", PMP: &c}, false},
	}
	for _, tc := range cases {
		if err := tc.v.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.label, err, tc.ok)
		}
	}
}

func TestRunSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	cases := []struct {
		label string
		mut   func(*RunSpec)
	}{
		{"no cores", func(rs *RunSpec) { rs.Cores = nil }},
		{"unnamed trace", func(rs *RunSpec) { rs.Cores[0].Trace.Name = "" }},
		{"bad core variant", func(rs *RunSpec) { rs.Cores[0].Variant = VariantSpec{Name: "x"} }},
		{"placement level 0", func(rs *RunSpec) {
			rs.Placements = []Placement{{Level: 0, Variant: pmpVariant("p")}}
		}},
		{"placement past depth", func(rs *RunSpec) {
			rs.Placements = []Placement{{Level: rs.Config.HierarchyDepth(), Variant: pmpVariant("p")}}
		}},
		{"bad placement variant", func(rs *RunSpec) {
			rs.Placements = []Placement{{Level: 1, Variant: VariantSpec{Name: "x"}}}
		}},
		{"zero records", func(rs *RunSpec) { rs.Records = 0 }},
		{"replay unbounded", func(rs *RunSpec) { rs.Replay = true; rs.Config.Measure = 0 }},
	}
	for _, tc := range cases {
		rs := validSpec()
		tc.mut(&rs)
		if err := rs.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted %+v", tc.label, rs)
		}
	}
}

func TestTraceKey(t *testing.T) {
	rs := validSpec()
	if got := rs.TraceKey(); got != "t0" {
		t.Errorf("single-core TraceKey = %q, want the bare trace name", got)
	}
	rs.Cores = append(rs.Cores, CoreSpec{Trace: TraceRef{Name: "t1"}, Variant: pmpVariant("pmp")})
	if got := rs.TraceKey(); got != "mix(t0,t1)" {
		t.Errorf("multicore TraceKey = %q, want mix(t0,t1)", got)
	}
}

// The whole run spec must survive the wire with its identity intact:
// deep-equal after a JSON round-trip, and the config fingerprint (a job
// ID component) unchanged.
func TestRunSpecSurvivesJSON(t *testing.T) {
	rs := validSpec()
	rs.Placements = []Placement{{Level: 2, Variant: pmpVariant("bingo@llc")}}
	rs.Replay = true
	rs.Config.Measure = 10_000

	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rs) {
		t.Errorf("run spec changed across JSON round-trip:\nbefore %+v\nafter  %+v", rs, back)
	}
	if back.Config.Fingerprint() != rs.Config.Fingerprint() {
		t.Error("config fingerprint changed across JSON round-trip")
	}
}
