// Package smsref implements the classic Spatial Memory Streaming
// prefetcher (Somogyi et al., ISCA'06) that PMP's capture framework
// derives from (paper §II): completed region patterns are stored in a
// Pattern History Table indexed by PC⊕offset and replayed verbatim on
// the next trigger with a matching event. It is the natural reference
// point between DSPatch (OR/AND merging) and Bingo (multi-feature
// lookup).
package smsref

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sms"
)

// Config sizes the SMS prefetcher.
type Config struct {
	RegionBytes    int
	PHTSets        int
	PHTWays        int
	FTSets, FTWays int
	ATSets, ATWays int
}

// DefaultConfig returns a 2K-entry PHT over 2KB regions (the original
// evaluates several sizes; this one is mid-range).
func DefaultConfig() Config {
	return Config{
		RegionBytes: 2048,
		PHTSets:     128,
		PHTWays:     16,
		FTSets:      8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

type phtEntry struct {
	valid bool
	tag   uint32
	bits  mem.BitVector
	lru   uint64
}

// Prefetcher is the SMS prefetcher. Construct with New.
type Prefetcher struct {
	cfg    Config
	region mem.Region
	fw     *sms.Framework
	pht    []phtEntry
	stamp  uint64
	q      *prefetch.OutQueue
}

// New constructs an SMS prefetcher; it panics on invalid geometry.
func New(cfg Config) *Prefetcher {
	if cfg.PHTSets <= 0 || cfg.PHTSets&(cfg.PHTSets-1) != 0 || cfg.PHTWays <= 0 {
		panic("smsref: PHT sets must be a positive power of two and ways positive")
	}
	region := mem.NewRegion(cfg.RegionBytes)
	return &Prefetcher{
		cfg:    cfg,
		region: region,
		fw: sms.New(sms.Config{
			Region: region,
			FTSets: cfg.FTSets, FTWays: cfg.FTWays,
			ATSets: cfg.ATSets, ATWays: cfg.ATWays,
		}),
		pht: make([]phtEntry, cfg.PHTSets*cfg.PHTWays),
		q:   prefetch.NewOutQueue(2 * region.Lines()),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "sms" }

// event is the original's PC⊕offset trigger event.
func (p *Prefetcher) event(pc uint64, offset int) (int, uint32) {
	h := mem.Mix64(pc<<mem.PageOffsetBits ^ uint64(offset))
	return int(h & uint64(p.cfg.PHTSets-1)), uint32(h >> 34)
}

func (p *Prefetcher) set(idx int) []phtEntry {
	i := idx * p.cfg.PHTWays
	return p.pht[i : i+p.cfg.PHTWays]
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	trig, isTrigger, closed := p.fw.Observe(a.PC, a.Addr)
	for i := range closed {
		p.learn(closed[i])
	}
	if isTrigger {
		p.predict(trig)
	}
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(line mem.Addr) {
	if pat, ok := p.fw.OnEvict(line); ok {
		p.learn(pat)
	}
}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

func (p *Prefetcher) learn(pat sms.Pattern) {
	p.stamp++
	idx, tag := p.event(pat.PC, pat.Trigger)
	set := p.set(idx)
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == tag {
			e.bits = pat.Bits // replace with the latest observation
			e.lru = p.stamp
			return
		}
		if !e.valid {
			victim, oldest = i, 0
			continue
		}
		if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	set[victim] = phtEntry{valid: true, tag: tag, bits: pat.Bits, lru: p.stamp}
}

func (p *Prefetcher) predict(trig sms.Trigger) {
	idx, tag := p.event(trig.PC, trig.Offset)
	set := p.set(idx)
	for i := range set {
		e := &set[i]
		if !e.valid || e.tag != tag {
			continue
		}
		p.stamp++
		e.lru = p.stamp
		for off := 0; off < p.region.Lines(); off++ {
			if off != trig.Offset && e.bits.Test(off) {
				p.q.Push(prefetch.Request{
					Addr:  p.region.LineAddr(trig.RegionID, off),
					Level: prefetch.LevelL1,
				})
			}
		}
		return
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// StorageBits implements prefetch.Prefetcher.
func (p *Prefetcher) StorageBits() int {
	entry := 30 + p.region.Lines() + log2(p.cfg.PHTWays)
	return p.cfg.PHTSets*p.cfg.PHTWays*entry + p.fw.StorageBits()
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
