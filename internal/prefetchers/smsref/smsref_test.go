package smsref

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func addr2k(region uint64, off int) mem.Addr {
	return mem.Addr(region*2048 + uint64(off)*mem.LineBytes)
}

func teach(p *Prefetcher, pc uint64, start uint64, rounds int, offs []int) {
	for r := 0; r < rounds; r++ {
		region := start + uint64(r)
		for _, o := range offs {
			p.Train(prefetch.Access{PC: pc, Addr: addr2k(region, o)})
			p.Issue(64)
		}
		p.OnEvict(addr2k(region, offs[0]))
	}
}

func TestSMSReplaysPattern(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 3, []int{3, 4, 5})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(1000, 3)})
	got := p.Issue(64)
	if len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	want := map[mem.Addr]bool{addr2k(1000, 4): true, addr2k(1000, 5): true}
	for _, r := range got {
		if !want[r.Addr] {
			t.Errorf("unexpected target %#x", uint64(r.Addr))
		}
		if r.Level != prefetch.LevelL1 {
			t.Errorf("SMS fills L1D, got %v", r.Level)
		}
	}
}

func TestSMSEventNeedsSamePCAndOffset(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 3, []int{3, 4})
	// Different trigger offset: different event, no replay.
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(1000, 7)})
	if got := p.Issue(64); len(got) != 0 {
		t.Errorf("different offset should miss the PHT, issued %v", got)
	}
	// Different PC: different event.
	p.Train(prefetch.Access{PC: 0x999, Addr: addr2k(2000, 3)})
	if got := p.Issue(64); len(got) != 0 {
		t.Errorf("different PC should miss the PHT, issued %v", got)
	}
}

func TestSMSLatestPatternWins(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 2, []int{3, 4})
	teach(p, 0x400, 100, 2, []int{3, 9}) // same event, new pattern
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(1000, 3)})
	got := p.Issue(64)
	if len(got) != 1 || got[0].Addr != addr2k(1000, 9) {
		t.Errorf("replay should use the latest pattern, got %v", got)
	}
}

func TestSMSStorage(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	if kb < 10 || kb > 30 {
		t.Errorf("storage = %.1f KB, expected mid-range PHT", kb)
	}
}

func TestSMSBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.PHTSets = 3
	New(cfg)
}
