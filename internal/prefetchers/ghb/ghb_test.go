package ghb

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// miss drives one L1D miss through the prefetcher.
func miss(p *Prefetcher, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(line * mem.LineBytes), Hit: false})
	return p.Issue(16)
}

func TestGHBReplaysTemporalSequence(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{10, 500, 23, 9000, 41} // irregular but repeating
	for _, l := range seq {
		miss(p, l)
	}
	// Second pass: seeing 10 again should prefetch what followed (500, 23).
	got := miss(p, 10)
	if len(got) == 0 {
		t.Fatal("repeated temporal stream should prefetch")
	}
	want := map[uint64]bool{500: true, 23: true}
	for _, r := range got {
		if !want[r.Addr.LineID()] {
			t.Errorf("unexpected target line %d", r.Addr.LineID())
		}
	}
}

func TestGHBIgnoresHits(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(i * 64), Hit: true})
	}
	if got := p.Issue(16); len(got) != 0 {
		t.Errorf("hits should not train the GHB, issued %v", got)
	}
}

func TestGHBColdSilent(t *testing.T) {
	p := New(DefaultConfig())
	if got := miss(p, 42); len(got) != 0 {
		t.Errorf("first occurrence issued %v", got)
	}
}

func TestGHBStaleLinksRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BufferSize = 64
	p := New(cfg)
	miss(p, 7)
	// Overflow the buffer so position links to 7 become stale.
	for i := uint64(1000); i < 1200; i++ {
		miss(p, i)
	}
	// Seeing 7 again must not follow the overwritten chain into garbage
	// (no panic, and any targets must be real recent lines).
	got := miss(p, 7)
	for _, r := range got {
		if r.Addr.LineID() < 1000 {
			t.Errorf("followed stale chain to line %d", r.Addr.LineID())
		}
	}
}

func TestGHBDepthFollowsOlderOccurrences(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Depth = 2
	cfg.Width = 1
	p := New(cfg)
	// Two different successors across two passes: both chains visited.
	for _, l := range []uint64{5, 100, 6, 5, 200, 6} {
		miss(p, l)
	}
	got := miss(p, 5)
	seen := map[uint64]bool{}
	for _, r := range got {
		seen[r.Addr.LineID()] = true
	}
	if !seen[200] || !seen[100] {
		t.Errorf("depth-2 chain should cover both successors, got %v", seen)
	}
}

func TestGHBInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "ghb" {
		t.Error("wrong name")
	}
	if p.StorageBits() <= 0 {
		t.Error("storage must be positive")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, true)
}
