// Package ghb implements Global History Buffer prefetching (Nesbit &
// Smith, HPCA'04/IEEE Micro'05), the classic temporal scheme the PMP
// paper's related work opens §VI-C with: a circular buffer of recent
// miss addresses threaded by linked lists per index key; on an access,
// the chain of previous occurrences supplies the addresses that
// followed last time (G/AC organization: global buffer, address
// correlating).
package ghb

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes the GHB.
type Config struct {
	BufferSize int // circular history buffer entries
	IndexSize  int // index table entries (power of two)
	Width      int // prefetches taken per chain visit
	Depth      int // chain occurrences followed
}

// DefaultConfig returns a mid-size G/AC configuration.
func DefaultConfig() Config {
	return Config{BufferSize: 1024, IndexSize: 512, Width: 2, Depth: 2}
}

type entry struct {
	line mem.Addr
	prev int // buffer index of the previous occurrence of the key, -1 none
	seq  uint64
}

// Prefetcher is the GHB prefetcher. Construct with New.
type Prefetcher struct {
	cfg   Config
	buf   []entry
	head  int
	seq   uint64
	index []int // key -> most recent buffer position (-1 empty)
	q     *prefetch.OutQueue
}

// New constructs a GHB; sizes are clamped to powers of two.
func New(cfg Config) *Prefetcher {
	cfg.BufferSize = ceilPow2(cfg.BufferSize, 64)
	cfg.IndexSize = ceilPow2(cfg.IndexSize, 64)
	if cfg.Width < 1 {
		cfg.Width = 1
	}
	if cfg.Depth < 1 {
		cfg.Depth = 1
	}
	p := &Prefetcher{
		cfg:   cfg,
		buf:   make([]entry, cfg.BufferSize),
		index: make([]int, cfg.IndexSize),
		q:     prefetch.NewOutQueue(4 * cfg.Width * cfg.Depth),
	}
	for i := range p.index {
		p.index[i] = -1
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ghb" }

func (p *Prefetcher) key(line mem.Addr) int {
	return int(mem.FoldXOR(mem.Mix64(uint64(line)), log2(p.cfg.IndexSize)))
}

// valid reports whether buffer position i still belongs to the current
// window (positions are reused; stale links must be detected).
func (p *Prefetcher) valid(i int) bool {
	if i < 0 {
		return false
	}
	e := p.buf[i]
	return e.seq > 0 && p.seq-e.seq <= uint64(p.cfg.BufferSize)
}

// Train implements prefetch.Prefetcher: GHB classically trains on
// misses; training on all accesses with the in-cache filter left to
// the memory system is the common ChampSim port.
func (p *Prefetcher) Train(a prefetch.Access) {
	if a.Hit {
		return
	}
	line := a.Addr.Line()
	k := p.key(line)

	// Walk prior occurrences: the entries that followed them in global
	// order are the temporal prediction.
	occ := p.index[k]
	for d := 0; d < p.cfg.Depth && p.valid(occ); d++ {
		for w := 1; w <= p.cfg.Width; w++ {
			next := occ + w
			if next >= len(p.buf) {
				next -= len(p.buf)
			}
			if !p.valid(next) || p.buf[next].seq <= p.buf[occ].seq {
				break
			}
			level := prefetch.LevelL1
			if d > 0 {
				level = prefetch.LevelL2
			}
			p.q.Push(prefetch.Request{Addr: p.buf[next].line, Level: level})
		}
		occ = p.buf[occ].prev
	}

	// Insert the new occurrence at the head, linking to the previous
	// one for this key.
	p.seq++
	prev := p.index[k]
	if !p.valid(prev) {
		prev = -1
	}
	p.buf[p.head] = entry{line: line, prev: prev, seq: p.seq}
	p.index[k] = p.head
	p.head++
	if p.head == len(p.buf) {
		p.head = 0
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: buffer entries hold a
// line address and a link; the index holds buffer positions.
func (p *Prefetcher) StorageBits() int {
	ptr := log2(p.cfg.BufferSize)
	return p.cfg.BufferSize*(36+ptr) + p.cfg.IndexSize*ptr
}

func ceilPow2(n, floor int) int {
	if n < floor {
		n = floor
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
