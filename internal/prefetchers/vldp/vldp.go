// Package vldp implements the Variable Length Delta Prefetcher
// (Shevgoor et al., MICRO'15), the delta-sequence competitor family
// discussed in the PMP paper's related work (§VI-B): per-page delta
// histories are matched against Delta Prediction Tables (DPTs) of
// increasing history length, longest match first.
package vldp

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes VLDP.
type Config struct {
	DHBEntries int // delta history buffer entries (pages tracked)
	DPTEntries int // entries per delta prediction table (power of two)
	Tables     int // DPT count = max history length (original: 3)
	Degree     int // prefetches per prediction
}

// DefaultConfig returns a configuration near the original's scale.
func DefaultConfig() Config {
	return Config{DHBEntries: 64, DPTEntries: 64, Tables: 3, Degree: 4}
}

type dhbEntry struct {
	valid   bool
	tag     uint64
	lastOff int
	deltas  [3]int8 // most recent first
	n       int
}

type dptEntry struct {
	valid bool
	tag   uint32
	pred  int8
	conf  uint8 // 2-bit confidence
}

// Prefetcher is VLDP. Construct with New.
type Prefetcher struct {
	cfg Config
	dhb []dhbEntry
	dpt [][]dptEntry // dpt[k]: match on history length k+1
	q   *prefetch.OutQueue
}

// New constructs VLDP; table sizes are clamped to powers of two.
func New(cfg Config) *Prefetcher {
	if cfg.Tables < 1 {
		cfg.Tables = 1
	}
	if cfg.Tables > 3 {
		cfg.Tables = 3
	}
	cfg.DHBEntries = ceilPow2(cfg.DHBEntries, 16)
	cfg.DPTEntries = ceilPow2(cfg.DPTEntries, 16)
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	p := &Prefetcher{
		cfg: cfg,
		dhb: make([]dhbEntry, cfg.DHBEntries),
		dpt: make([][]dptEntry, cfg.Tables),
		q:   prefetch.NewOutQueue(4 * cfg.Degree),
	}
	for k := range p.dpt {
		p.dpt[k] = make([]dptEntry, cfg.DPTEntries)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "vldp" }

// key hashes a delta history of length k+1 into a DPT slot and tag.
func (p *Prefetcher) key(deltas []int8) (int, uint32) {
	var h uint64
	for _, d := range deltas {
		h = h<<7 ^ uint64(uint8(d))
	}
	h = mem.Mix64(h)
	return int(h & uint64(p.cfg.DPTEntries-1)), uint32(h >> 40)
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	page := a.Addr.PageID()
	off := a.Addr.PageOffset()
	idx := mem.FoldXOR(mem.Mix64(page), log2(p.cfg.DHBEntries))
	e := &p.dhb[idx]

	if !e.valid || e.tag != page {
		*e = dhbEntry{valid: true, tag: page, lastOff: off}
		return
	}
	delta := off - e.lastOff
	if delta == 0 {
		return
	}
	e.lastOff = off
	d8 := int8(clamp(delta))

	// Learn: each history length predicts this delta.
	for k := 0; k < p.cfg.Tables && k < e.n; k++ {
		p.learn(e.deltas[:k+1], d8)
	}
	// Shift history (most recent first).
	copy(e.deltas[1:], e.deltas[:2])
	e.deltas[0] = d8
	if e.n < 3 {
		e.n++
	}

	p.predict(a.Addr, e)
}

func (p *Prefetcher) learn(hist []int8, next int8) {
	slot, tag := p.key(hist)
	t := &p.dpt[len(hist)-1][slot]
	if !t.valid || t.tag != tag {
		if t.valid && t.conf > 0 {
			t.conf--
			return
		}
		*t = dptEntry{valid: true, tag: tag, pred: next, conf: 1}
		return
	}
	if t.pred == next {
		if t.conf < 3 {
			t.conf++
		}
	} else if t.conf > 0 {
		t.conf--
	} else {
		t.pred = next
		t.conf = 1
	}
}

// predict walks the matched delta chain, longest history first.
func (p *Prefetcher) predict(addr mem.Addr, e *dhbEntry) {
	page := addr.PageID()
	cur := addr.PageOffset()
	hist := e.deltas
	n := e.n
	for step := 0; step < p.cfg.Degree; step++ {
		var best *dptEntry
		// Longest-match-first lookup.
		for k := min(p.cfg.Tables, n); k >= 1; k-- {
			slot, tag := p.key(hist[:k])
			t := &p.dpt[k-1][slot]
			if t.valid && t.tag == tag && t.conf >= 2 {
				best = t
				break
			}
		}
		if best == nil {
			return
		}
		next := cur + int(best.pred)
		if next < 0 || next >= mem.LinesPerPage {
			return
		}
		cur = next
		level := prefetch.LevelL1
		if step > 0 {
			level = prefetch.LevelL2
		}
		p.q.Push(prefetch.Request{
			Addr:  mem.Addr(page*mem.PageBytes + uint64(cur)*mem.LineBytes),
			Level: level,
		})
		// Extend the speculative history with the predicted delta.
		copy(hist[1:], hist[:2])
		hist[0] = best.pred
		if n < 3 {
			n++
		}
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher.
func (p *Prefetcher) StorageBits() int {
	dhb := p.cfg.DHBEntries * (16 + 6 + 3*7 + 2)
	dpt := p.cfg.Tables * p.cfg.DPTEntries * (24 + 7 + 2)
	return dhb + dpt
}

func clamp(d int) int {
	if d > 63 {
		return 63
	}
	if d < -63 {
		return -63
	}
	return d
}

func ceilPow2(n, floor int) int {
	if n < floor {
		n = floor
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
