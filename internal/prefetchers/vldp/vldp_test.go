package vldp

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func pageAddr(page uint64, off int) mem.Addr {
	return mem.Addr(page*mem.PageBytes + uint64(off)*mem.LineBytes)
}

func drive(p *Prefetcher, page uint64, offs []int) []prefetch.Request {
	var got []prefetch.Request
	for _, o := range offs {
		p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(page, o)})
		got = append(got, p.Issue(16)...)
	}
	return got
}

func TestVLDPLearnsConstantDelta(t *testing.T) {
	p := New(DefaultConfig())
	for page := uint64(0); page < 8; page++ {
		drive(p, page, []int{0, 2, 4, 6, 8, 10})
	}
	got := drive(p, 100, []int{0, 2, 4})
	if len(got) == 0 {
		t.Fatal("constant delta should prefetch")
	}
	for _, r := range got {
		if r.Addr.PageID() != 100 {
			t.Errorf("prefetch crossed page: %#x", uint64(r.Addr))
		}
		if r.Addr.PageOffset()%2 != 0 {
			t.Errorf("target %d breaks the +2 chain", r.Addr.PageOffset())
		}
	}
}

// The variable-length matching: a pattern where the next delta depends
// on two deltas of history ((+1,+3) -> +1, (+3,+1) -> +3) is learnable
// by the length-2 table, not the length-1 table.
func TestVLDPUsesLongerHistory(t *testing.T) {
	p := New(DefaultConfig())
	seq := []int{0, 1, 4, 5, 8, 9, 12, 13, 16, 17, 20, 21, 24}
	for page := uint64(0); page < 12; page++ {
		drive(p, page, seq)
	}
	got := drive(p, 100, []int{0, 1, 4, 5})
	if len(got) == 0 {
		t.Fatal("alternating delta pattern should prefetch via length-2 history")
	}
	// After ...+1 (history [+1,+3]) the next delta is +3; after ...+3
	// the next is +1. All targets stay on the {0,1,4,5,8,9,...} lattice.
	for _, r := range got {
		off := r.Addr.PageOffset()
		if off%4 != 0 && off%4 != 1 {
			t.Errorf("target offset %d off the alternating lattice", off)
		}
	}
}

func TestVLDPDegreeBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 2
	p := New(cfg)
	for page := uint64(0); page < 8; page++ {
		drive(p, page, []int{0, 1, 2, 3, 4, 5})
	}
	p.Issue(64)
	p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(50, 0)})
	p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(50, 1)})
	if got := p.Issue(64); len(got) > cfg.Degree {
		t.Errorf("issued %d, degree bound is %d", len(got), cfg.Degree)
	}
}

func TestVLDPColdSilent(t *testing.T) {
	p := New(DefaultConfig())
	if got := drive(p, 0, []int{0, 1}); len(got) != 0 {
		t.Errorf("cold VLDP issued %v", got)
	}
}

func TestVLDPClampsConfig(t *testing.T) {
	p := New(Config{DHBEntries: 1, DPTEntries: 1, Tables: 9, Degree: 0})
	if p.cfg.Tables != 3 || p.cfg.Degree != 1 || p.cfg.DHBEntries < 16 {
		t.Errorf("clamping failed: %+v", p.cfg)
	}
	if p.StorageBits() <= 0 {
		t.Error("storage should be positive")
	}
}

func TestVLDPInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "vldp" {
		t.Error("wrong name")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, false)
}
