// Package isb implements the Irregular Stream Buffer (Jain & Lin,
// MICRO'13), the temporal prefetcher the PMP paper's §VI-C describes
// as "reconstructing physical addresses into structural addresses":
// correlated miss pairs are linearized into a synthetic structural
// address space so that irregular temporal streams become sequential
// and can be prefetched with simple next-line logic there.
//
// Faithful simplification: the original stores its (physical →
// structural) maps in off-chip DRAM with an on-chip cache; here both
// maps are bounded on-chip tables sized by MapEntries, and the storage
// model accounts for the on-chip portion only — the same position the
// PMP paper takes when it notes these designs "require too much
// storage" (§VI-C).
package isb

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes the ISB.
type Config struct {
	MapEntries int    // bounded size of each direction's mapping table
	Degree     int    // structural next-line prefetch degree
	StreamMax  uint64 // structural addresses allocated per stream chunk
}

// DefaultConfig returns a mid-size configuration.
func DefaultConfig() Config {
	return Config{MapEntries: 8192, Degree: 3, StreamMax: 256}
}

// Prefetcher is the ISB. Construct with New.
type Prefetcher struct {
	cfg Config
	// psMap: physical line -> structural address.
	psMap map[mem.Addr]uint64
	// spMap: structural address -> physical line.
	spMap map[uint64]mem.Addr
	// nextStructural is the allocation cursor for new streams.
	nextStructural uint64
	// per-PC training state: last line touched by the PC's stream.
	lastLine map[uint64]mem.Addr
	q        *prefetch.OutQueue
}

// New constructs an ISB.
func New(cfg Config) *Prefetcher {
	if cfg.MapEntries < 256 {
		cfg.MapEntries = 256
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	if cfg.StreamMax == 0 {
		cfg.StreamMax = 256
	}
	return &Prefetcher{
		cfg:      cfg,
		psMap:    make(map[mem.Addr]uint64, cfg.MapEntries),
		spMap:    make(map[uint64]mem.Addr, cfg.MapEntries),
		lastLine: make(map[uint64]mem.Addr, 64),
		q:        prefetch.NewOutQueue(4 * cfg.Degree),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "isb" }

// assign maps a physical line to a structural address.
func (p *Prefetcher) assign(line mem.Addr, s uint64) {
	if len(p.psMap) >= p.cfg.MapEntries {
		// Bounded tables: clear wholesale (hardware would evict; bulk
		// clearing keeps the model simple and pessimistic).
		clear(p.psMap)
		clear(p.spMap)
	}
	p.psMap[line] = s
	p.spMap[s] = line
}

// Train implements prefetch.Prefetcher: consecutive misses from the
// same PC are temporal neighbours; give them consecutive structural
// addresses, then prefetch structurally-sequential successors.
func (p *Prefetcher) Train(a prefetch.Access) {
	if a.Hit {
		return
	}
	line := a.Addr.Line()

	if last, ok := p.lastLine[a.PC]; ok && last != line {
		// Linearize: the new line follows `last` structurally.
		ls, ok := p.psMap[last]
		if !ok {
			// Start a new stream chunk.
			ls = p.nextStructural
			p.nextStructural += p.cfg.StreamMax
			p.assign(last, ls)
		}
		if _, mapped := p.psMap[line]; !mapped {
			// Only extend within the chunk; crossing chunks starts anew.
			if (ls+1)%p.cfg.StreamMax != 0 {
				p.assign(line, ls+1)
			}
		}
	}
	p.lastLine[a.PC] = line
	if len(p.lastLine) > 256 {
		clear(p.lastLine)
	}

	// Prefetch the structural successors of the current line.
	s, ok := p.psMap[line]
	if !ok {
		return
	}
	for d := 1; d <= p.cfg.Degree; d++ {
		phys, ok := p.spMap[s+uint64(d)]
		if !ok {
			return
		}
		level := prefetch.LevelL1
		if d > 1 {
			level = prefetch.LevelL2
		}
		p.q.Push(prefetch.Request{Addr: phys, Level: level})
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: two mapping tables of
// (36b line, ~24b structural) pairs — large, as §VI-C emphasizes.
func (p *Prefetcher) StorageBits() int {
	return p.cfg.MapEntries * 2 * (36 + 24)
}
