package isb

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func miss(p *Prefetcher, pc, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: pc, Addr: mem.Addr(line * mem.LineBytes), Hit: false})
	return p.Issue(16)
}

func TestISBLinearizesIrregularStream(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{77, 13000, 5, 420000, 99} // irregular temporal stream
	for pass := 0; pass < 2; pass++ {
		for _, l := range seq {
			p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(l * mem.LineBytes), Hit: false})
			p.Issue(16) // drain so the assertion sees only the final prediction
		}
	}
	// Third encounter of the stream head: structural successors known.
	got := miss(p, 1, 77)
	if len(got) == 0 {
		t.Fatal("linearized stream should prefetch")
	}
	want := map[uint64]bool{13000: true, 5: true, 420000: true}
	for _, r := range got {
		if !want[r.Addr.LineID()] {
			t.Errorf("unexpected target line %d", r.Addr.LineID())
		}
	}
}

func TestISBPerPCStreams(t *testing.T) {
	p := New(DefaultConfig())
	// Two interleaved PC streams must not corrupt each other.
	a := []uint64{10, 20, 30}
	b := []uint64{5000, 6000, 7000}
	for pass := 0; pass < 2; pass++ {
		for i := range a {
			miss(p, 1, a[i])
			miss(p, 2, b[i])
		}
	}
	got := miss(p, 1, 10)
	for _, r := range got {
		if r.Addr.LineID() >= 5000 {
			t.Errorf("stream A prefetched stream B's line %d", r.Addr.LineID())
		}
	}
}

func TestISBIgnoresHits(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(i * 64), Hit: true})
	}
	if got := p.Issue(16); len(got) != 0 {
		t.Errorf("hits should not train, issued %v", got)
	}
}

func TestISBBoundedMaps(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MapEntries = 512
	p := New(cfg)
	for i := uint64(0); i < 5000; i++ {
		miss(p, 1, i*97%100000)
	}
	if len(p.psMap) > cfg.MapEntries {
		t.Errorf("psMap grew to %d, bound is %d", len(p.psMap), cfg.MapEntries)
	}
	if len(p.spMap) > cfg.MapEntries {
		t.Errorf("spMap grew to %d, bound is %d", len(p.spMap), cfg.MapEntries)
	}
}

func TestISBStorageIsLarge(t *testing.T) {
	// §VI-C's point: temporal metadata is expensive. The on-chip model
	// should dwarf PMP's 4.3KB.
	p := New(DefaultConfig())
	if kb := float64(p.StorageBits()) / 8 / 1024; kb < 50 {
		t.Errorf("ISB storage = %.1f KB; expected the large temporal-metadata budget", kb)
	}
}

func TestISBInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "isb" {
		t.Error("wrong name")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, false)
}
