package bop

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func access(p *Prefetcher, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: 0x400, Addr: mem.Addr(line * mem.LineBytes)})
	return p.Issue(16)
}

// testConfig trims the candidate list so learning rounds finish fast
// (one candidate is tested per access, round-robin).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Offsets = []int{1, 3, -2}
	cfg.ScoreMax = 15
	cfg.RoundMax = 40
	return cfg
}

func TestBOPAdoptsDominantOffset(t *testing.T) {
	p := New(testConfig())
	// Stride-3 stream long enough for offset 3 to win a learning round.
	line := uint64(64)
	for i := 0; i < 400; i++ {
		access(p, line)
		line += 3
	}
	if p.best != 3 {
		t.Fatalf("best offset = %d, want 3", p.best)
	}
	got := access(p, line)
	line += 3 // access advanced the walker
	if len(got) == 0 {
		t.Fatal("adopted offset should prefetch")
	}
	if got[0].Addr.LineID() != line+3-3 && got[0].Addr.LineID() != line {
		t.Errorf("target line %d, want current+3", got[0].Addr.LineID())
	}
}

func TestBOPNegativeOffset(t *testing.T) {
	p := New(testConfig())
	line := uint64(1 << 20)
	for i := 0; i < 400; i++ {
		access(p, line)
		line -= 2
	}
	if p.best != -2 {
		t.Errorf("best offset = %d, want -2", p.best)
	}
}

func TestBOPPausesOnRandom(t *testing.T) {
	p := New(testConfig())
	// Pseudo-random lines spread far apart: no candidate scores, so the
	// end-of-round adoption disables prefetching.
	line := uint64(12345)
	for i := 0; i < 400; i++ {
		access(p, line)
		line = line*6364136223846793005 + 1442695040888963407
		line %= 1 << 30
	}
	if p.active {
		t.Error("BOP should pause prefetching when no offset scores")
	}
}

func TestBOPStaysInPage(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 400; i++ {
		access(p, uint64(i))
	}
	// Access the last line of a page: the +1 target would cross.
	p.Issue(64)
	p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(100*mem.PageBytes - mem.LineBytes)})
	for _, r := range p.Issue(16) {
		if r.Addr.PageID() != 99 {
			t.Errorf("prefetch crossed the page: %#x", uint64(r.Addr))
		}
	}
}

func TestBOPStorageTiny(t *testing.T) {
	p := New(DefaultConfig())
	if kb := float64(p.StorageBits()) / 8 / 1024; kb > 1 {
		t.Errorf("BOP storage = %.2f KB, should be well under 1KB", kb)
	}
}

func TestBOPPanicsWithoutOffsets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty offset list accepted")
		}
	}()
	New(Config{})
}
