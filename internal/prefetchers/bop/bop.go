// Package bop implements the Best-Offset Prefetcher (Michaud,
// HPCA'16), a constant-stride competitor discussed in the PMP paper's
// related work (§VI-A): it periodically evaluates a fixed list of
// candidate offsets against recent demand history and prefetches with
// the single best-scoring offset.
//
// A small Recent Requests (RR) table remembers lines whose fetch
// recently completed; during a learning round each candidate offset d
// scores a point when the current access X hits X-d in the RR table
// (meaning a prefetch at offset d would have been timely). When a
// candidate reaches ScoreMax, or the round ends, the best offset is
// adopted for the next round.
package bop

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes BOP.
type Config struct {
	Offsets  []int // candidate offsets (classic list has ±1..8, 10, 12...)
	RRSize   int   // recent-requests table entries (power of two)
	ScoreMax int   // early-exit score
	RoundMax int   // accesses per learning round
	BadScore int   // below this, prefetching pauses for the round
}

// DefaultConfig returns a configuration close to the original.
func DefaultConfig() Config {
	return Config{
		Offsets: []int{
			1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16,
			-1, -2, -3, -4, -6, -8,
		},
		RRSize:   256,
		ScoreMax: 31,
		RoundMax: 100,
		BadScore: 1,
	}
}

// Prefetcher is BOP. Construct with New.
type Prefetcher struct {
	cfg    Config
	rr     []uint64 // hashed line tags
	scores []int
	cursor int // round-robin test cursor (one candidate per access)
	round  int
	best   int  // current best offset
	active bool // prefetching enabled for this round
	q      *prefetch.OutQueue
}

// New constructs BOP; it panics on an empty offset list.
func New(cfg Config) *Prefetcher {
	if len(cfg.Offsets) == 0 {
		panic("bop: need candidate offsets")
	}
	if cfg.RRSize < 16 {
		cfg.RRSize = 16
	}
	for cfg.RRSize&(cfg.RRSize-1) != 0 {
		cfg.RRSize++
	}
	return &Prefetcher{
		cfg:    cfg,
		rr:     make([]uint64, cfg.RRSize),
		scores: make([]int, len(cfg.Offsets)),
		best:   cfg.Offsets[0],
		active: true,
		q:      prefetch.NewOutQueue(16),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bop" }

func (p *Prefetcher) rrIndex(line uint64) int {
	return int(mem.FoldXOR(mem.Mix64(line), log2(p.cfg.RRSize)))
}

// insertRR records a completed line fetch.
func (p *Prefetcher) insertRR(line uint64) {
	p.rr[p.rrIndex(line)] = line
}

func (p *Prefetcher) inRR(line uint64) bool {
	return p.rr[p.rrIndex(line)] == line
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	line := a.Addr.LineID()

	// Learning: test one candidate per access, round-robin (the
	// original's design — testing all candidates at once would bias
	// scores toward whichever candidate is examined right after a
	// reset).
	i := p.cursor
	p.cursor = (p.cursor + 1) % len(p.cfg.Offsets)
	if base := int64(line) - int64(p.cfg.Offsets[i]); base >= 0 && p.inRR(uint64(base)) {
		p.scores[i]++
	}
	adopted := false
	if p.scores[i] >= p.cfg.ScoreMax {
		p.adopt(i)
		adopted = true
	}
	p.round++
	if !adopted && p.round >= p.cfg.RoundMax*len(p.cfg.Offsets) {
		best := 0
		for j := range p.scores {
			if p.scores[j] > p.scores[best] {
				best = j
			}
		}
		p.adopt(best)
	}

	// The RR table in the original records the *base address* of
	// completed prefetches (X - D at fill time); feeding demand lines
	// approximates that without fill-time plumbing.
	p.insertRR(line)

	if !p.active {
		return
	}
	target := int64(line) + int64(p.best)
	if target < 0 {
		return
	}
	addr := mem.Addr(uint64(target) * mem.LineBytes)
	if addr.PageID() != a.Addr.PageID() {
		return // stay within the page, as the original does
	}
	p.q.Push(prefetch.Request{Addr: addr, Level: prefetch.LevelL1})
}

// adopt ends the round, selecting candidate i.
func (p *Prefetcher) adopt(i int) {
	p.best = p.cfg.Offsets[i]
	p.active = p.scores[i] > p.cfg.BadScore
	for j := range p.scores {
		p.scores[j] = 0
	}
	p.round = 0
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: the RR table tags plus
// per-candidate scores (the original reports well under 1KB).
func (p *Prefetcher) StorageBits() int {
	return p.cfg.RRSize*12 + len(p.cfg.Offsets)*(8+6)
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
