package stride

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func access(p *Prefetcher, pc uint64, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: pc, Addr: mem.Addr(line * mem.LineBytes)})
	return p.Issue(64)
}

func TestStrideDetectsConstantStride(t *testing.T) {
	p := New(DefaultConfig())
	var got []prefetch.Request
	for i := uint64(0); i < 6; i++ {
		got = access(p, 0x400, 100+3*i)
	}
	if len(got) == 0 {
		t.Fatal("confident stride should prefetch")
	}
	// Last access was line 115; expect 118, 121, ...
	if got[0].Addr.LineID() != 118 {
		t.Errorf("first target line = %d, want 118", got[0].Addr.LineID())
	}
	for i := 1; i < len(got); i++ {
		if got[i].Addr.LineID() != got[i-1].Addr.LineID()+3 {
			t.Errorf("targets not strided: %d then %d",
				got[i-1].Addr.LineID(), got[i].Addr.LineID())
		}
	}
}

func TestStrideNeedsConfidence(t *testing.T) {
	p := New(DefaultConfig())
	if got := access(p, 0x400, 100); len(got) != 0 {
		t.Error("first access should not prefetch")
	}
	if got := access(p, 0x400, 103); len(got) != 0 {
		t.Error("first stride observation should not prefetch")
	}
}

func TestStrideResetsOnChange(t *testing.T) {
	p := New(DefaultConfig())
	for i := uint64(0); i < 5; i++ {
		access(p, 0x400, 100+3*i)
	}
	// Break the stride: confidence resets.
	if got := access(p, 0x400, 500); len(got) != 0 {
		t.Error("stride change should suppress prefetching")
	}
	if got := access(p, 0x400, 503); len(got) != 0 {
		t.Error("confidence must rebuild before prefetching")
	}
}

func TestStrideZeroStrideIgnored(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		if got := access(p, 0x400, 100); len(got) != 0 {
			t.Fatal("same-line accesses must not prefetch")
		}
	}
}

func TestStrideNegative(t *testing.T) {
	p := New(DefaultConfig())
	var got []prefetch.Request
	for i := int64(0); i < 6; i++ {
		got = access(p, 0x400, uint64(1000-2*i))
	}
	if len(got) == 0 {
		t.Fatal("negative strides should prefetch")
	}
	if got[0].Addr.LineID() != 988 {
		t.Errorf("first target = %d, want 988", got[0].Addr.LineID())
	}
}

func TestStridePerPCIsolation(t *testing.T) {
	p := New(DefaultConfig())
	// Interleave two PCs with different strides; both should lock on.
	var gotA, gotB []prefetch.Request
	for i := uint64(0); i < 6; i++ {
		gotA = access(p, 0x400, 100+2*i)
		gotB = access(p, 0x888, 5000+7*i)
	}
	if len(gotA) == 0 || len(gotB) == 0 {
		t.Fatal("both PCs should be confident")
	}
	if gotA[0].Addr.LineID() != 112 { // 110 + 2
		t.Errorf("PC A first target = %d, want 112", gotA[0].Addr.LineID())
	}
	if gotB[0].Addr.LineID() != 5042 { // 5035 + 7
		t.Errorf("PC B first target = %d, want 5042", gotB[0].Addr.LineID())
	}
}

func TestStrideClampsConfig(t *testing.T) {
	p := New(Config{Entries: 3, Degree: 0, ConfMax: 3, ConfThresh: 2})
	if p.cfg.Entries != 16 || p.cfg.Degree != 1 {
		t.Errorf("clamping failed: %+v", p.cfg)
	}
	if p.StorageBits() <= 0 {
		t.Error("storage should be positive")
	}
}
