// Package stride implements a classic PC-indexed stride prefetcher
// (Chen & Baer, 1995): a reference prediction table keyed by load PC
// tracks the last address and stride of each static load; confident
// strides are prefetched several iterations ahead.
package stride

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config sizes the prefetcher.
type Config struct {
	Entries    int // reference prediction table entries (power of two)
	Degree     int // prefetches issued ahead once confident
	ConfMax    int // confidence saturation
	ConfThresh int // confidence needed to prefetch
}

// DefaultConfig returns a 64-entry, degree-4 configuration.
func DefaultConfig() Config {
	return Config{Entries: 64, Degree: 4, ConfMax: 3, ConfThresh: 2}
}

type entry struct {
	valid    bool
	tag      uint64
	lastLine uint64
	stride   int64
	conf     int
}

// Prefetcher is the PC-stride prefetcher. Construct with New.
type Prefetcher struct {
	cfg Config
	rpt []entry
	q   *prefetch.OutQueue
}

// New constructs a stride prefetcher; entries are clamped to a power of
// two of at least 16.
func New(cfg Config) *Prefetcher {
	if cfg.Entries < 16 {
		cfg.Entries = 16
	}
	for cfg.Entries&(cfg.Entries-1) != 0 {
		cfg.Entries++
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	return &Prefetcher{
		cfg: cfg,
		rpt: make([]entry, cfg.Entries),
		q:   prefetch.NewOutQueue(4 * cfg.Degree),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "stride" }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	line := a.Addr.LineID()
	idx := mem.HashPC(a.PC, log2(p.cfg.Entries))
	e := &p.rpt[idx]
	if !e.valid || e.tag != a.PC {
		*e = entry{valid: true, tag: a.PC, lastLine: line}
		return
	}
	stride := int64(line) - int64(e.lastLine)
	e.lastLine = line
	if stride == 0 {
		return // same line: field accesses, no stride information
	}
	if stride == e.stride {
		if e.conf < p.cfg.ConfMax {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf < p.cfg.ConfThresh {
		return
	}
	for i := 1; i <= p.cfg.Degree; i++ {
		target := int64(line) + stride*int64(i)
		if target < 0 {
			break
		}
		level := prefetch.LevelL1
		if i > p.cfg.Degree/2 {
			level = prefetch.LevelL2 // far targets go lower to limit pollution
		}
		p.q.Push(prefetch.Request{
			Addr:  mem.Addr(uint64(target) * mem.LineBytes),
			Level: level,
		})
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: each RPT entry holds a
// PC tag (16b folded), last line (36b), stride (8b) and confidence (2b).
func (p *Prefetcher) StorageBits() int {
	return p.cfg.Entries * (16 + 36 + 8 + 2)
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
