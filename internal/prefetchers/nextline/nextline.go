// Package nextline implements the classic next-line prefetcher (Smith,
// 1978): every demand access prefetches the following cache line. It is
// the simplest useful baseline and a sanity check for the harness.
package nextline

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Prefetcher is the next-line prefetcher. Degree lines are fetched
// ahead of every access; the zero value prefetches nothing — construct
// with New.
type Prefetcher struct {
	degree int
	q      *prefetch.OutQueue
}

// New returns a next-line prefetcher fetching `degree` lines ahead
// (degree >= 1; values below 1 are clamped to 1).
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{degree: degree, q: prefetch.NewOutQueue(4 * degree)}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "nextline" }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	line := a.Addr.Line()
	for i := 1; i <= p.degree; i++ {
		p.q.Push(prefetch.Request{
			Addr:  line + mem.Addr(i*mem.LineBytes),
			Level: prefetch.LevelL1,
		})
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: next-line needs no state
// beyond its tiny request queue.
func (p *Prefetcher) StorageBits() int { return 4 * p.degree * 64 }
