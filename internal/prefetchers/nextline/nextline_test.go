package nextline

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func TestNextLinePrefetchesFollowingLines(t *testing.T) {
	p := New(2)
	p.Train(prefetch.Access{PC: 1, Addr: 0x1000})
	got := p.Issue(8)
	if len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	if got[0].Addr != 0x1040 || got[1].Addr != 0x1080 {
		t.Errorf("targets = %#x, %#x", uint64(got[0].Addr), uint64(got[1].Addr))
	}
	for _, r := range got {
		if r.Level != prefetch.LevelL1 {
			t.Errorf("level = %v, want L1D", r.Level)
		}
	}
}

func TestNextLineDegreeClamped(t *testing.T) {
	p := New(0)
	p.Train(prefetch.Access{Addr: 0})
	if got := p.Issue(8); len(got) != 1 {
		t.Errorf("degree 0 should clamp to 1, issued %d", len(got))
	}
}

func TestNextLineDedup(t *testing.T) {
	p := New(1)
	p.Train(prefetch.Access{Addr: 0x1000})
	p.Train(prefetch.Access{Addr: 0x1008}) // same line
	if got := p.Issue(8); len(got) != 1 {
		t.Errorf("duplicate target should be suppressed, issued %d", len(got))
	}
}

func TestNextLineInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(1)
	if p.Name() != "nextline" {
		t.Error("wrong name")
	}
	if p.StorageBits() <= 0 {
		t.Error("storage should be positive (request queue)")
	}
	p.OnEvict(mem.Addr(0))
	p.OnFill(0, prefetch.LevelL1, true)
}
