package sandbox

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func access(p *Prefetcher, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: 0x400, Addr: mem.Addr(line * mem.LineBytes)})
	return p.Issue(16)
}

func TestSandboxQualifiesStreamOffsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offsets = []int{1, 5}
	cfg.RoundLen = 64
	cfg.Threshold = 16
	p := New(cfg)
	// On a unit stream every positive offset's fake prefetch is
	// eventually demanded, so both candidates qualify — the sandbox's
	// mechanism for depth.
	for i := 0; i < 4*cfg.RoundLen; i++ {
		access(p, uint64(i))
	}
	if !p.qualified[1] || !p.qualified[5] {
		t.Fatalf("both offsets should qualify on a unit stream: %v", p.qualified)
	}
	got := access(p, 1<<20)
	if len(got) == 0 {
		t.Fatal("qualified offsets should prefetch")
	}
	if got[0].Addr.LineID() != 1<<20+1 {
		t.Errorf("first target %d, want next line", got[0].Addr.LineID())
	}
}

func TestSandboxRejectsOffPhaseOffsets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offsets = []int{2, 3}
	cfg.RoundLen = 64
	cfg.Threshold = 16
	p := New(cfg)
	// Stride-2 stream: even offsets hit, odd offsets never do.
	for i := 0; i < 4*cfg.RoundLen; i++ {
		access(p, uint64(2*i))
	}
	if !p.qualified[2] {
		t.Error("offset +2 should qualify on a stride-2 stream")
	}
	if p.qualified[3] {
		t.Error("offset +3 should not qualify on a stride-2 stream")
	}
}

func TestSandboxRandomNeverQualifies(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offsets = []int{1, 2}
	cfg.RoundLen = 64
	cfg.Threshold = 16
	p := New(cfg)
	line := uint64(999)
	for i := 0; i < 6*cfg.RoundLen; i++ {
		access(p, line%(1<<26))
		line = line*2862933555777941757 + 3037000493
	}
	for off, ok := range p.qualified {
		if ok {
			t.Errorf("offset %d qualified on random accesses", off)
		}
	}
}

func TestSandboxDegreeLevels(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Offsets = []int{1}
	cfg.RoundLen = 32
	cfg.Threshold = 8
	cfg.Degree = 2
	p := New(cfg)
	for i := 0; i < 3*cfg.RoundLen; i++ {
		access(p, uint64(i))
	}
	p.Issue(64)
	got := access(p, 1<<20)
	if len(got) != 2 {
		t.Fatalf("degree-2 should issue 2, got %d", len(got))
	}
	if got[0].Level != prefetch.LevelL1 || got[1].Level != prefetch.LevelL2 {
		t.Errorf("levels = %v, %v; want L1 then L2", got[0].Level, got[1].Level)
	}
}

func TestSandboxInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "sandbox" {
		t.Error("wrong name")
	}
	if p.StorageBits() <= 0 {
		t.Error("storage should be positive")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, true)
}

func TestSandboxPanicsWithoutOffsets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty offset list accepted")
		}
	}()
	New(Config{})
}
