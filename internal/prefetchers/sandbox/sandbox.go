// Package sandbox implements the Sandbox Prefetcher (Pugsley et al.,
// HPCA'14), discussed in the PMP paper's related work (§VI-A): like
// BOP it evaluates candidate offsets, but instead of checking real
// request history it records *fake* prefetches in a Bloom filter (the
// sandbox) and scores a candidate when a later demand access hits its
// fake prefetch.
package sandbox

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes the sandbox prefetcher.
type Config struct {
	Offsets    []int // candidate offsets evaluated round-robin
	FilterBits int   // bloom filter size in bits (power of two)
	RoundLen   int   // accesses each candidate is sandboxed for
	Threshold  int   // score needed to prefetch with a candidate
	Degree     int   // prefetch degree once a candidate qualifies
	// MaxQualified caps how many qualified offsets issue per access
	// (the original bounds aggregate prefetch aggressiveness).
	MaxQualified int
}

// DefaultConfig returns a configuration close to the original.
func DefaultConfig() Config {
	return Config{
		Offsets:      []int{1, 2, 3, 4, -1, -2, 6, 8},
		FilterBits:   2048,
		RoundLen:     256,
		Threshold:    calcThreshold(256),
		Degree:       2,
		MaxQualified: 2,
	}
}

func calcThreshold(roundLen int) int { return roundLen / 8 }

// Prefetcher is the sandbox prefetcher. Construct with New.
type Prefetcher struct {
	cfg    Config
	filter []uint64 // bloom filter bitmap
	cand   int      // candidate currently in the sandbox
	score  int
	count  int
	// qualified offsets and their degree-scaled scores from the last
	// full cycle through the candidates
	qualified map[int]bool
	q         *prefetch.OutQueue
}

// New constructs a sandbox prefetcher; it panics on an empty offset
// list.
func New(cfg Config) *Prefetcher {
	if len(cfg.Offsets) == 0 {
		panic("sandbox: need candidate offsets")
	}
	if cfg.FilterBits < 64 {
		cfg.FilterBits = 64
	}
	for cfg.FilterBits&(cfg.FilterBits-1) != 0 {
		cfg.FilterBits++
	}
	return &Prefetcher{
		cfg:       cfg,
		filter:    make([]uint64, cfg.FilterBits/64),
		qualified: map[int]bool{},
		q:         prefetch.NewOutQueue(4 * cfg.Degree),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "sandbox" }

func (p *Prefetcher) bitFor(line uint64) (int, uint64) {
	h := mem.Mix64(line) & uint64(p.cfg.FilterBits-1)
	return int(h / 64), 1 << (h % 64)
}

func (p *Prefetcher) addFake(line uint64) {
	w, b := p.bitFor(line)
	p.filter[w] |= b
}

func (p *Prefetcher) hitFake(line uint64) bool {
	w, b := p.bitFor(line)
	return p.filter[w]&b != 0
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	line := a.Addr.LineID()

	// Score the sandboxed candidate: did an earlier fake prefetch
	// predict this access?
	if p.hitFake(line) {
		p.score++
	}
	// Issue the candidate's fake prefetch for this access.
	d := p.cfg.Offsets[p.cand]
	if t := int64(line) + int64(d); t >= 0 {
		p.addFake(uint64(t))
	}

	p.count++
	if p.count >= p.cfg.RoundLen {
		p.qualified[d] = p.score >= p.cfg.Threshold
		p.score, p.count = 0, 0
		p.cand = (p.cand + 1) % len(p.cfg.Offsets)
		clear(p.filter)
	}

	// Real prefetching with the leading qualified offsets.
	used := 0
	for _, off := range p.cfg.Offsets {
		if !p.qualified[off] {
			continue
		}
		if p.cfg.MaxQualified > 0 && used >= p.cfg.MaxQualified {
			break
		}
		used++
		for deg := 1; deg <= p.cfg.Degree; deg++ {
			t := int64(line) + int64(off*deg)
			if t < 0 {
				break
			}
			addr := mem.Addr(uint64(t) * mem.LineBytes)
			if addr.PageID() != a.Addr.PageID() {
				break
			}
			level := prefetch.LevelL1
			if deg > 1 {
				level = prefetch.LevelL2
			}
			p.q.Push(prefetch.Request{Addr: addr, Level: level})
		}
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: the bloom filter plus
// per-offset state.
func (p *Prefetcher) StorageBits() int {
	return p.cfg.FilterBits + len(p.cfg.Offsets)*(8+10) + 20
}
