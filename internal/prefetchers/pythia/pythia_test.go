package pythia

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func pageAddr(page uint64, offset int) mem.Addr {
	return mem.Addr(page*mem.PageBytes + uint64(offset)*mem.LineBytes)
}

func TestPythiaAtMostOnePrefetchPerAccess(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 1000; i++ {
		p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(uint64(i/64), i%64)})
		if got := p.Issue(8); len(got) > 1 {
			t.Fatalf("issued %d prefetches for one access, want <= 1", len(got))
		}
	}
}

func TestPythiaLearnsFromReward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpsilonInv = 0 // no exploration: pure exploitation for the test
	p := New(cfg)

	// Reward action +1 massively for one state context; it should
	// become the greedy choice.
	a := prefetch.Access{PC: 0x400, Addr: pageAddr(0, 0)}
	s1, s2 := p.states(a)
	actIdx := 1 // Actions[1] == +1
	if p.cfg.Actions[actIdx] != 1 {
		t.Fatalf("expected action index 1 to be +1, got %d", p.cfg.Actions[actIdx])
	}
	for i := 0; i < 500; i++ {
		p.update(s1, s2, actIdx, p.cfg.RewardAccurate)
	}
	best, _ := p.bestAction(s1, s2)
	if best != actIdx {
		t.Errorf("greedy action = %d, want %d after reward", best, actIdx)
	}
}

func TestPythiaLearnsStreamOnline(t *testing.T) {
	p := New(DefaultConfig())
	issued := 0
	useful := 0
	// Sequential stream: feed outcomes back; prefetch volume should be
	// nonzero and mostly accurate by the end.
	line := uint64(0)
	for i := 0; i < 30000; i++ {
		p.Train(prefetch.Access{PC: 0x400, Addr: mem.Addr(line * mem.LineBytes)})
		for _, r := range p.Issue(8) {
			issued++
			// A +delta prefetch on an ascending stream is always useful.
			isUseful := r.Addr.LineID() > line
			if isUseful {
				useful++
			}
			p.OnFill(r.Addr, prefetch.LevelL1, isUseful)
		}
		line++
	}
	if issued == 0 {
		t.Fatal("Pythia never prefetched on a stream")
	}
	if useful*2 < issued {
		t.Errorf("only %d/%d prefetches useful; RL should find the stream", useful, issued)
	}
}

func TestPythiaStaysInPage(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 5000; i++ {
		p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(uint64(i), 63)})
		for _, r := range p.Issue(8) {
			if r.Addr.PageID() != uint64(i) {
				t.Fatalf("prefetch escaped the page: %#x from page %d", uint64(r.Addr), i)
			}
		}
	}
}

func TestPythiaConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Actions[0] != 0 accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.Actions = []int{1, 2}
	New(cfg)
}

func TestPythiaStateBitsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("StateBits 30 accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.StateBits = 30
	New(cfg)
}

func TestPythiaStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	// Paper Table V: 25.5KB.
	if kb < 15 || kb > 35 {
		t.Errorf("storage = %.1f KB, want near 25.5", kb)
	}
}

func TestPythiaInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "pythia" {
		t.Error("wrong name")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, true) // unknown line: no-op
}
