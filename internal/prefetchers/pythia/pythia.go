// Package pythia implements the Pythia prefetcher (Bera et al.,
// MICRO'21): prefetching cast as reinforcement learning in hardware. A
// tabular Q-value store maps program-context states to prefetch-offset
// actions; rewards derived from prefetch outcomes (accurate/inaccurate)
// drive SARSA-style updates. Pythia emits at most one prefetch per
// demand access — the prefetch-depth limitation the PMP paper calls out.
//
// Faithful simplifications (see DESIGN.md): the two-feature QVStore
// (PC+Delta and PC+Offset planes, summed) is kept, but the reward
// schedule is condensed to accurate/inaccurate/no-prefetch values and
// timeliness is folded into the accurate reward; the original's
// bandwidth-aware reward level switching is omitted (our DRAM model
// exposes no such signal to prefetchers).
package pythia

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config sizes and tunes Pythia.
type Config struct {
	StateBits int // log2 of Q-table rows per feature plane
	// Actions is the candidate offset-delta list; index 0 must be the
	// no-prefetch action (delta 0).
	Actions []int

	Alpha      float64 // learning rate
	Gamma      float64 // discount for the SARSA bootstrap
	EpsilonInv int     // explore every EpsilonInv-th decision

	RewardAccurate   float64
	RewardInaccurate float64
	RewardNoPrefetch float64

	EQSize int // evaluation queue: in-flight actions awaiting outcomes
}

// DefaultConfig returns a configuration near the original's scale
// (~25.5KB in the paper's Table V).
func DefaultConfig() Config {
	return Config{
		StateBits:  10,
		Actions:    []int{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 24, 32, -1, -2, -3, -6},
		Alpha:      0.0065 * 16, // scaled for tabular convergence at trace lengths
		Gamma:      0.55,
		EpsilonInv: 100,

		RewardAccurate:   20,
		RewardInaccurate: -8,
		RewardNoPrefetch: -2,

		EQSize: 256,
	}
}

type eqEntry struct {
	valid  bool
	line   mem.Addr
	state1 uint32
	state2 uint32
	action int
}

// Prefetcher is Pythia. Construct with New.
type Prefetcher struct {
	cfg Config
	// Two Q-value planes (feature 1: PC+Delta, feature 2: PC+Offset);
	// the action value is their sum, as in the original QVStore.
	q1 [][]float64
	q2 [][]float64

	lastLine map[uint64]uint64 // page -> last line (for delta feature)
	eq       []eqEntry
	eqIdx    int
	decision uint64
	out      *prefetch.OutQueue

	// lastState tracks the previous decision for the SARSA bootstrap.
	hasPrev    bool
	prevS1     uint32
	prevS2     uint32
	prevAction int
}

// New constructs Pythia; it panics on a config without a no-prefetch
// action.
func New(cfg Config) *Prefetcher {
	if len(cfg.Actions) == 0 || cfg.Actions[0] != 0 {
		panic("pythia: Actions[0] must be the no-prefetch action (0)")
	}
	if cfg.StateBits < 4 || cfg.StateBits > 20 {
		panic("pythia: StateBits must be in [4, 20]")
	}
	rows := 1 << cfg.StateBits
	p := &Prefetcher{
		cfg:      cfg,
		q1:       make([][]float64, rows),
		q2:       make([][]float64, rows),
		lastLine: make(map[uint64]uint64, 4096),
		eq:       make([]eqEntry, cfg.EQSize),
		out:      prefetch.NewOutQueue(8),
	}
	for i := 0; i < rows; i++ {
		p.q1[i] = make([]float64, len(cfg.Actions))
		p.q2[i] = make([]float64, len(cfg.Actions))
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "pythia" }

func (p *Prefetcher) states(a prefetch.Access) (uint32, uint32) {
	page := a.Addr.PageID()
	line := a.Addr.LineID()
	delta := int64(0)
	if last, ok := p.lastLine[page]; ok {
		delta = int64(line) - int64(last)
	}
	p.lastLine[page] = line
	if len(p.lastLine) > 8192 {
		clear(p.lastLine) // bounded state, as hardware would have
	}
	s1 := uint32(mem.FoldXOR(mem.Mix64(a.PC^uint64(delta)<<40), p.cfg.StateBits))
	s2 := uint32(mem.FoldXOR(mem.Mix64(a.PC^uint64(a.Addr.PageOffset())<<48), p.cfg.StateBits))
	return s1, s2
}

func (p *Prefetcher) qval(s1, s2 uint32, action int) float64 {
	return p.q1[s1][action] + p.q2[s2][action]
}

func (p *Prefetcher) bestAction(s1, s2 uint32) (int, float64) {
	best, bestQ := 0, p.qval(s1, s2, 0)
	for a := 1; a < len(p.cfg.Actions); a++ {
		if q := p.qval(s1, s2, a); q > bestQ {
			best, bestQ = a, q
		}
	}
	return best, bestQ
}

// Train implements prefetch.Prefetcher: every demand access is a
// decision point — choose an offset action (or no-prefetch) from the
// Q-store and enqueue at most one prefetch.
func (p *Prefetcher) Train(a prefetch.Access) {
	s1, s2 := p.states(a)
	p.decision++

	action, bestQ := p.bestAction(s1, s2)
	if p.cfg.EpsilonInv > 0 && p.decision%uint64(p.cfg.EpsilonInv) == 0 {
		// Deterministic exploration: rotate through actions.
		action = int(p.decision/uint64(p.cfg.EpsilonInv)) % len(p.cfg.Actions)
		bestQ = p.qval(s1, s2, action)
	}

	// SARSA bootstrap for the previous decision: move its value a step
	// toward the discounted value of the state that followed.
	if p.hasPrev {
		p.update(p.prevS1, p.prevS2, p.prevAction, p.cfg.Gamma*bestQ)
	}
	p.hasPrev, p.prevS1, p.prevS2, p.prevAction = true, s1, s2, action

	delta := p.cfg.Actions[action]
	if delta == 0 {
		// No-prefetch: mild negative reward keeps the agent exploring
		// prefetch actions on prefetchable streams.
		p.update(s1, s2, action, p.cfg.RewardNoPrefetch)
		return
	}
	target := int64(a.Addr.LineID()) + int64(delta)
	if target < 0 || mem.Addr(target*mem.LineBytes).PageID() != a.Addr.PageID() {
		p.update(s1, s2, action, p.cfg.RewardInaccurate)
		return
	}
	line := mem.Addr(target * mem.LineBytes)
	if p.out.Push(prefetch.Request{Addr: line, Level: prefetch.LevelL1}) {
		p.eq[p.eqIdx] = eqEntry{valid: true, line: line, state1: s1, state2: s2, action: action}
		p.eqIdx = (p.eqIdx + 1) % len(p.eq)
	}
}

// update applies one temporal-difference step moving the action's
// value toward target.
func (p *Prefetcher) update(s1, s2 uint32, action int, target float64) {
	delta := p.cfg.Alpha * (target - p.qval(s1, s2, action))
	// Split the update across the two feature planes.
	p.q1[s1][action] += delta / 2
	p.q2[s2][action] += delta / 2
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.out.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.out.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher: reward the action that
// produced this prefetch.
func (p *Prefetcher) OnFill(line mem.Addr, _ prefetch.Level, useful bool) {
	for i := range p.eq {
		e := &p.eq[i]
		if e.valid && e.line == line {
			r := p.cfg.RewardInaccurate
			if useful {
				r = p.cfg.RewardAccurate
			}
			p.update(e.state1, e.state2, e.action, r)
			e.valid = false
			return
		}
	}
}

// StorageBits implements prefetch.Prefetcher: two Q planes of
// fixed-point action values plus the evaluation queue, near the
// original's 25.5KB.
func (p *Prefetcher) StorageBits() int {
	rows := 1 << p.cfg.StateBits
	qBits := 2 * rows * len(p.cfg.Actions) * 5 // 5b quantized Q values
	eq := p.cfg.EQSize * (36 + 2*p.cfg.StateBits + 5)
	return qBits + eq
}
