// Package misb implements the Managed Irregular Stream Buffer (Wu et
// al., ISCA'19), the §VI-C follow-up to ISB: the same
// physical↔structural linearization, but with metadata managed as
// small on-chip caches backed by (modelled) off-chip storage, and
// Bloom filters that suppress pointless metadata fetches for addresses
// that were never assigned a structural mapping.
//
// Modelling: the off-chip backing store is an unbounded map (its
// residence is what the original pays DRAM traffic for); the on-chip
// PS/SP caches are bounded; a metadata access that misses on-chip but
// hits the backing store pays nothing here except that the prediction
// is skipped for that access (the fetch would arrive too late), which
// is the first-order behavioural effect of metadata misses.
package misb

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes the MISB.
type Config struct {
	OnChipEntries int // per-direction on-chip metadata cache entries
	Degree        int
	StreamMax     uint64
	BloomBits     int // Bloom filter size (power of two)
}

// DefaultConfig returns a configuration with a modest on-chip budget.
func DefaultConfig() Config {
	return Config{OnChipEntries: 2048, Degree: 3, StreamMax: 256, BloomBits: 1 << 15}
}

type cacheEntry[K comparable, V any] struct {
	valid bool
	key   K
	val   V
}

// metaCache is a tiny direct-mapped metadata cache.
type metaCache[K comparable, V any] struct {
	slots []cacheEntry[K, V]
	hash  func(K) uint64
}

func newMetaCache[K comparable, V any](entries int, hash func(K) uint64) *metaCache[K, V] {
	n := 1
	for n < entries {
		n <<= 1
	}
	return &metaCache[K, V]{slots: make([]cacheEntry[K, V], n), hash: hash}
}

func (c *metaCache[K, V]) get(k K) (V, bool) {
	e := &c.slots[c.hash(k)&uint64(len(c.slots)-1)]
	if e.valid && e.key == k {
		return e.val, true
	}
	var zero V
	return zero, false
}

func (c *metaCache[K, V]) put(k K, v V) {
	e := &c.slots[c.hash(k)&uint64(len(c.slots)-1)]
	*e = cacheEntry[K, V]{valid: true, key: k, val: v}
}

// Prefetcher is the MISB. Construct with New.
type Prefetcher struct {
	cfg Config

	// Off-chip backing store (unbounded; the original keeps this in
	// DRAM).
	psStore map[mem.Addr]uint64
	spStore map[uint64]mem.Addr
	// On-chip metadata caches.
	psCache *metaCache[mem.Addr, uint64]
	spCache *metaCache[uint64, mem.Addr]
	// Bloom filter over lines that have a PS mapping at all: a miss
	// here skips the (pointless) metadata fetch.
	bloom []uint64

	nextStructural uint64
	lastLine       map[uint64]mem.Addr
	q              *prefetch.OutQueue
}

// New constructs a MISB.
func New(cfg Config) *Prefetcher {
	if cfg.OnChipEntries < 64 {
		cfg.OnChipEntries = 64
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	if cfg.StreamMax == 0 {
		cfg.StreamMax = 256
	}
	if cfg.BloomBits < 64 {
		cfg.BloomBits = 64
	}
	for cfg.BloomBits&(cfg.BloomBits-1) != 0 {
		cfg.BloomBits++
	}
	return &Prefetcher{
		cfg:     cfg,
		psStore: make(map[mem.Addr]uint64),
		spStore: make(map[uint64]mem.Addr),
		psCache: newMetaCache[mem.Addr, uint64](cfg.OnChipEntries,
			func(a mem.Addr) uint64 { return mem.Mix64(uint64(a)) }),
		spCache:  newMetaCache[uint64, mem.Addr](cfg.OnChipEntries, mem.Mix64),
		bloom:    make([]uint64, cfg.BloomBits/64),
		lastLine: make(map[uint64]mem.Addr, 64),
		q:        prefetch.NewOutQueue(4 * cfg.Degree),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "misb" }

func (p *Prefetcher) bloomAdd(line mem.Addr) {
	h := mem.Mix64(uint64(line)) & uint64(p.cfg.BloomBits-1)
	p.bloom[h/64] |= 1 << (h % 64)
}

func (p *Prefetcher) bloomHas(line mem.Addr) bool {
	h := mem.Mix64(uint64(line)) & uint64(p.cfg.BloomBits-1)
	return p.bloom[h/64]&(1<<(h%64)) != 0
}

func (p *Prefetcher) assign(line mem.Addr, s uint64) {
	p.psStore[line] = s
	p.spStore[s] = line
	p.psCache.put(line, s)
	p.spCache.put(s, line)
	p.bloomAdd(line)
}

// lookupPS translates physical→structural: the Bloom filter rejects
// unmapped lines cheaply; an on-chip miss with a backing-store hit
// refills the cache but yields no prediction this time (the metadata
// fetch would be too late).
func (p *Prefetcher) lookupPS(line mem.Addr) (uint64, bool) {
	if !p.bloomHas(line) {
		return 0, false
	}
	if s, ok := p.psCache.get(line); ok {
		return s, true
	}
	if s, ok := p.psStore[line]; ok {
		p.psCache.put(line, s) // metadata fetch completes for next time
	}
	return 0, false
}

func (p *Prefetcher) lookupSP(s uint64) (mem.Addr, bool) {
	if a, ok := p.spCache.get(s); ok {
		return a, true
	}
	if a, ok := p.spStore[s]; ok {
		p.spCache.put(s, a)
	}
	return 0, false
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	if a.Hit {
		return
	}
	line := a.Addr.Line()

	if last, ok := p.lastLine[a.PC]; ok && last != line {
		ls, ok := p.psStore[last]
		if !ok {
			ls = p.nextStructural
			p.nextStructural += p.cfg.StreamMax
			p.assign(last, ls)
		}
		if _, mapped := p.psStore[line]; !mapped && (ls+1)%p.cfg.StreamMax != 0 {
			p.assign(line, ls+1)
		}
	}
	p.lastLine[a.PC] = line
	if len(p.lastLine) > 256 {
		clear(p.lastLine)
	}

	s, ok := p.lookupPS(line)
	if !ok {
		return
	}
	for d := 1; d <= p.cfg.Degree; d++ {
		phys, ok := p.lookupSP(s + uint64(d))
		if !ok {
			return
		}
		level := prefetch.LevelL1
		if d > 1 {
			level = prefetch.LevelL2
		}
		p.q.Push(prefetch.Request{Addr: phys, Level: level})
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: MISB's point is that the
// ON-CHIP budget is small (caches + Bloom filter); the backing store
// lives off-chip and is excluded, as in the original's accounting.
func (p *Prefetcher) StorageBits() int {
	return p.cfg.OnChipEntries*2*(36+24) + p.cfg.BloomBits
}
