package misb

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func miss(p *Prefetcher, pc, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: pc, Addr: mem.Addr(line * mem.LineBytes), Hit: false})
	return p.Issue(16)
}

func TestMISBLinearizesStream(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{77, 13000, 5, 420000, 99}
	for pass := 0; pass < 2; pass++ {
		for _, l := range seq {
			miss(p, 1, l)
		}
	}
	got := miss(p, 1, 77)
	if len(got) == 0 {
		t.Fatal("linearized stream should prefetch")
	}
	want := map[uint64]bool{13000: true, 5: true, 420000: true}
	for _, r := range got {
		if !want[r.Addr.LineID()] {
			t.Errorf("unexpected target line %d", r.Addr.LineID())
		}
	}
}

func TestMISBBloomSkipsUnmapped(t *testing.T) {
	p := New(DefaultConfig())
	// A line never seen in any pair must produce nothing — and, by the
	// Bloom filter, without touching the backing store (observable only
	// as absence of prediction here).
	if got := miss(p, 1, 424242); len(got) != 0 {
		t.Errorf("unmapped line prefetched %v", got)
	}
}

func TestMISBOnChipMissDelaysPrediction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OnChipEntries = 64 // tiny on-chip cache
	p := New(cfg)
	seq := make([]uint64, 0, 600)
	for i := uint64(0); i < 300; i++ {
		seq = append(seq, 1_000_000+i*977)
	}
	for pass := 0; pass < 2; pass++ {
		for _, l := range seq {
			miss(p, 1, l)
		}
	}
	// The head's metadata was likely displaced from the on-chip caches;
	// early re-accesses may predict nothing, but each one refills a
	// metadata level (PS first, then the SP entries), so prediction
	// resumes within a few accesses.
	predicted := false
	for i := 0; i < 5 && !predicted; i++ {
		predicted = len(miss(p, 1, seq[0])) > 0
	}
	if !predicted {
		t.Error("metadata refills should re-enable prediction within a few re-accesses")
	}
}

func TestMISBStorageIsOnChipOnly(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	// MISB's point vs ISB: a bounded on-chip budget (~34KB here).
	if kb > 64 {
		t.Errorf("on-chip budget = %.1f KB, should be bounded", kb)
	}
	// Grow the backing store; accounted storage must not change.
	before := p.StorageBits()
	for i := uint64(0); i < 5000; i++ {
		miss(p, 1, i*131)
	}
	if p.StorageBits() != before {
		t.Error("off-chip backing store must not count as on-chip storage")
	}
}

func TestMISBInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "misb" {
		t.Error("wrong name")
	}
	p.OnEvict(0)
	p.OnFill(0, prefetch.LevelL1, true)
	p.Train(prefetch.Access{PC: 1, Addr: 64, Hit: true}) // hits ignored
	if got := p.Issue(8); len(got) != 0 {
		t.Errorf("hit trained a prediction: %v", got)
	}
}
