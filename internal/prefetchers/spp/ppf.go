package spp

import "pmp/internal/mem"

// numFeatures is the PPF's feature count; the original uses nine
// hashed-perceptron features derived from the proposal's context.
const numFeatures = 9

// perceptron is the hashed-perceptron prefetch filter: one weight table
// per feature, summed at inference, trained by incrementing toward the
// observed outcome while the sum is within the training threshold.
type perceptron struct {
	cfg    Config
	tables [numFeatures][]int16
	wMax   int16
	wMin   int16
}

func newPerceptron(cfg Config) *perceptron {
	p := &perceptron{cfg: cfg}
	p.wMax = int16(1)<<uint(cfg.WeightBits-1) - 1
	p.wMin = -p.wMax - 1
	for i := range p.tables {
		p.tables[i] = make([]int16, cfg.TableSize)
	}
	return p
}

// features computes the nine feature-table indices for one proposal.
// The features follow the PPF paper: PC, PC⊕depth, PC⊕delta, address,
// cache line, page offset, signature, confidence bucket, and
// page⊕offset.
func (p *perceptron) features(pc uint64, target mem.Addr, delta, depth int, sig uint32, conf float64) [numFeatures]uint32 {
	bits := log2(p.cfg.TableSize)
	h := func(v uint64) uint32 { return uint32(mem.FoldXOR(mem.Mix64(v), bits)) }
	confBucket := uint64(conf * 16)
	return [numFeatures]uint32{
		h(pc),
		h(pc ^ uint64(depth)<<32),
		h(pc ^ uint64(uint32(int32(delta)))<<24),
		h(uint64(target)),
		h(target.LineID()),
		h(uint64(target.PageOffset())),
		h(uint64(sig)),
		h(confBucket),
		h(target.PageID() ^ uint64(target.PageOffset())<<40),
	}
}

// sum returns the perceptron activation for the feature vector.
func (p *perceptron) sum(feats [numFeatures]uint32) int {
	s := 0
	for i, f := range feats {
		s += int(p.tables[i][f])
	}
	return s
}

// train moves weights toward the observed outcome (useful -> up,
// useless -> down), saturating at the weight width, and only while the
// current activation is within the training threshold (perceptron
// training rule).
func (p *perceptron) train(feats [numFeatures]uint32, useful bool) {
	s := p.sum(feats)
	if s > p.cfg.TrainThresh && useful {
		return
	}
	if s < -p.cfg.TrainThresh && !useful {
		return
	}
	for i, f := range feats {
		w := p.tables[i][f]
		if useful {
			if w < p.wMax {
				p.tables[i][f] = w + 1
			}
		} else if w > p.wMin {
			p.tables[i][f] = w - 1
		}
	}
}
