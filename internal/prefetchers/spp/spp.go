// Package spp implements the Signature Path Prefetcher (Kim et al.,
// MICRO'16) with the Perceptron Prefetch Filter (Bhatia et al.,
// ISCA'19) — the delta-sequence competitor in the PMP paper's
// evaluation ("SPP+PPF").
//
// SPP compresses the recent delta history of each page into a
// signature, looks the signature up in a pattern table of delta
// candidates with confidence counters, and walks the signature path
// ahead of the demand stream (lookahead), multiplying per-step
// confidences. The PPF is a hashed perceptron over nine features that
// vetoes low-quality proposals and is trained online from prefetch
// outcomes.
package spp

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config sizes SPP+PPF.
type Config struct {
	STEntries  int     // signature table entries (pages tracked)
	PTEntries  int     // pattern table entries (signatures)
	DeltasPer  int     // delta slots per pattern table entry
	MaxDepth   int     // lookahead depth bound
	FillThresh float64 // path confidence for L1D fills
	PFThresh   float64 // path confidence to keep prefetching (L2C fills)
	// PPF parameters.
	WeightBits  int // perceptron weight width
	TableSize   int // weights per feature table (power of two)
	TrainThresh int // |sum| below which training continues
	Tau         int // activation threshold

	// Decay is the per-step global confidence attenuation of the
	// lookahead walk (the original's quantized path-confidence product
	// shrinks every hop even for perfectly repeating deltas).
	Decay float64
}

// DefaultConfig returns a configuration matching the DPC-3 scale
// (~48.4KB in the paper's Table V).
func DefaultConfig() Config {
	return Config{
		STEntries: 256,
		PTEntries: 512,
		DeltasPer: 4,
		MaxDepth:  8,
		// With the per-step decay, the first ~3 lookahead hops of a
		// confident path clear FillThresh and fill L1D (the original
		// fills its own level aggressively — paper Fig 10 shows SPP+PPF
		// among the heaviest useless-L1D producers); deeper hops fill
		// L2C until the path confidence crosses PFThresh.
		FillThresh: 0.50,
		PFThresh:   0.25,

		WeightBits:  6,
		TableSize:   4096,
		TrainThresh: 64,
		Tau:         0,
		Decay:       0.75,
	}
}

type stEntry struct {
	valid      bool
	tag        uint64
	lastOffset int
	sig        uint32

	// Lookahead cursor: the walk continues from where the previous
	// access's walk stopped, so each line is proposed at most once (the
	// original's per-page lookahead state).
	laOffset int
	laSig    uint32
	laConf   float64
	laDepth  int
}

type ptDelta struct {
	delta int8
	count uint8
}

type ptEntry struct {
	sigCount uint8
	deltas   []ptDelta
}

// issueRecord remembers the PPF features of an in-flight prefetch so
// the perceptron can be trained when its outcome is known.
type issueRecord struct {
	valid    bool
	line     mem.Addr
	features [numFeatures]uint32
}

// Prefetcher is SPP+PPF. Construct with New.
type Prefetcher struct {
	cfg Config
	st  []stEntry
	pt  []ptEntry
	q   *prefetch.OutQueue

	ppf     *perceptron
	records []issueRecord
	recIdx  int
}

// New constructs SPP+PPF; table sizes are clamped to powers of two.
func New(cfg Config) *Prefetcher {
	cfg.STEntries = ceilPow2(cfg.STEntries, 16)
	cfg.PTEntries = ceilPow2(cfg.PTEntries, 16)
	cfg.TableSize = ceilPow2(cfg.TableSize, 64)
	if cfg.DeltasPer < 1 {
		cfg.DeltasPer = 4
	}
	if cfg.MaxDepth < 1 {
		cfg.MaxDepth = 1
	}
	if cfg.Decay <= 0 || cfg.Decay > 1 {
		cfg.Decay = 0.8
	}
	p := &Prefetcher{
		cfg:     cfg,
		st:      make([]stEntry, cfg.STEntries),
		pt:      make([]ptEntry, cfg.PTEntries),
		q:       prefetch.NewOutQueue(64),
		ppf:     newPerceptron(cfg),
		records: make([]issueRecord, 256),
	}
	for i := range p.pt {
		p.pt[i].deltas = make([]ptDelta, cfg.DeltasPer)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "spp-ppf" }

func updateSig(sig uint32, delta int) uint32 {
	d := uint32(delta) & 0x3f
	return (sig<<3 ^ d) & 0xfff
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	page := a.Addr.PageID()
	offset := a.Addr.PageOffset()
	idx := mem.FoldXOR(mem.Mix64(page), log2(p.cfg.STEntries))
	e := &p.st[idx]

	if !e.valid || e.tag != page {
		*e = stEntry{valid: true, tag: page, lastOffset: offset}
		return
	}
	delta := offset - e.lastOffset
	if delta == 0 {
		return
	}
	// Learn the transition sig -> delta.
	p.learn(e.sig, delta)
	e.sig = updateSig(e.sig, delta)
	e.lastOffset = offset

	// The demand stream caught up with (or passed) the lookahead
	// cursor: restart the walk from the current position at full
	// confidence.
	if e.laOffset <= offset {
		e.laOffset = offset
		e.laSig = e.sig
		e.laConf = 1.0
		e.laDepth = 0
	}
	p.lookahead(a, page, e)
}

func (p *Prefetcher) ptIndex(sig uint32) int {
	return int(mem.FoldXOR(mem.Mix64(uint64(sig)), log2(p.cfg.PTEntries)))
}

func (p *Prefetcher) learn(sig uint32, delta int) {
	e := &p.pt[p.ptIndex(sig)]
	if e.sigCount == 255 {
		// Age all counters to keep confidences adaptive.
		e.sigCount >>= 1
		for i := range e.deltas {
			e.deltas[i].count >>= 1
		}
	}
	e.sigCount++
	d8 := int8(clampDelta(delta))
	slot := -1
	minCount := uint8(255)
	for i := range e.deltas {
		if e.deltas[i].count > 0 && e.deltas[i].delta == d8 {
			e.deltas[i].count++
			return
		}
		if e.deltas[i].count < minCount {
			minCount, slot = e.deltas[i].count, i
		}
	}
	e.deltas[slot] = ptDelta{delta: d8, count: 1}
}

// lookahead advances the page's cursor along the signature path,
// proposing each line once, until the path confidence drops below
// PFThresh, the depth bound is hit, or the page ends.
func (p *Prefetcher) lookahead(a prefetch.Access, page uint64, st *stEntry) {
	for st.laDepth < p.cfg.MaxDepth {
		e := &p.pt[p.ptIndex(st.laSig)]
		if e.sigCount == 0 {
			return
		}
		best := -1
		var bestCount uint8
		for i := range e.deltas {
			if e.deltas[i].count > bestCount {
				bestCount, best = e.deltas[i].count, i
			}
		}
		if best < 0 || bestCount == 0 {
			return
		}
		delta := int(e.deltas[best].delta)
		conf := st.laConf * p.cfg.Decay * float64(bestCount) / float64(e.sigCount)
		if conf < p.cfg.PFThresh {
			return
		}
		next := st.laOffset + delta
		if next < 0 || next >= mem.LinesPerPage {
			return // SPP as configured does not cross pages
		}
		st.laConf = conf
		st.laOffset = next
		st.laSig = updateSig(st.laSig, delta)
		st.laDepth++

		target := mem.Addr(page*mem.PageBytes + uint64(next)*mem.LineBytes)
		level := prefetch.LevelL2
		if conf >= p.cfg.FillThresh {
			level = prefetch.LevelL1
		}
		feats := p.ppf.features(a.PC, target, delta, st.laDepth, st.laSig, conf)
		if p.ppf.sum(feats) < p.cfg.Tau {
			// Perceptron veto: the proposal is dropped (no outcome, so
			// no training either).
			continue
		}
		if p.q.Push(prefetch.Request{Addr: target, Level: level}) {
			p.remember(target.Line(), feats)
		}
	}
}

func (p *Prefetcher) remember(line mem.Addr, feats [numFeatures]uint32) {
	p.records[p.recIdx] = issueRecord{valid: true, line: line, features: feats}
	p.recIdx = (p.recIdx + 1) % len(p.records)
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher: train the perceptron with the
// prefetch outcome.
func (p *Prefetcher) OnFill(line mem.Addr, _ prefetch.Level, useful bool) {
	for i := range p.records {
		r := &p.records[i]
		if r.valid && r.line == line {
			p.ppf.train(r.features, useful)
			r.valid = false
			return
		}
	}
}

// StorageBits implements prefetch.Prefetcher: ST + PT + PPF weight
// tables + the outcome records. The PPF's nine 4K-entry weight tables
// dominate, as in the original (paper Table V: 48.4KB total).
func (p *Prefetcher) StorageBits() int {
	st := p.cfg.STEntries * (16 + 6 + 12) // tag + last offset + signature
	pt := p.cfg.PTEntries * (8 + p.cfg.DeltasPer*(7+8))
	ppf := numFeatures * p.cfg.TableSize * p.cfg.WeightBits
	rec := len(p.records) * (36 + numFeatures*12 + 8)
	return st + pt + ppf + rec
}

func clampDelta(d int) int {
	if d > 63 {
		return 63
	}
	if d < -63 {
		return -63
	}
	return d
}

func ceilPow2(n, floor int) int {
	if n < floor {
		n = floor
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
