package spp

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func pageAddr(page uint64, offset int) mem.Addr {
	return mem.Addr(page*mem.PageBytes + uint64(offset)*mem.LineBytes)
}

func drive(p *Prefetcher, pc uint64, page uint64, offsets []int) []prefetch.Request {
	var got []prefetch.Request
	for _, o := range offsets {
		p.Train(prefetch.Access{PC: pc, Addr: pageAddr(page, o)})
		got = append(got, p.Issue(64)...)
	}
	return got
}

func TestSPPLearnsDeltaPath(t *testing.T) {
	p := New(DefaultConfig())
	// Train delta +2 across several pages so signature transitions are
	// confident.
	for page := uint64(0); page < 6; page++ {
		drive(p, 0x400, page, []int{0, 2, 4, 6, 8, 10})
	}
	got := drive(p, 0x400, 100, []int{0, 2, 4})
	if len(got) == 0 {
		t.Fatal("confident delta path should prefetch")
	}
	// Every target must continue the +2 path within the page.
	for _, r := range got {
		if r.Addr.PageID() != 100 {
			t.Errorf("cross-page prefetch %#x", uint64(r.Addr))
		}
		if r.Addr.PageOffset()%2 != 0 {
			t.Errorf("target offset %d breaks the +2 path", r.Addr.PageOffset())
		}
	}
}

func TestSPPLookaheadDepth(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxDepth = 4
	p := New(cfg)
	for page := uint64(0); page < 8; page++ {
		drive(p, 0x400, page, []int{0, 1, 2, 3, 4, 5, 6, 7})
	}
	p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(50, 0)})
	p.Train(prefetch.Access{PC: 0x400, Addr: pageAddr(50, 1)})
	got := p.Issue(64)
	if len(got) > cfg.MaxDepth {
		t.Errorf("issued %d targets, lookahead bound is %d", len(got), cfg.MaxDepth)
	}
}

func TestSPPStaysInPage(t *testing.T) {
	p := New(DefaultConfig())
	for page := uint64(0); page < 6; page++ {
		drive(p, 0x400, page, []int{56, 58, 60, 62})
	}
	got := drive(p, 0x400, 100, []int{56, 58, 60, 62})
	for _, r := range got {
		if r.Addr.PageID() != 100 {
			t.Fatalf("prefetch crossed the page: %#x", uint64(r.Addr))
		}
	}
}

func TestSPPUntrainedSilent(t *testing.T) {
	p := New(DefaultConfig())
	if got := drive(p, 0x400, 0, []int{0}); len(got) != 0 {
		t.Errorf("first access issued %v", got)
	}
}

func TestPPFVetoesAfterUselessFeedback(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	train := func() int {
		n := 0
		for page := uint64(0); page < 4; page++ {
			n += len(drive(p, 0x400, 200+page, []int{0, 2, 4, 6, 8}))
		}
		return n
	}
	before := train()
	if before == 0 {
		t.Skip("no prefetches to veto at this configuration")
	}
	// Hammer the filter with useless outcomes for everything it issued.
	for i := 0; i < 2000; i++ {
		p.OnFill(mem.Addr(uint64(i%64)*64), prefetch.LevelL2, false)
		// Also train directly via records.
		for j := range p.records {
			if p.records[j].valid {
				p.ppf.train(p.records[j].features, false)
			}
		}
	}
	after := train()
	if after >= before {
		t.Errorf("PPF should suppress after useless feedback: %d -> %d", before, after)
	}
}

func TestPerceptronTrainSaturates(t *testing.T) {
	cfg := DefaultConfig()
	pp := newPerceptron(cfg)
	feats := pp.features(0x400, 0x1000, 2, 0, 0x12, 0.5)
	for i := 0; i < 1000; i++ {
		pp.train(feats, true)
	}
	s := pp.sum(feats)
	if s <= 0 {
		t.Errorf("sum after useful training = %d, want positive", s)
	}
	maxSum := numFeatures * int(pp.wMax)
	if s > maxSum {
		t.Errorf("sum %d exceeds saturation bound %d", s, maxSum)
	}
	for i := 0; i < 2000; i++ {
		pp.train(feats, false)
	}
	if pp.sum(feats) >= 0 {
		t.Error("sum should go negative after useless training")
	}
}

func TestPerceptronThresholdStopsTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainThresh = 5
	pp := newPerceptron(cfg)
	feats := pp.features(0x400, 0x1000, 2, 0, 0x12, 0.5)
	for i := 0; i < 100; i++ {
		pp.train(feats, true)
	}
	// Training halts once the sum clears the threshold (plus one step).
	if s := pp.sum(feats); s > cfg.TrainThresh+numFeatures {
		t.Errorf("sum = %d, training should stop near the threshold %d", s, cfg.TrainThresh)
	}
}

func TestSPPStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	// Paper Table V: 48.4KB.
	if kb < 33 || kb > 60 {
		t.Errorf("storage = %.1f KB, want near 48.4", kb)
	}
}

func TestSPPConfigClamps(t *testing.T) {
	p := New(Config{STEntries: 1, PTEntries: 1, TableSize: 1, DeltasPer: 0, MaxDepth: 0,
		FillThresh: 0.9, PFThresh: 0.25, WeightBits: 6, TrainThresh: 64})
	if p.cfg.STEntries < 16 || p.cfg.PTEntries < 16 || p.cfg.TableSize < 64 {
		t.Errorf("clamps failed: %+v", p.cfg)
	}
	if p.cfg.DeltasPer < 1 || p.cfg.MaxDepth < 1 {
		t.Errorf("clamps failed: %+v", p.cfg)
	}
}

func TestSPPInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "spp-ppf" {
		t.Error("wrong name")
	}
	p.OnEvict(0)
}
