package bingo

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// addr2k builds an address within a 2KB Bingo region.
func addr2k(region uint64, offset int) mem.Addr {
	return mem.Addr(region*2048 + uint64(offset)*mem.LineBytes)
}

func teach(p *Prefetcher, pc uint64, start uint64, rounds int, offsets []int) {
	for r := 0; r < rounds; r++ {
		region := start + uint64(r)
		for _, o := range offsets {
			p.Train(prefetch.Access{PC: pc, Addr: addr2k(region, o)})
			p.Issue(64)
		}
		p.OnEvict(addr2k(region, offsets[0]))
	}
}

func TestBingoLongEventMatchFillsL1(t *testing.T) {
	p := New(DefaultConfig())
	// Train region 7 then revisit the same region with the same PC: the
	// long event (PC+Address) matches exactly.
	teach(p, 0x400, 7, 1, []int{3, 4, 5})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(7, 3)})
	got := p.Issue(64)
	if len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	for _, r := range got {
		if r.Level != prefetch.LevelL1 {
			t.Errorf("long-event match should fill L1D, got %v", r.Level)
		}
	}
	want := map[mem.Addr]bool{addr2k(7, 4): true, addr2k(7, 5): true}
	for _, r := range got {
		if !want[r.Addr] {
			t.Errorf("unexpected target %#x", uint64(r.Addr))
		}
	}
}

func TestBingoShortEventFallback(t *testing.T) {
	p := New(DefaultConfig())
	// Train several regions at trigger offset 3 with one PC; a fresh
	// region misses the long event but the short event (PC+Offset)
	// still hits via voting.
	teach(p, 0x400, 0, 6, []int{3, 4})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(5000, 3)})
	got := p.Issue(64)
	if len(got) == 0 {
		t.Fatal("short-event fallback should predict")
	}
	if got[0].Addr != addr2k(5000, 4) {
		t.Errorf("target = %#x, want offset 4 of the fresh region", uint64(got[0].Addr))
	}
	if got[0].Level != prefetch.LevelL1 {
		t.Errorf("unanimous vote should fill L1D, got %v", got[0].Level)
	}
}

func TestBingoVotingSplitsLevels(t *testing.T) {
	p := New(DefaultConfig())
	// Two pattern populations at the same (PC, offset): {3,4} always,
	// {3,10} rarely. Offset 4 gets majority -> L1; offset 10 minority ->
	// L2.
	teach(p, 0x400, 0, 6, []int{3, 4})
	teach(p, 0x400, 100, 1, []int{3, 10})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(5000, 3)})
	levels := map[mem.Addr]prefetch.Level{}
	for _, r := range p.Issue(64) {
		levels[r.Addr] = r.Level
	}
	if levels[addr2k(5000, 4)] != prefetch.LevelL1 {
		t.Errorf("majority offset level = %v, want L1D", levels[addr2k(5000, 4)])
	}
	if levels[addr2k(5000, 10)] != prefetch.LevelL2 {
		t.Errorf("minority offset level = %v, want L2C", levels[addr2k(5000, 10)])
	}
}

func TestBingoUntrainedSilent(t *testing.T) {
	p := New(DefaultConfig())
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(1, 0)})
	if got := p.Issue(64); len(got) != 0 {
		t.Errorf("untrained Bingo issued %v", got)
	}
}

func TestBingoStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	// Paper Table V: 127.8KB for the enhanced version.
	if kb < 110 || kb > 145 {
		t.Errorf("storage = %.1f KB, want near 127.8", kb)
	}
}

func TestBingoConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PHTSets = 3
	if err := cfg.Validate(); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
	cfg = DefaultConfig()
	cfg.PHTWays = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero ways accepted")
	}
}

func TestBingoInterface(t *testing.T) {
	var p prefetch.Prefetcher = New(DefaultConfig())
	if p.Name() != "bingo" {
		t.Error("wrong name")
	}
	p.OnFill(0, prefetch.LevelL1, true) // ignored, must not panic
}

func TestBingoLongMatchRefreshesLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PHTSets = 1
	cfg.PHTWays = 2
	p := New(cfg)
	// Train two entries into the single set.
	teach(p, 0x400, 7, 1, []int{3, 4})
	teach(p, 0x404, 8, 1, []int{5, 6})
	// Use the first entry via a long-event match...
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(7, 3)})
	p.Issue(64)
	// ...then insert a third pattern: the victim must be the *unused*
	// second entry, not the just-matched first one.
	teach(p, 0x408, 9, 1, []int{1, 2})
	p.OnEvict(addr2k(7, 3)) // close region 7 so it can re-trigger
	p.Train(prefetch.Access{PC: 0x400, Addr: addr2k(7, 3)})
	if got := p.Issue(64); len(got) == 0 {
		t.Error("recently matched entry was evicted (LRU not refreshed on use)")
	}
}
