// Package bingo implements the Bingo spatial data prefetcher
// (Bakhshalipour et al., HPCA'19; DPC-3 version), the strongest
// bit-vector competitor in the PMP paper's evaluation.
//
// Bingo's key idea is multi-feature lookup over one pattern history
// table: patterns are stored under their long, most-discriminating
// event (PC+Address) but the table is indexed by the short event
// (PC+Offset). A lookup first tries to match the long event's tag — a
// high-confidence match whose whole pattern is replayed into L1D — and
// otherwise falls back to the short event, voting across every entry of
// the indexed set: offsets present in at least half the matching
// patterns fill L1D, offsets present in any pattern fill L2C (the
// DPC-3 multi-level fill policy).
//
// The PMP paper evaluates an "enhanced" Bingo whose pattern table is
// doubled to 16K entries (~127.8KB); that is this package's default.
package bingo

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sms"
)

// Config sizes Bingo.
type Config struct {
	RegionBytes int // Bingo's region (2KB in the original)
	PHTSets     int
	PHTWays     int
	// L1DVoteFrac is the fraction of short-event-matching patterns that
	// must contain an offset for it to fill into L1D on fallback.
	L1DVoteFrac    float64
	FTSets, FTWays int
	ATSets, ATWays int
}

// DefaultConfig returns the enhanced (doubled) DPC-3 configuration used
// in the PMP paper: 16K-entry, 16-way PHT over 2KB regions.
func DefaultConfig() Config {
	return Config{
		RegionBytes: 2048,
		PHTSets:     1024,
		PHTWays:     16,
		L1DVoteFrac: 0.5,
		FTSets:      8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.PHTSets <= 0 || c.PHTSets&(c.PHTSets-1) != 0 {
		return errBadSets
	}
	if c.PHTWays <= 0 {
		return errBadWays
	}
	return nil
}

var (
	errBadSets = configError("bingo: PHT sets must be a positive power of two")
	errBadWays = configError("bingo: PHT ways must be positive")
)

type configError string

func (e configError) Error() string { return string(e) }

type phtEntry struct {
	valid   bool
	longTag uint32 // hashed PC+Address (the long event)
	bits    mem.BitVector
	lru     uint64
}

// Prefetcher is Bingo. Construct with New.
type Prefetcher struct {
	cfg    Config
	region mem.Region
	fw     *sms.Framework
	pht    []phtEntry
	stamp  uint64
	q      *prefetch.OutQueue
}

// New constructs Bingo; it panics on an invalid configuration.
func New(cfg Config) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	region := mem.NewRegion(cfg.RegionBytes)
	p := &Prefetcher{
		cfg:    cfg,
		region: region,
		fw: sms.New(sms.Config{
			Region: region,
			FTSets: cfg.FTSets, FTWays: cfg.FTWays,
			ATSets: cfg.ATSets, ATWays: cfg.ATWays,
		}),
		pht: make([]phtEntry, cfg.PHTSets*cfg.PHTWays),
		q:   prefetch.NewOutQueue(2 * region.Lines()),
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bingo" }

// shortIndex hashes the short event (PC+Offset) into a PHT set. The
// explicit mask (rather than a width-0 fold) keeps degenerate 1-set
// configurations in range.
func (p *Prefetcher) shortIndex(pc uint64, offset int) uint64 {
	key := pc<<mem.PageOffsetBits ^ uint64(offset)
	return mem.Mix64(key) & uint64(p.cfg.PHTSets-1)
}

// longTag hashes the long event (PC+Address).
func longTag(pc uint64, lineAddr mem.Addr) uint32 {
	return uint32(mem.FoldXOR(mem.Mix64(pc^uint64(lineAddr)*0x9e37), 30))
}

func (p *Prefetcher) set(idx uint64) []phtEntry {
	i := idx * uint64(p.cfg.PHTWays)
	return p.pht[i : i+uint64(p.cfg.PHTWays)]
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	trig, isTrigger, closed := p.fw.Observe(a.PC, a.Addr)
	for i := range closed {
		p.learn(closed[i])
	}
	if isTrigger {
		p.predict(trig)
	}
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(line mem.Addr) {
	if pat, ok := p.fw.OnEvict(line); ok {
		p.learn(pat)
	}
}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// learn inserts or refreshes the PHT entry for the completed pattern
// under its long event. The stored pattern is replaced by the latest
// observation, as in the original design.
func (p *Prefetcher) learn(pat sms.Pattern) {
	p.stamp++
	idx := p.shortIndex(pat.PC, pat.Trigger)
	tag := longTag(pat.PC, pat.TriggerAddr.Line())
	set := p.set(idx)

	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.longTag == tag {
			e.bits = pat.Bits
			e.lru = p.stamp
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
			continue
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	set[victim] = phtEntry{valid: true, longTag: tag, bits: pat.Bits, lru: p.stamp}
}

// predict looks the trigger up by long event first; a match replays its
// whole pattern into L1D. Otherwise it falls back to the short event,
// voting across every valid entry of the indexed set.
func (p *Prefetcher) predict(trig sms.Trigger) {
	idx := p.shortIndex(trig.PC, trig.Offset)
	tag := longTag(trig.PC, trig.Addr.Line())
	set := p.set(idx)
	n := p.region.Lines()

	for i := range set {
		e := &set[i]
		if e.valid && e.longTag == tag {
			p.stamp++
			e.lru = p.stamp // a used entry must not be the LRU victim
			for off := 0; off < n; off++ {
				if off != trig.Offset && e.bits.Test(off) {
					p.q.Push(prefetch.Request{
						Addr:  p.region.LineAddr(trig.RegionID, off),
						Level: prefetch.LevelL1,
					})
				}
			}
			return
		}
	}

	// Short-event fallback: vote across the set.
	votes := make([]int, n)
	voters := 0
	for i := range set {
		e := &set[i]
		if !e.valid {
			continue
		}
		voters++
		for off := 0; off < n; off++ {
			if e.bits.Test(off) {
				votes[off]++
			}
		}
	}
	if voters == 0 {
		return
	}
	l1Need := int(p.cfg.L1DVoteFrac*float64(voters) + 0.5)
	if l1Need < 1 {
		l1Need = 1
	}
	// L2C fills also need real support — a single stale pattern in a
	// 16-way set must not spray the region.
	l2Need := voters / 4
	if l2Need < 1 {
		l2Need = 1
	}
	// Fallback predictions mostly fill L2 (the DPC-3 policy): only
	// high-vote offsets near the trigger are confident enough for L1D.
	l1Budget := 4
	for d := 1; d < n; d++ {
		for _, off := range []int{trig.Offset + d, trig.Offset - d} {
			if off < 0 || off >= n || votes[off] < l2Need {
				continue
			}
			level := prefetch.LevelL2
			if votes[off] >= l1Need && l1Budget > 0 {
				level = prefetch.LevelL1
				l1Budget--
			}
			p.q.Push(prefetch.Request{
				Addr:  p.region.LineAddr(trig.RegionID, off),
				Level: level,
			})
		}
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// StorageBits implements prefetch.Prefetcher: the PHT dominates — each
// entry holds a 30b long tag, the pattern bit vector and LRU state. The
// enhanced 16K-entry configuration lands near the paper's Table V
// figure of 127.8KB.
func (p *Prefetcher) StorageBits() int {
	entry := 30 + p.region.Lines() + log2(p.cfg.PHTWays)
	return p.cfg.PHTSets*p.cfg.PHTWays*entry + p.fw.StorageBits()
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
