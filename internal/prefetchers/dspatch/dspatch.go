// Package dspatch implements the Dual Spatial Pattern prefetcher (Bera
// et al., MICRO'19), the lightweight bit-vector competitor in the PMP
// paper's evaluation.
//
// DSPatch records two program-centric spatial patterns per PC
// signature: CovP, the bit-wise OR of observed patterns (coverage
// biased), and AccP, the bit-wise AND (accuracy biased). At prediction
// time one of the two is replayed depending on memory-bandwidth
// pressure: CovP when bandwidth is plentiful, AccP when it is scarce.
//
// Faithful simplification: the original measures DRAM bandwidth with
// hardware counters; here bandwidth pressure is estimated from the
// recent useless-prefetch ratio reported through prefetch feedback,
// which tracks the same quantity the switch exists to protect (wasted
// bus transfers). See DESIGN.md.
package dspatch

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sms"
)

// Config sizes DSPatch.
type Config struct {
	RegionBytes int
	SPTEntries  int // signature prediction table entries (power of two)
	// UselessHigh is the recent-useless fraction above which DSPatch
	// switches from CovP to AccP.
	UselessHigh    float64
	FTSets, FTWays int
	ATSets, ATWays int
}

// DefaultConfig matches the paper's ~3.6KB budget: 64 SPT entries of
// dual 64-bit vectors over 4KB regions.
func DefaultConfig() Config {
	return Config{
		RegionBytes: mem.DefaultRegion,
		SPTEntries:  64,
		UselessHigh: 0.5,
		FTSets:      8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

type sptEntry struct {
	valid   bool
	covP    mem.BitVector // OR of anchored patterns
	accP    mem.BitVector // AND of anchored patterns
	trained uint8         // saturating pattern count
}

// Prefetcher is DSPatch. Construct with New.
type Prefetcher struct {
	cfg    Config
	region mem.Region
	fw     *sms.Framework
	spt    []sptEntry
	q      *prefetch.OutQueue

	// bandwidth-pressure proxy: sliding outcome window
	outcomes   [64]bool // true = useful
	outcomeIdx int
	outcomeN   int
}

// New constructs DSPatch; it panics on an invalid configuration.
func New(cfg Config) *Prefetcher {
	if cfg.SPTEntries < 1 || cfg.SPTEntries&(cfg.SPTEntries-1) != 0 {
		panic("dspatch: SPT entries must be a positive power of two")
	}
	region := mem.NewRegion(cfg.RegionBytes)
	return &Prefetcher{
		cfg:    cfg,
		region: region,
		fw: sms.New(sms.Config{
			Region: region,
			FTSets: cfg.FTSets, FTWays: cfg.FTWays,
			ATSets: cfg.ATSets, ATWays: cfg.ATWays,
		}),
		spt: make([]sptEntry, cfg.SPTEntries),
		q:   prefetch.NewOutQueue(2 * region.Lines()),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "dspatch" }

func (p *Prefetcher) sigIndex(pc uint64) int {
	return int(mem.Mix64(pc) & uint64(p.cfg.SPTEntries-1))
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(a prefetch.Access) {
	trig, isTrigger, closed := p.fw.Observe(a.PC, a.Addr)
	for i := range closed {
		p.learn(closed[i])
	}
	if isTrigger {
		p.predict(trig)
	}
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(line mem.Addr) {
	if pat, ok := p.fw.OnEvict(line); ok {
		p.learn(pat)
	}
}

// OnFill implements prefetch.Prefetcher: feed the bandwidth-pressure
// proxy.
func (p *Prefetcher) OnFill(_ mem.Addr, _ prefetch.Level, useful bool) {
	p.outcomes[p.outcomeIdx] = useful
	p.outcomeIdx = (p.outcomeIdx + 1) % len(p.outcomes)
	if p.outcomeN < len(p.outcomes) {
		p.outcomeN++
	}
}

// uselessRatio returns the fraction of recent prefetches that were
// useless; 0 until enough feedback accumulates.
func (p *Prefetcher) uselessRatio() float64 {
	if p.outcomeN < len(p.outcomes)/2 {
		return 0
	}
	useless := 0
	for i := 0; i < p.outcomeN; i++ {
		if !p.outcomes[i] {
			useless++
		}
	}
	return float64(useless) / float64(p.outcomeN)
}

func (p *Prefetcher) learn(pat sms.Pattern) {
	anchored := pat.Anchored()
	e := &p.spt[p.sigIndex(pat.PC)]
	if !e.valid {
		*e = sptEntry{valid: true, covP: anchored, accP: anchored, trained: 1}
		return
	}
	e.covP = e.covP.Or(anchored)
	e.accP = e.accP.And(anchored)
	if e.trained < 255 {
		e.trained++
	}
}

func (p *Prefetcher) predict(trig sms.Trigger) {
	e := &p.spt[p.sigIndex(trig.PC)]
	if !e.valid || e.trained < 2 {
		return
	}
	pattern := e.covP
	if p.uselessRatio() >= p.cfg.UselessHigh {
		pattern = e.accP
	}
	n := p.region.Lines()
	for k := 1; k < n; k++ {
		if !pattern.Test(k) {
			continue
		}
		off := (trig.Offset + k) % n
		p.q.Push(prefetch.Request{
			Addr:  p.region.LineAddr(trig.RegionID, off),
			Level: prefetch.LevelL1,
		})
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// StorageBits implements prefetch.Prefetcher: dual bit vectors plus a
// training counter per SPT entry, plus the capture framework.
func (p *Prefetcher) StorageBits() int {
	entry := 2*p.region.Lines() + 8
	return p.cfg.SPTEntries*entry + p.fw.StorageBits()
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
