package dspatch

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func addr(region uint64, offset int) mem.Addr {
	return mem.Addr(region*mem.PageBytes + uint64(offset)*mem.LineBytes)
}

// teach runs `rounds` regions through the given offsets under one PC.
func teach(p *Prefetcher, pc uint64, start uint64, rounds int, offsets []int) {
	for r := 0; r < rounds; r++ {
		region := start + uint64(r)
		for _, o := range offsets {
			p.Train(prefetch.Access{PC: pc, Addr: addr(region, o)})
			p.Issue(64)
		}
		p.OnEvict(addr(region, offsets[0]))
	}
}

func TestDSPatchLearnsAndReplays(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 5, []int{0, 1, 2})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr(1000, 0)})
	got := p.Issue(64)
	if len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	want := map[mem.Addr]bool{addr(1000, 1): true, addr(1000, 2): true}
	for _, r := range got {
		if !want[r.Addr] {
			t.Errorf("unexpected target %#x", uint64(r.Addr))
		}
		if r.Level != prefetch.LevelL1 {
			t.Errorf("DSPatch fills L1D, got %v", r.Level)
		}
	}
}

// CovP is the union: alternating patterns replay the OR when bandwidth
// is plentiful.
func TestDSPatchCovPIsUnion(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 3, []int{0, 1})
	teach(p, 0x400, 100, 3, []int{0, 2})
	p.Train(prefetch.Access{PC: 0x400, Addr: addr(1000, 0)})
	got := p.Issue(64)
	if len(got) != 2 {
		t.Fatalf("CovP should predict the union, issued %d", len(got))
	}
}

// Under high useless pressure DSPatch switches to AccP: the AND of the
// alternating patterns is just the trigger, so nothing is prefetched.
func TestDSPatchSwitchesToAccPUnderPressure(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 3, []int{0, 1})
	teach(p, 0x400, 100, 3, []int{0, 2})
	for i := 0; i < 64; i++ {
		p.OnFill(0, prefetch.LevelL1, false) // all useless
	}
	p.Train(prefetch.Access{PC: 0x400, Addr: addr(1000, 0)})
	if got := p.Issue(64); len(got) != 0 {
		t.Errorf("AccP of disjoint patterns should be empty, issued %v", got)
	}
}

func TestDSPatchAnchorsOnTrigger(t *testing.T) {
	p := New(DefaultConfig())
	// Pattern learned at trigger 10: +1, +2.
	teach(p, 0x400, 0, 5, []int{10, 11, 12})
	// Replay at trigger 20: targets shift with the trigger.
	p.Train(prefetch.Access{PC: 0x400, Addr: addr(1000, 20)})
	got := p.Issue(64)
	want := map[mem.Addr]bool{addr(1000, 21): true, addr(1000, 22): true}
	if len(got) != 2 {
		t.Fatalf("issued %d, want 2", len(got))
	}
	for _, r := range got {
		if !want[r.Addr] {
			t.Errorf("unexpected target %#x (anchoring broken)", uint64(r.Addr))
		}
	}
}

func TestDSPatchNeedsTraining(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 1, []int{0, 1}) // single observation
	p.Train(prefetch.Access{PC: 0x400, Addr: addr(1000, 0)})
	if got := p.Issue(64); len(got) != 0 {
		t.Errorf("single pattern should not trigger replay, issued %v", got)
	}
}

func TestDSPatchStorageBudget(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8 / 1024
	// Paper Table V: 3.6KB. Allow modeling slack.
	if kb < 1 || kb > 5 {
		t.Errorf("storage = %.2f KB, want near 3.6", kb)
	}
}

func TestDSPatchBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two SPT accepted")
		}
	}()
	cfg := DefaultConfig()
	cfg.SPTEntries = 7
	New(cfg)
}
