package dspatch_test

import (
	"testing"

	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check/conformance"
	"pmp/internal/prefetchers/dspatch"
)

// TestConformance registers this prefetcher with the shared runtime
// contract harness (see internal/prefetch/check/conformance).
func TestConformance(t *testing.T) {
	conformance.Run(t, func() prefetch.Prefetcher { return dspatch.New(dspatch.DefaultConfig()) })
}
