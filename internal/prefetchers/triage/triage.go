// Package triage implements Triage (Wu et al., MICRO'19), the last of
// the §VI-C temporal designs: temporal correlation pairs (A → B,
// meaning "a miss of A was last followed by a miss of B") stored as
// key-value pairs in a dedicated on-chip metadata table — the original
// repurposes up to half of the LLC for it, which is exactly the
// storage appetite the PMP paper's related-work section criticizes.
package triage

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Config tunes Triage.
type Config struct {
	TableEntries int // correlation-table entries (power of two)
	Ways         int // associativity of the metadata table
	Degree       int // chain-follow depth per trigger
}

// DefaultConfig sizes the table at 64K entries (~512KB of metadata —
// a quarter of the 2MB LLC, in the original's spirit).
func DefaultConfig() Config {
	return Config{TableEntries: 1 << 16, Ways: 8, Degree: 2}
}

type entry struct {
	valid bool
	key   mem.Addr
	next  mem.Addr
	lru   uint64
}

// Prefetcher is Triage. Construct with New.
type Prefetcher struct {
	cfg   Config
	sets  []entry
	nSets int
	stamp uint64

	lastLine map[uint64]mem.Addr // per-PC previous miss
	q        *prefetch.OutQueue
}

// New constructs Triage; sizes are clamped to powers of two.
func New(cfg Config) *Prefetcher {
	if cfg.TableEntries < 64 {
		cfg.TableEntries = 64
	}
	for cfg.TableEntries&(cfg.TableEntries-1) != 0 {
		cfg.TableEntries++
	}
	if cfg.Ways < 1 {
		cfg.Ways = 1
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	return &Prefetcher{
		cfg:      cfg,
		sets:     make([]entry, cfg.TableEntries),
		nSets:    cfg.TableEntries / cfg.Ways,
		lastLine: make(map[uint64]mem.Addr, 64),
		q:        prefetch.NewOutQueue(4 * cfg.Degree),
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "triage" }

func (p *Prefetcher) set(key mem.Addr) []entry {
	i := int(mem.Mix64(uint64(key))&uint64(p.nSets-1)) * p.cfg.Ways
	return p.sets[i : i+p.cfg.Ways]
}

// record stores/updates the correlation key -> next.
func (p *Prefetcher) record(key, next mem.Addr) {
	p.stamp++
	set := p.set(key)
	victim, oldest := 0, ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.key == key {
			e.next = next
			e.lru = p.stamp
			return
		}
		if !e.valid {
			victim, oldest = i, 0
			continue
		}
		if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	set[victim] = entry{valid: true, key: key, next: next, lru: p.stamp}
}

func (p *Prefetcher) successor(key mem.Addr) (mem.Addr, bool) {
	set := p.set(key)
	for i := range set {
		e := &set[i]
		if e.valid && e.key == key {
			p.stamp++
			e.lru = p.stamp
			return e.next, true
		}
	}
	return 0, false
}

// Train implements prefetch.Prefetcher: on a miss, learn the temporal
// pair (previous miss of this PC → this miss) and follow the stored
// chain forward from the current miss.
func (p *Prefetcher) Train(a prefetch.Access) {
	if a.Hit {
		return
	}
	line := a.Addr.Line()

	if last, ok := p.lastLine[a.PC]; ok && last != line {
		p.record(last, line)
	}
	p.lastLine[a.PC] = line
	if len(p.lastLine) > 256 {
		clear(p.lastLine)
	}

	cur := line
	for d := 1; d <= p.cfg.Degree; d++ {
		next, ok := p.successor(cur)
		if !ok {
			return
		}
		level := prefetch.LevelL1
		if d > 1 {
			level = prefetch.LevelL2
		}
		p.q.Push(prefetch.Request{Addr: next, Level: level})
		cur = next
	}
}

// Issue implements prefetch.Prefetcher.
func (p *Prefetcher) Issue(max int) []prefetch.Request { return p.q.Pop(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *Prefetcher) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.q.PopInto(dst, max)
}

// OnEvict implements prefetch.Prefetcher.
func (p *Prefetcher) OnEvict(mem.Addr) {}

// OnFill implements prefetch.Prefetcher.
func (p *Prefetcher) OnFill(mem.Addr, prefetch.Level, bool) {}

// StorageBits implements prefetch.Prefetcher: each entry holds two
// compressed line addresses plus LRU — hundreds of KB, the §VI-C
// complaint embodied.
func (p *Prefetcher) StorageBits() int {
	return p.cfg.TableEntries * (30 + 30 + log2(p.cfg.Ways))
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
