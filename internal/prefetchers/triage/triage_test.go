package triage

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func miss(p *Prefetcher, pc, line uint64) []prefetch.Request {
	p.Train(prefetch.Access{PC: pc, Addr: mem.Addr(line * mem.LineBytes), Hit: false})
	return p.Issue(16)
}

func TestTriageFollowsCorrelationChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Degree = 3
	p := New(cfg)
	seq := []uint64{10, 5000, 42, 777777}
	for pass := 0; pass < 2; pass++ {
		for _, l := range seq {
			miss(p, 1, l)
		}
	}
	got := miss(p, 1, 10)
	if len(got) != 3 {
		t.Fatalf("degree-3 chain should yield 3 targets, got %d", len(got))
	}
	want := []uint64{5000, 42, 777777}
	for i, r := range got {
		if r.Addr.LineID() != want[i] {
			t.Errorf("target %d = line %d, want %d", i, r.Addr.LineID(), want[i])
		}
	}
	if got[0].Level != prefetch.LevelL1 || got[1].Level != prefetch.LevelL2 {
		t.Errorf("levels = %v, %v; want L1 then L2", got[0].Level, got[1].Level)
	}
}

func TestTriageUpdatesCorrelation(t *testing.T) {
	p := New(DefaultConfig())
	miss(p, 1, 10)
	miss(p, 1, 100) // 10 -> 100
	miss(p, 1, 10)
	miss(p, 1, 200) // 10 -> 200 (latest wins)
	got := miss(p, 1, 10)
	if len(got) == 0 || got[0].Addr.LineID() != 200 {
		t.Errorf("correlation should follow the latest pair, got %v", got)
	}
}

func TestTriageColdSilent(t *testing.T) {
	p := New(DefaultConfig())
	if got := miss(p, 1, 42); len(got) != 0 {
		t.Errorf("cold miss prefetched %v", got)
	}
}

func TestTriageIgnoresHits(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 10; i++ {
		p.Train(prefetch.Access{PC: 1, Addr: mem.Addr(i * 64), Hit: true})
	}
	if got := p.Issue(16); len(got) != 0 {
		t.Errorf("hits trained predictions: %v", got)
	}
}

func TestTriageStorageIsHuge(t *testing.T) {
	// §VI-C's point: Triage devotes LLC-scale storage to metadata.
	p := New(DefaultConfig())
	if kb := float64(p.StorageBits()) / 8 / 1024; kb < 256 {
		t.Errorf("storage = %.1f KB, expected LLC-scale metadata", kb)
	}
}

func TestTriageClampsConfig(t *testing.T) {
	p := New(Config{TableEntries: 7, Ways: 0, Degree: 0})
	if p.cfg.TableEntries < 64 || p.cfg.Ways != 1 || p.cfg.Degree != 1 {
		t.Errorf("clamping failed: %+v", p.cfg)
	}
}
