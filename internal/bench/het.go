package bench

import (
	"fmt"
	"math"

	"pmp/internal/cache"
	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

// The HET experiment family exercises the heterogeneous-hierarchy
// surface the declarative run-spec layer opens up: prefetcher variants
// stacked at different cache levels (HETS), many-core heterogeneous
// trace mixes (HETM), non-standard hierarchy depths (HETH), and the
// DRAM-bandwidth crossover of stacked designs (HETB). None is a paper
// artifact; all four run through the same runner — and therefore
// locally, store-backed, or distributed — like every other experiment.

// hetStacks is the stacked-configuration lineup shared by HETS and
// HETB: PMP and Bingo alone, then PMP at L1D with the original
// (non-doubled) Bingo placed deeper. The combined names are job
// identities; the placements travel in the run spec.
var hetStacks = []struct {
	label string
	name  string
	core  VariantSpec
	place []runspec.Placement
}{
	{"pmp @ L1D", NamePMP, RegistryVariant(NamePMP), nil},
	{"bingo @ L1D", NameBingo, RegistryVariant(NameBingo), nil},
	{"pmp @ L1D + bingo @ L2C", "pmp+bingo@l2",
		RegistryVariant(NamePMP), []runspec.Placement{{Level: 1, Variant: BingoLLCVariant()}}},
	{"pmp @ L1D + bingo @ LLC", "pmp+bingo@llc",
		RegistryVariant(NamePMP), []runspec.Placement{{Level: 2, Variant: BingoLLCVariant()}}},
}

// HETS evaluates prefetcher stacking: PMP trained at the L1D with the
// original Bingo simultaneously placed at the L2C or the LLC, against
// each design alone. It probes whether a second, coarser-grained
// prefetcher below PMP recovers any of the coverage the §V-B placement
// experiment attributes to the LLC vantage point.
func HETS(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "HETS",
		Title:  "Heterogeneous stacking: PMP@L1D with Bingo placed deeper (extension)",
		Header: []string{"Configuration", "NIPC", "NMT"},
	}
	for _, s := range hetStacks {
		res := sw.RunPlaced(s.name, s.core, s.place, cfg)
		t.AddRow(s.label, f3(res.NIPC()), pct(res.NMT()))
	}
	t.Notes = append(t.Notes,
		"stacked rows place the original (non-doubled) Bingo at the deeper level of every core;",
		"both prefetchers issue into the same hierarchy, so wins must outweigh the added traffic")
	return t
}

// HETM evaluates 8-core heterogeneous trace mixes: per-MPKI-class
// mixes twice as wide as Fig 13's, on a 4-channel memory system. Each
// mix is one multicore run spec through the sweep.
func HETM(r *Runner) *Table {
	cfg := r.Scale.Config()
	cfg.DRAM.Channels = 4
	if cfg.Measure == 0 {
		cfg.Measure = 400_000
	}
	t := &Table{
		ID:     "HETM",
		Title:  "8-core heterogeneous mixes, geomean per-core NIPC (extension)",
		Header: []string{"Prefetcher", "low", "medium", "high", "mixed", "ALL"},
	}

	byClass := trace.ByClass(trace.Suite())
	pick := func(class trace.MPKIClass, i int) trace.Spec {
		specs := byClass[class]
		return specs[i%len(specs)]
	}
	L, M, H := trace.LowMPKI, trace.MediumMPKI, trace.HighMPKI
	mixTypes := []struct {
		label string
		cls   [8]trace.MPKIClass
	}{
		{"low", [8]trace.MPKIClass{L, L, L, L, L, L, L, L}},
		{"medium", [8]trace.MPKIClass{M, M, M, M, M, M, M, M}},
		{"high", [8]trace.MPKIClass{H, H, H, H, H, H, H, H}},
		{"mixed", [8]trace.MPKIClass{L, L, M, M, H, H, M, L}},
	}
	mixes := make([][]trace.Spec, len(mixTypes))
	for i, ty := range mixTypes {
		specs := make([]trace.Spec, 8)
		for j, cl := range ty.cls {
			specs[j] = pick(cl, j)
		}
		mixes[i] = specs
	}

	jobsFor := func(name string) []specJob {
		v := RegistryVariant(name)
		jobs := make([]specJob, len(mixes))
		for i, mix := range mixes {
			jobs[i] = mixJob(name, v, mix, 8, r.Scale.Records, cfg)
		}
		return jobs
	}
	base := r.runSpecs(jobsFor(NameNone))

	for _, name := range EvalNames() {
		res := r.runSpecs(jobsFor(name))
		row := []string{name}
		var sum float64
		for i := range mixes {
			v := coreNIPC(res[i], base[i])
			row = append(row, f3(v))
			sum += math.Log(v)
		}
		row = append(row, f3(math.Exp(sum/float64(len(mixes)))))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"8 cores on 4 DRAM channels; each column is one mix of the named MPKI class(es)",
		"bandwidth-hungry designs lose more of their single-core edge as the high-MPKI share grows")
	return t
}

// hetHierarchies is the hierarchy lineup HETH sweeps: the classic
// 3-level machine, a flat 2-level one, and a 4-level one with a
// private 1MB L3 between the L2C and the shared LLC.
func hetHierarchies() []struct {
	name string
	mut  func(*sim.Config)
} {
	return []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"2-level (L1D+LLC)", func(c *sim.Config) {
			c.Levels = []sim.LevelSpec{
				{Cache: c.L1D},
				{Cache: c.LLC, Shared: true, Inclusive: true},
			}
		}},
		{"3-level (default)", func(*sim.Config) {}},
		{"4-level (L1D+L2C+L3+LLC)", func(c *sim.Config) {
			l3 := cache.Config{Name: "L3", Sets: 1024, Ways: 16, Latency: 15, MSHRs: 48, PQSize: 24}
			c.Levels = []sim.LevelSpec{
				{Cache: c.L1D},
				{Cache: c.L2C},
				{Cache: l3},
				{Cache: c.LLC, Shared: true, Inclusive: true},
			}
		}},
	}
}

// HETH evaluates hierarchy depth: PMP alone and PMP stacked with Bingo
// at the outermost level, on 2-, 3- and 4-level machines. Each row is
// normalized against the non-prefetching baseline of the same
// hierarchy, so the columns compare prefetcher effectiveness, not raw
// hierarchy quality.
func HETH(r *Runner) *Table {
	sw := r.subRunner()
	t := &Table{
		ID:     "HETH",
		Title:  "Hierarchy depth: 2- vs 3- vs 4-level machines (extension)",
		Header: []string{"Hierarchy", "pmp NIPC", "pmp+bingo@outer NIPC"},
	}
	for _, h := range hetHierarchies() {
		cfg := sw.Scale.Config()
		h.mut(&cfg)
		outer := cfg.HierarchyDepth() - 1
		pmp := sw.Run(NamePMP, cfg)
		stacked := sw.RunPlaced("pmp+bingo@outer", RegistryVariant(NamePMP),
			[]runspec.Placement{{Level: outer, Variant: BingoLLCVariant()}}, cfg)
		t.AddRow(h.name, f3(pmp.NIPC()), f3(stacked.NIPC()))
	}
	t.Notes = append(t.Notes,
		"the 4-level machine inserts a private 1MB L3 (15 cyc) between the L2C and the shared LLC;",
		"placements validate against each hierarchy's depth — the outer level is 1, 2 and 3 here")
	return t
}

// HETB sweeps the stacked configurations across DRAM transfer rates,
// looking for the crossover where stacking's extra traffic stops
// paying: Fig 12a's bandwidth axis applied to the HETS lineup.
func HETB(r *Runner) *Table {
	sw := r.subRunner()
	rates := []int{800, 1600, 3200, 6400}
	t := &Table{
		ID:     "HETB",
		Title:  "Stacked prefetchers vs memory bandwidth (extension; cf. paper Fig 12a)",
		Header: []string{"Configuration", "800", "1600", "3200", "6400"},
	}
	for _, s := range hetStacks {
		row := []string{s.label}
		for _, mtps := range rates {
			cfg := sw.Scale.Config().WithBandwidth(mtps)
			res := sw.RunPlaced(s.name, s.core, s.place, cfg)
			row = append(row, f3(res.NIPC()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d configurations x %d rates; stacking helps most where bandwidth is plentiful", len(hetStacks), len(rates)))
	return t
}
