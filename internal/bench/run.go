package bench

import (
	"context"
	"fmt"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/bingo"
	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// variantMaker resolves a variant spec into a constructor, reporting
// unresolvable specs (unknown registry name, malformed spec) as an
// error before any simulation starts. The returned closure builds a
// fresh instance per call — prefetchers hold state and are never
// shared between cores or runs.
func variantMaker(v VariantSpec) (func() prefetch.Prefetcher, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	switch {
	case v.Registry != "":
		known := false
		for _, n := range Names() {
			if v.Registry == n {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("bench: variant %q: unknown registry prefetcher %q", v.Name, v.Registry)
		}
		name := v.Registry
		return func() prefetch.Prefetcher { return NewPrefetcher(name) }, nil
	case v.PMP != nil:
		c := *v.PMP
		return func() prefetch.Prefetcher { return core.New(c) }, nil
	case v.DesignB != nil:
		c := *v.DesignB
		return func() prefetch.Prefetcher { return core.NewDesignB(c) }, nil
	default:
		c := *v.Bingo
		return func() prefetch.Prefetcher { return bingo.New(c) }, nil
	}
}

// BuildVariant constructs the prefetcher a variant spec describes.
func BuildVariant(v VariantSpec) (prefetch.Prefetcher, error) {
	mk, err := variantMaker(v)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}

// BuildRun materializes a run spec into its executable form: the one
// spec→simulation construction path, shared by serial runs, the local
// pool and remote workers, so a run is assembled identically no matter
// which scheduler executes it. Resolution errors (unknown trace or
// variant, structural problems) surface here, before execution — a
// worker quarantines the job instead of crashing mid-run — while the
// heavy construction (tables, caches, trace generators) is deferred
// into the returned closure.
func BuildRun(rs runspec.RunSpec) (sweep.Exec, error) {
	if err := rs.Validate(); err != nil {
		return sweep.Exec{}, err
	}
	specs := make([]trace.Spec, len(rs.Cores))
	mks := make([]func() prefetch.Prefetcher, len(rs.Cores))
	for i, c := range rs.Cores {
		if c.Trace.File != "" {
			// Wire-shipped external trace: the spec carries the .pmpt
			// path, so the worker needs no manifest. The name still keys
			// job identity.
			specs[i] = trace.FileSpec(trace.ExternalSpec{Name: c.Trace.Name, Path: c.Trace.File})
		} else {
			sp, ok := TraceByName(c.Trace.Name)
			if !ok {
				return sweep.Exec{}, fmt.Errorf("bench: unknown trace spec %q", c.Trace.Name)
			}
			specs[i] = sp
		}
		mk, err := variantMaker(c.Variant)
		if err != nil {
			return sweep.Exec{}, fmt.Errorf("bench: core %d: %w", i, err)
		}
		mks[i] = mk
	}
	attach := make([]sim.AttachSpec, len(rs.Placements))
	for i, p := range rs.Placements {
		mk, err := variantMaker(p.Variant)
		if err != nil {
			return sweep.Exec{}, fmt.Errorf("bench: placement %d: %w", i, err)
		}
		attach[i] = sim.AttachSpec{Level: p.Level, New: mk}
	}
	cfg, records, replay := rs.Config, rs.Records, rs.Replay
	machine := func() (*sim.Machine, []trace.Source) {
		trained := make([]prefetch.Prefetcher, len(mks))
		srcs := make([]trace.Source, len(mks))
		for i := range mks {
			trained[i] = mks[i]()
			srcs[i] = specs[i].New(records)
		}
		return sim.NewMachineAt(cfg, trained, attach, replay), srcs
	}
	if len(rs.Cores) == 1 && !replay {
		return sweep.Exec{Run: func(context.Context) sim.Result {
			m, srcs := machine()
			return m.Run(srcs)[0]
		}}, nil
	}
	return sweep.Exec{RunMulti: func(context.Context) []sim.Result {
		m, srcs := machine()
		return m.Run(srcs)
	}}, nil
}

// BuildJobRun resolves a wire job spec into its executable form — the
// worker side of the protocol (remote.WorkerOptions.Build). It is the
// same BuildRun call a serial run makes, so the worker produces the
// byte-identical records.
func BuildJobRun(spec remote.JobSpec) (sweep.Exec, error) {
	return BuildRun(spec.Run)
}
