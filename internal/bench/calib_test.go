package bench

import (
	"fmt"
	"os"
	"testing"
)

// TestCalibrate dumps per-trace baseline characteristics and PMP's
// response — a diagnostic for tuning the workload generators. Run with
// PMP_CALIBRATE=1.
func TestCalibrate(t *testing.T) {
	if os.Getenv("PMP_CALIBRATE") == "" {
		t.Skip("set PMP_CALIBRATE=1 to dump calibration data")
	}
	scale := QuickScale()
	scale.Traces = 12
	cfg := scale.Config()
	for _, sp := range scale.Specs() {
		base := RunOne(sp, NewPrefetcher(NameNone), scale, cfg)
		pmp := RunOne(sp, NewPrefetcher(NamePMP), scale, cfg)
		util := float64(base.DRAM.BusyCycles) / float64(base.Cycles)
		fmt.Printf("%-22s base ipc=%.2f mpki=%5.1f util=%4.1f%% | pmp nipc=%.3f nmt=%.2f l1useful=%d\n",
			sp.Name, base.IPC(), base.MPKI(), util*100,
			pmp.IPC()/base.IPC(), float64(pmp.DRAM.Requests)/float64(base.DRAM.Requests),
			pmp.L1D.UsefulPrefetch)
	}
}
