package bench

import (
	"encoding/json"
	"reflect"
	"testing"

	"pmp/internal/core"
	"pmp/internal/mem"
)

// The grammar has genuinely ambiguous-looking corners — "pmp-8" (a
// region sweep) vs "pmp-tw8" (a trigger-width sweep) vs "pmp-0.5-0.15"
// (a threshold pair), and ablation literals containing '+' and spaces.
// These pins make sure each lands on the intended knob and nothing
// else.
func TestParseVariantPins(t *testing.T) {
	def := core.DefaultConfig()
	cases := []struct {
		name  string
		check func(t *testing.T, v VariantSpec)
	}{
		{"pmp-0.5-0.15", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || v.PMP.TL1D != 0.5 || v.PMP.TL2C != 0.15 {
				t.Errorf("want thresholds 0.5/0.15, got %+v", v.PMP)
			}
		}},
		{"pmp-8", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || v.PMP.RegionBytes != 8*mem.LineBytes {
				t.Errorf("want region %d bytes, got %+v", 8*mem.LineBytes, v.PMP)
			}
			if v.PMP != nil && v.PMP.TriggerBits != def.TriggerBits {
				t.Errorf("pmp-8 must not touch TriggerBits: %+v", v.PMP)
			}
		}},
		{"pmp-32", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || v.PMP.RegionBytes != 2048 {
				t.Errorf("want region 2048 bytes, got %+v", v.PMP)
			}
		}},
		{"pmp-tw8", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || v.PMP.TriggerBits != 8 {
				t.Errorf("want TriggerBits 8, got %+v", v.PMP)
			}
			if v.PMP != nil && v.PMP.RegionBytes != def.RegionBytes {
				t.Errorf("pmp-tw8 must not touch RegionBytes: %+v", v.PMP)
			}
		}},
		{"no halving + no resume", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || !v.PMP.NoHalving || !v.PMP.NoResume {
				t.Errorf("want both ablation flags, got %+v", v.PMP)
			}
		}},
		{"pmp (default)", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || !reflect.DeepEqual(*v.PMP, def) {
				t.Errorf("want the default config, got %+v", v.PMP)
			}
		}},
		{"cross-region projection", func(t *testing.T, v VariantSpec) {
			if v.PMP == nil || !v.PMP.CrossRegion {
				t.Errorf("want CrossRegion, got %+v", v.PMP)
			}
		}},
		{"designb-32w", func(t *testing.T, v VariantSpec) {
			if v.DesignB == nil || v.DesignB.Ways != 32 {
				t.Errorf("want Design B with 32 ways, got %+v", v.DesignB)
			}
		}},
		{"bingo@llc", func(t *testing.T, v VariantSpec) {
			orig := bingoOriginalConfig()
			if v.Bingo == nil || !reflect.DeepEqual(*v.Bingo, orig) {
				t.Errorf("want the original Bingo config, got %+v", v.Bingo)
			}
		}},
		{NamePMP, func(t *testing.T, v VariantSpec) {
			if v.Registry != NamePMP {
				t.Errorf("registry name must parse as a registry variant, got %+v", v)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := ParseVariant(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if v.Name != tc.name {
				t.Errorf("parsed Name = %q, want %q", v.Name, tc.name)
			}
			tc.check(t, v)
		})
	}
}

// Unknown names must error (quarantine on a stale worker), never fall
// back to some other design.
func TestParseVariantRejectsUnknown(t *testing.T) {
	for _, name := range []string{
		"", "frobnicate", "pmp-", "pmp-xyz", "pmp-tw", "pmp-1.0-zz",
		"designb-w", "designb-32", "bingo@l2",
	} {
		if _, err := ParseVariant(name); err == nil {
			t.Errorf("ParseVariant(%q) resolved; want error", name)
		}
	}
}

// The round-trip property: every variant any registered experiment can
// submit survives spec → name → ParseVariant unchanged, and no two
// distinct specs share a name. Together these pin the grammar against
// the typed constructors — a renamed knob or an ambiguous new name
// fails here, not as a silently wrong resumed run.
func TestExperimentVariantsRoundTrip(t *testing.T) {
	vars := ExperimentVariants()
	if len(vars) < 40 {
		t.Fatalf("only %d experiment variants; the sweeps should contribute dozens", len(vars))
	}
	seen := map[string]VariantSpec{}
	for _, v := range vars {
		if err := v.Validate(); err != nil {
			t.Errorf("%q: invalid spec: %v", v.Name, err)
		}
		if prev, dup := seen[v.Name]; dup && !reflect.DeepEqual(prev, v) {
			t.Errorf("name %q is ambiguous: %+v vs %+v", v.Name, prev, v)
		}
		seen[v.Name] = v

		back, err := ParseVariant(v.Name)
		if err != nil {
			t.Errorf("ParseVariant(%q): %v", v.Name, err)
			continue
		}
		if !reflect.DeepEqual(back, v) {
			t.Errorf("round-trip changed %q:\nspec  %+v\nparse %+v", v.Name, v, back)
		}
	}
}

// Every experiment variant constructs, and the construction honours the
// spec (fresh instances, correct design family).
func TestBuildVariantConstructsAll(t *testing.T) {
	for _, v := range ExperimentVariants() {
		pf, err := BuildVariant(v)
		if err != nil {
			t.Errorf("BuildVariant(%q): %v", v.Name, err)
			continue
		}
		if pf == nil {
			t.Errorf("BuildVariant(%q) = nil", v.Name)
		}
	}
	if _, err := BuildVariant(RegistryVariant("frobnicate")); err == nil {
		t.Error("unknown registry name accepted")
	}
}

// Variant fingerprints must survive the wire: marshal → unmarshal →
// identical fingerprint, since the coordinator dedups by the IDs
// clients derive from these specs.
func TestVariantFingerprintSurvivesJSON(t *testing.T) {
	for _, v := range ExperimentVariants() {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back VariantSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back.Fingerprint() != v.Fingerprint() {
			t.Errorf("%q: fingerprint changed across JSON round-trip", v.Name)
		}
	}
}
