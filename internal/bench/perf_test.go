package bench

import (
	"flag"
	"strings"
	"testing"
)

// The perf suite doubles as the CI regression gate:
//
//	go test ./internal/bench -run TestPerf -perf-out BENCH_default.json -perf-scale default
//	go test ./internal/bench -run TestPerf -perf-compare BENCH_default.json -perf-scale default
//
// Without either flag TestPerf skips, keeping `go test ./...` fast.
var (
	perfOut     = flag.String("perf-out", "", "write a throughput report to this JSON file")
	perfCompare = flag.String("perf-compare", "", "compare throughput against this baseline JSON file")
	perfScale   = flag.String("perf-scale", "default", "perf scale: quick, default or full")
	perfPF      = flag.String("perf-pf", NamePMP, "comma-separated prefetchers to measure")
	perfTol     = flag.Float64("perf-tolerance", 0.10, "allowed fractional throughput regression")
)

func TestPerf(t *testing.T) {
	if *perfOut == "" && *perfCompare == "" {
		t.Skip("perf suite runs only with -perf-out or -perf-compare")
	}
	var scale Scale
	switch *perfScale {
	case "quick":
		scale = QuickScale()
	case "default":
		scale = DefaultScale()
	case "full":
		scale = FullScale()
	default:
		t.Fatalf("unknown -perf-scale %q", *perfScale)
	}
	names := strings.Split(*perfPF, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
		if _, err := TryNewPrefetcher(names[i]); err != nil {
			t.Fatal(err)
		}
	}

	report := RunPerf(scale, names)
	t.Log("\n" + Perf(report).String())

	if *perfOut != "" {
		if err := WritePerf(*perfOut, report); err != nil {
			t.Fatal(err)
		}
	}
	if *perfCompare != "" {
		baseline, err := ReadPerf(*perfCompare)
		if err != nil {
			t.Fatal(err)
		}
		if baseline.Scale != report.Scale {
			t.Fatalf("baseline scale %q does not match -perf-scale %q", baseline.Scale, report.Scale)
		}
		for _, reg := range ComparePerf(baseline, report, *perfTol) {
			t.Error(reg)
		}
	}
}

func TestComparePerf(t *testing.T) {
	base := PerfReport{Scale: "default", Results: []PerfResult{
		{Prefetcher: "pmp", AccessesPerSec: 1000, AllocsPerAccess: 0.01},
		{Prefetcher: "bingo", AccessesPerSec: 500, AllocsPerAccess: 2.0},
	}}

	same := PerfReport{Scale: "default", Results: []PerfResult{
		{Prefetcher: "pmp", AccessesPerSec: 950, AllocsPerAccess: 0.02},
	}}
	if regs := ComparePerf(base, same, 0.10); len(regs) != 0 {
		t.Errorf("within tolerance, got regressions %q", regs)
	}

	slow := PerfReport{Scale: "default", Results: []PerfResult{
		{Prefetcher: "pmp", AccessesPerSec: 800, AllocsPerAccess: 0.01},
	}}
	if regs := ComparePerf(base, slow, 0.10); len(regs) != 1 {
		t.Errorf("20%% slowdown: want 1 regression, got %q", regs)
	}

	leaky := PerfReport{Scale: "default", Results: []PerfResult{
		{Prefetcher: "pmp", AccessesPerSec: 1000, AllocsPerAccess: 1.5},
	}}
	if regs := ComparePerf(base, leaky, 0.10); len(regs) != 1 {
		t.Errorf("alloc increase: want 1 regression, got %q", regs)
	}

	// A prefetcher missing from the baseline is not a regression.
	novel := PerfReport{Scale: "default", Results: []PerfResult{
		{Prefetcher: "newcomer", AccessesPerSec: 1, AllocsPerAccess: 99},
	}}
	if regs := ComparePerf(base, novel, 0.10); len(regs) != 0 {
		t.Errorf("unknown prefetcher should be skipped, got %q", regs)
	}
}
