package bench

import (
	"strconv"
	"testing"
)

// hetScale keeps the HET structure pins cheap: one trace per class and
// short runs. The tables' shapes — not their numbers — are the
// contract here; the numbers are covered by the golden digests and the
// distributed smoke.
var hetScale = Scale{Traces: 1, Records: 12_000, Warmup: 3_000, Measure: 30_000}

// The HET family must keep its shape: HETS and HETB sweep the four
// stacked configurations, HETH the three hierarchy depths, HETM the
// five evaluated prefetchers over four mix classes. A renamed stack or
// a dropped hierarchy silently changes what the distributed runs
// compare, so the shapes are pinned here.
func TestHETTableShapes(t *testing.T) {
	r := NewRunner(hetScale)

	hets := HETS(r)
	if len(hets.Rows) != len(hetStacks) || len(hets.Header) != 3 {
		t.Errorf("HETS: %dx%d, want %dx3", len(hets.Rows), len(hets.Header), len(hetStacks))
	}

	heth := HETH(r)
	if len(heth.Rows) != len(hetHierarchies()) || len(heth.Header) != 3 {
		t.Errorf("HETH: %dx%d, want %dx3", len(heth.Rows), len(heth.Header), len(hetHierarchies()))
	}

	hetb := HETB(r)
	if len(hetb.Rows) != len(hetStacks) || len(hetb.Header) != 5 {
		t.Errorf("HETB: %dx%d, want %dx5", len(hetb.Rows), len(hetb.Header), len(hetStacks))
	}

	// Every NIPC cell must parse and be positive: a zero or NaN means a
	// placement was silently dropped rather than simulated.
	for _, tbl := range []*Table{hets, heth, hetb} {
		for _, row := range tbl.Rows {
			for col := 1; col < len(row); col++ {
				cell := row[col]
				if cell[len(cell)-1] == '%' {
					cell = cell[:len(cell)-1]
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil || v <= 0 {
					t.Errorf("%s row %q col %d: cell %q not a positive number", tbl.ID, row[0], col, row[col])
				}
			}
		}
	}
}

// HETM runs 8-core mixes; keep it to a single prefetcher's worth of
// work by relying on the tiny scale, and pin the row/column shape.
func TestHETMShape(t *testing.T) {
	if testing.Short() {
		t.Skip("8-core mixes are the slowest HET leg")
	}
	tbl := HETM(NewRunner(hetScale))
	if len(tbl.Rows) != len(EvalNames()) {
		t.Errorf("HETM rows = %d, want %d", len(tbl.Rows), len(EvalNames()))
	}
	for _, row := range tbl.Rows {
		if len(row) != 6 { // name, 4 mixes, geomean
			t.Fatalf("HETM row %q has %d cells, want 6", row[0], len(row))
		}
		for col := 1; col < len(row); col++ {
			if v, err := strconv.ParseFloat(row[col], 64); err != nil || v <= 0 {
				t.Errorf("HETM row %q col %d: cell %q not a positive number", row[0], col, row[col])
			}
		}
	}
}
