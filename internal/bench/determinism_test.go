package bench

import (
	"context"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"pmp/internal/sweep"
)

// TestSuiteDeterministicAcrossWorkerCounts is the sweep's core
// invariant: the same (trace, prefetcher, config, scale) job yields a
// bit-identical sim.Result whether the pool runs one worker or many —
// scheduling must never leak into simulation results (it is what keeps
// rendered tables byte-identical to the old serial harness).
func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	scale := tinyScale()
	cfg := scale.Config()

	serial := sweep.New(context.Background(), sweep.Options{Workers: 1})
	parallel := sweep.New(context.Background(), sweep.Options{Workers: max(4, runtime.NumCPU())})
	defer serial.Close()
	defer parallel.Close()

	r1 := NewRunnerWith(scale, serial)
	rn := NewRunnerWith(scale, parallel)

	for _, name := range []string{NamePMP, NameStride} {
		a := r1.Run(name, cfg)
		b := rn.Run(name, cfg)
		if !reflect.DeepEqual(a.Results, b.Results) {
			t.Errorf("%s: results differ between 1 worker and %d workers", name, runtime.NumCPU())
		}
		if !reflect.DeepEqual(a.Baseline, b.Baseline) {
			t.Errorf("%s: baselines differ between worker counts", name)
		}
	}
}

// TestResumeMatchesFresh verifies the persistence half of the
// determinism contract: results served from a resumed store are
// bit-identical to freshly executed ones, and a resumed run executes
// nothing that already completed.
func TestResumeMatchesFresh(t *testing.T) {
	scale := tinyScale()
	cfg := scale.Config()
	path := filepath.Join(t.TempDir(), "results.jsonl")

	st, err := sweep.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	sw := sweep.New(context.Background(), sweep.Options{Store: st})
	fresh := NewRunnerWith(scale, sw).Run(NamePMP, cfg)
	m := sw.Close()
	if m.Completed == 0 || m.Cached != 0 {
		t.Fatalf("fresh run completed/cached = %d/%d", m.Completed, m.Cached)
	}

	st2, err := sweep.OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	sw2 := sweep.New(context.Background(), sweep.Options{Store: st2})
	resumed := NewRunnerWith(scale, sw2).Run(NamePMP, cfg)
	m2 := sw2.Close()

	if m2.Completed != 0 {
		t.Errorf("resumed run re-executed %d jobs; all %d should come from the store",
			m2.Completed, m.Completed)
	}
	if m2.Cached != m.Completed {
		t.Errorf("resumed run cached %d jobs, want %d", m2.Cached, m.Completed)
	}
	if !reflect.DeepEqual(fresh.Results, resumed.Results) {
		t.Error("resumed results differ from fresh execution")
	}
	if !reflect.DeepEqual(fresh.Baseline, resumed.Baseline) {
		t.Error("resumed baselines differ from fresh execution (baselines must persist too)")
	}
}

// TestBaselineSingleflightUnderConcurrency hammers Baseline from many
// goroutines (the pmpexperiments driver runs every experiment
// concurrently against one Runner): all callers must get the same
// slice and the baseline suite must be simulated exactly once per
// config fingerprint. Run with -race this also guards the old
// unsynchronized-map regression.
func TestBaselineSingleflightUnderConcurrency(t *testing.T) {
	scale := tinyScale()
	r := NewRunner(scale)
	cfgA := scale.Config()
	cfgB := scale.Config().WithBandwidth(800)

	const callers = 8
	got := make(chan map[int]uintptr, callers)
	for i := 0; i < callers; i++ {
		go func() {
			a := r.Baseline(cfgA)
			b := r.Baseline(cfgB)
			got <- map[int]uintptr{
				0: reflect.ValueOf(a).Pointer(),
				1: reflect.ValueOf(b).Pointer(),
			}
		}()
	}
	first := <-got
	for i := 1; i < callers; i++ {
		other := <-got
		if other[0] != first[0] || other[1] != first[1] {
			t.Fatal("concurrent Baseline callers received different slices for the same config")
		}
	}
	if first[0] == first[1] {
		t.Error("different configs must have distinct baselines")
	}
}
