package bench

import (
	"fmt"
	"strings"
	"sync"

	"pmp/internal/trace"
)

// External workloads: manifest-listed .pmpt traces (converted from
// ChampSim/DPC sets by `pmptrace convert`) run through the same Runner
// machinery as the synthetic suite. The specs register in a process
// index so TraceByName — and through it a pmpsweepd worker handed a
// spec name — resolves them like suite traces.

var (
	externalMu    sync.RWMutex
	externalIndex = map[string]trace.Spec{}
)

// RegisterExternal adds external trace specs to the process-wide trace
// index consulted by TraceByName. Registering a name twice replaces
// the earlier spec; shadowing a synthetic suite name is an error (the
// suite index wins there, which would make job identities ambiguous).
func RegisterExternal(specs []trace.Spec) error {
	for _, sp := range specs {
		if _, taken := suiteTrace(sp.Name); taken {
			return fmt.Errorf("bench: external trace %q shadows a synthetic suite trace", sp.Name)
		}
	}
	externalMu.Lock()
	defer externalMu.Unlock()
	for _, sp := range specs {
		externalIndex[sp.Name] = sp
	}
	return nil
}

// externalTrace resolves a registered external spec by name.
func externalTrace(name string) (trace.Spec, bool) {
	externalMu.RLock()
	defer externalMu.RUnlock()
	sp, ok := externalIndex[name]
	return sp, ok
}

// LoadExternal loads a verified external-suite manifest and registers
// its traces, returning the specs in manifest order.
func LoadExternal(path string) ([]trace.Spec, error) {
	specs, err := trace.LoadManifest(path)
	if err != nil {
		return nil, err
	}
	if err := RegisterExternal(specs); err != nil {
		return nil, err
	}
	return specs, nil
}

// WithSpecs returns a Runner over the given trace specs instead of the
// scale's synthetic subset, sharing this runner's scheduler (local pool
// or remote coordinator) and scale but with its own baseline cache —
// baselines are per trace set. This is how an external manifest rides
// the experiment harness: bench.External(r.WithSpecs(specs)).
func (r *Runner) WithSpecs(specs []trace.Spec) *Runner {
	return &Runner{
		Scale: r.Scale,
		specs: specs,
		sw:    r.sw,
		rc:    r.rc,
		ctx:   r.ctx,
		base:  map[string]*baseline{},
	}
}

// External is the EXTW experiment: the full prefetcher registry (the
// paper's five evaluated designs plus the related-work lineup) over the
// runner's trace set — normally a manifest of converted real workloads
// via WithSpecs. Each row reports geomean NIPC and mean normalized
// memory traffic against the no-prefetch baseline of the same traces.
func External(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:     "EXTW",
		Title:  "External workloads: full registry over manifest traces (extension)",
		Header: []string{"Prefetcher", "NIPC", "NMT"},
	}
	names := append(EvalNames(), RelatedNames()...)
	for _, name := range names {
		res := r.Run(name, cfg)
		t.AddRow(name, f3(res.NIPC()), pct(res.NMT()))
	}
	traces := make([]string, len(r.specs))
	for i, sp := range r.specs {
		traces[i] = sp.Name
	}
	t.Notes = append(t.Notes,
		"traces: "+strings.Join(traces, ", "),
		"convert ChampSim/DPC sets with `pmptrace convert` and list them in a manifest (docs/traces.md)")
	return t
}
