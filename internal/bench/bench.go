// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (see DESIGN.md §5 for the full
// index). Each runner executes the required simulations and returns a
// Table whose rows mirror what the paper reports, so the repository's
// benchmarks and the pmpexperiments command regenerate every artifact.
package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/bingo"
	"pmp/internal/prefetchers/bop"
	"pmp/internal/prefetchers/dspatch"
	"pmp/internal/prefetchers/ghb"
	"pmp/internal/prefetchers/isb"
	"pmp/internal/prefetchers/misb"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/prefetchers/pythia"
	"pmp/internal/prefetchers/sandbox"
	"pmp/internal/prefetchers/smsref"
	"pmp/internal/prefetchers/spp"
	"pmp/internal/prefetchers/stride"
	"pmp/internal/prefetchers/triage"
	"pmp/internal/prefetchers/vldp"
	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// Scale sizes an experiment run. The paper uses 50M warm-up + 200M
// measured instructions over 125 traces; the default scales that down
// so the full harness completes in minutes, preserving relative
// behaviour.
type Scale struct {
	Traces  int    // suite traces used (Representative subset)
	Records int    // trace records generated per trace
	Warmup  uint64 // warm-up instructions
	Measure uint64 // measured instructions (0 = rest of trace)
}

// QuickScale is sized for unit tests and smoke benchmarks.
func QuickScale() Scale {
	return Scale{Traces: 6, Records: 60_000, Warmup: 40_000, Measure: 150_000}
}

// DefaultScale is the standard reduced evaluation.
func DefaultScale() Scale {
	return Scale{Traces: 16, Records: 250_000, Warmup: 150_000, Measure: 800_000}
}

// FullScale runs the complete 125-trace suite (hours, not minutes).
func FullScale() Scale {
	return Scale{Traces: 125, Records: 2_000_000, Warmup: 2_000_000, Measure: 8_000_000}
}

// Specs returns the trace subset for the scale.
func (s Scale) Specs() []trace.Spec { return trace.Representative(s.Traces) }

// Config returns the simulator configuration for the scale.
func (s Scale) Config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Warmup = s.Warmup
	cfg.Measure = s.Measure
	return cfg
}

// The prefetcher lineup of the paper's evaluation (Fig 8 order).
const (
	NameNone     = "none"
	NameDSPatch  = "dspatch"
	NameBingo    = "bingo"
	NameSPPPPF   = "spp-ppf"
	NamePythia   = "pythia"
	NamePMP      = "pmp"
	NamePMPLimit = "pmp-limit"
	NameNextline = "nextline"
	NameStride   = "stride"
	NameBOP      = "bop"
	NameSandbox  = "sandbox"
	NameVLDP     = "vldp"
	NameSMS      = "sms"
	NameGHB      = "ghb"
	NameISB      = "isb"
	NameMISB     = "misb"
	NameTriage   = "triage"
)

// EvalNames returns the paper's five evaluated prefetchers in
// presentation order.
func EvalNames() []string {
	return []string{NameDSPatch, NameBingo, NameSPPPPF, NamePythia, NamePMP}
}

// RelatedNames returns the additional prefetchers from the paper's
// related-work section implemented in this repository.
func RelatedNames() []string {
	return []string{
		NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameMISB, NameTriage,
	}
}

// Names lists every registered prefetcher name.
func Names() []string {
	return []string{
		NameNone, NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameMISB, NameTriage, NameDSPatch,
		NameBingo, NameSPPPPF, NamePythia, NamePMP, NamePMPLimit,
	}
}

// TryNewPrefetcher constructs a prefetcher by name, reporting unknown
// names as an error (for CLI surfaces).
func TryNewPrefetcher(name string) (pf prefetch.Prefetcher, err error) {
	for _, known := range Names() {
		if name == known {
			return NewPrefetcher(name), nil
		}
	}
	return nil, fmt.Errorf("unknown prefetcher %q (known: %s)", name, strings.Join(Names(), ", "))
}

// NewPrefetcher constructs a fresh prefetcher by name; it panics on an
// unknown name (the registry is fixed). CLI surfaces should prefer
// TryNewPrefetcher.
func NewPrefetcher(name string) prefetch.Prefetcher {
	switch name {
	case NameNone:
		return prefetch.Nop{}
	case NameNextline:
		return nextline.New(1)
	case NameStride:
		return stride.New(stride.DefaultConfig())
	case NameBOP:
		return bop.New(bop.DefaultConfig())
	case NameSandbox:
		return sandbox.New(sandbox.DefaultConfig())
	case NameVLDP:
		return vldp.New(vldp.DefaultConfig())
	case NameSMS:
		return smsref.New(smsref.DefaultConfig())
	case NameGHB:
		return ghb.New(ghb.DefaultConfig())
	case NameISB:
		return isb.New(isb.DefaultConfig())
	case NameMISB:
		return misb.New(misb.DefaultConfig())
	case NameTriage:
		return triage.New(triage.DefaultConfig())
	case NameDSPatch:
		return dspatch.New(dspatch.DefaultConfig())
	case NameBingo:
		return bingo.New(bingo.DefaultConfig())
	case NameSPPPPF:
		return spp.New(spp.DefaultConfig())
	case NamePythia:
		return pythia.New(pythia.DefaultConfig())
	case NamePMP:
		return core.New(core.DefaultConfig())
	case NamePMPLimit:
		cfg := core.DefaultConfig()
		cfg.LowLevelDegree = 1
		return core.New(cfg)
	default:
		panic(fmt.Sprintf("bench: unknown prefetcher %q", name))
	}
}

// bingoOriginalConfig is the non-doubled DPC-3 Bingo (half the
// enhanced pattern table), the configuration the paper places at the
// LLC in §V-B.
func bingoOriginalConfig() bingo.Config {
	c := bingo.DefaultConfig()
	c.PHTSets /= 2
	return c
}

// RunOne simulates one (trace, prefetcher) pair.
func RunOne(spec trace.Spec, pf prefetch.Prefetcher, scale Scale, cfg sim.Config) sim.Result {
	src := spec.New(scale.Records)
	return sim.NewSystem(cfg, pf).Run(src)
}

// SuiteResult holds one prefetcher's results across the trace subset,
// aligned with the baseline runs.
type SuiteResult struct {
	Name     string
	Results  []sim.Result // one per trace, same order as Baseline
	Baseline []sim.Result
	Specs    []trace.Spec
}

// NIPC returns the geometric-mean normalized IPC across traces.
func (s SuiteResult) NIPC() float64 {
	return geomeanRatio(s.Results, s.Baseline, func(r sim.Result) float64 { return r.IPC() })
}

// NIPCByFamily returns geomean NIPC per trace family.
func (s SuiteResult) NIPCByFamily() map[trace.Family]float64 {
	idx := map[trace.Family][]int{}
	for i, sp := range s.Specs {
		idx[sp.Family] = append(idx[sp.Family], i)
	}
	out := map[trace.Family]float64{}
	for fam, is := range idx {
		var sum float64
		n := 0
		for _, i := range is {
			b := s.Baseline[i].IPC()
			if b <= 0 {
				continue
			}
			sum += math.Log(s.Results[i].IPC() / b)
			n++
		}
		if n > 0 {
			out[fam] = math.Exp(sum / float64(n))
		}
	}
	return out
}

// NMT returns the mean normalized memory traffic (total DRAM requests
// over the baseline's), averaged across traces.
func (s SuiteResult) NMT() float64 {
	var sum float64
	n := 0
	for i := range s.Results {
		b := float64(s.Baseline[i].DRAM.Requests)
		if b == 0 {
			continue
		}
		sum += float64(s.Results[i].DRAM.Requests) / b
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func geomeanRatio(a, b []sim.Result, metric func(sim.Result) float64) float64 {
	var sum float64
	n := 0
	for i := range a {
		den := metric(b[i])
		if den <= 0 {
			continue
		}
		sum += math.Log(metric(a[i]) / den)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// defaultSweep is the process-wide scheduler used by Runners built
// without an explicit sweep (tests, benchmarks, library use): one
// bounded worker pool and one job-dedup table shared by every such
// Runner in the process. It has no results store and is never closed.
var (
	defaultSweepOnce sync.Once
	defaultSweepVal  *sweep.Sweep
)

func defaultSweep() *sweep.Sweep {
	defaultSweepOnce.Do(func() {
		defaultSweepVal = sweep.New(context.Background(), sweep.Options{})
	})
	return defaultSweepVal
}

// Runner executes suite runs by submitting one sweep job per (trace,
// prefetcher, config) triple to a shared scheduler, with a
// singleflight baseline cache so concurrent experiments that reuse
// the same system configuration only simulate the baseline once per
// trace. Runners are safe for concurrent use.
//
// A Runner built with NewRunnerRemote submits the same jobs as wire
// specs to a pmpsweepd coordinator instead of the in-process pool;
// everything downstream (dedup, baselines, table assembly) is
// unchanged, and the results are byte-identical by the sweep's
// determinism invariant.
type Runner struct {
	Scale Scale
	specs []trace.Spec
	sw    *sweep.Sweep

	rc  *remote.Client  // non-nil: submit to a coordinator instead of sw
	ctx context.Context // governs remote submission/polling

	mu   sync.Mutex
	base map[string]*baseline // config fingerprint -> baseline singleflight
}

// baseline is one singleflight slot of the baseline cache: the first
// caller computes res inside once, every other caller blocks on it.
type baseline struct {
	once sync.Once
	res  []sim.Result
}

// NewRunner builds a Runner for the scale on the process-wide shared
// sweep (no results store).
func NewRunner(scale Scale) *Runner {
	return NewRunnerWith(scale, defaultSweep())
}

// NewRunnerWith builds a Runner submitting to the given sweep, e.g. a
// store-backed one created by cmd/pmpexperiments for resumable runs.
func NewRunnerWith(scale Scale, sw *sweep.Sweep) *Runner {
	return &Runner{
		Scale: scale,
		specs: scale.Specs(),
		sw:    sw,
		base:  map[string]*baseline{},
	}
}

// NewRunnerRemote builds a Runner that submits its jobs to a running
// pmpsweepd coordinator (cmd/pmpexperiments -remote). The context
// governs submission and polling; canceling it unwinds experiments
// through the usual sweep.Interrupted path.
func NewRunnerRemote(ctx context.Context, scale Scale, rc *remote.Client) *Runner {
	return &Runner{
		Scale: scale,
		specs: scale.Specs(),
		rc:    rc,
		ctx:   ctx,
		base:  map[string]*baseline{},
	}
}

// Specs returns the runner's trace subset.
func (r *Runner) Specs() []trace.Spec { return r.specs }

// specJob pairs a sweep job's identity name with its declarative run
// spec. The name keys job identity together with the spec's trace key,
// record count and config fingerprint — exactly the tuple legacy jobs
// used — so identical jobs submitted by other experiments (or by
// pre-spec store files) deduplicate against it.
type specJob struct {
	name string
	run  runspec.RunSpec
}

// traceRef renders a trace spec as its wire reference.
func traceRef(sp trace.Spec) runspec.TraceRef {
	return runspec.TraceRef{Name: sp.Name, File: sp.File}
}

// recResults extracts a record's per-core results: the multicore
// result set when present, else the single-core result (zero for a
// quarantined job, so the suite — and the rest of the sweep — keeps
// going).
func recResults(rec sweep.Record) []sim.Result {
	if len(rec.Results) > 0 {
		return rec.Results
	}
	return []sim.Result{rec.Result}
}

// runSpecs submits one sweep job per spec and waits for all results in
// order, returning each job's per-core result set. Local runners build
// executables through BuildRun and submit to the shared pool; remote
// runners ship the specs themselves to the coordinator. A canceled
// sweep unwinds via a sweep.Interrupted panic, recovered at the
// experiment driver.
func (r *Runner) runSpecs(jobs []specJob) [][]sim.Result {
	if r.rc != nil {
		return r.runSpecsRemote(jobs)
	}
	tickets := make([]*sweep.Ticket, len(jobs))
	for i, j := range jobs {
		key := j.run.TraceKey()
		exec, err := BuildRun(j.run)
		if err != nil {
			// Local specs are experiment-constructed; an unbuildable one
			// is a programming error, not a job failure.
			panic(fmt.Sprintf("bench: build %s/%s: %v", j.name, key, err))
		}
		tickets[i] = r.sw.Submit(sweep.Job{
			ID:         sweep.JobID(j.name, key, j.run.Records, j.run.Config.Fingerprint()),
			Label:      j.name + "/" + key,
			Prefetcher: j.name,
			Trace:      key,
			Run:        exec.Run,
			RunMulti:   exec.RunMulti,
		})
	}
	out := make([][]sim.Result, len(tickets))
	for i, t := range tickets {
		rec, err := t.Wait()
		if err != nil {
			panic(sweep.Interrupted{Err: err})
		}
		out[i] = recResults(rec)
	}
	return out
}

// runSpecsRemote submits the same job set as wire specs to the
// coordinator and polls for the records. The coordinator deduplicates
// by job ID exactly like the in-process sweep, so cross-experiment
// sharing survives the network hop; submission and polling failures
// unwind via sweep.Interrupted like a canceled local sweep.
func (r *Runner) runSpecsRemote(jobs []specJob) [][]sim.Result {
	specs := make([]remote.JobSpec, len(jobs))
	ids := make([]string, len(jobs))
	for i, j := range jobs {
		key := j.run.TraceKey()
		ids[i] = sweep.JobID(j.name, key, j.run.Records, j.run.Config.Fingerprint())
		specs[i] = remote.JobSpec{
			ID:         ids[i],
			Label:      j.name + "/" + key,
			Prefetcher: j.name,
			Trace:      key,
			Run:        j.run,
		}
	}
	if _, err := r.rc.Submit(r.ctx, specs); err != nil {
		panic(sweep.Interrupted{Err: err})
	}
	recs, err := r.rc.Wait(r.ctx, ids)
	if err != nil {
		panic(sweep.Interrupted{Err: err})
	}
	out := make([][]sim.Result, len(ids))
	for i, id := range ids {
		out[i] = recResults(recs[id])
	}
	return out
}

// suiteRun simulates every suite trace on a single core with the
// variant (plus optional per-level placements) under the given job
// name, returning one result per trace.
func (r *Runner) suiteRun(name string, v VariantSpec, placements []runspec.Placement, cfg sim.Config) []sim.Result {
	jobs := make([]specJob, len(r.specs))
	for i, sp := range r.specs {
		jobs[i] = specJob{name: name, run: runspec.RunSpec{
			Cores:      []runspec.CoreSpec{{Trace: traceRef(sp), Variant: v}},
			Placements: placements,
			Records:    r.Scale.Records,
			Config:     cfg,
		}}
	}
	sets := r.runSpecs(jobs)
	res := make([]sim.Result, len(sets))
	for i, s := range sets {
		res[i] = s[0]
	}
	return res
}

// Baseline returns (computing if needed) the non-prefetching results
// for the configuration. Baselines are sweep jobs under the name
// "none", so a store-backed run persists them keyed by the config
// fingerprint and a resumed run skips them like any other job.
func (r *Runner) Baseline(cfg sim.Config) []sim.Result {
	key := cfg.Fingerprint()
	r.mu.Lock()
	b := r.base[key]
	if b == nil {
		b = &baseline{}
		r.base[key] = b
	}
	r.mu.Unlock()
	b.once.Do(func() {
		b.res = r.suiteRun(NameNone, RegistryVariant(NameNone), nil, cfg)
	})
	return b.res
}

// Run simulates every suite trace with fresh instances of the named
// design. The name may be any grammar name — a registry entry or a
// parameterized variant such as "pmp-tw8"; experiments with typed
// configurations in hand use RunVariant instead.
func (r *Runner) Run(name string, cfg sim.Config) SuiteResult {
	v, err := ParseVariant(name)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return r.RunVariant(v, cfg)
}

// RunVariant simulates every suite trace with the variant spec.
func (r *Runner) RunVariant(v VariantSpec, cfg sim.Config) SuiteResult {
	return r.RunPlaced(v.Name, v, nil, cfg)
}

// RunPlaced simulates every suite trace with the core variant plus
// extra per-level prefetcher placements, under an explicit job name
// (placements are part of the run, not of any single variant, so the
// caller names the combination — e.g. the §V-B "bingo@llc" row runs a
// "none" core with the original Bingo placed at the LLC).
func (r *Runner) RunPlaced(name string, v VariantSpec, placements []runspec.Placement, cfg sim.Config) SuiteResult {
	return SuiteResult{
		Name:     name,
		Specs:    r.specs,
		Baseline: r.Baseline(cfg),
		Results:  r.suiteRun(name, v, placements, cfg),
	}
}

// --- Table rendering ---

// Table is a rendered experiment artifact: the rows the paper reports.
type Table struct {
	ID     string // experiment id from DESIGN.md (e.g. "F8")
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows;
// notes become trailing comment lines).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func sortedFamilies(m map[trace.Family]float64) []trace.Family {
	fams := make([]trace.Family, 0, len(m))
	for f := range m {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	return fams
}
