// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (see DESIGN.md §5 for the full
// index). Each runner executes the required simulations and returns a
// Table whose rows mirror what the paper reports, so the repository's
// benchmarks and the pmpexperiments command regenerate every artifact.
package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/bingo"
	"pmp/internal/prefetchers/bop"
	"pmp/internal/prefetchers/dspatch"
	"pmp/internal/prefetchers/ghb"
	"pmp/internal/prefetchers/isb"
	"pmp/internal/prefetchers/misb"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/prefetchers/pythia"
	"pmp/internal/prefetchers/sandbox"
	"pmp/internal/prefetchers/smsref"
	"pmp/internal/prefetchers/spp"
	"pmp/internal/prefetchers/stride"
	"pmp/internal/prefetchers/triage"
	"pmp/internal/prefetchers/vldp"
	"pmp/internal/sim"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// Scale sizes an experiment run. The paper uses 50M warm-up + 200M
// measured instructions over 125 traces; the default scales that down
// so the full harness completes in minutes, preserving relative
// behaviour.
type Scale struct {
	Traces  int    // suite traces used (Representative subset)
	Records int    // trace records generated per trace
	Warmup  uint64 // warm-up instructions
	Measure uint64 // measured instructions (0 = rest of trace)
}

// QuickScale is sized for unit tests and smoke benchmarks.
func QuickScale() Scale {
	return Scale{Traces: 6, Records: 60_000, Warmup: 40_000, Measure: 150_000}
}

// DefaultScale is the standard reduced evaluation.
func DefaultScale() Scale {
	return Scale{Traces: 16, Records: 250_000, Warmup: 150_000, Measure: 800_000}
}

// FullScale runs the complete 125-trace suite (hours, not minutes).
func FullScale() Scale {
	return Scale{Traces: 125, Records: 2_000_000, Warmup: 2_000_000, Measure: 8_000_000}
}

// Specs returns the trace subset for the scale.
func (s Scale) Specs() []trace.Spec { return trace.Representative(s.Traces) }

// Config returns the simulator configuration for the scale.
func (s Scale) Config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Warmup = s.Warmup
	cfg.Measure = s.Measure
	return cfg
}

// The prefetcher lineup of the paper's evaluation (Fig 8 order).
const (
	NameNone     = "none"
	NameDSPatch  = "dspatch"
	NameBingo    = "bingo"
	NameSPPPPF   = "spp-ppf"
	NamePythia   = "pythia"
	NamePMP      = "pmp"
	NamePMPLimit = "pmp-limit"
	NameNextline = "nextline"
	NameStride   = "stride"
	NameBOP      = "bop"
	NameSandbox  = "sandbox"
	NameVLDP     = "vldp"
	NameSMS      = "sms"
	NameGHB      = "ghb"
	NameISB      = "isb"
	NameMISB     = "misb"
	NameTriage   = "triage"
)

// EvalNames returns the paper's five evaluated prefetchers in
// presentation order.
func EvalNames() []string {
	return []string{NameDSPatch, NameBingo, NameSPPPPF, NamePythia, NamePMP}
}

// RelatedNames returns the additional prefetchers from the paper's
// related-work section implemented in this repository.
func RelatedNames() []string {
	return []string{
		NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameMISB, NameTriage,
	}
}

// Names lists every registered prefetcher name.
func Names() []string {
	return []string{
		NameNone, NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameMISB, NameTriage, NameDSPatch,
		NameBingo, NameSPPPPF, NamePythia, NamePMP, NamePMPLimit,
	}
}

// TryNewPrefetcher constructs a prefetcher by name, reporting unknown
// names as an error (for CLI surfaces).
func TryNewPrefetcher(name string) (pf prefetch.Prefetcher, err error) {
	for _, known := range Names() {
		if name == known {
			return NewPrefetcher(name), nil
		}
	}
	return nil, fmt.Errorf("unknown prefetcher %q (known: %s)", name, strings.Join(Names(), ", "))
}

// NewPrefetcher constructs a fresh prefetcher by name; it panics on an
// unknown name (the registry is fixed). CLI surfaces should prefer
// TryNewPrefetcher.
func NewPrefetcher(name string) prefetch.Prefetcher {
	switch name {
	case NameNone:
		return prefetch.Nop{}
	case NameNextline:
		return nextline.New(1)
	case NameStride:
		return stride.New(stride.DefaultConfig())
	case NameBOP:
		return bop.New(bop.DefaultConfig())
	case NameSandbox:
		return sandbox.New(sandbox.DefaultConfig())
	case NameVLDP:
		return vldp.New(vldp.DefaultConfig())
	case NameSMS:
		return smsref.New(smsref.DefaultConfig())
	case NameGHB:
		return ghb.New(ghb.DefaultConfig())
	case NameISB:
		return isb.New(isb.DefaultConfig())
	case NameMISB:
		return misb.New(misb.DefaultConfig())
	case NameTriage:
		return triage.New(triage.DefaultConfig())
	case NameDSPatch:
		return dspatch.New(dspatch.DefaultConfig())
	case NameBingo:
		return bingo.New(bingo.DefaultConfig())
	case NameSPPPPF:
		return spp.New(spp.DefaultConfig())
	case NamePythia:
		return pythia.New(pythia.DefaultConfig())
	case NamePMP:
		return core.New(core.DefaultConfig())
	case NamePMPLimit:
		cfg := core.DefaultConfig()
		cfg.LowLevelDegree = 1
		return core.New(cfg)
	default:
		panic(fmt.Sprintf("bench: unknown prefetcher %q", name))
	}
}

// bingoOriginalConfig is the non-doubled DPC-3 Bingo (half the
// enhanced pattern table), the configuration the paper places at the
// LLC in §V-B.
func bingoOriginalConfig() bingo.Config {
	c := bingo.DefaultConfig()
	c.PHTSets /= 2
	return c
}

func bingoNew(c bingo.Config) prefetch.Prefetcher { return bingo.New(c) }

// RunOne simulates one (trace, prefetcher) pair.
func RunOne(spec trace.Spec, pf prefetch.Prefetcher, scale Scale, cfg sim.Config) sim.Result {
	src := spec.New(scale.Records)
	return sim.NewSystem(cfg, pf).Run(src)
}

// SuiteResult holds one prefetcher's results across the trace subset,
// aligned with the baseline runs.
type SuiteResult struct {
	Name     string
	Results  []sim.Result // one per trace, same order as Baseline
	Baseline []sim.Result
	Specs    []trace.Spec
}

// NIPC returns the geometric-mean normalized IPC across traces.
func (s SuiteResult) NIPC() float64 {
	return geomeanRatio(s.Results, s.Baseline, func(r sim.Result) float64 { return r.IPC() })
}

// NIPCByFamily returns geomean NIPC per trace family.
func (s SuiteResult) NIPCByFamily() map[trace.Family]float64 {
	idx := map[trace.Family][]int{}
	for i, sp := range s.Specs {
		idx[sp.Family] = append(idx[sp.Family], i)
	}
	out := map[trace.Family]float64{}
	for fam, is := range idx {
		var sum float64
		n := 0
		for _, i := range is {
			b := s.Baseline[i].IPC()
			if b <= 0 {
				continue
			}
			sum += math.Log(s.Results[i].IPC() / b)
			n++
		}
		if n > 0 {
			out[fam] = math.Exp(sum / float64(n))
		}
	}
	return out
}

// NMT returns the mean normalized memory traffic (total DRAM requests
// over the baseline's), averaged across traces.
func (s SuiteResult) NMT() float64 {
	var sum float64
	n := 0
	for i := range s.Results {
		b := float64(s.Baseline[i].DRAM.Requests)
		if b == 0 {
			continue
		}
		sum += float64(s.Results[i].DRAM.Requests) / b
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func geomeanRatio(a, b []sim.Result, metric func(sim.Result) float64) float64 {
	var sum float64
	n := 0
	for i := range a {
		den := metric(b[i])
		if den <= 0 {
			continue
		}
		sum += math.Log(metric(a[i]) / den)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// defaultSweep is the process-wide scheduler used by Runners built
// without an explicit sweep (tests, benchmarks, library use): one
// bounded worker pool and one job-dedup table shared by every such
// Runner in the process. It has no results store and is never closed.
var (
	defaultSweepOnce sync.Once
	defaultSweepVal  *sweep.Sweep
)

func defaultSweep() *sweep.Sweep {
	defaultSweepOnce.Do(func() {
		defaultSweepVal = sweep.New(context.Background(), sweep.Options{})
	})
	return defaultSweepVal
}

// Runner executes suite runs by submitting one sweep job per (trace,
// prefetcher, config) triple to a shared scheduler, with a
// singleflight baseline cache so concurrent experiments that reuse
// the same system configuration only simulate the baseline once per
// trace. Runners are safe for concurrent use.
//
// A Runner built with NewRunnerRemote submits the same jobs as wire
// specs to a pmpsweepd coordinator instead of the in-process pool;
// everything downstream (dedup, baselines, table assembly) is
// unchanged, and the results are byte-identical by the sweep's
// determinism invariant.
type Runner struct {
	Scale Scale
	specs []trace.Spec
	sw    *sweep.Sweep

	rc  *remote.Client  // non-nil: submit to a coordinator instead of sw
	ctx context.Context // governs remote submission/polling

	mu   sync.Mutex
	base map[string]*baseline // config fingerprint -> baseline singleflight
}

// baseline is one singleflight slot of the baseline cache: the first
// caller computes res inside once, every other caller blocks on it.
type baseline struct {
	once sync.Once
	res  []sim.Result
}

// NewRunner builds a Runner for the scale on the process-wide shared
// sweep (no results store).
func NewRunner(scale Scale) *Runner {
	return NewRunnerWith(scale, defaultSweep())
}

// NewRunnerWith builds a Runner submitting to the given sweep, e.g. a
// store-backed one created by cmd/pmpexperiments for resumable runs.
func NewRunnerWith(scale Scale, sw *sweep.Sweep) *Runner {
	return &Runner{
		Scale: scale,
		specs: scale.Specs(),
		sw:    sw,
		base:  map[string]*baseline{},
	}
}

// NewRunnerRemote builds a Runner that submits its jobs to a running
// pmpsweepd coordinator (cmd/pmpexperiments -remote). The context
// governs submission and polling; canceling it unwinds experiments
// through the usual sweep.Interrupted path.
func NewRunnerRemote(ctx context.Context, scale Scale, rc *remote.Client) *Runner {
	return &Runner{
		Scale: scale,
		specs: scale.Specs(),
		rc:    rc,
		ctx:   ctx,
		base:  map[string]*baseline{},
	}
}

// Specs returns the runner's trace subset.
func (r *Runner) Specs() []trace.Spec { return r.specs }

// runJobs submits one job per suite trace and waits for all results
// in spec order. The name must uniquely identify the prefetcher
// construction (parameterized variants embed their parameters) since
// it keys job identity together with the config fingerprint and
// scale; identical jobs submitted by other experiments are simulated
// only once. A quarantined job yields its zero Result so the suite —
// and the rest of the sweep — keeps going; a canceled sweep unwinds
// via a sweep.Interrupted panic, recovered at the experiment driver.
func (r *Runner) runJobs(name string, cfg sim.Config, simulate func(trace.Spec) sim.Result) []sim.Result {
	return r.runJobsAt(name, "", cfg, simulate)
}

// runJobsAt is runJobs with an explicit attach point ("" = innermost
// level, "llc" = LLC-attached, as in the §V-B placement experiment).
// The attach point travels in the wire spec so a remote worker
// reconstructs the same system shape; the local path encodes it in
// the simulate closure directly.
func (r *Runner) runJobsAt(name, attach string, cfg sim.Config, simulate func(trace.Spec) sim.Result) []sim.Result {
	if r.rc != nil {
		return r.runJobsRemote(name, attach, cfg)
	}
	fp := cfg.Fingerprint()
	tickets := make([]*sweep.Ticket, len(r.specs))
	for i, sp := range r.specs {
		sp := sp
		tickets[i] = r.sw.Submit(sweep.Job{
			ID:         sweep.JobID(name, sp.Name, r.Scale.Records, fp),
			Label:      name + "/" + sp.Name,
			Prefetcher: name,
			Trace:      sp.Name,
			Run:        func(context.Context) sim.Result { return simulate(sp) },
		})
	}
	res := make([]sim.Result, len(tickets))
	for i, t := range tickets {
		rec, err := t.Wait()
		if err != nil {
			panic(sweep.Interrupted{Err: err})
		}
		res[i] = rec.Result
	}
	return res
}

// runJobsRemote submits the same job set as wire specs to the
// coordinator and polls for the records. The coordinator deduplicates
// by job ID exactly like the in-process sweep, so cross-experiment
// sharing survives the network hop; submission and polling failures
// unwind via sweep.Interrupted like a canceled local sweep.
func (r *Runner) runJobsRemote(name, attach string, cfg sim.Config) []sim.Result {
	fp := cfg.Fingerprint()
	specs := make([]remote.JobSpec, len(r.specs))
	ids := make([]string, len(r.specs))
	for i, sp := range r.specs {
		ids[i] = sweep.JobID(name, sp.Name, r.Scale.Records, fp)
		specs[i] = remote.JobSpec{
			ID:         ids[i],
			Label:      name + "/" + sp.Name,
			Prefetcher: name,
			Trace:      sp.Name,
			TraceFile:  sp.File,
			Records:    r.Scale.Records,
			Attach:     attach,
			Config:     cfg,
		}
	}
	if _, err := r.rc.Submit(r.ctx, specs); err != nil {
		panic(sweep.Interrupted{Err: err})
	}
	recs, err := r.rc.Wait(r.ctx, ids)
	if err != nil {
		panic(sweep.Interrupted{Err: err})
	}
	res := make([]sim.Result, len(ids))
	for i, id := range ids {
		res[i] = recs[id].Result
	}
	return res
}

// Baseline returns (computing if needed) the non-prefetching results
// for the configuration. Baselines are sweep jobs under the name
// "none", so a store-backed run persists them keyed by the config
// fingerprint and a resumed run skips them like any other job.
func (r *Runner) Baseline(cfg sim.Config) []sim.Result {
	key := cfg.Fingerprint()
	r.mu.Lock()
	b := r.base[key]
	if b == nil {
		b = &baseline{}
		r.base[key] = b
	}
	r.mu.Unlock()
	b.once.Do(func() {
		b.res = r.runJobs(NameNone, cfg, func(sp trace.Spec) sim.Result {
			return RunOne(sp, prefetch.Nop{}, r.Scale, cfg)
		})
	})
	return b.res
}

// Run simulates every suite trace with fresh instances of the named
// prefetcher (or with mk when non-nil, for custom configurations).
func (r *Runner) Run(name string, mk func() prefetch.Prefetcher, cfg sim.Config) SuiteResult {
	if mk == nil {
		mk = func() prefetch.Prefetcher { return NewPrefetcher(name) }
	}
	return SuiteResult{
		Name:     name,
		Specs:    r.specs,
		Baseline: r.Baseline(cfg),
		Results: r.runJobs(name, cfg, func(sp trace.Spec) sim.Result {
			return RunOne(sp, mk(), r.Scale, cfg)
		}),
	}
}

// --- Table rendering ---

// Table is a rendered experiment artifact: the rows the paper reports.
type Table struct {
	ID     string // experiment id from DESIGN.md (e.g. "F8")
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows;
// notes become trailing comment lines).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func sortedFamilies(m map[trace.Family]float64) []trace.Family {
	fams := make([]trace.Family, 0, len(m))
	for f := range m {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	return fams
}
