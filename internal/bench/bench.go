// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (see DESIGN.md §5 for the full
// index). Each runner executes the required simulations and returns a
// Table whose rows mirror what the paper reports, so the repository's
// benchmarks and the pmpexperiments command regenerate every artifact.
package bench

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/bingo"
	"pmp/internal/prefetchers/bop"
	"pmp/internal/prefetchers/dspatch"
	"pmp/internal/prefetchers/ghb"
	"pmp/internal/prefetchers/isb"
	"pmp/internal/prefetchers/misb"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/prefetchers/pythia"
	"pmp/internal/prefetchers/sandbox"
	"pmp/internal/prefetchers/smsref"
	"pmp/internal/prefetchers/spp"
	"pmp/internal/prefetchers/stride"
	"pmp/internal/prefetchers/triage"
	"pmp/internal/prefetchers/vldp"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

// Scale sizes an experiment run. The paper uses 50M warm-up + 200M
// measured instructions over 125 traces; the default scales that down
// so the full harness completes in minutes, preserving relative
// behaviour.
type Scale struct {
	Traces  int    // suite traces used (Representative subset)
	Records int    // trace records generated per trace
	Warmup  uint64 // warm-up instructions
	Measure uint64 // measured instructions (0 = rest of trace)
}

// QuickScale is sized for unit tests and smoke benchmarks.
func QuickScale() Scale {
	return Scale{Traces: 6, Records: 60_000, Warmup: 40_000, Measure: 150_000}
}

// DefaultScale is the standard reduced evaluation.
func DefaultScale() Scale {
	return Scale{Traces: 16, Records: 250_000, Warmup: 150_000, Measure: 800_000}
}

// FullScale runs the complete 125-trace suite (hours, not minutes).
func FullScale() Scale {
	return Scale{Traces: 125, Records: 2_000_000, Warmup: 2_000_000, Measure: 8_000_000}
}

// Specs returns the trace subset for the scale.
func (s Scale) Specs() []trace.Spec { return trace.Representative(s.Traces) }

// Config returns the simulator configuration for the scale.
func (s Scale) Config() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Warmup = s.Warmup
	cfg.Measure = s.Measure
	return cfg
}

// The prefetcher lineup of the paper's evaluation (Fig 8 order).
const (
	NameNone     = "none"
	NameDSPatch  = "dspatch"
	NameBingo    = "bingo"
	NameSPPPPF   = "spp-ppf"
	NamePythia   = "pythia"
	NamePMP      = "pmp"
	NamePMPLimit = "pmp-limit"
	NameNextline = "nextline"
	NameStride   = "stride"
	NameBOP      = "bop"
	NameSandbox  = "sandbox"
	NameVLDP     = "vldp"
	NameSMS      = "sms"
	NameGHB      = "ghb"
	NameISB      = "isb"
	NameMISB     = "misb"
	NameTriage   = "triage"
)

// EvalNames returns the paper's five evaluated prefetchers in
// presentation order.
func EvalNames() []string {
	return []string{NameDSPatch, NameBingo, NameSPPPPF, NamePythia, NamePMP}
}

// RelatedNames returns the additional prefetchers from the paper's
// related-work section implemented in this repository.
func RelatedNames() []string {
	return []string{
		NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameMISB, NameTriage,
	}
}

// Names lists every registered prefetcher name.
func Names() []string {
	return []string{
		NameNone, NameNextline, NameStride, NameBOP, NameSandbox, NameVLDP,
		NameSMS, NameGHB, NameISB, NameDSPatch, NameBingo, NameSPPPPF,
		NamePythia, NamePMP, NamePMPLimit,
	}
}

// TryNewPrefetcher constructs a prefetcher by name, reporting unknown
// names as an error (for CLI surfaces).
func TryNewPrefetcher(name string) (pf prefetch.Prefetcher, err error) {
	for _, known := range Names() {
		if name == known {
			return NewPrefetcher(name), nil
		}
	}
	return nil, fmt.Errorf("unknown prefetcher %q (known: %s)", name, strings.Join(Names(), ", "))
}

// NewPrefetcher constructs a fresh prefetcher by name; it panics on an
// unknown name (the registry is fixed). CLI surfaces should prefer
// TryNewPrefetcher.
func NewPrefetcher(name string) prefetch.Prefetcher {
	switch name {
	case NameNone:
		return prefetch.Nop{}
	case NameNextline:
		return nextline.New(1)
	case NameStride:
		return stride.New(stride.DefaultConfig())
	case NameBOP:
		return bop.New(bop.DefaultConfig())
	case NameSandbox:
		return sandbox.New(sandbox.DefaultConfig())
	case NameVLDP:
		return vldp.New(vldp.DefaultConfig())
	case NameSMS:
		return smsref.New(smsref.DefaultConfig())
	case NameGHB:
		return ghb.New(ghb.DefaultConfig())
	case NameISB:
		return isb.New(isb.DefaultConfig())
	case NameMISB:
		return misb.New(misb.DefaultConfig())
	case NameTriage:
		return triage.New(triage.DefaultConfig())
	case NameDSPatch:
		return dspatch.New(dspatch.DefaultConfig())
	case NameBingo:
		return bingo.New(bingo.DefaultConfig())
	case NameSPPPPF:
		return spp.New(spp.DefaultConfig())
	case NamePythia:
		return pythia.New(pythia.DefaultConfig())
	case NamePMP:
		return core.New(core.DefaultConfig())
	case NamePMPLimit:
		cfg := core.DefaultConfig()
		cfg.LowLevelDegree = 1
		return core.New(cfg)
	default:
		panic(fmt.Sprintf("bench: unknown prefetcher %q", name))
	}
}

// bingoOriginalConfig is the non-doubled DPC-3 Bingo (half the
// enhanced pattern table), the configuration the paper places at the
// LLC in §V-B.
func bingoOriginalConfig() bingo.Config {
	c := bingo.DefaultConfig()
	c.PHTSets /= 2
	return c
}

func bingoNew(c bingo.Config) prefetch.Prefetcher { return bingo.New(c) }

// RunOne simulates one (trace, prefetcher) pair.
func RunOne(spec trace.Spec, pf prefetch.Prefetcher, scale Scale, cfg sim.Config) sim.Result {
	src := spec.New(scale.Records)
	return sim.NewSystem(cfg, pf).Run(src)
}

// SuiteResult holds one prefetcher's results across the trace subset,
// aligned with the baseline runs.
type SuiteResult struct {
	Name     string
	Results  []sim.Result // one per trace, same order as Baseline
	Baseline []sim.Result
	Specs    []trace.Spec
}

// NIPC returns the geometric-mean normalized IPC across traces.
func (s SuiteResult) NIPC() float64 {
	return geomeanRatio(s.Results, s.Baseline, func(r sim.Result) float64 { return r.IPC() })
}

// NIPCByFamily returns geomean NIPC per trace family.
func (s SuiteResult) NIPCByFamily() map[trace.Family]float64 {
	idx := map[trace.Family][]int{}
	for i, sp := range s.Specs {
		idx[sp.Family] = append(idx[sp.Family], i)
	}
	out := map[trace.Family]float64{}
	for fam, is := range idx {
		var sum float64
		n := 0
		for _, i := range is {
			b := s.Baseline[i].IPC()
			if b <= 0 {
				continue
			}
			sum += math.Log(s.Results[i].IPC() / b)
			n++
		}
		if n > 0 {
			out[fam] = math.Exp(sum / float64(n))
		}
	}
	return out
}

// NMT returns the mean normalized memory traffic (total DRAM requests
// over the baseline's), averaged across traces.
func (s SuiteResult) NMT() float64 {
	var sum float64
	n := 0
	for i := range s.Results {
		b := float64(s.Baseline[i].DRAM.Requests)
		if b == 0 {
			continue
		}
		sum += float64(s.Results[i].DRAM.Requests) / b
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func geomeanRatio(a, b []sim.Result, metric func(sim.Result) float64) float64 {
	var sum float64
	n := 0
	for i := range a {
		den := metric(b[i])
		if den <= 0 {
			continue
		}
		sum += math.Log(metric(a[i]) / den)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Runner executes suite runs with a shared baseline cache, so sweeps
// that reuse the same system configuration only simulate the baseline
// once per trace.
type Runner struct {
	Scale Scale
	specs []trace.Spec
	base  map[string][]sim.Result // config fingerprint -> baseline results
}

// NewRunner builds a Runner for the scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{
		Scale: scale,
		specs: scale.Specs(),
		base:  map[string][]sim.Result{},
	}
}

// Specs returns the runner's trace subset.
func (r *Runner) Specs() []trace.Spec { return r.specs }

// fingerprint keys the baseline cache by the complete configuration
// (it is all value types), so sweeps over any field — bandwidth, LLC
// size, cache policy, TLB geometry — get their own baselines.
func fingerprint(cfg sim.Config) string {
	return fmt.Sprintf("%+v", cfg)
}

// runParallel simulates every suite trace concurrently (one goroutine
// per CPU); each simulation is fully independent, so results are
// deterministic regardless of scheduling.
func (r *Runner) runParallel(mk func() prefetch.Prefetcher, cfg sim.Config) []sim.Result {
	res := make([]sim.Result, len(r.specs))
	workers := runtime.NumCPU()
	if workers > len(r.specs) {
		workers = len(r.specs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res[i] = RunOne(r.specs[i], mk(), r.Scale, cfg)
			}
		}()
	}
	for i := range r.specs {
		work <- i
	}
	close(work)
	wg.Wait()
	return res
}

// Baseline returns (computing if needed) the non-prefetching results
// for the configuration.
func (r *Runner) Baseline(cfg sim.Config) []sim.Result {
	key := fingerprint(cfg)
	if res, ok := r.base[key]; ok {
		return res
	}
	res := r.runParallel(func() prefetch.Prefetcher { return prefetch.Nop{} }, cfg)
	r.base[key] = res
	return res
}

// Run simulates every suite trace with fresh instances of the named
// prefetcher (or with mk when non-nil, for custom configurations).
func (r *Runner) Run(name string, mk func() prefetch.Prefetcher, cfg sim.Config) SuiteResult {
	if mk == nil {
		mk = func() prefetch.Prefetcher { return NewPrefetcher(name) }
	}
	return SuiteResult{
		Name:     name,
		Specs:    r.specs,
		Baseline: r.Baseline(cfg),
		Results:  r.runParallel(mk, cfg),
	}
}

// --- Table rendering ---

// Table is a rendered experiment artifact: the rows the paper reports.
type Table struct {
	ID     string // experiment id from DESIGN.md (e.g. "F8")
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (header + rows;
// notes become trailing comment lines).
func (t *Table) CSV() string {
	var sb strings.Builder
	esc := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(esc(c))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func sortedFamilies(m map[trace.Family]float64) []trace.Family {
	fams := make([]trace.Family, 0, len(m))
	for f := range m {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	return fams
}
