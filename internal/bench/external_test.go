package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pmp/internal/runspec"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// externalManifest materializes two small converted-style .pmpt traces
// plus a manifest listing them, and returns the loaded (registered)
// specs.
func externalManifest(t *testing.T, records int) []trace.Spec {
	t.Helper()
	dir := t.TempDir()
	entries := make([]trace.ExternalSpec, 0, 2)
	for i, name := range []string{"extbench-a", "extbench-b"} {
		tr := trace.Collect(trace.NewStride(name, int64(100+i), records, trace.DefaultStrideParams()), 0)
		path := filepath.Join(dir, name+".pmpt")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		sum, err := trace.FileSHA256(path)
		if err != nil {
			t.Fatal(err)
		}
		entries = append(entries, trace.ExternalSpec{
			Name: name, Family: "external", Class: trace.MediumMPKI,
			Path: name + ".pmpt", SHA256: sum, Records: tr.Len(),
		})
	}
	data, err := json.Marshal(trace.Manifest{Version: trace.ManifestVersion, Traces: entries})
	if err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(dir, "traces.json")
	if err := os.WriteFile(mpath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadExternal(mpath)
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

// extScale keeps the external e2e runs fast and sized to the small
// converted files.
func extScale() Scale {
	return Scale{Traces: 4, Records: 3_000, Warmup: 500, Measure: 2_000}
}

func TestRegisterExternalShadowsSuite(t *testing.T) {
	name := trace.Suite()[0].Name
	err := RegisterExternal([]trace.Spec{{Name: name}})
	if err == nil {
		t.Fatalf("registering external trace named %q (a suite trace) should fail", name)
	}
}

func TestTraceByNameExternal(t *testing.T) {
	specs := externalManifest(t, 200)
	for _, sp := range specs {
		got, ok := TraceByName(sp.Name)
		if !ok {
			t.Fatalf("TraceByName(%q) after LoadExternal: not found", sp.Name)
		}
		if got.File != sp.File {
			t.Errorf("TraceByName(%q).File = %q, want %q", sp.Name, got.File, sp.File)
		}
	}
	if _, ok := TraceByName("no-such-trace-xyz"); ok {
		t.Error("unknown name resolved")
	}
}

// TestExternalExperiment runs the EXTW table over manifest traces on
// the local pool: every registry prefetcher gets a row and the runs
// complete against the file-backed sources.
func TestExternalExperiment(t *testing.T) {
	specs := externalManifest(t, 3_000)
	r := NewRunner(extScale()).WithSpecs(specs)
	tbl := External(r)
	if tbl.ID != "EXTW" {
		t.Errorf("table ID %q", tbl.ID)
	}
	want := len(EvalNames()) + len(RelatedNames())
	if len(tbl.Rows) != want {
		t.Fatalf("EXTW has %d rows, want %d", len(tbl.Rows), want)
	}
	for _, row := range tbl.Rows {
		if row[1] == "" || row[1] == "0.000" {
			t.Errorf("prefetcher %s: NIPC %q — external run produced no signal", row[0], row[1])
		}
	}
}

// TestExternalRemoteCanonicalIdentity is the distributed acceptance
// path: the same external-trace job set through (a) a serial
// store-backed local sweep and (b) an in-process coordinator + worker
// (the worker reconstructing sources from the wire TraceFile via
// BuildJobRun) must produce byte-identical canonical store dumps.
func TestExternalRemoteCanonicalIdentity(t *testing.T) {
	specs := externalManifest(t, 3_000)
	scale := extScale()
	cfg := scale.Config()

	runSerial := func() []byte {
		path := filepath.Join(t.TempDir(), "serial.jsonl")
		store, err := sweep.OpenStore(path, false)
		if err != nil {
			t.Fatal(err)
		}
		sw := sweep.New(context.Background(), sweep.Options{Workers: 1, Store: store})
		r := NewRunnerWith(scale, sw).WithSpecs(specs)
		r.Run(NamePMP, cfg)
		sw.Close()
		store.Close()
		var buf bytes.Buffer
		if err := sweep.WriteCanonical(&buf, path); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	runRemote := func() []byte {
		path := filepath.Join(t.TempDir(), "remote.jsonl")
		store, err := sweep.OpenStore(path, false)
		if err != nil {
			t.Fatal(err)
		}
		coord := remote.NewCoordinator(remote.CoordinatorOptions{
			Store:      store,
			LeaseMax:   4,
			DrainGrace: 50 * time.Millisecond,
		})
		srv := httptest.NewServer(coord.Handler())
		defer srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()

		workerDone := make(chan error, 1)
		go func() {
			workerDone <- remote.RunWorker(ctx, remote.WorkerOptions{
				Coordinator:     srv.URL,
				Name:            "ext-e2e",
				Parallel:        2,
				Build:           BuildJobRun,
				Poll:            10 * time.Millisecond,
				ExitWhenDrained: true,
			})
		}()

		cl := remote.NewClient(srv.URL)
		cl.Poll = 10 * time.Millisecond
		r := NewRunnerRemote(ctx, scale, cl).WithSpecs(specs)
		r.Run(NamePMP, cfg)
		if err := <-workerDone; err != nil && ctx.Err() == nil {
			t.Fatalf("worker: %v", err)
		}
		store.Close()
		var buf bytes.Buffer
		if err := sweep.WriteCanonical(&buf, path); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := runSerial()
	dist := runRemote()
	if !bytes.Equal(serial, dist) {
		t.Errorf("canonical dumps differ between serial and distributed external runs:\nserial:\n%s\ndistributed:\n%s",
			serial, dist)
	}
}

// TestBuildJobRunTraceFile checks the wire path in isolation: a job
// spec carrying only a TraceFile (no registry entry) reconstructs and
// runs.
func TestBuildJobRunTraceFile(t *testing.T) {
	dir := t.TempDir()
	tr := trace.Collect(trace.NewStream("wire-only", 9, 2_000, trace.DefaultStreamParams()), 0)
	path := filepath.Join(dir, "wire-only.pmpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	scale := extScale()
	cfg := scale.Config()
	exec, err := BuildJobRun(remote.JobSpec{
		ID:         "wire-test",
		Prefetcher: NamePMP,
		Trace:      "wire-only-unregistered",
		Run: runspec.RunSpec{
			Cores: []runspec.CoreSpec{{
				Trace:   runspec.TraceRef{Name: "wire-only-unregistered", File: path},
				Variant: RegistryVariant(NamePMP),
			}},
			Records: scale.Records,
			Config:  cfg,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := exec.Run(context.Background())
	if res.Instructions == 0 {
		t.Error("wire-file job simulated nothing")
	}

	// And an unknown trace with no file is still an error.
	if _, err := BuildJobRun(remote.JobSpec{Run: runspec.RunSpec{
		Cores:   []runspec.CoreSpec{{Trace: runspec.TraceRef{Name: "nope"}, Variant: RegistryVariant(NamePMP)}},
		Records: scale.Records,
		Config:  cfg,
	}}); err == nil {
		t.Error("unknown trace without a wire file should error")
	}
}
