package bench

import (
	"strings"
	"testing"

	"pmp/internal/trace"
)

// tinyScale keeps unit tests fast.
func tinyScale() Scale {
	return Scale{Traces: 4, Records: 20_000, Warmup: 10_000, Measure: 50_000}
}

func TestScalesAreOrdered(t *testing.T) {
	q, d, f := QuickScale(), DefaultScale(), FullScale()
	if !(q.Records < d.Records && d.Records < f.Records) {
		t.Error("record counts should grow quick < default < full")
	}
	if f.Traces != 125 {
		t.Errorf("full scale should use the whole suite, got %d", f.Traces)
	}
	if err := q.Config().Validate(); err != nil {
		t.Errorf("quick config invalid: %v", err)
	}
}

func TestNewPrefetcherKnowsAllNames(t *testing.T) {
	names := append([]string{NameNone, NameNextline, NameStride, NamePMPLimit}, EvalNames()...)
	for _, n := range names {
		pf := NewPrefetcher(n)
		if pf == nil {
			t.Fatalf("nil prefetcher for %q", n)
		}
		if n != NamePMPLimit && pf.Name() != n {
			t.Errorf("NewPrefetcher(%q).Name() = %q", n, pf.Name())
		}
	}
}

func TestNewPrefetcherUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown name accepted")
		}
	}()
	NewPrefetcher("bogus")
}

func TestRunnerBaselineCached(t *testing.T) {
	r := NewRunner(tinyScale())
	cfg := r.Scale.Config()
	b1 := r.Baseline(cfg)
	b2 := r.Baseline(cfg)
	if &b1[0] != &b2[0] {
		t.Error("baseline should be cached per configuration")
	}
	// A different configuration gets its own baseline.
	b3 := r.Baseline(cfg.WithBandwidth(800))
	if &b1[0] == &b3[0] {
		t.Error("different config should not share the baseline")
	}
}

func TestSuiteResultMetrics(t *testing.T) {
	r := NewRunner(tinyScale())
	cfg := r.Scale.Config()
	res := r.Run(NamePMP, cfg)
	if len(res.Results) != len(r.Specs()) {
		t.Fatalf("%d results for %d specs", len(res.Results), len(r.Specs()))
	}
	nipc := res.NIPC()
	if nipc <= 0.3 || nipc > 5 {
		t.Errorf("NIPC = %v, implausible", nipc)
	}
	if res.NMT() <= 0 {
		t.Error("NMT should be positive")
	}
	fams := res.NIPCByFamily()
	if len(fams) == 0 {
		t.Error("family breakdown empty")
	}
	for fam, v := range fams {
		if v <= 0 {
			t.Errorf("family %s NIPC = %v", fam, v)
		}
	}
}

func TestNopSuiteIsUnity(t *testing.T) {
	r := NewRunner(tinyScale())
	cfg := r.Scale.Config()
	res := r.Run(NameNone, cfg)
	if nipc := res.NIPC(); nipc < 0.999 || nipc > 1.001 {
		t.Errorf("baseline vs itself NIPC = %v, want 1", nipc)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "a note")
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestStorageExperiment(t *testing.T) {
	tb := Storage()
	s := tb.String()
	for _, want := range []string{"PMP total", "bingo", "pythia", "dspatch", "spp-ppf"} {
		if !strings.Contains(s, want) {
			t.Errorf("storage table missing %q", want)
		}
	}
	// The headline claims: Bingo ~30x PMP, Pythia ~6x PMP.
	pmp := float64(NewPrefetcher(NamePMP).StorageBits())
	bingo := float64(NewPrefetcher(NameBingo).StorageBits())
	pythia := float64(NewPrefetcher(NamePythia).StorageBits())
	if r := bingo / pmp; r < 20 || r > 40 {
		t.Errorf("Bingo/PMP storage ratio = %.1f, want ~30", r)
	}
	if r := pythia / pmp; r < 4 || r > 9 {
		t.Errorf("Pythia/PMP storage ratio = %.1f, want ~6", r)
	}
}

func TestTableIExperiment(t *testing.T) {
	tb := TableI(tinyScale())
	if len(tb.Rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5 features", len(tb.Rows))
	}
}

func TestFig2Experiment(t *testing.T) {
	tb := Fig2(tinyScale())
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig 2 has %d rows", len(tb.Rows))
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	scale := QuickScale()
	r := NewRunner(scale)
	cfg := scale.Config()
	nipc := map[string]float64{}
	for _, name := range EvalNames() {
		nipc[name] = r.Run(name, cfg).NIPC()
	}
	// The reproduced headline shape: every prefetcher helps on average,
	// DSPatch is clearly last among the five, and PMP lands in the top
	// group (within a few percent of the best).
	best := 0.0
	for _, v := range nipc {
		if v > best {
			best = v
		}
	}
	for name, v := range nipc {
		if v < 0.9 {
			t.Errorf("%s NIPC = %.3f, should not lose 10%% on the suite", name, v)
		}
	}
	// The 5-trace quick subset is noisy; PMP must stay within ~10% of
	// the best (the default-scale gap is ~1.5%, see EXPERIMENTS.md).
	if nipc[NamePMP] < best*0.90 {
		t.Errorf("PMP NIPC %.3f too far from best %.3f", nipc[NamePMP], best)
	}
	if nipc[NameDSPatch] >= nipc[NamePMP] {
		t.Errorf("DSPatch (%.3f) should trail PMP (%.3f)", nipc[NameDSPatch], nipc[NamePMP])
	}
	if nipc[NamePMP] < 1.1 {
		t.Errorf("PMP NIPC = %.3f, want a solid gain over no prefetching", nipc[NamePMP])
	}
}

func TestFig13Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("multicore experiment")
	}
	scale := Scale{Traces: 4, Records: 30_000, Warmup: 10_000, Measure: 40_000}
	tb := Fig13(NewRunner(scale))
	if len(tb.Rows) != len(EvalNames())+1 { // + PMP-Limit
		t.Fatalf("Fig 13 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if len(row) != 4 {
			t.Fatalf("row %v malformed", row)
		}
	}
}

func TestLevelStatsComputesCoverage(t *testing.T) {
	r := NewRunner(tinyScale())
	cfg := r.Scale.Config()
	res := r.Run(NamePMP, cfg)
	cov, acc := levelStats(res)
	// PMP must reduce misses somewhere and have sane accuracies.
	if cov[1] <= 0 && cov[2] <= 0 && cov[3] <= 0 {
		t.Errorf("no positive coverage at any level: %v", cov)
	}
	for l := 1; l <= 3; l++ {
		if acc[l] < 0 || acc[l] > 1 {
			t.Errorf("accuracy[%d] = %v out of range", l, acc[l])
		}
	}
}

func TestRepresentativeSubsetUsed(t *testing.T) {
	r := NewRunner(tinyScale())
	if len(r.Specs()) == 0 || len(r.Specs()) > 125 {
		t.Fatalf("specs = %d", len(r.Specs()))
	}
	fams := map[trace.Family]bool{}
	for _, sp := range r.Specs() {
		fams[sp.Family] = true
	}
	if len(fams) < 3 {
		t.Errorf("subset covers only %d families", len(fams))
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	tb := Ablations(NewRunner(tinyScale()))
	if len(tb.Rows) != 5 {
		t.Fatalf("ablations rows = %d", len(tb.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tb.AddRow("1", "va,l")
	tb.Notes = append(tb.Notes, "note")
	got := tb.CSV()
	want := "a,b\n1,\"va,l\"\n# note\n"
	if got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}

// TestSuiteMPKIClasses sanity-checks the Table VII classification: the
// High class must actually miss more than the Low class on average.
func TestSuiteMPKIClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple simulations")
	}
	scale := tinyScale()
	cfg := scale.Config()
	byClass := trace.ByClass(trace.Suite())
	mean := func(specs []trace.Spec) float64 {
		var sum float64
		n := min(3, len(specs))
		for _, sp := range specs[:n] {
			sum += RunOne(sp, NewPrefetcher(NameNone), scale, cfg).MPKI()
		}
		return sum / float64(n)
	}
	low, high := mean(byClass[trace.LowMPKI]), mean(byClass[trace.HighMPKI])
	if high <= low {
		t.Errorf("High class MPKI (%.1f) should exceed Low class (%.1f)", high, low)
	}
}

// The sweep runners must produce complete tables at tiny scale; one
// compact test covers their row shape.
func TestSweepRunnersProduceRows(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple simulations")
	}
	r := NewRunner(tinyScale())
	cases := []struct {
		name string
		tb   *Table
		rows int
	}{
		{"TableVIII", TableVIII(r), 5},
		{"Extraction", Extraction(r), 3},
		{"MultiFeature", MultiFeature(r), 4},
		{"TableIX", TableIX(r), 3},
		{"TableXI", TableXI(r), 4},
		{"Thresholds", Thresholds(r), 6},
		{"Related", Related(r), 11},
		{"Placement", Placement(r), 2},
	}
	for _, c := range cases {
		if len(c.tb.Rows) != c.rows {
			t.Errorf("%s rows = %d, want %d", c.name, len(c.tb.Rows), c.rows)
		}
		for _, row := range c.tb.Rows {
			if len(row) != len(c.tb.Header) {
				t.Errorf("%s row %v does not match header %v", c.name, row, c.tb.Header)
			}
		}
	}
}

// TestBandwidthMonotonicity guards the Fig 12a shape at a coarse
// level: PMP's NIPC at high bandwidth must exceed its NIPC at 800
// MT/s, where its aggressive traffic is penalized.
func TestBandwidthMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple simulations")
	}
	r := NewRunner(tinyScale())
	low := r.Run(NamePMP, r.Scale.Config().WithBandwidth(800)).NIPC()
	high := r.Run(NamePMP, r.Scale.Config().WithBandwidth(6400)).NIPC()
	if high <= low {
		t.Errorf("PMP NIPC at 6400 MT/s (%.3f) should exceed 800 MT/s (%.3f)", high, low)
	}
}

func TestTryNewPrefetcher(t *testing.T) {
	for _, name := range Names() {
		if _, err := TryNewPrefetcher(name); err != nil {
			t.Errorf("TryNewPrefetcher(%q) = %v", name, err)
		}
	}
	if _, err := TryNewPrefetcher("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}
