package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmp/internal/sim"
	"pmp/internal/trace"
)

// PerfResult measures simulator throughput for one prefetcher: how
// fast the host executes the simulation, as opposed to how well the
// simulated machine performs. The two headline numbers are simulated
// demand accesses per wall-clock second and heap allocations per
// access; the zero-allocation hot path keeps the latter at ~0 in
// steady state (construction of the system and tables is the only
// remaining source).
type PerfResult struct {
	Prefetcher      string  `json:"prefetcher"`
	Traces          int     `json:"traces"`
	Accesses        uint64  `json:"accesses"` // measured demand accesses summed over traces
	Seconds         float64 `json:"seconds"`
	AccessesPerSec  float64 `json:"accesses_per_sec"`
	Mallocs         uint64  `json:"mallocs"`
	AllocsPerAccess float64 `json:"allocs_per_access"`
}

// PerfReport is the serialized output of RunPerf: the regression
// baseline committed as BENCH_default.json and the artifact the CI
// benchmark job regenerates for comparison.
type PerfReport struct {
	Scale   string       `json:"scale"`   // "quick", "default" or "full"
	Records int          `json:"records"` // trace records generated per trace
	Notes   []string     `json:"notes,omitempty"`
	Results []PerfResult `json:"results"`
}

// scaleName maps a Scale back to its registry name for the report.
func scaleName(s Scale) string {
	switch s {
	case QuickScale():
		return "quick"
	case DefaultScale():
		return "default"
	case FullScale():
		return "full"
	default:
		return "custom"
	}
}

// RunPerf measures simulator throughput for each named prefetcher over
// the scale's trace subset. Runs are strictly serial — one simulation
// at a time on one goroutine — so accesses/sec is comparable across
// machines with different core counts, and mallocs attribute cleanly.
//
// Every trace is materialized up front, outside the timed regions, so
// the numbers measure the simulator alone: trace generation is a
// per-suite fixed cost (and for real workloads happens offline in
// `pmptrace convert`), and charging it to the first prefetcher in the
// lineup would skew cross-prefetcher comparison and hide simulator
// regressions behind generator changes.
func RunPerf(scale Scale, names []string) PerfReport {
	cfg := scale.Config()
	specs := scale.Specs()
	traces := make([]*trace.Trace, len(specs))
	for i, spec := range specs {
		traces[i] = trace.Collect(spec.New(scale.Records), 0)
	}
	report := PerfReport{Scale: scaleName(scale), Records: scale.Records,
		Notes: []string{"traces pre-materialized; timed region is the simulator only"}}
	for _, name := range names {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		var accesses uint64
		for _, tr := range traces {
			tr.Reset()
			res := sim.NewSystem(cfg, NewPrefetcher(name)).Run(tr)
			accesses += res.L1D.DemandAccesses
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		mallocs := m1.Mallocs - m0.Mallocs
		r := PerfResult{
			Prefetcher: name,
			Traces:     len(specs),
			Accesses:   accesses,
			Seconds:    elapsed.Seconds(),
			Mallocs:    mallocs,
		}
		if accesses > 0 {
			r.AccessesPerSec = float64(accesses) / elapsed.Seconds()
			r.AllocsPerAccess = float64(mallocs) / float64(accesses)
		}
		report.Results = append(report.Results, r)
	}
	return report
}

// WritePerf serializes the report as indented JSON.
func WritePerf(path string, report PerfReport) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerf loads a report written by WritePerf.
func ReadPerf(path string) (PerfReport, error) {
	var report PerfReport
	data, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return report, fmt.Errorf("%s: %w", path, err)
	}
	return report, nil
}

// allocSlack absorbs run-to-run noise in allocs/access: one-time
// construction cost (tables, caches, trace generators) is amortized
// over the access count, so tiny fluctuations from GC timing are not
// regressions. Real hot-path allocations show up as O(1) per access,
// far above this threshold.
const allocSlack = 0.05

// ComparePerf checks a fresh report against a baseline and returns a
// human-readable list of regressions: throughput down by more than
// tolerance (fraction, e.g. 0.10), or allocs/access up by more than
// the noise floor. Prefetchers present in only one report are skipped
// — the comparison gates changes, not lineup membership. An empty
// slice means no regression.
func ComparePerf(baseline, current PerfReport, tolerance float64) []string {
	base := map[string]PerfResult{}
	for _, r := range baseline.Results {
		base[r.Prefetcher] = r
	}
	var regressions []string
	for _, cur := range current.Results {
		b, ok := base[cur.Prefetcher]
		if !ok || b.AccessesPerSec <= 0 {
			continue
		}
		if ratio := cur.AccessesPerSec / b.AccessesPerSec; ratio < 1-tolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s: throughput %.0f accesses/sec, down %.1f%% from baseline %.0f (tolerance %.0f%%)",
				cur.Prefetcher, cur.AccessesPerSec, 100*(1-ratio), b.AccessesPerSec, 100*tolerance))
		}
		if cur.AllocsPerAccess > b.AllocsPerAccess+allocSlack {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.2f allocs/access, up from baseline %.2f",
				cur.Prefetcher, cur.AllocsPerAccess, b.AllocsPerAccess))
		}
	}
	return regressions
}

// Perf renders a report as a Table for human consumption.
func Perf(report PerfReport) *Table {
	t := &Table{
		ID:     "PERF",
		Title:  fmt.Sprintf("simulator throughput (%s scale, serial)", report.Scale),
		Header: []string{"prefetcher", "traces", "accesses", "sec", "acc/sec", "allocs/acc"},
	}
	for _, r := range report.Results {
		t.AddRow(r.Prefetcher, fmt.Sprint(r.Traces), fmt.Sprint(r.Accesses),
			fmt.Sprintf("%.2f", r.Seconds), fmt.Sprintf("%.0f", r.AccessesPerSec),
			fmt.Sprintf("%.2f", r.AllocsPerAccess))
	}
	t.Notes = append(t.Notes, report.Notes...)
	return t
}
