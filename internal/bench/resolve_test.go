package bench

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pmp/internal/prefetch"
	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
)

// resolveScale is deliberately tiny: these tests compare constructions
// for equality, not performance.
var resolveScale = Scale{Traces: 1, Records: 12_000, Warmup: 3_000, Measure: 30_000}

// sim.Config must survive the wire: a JSON round-trip preserves the
// fingerprint that keys job identity, or remote job IDs would never
// match local ones.
func TestConfigFingerprintSurvivesJSON(t *testing.T) {
	cfg := QuickScale().Config()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back sim.Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Fingerprint(), cfg.Fingerprint(); got != want {
		t.Errorf("fingerprint changed across JSON round-trip:\nbefore %s\nafter  %s", want, got)
	}
}

// singleSpec is the one-core run spec the suite path submits.
func singleSpec(traceName string, v VariantSpec, placements []runspec.Placement, cfg sim.Config) runspec.RunSpec {
	return runspec.RunSpec{
		Cores:      []runspec.CoreSpec{{Trace: runspec.TraceRef{Name: traceName}, Variant: v}},
		Placements: placements,
		Records:    resolveScale.Records,
		Config:     cfg,
	}
}

// BuildRun must reproduce the legacy serial path byte-for-byte: a plain
// single-core run equals sim.NewSystem, and an LLC placement equals the
// old AttachLLCPrefetcher attach point.
func TestBuildRunMatchesLocal(t *testing.T) {
	cfg := resolveScale.Config()
	sp := resolveScale.Specs()[0]

	for _, tc := range []struct {
		name  string
		spec  runspec.RunSpec
		local func() sim.Result
	}{
		{"core", singleSpec(sp.Name, RegistryVariant(NamePMP), nil, cfg), func() sim.Result {
			return sim.NewSystem(cfg, NewPrefetcher(NamePMP)).Run(sp.New(resolveScale.Records))
		}},
		{"llc-placement", singleSpec(sp.Name, RegistryVariant(NameNone),
			[]runspec.Placement{{Level: 2, Variant: RegistryVariant(NamePMP)}}, cfg), func() sim.Result {
			sys := sim.NewSystem(cfg, prefetch.Nop{})
			sys.AttachLLCPrefetcher(NewPrefetcher(NamePMP))
			return sys.Run(sp.New(resolveScale.Records))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			exec, err := BuildRun(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			got, want := exec.Run(context.Background()), tc.local()
			if !reflect.DeepEqual(got, want) {
				t.Errorf("spec build differs from legacy construction:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// Structural and resolution errors must surface at build time, before
// any simulation: that is what lets a worker quarantine a stale or
// malformed job instead of crashing mid-run.
func TestBuildRunRejects(t *testing.T) {
	cfg := resolveScale.Config()
	sp := resolveScale.Specs()[0]
	cases := map[string]runspec.RunSpec{
		"unknown trace":    singleSpec("no-such-trace", RegistryVariant(NamePMP), nil, cfg),
		"unknown registry": singleSpec(sp.Name, RegistryVariant("frobnicate"), nil, cfg),
		"placement depth": singleSpec(sp.Name, RegistryVariant(NamePMP),
			[]runspec.Placement{{Level: 3, Variant: RegistryVariant(NameBingo)}}, cfg),
		"no construction": singleSpec(sp.Name, VariantSpec{Name: "empty"}, nil, cfg),
		"no cores":        {Records: 1000, Config: cfg},
	}
	for name, rs := range cases {
		if _, err := BuildRun(rs); err == nil {
			t.Errorf("%s: BuildRun accepted %+v", name, rs)
		}
	}
}

// A remote runner against a real coordinator and worker produces the
// same results as the local sweep path — the full client → wire →
// build → simulate loop at tiny scale, with bearer-token auth on.
func TestRunnerRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a coordinator, a worker, and real simulations")
	}
	const token = "remote-test-secret"
	scale := Scale{Traces: 2, Records: 12_000, Warmup: 3_000, Measure: 30_000}
	cfg := scale.Config()

	want := NewRunner(scale).Run(NamePMP, cfg)

	store, err := sweep.OpenStore(filepath.Join(t.TempDir(), "store.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := remote.NewCoordinator(remote.CoordinatorOptions{Store: store, AuthToken: token})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The shared secret gates every endpoint: no header, no service.
	resp, err := http.Post(srv.URL+"/status", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /status = %d, want %d", resp.StatusCode, http.StatusUnauthorized)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = remote.RunWorker(wctx, remote.WorkerOptions{
			Coordinator: srv.URL,
			Name:        "test",
			Parallel:    2,
			Build:       BuildJobRun,
			Token:       token,
			Poll:        10 * time.Millisecond,
		})
	}()

	rc := remote.NewClient(srv.URL)
	rc.Poll = 10 * time.Millisecond
	rc.Token = token
	r := NewRunnerRemote(ctx, scale, rc)
	got := r.Run(NamePMP, cfg)

	stopWorker()
	<-workerDone
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Errorf("remote run differs from local:\ngot  %+v\nwant %+v", got.Results, want.Results)
	}
	if !reflect.DeepEqual(got.Baseline, want.Baseline) {
		t.Errorf("remote baseline differs from local:\ngot  %+v\nwant %+v", got.Baseline, want.Baseline)
	}
}
