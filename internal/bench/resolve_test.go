package bench

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/sweep"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// resolveScale is deliberately tiny: these tests compare constructions
// for equality, not performance.
var resolveScale = Scale{Traces: 1, Records: 12_000, Warmup: 3_000, Measure: 30_000}

// runVariant simulates one trace with the given constructor.
func runVariant(mk func() prefetch.Prefetcher) sim.Result {
	cfg := resolveScale.Config()
	sp := resolveScale.Specs()[0]
	return sim.NewSystem(cfg, mk()).Run(sp.New(resolveScale.Records))
}

// Every variant name an experiment can put on the wire must resolve to
// the exact construction the experiment's closure uses: same config
// mutation, same simulated behaviour. This pins ResolveVariant against
// the closures in experiments.go — a renamed variant or a dropped
// config field fails here, not as a silently wrong distributed run.
func TestResolveVariantCoversExperiments(t *testing.T) {
	cases := []struct {
		name string
		want func() prefetch.Prefetcher
	}{
		// TableVIII
		{"designb-32w", func() prefetch.Prefetcher {
			c := core.DefaultDesignBConfig()
			c.Ways = 32
			return core.NewDesignB(c)
		}},
		// Extraction schemes
		{"pmp-" + core.ANE.String(), func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.Scheme = core.ANE
			return core.New(c)
		}},
		// MultiFeature modes
		{"pmp-" + core.OPTOnly.String(), func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.Feature = core.OPTOnly
			return core.New(c)
		}},
		// Table IX pattern length
		{"pmp-32", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.RegionBytes = 2048
			return core.New(c)
		}},
		// Table X trigger width / counter size
		{"pmp-tw8", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.TriggerBits = 8
			return core.New(c)
		}},
		{"pmp-cs4", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.OPTCounterBits = 4
			return core.New(c)
		}},
		// Table XI monitoring range
		{"pmp-mr4", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.MonitoringRange = 4
			return core.New(c)
		}},
		// Thresholds sweep (%g-formatted floats)
		{"pmp-0.75-0.15", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.TL1D, c.TL2C = 0.75, 0.15
			return core.New(c)
		}},
		// Ablations (literal names)
		{"no halving + no resume", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.NoHalving = true
			c.NoResume = true
			return core.New(c)
		}},
		{"cross-region projection", func() prefetch.Prefetcher {
			c := core.DefaultConfig()
			c.CrossRegion = true
			return core.New(c)
		}},
		// Registry names pass through
		{NamePMP, func() prefetch.Prefetcher { return NewPrefetcher(NamePMP) }},
		{NameBingo, func() prefetch.Prefetcher { return NewPrefetcher(NameBingo) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mk, err := ResolveVariant(tc.name)
			if err != nil {
				t.Fatal(err)
			}
			got, want := runVariant(mk), runVariant(tc.want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("ResolveVariant(%q) simulates differently from the experiment closure:\ngot  %+v\nwant %+v",
					tc.name, got, want)
			}
		})
	}
}

// Every registry name and ablation literal resolves without error.
func TestResolveVariantAcceptsAllNames(t *testing.T) {
	names := append(Names(),
		"pmp (default)", "no halving (frozen counters)", "no PB resume",
		"bingo@llc", "designb-8w", "designb-512w",
		"pmp-"+core.AFE.String(), "pmp-"+core.ARE.String(),
		"pmp-"+core.DualTables.String(), "pmp-"+core.Combined.String(),
		"pmp-"+core.PPTOnly.String(),
		"pmp-tw6", "pmp-tw12", "pmp-cs2", "pmp-cs8", "pmp-mr1", "pmp-mr8",
		"pmp-16", "pmp-64", "pmp-0.5-0.05", "pmp-0.25-0.15",
	)
	for _, name := range names {
		if _, err := ResolveVariant(name); err != nil {
			t.Errorf("ResolveVariant(%q): %v", name, err)
		}
	}
}

// Unknown names must error (quarantine on a stale worker), never fall
// back to some other design.
func TestResolveVariantRejectsUnknown(t *testing.T) {
	for _, name := range []string{
		"", "frobnicate", "pmp-", "pmp-xyz", "pmp-tw", "pmp-1.0-zz",
		"designb-w", "designb-32", "bingo@l2",
	} {
		if _, err := ResolveVariant(name); err == nil {
			t.Errorf("ResolveVariant(%q) resolved; want error", name)
		}
	}
}

// sim.Config must survive the wire: a JSON round-trip preserves the
// fingerprint that keys job identity, or remote job IDs would never
// match local ones.
func TestConfigFingerprintSurvivesJSON(t *testing.T) {
	cfg := QuickScale().Config()
	b, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back sim.Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Fingerprint(), cfg.Fingerprint(); got != want {
		t.Errorf("fingerprint changed across JSON round-trip:\nbefore %s\nafter  %s", want, got)
	}
}

// BuildJobRun must reproduce the serial path byte-for-byte, at both
// attach points.
func TestBuildJobRunMatchesLocal(t *testing.T) {
	cfg := resolveScale.Config()
	sp := resolveScale.Specs()[0]

	for _, tc := range []struct {
		attach string
		local  func() sim.Result
	}{
		{"", func() sim.Result {
			return sim.NewSystem(cfg, NewPrefetcher(NamePMP)).Run(sp.New(resolveScale.Records))
		}},
		{"llc", func() sim.Result {
			sys := sim.NewSystem(cfg, prefetch.Nop{})
			sys.AttachLLCPrefetcher(NewPrefetcher(NamePMP))
			return sys.Run(sp.New(resolveScale.Records))
		}},
	} {
		run, err := BuildJobRun(remote.JobSpec{
			ID: "t", Label: NamePMP + "/" + sp.Name,
			Prefetcher: NamePMP, Trace: sp.Name,
			Records: resolveScale.Records, Attach: tc.attach, Config: cfg,
		})
		if err != nil {
			t.Fatalf("attach %q: %v", tc.attach, err)
		}
		got, want := run(context.Background()), tc.local()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("attach %q: remote build differs from local run:\ngot  %+v\nwant %+v", tc.attach, got, want)
		}
	}

	if _, err := BuildJobRun(remote.JobSpec{Prefetcher: NamePMP, Trace: "no-such-trace"}); err == nil {
		t.Error("BuildJobRun accepted an unknown trace")
	}
	if _, err := BuildJobRun(remote.JobSpec{Prefetcher: NamePMP, Trace: sp.Name, Attach: "l2"}); err == nil {
		t.Error("BuildJobRun accepted an unknown attach point")
	}
}

// A remote runner against a real coordinator and worker produces the
// same results as the local sweep path — the full client → wire →
// resolve → simulate loop at tiny scale.
func TestRunnerRemoteMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a coordinator, a worker, and real simulations")
	}
	scale := Scale{Traces: 2, Records: 12_000, Warmup: 3_000, Measure: 30_000}
	cfg := scale.Config()

	local := NewRunner(scale)
	want := local.runJobsAt(NamePMP, "", cfg, func(sp trace.Spec) sim.Result {
		return sim.NewSystem(cfg, NewPrefetcher(NamePMP)).Run(sp.New(scale.Records))
	})

	store, err := sweep.OpenStore(filepath.Join(t.TempDir(), "store.jsonl"), false)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	coord := remote.NewCoordinator(remote.CoordinatorOptions{Store: store})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		_ = remote.RunWorker(wctx, remote.WorkerOptions{
			Coordinator: srv.URL,
			Name:        "test",
			Parallel:    2,
			Build:       BuildJobRun,
			Poll:        10 * time.Millisecond,
		})
	}()

	rc := remote.NewClient(srv.URL)
	rc.Poll = 10 * time.Millisecond
	r := NewRunnerRemote(ctx, scale, rc)
	got := r.runJobsAt(NamePMP, "", cfg, nil)

	stopWorker()
	<-workerDone
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote run differs from local:\ngot  %+v\nwant %+v", got, want)
	}
}
