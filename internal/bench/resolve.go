package bench

import (
	"sync"

	"pmp/internal/trace"
)

// suiteByName indexes the full trace suite by spec name, built once.
var (
	suiteOnce  sync.Once
	suiteIndex map[string]trace.Spec
)

// TraceByName resolves a trace spec by name: the synthetic suite
// first, then any external traces registered via RegisterExternal.
func TraceByName(name string) (trace.Spec, bool) {
	if sp, ok := suiteTrace(name); ok {
		return sp, true
	}
	return externalTrace(name)
}

// suiteTrace resolves a synthetic suite spec by name.
func suiteTrace(name string) (trace.Spec, bool) {
	suiteOnce.Do(func() {
		suiteIndex = map[string]trace.Spec{}
		for _, sp := range trace.Suite() {
			suiteIndex[sp.Name] = sp
		}
	})
	sp, ok := suiteIndex[name]
	return sp, ok
}
