package bench

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sim"
	"pmp/internal/sweep/remote"
	"pmp/internal/trace"
)

// The experiment variant grammar. Every sweep job's prefetcher name
// must round-trip through ResolveVariant so a remote worker can
// reconstruct the exact construction the submitting experiment used;
// TestResolveVariantCoversExperiments pins the mapping against the
// closures in experiments.go.

// ablationVariants are the literal ablation names from Ablations.
var ablationVariants = map[string]func(*core.Config){
	"pmp (default)":                 func(*core.Config) {},
	"no halving (frozen counters)":  func(c *core.Config) { c.NoHalving = true },
	"no PB resume":                  func(c *core.Config) { c.NoResume = true },
	"no halving + no resume":        func(c *core.Config) { c.NoHalving = true; c.NoResume = true },
	"cross-region projection":       func(c *core.Config) { c.CrossRegion = true },
}

// schemeVariants maps the Extraction experiment's scheme suffixes.
var schemeVariants = map[string]core.Scheme{
	core.AFE.String(): core.AFE,
	core.ANE.String(): core.ANE,
	core.ARE.String(): core.ARE,
}

// featureVariants maps the MultiFeature experiment's mode suffixes.
var featureVariants = map[string]core.FeatureMode{
	core.DualTables.String(): core.DualTables,
	core.Combined.String():   core.Combined,
	core.OPTOnly.String():    core.OPTOnly,
	core.PPTOnly.String():    core.PPTOnly,
}

// pmpWith builds a PMP constructor over a mutated default config.
func pmpWith(mut func(*core.Config)) func() prefetch.Prefetcher {
	return func() prefetch.Prefetcher {
		c := core.DefaultConfig()
		mut(&c)
		return core.New(c)
	}
}

// ResolveVariant maps any sweep job prefetcher name — a registry name
// or an experiment variant such as "designb-32w", "pmp-tw8" or
// "pmp-0.5-0.15" — to its constructor. Unknown names are an error,
// so a worker on a stale binary quarantines the job instead of
// silently simulating the wrong design.
func ResolveVariant(name string) (func() prefetch.Prefetcher, error) {
	for _, known := range Names() {
		if name == known {
			n := name
			return func() prefetch.Prefetcher { return NewPrefetcher(n) }, nil
		}
	}
	if mut, ok := ablationVariants[name]; ok {
		return pmpWith(mut), nil
	}
	if name == "bingo@llc" {
		return func() prefetch.Prefetcher { return bingoNew(bingoOriginalConfig()) }, nil
	}
	if rest, ok := strings.CutPrefix(name, "designb-"); ok {
		ws, ok := strings.CutSuffix(rest, "w")
		ways, err := strconv.Atoi(ws)
		if !ok || err != nil {
			return nil, fmt.Errorf("bench: bad designb variant %q", name)
		}
		return func() prefetch.Prefetcher {
			c := core.DefaultDesignBConfig()
			c.Ways = ways
			return core.NewDesignB(c)
		}, nil
	}
	rest, ok := strings.CutPrefix(name, "pmp-")
	if !ok {
		return nil, fmt.Errorf("bench: unknown prefetcher variant %q", name)
	}
	if sc, ok := schemeVariants[rest]; ok {
		return pmpWith(func(c *core.Config) { c.Scheme = sc }), nil
	}
	if fm, ok := featureVariants[rest]; ok {
		return pmpWith(func(c *core.Config) { c.Feature = fm }), nil
	}
	for _, p := range []struct {
		prefix string
		set    func(*core.Config, int)
	}{
		{"tw", func(c *core.Config, v int) { c.TriggerBits = v }},
		{"cs", func(c *core.Config, v int) { c.OPTCounterBits = v }},
		{"mr", func(c *core.Config, v int) { c.MonitoringRange = v }},
	} {
		if ns, ok := strings.CutPrefix(rest, p.prefix); ok {
			if v, err := strconv.Atoi(ns); err == nil {
				set := p.set
				return pmpWith(func(c *core.Config) { set(c, v) }), nil
			}
		}
	}
	// "pmp-<l1>-<l2>": the Thresholds sweep ("%g" formatted floats).
	if l1s, l2s, ok := strings.Cut(rest, "-"); ok {
		l1, err1 := strconv.ParseFloat(l1s, 64)
		l2, err2 := strconv.ParseFloat(l2s, 64)
		if err1 == nil && err2 == nil {
			return pmpWith(func(c *core.Config) { c.TL1D, c.TL2C = l1, l2 }), nil
		}
		return nil, fmt.Errorf("bench: unknown pmp variant %q", name)
	}
	// "pmp-<N>": the Table IX pattern-length sweep (region = N lines).
	if lines, err := strconv.Atoi(rest); err == nil {
		return pmpWith(func(c *core.Config) { c.RegionBytes = lines * mem.LineBytes }), nil
	}
	return nil, fmt.Errorf("bench: unknown pmp variant %q", name)
}

// suiteByName indexes the full trace suite by spec name, built once.
var (
	suiteOnce  sync.Once
	suiteIndex map[string]trace.Spec
)

// TraceByName resolves a trace spec by name: the synthetic suite
// first, then any external traces registered via RegisterExternal.
func TraceByName(name string) (trace.Spec, bool) {
	if sp, ok := suiteTrace(name); ok {
		return sp, true
	}
	return externalTrace(name)
}

// suiteTrace resolves a synthetic suite spec by name.
func suiteTrace(name string) (trace.Spec, bool) {
	suiteOnce.Do(func() {
		suiteIndex = map[string]trace.Spec{}
		for _, sp := range trace.Suite() {
			suiteIndex[sp.Name] = sp
		}
	})
	sp, ok := suiteIndex[name]
	return sp, ok
}

// BuildJobRun resolves a wire job spec into its execution closure —
// the function a remote worker hands to its local sweep pool. It is
// the inverse of the spec construction in Runner.runJobs: same trace
// generator, same prefetcher construction, same config, so the worker
// produces the byte-identical sim.Result a serial run would.
func BuildJobRun(spec remote.JobSpec) (func(ctx context.Context) sim.Result, error) {
	var sp trace.Spec
	if spec.TraceFile != "" {
		// External trace: the wire spec carries the .pmpt path, so the
		// worker needs no manifest. The name still keys job identity, so
		// it must match what the submitter registered.
		sp = trace.FileSpec(trace.ExternalSpec{Name: spec.Trace, Path: spec.TraceFile})
	} else {
		var ok bool
		sp, ok = TraceByName(spec.Trace)
		if !ok {
			return nil, fmt.Errorf("bench: unknown trace spec %q", spec.Trace)
		}
	}
	mk, err := ResolveVariant(spec.Prefetcher)
	if err != nil {
		return nil, err
	}
	cfg := spec.Config
	records := spec.Records
	switch spec.Attach {
	case "":
		return func(context.Context) sim.Result {
			return sim.NewSystem(cfg, mk()).Run(sp.New(records))
		}, nil
	case "llc":
		return func(context.Context) sim.Result {
			sys := sim.NewSystem(cfg, prefetch.Nop{})
			sys.AttachLLCPrefetcher(mk())
			return sys.Run(sp.New(records))
		}, nil
	default:
		return nil, fmt.Errorf("bench: unknown attach point %q", spec.Attach)
	}
}
