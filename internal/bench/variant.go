package bench

import (
	"fmt"
	"strconv"
	"strings"

	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/runspec"
)

// VariantSpec is the declarative prefetcher-construction spec
// (re-exported from internal/runspec, the wire vocabulary): a registry
// name or a typed configuration for one of the parameterized families,
// under the grammar name that keys sweep job identity. Experiments
// build specs with the constructors below; ParseVariant maps a legacy
// grammar name back to the identical spec, so job IDs, stores and
// -resume files written before specs existed keep resolving.
type VariantSpec = runspec.VariantSpec

// RegistryVariant names a stock design from the fixed registry.
func RegistryVariant(name string) VariantSpec {
	return VariantSpec{Name: name, Registry: name}
}

// PMPVariant derives a PMP variant: the default configuration with mut
// applied, under the given grammar name.
func PMPVariant(name string, mut func(*core.Config)) VariantSpec {
	c := core.DefaultConfig()
	if mut != nil {
		mut(&c)
	}
	return VariantSpec{Name: name, PMP: &c}
}

// DesignBVariant is the paper's Design B (Table VIII) at the given
// pattern-table associativity.
func DesignBVariant(ways int) VariantSpec {
	c := core.DefaultDesignBConfig()
	c.Ways = ways
	return VariantSpec{Name: fmt.Sprintf("designb-%dw", ways), DesignB: &c}
}

// BingoLLCVariant is the original (non-doubled) DPC-3 Bingo — half the
// enhanced pattern table — that the paper places at the LLC in §V-B.
func BingoLLCVariant() VariantSpec {
	c := bingoOriginalConfig()
	return VariantSpec{Name: "bingo@llc", Bingo: &c}
}

// The experiment parameter spaces. The sweep tables in experiments.go
// and ExperimentVariants below iterate the same slices, so the grammar
// round-trip property test covers exactly the variants experiments
// submit.
var (
	designBWays      = []int{8, 32, 128, 512}
	pmpRegionBytes   = []int{4096, 2048, 1024}
	pmpTriggerBits   = []int{6, 7, 8, 9, 10, 11, 12}
	pmpCounterBits   = []int{2, 3, 4, 5, 6, 7, 8}
	pmpMonitorRanges = []int{1, 2, 4, 8}
	pmpThresholds    = [][2]float64{
		{0.25, 0.15}, {0.50, 0.15}, {0.75, 0.15},
		{0.50, 0.05}, {0.50, 0.30}, {0.75, 0.50},
	}
	pmpSchemes      = []core.Scheme{core.AFE, core.ANE, core.ARE}
	pmpFeatureModes = []core.FeatureMode{core.DualTables, core.Combined, core.OPTOnly, core.PPTOnly}
)

// pmpAblations is the ordered ablation lineup. The names are
// sweep-visible job identities, so they are part of the variant
// grammar.
var pmpAblations = []struct {
	Name string
	Mut  func(*core.Config)
}{
	{"pmp (default)", func(*core.Config) {}},
	{"no halving (frozen counters)", func(c *core.Config) { c.NoHalving = true }},
	{"no PB resume", func(c *core.Config) { c.NoResume = true }},
	{"no halving + no resume", func(c *core.Config) { c.NoHalving = true; c.NoResume = true }},
	{"cross-region projection", func(c *core.Config) { c.CrossRegion = true }},
}

func schemeVariant(sc core.Scheme) VariantSpec {
	return PMPVariant("pmp-"+sc.String(), func(c *core.Config) { c.Scheme = sc })
}

func featureVariant(fm core.FeatureMode) VariantSpec {
	return PMPVariant("pmp-"+fm.String(), func(c *core.Config) { c.Feature = fm })
}

func twVariant(bits int) VariantSpec {
	return PMPVariant(fmt.Sprintf("pmp-tw%d", bits), func(c *core.Config) { c.TriggerBits = bits })
}

func csVariant(bits int) VariantSpec {
	return PMPVariant(fmt.Sprintf("pmp-cs%d", bits), func(c *core.Config) { c.OPTCounterBits = bits })
}

func mrVariant(rng int) VariantSpec {
	return PMPVariant(fmt.Sprintf("pmp-mr%d", rng), func(c *core.Config) { c.MonitoringRange = rng })
}

func thresholdVariant(l1, l2 float64) VariantSpec {
	return PMPVariant(fmt.Sprintf("pmp-%g-%g", l1, l2), func(c *core.Config) { c.TL1D, c.TL2C = l1, l2 })
}

func regionVariant(regionBytes int) VariantSpec {
	return PMPVariant(fmt.Sprintf("pmp-%d", regionBytes/mem.LineBytes),
		func(c *core.Config) { c.RegionBytes = regionBytes })
}

// ParseVariant maps a legacy grammar name — a registry name or an
// experiment variant such as "designb-32w", "pmp-tw8" or
// "pmp-0.5-0.15" — to the typed spec the same-named constructor above
// builds. It exists only for surfaces that still speak names (CLI
// flags, old store records); new code constructs specs directly.
// Unknown names are an error, so a stale caller fails loudly instead
// of silently describing the wrong design.
func ParseVariant(name string) (VariantSpec, error) {
	for _, known := range Names() {
		if name == known {
			return RegistryVariant(name), nil
		}
	}
	for _, ab := range pmpAblations {
		if name == ab.Name {
			return PMPVariant(ab.Name, ab.Mut), nil
		}
	}
	if name == "bingo@llc" {
		return BingoLLCVariant(), nil
	}
	if rest, ok := strings.CutPrefix(name, "designb-"); ok {
		ws, ok := strings.CutSuffix(rest, "w")
		ways, err := strconv.Atoi(ws)
		if !ok || err != nil {
			return VariantSpec{}, fmt.Errorf("bench: bad designb variant %q", name)
		}
		return DesignBVariant(ways), nil
	}
	rest, ok := strings.CutPrefix(name, "pmp-")
	if !ok {
		return VariantSpec{}, fmt.Errorf("bench: unknown prefetcher variant %q", name)
	}
	for _, sc := range pmpSchemes {
		if rest == sc.String() {
			return schemeVariant(sc), nil
		}
	}
	for _, fm := range pmpFeatureModes {
		if rest == fm.String() {
			return featureVariant(fm), nil
		}
	}
	for _, p := range []struct {
		prefix string
		mk     func(int) VariantSpec
	}{
		{"tw", twVariant},
		{"cs", csVariant},
		{"mr", mrVariant},
	} {
		if ns, ok := strings.CutPrefix(rest, p.prefix); ok {
			if v, err := strconv.Atoi(ns); err == nil {
				return p.mk(v), nil
			}
		}
	}
	// "pmp-<l1>-<l2>": the Thresholds sweep ("%g" formatted floats).
	if l1s, l2s, ok := strings.Cut(rest, "-"); ok {
		l1, err1 := strconv.ParseFloat(l1s, 64)
		l2, err2 := strconv.ParseFloat(l2s, 64)
		if err1 == nil && err2 == nil {
			return thresholdVariant(l1, l2), nil
		}
		return VariantSpec{}, fmt.Errorf("bench: unknown pmp variant %q", name)
	}
	// "pmp-<N>": the Table IX pattern-length sweep (region = N lines).
	if lines, err := strconv.Atoi(rest); err == nil {
		return regionVariant(lines * mem.LineBytes), nil
	}
	return VariantSpec{}, fmt.Errorf("bench: unknown pmp variant %q", name)
}

// ExperimentVariants returns every variant spec any registered
// experiment submits, under its wire name: the registry lineup, the
// ablation literals, the original LLC Bingo, and the full parameter
// sweeps. The grammar round-trip property test pins that each of these
// survives spec → name → ParseVariant unchanged.
func ExperimentVariants() []VariantSpec {
	var out []VariantSpec
	for _, name := range Names() {
		out = append(out, RegistryVariant(name))
	}
	for _, ab := range pmpAblations {
		out = append(out, PMPVariant(ab.Name, ab.Mut))
	}
	out = append(out, BingoLLCVariant())
	for _, w := range designBWays {
		out = append(out, DesignBVariant(w))
	}
	for _, sc := range pmpSchemes {
		out = append(out, schemeVariant(sc))
	}
	for _, fm := range pmpFeatureModes {
		out = append(out, featureVariant(fm))
	}
	for _, b := range pmpTriggerBits {
		out = append(out, twVariant(b))
	}
	for _, b := range pmpCounterBits {
		out = append(out, csVariant(b))
	}
	for _, m := range pmpMonitorRanges {
		out = append(out, mrVariant(m))
	}
	for _, p := range pmpThresholds {
		out = append(out, thresholdVariant(p[0], p[1]))
	}
	for _, reg := range pmpRegionBytes {
		out = append(out, regionVariant(reg))
	}
	return out
}
