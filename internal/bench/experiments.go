package bench

import (
	"fmt"
	"math"

	"pmp/internal/analysis"
	"pmp/internal/core"
	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

// subRunner returns a runner over a reduced trace subset for
// parameter sweeps (the paper also evaluates ablations on the same
// suite; we trim for wall-clock). It submits to the parent's
// scheduler, so sweep-subset jobs interleave with — and deduplicate
// against — every other experiment's jobs.
func (r *Runner) subRunner() *Runner {
	s := r.Scale
	if s.Traces > 8 {
		s.Traces = 8
	}
	sub := NewRunnerWith(s, r.sw)
	sub.rc, sub.ctx = r.rc, r.ctx // remote runners stay remote
	return sub
}

// corpus captures the Section III pattern corpus over the scale's
// traces.
func corpus(scale Scale) *analysis.Corpus {
	srcs := make([]trace.Source, 0, len(scale.Specs()))
	for _, sp := range scale.Specs() {
		srcs = append(srcs, sp.New(scale.Records))
	}
	return analysis.CaptureAll(srcs, 0)
}

// TableI reproduces Table I: average PCR and PDR per indexing feature.
func TableI(scale Scale) *Table {
	c := corpus(scale)
	t := &Table{
		ID:     "T1",
		Title:  "Average Pattern Collision/Duplicate Rates (paper Table I)",
		Header: []string{"Feature", "PCR", "PDR"},
	}
	for _, f := range analysis.Features() {
		pcr, pdr := analysis.PCRPDR(c, f)
		t.AddRow(f.String(), f1(pcr), f1(pdr))
	}
	t.Notes = append(t.Notes,
		"paper: PC 3823.6/2.2, TriggerOffset 2094.2/2.6, PC+TO 269.0/6.3, Address 1.8/556.3, PC+Address 1.7/608.7",
		"ordering (coarse features: high PCR low PDR; fine features: low PCR high PDR) is the reproduced claim")
	return t
}

// Fig2 reproduces Fig 2 / Observation 1: pattern frequency concentration.
func Fig2(scale Scale) *Table {
	c := corpus(scale)
	st := analysis.Frequencies(c, []int{10, 100, 1000})
	t := &Table{
		ID:     "F2",
		Title:  "Pattern frequency concentration (paper Fig 2 / Observation 1)",
		Header: []string{"Metric", "Value"},
	}
	t.AddRow("total occurrences", fmt.Sprint(st.Occurrences))
	t.AddRow("distinct patterns", fmt.Sprint(st.Distinct))
	t.AddRow("distinct seen once", pct(st.OnceFrac))
	t.AddRow("top-10 share", pct(st.TopShare[0]))
	t.AddRow("top-100 share", pct(st.TopShare[1]))
	t.AddRow("top-1000 share", pct(st.TopShare[2]))
	t.Notes = append(t.Notes,
		"paper: 75.6% seen once; top-10 33.1%, top-100 57.4%, top-1000 73.8% of occurrences")
	return t
}

// Fig4 reproduces Fig 4 / Observation 3: average ICDD per 6-bit
// clustering feature (lower = more similar patterns per cluster).
func Fig4(scale Scale) *Table {
	t := &Table{
		ID:     "F4",
		Title:  "Average ICDD by clustering feature (paper Fig 4)",
		Header: []string{"Feature", "mean ICDD", "min", "max"},
	}
	type acc struct {
		sum, minV, maxV float64
		n               int
	}
	accs := map[analysis.Feature]*acc{}
	for _, f := range analysis.Features() {
		accs[f] = &acc{minV: math.Inf(1), maxV: math.Inf(-1)}
	}
	for _, sp := range scale.Specs() {
		c := analysis.Capture(sp.New(scale.Records), 0)
		for _, f := range analysis.Features() {
			v := analysis.ICDD(c, f)
			a := accs[f]
			a.sum += v
			a.n++
			a.minV = math.Min(a.minV, v)
			a.maxV = math.Max(a.maxV, v)
		}
	}
	for _, f := range analysis.Features() {
		a := accs[f]
		if a.n == 0 {
			continue
		}
		t.AddRow(f.String(), f3(a.sum/float64(a.n)), f3(a.minV), f3(a.maxV))
	}
	t.Notes = append(t.Notes,
		"paper's claim: Trigger Offset clusters have the lowest ICDD (highest similarity)")
	return t
}

// Fig5 reproduces Fig 5: offset heat maps for an MCF-like and a
// stride (Astar-like) trace under different features.
func Fig5(scale Scale) *Table {
	mcf := trace.NewBackward("mcf-like", 11, scale.Records, trace.DefaultBackwardParams())
	astar := trace.NewStride("astar-like", 12, scale.Records, trace.DefaultStrideParams())
	cm := analysis.Capture(mcf, 0)
	ca := analysis.Capture(astar, 0)

	t := &Table{
		ID:     "F5",
		Title:  "Pattern heat maps (paper Fig 5); rendered 64x64, rows = feature index, cols = offset",
		Header: []string{"Panel"},
	}
	panels := []struct {
		label string
		c     *analysis.Corpus
		f     analysis.Feature
	}{
		{"(a) TriggerOffset-indexed, MCF-like", cm, analysis.FeatTriggerOffset},
		{"(b) TriggerOffset-indexed, Astar-like", ca, analysis.FeatTriggerOffset},
		{"(c) PC+Address-indexed, MCF-like", cm, analysis.FeatPCAddress},
		{"(d) PC-indexed, MCF-like", cm, analysis.FeatPC},
	}
	for _, p := range panels {
		m := analysis.HeatMap(p.c, p.f)
		t.AddRow(p.label)
		t.AddRow(analysis.RenderHeatMap(m))
	}
	t.Notes = append(t.Notes,
		"(a) shows a diagonal slash plus bottom rows of backward accesses; (b) strided slashes;",
		"(c) scatters mass across all rows; (d) concentrates into a few PC rows")
	return t
}

// Storage reproduces Tables II, III and V: PMP's parameter/overhead
// breakdown and the per-prefetcher storage comparison.
func Storage() *Table {
	t := &Table{
		ID:     "T3",
		Title:  "Storage overhead (paper Tables II/III/V)",
		Header: []string{"Structure/Prefetcher", "Storage"},
	}
	s := core.DefaultConfig().Storage()
	t.AddRow("PMP filter table", fmt.Sprintf("%d B", s.FilterTableBits/8))
	t.AddRow("PMP accumulation table", fmt.Sprintf("%d B", s.AccumTableBits/8))
	t.AddRow("PMP offset pattern table", fmt.Sprintf("%d B", s.OPTBits/8))
	t.AddRow("PMP PC pattern table", fmt.Sprintf("%d B", s.PPTBits/8))
	t.AddRow("PMP prefetch buffer", fmt.Sprintf("%d B", s.PrefetchBufBits/8))
	t.AddRow("PMP total", fmt.Sprintf("%.1f KB", s.TotalBytes()/1024))
	var pmpKB float64
	for _, name := range EvalNames() {
		pf := NewPrefetcher(name)
		kb := float64(pf.StorageBits()) / 8 / 1024
		if name == NamePMP {
			pmpKB = kb
		}
		t.AddRow(name, fmt.Sprintf("%.1f KB", kb))
	}
	if pmpKB > 0 {
		bingoKB := float64(NewPrefetcher(NameBingo).StorageBits()) / 8 / 1024
		pythiaKB := float64(NewPrefetcher(NamePythia).StorageBits()) / 8 / 1024
		t.Notes = append(t.Notes,
			fmt.Sprintf("Bingo/PMP = %.1fx (paper ~30x), Pythia/PMP = %.1fx (paper ~6x)",
				bingoKB/pmpKB, pythiaKB/pmpKB))
	}
	t.Notes = append(t.Notes, "paper Table V: DSPatch 3.6KB, Bingo 127.8KB, SPP+PPF 48.4KB, Pythia 25.5KB, PMP 4.3KB")
	return t
}

// Fig8 reproduces Fig 8: single-core NIPC of the five prefetchers, per
// family and overall.
func Fig8(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:     "F8",
		Title:  "Single-core performance, geomean NIPC vs no prefetching (paper Fig 8)",
		Header: []string{"Prefetcher", "spec06", "spec17", "ligra", "parsec", "ALL"},
	}
	for _, name := range EvalNames() {
		res := r.Run(name, cfg)
		fams := res.NIPCByFamily()
		row := []string{name}
		for _, fam := range []trace.Family{trace.SPEC06, trace.SPEC17, trace.Ligra, trace.PARSEC} {
			if v, ok := fams[fam]; ok {
				row = append(row, f3(v))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, f3(res.NIPC()))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: PMP 1.652 overall; beats DSPatch +41.3%, Bingo +2.6%, SPP+PPF +6.5%, Pythia +8.2%")
	return t
}

// levelStats aggregates per-level coverage and accuracy across traces.
func levelStats(res SuiteResult) (cov, acc [4]float64) {
	var baseMiss, miss, useful, useless [4]uint64
	for i := range res.Results {
		b, p := res.Baseline[i], res.Results[i]
		baseMiss[1] += b.L1D.DemandMisses
		baseMiss[2] += b.L2C.DemandMisses
		baseMiss[3] += b.LLC.DemandMisses
		miss[1] += p.L1D.DemandMisses
		miss[2] += p.L2C.DemandMisses
		miss[3] += p.LLC.DemandMisses
		useful[1] += p.L1D.UsefulPrefetch
		useful[2] += p.L2C.UsefulPrefetch
		useful[3] += p.LLC.UsefulPrefetch
		useless[1] += p.L1D.UselessPrefetx
		useless[2] += p.L2C.UselessPrefetx
		useless[3] += p.LLC.UselessPrefetx
	}
	for l := 1; l <= 3; l++ {
		if baseMiss[l] > 0 {
			cov[l] = float64(int64(baseMiss[l])-int64(miss[l])) / float64(baseMiss[l])
		}
		if tot := useful[l] + useless[l]; tot > 0 {
			acc[l] = float64(useful[l]) / float64(tot)
		}
	}
	return cov, acc
}

// Fig9 reproduces Fig 9: prefetch coverage and accuracy per cache level.
func Fig9(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:    "F9",
		Title: "Coverage and accuracy per cache level (paper Fig 9)",
		Header: []string{"Prefetcher",
			"L1D cov", "L2C cov", "LLC cov",
			"L1D acc", "L2C acc", "LLC acc"},
	}
	for _, name := range EvalNames() {
		res := r.Run(name, cfg)
		cov, acc := levelStats(res)
		t.AddRow(name,
			pct(cov[1]), pct(cov[2]), pct(cov[3]),
			pct(acc[1]), pct(acc[2]), pct(acc[3]))
	}
	t.Notes = append(t.Notes,
		"paper's claims: PMP has the highest L2C/LLC coverage and the highest L2C accuracy;",
		"L2C/LLC accuracies are much lower than L1D accuracies for all prefetchers")
	return t
}

// Fig10 reproduces Fig 10: average useful and useless prefetches per
// trace, per cache level.
func Fig10(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:    "F10",
		Title: "Average useful/useless prefetches per trace (paper Fig 10)",
		Header: []string{"Prefetcher",
			"L1D useful", "L1D useless",
			"L2C useful", "L2C useless",
			"LLC useful", "LLC useless"},
	}
	for _, name := range EvalNames() {
		res := r.Run(name, cfg)
		n := float64(len(res.Results))
		var u, x [4]float64
		for _, p := range res.Results {
			u[1] += float64(p.L1D.UsefulPrefetch)
			u[2] += float64(p.L2C.UsefulPrefetch)
			u[3] += float64(p.LLC.UsefulPrefetch)
			x[1] += float64(p.L1D.UselessPrefetx)
			x[2] += float64(p.L2C.UselessPrefetx)
			x[3] += float64(p.LLC.UselessPrefetx)
		}
		t.AddRow(name,
			f1(u[1]/n), f1(x[1]/n), f1(u[2]/n), f1(x[2]/n), f1(u[3]/n), f1(x[3]/n))
	}
	t.Notes = append(t.Notes,
		"paper's claims: PMP restricts useless L1D prefetches while producing the most useful L2C/LLC prefetches")
	return t
}

// NMT reproduces §V-D: normalized memory traffic, including PMP-Limit,
// plus the per-trace prefetch issue volumes behind the paper's "PMP
// issues 58.0% more prefetches than Bingo" observation.
func NMT(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:     "NMT",
		Title:  "Normalized memory traffic (paper §V-D)",
		Header: []string{"Prefetcher", "NMT", "NIPC", "issued/trace"},
	}
	names := append(EvalNames(), NamePMPLimit)
	issued := map[string]float64{}
	for _, name := range names {
		res := r.Run(name, cfg)
		var total float64
		for _, rr := range res.Results {
			total += float64(rr.PF.Total())
		}
		issued[name] = total / float64(len(res.Results))
		t.AddRow(name, pct(res.NMT()), f3(res.NIPC()), f1(issued[name]))
	}
	if issued[NameBingo] > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("PMP issues %+.1f%% more prefetches than Bingo (paper: +58.0%%)",
				100*(issued[NamePMP]/issued[NameBingo]-1)))
	}
	t.Notes = append(t.Notes,
		"paper: SPP+PPF 129.0%, Pythia 139.1%, DSPatch 159.8%, Bingo 164.2%, PMP 199.6% (highest), PMP-Limit 159.0%")
	return t
}

// TableVIII reproduces Table VIII: Design B NIPC vs associativity, with
// PMP for reference.
func TableVIII(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "T8",
		Title:  "Design B performance vs ways (paper Table VIII)",
		Header: []string{"Design", "NIPC"},
	}
	for _, ways := range designBWays {
		res := sw.RunVariant(DesignBVariant(ways), cfg)
		t.AddRow(res.Name, f3(res.NIPC()))
	}
	pmp := sw.Run(NamePMP, cfg)
	t.AddRow("pmp (merging)", f3(pmp.NIPC()))
	t.Notes = append(t.Notes,
		"paper: Design B 1.176/1.188/1.215/1.224 for 8/32/128/512 ways; PMP outperforms 512-way by 34.9%")
	return t
}

// Extraction reproduces §V-E2: AFE vs ANE vs ARE.
func Extraction(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "EXT",
		Title:  "Prefetch pattern extraction schemes (paper §V-E2)",
		Header: []string{"Scheme", "NIPC"},
	}
	for _, sc := range pmpSchemes {
		res := sw.RunVariant(schemeVariant(sc), cfg)
		t.AddRow(sc.String(), f3(res.NIPC()))
	}
	t.Notes = append(t.Notes,
		"paper: AFE +65.2% over baseline; ANE 2.9% below AFE; ARE far below (+5.0% only, stream patterns lost)")
	return t
}

// MultiFeature reproduces §V-E3: dual tables vs combined feature vs
// single-table variants.
func MultiFeature(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "MF",
		Title:  "Multi-feature prediction structures (paper §V-E3)",
		Header: []string{"Structure", "NIPC", "storage"},
	}
	for _, mode := range pmpFeatureModes {
		v := featureVariant(mode)
		res := sw.RunVariant(v, cfg)
		t.AddRow(mode.String(), f3(res.NIPC()),
			fmt.Sprintf("%.1f KB", v.PMP.Storage().TotalBytes()/1024))
	}
	t.Notes = append(t.Notes,
		"paper: combined -3.1%, single OPT -2.4%, single PPT -3.5% vs the dual structure")
	return t
}

// TableIX reproduces Table IX: pattern length (region size) sweep.
func TableIX(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "T9",
		Title:  "Pattern length sweep (paper Table IX)",
		Header: []string{"Length", "Region", "Overhead", "NIPC"},
	}
	for _, reg := range pmpRegionBytes {
		v := regionVariant(reg)
		res := sw.RunVariant(v, cfg)
		t.AddRow(fmt.Sprint(reg/64), fmt.Sprintf("%dKB", reg/1024),
			fmt.Sprintf("%.1f KB", v.PMP.Storage().TotalBytes()/1024), f3(res.NIPC()))
	}
	t.Notes = append(t.Notes, "paper: 1.652 / 1.626 / 1.572 for lengths 64/32/16 at 4.3/2.5/1.6 KB")
	return t
}

// TableXOffsetWidth reproduces Table X (left): trigger offset width.
func TableXOffsetWidth(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "T10a",
		Title:  "Trigger offset width sweep (paper Table X left)",
		Header: []string{"Width (b)", "NIPC", "OPT size"},
	}
	for _, b := range pmpTriggerBits {
		v := twVariant(b)
		res := sw.RunVariant(v, cfg)
		t.AddRow(fmt.Sprint(b), f3(res.NIPC()),
			fmt.Sprintf("%.1f KB", float64(v.PMP.Storage().OPTBits)/8/1024))
	}
	t.Notes = append(t.Notes,
		"paper: 1.652 -> 1.658 from 6b to 12b while the OPT grows 64x; gain is negligible")
	return t
}

// TableXCounterSize reproduces Table X (right): OPT counter width.
func TableXCounterSize(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "T10b",
		Title:  "OPT counter size sweep (paper Table X right)",
		Header: []string{"Counter (b)", "NIPC"},
	}
	for _, b := range pmpCounterBits {
		res := sw.RunVariant(csVariant(b), cfg)
		t.AddRow(fmt.Sprint(b), f3(res.NIPC()))
	}
	t.Notes = append(t.Notes, "paper: monotone 1.624 -> 1.655 from 2b to 8b (longer history helps)")
	return t
}

// TableXI reproduces Table XI: PPT monitoring range.
func TableXI(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "T11",
		Title:  "Monitoring range sweep (paper Table XI)",
		Header: []string{"Range", "NIPC", "PPT size"},
	}
	for _, mr := range pmpMonitorRanges {
		v := mrVariant(mr)
		res := sw.RunVariant(v, cfg)
		t.AddRow(fmt.Sprint(mr), f3(res.NIPC()),
			fmt.Sprintf("%d B", v.PMP.Storage().PPTBits/8))
	}
	t.Notes = append(t.Notes, "paper: 1.650 / 1.652 / 1.630 / 1.615 for ranges 1/2/4/8")
	return t
}

// Fig12Bandwidth reproduces Fig 12a: NIPC vs DRAM transfer rate.
func Fig12Bandwidth(r *Runner) *Table {
	sw := r.subRunner()
	t := &Table{
		ID:     "F12a",
		Title:  "Performance vs memory bandwidth (paper Fig 12a)",
		Header: []string{"Prefetcher", "800", "1600", "3200", "6400"},
	}
	rates := []int{800, 1600, 3200, 6400}
	for _, name := range EvalNames() {
		row := []string{name}
		for _, mtps := range rates {
			cfg := sw.Scale.Config().WithBandwidth(mtps)
			res := sw.Run(name, cfg)
			row = append(row, f3(res.NIPC()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: PMP leads at >= 1600 MT/s, slightly trails Bingo/SPP+PPF/Pythia at 800 MT/s (bandwidth hunger)")
	return t
}

// Fig12LLC reproduces Fig 12b: NIPC vs LLC capacity.
func Fig12LLC(r *Runner) *Table {
	sw := r.subRunner()
	t := &Table{
		ID:     "F12b",
		Title:  "Performance vs LLC size (paper Fig 12b)",
		Header: []string{"Prefetcher", "2MB", "4MB", "8MB"},
	}
	for _, name := range EvalNames() {
		row := []string{name}
		for _, mb := range []int{2, 4, 8} {
			cfg := sw.Scale.Config().WithLLCMB(mb)
			res := sw.Run(name, cfg)
			row = append(row, f3(res.NIPC()))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: PMP leads at every size; the PMP-Bingo gap widens with LLC size (pollution tolerance)")
	return t
}

// mixJob builds one multicore run spec: the traces cycled across n
// cores, every core training a fresh instance of the variant, with
// trace replay on (each trace wraps until every core's measurement
// window completes).
func mixJob(name string, v VariantSpec, specs []trace.Spec, n, records int, cfg sim.Config) specJob {
	cores := make([]runspec.CoreSpec, n)
	for i := range cores {
		cores[i] = runspec.CoreSpec{Trace: traceRef(specs[i%len(specs)]), Variant: v}
	}
	return specJob{name: name, run: runspec.RunSpec{
		Cores:   cores,
		Records: records,
		Config:  cfg,
		Replay:  true,
	}}
}

// coreNIPC returns the geomean per-core IPC ratio of one multicore run
// against its same-mix baseline.
func coreNIPC(pf, base []sim.Result) float64 {
	var sum float64
	n := 0
	for i := range pf {
		if b := base[i].IPC(); b > 0 {
			sum += math.Log(pf[i].IPC() / b)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Fig13 reproduces Fig 13: 4-core homogeneous and heterogeneous mixes.
// Every mix is one multicore run spec through the runner's scheduler —
// deduplicated, persisted and distributable exactly like the
// single-core jobs.
func Fig13(r *Runner) *Table {
	scale := r.Scale
	cfg := scale.Config()
	cfg.DRAM.Channels = 2
	if cfg.Measure == 0 {
		cfg.Measure = 400_000
	}

	t := &Table{
		ID:     "F13",
		Title:  "4-core performance, geomean per-core NIPC (paper Fig 13)",
		Header: []string{"Prefetcher", "homogeneous", "heterogeneous", "ALL"},
	}

	// Homogeneous: each selected trace on all four cores.
	homoSpecs := trace.Representative(min(4, scale.Traces))
	// Heterogeneous: Table VII-style mixes drawn from the MPKI classes.
	byClass := trace.ByClass(trace.Suite())
	pick := func(class trace.MPKIClass, i int) trace.Spec {
		specs := byClass[class]
		return specs[i%len(specs)]
	}
	// Table VII's six mix types; nMix instances each (the paper uses 10
	// per type — used at full scale, 1 otherwise).
	nMix := 1
	if scale.Traces >= 125 {
		nMix = 10
	}
	var mixes [][]trace.Spec
	L, M, H := trace.LowMPKI, trace.MediumMPKI, trace.HighMPKI
	types := [][4]trace.MPKIClass{
		{L, L, L, L}, {M, M, M, M}, {H, H, H, H},
		{L, L, M, M}, {L, L, H, H}, {M, M, H, H},
	}
	for rep := 0; rep < nMix; rep++ {
		for _, ty := range types {
			mixes = append(mixes, []trace.Spec{
				pick(ty[0], 4*rep), pick(ty[1], 4*rep+1),
				pick(ty[2], 4*rep+2), pick(ty[3], 4*rep+3),
			})
		}
	}

	// One job per mix per prefetcher: homogeneous mixes first, then the
	// heterogeneous ones, so res[i] aligns with base[i].
	jobsFor := func(name string) []specJob {
		v := RegistryVariant(name)
		jobs := make([]specJob, 0, len(homoSpecs)+len(mixes))
		for _, sp := range homoSpecs {
			jobs = append(jobs, mixJob(name, v, []trace.Spec{sp}, 4, scale.Records, cfg))
		}
		for _, mix := range mixes {
			jobs = append(jobs, mixJob(name, v, mix, 4, scale.Records, cfg))
		}
		return jobs
	}
	base := r.runSpecs(jobsFor(NameNone))

	names := append(EvalNames(), NamePMPLimit)
	for _, name := range names {
		res := r.runSpecs(jobsFor(name))
		var hoSum, heSum float64
		for i := range homoSpecs {
			hoSum += math.Log(coreNIPC(res[i], base[i]))
		}
		ho := math.Exp(hoSum / float64(len(homoSpecs)))
		for i := range mixes {
			j := len(homoSpecs) + i
			heSum += math.Log(coreNIPC(res[j], base[j]))
		}
		he := math.Exp(heSum / float64(len(mixes)))
		all := math.Exp((hoSum + heSum) / float64(len(homoSpecs)+len(mixes)))
		t.AddRow(name, f3(ho), f3(he), f3(all))
	}
	t.Notes = append(t.Notes,
		"paper: PMP beats DSPatch +39.6%, SPP+PPF +7.3%, Pythia +6.9%; matches Bingo; PMP-Limit +1% over Bingo")
	return t
}

// Related is an extension experiment: the related-work prefetchers
// (§VI: next-line, PC-stride, BOP, Sandbox, VLDP, SMS) on the same
// suite, alongside PMP — the comparison an open-source release of the
// paper's system would ship with.
func Related(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:     "REL",
		Title:  "Related-work prefetchers (extension; paper §VI discussion)",
		Header: []string{"Prefetcher", "NIPC", "NMT", "storage"},
	}
	names := append(RelatedNames(), NamePMP)
	for _, name := range names {
		res := r.Run(name, cfg)
		kb := float64(NewPrefetcher(name).StorageBits()) / 8 / 1024
		t.AddRow(name, f3(res.NIPC()), pct(res.NMT()), fmt.Sprintf("%.1f KB", kb))
	}
	t.Notes = append(t.Notes,
		"constant-stride designs (nextline/stride/BOP/Sandbox) are cheap but miss complex patterns (§VI-A);",
		"VLDP shares delta history; SMS replays stored per-event patterns (PMP's starting point);",
		"temporal designs (GHB/ISB) need recurring miss sequences and sit idle on streaming subsets (§VI-C)")
	return t
}

// All returns every experiment at the given scale, in DESIGN.md order.
func All(scale Scale) []*Table {
	r := NewRunner(scale)
	return []*Table{
		TableI(scale),
		Fig2(scale),
		Fig4(scale),
		Fig5(scale),
		Storage(),
		Fig8(r),
		Fig9(r),
		Fig10(r),
		NMT(r),
		TableVIII(r),
		Extraction(r),
		MultiFeature(r),
		TableIX(r),
		TableXOffsetWidth(r),
		TableXCounterSize(r),
		TableXI(r),
		Fig12Bandwidth(r),
		Fig12LLC(r),
		Fig13(r),
		Ablations(r),
		Related(r),
		Placement(r),
		Inclusion(r),
		Thresholds(r),
		HETS(r),
		HETM(r),
		HETH(r),
		HETB(r),
	}
}

// Ablations quantifies the simulator- and design-level mechanisms that
// DESIGN.md calls out, beyond the paper's own sweeps: counter-vector
// halving (aging) and the prefetch buffer's continue-on-reaccess
// behaviour.
func Ablations(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "ABL",
		Title:  "PMP mechanism ablations (extension; not a paper artifact)",
		Header: []string{"Variant", "NIPC", "NMT"},
	}
	for _, ab := range pmpAblations {
		res := sw.RunVariant(PMPVariant(ab.Name, ab.Mut), cfg)
		t.AddRow(ab.Name, f3(res.NIPC()), pct(res.NMT()))
	}
	t.Notes = append(t.Notes,
		"halving keeps frequencies adaptive across phases; PB resume recovers prefetches suspended on full queues;",
		"cross-region projection issues wrapping targets into the next region (the paper's unsupported cross-page case)")
	return t
}

// Placement reproduces the paper's §V-B placement claim: "PMP (at L1)
// outperforms the original Bingo at LLC by 16.5%". The original
// (non-doubled) Bingo is attached at the LLC, training on LLC demand
// accesses and filling the LLC only.
func Placement(r *Runner) *Table {
	cfg := r.Scale.Config()
	t := &Table{
		ID:     "PLC",
		Title:  "Prefetcher placement (paper §V-B: PMP@L1 vs original Bingo@LLC)",
		Header: []string{"Configuration", "NIPC"},
	}

	pmpRes := r.Run(NamePMP, cfg)
	t.AddRow("PMP at L1D", f3(pmpRes.NIPC()))

	// Original (non-doubled) Bingo: half the enhanced PHT, placed at
	// the LLC of an otherwise prefetcher-less machine. The placement
	// travels in the run spec, so remote workers reconstruct the same
	// system shape; the job keeps its historical "bingo@llc" name so
	// existing stores resolve it.
	llcBingo := r.RunPlaced("bingo@llc", RegistryVariant(NameNone),
		[]runspec.Placement{{Level: 2, Variant: BingoLLCVariant()}}, cfg)
	t.AddRow("original Bingo at LLC", f3(llcBingo.NIPC()))

	if b := llcBingo.NIPC(); b > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("PMP@L1 over Bingo@LLC: %+.1f%% (paper: +16.5%%)",
				100*(pmpRes.NIPC()/b-1)))
	}
	t.Notes = append(t.Notes,
		"our OOO-window core under-prices upper-level miss latency, flattering LLC placement (see EXPERIMENTS.md)")
	return t
}

// Inclusion is an extension sweep over the hierarchy-shape knobs the
// N-level machine exposes: PMP on the default inclusive LLC, on a
// ChampSim-style non-inclusive LLC, and on a 2-level hierarchy with no
// L2C. Each variant is normalized against the non-prefetching baseline
// of the same hierarchy.
func Inclusion(r *Runner) *Table {
	t := &Table{
		ID:     "INC",
		Title:  "Hierarchy shape: inclusion policy and depth (extension; not a paper artifact)",
		Header: []string{"Hierarchy", "NIPC", "NMT"},
	}
	variants := []struct {
		name string
		mut  func(*sim.Config)
	}{
		{"3-level, inclusive LLC (default)", func(*sim.Config) {}},
		{"3-level, non-inclusive LLC", func(c *sim.Config) { c.NonInclusiveLLC = true }},
		{"2-level (no L2C), inclusive LLC", func(c *sim.Config) {
			c.Levels = []sim.LevelSpec{
				{Cache: c.L1D},
				{Cache: c.LLC, Shared: true, Inclusive: true},
			}
		}},
	}
	for _, v := range variants {
		cfg := r.Scale.Config()
		v.mut(&cfg)
		res := r.Run(NamePMP, cfg)
		t.AddRow(v.name, f3(res.NIPC()), pct(res.NMT()))
	}
	t.Notes = append(t.Notes,
		"non-inclusive LLCs skip back-invalidation, so hot L1/L2 lines survive LLC pressure;",
		"dropping the L2C exposes every L1D miss to LLC latency, raising the stakes on L1 prefetch coverage")
	return t
}

// Thresholds is an extension sweep over PMP's AFE thresholds, which
// the paper fixes at T_l1d=50% / T_l2c=15% without a sweep: it shows
// where those defaults sit in the design space.
func Thresholds(r *Runner) *Table {
	sw := r.subRunner()
	cfg := sw.Scale.Config()
	t := &Table{
		ID:     "THR",
		Title:  "AFE threshold sweep (extension; paper fixes 50%/15%)",
		Header: []string{"T_l1d", "T_l2c", "NIPC", "NMT"},
	}
	for _, pair := range pmpThresholds {
		l1, l2 := pair[0], pair[1]
		res := sw.RunVariant(thresholdVariant(l1, l2), cfg)
		t.AddRow(pct(l1), pct(l2), f3(res.NIPC()), pct(res.NMT()))
	}
	t.Notes = append(t.Notes,
		"lower T_l1d trades L1D pollution for coverage; higher T_l2c trims the low-level spray")
	return t
}
