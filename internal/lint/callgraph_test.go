package lint

import "testing"

const cgPath = "pmp/fixture/callgraph"

func loadCallgraphFixture(t *testing.T) *Program {
	t.Helper()
	pkg, err := TypecheckPackage(cgPath, "testdata/callgraph", []string{"fixture.go"}, nil, nil)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return NewProgram([]*Package{pkg})
}

func assertEdge(t *testing.T, prog *Program, caller, callee string, kind EdgeKind) {
	t.Helper()
	from := prog.FuncByName(caller)
	if from == nil {
		t.Fatalf("no node for %s", caller)
	}
	for _, e := range from.Callees {
		if e.Callee.Key == callee && e.Kind == kind {
			return
		}
	}
	t.Errorf("no edge %s -> %s of kind %d; have %d callees", caller, callee, kind, len(from.Callees))
	for _, e := range from.Callees {
		t.Logf("  callee %s kind %d", e.Callee.Key, e.Kind)
	}
}

func TestCallGraphEdges(t *testing.T) {
	prog := loadCallgraphFixture(t)

	assertEdge(t, prog, cgPath+".caller", cgPath+".helper", EdgeStatic)
	assertEdge(t, prog, cgPath+".caller", "(*"+cgPath+".device).method", EdgeMethod)
	// Interface dispatch: one edge to the interface method itself, one
	// per implementation.
	assertEdge(t, prog, cgPath+".caller", "("+cgPath+".actor).act", EdgeInterface)
	assertEdge(t, prog, cgPath+".caller", "(*"+cgPath+".device).act", EdgeInterface)
	// Methods resolve transitively too.
	assertEdge(t, prog, "(*"+cgPath+".device).method", cgPath+".helper", EdgeStatic)
}

func TestHotPathReachability(t *testing.T) {
	prog := loadCallgraphFixture(t)

	roots := prog.HotPathRoots()
	if len(roots) != 1 || roots[0].Key != cgPath+".caller" {
		t.Fatalf("HotPathRoots = %v, want exactly caller", roots)
	}
	if _, _, hot := prog.HotPath(roots[0]); !hot {
		t.Error("root should be hot-path reachable")
	}
	root, via, hot := prog.HotPath(prog.FuncByName(cgPath + ".helper"))
	if !hot || root == nil || root.Key != cgPath+".caller" {
		t.Errorf("helper: hot=%v root=%v, want hot via caller", hot, root)
	}
	if via == nil {
		t.Error("helper should record the caller it was discovered through")
	}
	// The interface implementation is hot through dispatch.
	if _, _, hot := prog.HotPath(prog.FuncByName("(*" + cgPath + ".device).act")); !hot {
		t.Error("(*device).act should be hot through interface dispatch")
	}
	if _, _, hot := prog.HotPath(prog.FuncByName(cgPath + ".orphan")); hot {
		t.Error("orphan must not be hot-path reachable")
	}
}

// pingFact is a test fact for the store round-trip.
type pingFact struct{ N int }

func (*pingFact) AFact() {}

func TestFactStore(t *testing.T) {
	prog := loadCallgraphFixture(t)
	fn := prog.FuncByName(cgPath + ".helper")
	if fn == nil {
		t.Fatal("no node for helper")
	}
	var got pingFact
	if prog.ImportFact(fn, &got) {
		t.Fatal("ImportFact before ExportFact should report false")
	}
	prog.ExportFact(fn, &pingFact{N: 7})
	if !prog.ImportFact(fn, &got) || got.N != 7 {
		t.Fatalf("ImportFact = %v, want N=7", got)
	}
	// Facts are keyed per function: other nodes stay empty.
	var other pingFact
	if prog.ImportFact(prog.FuncByName(cgPath+".orphan"), &other) {
		t.Fatal("fact leaked to an unrelated function")
	}
}

// TestBottomUpOrder asserts callees are visited before their callers.
func TestBottomUpOrder(t *testing.T) {
	prog := loadCallgraphFixture(t)
	seen := map[string]int{}
	order := 0
	prog.BottomUp(func(fn *Func) {
		seen[fn.Key] = order
		order++
	})
	if seen[cgPath+".helper"] > seen[cgPath+".caller"] {
		t.Errorf("helper visited at %d, after caller at %d", seen[cgPath+".helper"], seen[cgPath+".caller"])
	}
	if seen[cgPath+".helper"] > seen["(*"+cgPath+".device).method"] {
		t.Error("helper should be visited before its caller (*device).method")
	}
}
