// Package linttest is the analysistest-equivalent harness for the
// pmplint analyzer suite: it type-checks a fixture directory against
// the repository's real packages and compares the diagnostics an
// analyzer reports with the `// want "regexp"` comments in the
// fixtures.
//
// Fixture files live under testdata/<analyzer>/ (ignored by the go
// tool) and may import any package in the module's dependency closure,
// including pmp/internal/mem and pmp/internal/prefetch.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pmp/internal/lint"
)

var (
	indexOnce sync.Once
	index     map[string]string
	indexErr  error
)

// exportIndex lazily builds (once per test binary) the export-data
// index for the whole module, so fixtures can import repo packages.
func exportIndex(t *testing.T) map[string]string {
	t.Helper()
	indexOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			indexErr = err
			return
		}
		// time and math/rand ride along for the determinism fixtures,
		// which need to import them even though the repository itself
		// (deliberately) never pulls in math/rand.
		index, indexErr = lint.ExportIndex(root, "./...", "time", "math/rand")
	})
	if indexErr != nil {
		t.Fatalf("building export index: %v", indexErr)
	}
	return index
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// Run type-checks every .go file in fixtureDir as one package, applies
// the analyzer, and fails the test on any mismatch between reported
// diagnostics and want comments.
func Run(t *testing.T, a *lint.Analyzer, fixtureDir string) {
	t.Helper()
	RunAt(t, a, fixtureDir, "pmp/fixture/"+a.Name)
}

// RunAt is Run with an explicit fixture import path, for analyzers
// whose rules are scoped by package path (determinism applies its
// wall-clock rule only under internal/sim, internal/core and
// internal/sweep).
func RunAt(t *testing.T, a *lint.Analyzer, fixtureDir, importPath string) {
	t.Helper()
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", fixtureDir)
	}
	abs, err := filepath.Abs(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := lint.TypecheckPackage(importPath, abs, files, exportIndex(t), nil)
	if err != nil {
		t.Fatalf("typechecking fixtures: %v", err)
	}

	wants := collectWants(t, pkg)
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants extracts `// want "regexp"` (or backquoted) comments.
func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				pattern, err := strconv.Unquote(rest)
				if err != nil {
					t.Fatalf("malformed want comment %q: %v", c.Text, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pattern, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// Fixture computes the conventional fixture directory for an analyzer.
func Fixture(a *lint.Analyzer) string { return filepath.Join("testdata", a.Name) }
