package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation-causing constructs in functions reachable
// from //pmp:hotpath roots. The simulator's throughput argument (and
// the perf-regression gate pinning 0 allocs/access) depends on the
// per-access path never touching the garbage collector; this analyzer
// moves that invariant from the benchmark — which catches a regression
// only after it lands — to the source, where the offending construct is
// named before anything runs.
//
// Flagged constructs: make and new, map composite literals, growing
// append (appends neither recycling a buffer via x[:0] nor dominated
// by a capacity check), interface boxing of non-pointer-shaped values
// at call sites, function literals (closure allocation), fmt calls,
// and string concatenation. Cold branches inside hot functions are
// exempted line-by-line with "//pmp:allocok <reason>"; the reason is
// mandatory and unused annotations are themselves reported (see
// reportUnusedDirectives).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation-causing constructs (make/new, map literals, growing append, " +
		"interface boxing, closures, fmt, string concatenation) in functions reachable " +
		"from //pmp:hotpath roots; suppress cold branches with //pmp:allocok <reason>",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, fn := range pass.Prog.Functions() {
		if fn.Pkg != pass.Pkg || fn.Decl == nil || fn.Decl.Body == nil {
			continue
		}
		root, via, hot := pass.Prog.HotPath(fn)
		if !hot {
			continue
		}
		checkHotFunc(pass, fn, hotContext(fn, root, via))
	}
}

// hotContext renders why fn is on the hot path, for diagnostics.
func hotContext(fn, root, via *Func) string {
	switch {
	case via == nil:
		return fmt.Sprintf("%s is a //pmp:hotpath root", fn.Name())
	case via == root:
		return fmt.Sprintf("%s is called from //pmp:hotpath root %s", fn.Name(), root.Name())
	default:
		return fmt.Sprintf("%s is reachable from //pmp:hotpath root %s via %s",
			fn.Name(), root.Name(), via.Name())
	}
}

// checkHotFunc walks one hot function's body for allocation sites.
func checkHotFunc(pass *Pass, fn *Func, ctx string) {
	pkg := pass.Pkg
	walkStack(fn.Decl, func(n ast.Node, stack []ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, x, stack, ctx)
		case *ast.CompositeLit:
			if tv, ok := pkg.Info.Types[x]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					reportAlloc(pass, x.Pos(),
						"map literal allocates on the hot path (%s); hoist it to setup", ctx)
				}
			}
		case *ast.FuncLit:
			reportAlloc(pass, x.Pos(),
				"function literal may allocate its closure on the hot path (%s); "+
					"hoist it to setup or justify with //pmp:allocok", ctx)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringConcat(pkg, x) {
				reportAlloc(pass, x.Pos(),
					"string concatenation allocates on the hot path (%s); "+
						"precompute the string or switch to integer keys", ctx)
			}
		}
		return true
	})
}

// checkHotCall flags allocating builtins, fmt calls, and interface
// boxing at one call site inside a hot function.
func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node, ctx string) {
	pkg := pass.Pkg
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				reportAlloc(pass, call.Pos(),
					"make allocates on the hot path (%s); preallocate in setup and reuse", ctx)
			case "new":
				reportAlloc(pass, call.Pos(),
					"new allocates on the hot path (%s); preallocate in setup and reuse", ctx)
			case "append":
				checkHotAppend(pass, call, stack, ctx)
			}
			return
		}
	}
	if callee := calleeObj(pkg, call); callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		reportAlloc(pass, call.Pos(),
			"fmt.%s formats and boxes its arguments on the hot path (%s); "+
				"move formatting off the per-access path", callee.Name(), ctx)
		return // boxing into ...any is implied; don't double-report below
	}
	checkBoxing(pass, call, ctx)
}

// checkHotAppend flags appends that may grow their backing array. Two
// shapes are exempt because they express reuse of a preallocated
// buffer: appending to a slice recycled with x[:0] (directly or via a
// variable assigned from such an expression in the same function), and
// appends dominated by a capacity check against the destination (the
// bounded-structure idiom capacity.go enforces).
func checkHotAppend(pass *Pass, call *ast.CallExpr, stack []ast.Node, ctx string) {
	if len(call.Args) == 0 {
		return
	}
	pkg := pass.Pkg
	dst := ast.Unparen(call.Args[0])
	if isRecycleSlice(dst) {
		return
	}
	if id, ok := dst.(*ast.Ident); ok && recycledInFunc(stack, id.Name) {
		return
	}
	target := exprString(pkg.Fset, dst)
	if capacityGuarded(pkg.Fset, stack, call, target) {
		return
	}
	reportAlloc(pass, call.Pos(),
		"append may grow %s on the hot path (%s); reserve capacity in setup and "+
			"recycle with %s[:0], or guard with a capacity check", target, ctx, target)
}

// isRecycleSlice reports whether e is the x[:0] buffer-recycling idiom.
func isRecycleSlice(e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.Low != nil || sl.High == nil {
		return false
	}
	lit, ok := sl.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// recycledInFunc reports whether the enclosing function (innermost
// FuncDecl or FuncLit on the stack) assigns name from an x[:0] slice
// expression anywhere in its body — the `live := p.done[:0]` shape
// where the recycled buffer is appended to under a new name.
func recycledInFunc(stack []ast.Node, name string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0 && body == nil; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			body = f.Body
		case *ast.FuncLit:
			body = f.Body
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name != name || i >= len(as.Rhs) {
				continue
			}
			if isRecycleSlice(as.Rhs[i]) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkBoxing flags arguments whose conversion to an interface
// parameter must heap-allocate: a non-pointer-shaped concrete value
// (basic, string, struct, array, or slice) boxed into an interface.
// Pointer-shaped values (pointers, channels, maps, funcs) fit in the
// interface word directly, constants are materialized in static data,
// and nil boxes nothing, so all three are exempt.
func checkBoxing(pass *Pass, call *ast.CallExpr, ctx string) {
	pkg := pass.Pkg
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through unboxed
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.IsNil() || at.Value != nil || at.Type == nil {
			continue
		}
		if types.IsInterface(at.Type) || pointerShaped(at.Type) {
			continue
		}
		reportAlloc(pass, arg.Pos(),
			"passing %s boxes a %s into an interface on the hot path (%s); "+
				"pass a pointer or use a concrete parameter type",
			exprString(pkg.Fset, arg), at.Type.String(), ctx)
	}
}

// pointerShaped reports whether values of t fit in an interface's data
// word without allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isStringConcat reports whether the + expression produces a
// non-constant string (constant folding happens at compile time).
func isStringConcat(pkg *Package, e *ast.BinaryExpr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// calleeObj resolves a call's target to its types.Func (static calls
// and concrete or interface method calls), or nil for builtins,
// conversions, and calls through plain function values.
func calleeObj(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return o
		}
	case *ast.SelectorExpr:
		if o, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return o
		}
	}
	return nil
}

// reportAlloc reports a hotalloc finding unless a //pmp:allocok
// annotation on the same line or the line above covers it.
func reportAlloc(pass *Pass, pos token.Pos, format string, args ...any) {
	if pass.Pkg.allocOK(pass.Pkg.Fset.Position(pos)) {
		return
	}
	pass.Reportf(pos, format, args...)
}
