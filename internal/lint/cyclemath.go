package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CycleMath flags unsigned cycle/timestamp subtractions that can wrap
// around zero without a dominating comparison. The simulator carries
// all timing as uint64 cycle counts; `deadline - now` with the operands
// swapped (or a stale timestamp) silently produces a ~2^64 latency
// instead of a crash, which is far harder to debug than the lint.
var CycleMath = &Analyzer{
	Name: "cyclemath",
	Doc: "flags uint cycle/timestamp subtractions not dominated by a comparison " +
		"of the operands (possible underflow to ~2^64)",
	Run: runCycleMath,
}

func runCycleMath(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.SUB {
				return true
			}
			if !isUnsigned(pass.Pkg.Info.Types[be].Type) {
				return true
			}
			// x-1 style offsets are a different hazard class; only flag
			// subtractions of two runtime time values.
			if pass.Pkg.Info.Types[be.X].Value != nil || pass.Pkg.Info.Types[be.Y].Value != nil {
				return true
			}
			if !timeFlavoured(be.X) && !timeFlavoured(be.Y) {
				return true
			}
			x := exprString(pass.Pkg.Fset, be.X)
			y := exprString(pass.Pkg.Fset, be.Y)
			if guardedBy(pass.Pkg.Fset, stack, n, x) || guardedBy(pass.Pkg.Fset, stack, n, y) {
				return true
			}
			pass.Reportf(be.Pos(), "unsigned cycle subtraction %q may underflow; "+
				"guard with a comparison of %s and %s first", exprString(pass.Pkg.Fset, be), x, y)
			return true
		})
	}
}

// timeFlavoured reports whether the expression mentions an identifier
// that names a cycle count or timestamp.
func timeFlavoured(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		lower := strings.ToLower(id.Name)
		for _, w := range []string{"cycle", "tick", "stamp", "deadline"} {
			if strings.Contains(lower, w) {
				found = true
				return false
			}
		}
		if lower == "now" || lower == "when" || lower == "time" {
			found = true
			return false
		}
		return true
	})
	return found
}

// isUnsigned reports whether t's underlying type is an unsigned integer.
func isUnsigned(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}
