// Package lint is a self-contained static-analysis framework plus the
// pmplint analyzer suite that enforces this repository's simulator
// invariants (line-aligned geometry arithmetic, saturating-counter
// discipline, cycle-math underflow safety, configuration-literal
// bounds, and the prefetch.Prefetcher implementation contract).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic) but is built only on the standard
// library so the repository stays dependency-free: packages are loaded
// with `go list -export` and type-checked with go/types using the
// toolchain's export data for dependencies (see load.go). Analyzers are
// compiled into cmd/pmplint, which runs standalone over package
// patterns and also speaks the `go vet -vettool` protocol.
//
// See docs/linting.md for what each analyzer checks and why the
// invariant matters for the paper's hardware model.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass. It mirrors the x/tools
// analysis.Analyzer shape so the suite could be ported to the real
// framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run executes the pass and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless it is suppressed by a
// "//lint:ignore" comment (see suppressed).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full pmplint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MagicGeometry,
		CycleMath,
		SatCounter,
		Capacity,
		PrefetcherImpl,
		ConfigBounds,
	}
}

// ByName returns the named analyzers (all when names is empty), or an
// error naming the unknown entry.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Run applies every analyzer to every package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective parses a "//lint:ignore <analyzer...> <reason>"
// comment, returning the analyzer names it suppresses (the special name
// "all" suppresses every analyzer). A directive with no reason is
// malformed and suppresses nothing, so stale annotations stay visible.
func ignoreDirective(c *ast.Comment) (names []string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//lint:ignore ")
	if !found {
		return nil, false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil, false // no reason given
	}
	return strings.Split(fields[0], ","), true
}

// suppressed reports whether a diagnostic from the named analyzer at
// position is covered by a lint:ignore directive on the same line or
// the line immediately above it.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, line := range p.ignores[pos.Filename] {
		if line.line != pos.Line && line.line != pos.Line-1 {
			continue
		}
		for _, n := range line.names {
			if n == analyzer || n == "all" {
				return true
			}
		}
	}
	return false
}

type ignoreLine struct {
	line  int
	names []string
}

// collectIgnores indexes every lint:ignore directive by file and line.
func (p *Package) collectIgnores() {
	p.ignores = map[string][]ignoreLine{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := ignoreDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				p.ignores[pos.Filename] = append(p.ignores[pos.Filename], ignoreLine{line: pos.Line, names: names})
			}
		}
	}
}
