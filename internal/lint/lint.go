// Package lint is a self-contained static-analysis framework plus the
// pmplint analyzer suite that enforces this repository's simulator
// invariants (line-aligned geometry arithmetic, saturating-counter
// discipline, cycle-math underflow safety, configuration-literal
// bounds, the prefetch.Prefetcher implementation contract, hot-path
// allocation freedom, and output determinism).
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer / Pass / Diagnostic / Fact) but is built only on the
// standard library so the repository stays dependency-free: packages
// are loaded with `go list -export` and type-checked with go/types
// using the toolchain's export data for dependencies (see load.go).
// On top of the per-package passes, a Program (see callgraph.go) spans
// every loaded package with an intra-module call graph and a
// per-function fact store, which the cross-package analyzers
// (hotalloc, determinism) build on. Analyzers are compiled into
// cmd/pmplint, which runs standalone over package patterns and also
// speaks the `go vet -vettool` protocol.
//
// See docs/linting.md for what each analyzer checks and why the
// invariant matters for the paper's hardware model.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static-analysis pass. It mirrors the x/tools
// analysis.Analyzer shape so the suite could be ported to the real
// framework if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:ignore <name> <reason>" suppression comments.
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// Run executes the pass and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one analyzed package to an Analyzer's Run function.
// Prog is the whole-program view shared by every pass of a Run:
// cross-package analyzers resolve the call graph and facts through it
// but must report only diagnostics positioned in Pkg, so the combined
// output is identical regardless of package order.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless it is suppressed by a
// "//lint:ignore" comment (see suppressed).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.suppressed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full pmplint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MagicGeometry,
		CycleMath,
		SatCounter,
		Capacity,
		PrefetcherImpl,
		ConfigBounds,
		HotAlloc,
		Determinism,
	}
}

// ByName returns the named analyzers (all when names is empty), or an
// error naming the unknown entry.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Run builds the whole-program view for the packages, applies every
// analyzer, checks suppression hygiene, and returns the combined
// findings in a deterministic total order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runProgram(NewProgram(pkgs), analyzers)
}

// runProgram is the shared engine behind Run (whole module) and
// RunVetUnit (one vet unit). Packages run in dependency order so
// bottom-up fact computation in one pass is visible to later ones.
func runProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diags: &diags}
			a.Run(pass)
		}
	}
	if !prog.singleUnit {
		reportUnusedDirectives(prog, analyzers, &diags)
	}
	return sortDiagnostics(diags)
}

// sortDiagnostics imposes the canonical total order — file, line,
// column, analyzer, message — and drops exact duplicates, so output is
// byte-identical across runs, package orders, and process schedules.
func sortDiagnostics(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// UnusedIgnoreName is the analyzer name suppression-hygiene
// diagnostics are reported under.
const UnusedIgnoreName = "unusedignore"

// reportUnusedDirectives flags stale suppression comments: a
// //lint:ignore directive none of whose named analyzers suppressed
// anything this run, and a //pmp:allocok annotation no hotalloc
// finding landed on. A stale directive silently masks the next real
// regression on its line, so it must be deleted (or updated) rather
// than accumulate.
//
// A //lint:ignore directive is only judged when every analyzer it
// names ran ("all" directives require the full suite), and allocok
// annotations only when hotalloc ran — a partial -analyzers run can
// never prove a directive stale.
func reportUnusedDirectives(prog *Program, analyzers []*Analyzer, diags *[]Diagnostic) {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	fullSuite := true
	for _, a := range Analyzers() {
		if !ran[a.Name] {
			fullSuite = false
			break
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, lines := range pkg.ignores {
			for _, ln := range lines {
				if ln.used {
					continue
				}
				judgeable := true
				for _, n := range ln.names {
					if n == "all" && !fullSuite {
						judgeable = false
						break
					}
					if n != "all" && !ran[n] {
						judgeable = false
						break
					}
				}
				if !judgeable {
					continue
				}
				*diags = append(*diags, Diagnostic{
					Analyzer: UnusedIgnoreName,
					Pos:      ln.pos,
					Message: fmt.Sprintf("unused //lint:ignore %s directive suppresses nothing; delete it",
						strings.Join(ln.names, ",")),
				})
			}
		}
		if !ran[HotAlloc.Name] {
			continue
		}
		for _, lines := range pkg.allocOKs {
			for _, ln := range lines {
				if ln.used {
					continue
				}
				*diags = append(*diags, Diagnostic{
					Analyzer: UnusedIgnoreName,
					Pos:      ln.pos,
					Message:  "unused //pmp:allocok annotation: no hot-path allocation lands here; delete it",
				})
			}
		}
	}
}

// ignoreDirective parses a "//lint:ignore <analyzer...> <reason>"
// comment, returning the analyzer names it suppresses (the special name
// "all" suppresses every analyzer). A directive with no reason is
// malformed and suppresses nothing, so stale annotations stay visible.
func ignoreDirective(c *ast.Comment) (names []string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//lint:ignore ")
	if !found {
		return nil, false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return nil, false // no reason given
	}
	return strings.Split(fields[0], ","), true
}

// suppressed reports whether a diagnostic from the named analyzer at
// position is covered by a lint:ignore directive on the same line or
// the line immediately above it, marking the directive used.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, line := range p.ignores[pos.Filename] {
		if line.pos.Line != pos.Line && line.pos.Line != pos.Line-1 {
			continue
		}
		for _, n := range line.names {
			if n == analyzer || n == "all" {
				line.used = true
				return true
			}
		}
	}
	return false
}

// allocOK reports whether a hotalloc finding at position is covered by
// a //pmp:allocok annotation on the same line or the line immediately
// above it, marking the annotation used.
func (p *Package) allocOK(pos token.Position) bool {
	for _, line := range p.allocOKs[pos.Filename] {
		if line.pos.Line == pos.Line || line.pos.Line == pos.Line-1 {
			line.used = true
			return true
		}
	}
	return false
}

// directiveLine is one suppression comment: a //lint:ignore directive
// (names set) or a //pmp:allocok annotation.
type directiveLine struct {
	pos   token.Position
	names []string
	used  bool
}

// collectIgnores indexes every lint:ignore and pmp:allocok directive
// by file and line.
func (p *Package) collectIgnores() {
	p.ignores = map[string][]*directiveLine{}
	p.allocOKs = map[string][]*directiveLine{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				if names, ok := ignoreDirective(c); ok {
					p.ignores[pos.Filename] = append(p.ignores[pos.Filename],
						&directiveLine{pos: pos, names: names})
					continue
				}
				if ok := allocOKDirective(c); ok {
					p.allocOKs[pos.Filename] = append(p.allocOKs[pos.Filename],
						&directiveLine{pos: pos})
				}
			}
		}
	}
}

// allocOKDirective parses a "//pmp:allocok <reason>" annotation. The
// reason is mandatory, exactly as for lint:ignore: an annotation
// without one is malformed and suppresses nothing.
func allocOKDirective(c *ast.Comment) bool {
	text, found := strings.CutPrefix(c.Text, "//pmp:allocok")
	if !found {
		return false
	}
	return strings.TrimSpace(text) != ""
}
