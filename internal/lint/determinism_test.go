package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestDeterminismMapOrder(t *testing.T) {
	linttest.Run(t, lint.Determinism, linttest.Fixture(lint.Determinism))
}

// The wall-clock rules are scoped by package path, so their fixtures
// type-check under synthetic simulator and sweep import paths.
func TestDeterminismSimClock(t *testing.T) {
	linttest.RunAt(t, lint.Determinism, "testdata/determinismsim", "pmp/internal/sim/fixture")
}

func TestDeterminismJobIdentity(t *testing.T) {
	linttest.RunAt(t, lint.Determinism, "testdata/determinismsweep", "pmp/internal/sweep/fixture")
}
