package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Capacity flags inserts into bounded hardware buffers — MSHR files,
// prefetch queues, pending/in-flight tables, FIFOs — that are not
// dominated by an occupancy check. Every such structure models a fixed
// number of SRAM entries; an unchecked `append` or map insert grows
// without bound, which both breaks the paper's storage accounting and
// silently grants the prefetcher infinite outstanding requests.
var Capacity = &Analyzer{
	Name: "capacity",
	Doc: "flags appends/inserts into MSHR-, queue-, pending- or FIFO-named containers " +
		"with no dominating occupancy or membership check against their capacity",
	Run: runCapacity,
}

func runCapacity(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			container := enqueueTarget(pass.Pkg.Fset, as)
			if container == nil || !capacityFlavoured(container) {
				return true
			}
			c := exprString(pass.Pkg.Fset, container)
			if capacityGuarded(pass.Pkg.Fset, stack, n, c) {
				return true
			}
			pass.Reportf(as.Pos(), "insert into bounded structure %s has no dominating capacity check; "+
				"compare its occupancy (e.g. len(%s)) against the limit first", c, c)
			return true
		})
	}
}

// enqueueTarget returns the container an assignment grows, or nil when
// the statement is not an insert: either a map/slice element write
// `C[k] = v` or a self-append `C = append(C, ...)`.
func enqueueTarget(fset *token.FileSet, as *ast.AssignStmt) ast.Expr {
	if idx, ok := ast.Unparen(as.Lhs[0]).(*ast.IndexExpr); ok {
		return idx.X
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return nil
	}
	lhs := exprString(fset, as.Lhs[0])
	if exprString(fset, call.Args[0]) != lhs {
		return nil
	}
	return as.Lhs[0]
}

// capacityFlavoured reports whether the container expression names a
// bounded hardware buffer: an identifier containing mshr/queue/pend/
// inflight/fifo, or exactly q/pq.
func capacityFlavoured(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		lower := strings.ToLower(id.Name)
		for _, w := range []string{"mshr", "queue", "pend", "inflight", "fifo"} {
			if strings.Contains(lower, w) {
				found = true
				return false
			}
		}
		if lower == "q" || lower == "pq" {
			found = true
			return false
		}
		return true
	})
	return found
}

// capacityGuarded reports whether the insert is dominated by a check
// that visibly considers the container's occupancy: an enclosing
// if/for whose init or condition mentions the container (membership
// merge) or its length, or carries a capacity-worded comparison — or a
// preceding early-exit if in an enclosing block doing the same.
func capacityGuarded(fset *token.FileSet, stack []ast.Node, node ast.Node, container string) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if (containsNode(s.Body, child) || containsNode(s.Else, child)) &&
				(capacityCheck(fset, s.Cond, container) || (s.Init != nil && capacityCheck(fset, s.Init, container))) {
				return true
			}
		case *ast.ForStmt:
			if s.Cond != nil && containsNode(s.Body, child) && capacityCheck(fset, s.Cond, container) {
				return true
			}
		case *ast.BlockStmt:
			if precedingEarlyExit(fset, s, child, container) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // do not look past the enclosing function
		}
		child = stack[i]
	}
	return false
}

// precedingEarlyExit scans the statements of block before child for an
// if whose body unconditionally leaves the block (return, branch or
// panic) and whose init or condition checks the container's occupancy:
// the classic `if len(q) >= cap { return false }` bail-out shape.
func precedingEarlyExit(fset *token.FileSet, block *ast.BlockStmt, child ast.Node, container string) bool {
	for _, st := range block.List {
		if st.Pos() >= child.Pos() {
			break
		}
		ifs, ok := st.(*ast.IfStmt)
		if !ok || !terminates(ifs.Body) {
			continue
		}
		if capacityCheck(fset, ifs.Cond, container) || (ifs.Init != nil && capacityCheck(fset, ifs.Init, container)) {
			return true
		}
	}
	return false
}

// terminates reports whether the block's last statement unconditionally
// transfers control out of the surrounding flow.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "panic"
	}
	return false
}

// capacityCheck reports whether the init statement or condition
// expression visibly considers the container: it mentions the container
// itself or len(container), or compares something capacity-worded
// (cap/limit/max/size/budget/free/busy/room/full).
func capacityCheck(fset *token.FileSet, n ast.Node, container string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		switch e := x.(type) {
		case *ast.CallExpr:
			if fn, ok := e.Fun.(*ast.Ident); ok && fn.Name == "len" && len(e.Args) == 1 &&
				exprString(fset, e.Args[0]) == container {
				found = true
				return false
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				if capacityWorded(e.X) || capacityWorded(e.Y) {
					found = true
					return false
				}
			}
		case ast.Expr:
			if exprString(fset, e) == container {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// capacityWorded reports whether the expression mentions an identifier
// that names a bound: cap, limit, max, size, budget, free, busy, room
// or full.
func capacityWorded(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		lower := strings.ToLower(id.Name)
		for _, w := range []string{"cap", "limit", "max", "size", "budget", "free", "busy", "room", "full"} {
			if strings.Contains(lower, w) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
