package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, linttest.Fixture(lint.HotAlloc))
}
