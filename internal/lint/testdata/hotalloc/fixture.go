// Fixtures for the hotalloc analyzer: functions reachable from a
// //pmp:hotpath root must not contain allocation-causing constructs
// unless the line carries a //pmp:allocok justification. Exempt shapes
// — buffer recycling via x[:0], capacity-guarded appends, and code the
// roots never reach — must stay silent.
package fixture

import "fmt"

type dev struct {
	n     int
	buf   []uint64
	limit int
	name  string
}

// step is the per-access path.
//
//pmp:hotpath
func (d *dev) step(x uint64) {
	d.direct(x)
	f := func() { d.n++ } // want "function literal may allocate its closure on the hot path"
	f()
}

// direct is hot by one hop of static reachability.
func (d *dev) direct(x uint64) {
	t := make([]uint64, 8) // want "make allocates on the hot path"
	_ = t
	p := new(dev) // want "new allocates on the hot path"
	_ = p
	m := map[uint64]int{} // want "map literal allocates on the hot path"
	_ = m
	d.buf = append(d.buf, x)   // want "append may grow d.buf on the hot path"
	s := fmt.Sprintf("%d", x)  // want "fmt.Sprintf formats and boxes its arguments on the hot path"
	label := d.name + "suffix" // want "string concatenation allocates on the hot path"
	_, _ = s, label
}

// take's parameter is an interface: non-pointer-shaped arguments box.
func (d *dev) take(v any) { _ = v }

func (d *dev) boxes(x uint64) {
	d.take(x) // want "boxes a uint64 into an interface on the hot path"
	d.take(d) // pointer-shaped: no allocation, no diagnostic
	d.take(3) // constant: materialized in static data, no diagnostic
}

// issuer is dispatched through an interface from the root, so its
// in-package implementation is hot too.
type issuer interface{ issue(n int) }

type impl struct{ q []int }

func (i *impl) issue(n int) {
	i.q = make([]int, n) // want "make allocates on the hot path"
}

//pmp:hotpath
func drive(v issuer, d *dev) {
	v.issue(4)
	d.boxes(9)
}

// --- exempt shapes: no diagnostics below this line ---

// recycle appends into buffers reset with the x[:0] idiom.
func (d *dev) recycle(xs []uint64) {
	d.buf = append(d.buf[:0], xs...)
	live := d.buf[:0]
	for _, x := range xs {
		if x > 0 {
			live = append(live, x)
		}
	}
	d.buf = live
}

// guarded appends under a visible capacity check.
func (d *dev) guarded(x uint64) {
	if len(d.buf) < d.limit {
		d.buf = append(d.buf, x)
	}
}

// justified carries an allocok annotation for a cold branch.
func (d *dev) justified(x uint64) {
	if d.n == 0 {
		//pmp:allocok one-time lazy init on the first access only
		d.buf = make([]uint64, 0, 64)
	}
	_ = x
}

//pmp:hotpath
func warm(d *dev, xs []uint64) {
	d.recycle(xs)
	d.guarded(7)
	d.justified(7)
}

// cold is not reachable from any root: anything goes.
func cold() []int {
	return append(make([]int, 0), len(fmt.Sprint("cold")))
}
