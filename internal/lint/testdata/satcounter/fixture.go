// Fixtures for the satcounter analyzer: unguarded updates of fields
// marked as saturating counters must be flagged; the guarded idiom and
// the mem.SatInc/SatDec helpers must pass.
package fixture

import "pmp/internal/mem"

type entry struct {
	conf    uint8 // 2-bit saturating confidence
	satHits uint8 // marked by name
	plain   uint64
}

// --- seeded violations ---

func (e *entry) incBad() {
	e.conf++ // want "unguarded"
}

func (e *entry) decBad() {
	e.conf-- // want "unguarded"
}

func (e *entry) addBad() {
	e.satHits += 2 // want "unguarded"
}

// --- clean idiomatic forms ---

func (e *entry) incGuarded(max uint8) {
	if e.conf < max {
		e.conf++
	}
}

func (e *entry) decGuarded() {
	if e.conf > 0 {
		e.conf--
	}
}

func (e *entry) helperOK() {
	e.conf = mem.SatInc(e.conf, 3)
	e.satHits = mem.SatDec(e.satHits, 0)
}

// Unmarked fields are ordinary statistics counters.
func (e *entry) statOK() {
	e.plain++
}

func (e *entry) suppressedOK() {
	//lint:ignore satcounter fixture demonstrates suppression
	e.conf++
}
