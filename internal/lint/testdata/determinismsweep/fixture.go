// Fixtures for the determinism analyzer's job-identity rule. The test
// harness type-checks this package under an import path containing
// "internal/sweep"; wall-clock use is then forbidden inside the
// identity closure (JobID and everything it calls) but fine elsewhere
// (progress reporting legitimately reads the clock).
package fixture

import (
	"fmt"
	"time"
)

// JobID is an identity root by name.
func JobID(name string) string {
	return fmt.Sprintf("%s-%s", name, salt())
}

// salt is inside the identity closure: flagged.
func salt() string {
	return time.Now().String() // want "time.Now inside job-identity code"
}

// snapshotAge is outside the closure: wall-clock is fine here.
func snapshotAge(start time.Time) time.Duration {
	return time.Since(start)
}
