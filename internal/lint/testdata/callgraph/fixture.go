// Fixture for the call-graph unit test: one static call, one concrete
// method call, and one interface dispatch, with a //pmp:hotpath root
// for the reachability assertions. Self-contained (no imports) so the
// test needs no export data.
package fixture

func helper() {}

type device struct{ n int }

func (d *device) method() { helper() }

type actor interface{ act() }

func (d *device) act() { d.n++ }

//pmp:hotpath
func caller(a actor) {
	helper()
	d := &device{}
	d.method()
	a.act()
}

// orphan is reachable from nothing.
func orphan() { helper() }
