// Fixtures for the magicgeometry analyzer: hardcoded 64/6/4096/12
// address arithmetic must be flagged; mem-constant forms and
// non-address word math must pass.
package fixture

import "pmp/internal/mem"

// --- seeded violations ---

func lineIDBad(addr mem.Addr) uint64 {
	return uint64(addr) >> 6 // want "hardcoded geometry literal 6"
}

func keyBad(pc uint64, offset int) uint64 {
	return pc<<6 ^ uint64(offset) // want "hardcoded geometry literal 6"
}

func pageMaskBad(lineAddr uint64) uint64 {
	return lineAddr & 4095 // want "hardcoded geometry literal 4095"
}

func byteAddrBad(line uint64) uint64 {
	return line * 64 // want "hardcoded geometry literal 64"
}

func pageIDBad(a mem.Addr) uint64 {
	return uint64(a) >> 12 // want "hardcoded geometry literal 12"
}

func offsetMaskBad(trigger int) int {
	return trigger & 63 // want "hardcoded geometry literal 63"
}

// --- clean idiomatic forms ---

func lineIDGood(addr mem.Addr) uint64 { return addr.LineID() }

func keyGood(pc uint64, offset int) uint64 {
	return pc<<mem.PageOffsetBits ^ uint64(offset)
}

func regionGood(r mem.Region, a mem.Addr) int { return r.Offset(a) }

// Bit-vector word indexing: 64 is bits-per-word here, not geometry.
func wordMath(h uint64) (int, uint64) { return int(h / 64), h % 64 }

// Whole-expression constants are buffer sizing, not address math.
func bufSize() []byte { return make([]byte, 65*64) }

func suppressedOK(addr mem.Addr) uint64 {
	//lint:ignore magicgeometry fixture demonstrates suppression
	return uint64(addr) >> 6
}
