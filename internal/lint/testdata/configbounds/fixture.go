// Fixtures for the configbounds analyzer: literal field values in
// *Config composite literals must respect the ranges the simulator's
// constructors enforce at run time.
package fixture

// Config mimics the shape of the repo's cache/prefetcher configs: the
// analyzer matches any struct type named "...Config" by field name.
type Config struct {
	Sets            int
	Ways            int
	MSHRs           int
	PQSize          int
	PBEntries       int
	RegionBytes     int
	TriggerBits     int
	PCBits          int
	OPTCounterBits  int
	MonitoringRange int
	LowLevelDegree  int
}

type tunerConfig struct {
	PHTSets int
	FTWays  int
	Degree  int
}

// geometryTable must be ignored: same field names, not a Config type.
type geometryTable struct {
	Sets int
}

// --- seeded violations ---

var badGeometry = Config{
	Sets: 48,  // want "Sets must be a positive power of two"
	Ways: 0,   // want "Ways must be >= 1"
	MSHRs: -1, // want "MSHRs must be >= 1"
	PQSize: -8, // want "PQSize must be >= 0"
}

var badWidths = Config{
	RegionBytes: 96,    // want "RegionBytes must be a power of two in \\[128, 4096\\]"
	TriggerBits: 13,    // want "TriggerBits must be in \\[1, 12\\]"
	PCBits: 0,          // want "PCBits must be in \\[1, 16\\]"
	OPTCounterBits: 17, // want "OPTCounterBits must be in \\[1, 16\\]"
	PBEntries: 0,       // want "PBEntries must be >= 1"
}

// Cross-field checks fire when RegionBytes is literal in the same
// composite: 4096 bytes is 64 lines, needing 6 trigger bits and a
// monitoring range dividing 64.
var badCrossField = Config{
	RegionBytes:     4096,
	TriggerBits:     5, // want "TriggerBits 5 cannot index the 64 lines per region"
	MonitoringRange: 3, // want "MonitoringRange 3 must divide the 64 lines per region"
}

var badDegree = Config{
	LowLevelDegree: 100, // want "LowLevelDegree must be in \\[0, 64\\]"
}

// Suffix matching covers sweep/tuner configs too.
var badTuner = tunerConfig{
	PHTSets: 12, // want "PHTSets must be a positive power of two"
	FTWays: -2,  // want "FTWays must be >= 1"
	Degree: 65,  // want "Degree must be in \\[0, 64\\]"
}

// --- clean forms ---

var good = Config{
	Sets: 64, Ways: 12, MSHRs: 16, PQSize: 8,
	RegionBytes: 4096, TriggerBits: 6, PCBits: 5,
	OPTCounterBits: 5, MonitoringRange: 2, PBEntries: 16,
	LowLevelDegree: 1,
}

// Unlimited degree (0) and empty prefetch queue are legal.
var goodEdges = Config{PQSize: 0, LowLevelDegree: 0, TriggerBits: 12}

// Wider trigger bits than the region needs are fine (Table X sweeps
// sub-line widths), as is a non-literal field the analyzer cannot see.
func scaled(mb int) Config {
	return Config{RegionBytes: 2048, TriggerBits: 9, Sets: 1 << mb}
}

// A field mentioning Sets on a non-Config type stays out of scope.
var plain = geometryTable{Sets: 48}

// Suppression works like every other analyzer.
var suppressed = Config{
	//lint:ignore configbounds modelling a deliberately broken geometry
	Sets: 48,
}
