// Fixtures for the determinism analyzer's wall-clock rule. The test
// harness type-checks this package under an import path containing
// "internal/sim", where any time.Now/time.Since/math/rand call is
// nondeterministic simulated behavior.
package fixture

import (
	"math/rand"
	"time"
)

func latency() uint64 {
	return uint64(time.Now().UnixNano()) // want "time.Now in simulator code"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since in simulator code"
}

func jitter() int {
	return rand.Intn(4) // want "math/rand.Intn in simulator code"
}
