// Fixtures for the determinism analyzer's map-iteration rule: ranging
// over a map whose body reaches a result sink — directly, through a
// helper chain, or through an injected sink-named function value — is
// flagged; collect-then-sort and pure accumulation stay silent.
package fixture

import (
	"fmt"
	"sort"
)

func emitAll(m map[string]int) {
	for k, v := range m { // want "map iteration order over m reaches the fmt output through fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

// The sink is two helper hops away: the fact store propagates it up.
func viaHelpers(m map[string]int) {
	for k := range m { // want "map iteration order over m reaches the fmt output"
		record(k)
	}
}

func record(k string) { log(k) }

func log(k string) { fmt.Println(k) }

// An injected sink-named function value counts even though the call
// graph cannot resolve it.
type tracker struct{ sink func(string) }

func (t *tracker) flush(m map[string]bool) {
	for k := range m { // want "map iteration order over m reaches injected t.sink sink"
		t.sink(k)
	}
}

// --- deterministic shapes: no diagnostics below this line ---

// Collect-then-sort: the loop body only accumulates; the sink sees the
// sorted slice.
func sorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Pure accumulation never reaches a sink.
func tally(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Merging into another map is order-independent.
func merge(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}
