// Fixtures for the capacity analyzer: inserts into bounded
// hardware-buffer-named containers (MSHR files, prefetch queues,
// pending tables, FIFOs) must be dominated by an occupancy or
// membership check.
package fixture

type request struct{ addr uint64 }

type prefetchQueue struct {
	queue    []request
	pending  map[uint64]struct{}
	inflight map[uint64]uint64
	capacity int
}

// --- seeded violations ---

func pushUnchecked(pq *prefetchQueue, r request) {
	pq.queue = append(pq.queue, r) // want "no dominating capacity check"
}

func trackUnchecked(pq *prefetchQueue, r request) {
	pq.pending[r.addr] = struct{}{} // want "no dominating capacity check"
}

func reserveUnchecked(pq *prefetchQueue, line, done uint64) {
	pq.inflight[line] = done // want "no dominating capacity check"
}

func forgottenBailOut(pq *prefetchQueue, r request) {
	// The occupancy check neither encloses the insert nor exits early,
	// so it does not dominate it.
	if len(pq.pending) >= pq.capacity {
		r.addr = 0
	}
	pq.pending[r.addr] = struct{}{} // want "no dominating capacity check"
}

// --- clean idiomatic forms ---

func pushGuarded(pq *prefetchQueue, r request) bool {
	if len(pq.queue) >= pq.capacity {
		return false
	}
	pq.queue = append(pq.queue, r)
	return true
}

func pushEnclosed(pq *prefetchQueue, r request) {
	if len(pq.queue) < pq.capacity {
		pq.queue = append(pq.queue, r)
	}
}

func mergeOnMembership(pq *prefetchQueue, line, done uint64) bool {
	// Reusing an existing entry consumes no new slot, so a membership
	// check dominates the insert.
	if _, held := pq.inflight[line]; held {
		pq.inflight[line] = done
		return true
	}
	busy := len(pq.inflight)
	limit := cap(pq.queue)
	if busy >= limit {
		return false
	}
	pq.inflight[line] = done
	return true
}

func trackAfterDupCheck(pq *prefetchQueue, r request) bool {
	if len(pq.queue) >= pq.capacity {
		return false
	}
	if _, dup := pq.pending[r.addr]; dup {
		return false
	}
	pq.queue = append(pq.queue, r)
	pq.pending[r.addr] = struct{}{}
	return true
}

// Containers without buffer vocabulary are out of scope.
func plainSliceGrowth(out []request, r request) []request {
	out = append(out, r)
	return out
}

// Replacing the whole container is not an insert.
func resetQueue(pq *prefetchQueue) {
	pq.queue = nil
	pq.pending = map[uint64]struct{}{}
}
