// Fixtures for the prefetcherimpl analyzer: every prefetch.Prefetcher
// implementation needs a constant (or construction-time) Name, a
// non-trivial StorageBits, and no exported mutable package state.
package fixture

import (
	"fmt"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

var SharedTable []uint64 // want "exported mutable package state"

// Bad formats its name per call and claims zero storage.
type Bad struct{ ways int }

func (b *Bad) Name() string { return fmt.Sprintf("bad-%dw", b.ways) } // want "constant string"

func (b *Bad) Train(prefetch.Access) {}

func (b *Bad) Issue(int) []prefetch.Request { return nil }

func (b *Bad) OnEvict(mem.Addr) {}

func (b *Bad) OnFill(mem.Addr, prefetch.Level, bool) {}

func (b *Bad) StorageBits() int { return 0 } // want "literal 0"

// Good uses a constant name and accounts its budget.
type Good struct {
	table []uint64
}

func (g *Good) Name() string { return "good" }

func (g *Good) Train(prefetch.Access) {}

func (g *Good) Issue(int) []prefetch.Request { return nil }

func (g *Good) OnEvict(mem.Addr) {}

func (g *Good) OnFill(mem.Addr, prefetch.Level, bool) {}

func (g *Good) StorageBits() int { return len(g.table) * 64 }

// Named computes its name once at construction, which is allowed.
type Named struct {
	name string
}

func NewNamed(ways int) *Named { return &Named{name: fmt.Sprintf("named-%dw", ways)} }

func (n *Named) Name() string { return n.name }

func (n *Named) Train(prefetch.Access) {}

func (n *Named) Issue(int) []prefetch.Request { return nil }

func (n *Named) OnEvict(mem.Addr) {}

func (n *Named) OnFill(mem.Addr, prefetch.Level, bool) {}

func (n *Named) StorageBits() int { return 128 }

// notAPrefetcher has a formatted Name but implements nothing.
type notAPrefetcher struct{ id int }

func (n notAPrefetcher) Name() string { return fmt.Sprintf("x-%d", n.id) }
