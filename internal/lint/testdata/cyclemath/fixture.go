// Fixtures for the cyclemath analyzer: unsigned cycle/timestamp
// subtractions without a dominating comparison must be flagged.
package fixture

type mshr struct {
	readyCycle uint64
	lastStamp  uint64
}

// --- seeded violations ---

func latencyBad(now uint64, m mshr) uint64 {
	return now - m.readyCycle // want "may underflow"
}

func staleBad(now, deadline uint64) bool {
	return now-deadline > 100 // want "may underflow"
}

// --- clean idiomatic forms ---

func latencyGuarded(now uint64, m mshr) uint64 {
	if now >= m.readyCycle {
		return now - m.readyCycle
	}
	return 0
}

func elseGuarded(now uint64, m mshr) uint64 {
	if m.lastStamp > now {
		return 0
	} else {
		return now - m.lastStamp
	}
}

// Signed arithmetic wraps are a different hazard class.
func signedDelta(nowCycle, thenCycle int64) int64 { return nowCycle - thenCycle }

// No time vocabulary: plain index math is out of scope.
func plain(a, b uint64) uint64 { return a - b }

// Constant subtrahend offsets are out of scope.
func backOne(cycle uint64) uint64 { return cycle - 0 }

func suppressedOK(now, startCycle uint64) uint64 {
	//lint:ignore cyclemath monotonic by construction in this fixture
	return now - startCycle
}
