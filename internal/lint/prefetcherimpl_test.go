package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestPrefetcherImpl(t *testing.T) {
	linttest.Run(t, lint.PrefetcherImpl, linttest.Fixture(lint.PrefetcherImpl))
}
