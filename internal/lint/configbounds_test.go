package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestConfigBounds(t *testing.T) {
	linttest.Run(t, lint.ConfigBounds, linttest.Fixture(lint.ConfigBounds))
}
