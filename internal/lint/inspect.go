package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// walkStack traverses the subtree rooted at root (a file for whole-file
// analyzers, a function body for the call-graph-scoped ones) calling fn
// with each node and the stack of its ancestors (outermost first, not
// including the node itself). Returning false from fn skips the node's
// children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			// ast.Inspect still calls us with nil for this node's "pop"
			// only if we return true, so push regardless and descend;
			// callers that return false genuinely prune the subtree.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// exprString renders an expression compactly ("p.cfg.Cycle").
func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	printer.Fprint(&sb, fset, e)
	return sb.String()
}

// guardedBy reports whether some enclosing if/for condition in the
// stack contains a comparison that mentions the rendered expression
// target. It is a syntactic dominance approximation: `if a >= b { d :=
// a - b }` is considered guarded for both "a" and "b". The else branch
// counts too — the inverse inequality holds there, and either way the
// author has visibly considered the ordering.
func guardedBy(fset *token.FileSet, stack []ast.Node, node ast.Node, target string) bool {
	child := node
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.IfStmt:
			if (containsNode(s.Body, child) || containsNode(s.Else, child)) && condMentions(fset, s.Cond, target) {
				return true
			}
		case *ast.ForStmt:
			if s.Cond != nil && containsNode(s.Body, child) && condMentions(fset, s.Cond, target) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // do not look past the enclosing function
		}
		child = stack[i]
	}
	return false
}

// containsNode reports whether outer's subtree contains n (by position;
// nodes come from one file).
func containsNode(outer ast.Node, n ast.Node) bool {
	return outer != nil && n != nil && outer.Pos() <= n.Pos() && n.End() <= outer.End()
}

// condMentions reports whether the condition contains a comparison
// operator with the target expression on either side.
func condMentions(fset *token.FileSet, cond ast.Expr, target string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || found {
			return !found
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if exprString(fset, be.X) == target || exprString(fset, be.Y) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncName returns the name of the innermost function
// declaration on the stack ("" when at package scope).
func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}
