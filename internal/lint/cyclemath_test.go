package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestCycleMath(t *testing.T) {
	linttest.Run(t, lint.CycleMath, linttest.Fixture(lint.CycleMath))
}
