package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ConfigBounds validates literal field values in *Config composite
// literals against the legal ranges the simulator's constructors
// enforce at run time (internal/core/config.go, internal/cache,
// internal/sim). Experiment sweeps build many configs from literals;
// an out-of-range value either panics deep inside a harness run or —
// worse — silently models impossible hardware (a 3-way set index, a
// 100-line prefetch degree no issue budget can consume). Checking the
// literals statically moves the failure to lint time.
//
// Enforced bounds, keyed by field name within any struct type named
// "...Config":
//
//   - ...Sets        positive power of two (set index is a bit mask)
//   - ...Ways        >= 1
//   - MSHRs          >= 1
//   - PQSize         >= 0
//   - PBEntries      >= 1
//   - RegionBytes    power of two in [128, 4096] (two lines .. one page)
//   - TriggerBits    in [1, 12]; >= log2(lines/region) when RegionBytes
//     is literal in the same composite
//   - PCBits         in [1, 16]
//   - ...CounterBits in [1, 16]
//   - MonitoringRange >= 1; divides lines/region when RegionBytes is
//     literal in the same composite
//   - ...Degree...   in [0, 64] (a region covers at most 64 lines, so
//     larger degrees exceed any issue budget)
var ConfigBounds = &Analyzer{
	Name: "configbounds",
	Doc: "validates literal fields of *Config composite literals against the ranges " +
		"the constructors enforce (power-of-two geometry, bit widths, issue-budget caps)",
	Run: runConfigBounds,
}

func runConfigBounds(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isConfigStruct(pass.Pkg.Info, cl) {
				return true
			}
			checkConfigLiteral(pass, cl)
			return true
		})
	}
}

// isConfigStruct reports whether the composite literal builds a struct
// whose named type ends in "Config" (cache.Config, core.Config,
// bingo.Config, ...).
func isConfigStruct(info *types.Info, cl *ast.CompositeLit) bool {
	tv, ok := info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	return strings.HasSuffix(named.Obj().Name(), "Config")
}

// literalFields extracts the integer-constant keyed elements of the
// composite literal: field name -> (value, expr).
type literalField struct {
	val  int64
	expr ast.Expr
}

func checkConfigLiteral(pass *Pass, cl *ast.CompositeLit) {
	fields := map[string]literalField{}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		tv, ok := pass.Pkg.Info.Types[kv.Value]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		v, ok := constant.Int64Val(tv.Value)
		if !ok {
			continue
		}
		fields[key.Name] = literalField{val: v, expr: kv.Value}
	}

	// lines/region, when derivable from a literal RegionBytes in the
	// same composite (64-byte lines throughout the repo).
	patternLen := 0
	if rb, ok := fields["RegionBytes"]; ok && rb.val >= 128 && rb.val <= 4096 && rb.val&(rb.val-1) == 0 {
		patternLen = int(rb.val / 64)
	}

	names := make([]string, 0, len(fields))
	for name := range fields {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fields[name]
		switch {
		case strings.HasSuffix(name, "Sets"):
			if f.val < 1 || f.val&(f.val-1) != 0 {
				pass.Reportf(f.expr.Pos(), "%s must be a positive power of two (set index is a bit mask), got %d", name, f.val)
			}
		case strings.HasSuffix(name, "Ways"):
			if f.val < 1 {
				pass.Reportf(f.expr.Pos(), "%s must be >= 1, got %d", name, f.val)
			}
		case name == "MSHRs" || name == "PBEntries":
			if f.val < 1 {
				pass.Reportf(f.expr.Pos(), "%s must be >= 1, got %d", name, f.val)
			}
		case name == "PQSize":
			if f.val < 0 {
				pass.Reportf(f.expr.Pos(), "%s must be >= 0, got %d", name, f.val)
			}
		case name == "RegionBytes":
			if f.val < 128 || f.val > 4096 || f.val&(f.val-1) != 0 {
				pass.Reportf(f.expr.Pos(), "RegionBytes must be a power of two in [128, 4096] (two lines to one page), got %d", f.val)
			}
		case name == "TriggerBits":
			if f.val < 1 || f.val > 12 {
				pass.Reportf(f.expr.Pos(), "TriggerBits must be in [1, 12], got %d", f.val)
			} else if patternLen > 0 && f.val < int64(log2int(patternLen)) {
				pass.Reportf(f.expr.Pos(), "TriggerBits %d cannot index the %d lines per region (need >= %d)",
					f.val, patternLen, log2int(patternLen))
			}
		case name == "PCBits":
			if f.val < 1 || f.val > 16 {
				pass.Reportf(f.expr.Pos(), "PCBits must be in [1, 16], got %d", f.val)
			}
		case strings.HasSuffix(name, "CounterBits"):
			if f.val < 1 || f.val > 16 {
				pass.Reportf(f.expr.Pos(), "%s must be in [1, 16], got %d", name, f.val)
			}
		case name == "MonitoringRange":
			if f.val < 1 {
				pass.Reportf(f.expr.Pos(), "MonitoringRange must be >= 1, got %d", f.val)
			} else if patternLen > 0 && patternLen%int(f.val) != 0 {
				pass.Reportf(f.expr.Pos(), "MonitoringRange %d must divide the %d lines per region", f.val, patternLen)
			}
		case strings.Contains(name, "Degree"):
			if f.val < 0 || f.val > 64 {
				pass.Reportf(f.expr.Pos(), "%s must be in [0, 64] (a region covers at most 64 lines), got %d", name, f.val)
			}
		}
	}
}

// log2int returns floor(log2(v)) for v >= 1.
func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
