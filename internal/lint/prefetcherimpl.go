package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PrefetcherImpl enforces the implementation contract on every type
// that implements prefetch.Prefetcher:
//
//   - Name() must return a constant string or a field computed at
//     construction, never per-call formatting (names key result maps
//     and must be stable and allocation-free);
//   - StorageBits() must be non-trivial (`return 0` means the Table
//     III / Table V overhead comparison silently reports a free
//     prefetcher);
//   - the package must not export mutable package-level state (two
//     simulator instances in one process must not share tables).
var PrefetcherImpl = &Analyzer{
	Name: "prefetcherimpl",
	Doc: "checks prefetch.Prefetcher implementations: constant Name(), " +
		"non-trivial StorageBits(), no exported mutable package state",
	Run: runPrefetcherImpl,
}

func runPrefetcherImpl(pass *Pass) {
	iface := prefetcherInterface(pass.Pkg.Types)
	if iface == nil {
		return
	}
	scope := pass.Pkg.Types.Scope()
	var impls []*types.TypeName
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			impls = append(impls, tn)
		}
	}
	if len(impls) == 0 {
		return
	}
	for _, tn := range impls {
		checkNameMethod(pass, tn)
		checkStorageBitsMethod(pass, tn)
	}
	checkExportedState(pass)
}

// prefetcherInterface finds the prefetch.Prefetcher interface among the
// package's imports. The defining package itself is exempt: its Nop
// baseline intentionally reports zero storage.
func prefetcherInterface(pkg *types.Package) *types.Interface {
	for _, imp := range pkg.Imports() {
		if !strings.HasSuffix(imp.Path(), "internal/prefetch") {
			continue
		}
		obj, ok := imp.Scope().Lookup("Prefetcher").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	return nil
}

// methodDecl finds the AST declaration of the named method with a
// receiver of the given type, or nil when it is not declared in this
// package (e.g. promoted from an embedded type).
func methodDecl(pkg *Package, tn *types.TypeName, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name || len(fd.Recv.List) != 1 {
				continue
			}
			recv := fd.Recv.List[0].Type
			if se, ok := recv.(*ast.StarExpr); ok {
				recv = se.X
			}
			if id, ok := ast.Unparen(recv).(*ast.Ident); ok && id.Name == tn.Name() {
				return fd
			}
		}
	}
	return nil
}

// checkNameMethod requires every return in Name() to produce a constant
// string or read a plain field (set once at construction).
func checkNameMethod(pass *Pass, tn *types.TypeName) {
	fd := methodDecl(pass.Pkg, tn, "Name")
	if fd == nil || fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		e := ast.Unparen(ret.Results[0])
		if tv, ok := pass.Pkg.Info.Types[e]; ok && tv.Value != nil {
			return true // constant string
		}
		if fieldObject(pass.Pkg.Info, e) != nil {
			return true // name field computed at construction
		}
		pass.Reportf(ret.Pos(), "%s.Name() must return a constant string or a name field, "+
			"not compute %q per call", tn.Name(), exprString(pass.Pkg.Fset, ret.Results[0]))
		return true
	})
}

// checkStorageBitsMethod flags StorageBits bodies that are just
// `return 0`.
func checkStorageBitsMethod(pass *Pass, tn *types.TypeName) {
	fd := methodDecl(pass.Pkg, tn, "StorageBits")
	if fd == nil || fd.Body == nil || len(fd.Body.List) != 1 {
		return
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return
	}
	if lit, ok := ast.Unparen(ret.Results[0]).(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value == "0" {
		pass.Reportf(ret.Pos(), "%s.StorageBits() returns the literal 0; "+
			"account the hardware budget (Table III/V comparisons treat this as a free prefetcher)", tn.Name())
	}
}

// checkExportedState flags exported package-level variables in a
// package that hosts a Prefetcher implementation.
func checkExportedState(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.IsExported() {
						pass.Reportf(name.Pos(), "exported mutable package state %q in a prefetcher package; "+
							"keep all state per-instance so simulator instances stay independent", name.Name)
					}
				}
			}
		}
	}
}
