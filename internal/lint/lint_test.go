package lint

import (
	"go/ast"
	"testing"
)

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("ByName(nil) = %d analyzers, err %v", len(all), err)
	}
	one, err := ByName([]string{"magicgeometry"})
	if err != nil || len(one) != 1 || one[0] != MagicGeometry {
		t.Fatalf("ByName(magicgeometry) = %v, err %v", one, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(nope) should error")
	}
}

func TestIgnoreDirective(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//lint:ignore magicgeometry fixture reason", []string{"magicgeometry"}, true},
		{"//lint:ignore cyclemath,satcounter both need it", []string{"cyclemath", "satcounter"}, true},
		{"//lint:ignore all everything", []string{"all"}, true},
		{"//lint:ignore magicgeometry", nil, false}, // no reason: malformed
		{"// ordinary comment", nil, false},
	}
	for _, c := range cases {
		names, ok := ignoreDirective(&ast.Comment{Text: c.text})
		if ok != c.ok {
			t.Errorf("ignoreDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("ignoreDirective(%q) = %v, want %v", c.text, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("ignoreDirective(%q) = %v, want %v", c.text, names, c.names)
			}
		}
	}
}

// TestRepoIsClean is the repo-wide gate in test form: the analyzer
// suite must report nothing on the repository itself. This is what
// `go run ./cmd/pmplint ./...` checks in CI; having it as a test too
// means plain `go test ./...` catches regressions.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("Load found only %d packages; loader is missing targets", len(pkgs))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("repo violation: %s", d)
	}
}
