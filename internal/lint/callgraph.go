package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// This file is the cross-package half of the framework: an intra-module
// call graph over every loaded package plus a per-function fact store,
// mirroring the golang.org/x/tools/go/analysis Fact shape. Analyzers
// that need whole-program views (hotalloc's hot-path reachability,
// determinism's sink propagation) build on it; the original per-package
// analyzers ignore it entirely.
//
// Packages are loaded and type-checked independently (each with its own
// token.FileSet, dependencies coming from export data), so the same
// function is represented by *different* types.Func objects in
// different packages. Nodes are therefore keyed by the canonical
// types.Func.FullName string ("(*pmp/internal/cache.Cache).Lookup"),
// which is identical whether the object came from source or from
// export data.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a package-level function.
	EdgeStatic EdgeKind = iota
	// EdgeMethod is a method call on a concrete receiver.
	EdgeMethod
	// EdgeInterface is a conservatively expanded interface dispatch:
	// one edge per in-module method that can satisfy the call.
	EdgeInterface
)

// Edge is one resolved call site.
type Edge struct {
	Caller *Func
	Callee *Func
	Kind   EdgeKind
	Pos    token.Position // call site (zero for synthesized edges)
}

// Func is one node of the call graph: a declared function or method.
// Functions defined outside the loaded packages (standard library,
// export-data-only dependencies) get nodes too — so analyzers can test
// for edges into time.Now or fmt.Fprintf — but carry no Decl or Pkg.
type Func struct {
	Key  string        // canonical types.Func.FullName
	Pkg  *Package      // defining package; nil when external
	Decl *ast.FuncDecl // body; nil when external

	// HotRoot is set when the declaration carries a //pmp:hotpath
	// annotation in its doc comment.
	HotRoot bool

	Callees []*Edge
	Callers []*Edge
}

// Name returns a compact human-readable name ("(*Core).step").
func (f *Func) Name() string {
	key := f.Key
	// Strip package paths from the receiver and name for display.
	if i := strings.LastIndex(key, "/"); i >= 0 && !strings.Contains(key, ")") {
		return key[i+1:]
	}
	if open := strings.Index(key, "("); open >= 0 {
		if close := strings.Index(key, ")"); close > open {
			recv := key[open+1 : close]
			if i := strings.LastIndex(recv, "/"); i >= 0 {
				recv = recv[i+1:]
			}
			return "(" + recv + ")" + key[close+1:]
		}
	}
	return key
}

// Fact is a piece of per-function information an analyzer computes and
// stores on the Program, mirroring golang.org/x/tools/go/analysis.Fact:
// a pointer-to-struct with an AFact marker method. Facts are keyed by
// (function, concrete fact type), so independent analyzers never
// collide.
type Fact interface{ AFact() }

type factKey struct {
	fn *Func
	t  reflect.Type
}

// Program is the whole-module view: every loaded package, the call
// graph spanning them, and the fact store. Build one with NewProgram
// and share it across analyzers via Pass.Prog.
type Program struct {
	Pkgs  []*Package
	funcs map[string]*Func

	facts map[factKey]Fact

	// singleUnit marks a Program built from one vet-tool unit: only one
	// package's source is visible, so cross-package analyses degrade to
	// intra-package scope and suppression-hygiene reporting is skipped
	// (a directive may be "used" only via packages this unit can't see).
	singleUnit bool

	hotOnce   bool
	hotInfo   map[*Func]hotPath
	sinkOnce  bool
	implCache map[*types.Interface][]*types.Named
}

// hotPath records how a function became hot-path reachable.
type hotPath struct {
	root *Func // the //pmp:hotpath annotated root
	via  *Func // immediate caller on the BFS path (nil for the root itself)
}

// NewProgram builds the call graph for the loaded packages. Packages
// are processed in dependency order (imports before importers) so
// bottom-up fact computation sees callees first.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:  topoSort(pkgs),
		funcs: map[string]*Func{},
		facts: map[factKey]Fact{},
	}
	// Pass 1: declare every source function so call resolution can
	// attach bodies regardless of package order.
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fn := p.node(funcKey(obj))
				fn.Pkg = pkg
				fn.Decl = fd
				fn.HotRoot = hasDirective(fd.Doc, "//pmp:hotpath")
			}
		}
	}
	// Pass 2: resolve call sites.
	for _, pkg := range p.Pkgs {
		p.addPackageEdges(pkg)
	}
	return p
}

// FuncByName returns the node whose canonical key is key, or nil.
func (p *Program) FuncByName(key string) *Func { return p.funcs[key] }

// Functions returns every node in deterministic key order.
func (p *Program) Functions() []*Func {
	keys := make([]string, 0, len(p.funcs))
	for k := range p.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Func, len(keys))
	for i, k := range keys {
		out[i] = p.funcs[k]
	}
	return out
}

// ExportFact stores fact for fn, replacing any existing fact of the
// same concrete type.
func (p *Program) ExportFact(fn *Func, fact Fact) {
	p.facts[factKey{fn, reflect.TypeOf(fact)}] = fact
}

// ImportFact copies fn's fact of ptr's concrete type into ptr and
// reports whether one was stored. ptr must be a pointer to a struct,
// as with x/tools facts.
func (p *Program) ImportFact(fn *Func, ptr Fact) bool {
	got, ok := p.facts[factKey{fn, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// BottomUp visits every in-module function callees-first (post-order
// over the call graph, cycles broken at the back edge), the order in
// which bottom-up fact computation wants to run. Analyzers whose facts
// must converge across cycles should iterate to a fixed point on top
// of this ordering.
func (p *Program) BottomUp(visit func(*Func)) {
	seen := map[*Func]bool{}
	var walk func(fn *Func)
	walk = func(fn *Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, e := range fn.Callees {
			walk(e.Callee)
		}
		if fn.Decl != nil {
			visit(fn)
		}
	}
	for _, fn := range p.Functions() {
		walk(fn)
	}
}

// topoSort orders packages dependency-first (a package after every
// package it imports), falling back to input order among unrelated
// packages.
func topoSort(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, pkg := range pkgs {
		byPath[pkg.ImportPath] = pkg
	}
	var out []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(pkg *Package)
	visit = func(pkg *Package) {
		switch state[pkg.ImportPath] {
		case 1, 2:
			return
		}
		state[pkg.ImportPath] = 1
		for _, imp := range pkg.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		state[pkg.ImportPath] = 2
		out = append(out, pkg)
	}
	for _, pkg := range pkgs {
		visit(pkg)
	}
	return out
}

// node returns (creating if needed) the Func for key.
func (p *Program) node(key string) *Func {
	fn, ok := p.funcs[key]
	if !ok {
		fn = &Func{Key: key}
		p.funcs[key] = fn
	}
	return fn
}

// funcKey canonicalizes a types.Func to its node key. Instantiated
// generic methods collapse onto their origin so one node covers every
// instantiation.
func funcKey(obj *types.Func) string {
	if o := obj.Origin(); o != nil {
		obj = o
	}
	return obj.FullName()
}

// hasDirective reports whether the comment group contains a line whose
// text starts with the directive (exact or followed by a space).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// addPackageEdges resolves every call site in the package to edges.
// Calls inside function literals are attributed to the enclosing
// declared function — the closure runs on the caller's path. Calls
// through plain function values (fields, parameters) are unresolvable
// statically and are skipped: the graph under-approximates dynamic
// dispatch through stored closures, and over-approximates interface
// dispatch (every in-module implementation gets an edge).
func (p *Program) addPackageEdges(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			caller := p.node(funcKey(obj))
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				p.addCallEdges(pkg, caller, call)
				return true
			})
		}
	}
}

// addCallEdges resolves one call expression into graph edges.
func (p *Program) addCallEdges(pkg *Package, caller *Func, call *ast.CallExpr) {
	pos := pkg.Fset.Position(call.Lparen)
	for _, rc := range p.resolveCall(pkg, call) {
		p.edge(caller, rc.fn, rc.kind, pos)
	}
}

// resolvedCallee is one possible target of a call expression.
type resolvedCallee struct {
	fn   *Func
	kind EdgeKind
}

// resolveCall resolves a call expression to its possible callees:
// exactly one for direct and concrete-method calls, the interface
// method plus every in-module implementation for interface dispatch,
// and none for calls through plain function values (closures stored in
// fields or passed as parameters), which are statically unresolvable.
// Both the graph builder and the determinism analyzer's loop-body scan
// share this resolution, so the two views can never disagree.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) []resolvedCallee {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// Direct call: package-level function from this or a dot-free
		// import (builtins and type conversions resolve to non-Func
		// objects and are skipped).
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return []resolvedCallee{{p.node(funcKey(obj)), EdgeStatic}}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			obj, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				// Interface dispatch: the interface method itself (so
				// stdlib sinks like (io.Writer).Write stay visible)
				// plus one callee per in-module implementation.
				out := []resolvedCallee{{p.node(funcKey(obj)), EdgeInterface}}
				if iface, _ := sel.Recv().Underlying().(*types.Interface); iface != nil {
					for _, impl := range p.implementations(iface) {
						mo, _, _ := types.LookupFieldOrMethod(impl, true, impl.Obj().Pkg(), obj.Name())
						if m, ok := mo.(*types.Func); ok {
							out = append(out, resolvedCallee{p.node(funcKey(m)), EdgeInterface})
						}
					}
				}
				return out
			}
			return []resolvedCallee{{p.node(funcKey(obj)), EdgeMethod}}
		}
		// Qualified call: pkg.Func (no selection entry).
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return []resolvedCallee{{p.node(funcKey(obj)), EdgeStatic}}
		}
	}
	return nil
}

// implementations returns every named type declared in the loaded
// packages that implements iface (by value or pointer receiver).
// Results are memoized per interface: dispatch sites are common and
// the scan walks every package scope.
func (p *Program) implementations(iface *types.Interface) []*types.Named {
	if impls, ok := p.implCache[iface]; ok {
		return impls
	}
	var out []*types.Named
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if implementsCross(named, iface) {
				out = append(out, named)
			}
		}
	}
	if p.implCache == nil {
		p.implCache = map[*types.Interface][]*types.Named{}
	}
	p.implCache[iface] = out
	return out
}

// implementsCross reports whether named (or *named) implements iface,
// tolerating the two types coming from different type-check universes.
// Each loaded package is checked independently, so the "same" named
// type appears as distinct types.Object trees per package and
// types.Implements — which compares objects by identity — reports
// false across packages. The fallback compares method signatures
// structurally, rendered with full package paths, which is identical
// exactly when the toolchain would consider the types identical.
func implementsCross(named *types.Named, iface *types.Interface) bool {
	if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
		return true
	}
	n := iface.NumMethods()
	if n == 0 {
		return false // any matches nothing callable
	}
	for i := 0; i < n; i++ {
		im := iface.Method(i)
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, named.Obj().Pkg(), im.Name())
		m, ok := obj.(*types.Func)
		if !ok || !sameSignature(m, im) {
			return false
		}
	}
	return true
}

// pathQual renders package names as full import paths, so type strings
// from different universes compare equal iff the types are identical.
func pathQual(p *types.Package) string { return p.Path() }

// sameSignature compares two methods' signatures structurally,
// ignoring the receiver.
func sameSignature(a, b *types.Func) bool {
	return types.TypeString(stripRecv(a), pathQual) == types.TypeString(stripRecv(b), pathQual)
}

// stripRecv returns the method's signature with the receiver removed.
func stripRecv(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return f.Type()
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

// edge links caller -> callee, deduplicating repeated resolutions of
// the same (caller, callee, kind) triple.
func (p *Program) edge(caller, callee *Func, kind EdgeKind, pos token.Position) {
	for _, e := range caller.Callees {
		if e.Callee == callee && e.Kind == kind {
			return
		}
	}
	e := &Edge{Caller: caller, Callee: callee, Kind: kind, Pos: pos}
	caller.Callees = append(caller.Callees, e)
	callee.Callers = append(callee.Callers, e)
}

// --- hot-path reachability (used by hotalloc) ---

// HotPathRoots returns every //pmp:hotpath annotated function, in key
// order.
func (p *Program) HotPathRoots() []*Func {
	var roots []*Func
	for _, fn := range p.Functions() {
		if fn.HotRoot {
			roots = append(roots, fn)
		}
	}
	return roots
}

// HotPath reports whether fn is reachable from a //pmp:hotpath root,
// and if so the root and the immediate caller on the discovery path
// (via == nil when fn is itself a root). The reachability closure is
// computed once per Program.
func (p *Program) HotPath(fn *Func) (root, via *Func, hot bool) {
	if !p.hotOnce {
		p.hotOnce = true
		p.hotInfo = map[*Func]hotPath{}
		queue := p.HotPathRoots()
		for _, r := range queue {
			p.hotInfo[r] = hotPath{root: r}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			info := p.hotInfo[fn]
			for _, e := range fn.Callees {
				if _, seen := p.hotInfo[e.Callee]; seen {
					continue
				}
				p.hotInfo[e.Callee] = hotPath{root: info.root, via: fn}
				queue = append(queue, e.Callee)
			}
		}
	}
	info, ok := p.hotInfo[fn]
	return info.root, info.via, ok
}
