package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestSatCounter(t *testing.T) {
	linttest.Run(t, lint.SatCounter, linttest.Fixture(lint.SatCounter))
}
