package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SatCounter flags bare ++/--/+=/-= on struct fields documented or
// named as saturating counters. Hardware confidence counters clamp at
// their ceiling; an unguarded increment models an impossible counter
// width and eventually wraps, so marked fields must be updated behind a
// ceiling comparison or through the mem.SatInc/mem.SatDec helpers.
var SatCounter = &Analyzer{
	Name: "satcounter",
	Doc: "flags unguarded ++/--/+=/-= on fields marked as saturating counters; " +
		"guard against the ceiling or use mem.SatInc/mem.SatDec",
	Run: runSatCounter,
}

func runSatCounter(pass *Pass) {
	marked := markedSaturating(pass.Pkg)
	if len(marked) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			var lhs ast.Expr
			var op string
			switch s := n.(type) {
			case *ast.IncDecStmt:
				lhs = s.X
				op = s.Tok.String()
			case *ast.AssignStmt:
				if s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN || len(s.Lhs) != 1 {
					return true
				}
				lhs = s.Lhs[0]
				op = s.Tok.String()
			default:
				return true
			}
			field := fieldObject(pass.Pkg.Info, lhs)
			if field == nil || !marked[field] {
				return true
			}
			target := exprString(pass.Pkg.Fset, lhs)
			if guardedBy(pass.Pkg.Fset, stack, n, target) {
				return true
			}
			pass.Reportf(n.Pos(), "unguarded %q on saturating counter %s; "+
				"compare against its ceiling first or use mem.SatInc/mem.SatDec", op, target)
			return true
		})
	}
}

// fieldObject resolves the updated expression to the struct field it
// touches, looking through indexing (scores[i]++) and pointer derefs.
func fieldObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			obj := info.Uses[x.Sel]
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		case *ast.Ident:
			obj := info.Uses[x]
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// markedSaturating collects the field objects whose declaration marks
// them as saturating: "saturat..." in the doc or line comment, or a
// name containing "sat" as a word prefix ("satConf", "confSat").
func markedSaturating(pkg *Package) map[types.Object]bool {
	marked := map[types.Object]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !saturatingMark(field) {
					continue
				}
				for _, name := range field.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

func saturatingMark(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg != nil && strings.Contains(strings.ToLower(cg.Text()), "saturat") {
			return true
		}
	}
	for _, name := range field.Names {
		lower := strings.ToLower(name.Name)
		if strings.HasPrefix(lower, "sat") || strings.HasSuffix(lower, "sat") {
			return true
		}
	}
	return false
}
