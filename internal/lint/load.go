package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test source files, in GoFiles order
	Types      *types.Package
	Info       *types.Info

	ignores  map[string][]*directiveLine
	allocOKs map[string][]*directiveLine
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	ImportMap  map[string]string
	Incomplete bool
	Error      *struct{ Err string }
}

// list runs `go list -e -export -deps -json` for the patterns and
// returns the decoded packages (dependency closure included).
func list(dir string, patterns []string) ([]listedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// Load lists the given package patterns (from dir, which must be inside
// the module), builds export data for all dependencies, and parses and
// type-checks every matched non-test package from source.
//
// Loading shells out to the go tool exactly once; dependencies are
// imported from the toolchain's export data rather than re-type-checked,
// which keeps a whole-repo lint run well under a second.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{} // import path -> export data file
	var targets []*listedPackage
	for i := range listed {
		lp := &listed[i]
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typecheck(t.ImportPath, t.Dir, t.GoFiles, lookupFunc(exports, t.ImportMap))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportIndex returns the import-path -> export-data-file map for the
// patterns' full dependency closure. Test harnesses use it to
// type-check fixture files against the repository's real packages.
func ExportIndex(dir string, patterns ...string) (map[string]string, error) {
	listed, err := list(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	return exports, nil
}

// TypecheckPackage parses and type-checks the given files as one
// package, resolving imports through the export index.
func TypecheckPackage(importPath, dir string, files []string, exports, importMap map[string]string) (*Package, error) {
	return typecheck(importPath, dir, files, lookupFunc(exports, importMap))
}

// lookupFunc resolves import paths to export data readers, honouring
// the package's ImportMap (vendoring / module version indirections).
func lookupFunc(exports map[string]string, importMap map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// typecheck parses the given files and type-checks them against export
// data supplied by lookup.
func typecheck(importPath, dir string, files []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range files {
		path := name
		if dir != "" && !strings.HasPrefix(name, "/") {
			path = dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", path, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
	}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      syntax,
		Types:      tpkg,
		Info:       info,
	}
	pkg.collectIgnores()
	return pkg, nil
}
