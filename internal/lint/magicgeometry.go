package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// MagicGeometry flags hardcoded cache-geometry arithmetic (64, 4096,
// shift-by-6/12, masks 63/4095) applied to address-flavoured operands
// outside internal/mem. Every prefetcher must derive geometry from
// mem.LineBytes / mem.LineShift / mem.PageOffsetBits or a mem.Region,
// so that region-size sweeps (paper §V-C) cannot silently diverge from
// an implementation that baked in 4KB pages.
var MagicGeometry = &Analyzer{
	Name: "magicgeometry",
	Doc: "flags hardcoded 64/6/4096/12 address arithmetic outside internal/mem; " +
		"use mem.LineBytes, mem.LineShift, mem.PageOffsetBits or mem.Region helpers",
	Run: runMagicGeometry,
}

// geometry literal values per operator class.
var (
	shiftGeometry = map[int64]string{
		6:  "mem.LineShift (or mem.PageOffsetBits for offset packing)",
		12: "mem.PageShift",
	}
	maskGeometry = map[int64]string{
		63:   "mem.LinesPerPage-1 (or a mem.Region mask)",
		4095: "mem.PageBytes-1",
	}
	scaleGeometry = map[int64]string{
		64:   "mem.LineBytes (or mem.LinesPerPage)",
		4096: "mem.PageBytes",
	}
)

func runMagicGeometry(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.ImportPath, "internal/mem") {
		return // mem defines the geometry; literals are legitimate there
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			var table map[int64]string
			switch be.Op {
			case token.SHL, token.SHR:
				table = shiftGeometry
			case token.AND, token.AND_NOT, token.OR:
				table = maskGeometry
			case token.QUO, token.REM, token.MUL:
				table = scaleGeometry
			default:
				return true
			}
			// Whole-expression constants (e.g. "65 * 64" buffer sizing in
			// a make call) are not address arithmetic.
			if tv, ok := pass.Pkg.Info.Types[be]; ok && tv.Value != nil {
				return true
			}
			lit, subject := literalOperand(be.X, be.Y)
			if lit == nil {
				return true
			}
			v, err := strconv.ParseInt(lit.Value, 0, 64)
			if err != nil {
				return true
			}
			want, geometric := table[v]
			if !geometric {
				return true
			}
			if !addressFlavoured(pass.Pkg, subject) {
				return true
			}
			pass.Reportf(be.Pos(), "hardcoded geometry literal %s in %q; use %s",
				lit.Value, exprString(pass.Pkg.Fset, be), want)
			return true
		})
	}
}

// literalOperand returns the basic integer literal among (x, y) and the
// other operand, or nil when neither side is a literal. Only syntactic
// literals count: named constants like mem.LineBytes are the fix, not
// the offence.
func literalOperand(x, y ast.Expr) (*ast.BasicLit, ast.Expr) {
	if l, ok := ast.Unparen(x).(*ast.BasicLit); ok && l.Kind == token.INT {
		return l, y
	}
	if l, ok := ast.Unparen(y).(*ast.BasicLit); ok && l.Kind == token.INT {
		return l, x
	}
	return nil, nil
}

// addressFlavoured reports whether the expression plausibly carries an
// address: its static type is mem.Addr, or it mentions an identifier
// whose name is address vocabulary (addr, line, page, region, offset,
// trigger, pc...).
func addressFlavoured(pkg *Package, e ast.Expr) bool {
	if isMemAddr(pkg.Info.Types[e].Type) {
		return true
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if conv, ok := n.(*ast.CallExpr); ok && len(conv.Args) == 1 {
			// Look through conversions like uint64(lineAddr).
			if isMemAddr(pkg.Info.Types[conv.Args[0]].Type) {
				found = true
				return false
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if addressName(id.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isMemAddr reports whether t is the mem.Addr named type.
func isMemAddr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Addr" && obj.Pkg() != nil && obj.Pkg().Name() == "mem"
}

// addressName classifies an identifier as address vocabulary.
func addressName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range []string{"addr", "line", "page", "region", "offset", "trigger"} {
		if strings.Contains(lower, w) {
			return true
		}
	}
	if lower == "pc" || lower == "off" {
		return true
	}
	// pc32, pcHash: "pc" followed by a digit or an uppercase word start.
	if strings.HasPrefix(name, "pc") && len(name) > 2 {
		c := name[2]
		return c >= '0' && c <= '9' || c >= 'A' && c <= 'Z'
	}
	return false
}
