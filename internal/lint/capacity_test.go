package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestCapacity(t *testing.T) {
	linttest.Run(t, lint.Capacity, linttest.Fixture(lint.Capacity))
}
