package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when a vet tool is invoked via `go vet -vettool=pmplint`
// (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunVetUnit analyzes the single package described by the cmd/go vet
// config file and prints diagnostics to w in the standard
// file:line:col form. It reports whether any diagnostics were found.
//
// This implements enough of the x/tools unitchecker protocol for
// `go vet -vettool=$(go env GOBIN)/pmplint ./...` to work: an empty
// facts file is written to VetxOutput so cmd/go can cache the run, and
// VetxOnly invocations (dependency passes) report nothing.
func RunVetUnit(cfgPath string, analyzers []*Analyzer, w io.Writer) (found bool, err error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return false, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		// pmplint analyzers keep no cross-package facts; the file just
		// has to exist for cmd/go's cache bookkeeping.
		if err := os.WriteFile(cfg.VetxOutput, []byte("pmplint\n"), 0o666); err != nil {
			return false, err
		}
	}
	if cfg.VetxOnly {
		return false, nil
	}
	pkg, err := typecheck(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookupFunc(cfg.PackageFile, cfg.ImportMap))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return false, nil
		}
		return false, err
	}
	// One vet unit sees one package's source: cross-package analyses
	// degrade to intra-package scope and suppression hygiene is skipped
	// (see Program.singleUnit). Diagnostics still come out in the
	// canonical sorted order, matching standalone mode.
	prog := NewProgram([]*Package{pkg})
	prog.singleUnit = true
	diags := runProgram(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message)
	}
	return len(diags) > 0, nil
}
