package lint_test

import (
	"testing"

	"pmp/internal/lint"
	"pmp/internal/lint/linttest"
)

func TestMagicGeometry(t *testing.T) {
	linttest.Run(t, lint.MagicGeometry, linttest.Fixture(lint.MagicGeometry))
}
