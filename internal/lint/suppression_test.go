package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const hygieneSrc = `package p

type q struct {
	queue []int
	limit int
}

// used suppresses a real capacity finding: no hygiene report.
func used(s *q, v int) {
	//lint:ignore capacity fixture exercises a used directive
	s.queue = append(s.queue, v)
}

//lint:ignore magicgeometry nothing here triggers it
func stale() {}

//pmp:hotpath
func hot(s *q) {
	//pmp:allocok stale annotation: the append below is capacity-guarded anyway
	if len(s.queue) < s.limit {
		s.queue = append(s.queue, 1)
	}
}
`

func typecheckHygieneSrc(t *testing.T) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(hygieneSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := TypecheckPackage("pmp/fixture/hygiene", dir, []string{"f.go"}, nil, nil)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg
}

// TestUnusedDirectiveHygiene: a full-suite run reports exactly the two
// stale directives (and nothing for the used one), in sorted order.
func TestUnusedDirectiveHygiene(t *testing.T) {
	diags := Run([]*Package{typecheckHygieneSrc(t)}, Analyzers())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 stale-directive reports: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != UnusedIgnoreName {
			t.Errorf("diagnostic %s has analyzer %q, want %q", d, d.Analyzer, UnusedIgnoreName)
		}
	}
	if !strings.Contains(diags[0].Message, "//lint:ignore magicgeometry") {
		t.Errorf("first diagnostic should name the stale ignore, got %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "//pmp:allocok") {
		t.Errorf("second diagnostic should name the stale allocok, got %q", diags[1].Message)
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("diagnostics not in line order: %d then %d", diags[0].Pos.Line, diags[1].Pos.Line)
	}
}

// A partial -analyzers run can never prove a directive stale: only
// directives whose named analyzers all ran are judged.
func TestUnusedDirectivePartialRun(t *testing.T) {
	partial, err := ByName([]string{"capacity", "hotalloc"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{typecheckHygieneSrc(t)}, partial)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "//pmp:allocok") {
		t.Fatalf("partial run should judge only the allocok annotation, got %v", diags)
	}
}

// One vet unit sees one package: hygiene is skipped entirely, since a
// directive may be used only via packages the unit cannot see.
func TestUnusedDirectiveSingleUnit(t *testing.T) {
	prog := NewProgram([]*Package{typecheckHygieneSrc(t)})
	prog.singleUnit = true
	if diags := runProgram(prog, Analyzers()); len(diags) != 0 {
		t.Fatalf("singleUnit run should skip hygiene, got %v", diags)
	}
}

// TestSortDiagnostics pins the canonical total order and duplicate
// suppression.
func TestSortDiagnostics(t *testing.T) {
	mk := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{Analyzer: analyzer, Pos: token.Position{Filename: file, Line: line, Column: col}, Message: msg}
	}
	in := []Diagnostic{
		mk("b.go", 1, 1, "capacity", "z"),
		mk("a.go", 9, 2, "cyclemath", "y"),
		mk("a.go", 9, 2, "capacity", "x"),
		mk("a.go", 9, 2, "capacity", "x"), // duplicate
		mk("a.go", 2, 5, "satcounter", "w"),
	}
	out := sortDiagnostics(in)
	if len(out) != 4 {
		t.Fatalf("got %d diagnostics, want 4 after dedup", len(out))
	}
	want := []string{
		"a.go:2:5: [satcounter] w",
		"a.go:9:2: [capacity] x",
		"a.go:9:2: [cyclemath] y",
		"b.go:1:1: [capacity] z",
	}
	for i, d := range out {
		if d.String() != want[i] {
			t.Errorf("position %d: got %s, want %s", i, d, want[i])
		}
	}
}
