package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Determinism flags the two ways nondeterminism has historically crept
// into this repository's results: map iteration order leaking into an
// output artifact, and wall-clock or randomness feeding simulated
// behavior. Both invariants are enforced at runtime (sha256 job IDs,
// resume-vs-fresh equality, the golden QuickScale digest) but only
// after a regression has already produced a bad artifact; this
// analyzer names the offending loop or call statically.
//
// Rule 1: a `range` over a map whose body reaches a result sink —
// stream/JSONL writes, digest input, CSV/table emit, diagnostic output
// — is flagged unless the iteration is first made deterministic
// (collect the keys, sort, range the sorted slice; such loops contain
// no sink call and naturally pass). Sink reachability is a
// per-function fact propagated bottom-up over the call graph, so a
// loop body that calls three helpers deep into another package is
// still caught.
//
// Rule 2: time.Now/time.Since and math/rand have no place in simulated
// behavior: they are flagged anywhere in internal/sim and
// internal/core, and inside internal/sweep's job-identity closure
// (JobID / *Fingerprint* functions and everything they call), where
// they would make job IDs differ across runs and silently defeat
// resume.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags range-over-map loops whose bodies reach a result sink (store writes, " +
		"digests, CSV/table emit, diagnostics) without a deterministic order, and " +
		"time.Now/math/rand use in simulator and job-identity code",
	Run: runDeterminism,
}

// sinkSeeds maps canonical function keys to a short description of the
// artifact they feed. The set is deliberately conservative: every
// entry writes bytes a person or tool will compare across runs.
var sinkSeeds = map[string]string{
	"fmt.Print":    "fmt output",
	"fmt.Printf":   "fmt output",
	"fmt.Println":  "fmt output",
	"fmt.Fprint":   "fmt output",
	"fmt.Fprintf":  "fmt output",
	"fmt.Fprintln": "fmt output",

	"(io.Writer).Write":     "stream output",
	"(*bufio.Writer).Write": "stream output",
	"(*os.File).Write":      "stream output",

	"encoding/json.Marshal":              "JSON output",
	"encoding/json.MarshalIndent":        "JSON output",
	"(*encoding/json.Encoder).Encode":    "JSON output",
	"(*encoding/csv.Writer).Write":       "CSV output",
	"(*encoding/csv.Writer).WriteAll":    "CSV output",
	"crypto/sha256.Sum256":               "digest input",
	"(*pmp/internal/bench.Table).AddRow": "result table",
	"(*pmp/internal/sweep.Store).Append": "JSONL store",
	"(*pmp/internal/lint.Pass).Reportf":  "diagnostic output",
}

// sinkReach is the per-function fact: this function's body reaches a
// result sink. Computed once per Program, bottom-up, iterated to a
// fixed point so call cycles converge.
type sinkReach struct {
	Sink string // description of the sink reached
	Via  string // display name of the callee it is reached through ("" when seeded)
}

func (*sinkReach) AFact() {}

// computeSinkFacts seeds and propagates sinkReach facts over the call
// graph. Seeding has two parts: the external sink keys above, and
// in-module functions that invoke a sink-named function value ("sink",
// "emit") — calls through stored closures are invisible to the call
// graph, and those names are this repository's convention for
// injectable output (e.g. the lifecycle tracker's event sink).
func computeSinkFacts(prog *Program) {
	if prog.sinkOnce {
		return
	}
	prog.sinkOnce = true
	for _, fn := range prog.Functions() {
		if fn.Decl == nil || fn.Decl.Body == nil {
			continue
		}
		fn := fn
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if len(prog.resolveCall(fn.Pkg, call)) > 0 {
				return true
			}
			if desc, ok := dynamicSinkCall(fn.Pkg, call); ok {
				prog.ExportFact(fn, &sinkReach{Sink: desc})
				return false
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		prog.BottomUp(func(fn *Func) {
			var have sinkReach
			if prog.ImportFact(fn, &have) {
				return
			}
			for _, e := range fn.Callees {
				if desc, ok := reachesSink(prog, e.Callee); ok {
					prog.ExportFact(fn, &sinkReach{Sink: desc, Via: e.Callee.Name()})
					changed = true
					return
				}
			}
		})
	}
}

// reachesSink reports whether fn is a direct sink or carries a
// propagated sinkReach fact, and the artifact description either way.
func reachesSink(prog *Program, fn *Func) (string, bool) {
	if desc, ok := sinkSeeds[fn.Key]; ok {
		return desc, true
	}
	var f sinkReach
	if prog.ImportFact(fn, &f) {
		return f.Sink, true
	}
	return "", false
}

// dynamicSinkCall classifies a statically unresolvable call (through a
// function value) as a sink when the called expression is sink-named.
func dynamicSinkCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	var name string
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = f.Name
	case *ast.SelectorExpr:
		name = f.Sel.Name
	default:
		return "", false
	}
	lower := strings.ToLower(name)
	if strings.Contains(lower, "sink") || strings.Contains(lower, "emit") {
		return "injected " + exprString(pkg.Fset, call.Fun) + " sink", true
	}
	return "", false
}

func runDeterminism(pass *Pass) {
	computeSinkFacts(pass.Prog)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				checkMapRange(pass, rng)
			}
			return true
		})
	}
	checkSimClock(pass)
	checkIdentityClock(pass)
}

// checkMapRange reports the first sink the range body reaches, if any.
// A body that only accumulates (into another map, a slice later
// sorted, a counter) reaches nothing and passes.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	pkg, prog := pass.Pkg, pass.Prog
	subject := exprString(pkg.Fset, rng.X)
	done := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callees := prog.resolveCall(pkg, call)
		if len(callees) == 0 {
			if desc, ok := dynamicSinkCall(pkg, call); ok {
				done = true
				pass.Reportf(rng.Pos(),
					"map iteration order over %s reaches %s; collect the keys, sort, and range the slice",
					subject, desc)
			}
			return true
		}
		for _, rc := range callees {
			if desc, ok := reachesSink(prog, rc.fn); ok {
				done = true
				pass.Reportf(rng.Pos(),
					"map iteration order over %s reaches the %s through %s; "+
						"collect the keys, sort, and range the slice",
					subject, desc, rc.fn.Name())
				return false
			}
		}
		return true
	})
}

// checkSimClock flags wall-clock and randomness calls anywhere in the
// simulator packages, whose behavior must be a pure function of trace
// and configuration.
func checkSimClock(pass *Pass) {
	path := pass.Pkg.ImportPath
	if !strings.Contains(path, "internal/sim") && !strings.Contains(path, "internal/core") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if src, ok := nondetSource(pass.Pkg, call); ok {
				pass.Reportf(call.Pos(),
					"%s in simulator code: behavior must be a pure function of trace and config; "+
						"derive it from the cycle counter or a seeded generator", src)
			}
			return true
		})
	}
}

// checkIdentityClock flags wall-clock and randomness calls inside the
// sweep job-identity closure: JobID / *Fingerprint* functions in
// internal/sweep and everything they transitively call. A job ID that
// differs across runs silently defeats resume — every job re-runs.
func checkIdentityClock(pass *Pass) {
	prog := pass.Prog
	roots := identityRoots(prog)
	if len(roots) == 0 {
		return
	}
	seen := map[*Func]*Func{} // member -> identity root it was reached from
	queue := roots
	for _, r := range roots {
		seen[r] = r
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range fn.Callees {
			if _, ok := seen[e.Callee]; ok {
				continue
			}
			seen[e.Callee] = seen[fn]
			queue = append(queue, e.Callee)
		}
	}
	members := make([]*Func, 0, len(seen))
	for fn := range seen {
		members = append(members, fn)
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Key < members[j].Key })
	for _, fn := range members {
		if fn.Pkg != pass.Pkg || fn.Decl == nil || fn.Decl.Body == nil {
			continue
		}
		root := seen[fn]
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if src, ok := nondetSource(pass.Pkg, call); ok {
				pass.Reportf(call.Pos(),
					"%s inside job-identity code (reached from %s): "+
						"IDs must be identical across runs or resume re-runs every job", src, root.Name())
			}
			return true
		})
	}
}

// identityRoots returns the job-identity functions: those declared in
// an internal/sweep package named JobID or containing "Fingerprint".
func identityRoots(prog *Program) []*Func {
	var roots []*Func
	for _, fn := range prog.Functions() {
		if fn.Pkg == nil || fn.Decl == nil || !strings.Contains(fn.Pkg.ImportPath, "internal/sweep") {
			continue
		}
		name := fn.Decl.Name.Name
		if name == "JobID" || strings.Contains(name, "Fingerprint") {
			roots = append(roots, fn)
		}
	}
	return roots
}

// nondetSource reports whether the call reads the wall clock (time.Now,
// time.Since) or math/rand, naming the source.
func nondetSource(pkg *Package, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(pkg, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" {
			return "time." + obj.Name(), true
		}
	case "math/rand", "math/rand/v2":
		return "math/rand." + obj.Name(), true
	}
	return "", false
}
