//go:build !linux

package trace

import "os"

// mmapSupported reports whether this build can serve trace files from
// a memory mapping.
const mmapSupported = false

// mmapFile is the portable stub: no mapping, the FileSource uses its
// io.ReaderAt window instead.
func mmapFile(*os.File, int64) (data []byte, unmap func() error, ok bool) {
	return nil, nil, false
}
