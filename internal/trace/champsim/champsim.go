// Package champsim decodes ChampSim/DPC-3 instruction traces — the
// format the paper's original evaluation (and DSPatch's, and Gaze's)
// runs on — into this repository's load-record stream, so downloaded
// SPEC CPU 2006/2017, PARSEC and Ligra trace sets drop into every
// experiment next to the synthetic suite.
//
// # On-disk format
//
// A ChampSim trace is a flat array of fixed-size 64-byte records, one
// per retired instruction, little-endian, no header:
//
//	offset  size  field
//	0       8     ip                        instruction pointer
//	8       1     is_branch
//	9       1     branch_taken
//	10      2     destination_registers[2]  0 = unused slot
//	12      4     source_registers[4]       0 = unused slot
//	16      16    destination_memory[2]     store addresses, 0 = unused
//	32      32    source_memory[4]          load addresses, 0 = unused
//
// (ChampSim's trace_instr_format_t with NUM_INSTR_DESTINATIONS=2 and
// NUM_INSTR_SOURCES=4; the layout has no padding, so the struct size
// equals the field sum.) Distributed trace sets are xz- or
// gzip-compressed; see Open and the Decompressor registry.
//
// # Field mapping
//
// The decoder filters the instruction stream to L1D load accesses and
// emits one trace.Record per non-zero source-memory operand (every
// prefetcher in the paper trains on L1D loads; stores and branches
// advance the instruction count only):
//
//	trace.Record  from
//	------------  ----------------------------------------------------
//	PC            ip of the load instruction (operands share it)
//	Addr          the source_memory operand (virtual byte address)
//	Gap           run length of preceding instructions that emitted no
//	              load record (stores, branches, ALU ops), clamped to
//	              65535; extra operands of the same instruction get 0
//	Dep           register def-use between loads, see below
//
// Dep is inferred from the architectural register file: the decoder
// tracks, per register, the instruction that last wrote it. A load
// whose source registers include one written by an earlier load maps
// to DepChain when that writer has the same ip (pointer chasing:
// node = node->next feeding itself across iterations) and to DepPrev
// when the writer produced the immediately preceding load record in
// program order (e.g. rank[edge[i]]). Anything else — induction
// variables, constants, registers written by non-loads — is DepNone.
// Register number 0 marks an unused operand slot in ChampSim traces
// and never participates.
package champsim

import "encoding/binary"

// Geometry of the fixed-size instruction record.
const (
	// InstrBytes is the size of one on-disk instruction record.
	InstrBytes = 64
	// NumDestRegs and NumSrcRegs are the register operand slot counts.
	NumDestRegs = 2
	NumSrcRegs  = 4
	// NumDestMem and NumSrcMem are the memory operand slot counts.
	NumDestMem = 2
	NumSrcMem  = 4
)

// Instr is one decoded ChampSim instruction record. Zero values in
// the operand arrays mark unused slots, as in the on-disk format.
type Instr struct {
	IP          uint64
	IsBranch    bool
	BranchTaken bool
	DestRegs    [NumDestRegs]uint8
	SrcRegs     [NumSrcRegs]uint8
	DestMem     [NumDestMem]uint64
	SrcMem      [NumSrcMem]uint64
}

// decodeInstr decodes one 64-byte record (len(b) >= InstrBytes).
func decodeInstr(b []byte) Instr {
	var in Instr
	in.IP = binary.LittleEndian.Uint64(b[0:])
	in.IsBranch = b[8] != 0
	in.BranchTaken = b[9] != 0
	for i := 0; i < NumDestRegs; i++ {
		in.DestRegs[i] = b[10+i]
	}
	for i := 0; i < NumSrcRegs; i++ {
		in.SrcRegs[i] = b[12+i]
	}
	for i := 0; i < NumDestMem; i++ {
		in.DestMem[i] = binary.LittleEndian.Uint64(b[16+8*i:])
	}
	for i := 0; i < NumSrcMem; i++ {
		in.SrcMem[i] = binary.LittleEndian.Uint64(b[32+8*i:])
	}
	return in
}

// AppendInstr appends the 64-byte encoding of in to dst and returns
// the extended slice. It is the exact inverse of the decoder's record
// parsing and exists so tests and fixtures hand-build golden binaries
// instead of depending on external trace files.
func AppendInstr(dst []byte, in Instr) []byte {
	var b [InstrBytes]byte
	binary.LittleEndian.PutUint64(b[0:], in.IP)
	if in.IsBranch {
		b[8] = 1
	}
	if in.BranchTaken {
		b[9] = 1
	}
	for i := 0; i < NumDestRegs; i++ {
		b[10+i] = in.DestRegs[i]
	}
	for i := 0; i < NumSrcRegs; i++ {
		b[12+i] = in.SrcRegs[i]
	}
	for i := 0; i < NumDestMem; i++ {
		binary.LittleEndian.PutUint64(b[16+8*i:], in.DestMem[i])
	}
	for i := 0; i < NumSrcMem; i++ {
		binary.LittleEndian.PutUint64(b[32+8*i:], in.SrcMem[i])
	}
	return append(dst, b[:]...)
}
