package champsim

import (
	"bytes"
	"compress/gzip"
	"io"
	"testing"
)

// FuzzDecoder mirrors the .pmpt fuzz test one package up: arbitrary
// bytes must never panic the decoder, decoding twice must be
// deterministic, and the only accepted terminations are a clean EOF on
// whole-record inputs or ErrTruncated on ragged ones.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendInstr(nil, Instr{IP: 0x1000, SrcMem: [NumSrcMem]uint64{0xAA}}))
	f.Add(EncodeFixture(GoldenFixture())[:InstrBytes*3+7])
	f.Add(bytes.Repeat([]byte{0xFF}, InstrBytes*2))
	f.Add(bytes.Repeat([]byte{0}, InstrBytes)) // all-zero: no mem operands

	decode := func(data []byte) ([]Record, Stats, error) {
		d := NewDecoder(bytes.NewReader(data))
		var recs []Record
		for {
			r, err := d.Next()
			if err != nil {
				if err == io.EOF {
					return recs, d.Stats(), nil
				}
				return recs, d.Stats(), err
			}
			recs = append(recs, Record{r.PC, uint64(r.Addr), r.Gap, int(r.Dep)})
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		recs1, st1, err1 := decode(data)
		recs2, st2, err2 := decode(data)
		if (err1 == nil) != (err2 == nil) || st1 != st2 || len(recs1) != len(recs2) {
			t.Fatalf("non-deterministic decode: %v/%v, %+v/%+v", err1, err2, st1, st2)
		}
		for i := range recs1 {
			if recs1[i] != recs2[i] {
				t.Fatalf("record %d differs between decodes", i)
			}
		}
		if len(data)%InstrBytes == 0 && err1 != nil {
			t.Fatalf("whole-record input errored: %v", err1)
		}
		if len(data)%InstrBytes != 0 && err1 == nil {
			t.Fatalf("ragged input (%d bytes) decoded cleanly", len(data))
		}
	})
}

// Record is a comparable snapshot of trace.Record for the fuzz
// determinism check.
type Record struct {
	PC   uint64
	Addr uint64
	Gap  uint16
	Dep  int
}

// FuzzOpenGzip feeds arbitrary bytes through the gzip decompressor
// path: corrupt streams must error, never panic, and never decode.
func FuzzOpenGzip(f *testing.F) {
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(AppendInstr(nil, Instr{IP: 1, SrcMem: [NumSrcMem]uint64{0xBB}}))
	zw.Close()
	f.Add(gz.Bytes())
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rc, err := gzipDecompressor{}.Wrap(bytes.NewReader(data))
		if err != nil {
			return
		}
		defer rc.Close()
		d := NewDecoder(rc)
		for {
			if _, err := d.Next(); err != nil {
				break
			}
		}
	})
}
