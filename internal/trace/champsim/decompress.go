package champsim

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Decompressor turns a compressed stream into a plain one. The
// registry below maps file extensions to implementations; Register
// lets callers plug in additional codecs (zstd, bz2, ...) without this
// package growing dependencies — the module stays stdlib-only by
// design: gzip comes from compress/gzip and xz from exec'ing the host
// `xz` binary, never from cgo or a third-party module in go.mod.
type Decompressor interface {
	// Name labels the codec in errors and stats.
	Name() string
	// Wrap returns a reader of the decompressed stream. Closing it must
	// release codec resources but not the underlying reader.
	Wrap(r io.Reader) (io.ReadCloser, error)
}

var (
	decompressorsMu sync.RWMutex
	decompressors   = map[string]Decompressor{
		".gz": gzipDecompressor{},
		".xz": xzDecompressor{},
	}
)

// Register installs a Decompressor for a file extension (".zst"),
// replacing any previous registration.
func Register(ext string, d Decompressor) {
	decompressorsMu.Lock()
	defer decompressorsMu.Unlock()
	decompressors[ext] = d
}

// ForPath returns the registered Decompressor for the path's final
// extension, or nil when the path reads as a raw instruction stream.
func ForPath(path string) Decompressor {
	decompressorsMu.RLock()
	defer decompressorsMu.RUnlock()
	return decompressors[strings.ToLower(filepath.Ext(path))]
}

// IsTracePath reports whether the path looks like a ChampSim/DPC trace
// by naming convention: a ".champsim" or ".trace" component, optionally
// followed by a compression extension (the DPC-3 sets ship as
// <bench>.champsim.trace.xz).
func IsTracePath(path string) bool {
	base := strings.ToLower(filepath.Base(path))
	if ForPath(base) != nil {
		base = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return strings.HasSuffix(base, ".champsim") || strings.HasSuffix(base, ".trace")
}

// Open opens a (possibly compressed) ChampSim trace file and returns
// the decompressed stream. Close releases both the codec and the file.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	d := ForPath(path)
	if d == nil {
		return f, nil
	}
	rc, err := d.Wrap(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("champsim: %s: %s: %w", d.Name(), path, err)
	}
	return &chainCloser{ReadCloser: rc, under: f}, nil
}

// chainCloser closes the codec first, then the underlying file.
type chainCloser struct {
	io.ReadCloser
	under io.Closer
}

func (c *chainCloser) Close() error {
	err := c.ReadCloser.Close()
	if uerr := c.under.Close(); err == nil {
		err = uerr
	}
	return err
}

// --- gzip (stdlib) ---

type gzipDecompressor struct{}

func (gzipDecompressor) Name() string { return "gzip" }

func (gzipDecompressor) Wrap(r io.Reader) (io.ReadCloser, error) {
	return gzip.NewReader(r)
}

// --- xz (host binary) ---

// xzDecompressor shells out to `xz -dc` with the compressed stream on
// stdin. The subprocess dies with Close (kill + wait), so abandoned
// conversions do not leak decompressors.
type xzDecompressor struct{}

func (xzDecompressor) Name() string { return "xz" }

func (xzDecompressor) Wrap(r io.Reader) (io.ReadCloser, error) {
	if _, err := exec.LookPath("xz"); err != nil {
		return nil, fmt.Errorf("xz binary not in PATH (install xz-utils, or Register a pure-Go codec): %w", err)
	}
	cmd := exec.Command("xz", "-q", "-dc")
	cmd.Stdin = r
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &procReader{r: out, cmd: cmd}, nil
}

// procReader adapts a subprocess stdout into a ReadCloser whose Close
// reaps the process. A non-zero exit surfaces as a read/close error so
// corrupt archives fail loudly instead of truncating silently.
type procReader struct {
	r   io.ReadCloser
	cmd *exec.Cmd
}

func (p *procReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if err == io.EOF {
		// Stream drained: the exit status decides clean EOF vs corrupt
		// input. Wait is idempotent-guarded by nilling cmd.
		if p.cmd != nil {
			werr := p.cmd.Wait()
			p.cmd = nil
			if werr != nil {
				return n, fmt.Errorf("champsim: xz: %w", werr)
			}
		}
	}
	return n, err
}

func (p *procReader) Close() error {
	if p.cmd == nil {
		// Already reaped at EOF; Wait closed the pipe for us.
		p.r.Close()
		return nil
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
	p.r.Close()
	return nil
}
