package champsim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"

	"pmp/internal/mem"
	"pmp/internal/trace"
)

// ErrTruncated is returned when the stream ends inside an instruction
// record (the file is not a multiple of InstrBytes).
var ErrTruncated = errors.New("champsim: truncated instruction record")

// Stats counts what the decoder saw. Loads is the number of emitted
// trace records; everything else describes the instruction stream the
// loads were filtered from.
type Stats struct {
	Instructions uint64 `json:"instructions"` // records decoded
	Loads        uint64 `json:"loads"`        // trace records emitted
	LoadInstrs   uint64 `json:"load_instrs"`  // instructions with >= 1 source memory operand
	Stores       uint64 `json:"stores"`       // instructions with a destination memory operand
	Branches     uint64 `json:"branches"`
	NoMem        uint64 `json:"no_mem"`       // instructions with no memory operand at all
	DepPrev      uint64 `json:"dep_prev"`     // loads classified DepPrev
	DepChain     uint64 `json:"dep_chain"`    // loads classified DepChain
	ClampedGaps  uint64 `json:"clamped_gaps"` // gaps clamped to the Gap field's 65535 ceiling
}

// regWriter records, per architectural register, the instruction that
// last wrote it — everything Dep inference needs.
type regWriter struct {
	valid bool
	load  bool   // the writer had a source memory operand
	ip    uint64 // the writer's instruction pointer
	seq   uint64 // 1 + index of the writer's last emitted load record
}

// Decoder streams trace.Records out of a ChampSim instruction stream.
// It reads one 64-byte record at a time through a bufio.Reader, so
// arbitrarily large (decompressing) inputs decode in O(1) memory.
type Decoder struct {
	br    *bufio.Reader
	buf   [InstrBytes]byte
	stats Stats

	gapRun  uint64                  // instructions since the last load record
	writers [256]regWriter          // register -> last writer
	pend    [NumSrcMem]trace.Record // decoded loads not yet handed out
	npend   int
	pendAt  int
}

// NewDecoder wraps r. The reader should already be decompressed; use
// Open to get one straight from an (optionally .xz/.gz) file path.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{br: bufio.NewReaderSize(r, 1<<16)}
}

// Stats returns the running tallies (final once Next returned io.EOF).
func (d *Decoder) Stats() Stats { return d.stats }

// Next returns the next L1D load record. It returns io.EOF at a clean
// end of stream and ErrTruncated when the stream ends mid-record.
func (d *Decoder) Next() (trace.Record, error) {
	for {
		if d.pendAt < d.npend {
			r := d.pend[d.pendAt]
			d.pendAt++
			return r, nil
		}
		if _, err := io.ReadFull(d.br, d.buf[:]); err != nil {
			if err == io.EOF {
				return trace.Record{}, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return trace.Record{}, fmt.Errorf("%w (instruction %d)", ErrTruncated, d.stats.Instructions)
			}
			return trace.Record{}, err
		}
		d.decode(decodeInstr(d.buf[:]))
	}
}

// decode consumes one instruction, refilling the pending record queue
// when it carries load operands.
func (d *Decoder) decode(in Instr) {
	d.stats.Instructions++
	if in.IsBranch {
		d.stats.Branches++
	}
	hasStore := false
	for _, a := range in.DestMem {
		if a != 0 {
			hasStore = true
			break
		}
	}
	if hasStore {
		d.stats.Stores++
	}

	d.npend, d.pendAt = 0, 0
	for _, a := range in.SrcMem {
		if a == 0 || d.npend >= len(d.pend) {
			continue
		}
		d.pend[d.npend] = trace.Record{PC: in.IP, Addr: mem.Addr(a)}
		d.npend++
	}
	if d.npend == 0 {
		if !hasStore && !in.IsBranch {
			d.stats.NoMem++
		}
		d.updateWriters(in, false)
		d.gapRun++
		return
	}
	d.stats.LoadInstrs++

	// Dep: does a source register carry another load's result?
	dep := trace.DepNone
	for _, reg := range in.SrcRegs {
		if reg == 0 {
			continue
		}
		w := d.writers[reg]
		if !w.valid || !w.load {
			continue
		}
		if w.ip == in.IP {
			dep = trace.DepChain
			break // chain wins: the same static load feeds itself
		}
		if w.seq == d.stats.Loads {
			dep = trace.DepPrev
		}
	}

	gap := d.gapRun
	if gap > math.MaxUint16 {
		gap = math.MaxUint16
		d.stats.ClampedGaps++
	}
	for i := 0; i < d.npend; i++ {
		d.pend[i].Dep = dep
		if i == 0 {
			d.pend[i].Gap = uint16(gap)
		}
	}
	d.stats.Loads += uint64(d.npend)
	switch dep {
	case trace.DepPrev:
		d.stats.DepPrev += uint64(d.npend)
	case trace.DepChain:
		d.stats.DepChain += uint64(d.npend)
	}
	d.updateWriters(in, true)
	d.gapRun = 0
}

// updateWriters records this instruction as the last writer of its
// destination registers. For loads it runs after stats.Loads has been
// advanced, so seq (1 + index of the writer's last emitted record)
// equals the post-increment count.
func (d *Decoder) updateWriters(in Instr, isLoad bool) {
	for _, reg := range in.DestRegs {
		if reg == 0 {
			continue
		}
		d.writers[reg] = regWriter{valid: true, load: isLoad, ip: in.IP, seq: d.stats.Loads}
	}
}
