package champsim

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pmp/internal/trace"
)

const (
	fixtureRaw = "testdata/golden.champsim.trace"
	fixtureGz  = "testdata/golden.champsim.trace.gz"
)

// TestGoldenFixtureInSync pins the committed binary fixture to
// GoldenFixture(): the testdata bytes must be exactly what the source
// describes, so the fixture is reviewable and regenerable (see
// gen_fixture.go).
func TestGoldenFixtureInSync(t *testing.T) {
	want := EncodeFixture(GoldenFixture())
	got, err := os.ReadFile(fixtureRaw)
	if err != nil {
		t.Fatalf("committed fixture missing (run go run ./internal/trace/champsim/gen_fixture.go): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed fixture (%d bytes) out of sync with GoldenFixture() (%d bytes); regenerate it",
			len(got), len(want))
	}
}

// TestRoundTrip is the end-to-end fidelity check the issue asks for:
// committed ChampSim fixture -> Convert -> .pmpt on disk -> decode via
// BOTH the lazy FileSource and the buffered Read path, and all three
// record sequences must be identical.
func TestRoundTrip(t *testing.T) {
	tr, st, err := ConvertFile(fixtureRaw, ConvertOptions{Name: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads != 100 || tr.Len() != 100 {
		t.Fatalf("fixture converted to %d records (stats %d), want 100", tr.Len(), st.Loads)
	}

	pmpt := filepath.Join(t.TempDir(), "golden.pmpt")
	f, err := os.Create(pmpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Buffered path.
	data, err := os.ReadFile(pmpt)
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if buffered.Len() != tr.Len() {
		t.Fatalf("buffered decode has %d records, want %d", buffered.Len(), tr.Len())
	}
	for i, r := range buffered.Records() {
		if want := tr.Records()[i]; r != want {
			t.Errorf("buffered record %d: got %+v, want %+v", i, r, want)
		}
	}

	// Lazy FileSource path.
	fs, err := trace.OpenFile(pmpt)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range tr.Records() {
		got, ok := fs.Next()
		if !ok {
			t.Fatalf("FileSource ended at record %d of %d", i, tr.Len())
		}
		if got != want {
			t.Errorf("FileSource record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, ok := fs.Next(); ok {
		t.Error("FileSource yielded records past the converted length")
	}
}

// TestRoundTripCompressed runs the same conversion through the gzip
// decompressor: the .gz fixture must decode to the identical records.
func TestRoundTripCompressed(t *testing.T) {
	raw, _, err := ConvertFile(fixtureRaw, ConvertOptions{Name: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	gz, _, err := ConvertFile(fixtureGz, ConvertOptions{Name: "golden"})
	if err != nil {
		t.Fatal(err)
	}
	if gz.Len() != raw.Len() {
		t.Fatalf("gz decode has %d records, raw has %d", gz.Len(), raw.Len())
	}
	for i, r := range gz.Records() {
		if want := raw.Records()[i]; r != want {
			t.Errorf("record %d: gz %+v, raw %+v", i, r, want)
		}
	}
}
