package champsim

import (
	"fmt"
	"io"

	"pmp/internal/trace"
)

// ConvertOptions shapes a conversion.
type ConvertOptions struct {
	// Name is the trace name embedded in the .pmpt output.
	Name string
	// Skip drops the first Skip load records (fast-forward past
	// initialization). Skipped loads still train the decoder's gap and
	// dependency state, so the first kept record is identical to what a
	// full conversion would hold at that position.
	Skip int
	// Limit caps the emitted records (<= 0: convert everything).
	Limit int
}

// Convert decodes a ChampSim instruction stream into an in-memory
// trace, applying Skip/Limit, and returns the decoder's stats. The
// stats describe everything decoded, including skipped loads and the
// instructions beyond Limit are not read.
func Convert(r io.Reader, opts ConvertOptions) (*trace.Trace, Stats, error) {
	d := NewDecoder(r)
	var recs []trace.Record
	skipped := 0
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, d.Stats(), err
		}
		if skipped < opts.Skip {
			skipped++
			continue
		}
		recs = append(recs, rec)
		if opts.Limit > 0 && len(recs) >= opts.Limit {
			break
		}
	}
	if len(recs) == 0 {
		return nil, d.Stats(), fmt.Errorf("champsim: no load records decoded (skip %d past a %d-load stream?)",
			opts.Skip, d.Stats().Loads)
	}
	return trace.NewTrace(opts.Name, recs), d.Stats(), nil
}

// ConvertFile converts a (possibly xz/gzip-compressed) ChampSim trace
// file. An empty opts.Name defaults to the file's base name.
func ConvertFile(path string, opts ConvertOptions) (*trace.Trace, Stats, error) {
	if opts.Name == "" {
		opts.Name = path
	}
	rc, err := Open(path)
	if err != nil {
		return nil, Stats{}, err
	}
	defer rc.Close()
	return Convert(rc, opts)
}
