package champsim

import (
	"bytes"
	"io"
	"math"
	"testing"

	"pmp/internal/trace"
)

// decodeAll drains a decoder built over the raw instruction bytes.
func decodeAll(t *testing.T, raw []byte) ([]trace.Record, Stats) {
	t.Helper()
	d := NewDecoder(bytes.NewReader(raw))
	var recs []trace.Record
	for {
		r, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, r)
	}
	return recs, d.Stats()
}

// TestDecodeFidelity hand-builds a golden binary and checks every
// emitted record field-for-field: the PC/address mapping, gap
// accounting across non-load instructions, multi-operand expansion,
// and the register def-use Dep inference.
func TestDecodeFidelity(t *testing.T) {
	var raw []byte
	// i0: plain load, addr from a never-written register -> DepNone.
	raw = AppendInstr(raw, Instr{IP: 0x1000, SrcRegs: [NumSrcRegs]uint8{4}, DestRegs: [NumDestRegs]uint8{7},
		SrcMem: [NumSrcMem]uint64{0xAAA0}})
	// i1, i2: two non-load fillers (an ALU op writing reg 4 and a branch).
	raw = AppendInstr(raw, Instr{IP: 0x1008, SrcRegs: [NumSrcRegs]uint8{4}, DestRegs: [NumDestRegs]uint8{4}})
	raw = AppendInstr(raw, Instr{IP: 0x1010, IsBranch: true, BranchTaken: true})
	// i3: load reading reg 7 (written by the immediately preceding load
	// at a different PC) -> DepPrev; gap of 2.
	raw = AppendInstr(raw, Instr{IP: 0x1018, SrcRegs: [NumSrcRegs]uint8{7}, DestRegs: [NumDestRegs]uint8{8},
		SrcMem: [NumSrcMem]uint64{0xBBB0}})
	// i4: store only — advances the gap, never emits.
	raw = AppendInstr(raw, Instr{IP: 0x1020, SrcRegs: [NumSrcRegs]uint8{8}, DestMem: [NumDestMem]uint64{0xCCC0}})
	// i5: self-feeding load (reads and writes reg 9)... first visit is
	// DepNone (reg 9 never written), second visit is DepChain.
	raw = AppendInstr(raw, Instr{IP: 0x1028, SrcRegs: [NumSrcRegs]uint8{9}, DestRegs: [NumDestRegs]uint8{9},
		SrcMem: [NumSrcMem]uint64{0xDDD0}})
	raw = AppendInstr(raw, Instr{IP: 0x1028, SrcRegs: [NumSrcRegs]uint8{9}, DestRegs: [NumDestRegs]uint8{9},
		SrcMem: [NumSrcMem]uint64{0xDDE0}})
	// i7: two source memory operands -> two records, second with Gap 0.
	raw = AppendInstr(raw, Instr{IP: 0x1030, DestRegs: [NumDestRegs]uint8{11},
		SrcMem: [NumSrcMem]uint64{0xEE00, 0, 0xEE40}})
	// i8: load reading reg 4 — last written by the ALU op i1, not by a
	// load -> DepNone even though a load once wrote it earlier (i0 wrote
	// reg 7, not 4).
	raw = AppendInstr(raw, Instr{IP: 0x1038, SrcRegs: [NumSrcRegs]uint8{4},
		SrcMem: [NumSrcMem]uint64{0xFF00}})

	want := []trace.Record{
		{PC: 0x1000, Addr: 0xAAA0, Gap: 0, Dep: trace.DepNone},
		{PC: 0x1018, Addr: 0xBBB0, Gap: 2, Dep: trace.DepPrev},
		{PC: 0x1028, Addr: 0xDDD0, Gap: 1, Dep: trace.DepNone},
		{PC: 0x1028, Addr: 0xDDE0, Gap: 0, Dep: trace.DepChain},
		{PC: 0x1030, Addr: 0xEE00, Gap: 0, Dep: trace.DepNone},
		{PC: 0x1030, Addr: 0xEE40, Gap: 0, Dep: trace.DepNone},
		{PC: 0x1038, Addr: 0xFF00, Gap: 0, Dep: trace.DepNone},
	}
	got, st := decodeAll(t, raw)
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if st.Instructions != 9 || st.Loads != 7 || st.LoadInstrs != 6 {
		t.Errorf("stats instructions/loads/loadinstrs = %d/%d/%d, want 9/7/6",
			st.Instructions, st.Loads, st.LoadInstrs)
	}
	if st.Stores != 1 || st.Branches != 1 || st.NoMem != 1 {
		t.Errorf("stats stores/branches/nomem = %d/%d/%d, want 1/1/1", st.Stores, st.Branches, st.NoMem)
	}
	if st.DepPrev != 1 || st.DepChain != 1 {
		t.Errorf("stats depprev/depchain = %d/%d, want 1/1", st.DepPrev, st.DepChain)
	}
}

// TestEncodeDecodeInstr round-trips every field through the 64-byte
// wire form.
func TestEncodeDecodeInstr(t *testing.T) {
	in := Instr{
		IP: 0xDEADBEEF00112233, IsBranch: true, BranchTaken: true,
		DestRegs: [NumDestRegs]uint8{1, 255},
		SrcRegs:  [NumSrcRegs]uint8{2, 3, 254, 9},
		DestMem:  [NumDestMem]uint64{0x1111, 0x2222},
		SrcMem:   [NumSrcMem]uint64{0x3333, 0x4444, 0x5555, 0x6666},
	}
	b := AppendInstr(nil, in)
	if len(b) != InstrBytes {
		t.Fatalf("encoded %d bytes, want %d", len(b), InstrBytes)
	}
	if got := decodeInstr(b); got != in {
		t.Errorf("round trip: got %+v, want %+v", got, in)
	}
}

// TestGapSaturation feeds 70000 filler instructions before a load: the
// gap must clamp to 65535 and be counted.
func TestGapSaturation(t *testing.T) {
	var raw []byte
	for i := 0; i < 70000; i++ {
		raw = AppendInstr(raw, Instr{IP: 0x2000})
	}
	raw = AppendInstr(raw, Instr{IP: 0x2008, SrcMem: [NumSrcMem]uint64{0xAB00}})
	got, st := decodeAll(t, raw)
	if len(got) != 1 || got[0].Gap != math.MaxUint16 {
		t.Fatalf("got %+v, want one record with saturated gap", got)
	}
	if st.ClampedGaps != 1 {
		t.Errorf("ClampedGaps = %d, want 1", st.ClampedGaps)
	}
}

// TestTruncated checks that a stream ending mid-record reports
// ErrTruncated after yielding the complete prefix.
func TestTruncated(t *testing.T) {
	var raw []byte
	raw = AppendInstr(raw, Instr{IP: 0x3000, SrcMem: [NumSrcMem]uint64{0x10}})
	raw = AppendInstr(raw, Instr{IP: 0x3008, SrcMem: [NumSrcMem]uint64{0x20}})
	raw = raw[:len(raw)-5]

	d := NewDecoder(bytes.NewReader(raw))
	if r, err := d.Next(); err != nil || r.Addr != 0x10 {
		t.Fatalf("first record: %+v, %v", r, err)
	}
	if _, err := d.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated tail: got %v, want ErrTruncated", err)
	} else if !bytes.Contains([]byte(err.Error()), []byte("truncated")) {
		t.Errorf("error %q does not mention truncation", err)
	}
}

// TestZeroMemInstructions: a stream with no memory operands decodes to
// zero records and a clean EOF.
func TestZeroMemInstructions(t *testing.T) {
	var raw []byte
	for i := 0; i < 5; i++ {
		raw = AppendInstr(raw, Instr{IP: uint64(0x4000 + i*8), DestRegs: [NumDestRegs]uint8{3}})
	}
	got, st := decodeAll(t, raw)
	if len(got) != 0 {
		t.Fatalf("decoded %d records from a load-free stream", len(got))
	}
	if st.Instructions != 5 || st.NoMem != 5 {
		t.Errorf("stats = %+v, want 5 instructions, 5 no-mem", st)
	}
}

// TestConvertSkipLimit checks the Skip/Limit window and that skipped
// records still train gap/dep state (the first kept record matches the
// full conversion at that index).
func TestConvertSkipLimit(t *testing.T) {
	raw := EncodeFixture(GoldenFixture())
	full, _, err := Convert(bytes.NewReader(raw), ConvertOptions{Name: "full"})
	if err != nil {
		t.Fatal(err)
	}
	win, _, err := Convert(bytes.NewReader(raw), ConvertOptions{Name: "win", Skip: 30, Limit: 20})
	if err != nil {
		t.Fatal(err)
	}
	if win.Len() != 20 {
		t.Fatalf("windowed conversion has %d records, want 20", win.Len())
	}
	for i, r := range win.Records() {
		if want := full.Records()[30+i]; r != want {
			t.Errorf("window record %d: got %+v, want full[%d] %+v", i, r, 30+i, want)
		}
	}
	if _, _, err := Convert(bytes.NewReader(raw), ConvertOptions{Skip: 1 << 20}); err == nil {
		t.Error("skip past the whole stream should error, got nil")
	}
}

// TestGoldenFixtureStats pins the committed fixture's aggregate shape:
// exactly 100 loads with every dependency class and instruction kind
// represented, so decoder changes that shift the mapping are caught
// even before the byte-level golden tests.
func TestGoldenFixtureStats(t *testing.T) {
	_, st := decodeAll(t, EncodeFixture(GoldenFixture()))
	if st.Loads != 100 {
		t.Errorf("fixture decodes to %d loads, want exactly 100", st.Loads)
	}
	if st.DepChain == 0 || st.DepPrev == 0 {
		t.Errorf("fixture must exercise both dep classes, got chain %d prev %d", st.DepChain, st.DepPrev)
	}
	if st.Stores == 0 || st.Branches == 0 || st.NoMem == 0 {
		t.Errorf("fixture must contain stores/branches/no-mem fillers: %+v", st)
	}
}
