package champsim

// GoldenFixture returns the instruction sequence behind the committed
// testdata/golden.champsim.trace fixture: a deterministic ~170
// instruction stream that decodes to exactly 100 load records and
// exercises every decoder behaviour — strided DepNone walks, a
// DepChain pointer chase, DepPrev dependent pairs, a multi-operand
// load, stores, branches, and no-memory filler. Tests compare the
// committed bytes against this function (TestGoldenFixtureInSync), so
// the binary fixture is reproducible from source; regenerate it with
//
//	go run ./internal/trace/champsim/gen_fixture.go
//
// after changing this function, and update the golden expectations.
func GoldenFixture() []Instr {
	var ins []Instr
	add := func(in Instr) { ins = append(ins, in) }

	// Phase 1 — strided array walk (20 loads, DepNone): the address
	// register is written by an ALU add, so no load dependency.
	for i := 0; i < 20; i++ {
		add(Instr{IP: 0x400100, SrcRegs: [NumSrcRegs]uint8{2}, DestRegs: [NumDestRegs]uint8{3},
			SrcMem: [NumSrcMem]uint64{0x1000_0000 + uint64(i)*192}})
		add(Instr{IP: 0x400108, SrcRegs: [NumSrcRegs]uint8{2}, DestRegs: [NumDestRegs]uint8{2}})
		add(Instr{IP: 0x400110, IsBranch: true, BranchTaken: i < 19, SrcRegs: [NumSrcRegs]uint8{2}})
	}

	// A store and a no-mem filler between phases.
	add(Instr{IP: 0x400180, SrcRegs: [NumSrcRegs]uint8{3}, DestMem: [NumDestMem]uint64{0x2000_0040}})
	add(Instr{IP: 0x400188})

	// Phase 2 — pointer chase (25 loads, DepChain): the load reads and
	// rewrites reg 5, so each iteration consumes the previous one's
	// result from the same static instruction.
	next := uint64(0x3000_0000)
	for i := 0; i < 25; i++ {
		add(Instr{IP: 0x400200, SrcRegs: [NumSrcRegs]uint8{5}, DestRegs: [NumDestRegs]uint8{5},
			SrcMem: [NumSrcMem]uint64{next}})
		add(Instr{IP: 0x400208, SrcRegs: [NumSrcRegs]uint8{5}, DestRegs: [NumDestRegs]uint8{6}})
		next = 0x3000_0000 + (next*2654435761)%(1<<20)&^63
	}

	// Phase 3 — dependent pairs (40 loads, half DepPrev): load edge[i]
	// into reg 7, then load rank[reg 7] — the second load's address
	// comes from the immediately preceding load at a different PC.
	for i := 0; i < 20; i++ {
		add(Instr{IP: 0x400300, SrcRegs: [NumSrcRegs]uint8{2}, DestRegs: [NumDestRegs]uint8{7},
			SrcMem: [NumSrcMem]uint64{0x4000_0000 + uint64(i)*8}})
		add(Instr{IP: 0x400308, SrcRegs: [NumSrcRegs]uint8{7}, DestRegs: [NumDestRegs]uint8{8},
			SrcMem: [NumSrcMem]uint64{0x5000_0000 + uint64(i*7919%4096)*64}})
	}

	// Phase 4 — multi-operand loads (4 loads): two instructions carrying
	// two source memory operands each; the second operand's record gets
	// Gap 0. Source registers are all zero — unused slots never infer
	// dependencies.
	add(Instr{IP: 0x400400, DestRegs: [NumDestRegs]uint8{9},
		SrcMem: [NumSrcMem]uint64{0x6000_0000, 0x6000_0100}})
	add(Instr{IP: 0x400400, DestRegs: [NumDestRegs]uint8{9},
		SrcMem: [NumSrcMem]uint64{0x6000_0200, 0x6000_0300}})

	// Phase 5 — plain stream with store traffic (11 loads): brings the
	// total to exactly 100 records.
	for i := 0; i < 11; i++ {
		add(Instr{IP: 0x400500, SrcRegs: [NumSrcRegs]uint8{2}, DestRegs: [NumDestRegs]uint8{10},
			SrcMem: [NumSrcMem]uint64{0x7000_0000 + uint64(i)*64}})
		add(Instr{IP: 0x400508, SrcRegs: [NumSrcRegs]uint8{10}, DestMem: [NumDestMem]uint64{0x7100_0000 + uint64(i)*64}})
	}
	return ins
}

// EncodeFixture renders instrs to the on-disk byte stream.
func EncodeFixture(instrs []Instr) []byte {
	var out []byte
	for _, in := range instrs {
		out = AppendInstr(out, in)
	}
	return out
}
