package champsim

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestForPath(t *testing.T) {
	cases := []struct {
		path string
		want string // codec name, "" = raw
	}{
		{"bench.champsim.trace", ""},
		{"bench.champsim.trace.gz", "gzip"},
		{"bench.champsim.trace.GZ", "gzip"},
		{"bench.champsim.trace.xz", "xz"},
		{"bench.pmpt", ""},
	}
	for _, c := range cases {
		d := ForPath(c.path)
		got := ""
		if d != nil {
			got = d.Name()
		}
		if got != c.want {
			t.Errorf("ForPath(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestIsTracePath(t *testing.T) {
	yes := []string{
		"astar_313B.champsim.trace.xz",
		"mcf.trace",
		"dir/sub/bfs.champsim.trace.gz",
		"602.gcc_s-734B.champsim",
	}
	no := []string{"golden.pmpt", "readme.md", "trace", "a.trace.zst.bak"}
	for _, p := range yes {
		if !IsTracePath(p) {
			t.Errorf("IsTracePath(%q) = false, want true", p)
		}
	}
	for _, p := range no {
		if IsTracePath(p) {
			t.Errorf("IsTracePath(%q) = true, want false", p)
		}
	}
}

// TestOpenCorruptGzip: a damaged gzip stream must surface an error
// (either at Open or during the read), never a panic or silent
// truncation to garbage records.
func TestOpenCorruptGzip(t *testing.T) {
	good, err := os.ReadFile(fixtureGz)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	for i := len(bad) / 2; i < len(bad)/2+16 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	path := filepath.Join(t.TempDir(), "corrupt.champsim.trace.gz")
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	rc, err := Open(path)
	if err != nil {
		return // corrupt header rejected at open: fine
	}
	defer rc.Close()
	if _, err := io.Copy(io.Discard, rc); err == nil {
		t.Error("reading a corrupt gzip stream returned no error")
	}
}

// TestOpenTruncatedGzipMember: a stream cut mid-member must error from
// the gzip layer, and Convert must propagate rather than succeed.
func TestOpenTruncatedGzipMember(t *testing.T) {
	good, err := os.ReadFile(fixtureGz)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "short.champsim.trace.gz")
	if err := os.WriteFile(path, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConvertFile(path, ConvertOptions{}); err == nil {
		t.Error("converting a truncated gzip stream returned no error")
	}
}

// TestOpenXz exercises the exec'd xz path when the binary is present;
// skipped otherwise (the codec itself reports a clear error then, see
// TestXzMissingBinaryError's contract in Wrap).
func TestOpenXz(t *testing.T) {
	if _, err := exec.LookPath("xz"); err != nil {
		t.Skip("xz binary not in PATH")
	}
	raw, err := os.ReadFile(fixtureRaw)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	xzPath := filepath.Join(dir, "golden.champsim.trace.xz")
	cmd := exec.Command("xz", "-z", "-c")
	cmd.Stdin = bytes.NewReader(raw)
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("xz -z: %v", err)
	}
	if err := os.WriteFile(xzPath, out, 0o644); err != nil {
		t.Fatal(err)
	}

	tr, st, err := ConvertFile(xzPath, ConvertOptions{Name: "xz-golden"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads != 100 || tr.Len() != 100 {
		t.Fatalf("xz round trip decoded %d records, want 100", tr.Len())
	}

	// Corrupt xz archives must fail loudly through the subprocess exit.
	bad := append([]byte(nil), out...)
	for i := len(bad) / 2; i < len(bad)/2+8 && i < len(bad); i++ {
		bad[i] ^= 0xFF
	}
	badPath := filepath.Join(dir, "corrupt.champsim.trace.xz")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ConvertFile(badPath, ConvertOptions{}); err == nil {
		t.Error("converting a corrupt xz archive returned no error")
	}

	// Close-before-EOF must reap the subprocess without error.
	rc, err := Open(xzPath)
	if err != nil {
		t.Fatal(err)
	}
	var one [InstrBytes]byte
	if _, err := io.ReadFull(rc, one[:]); err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("early Close: %v", err)
	}
}

// TestRegister plugs a pass-through codec in under a fake extension and
// checks Open routes through it.
func TestRegister(t *testing.T) {
	Register(".ident", identCodec{})
	raw, err := os.ReadFile(fixtureRaw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "golden.champsim.trace.ident")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if !IsTracePath(path) {
		t.Error("registered extension not recognized by IsTracePath")
	}
	tr, _, err := ConvertFile(path, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 100 {
		t.Errorf("pass-through codec decoded %d records, want 100", tr.Len())
	}
	if !strings.HasSuffix(tr.Name(), ".ident") {
		t.Errorf("default trace name %q should be the path", tr.Name())
	}
}

type identCodec struct{}

func (identCodec) Name() string { return "ident" }
func (identCodec) Wrap(r io.Reader) (io.ReadCloser, error) {
	return io.NopCloser(r), nil
}
