//go:build ignore

// Regenerates the committed golden ChampSim fixture from
// GoldenFixture():
//
//	go run ./internal/trace/champsim/gen_fixture.go
//
// writes testdata/golden.champsim.trace (raw) and .gz (compressed, for
// the decompressor leg of the round-trip tests and CI convert smoke).
package main

import (
	"bytes"
	"compress/gzip"
	"log"
	"os"
	"path/filepath"

	"pmp/internal/trace/champsim"
)

func main() {
	raw := champsim.EncodeFixture(champsim.GoldenFixture())
	dir := filepath.Join("internal", "trace", "champsim", "testdata")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden.champsim.trace"), raw, 0o644); err != nil {
		log.Fatal(err)
	}
	var gz bytes.Buffer
	zw, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
	if _, err := zw.Write(raw); err != nil {
		log.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "golden.champsim.trace.gz"), gz.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d instructions (%d bytes raw, %d bytes gz)", len(raw)/champsim.InstrBytes, len(raw), gz.Len())
}
