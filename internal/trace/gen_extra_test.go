package trace

import (
	"testing"

	"pmp/internal/mem"
)

func TestHashJoinStructure(t *testing.T) {
	p := DefaultHashJoinParams()
	p.RowsPerKey = 3
	g := NewHashJoin("hj", 1, 4000, p)
	scans, probes := 0, 0
	var prevScan uint64
	seenScan := false
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		switch r.PC {
		case 0x900000:
			scans++
			id := r.Addr.LineID()
			if seenScan && id != prevScan && id != prevScan+1 && id != 0 {
				t.Fatalf("scan jumped from line %d to %d", prevScan, id)
			}
			prevScan, seenScan = id, true
			if r.Dep != DepNone {
				t.Fatal("scan reads must be independent")
			}
		case 0x900040:
			probes++
			if r.Dep != DepPrev {
				t.Fatal("hash probes must depend on the scanned key")
			}
		default:
			t.Fatalf("unexpected PC %#x", r.PC)
		}
	}
	// 3 scans per probe.
	if scans < 2*probes {
		t.Errorf("scan/probe ratio off: %d scans, %d probes", scans, probes)
	}
	if probes == 0 {
		t.Fatal("no probes emitted")
	}
}

func TestHashJoinDeterministic(t *testing.T) {
	a := Collect(NewHashJoin("hj", 5, 1000, DefaultHashJoinParams()), 0)
	b := Collect(NewHashJoin("hj", 5, 1000, DefaultHashJoinParams()), 0)
	for i := range a.Records() {
		if a.Records()[i] != b.Records()[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestTiledGEMMStructure(t *testing.T) {
	p := TiledGEMMParams{N: 64, Tile: 8, GapMean: 1}
	g := NewTiledGEMM("gemm", 1, 3*8*8*8, p) // exactly one (ti, tj) tile pass
	countsByPC := map[uint64]int{}
	cLines := map[uint64]bool{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		countsByPC[r.PC]++
		if r.PC == 0xa00080 {
			cLines[r.Addr.LineID()] = true
		}
	}
	// The three matrices are read equally often.
	if countsByPC[0xa00000] != countsByPC[0xa00040] ||
		countsByPC[0xa00040] != countsByPC[0xa00080] {
		t.Errorf("unbalanced matrix accesses: %v", countsByPC)
	}
	// The C tile is hot: 8x8 elements over at most 8 rows of 1 line each.
	if len(cLines) > 16 {
		t.Errorf("C tile touches %d lines, should stay small (reuse)", len(cLines))
	}
}

func TestTiledGEMMBMatrixStrided(t *testing.T) {
	p := TiledGEMMParams{N: 256, Tile: 4, GapMean: 1}
	g := NewTiledGEMM("gemm", 1, 600, p)
	var prevB uint64
	seen := false
	strided := 0
	total := 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.PC != 0xa00040 {
			continue
		}
		id := r.Addr.LineID()
		if seen {
			total++
			// Column walk: consecutive B reads jump N elements = N/8 lines.
			if id == prevB+uint64(p.N)/mem.LineBytes*8 {
				strided++
			}
		}
		prevB, seen = id, true
	}
	if total == 0 || strided*2 < total {
		t.Errorf("B walks should be row-strided: %d of %d", strided, total)
	}
}

func TestTiledGEMMPanicsOnBadTile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("tile not dividing N accepted")
		}
	}()
	NewTiledGEMM("g", 1, 10, TiledGEMMParams{N: 100, Tile: 7})
}

func TestExtraSpecs(t *testing.T) {
	for _, sp := range ExtraSpecs() {
		tr := Collect(sp.New(500), 0)
		if tr.Len() != 500 {
			t.Errorf("%s emitted %d records", sp.Name, tr.Len())
		}
	}
}
