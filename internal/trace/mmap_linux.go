//go:build linux

package trace

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can serve trace files from
// a memory mapping.
const mmapSupported = true

// mmapFile maps the whole file read-only and advises the kernel that
// access will be sequential (aggressive read-ahead, early page
// reclaim). It reports ok=false when the mapping fails — zero-length
// files, exotic filesystems — and the caller falls back to windowed
// reads.
func mmapFile(f *os.File, size int64) (data []byte, unmap func() error, ok bool) {
	if size <= 0 || int64(int(size)) != size {
		return nil, nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	// Advisory only: a failure costs read-ahead, not correctness.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	return data, func() error { return syscall.Munmap(data) }, true
}
