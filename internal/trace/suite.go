package trace

import "fmt"

// Family labels a benchmark family from the paper's Table VI.
type Family string

// The four trace families evaluated in the paper.
const (
	SPEC06 Family = "spec06"
	SPEC17 Family = "spec17"
	Ligra  Family = "ligra"
	PARSEC Family = "parsec"
)

// MPKIClass is the paper's Table VII workload classification.
type MPKIClass string

// MPKI classes used to build heterogeneous 4-core mixes.
const (
	LowMPKI    MPKIClass = "low"    // 5 < MPKI <= 10
	MediumMPKI MPKIClass = "medium" // 10 < MPKI <= 20
	HighMPKI   MPKIClass = "high"   // MPKI > 20
)

// Spec describes one suite trace: how to construct its generator.
type Spec struct {
	Name   string
	Family Family
	Class  MPKIClass
	// New constructs the generator with the given record count.
	New func(length int) Source
	// File is the backing .pmpt path for external (manifest) traces and
	// empty for synthetic generators. It travels in distributed job
	// specs so remote workers open the file directly instead of needing
	// the manifest (see bench.BuildJobRun).
	File string
}

// kind identifies a generator archetype inside a family.
type kind int

const (
	kStream kind = iota
	kStride
	kBackward
	kGraph
	kChase
	kMixed
)

func (k kind) String() string {
	return [...]string{"stream", "stride", "mcf", "graph", "chase", "mix"}[k]
}

// class assignment per kind: streams and strides miss moderately,
// backward walks and graph traversals miss heavily, mixed in between.
func classOf(k kind, variant int) MPKIClass {
	switch k {
	case kStream, kStride:
		if variant%2 == 0 {
			return LowMPKI
		}
		return MediumMPKI
	case kBackward, kGraph, kChase:
		if variant%3 == 0 {
			return MediumMPKI
		}
		return HighMPKI
	default:
		return MediumMPKI
	}
}

func makeSpec(fam Family, k kind, variant int) Spec {
	name := fmt.Sprintf("%s.%s-%d", fam, k, variant)
	seed := int64(1e6)*int64(k+1) + int64(variant)*7919
	var mk func(length int) Source
	switch k {
	case kStream:
		mk = func(n int) Source {
			p := DefaultStreamParams()
			p.Streams = 2 + variant%4
			p.WorkingSet = uint64(16+16*(variant%4)) << 20
			return NewStream(name, seed, n, p)
		}
	case kStride:
		mk = func(n int) Source {
			p := DefaultStrideParams()
			p.Strides = [][]int{{2, 3, 4}, {2, 5}, {3, 7}, {4}}[variant%4]
			p.Walkers = 2 + variant%3
			return NewStride(name, seed, n, p)
		}
	case kBackward:
		mk = func(n int) Source {
			p := DefaultBackwardParams()
			p.LocalProb = []float64{0.25, 0.35, 0.45}[variant%3]
			return NewBackward(name, seed, n, p)
		}
	case kGraph:
		mk = func(n int) Source {
			p := DefaultGraphParams()
			p.RandomProb = []float64{0.12, 0.2, 0.3}[variant%3]
			p.MaxDegree = []int{32, 48, 64}[variant%3]
			return NewGraph(name, seed, n, p)
		}
	case kChase:
		mk = func(n int) Source {
			p := DefaultPointerChaseParams()
			p.HotProb = []float64{0.4, 0.5, 0.6}[variant%3]
			return NewPointerChase(name, seed, n, p)
		}
	default:
		mk = func(n int) Source {
			p := DefaultMixedParams()
			p.PhaseLen = []int{4096, 8192, 16384}[variant%3]
			return NewMixed(name, seed, n, p)
		}
	}
	return Spec{Name: name, Family: fam, Class: classOf(k, variant), New: mk}
}

// Suite returns the full 125-trace suite with the paper's Table VI
// family counts: 38 SPEC06, 36 SPEC17, 42 Ligra, 9 PARSEC. Within the
// SPEC families the archetypes rotate among streaming, strided, MCF-like
// backward and pointer-chase workloads; Ligra traces are graph
// traversals; PARSEC traces are phase mixes.
func Suite() []Spec {
	var specs []Spec
	spec06Kinds := []kind{kStream, kStride, kBackward, kChase}
	for i := 0; i < 38; i++ {
		specs = append(specs, makeSpec(SPEC06, spec06Kinds[i%len(spec06Kinds)], i))
	}
	spec17Kinds := []kind{kStream, kStride, kBackward, kMixed}
	for i := 0; i < 36; i++ {
		specs = append(specs, makeSpec(SPEC17, spec17Kinds[i%len(spec17Kinds)], 100+i))
	}
	for i := 0; i < 42; i++ {
		specs = append(specs, makeSpec(Ligra, kGraph, 200+i))
	}
	for i := 0; i < 9; i++ {
		specs = append(specs, makeSpec(PARSEC, kMixed, 300+i))
	}
	return specs
}

// Representative returns a reduced, family-balanced subset of the suite
// for quick experiments: n specs (n >= 4), at least one per family.
func Representative(n int) []Spec {
	all := Suite()
	if n >= len(all) {
		return all
	}
	if n < 4 {
		n = 4
	}
	// Pick evenly from each family, proportional to family size.
	byFam := map[Family][]Spec{}
	order := []Family{SPEC06, SPEC17, Ligra, PARSEC}
	for _, s := range all {
		byFam[s.Family] = append(byFam[s.Family], s)
	}
	var out []Spec
	quota := map[Family]int{}
	for _, f := range order {
		q := n * len(byFam[f]) / len(all)
		if q < 1 {
			q = 1
		}
		quota[f] = q
	}
	for _, f := range order {
		fam := byFam[f]
		q := quota[f]
		if len(out)+q > n {
			q = n - len(out)
		}
		step := len(fam) / q
		if step < 1 {
			step = 1
		}
		// SPEC families rotate archetypes with period 4; avoid a stride
		// that aliases onto a single archetype.
		if step > 1 && step%4 == 0 {
			step++
		}
		for i := 0; i < q && i*step < len(fam); i++ {
			out = append(out, fam[i*step])
		}
	}
	return out
}

// ByClass partitions specs by MPKI class.
func ByClass(specs []Spec) map[MPKIClass][]Spec {
	out := map[MPKIClass][]Spec{}
	for _, s := range specs {
		out[s.Class] = append(out[s.Class], s)
	}
	return out
}
