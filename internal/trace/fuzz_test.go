package trace

import (
	"bytes"
	"testing"
)

// FuzzRead checks that the trace reader never panics and never
// round-trips inconsistently on arbitrary input.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and near-miss corruptions.
	var buf bytes.Buffer
	tr := NewTrace("seed", []Record{
		{PC: 0x400, Addr: 0x1000, Gap: 3, Dep: DepChain},
		{PC: 0x404, Addr: 0x2000},
	})
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PMPT"))
	f.Add(append(append([]byte{}, valid[:20]...), 0xff))
	truncated := append([]byte{}, valid[:len(valid)-3]...)
	f.Add(truncated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic
		}
		// Whatever parsed must re-serialize and re-parse identically.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		back, err := Read(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if back.Name() != got.Name() || back.Len() != got.Len() {
			t.Fatalf("round trip changed shape: %q/%d vs %q/%d",
				got.Name(), got.Len(), back.Name(), back.Len())
		}
		for i := range got.Records() {
			if got.Records()[i] != back.Records()[i] {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
