package trace

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePMPT collects a small synthetic trace to a .pmpt file and
// returns its path and record count.
func writePMPT(t *testing.T, dir, name string, records int) string {
	t.Helper()
	tr := Collect(NewStream(name, 42, records, DefaultStreamParams()), 0)
	path := filepath.Join(dir, name+".pmpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeManifest marshals a manifest next to the trace files.
func writeManifest(t *testing.T, dir string, m Manifest) string {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "traces.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadManifest(t *testing.T) {
	dir := t.TempDir()
	p1 := writePMPT(t, dir, "ext-a", 500)
	writePMPT(t, dir, "ext-b", 300)
	sum, err := FileSHA256(p1)
	if err != nil {
		t.Fatal(err)
	}

	path := writeManifest(t, dir, Manifest{
		Version: ManifestVersion,
		Traces: []ExternalSpec{
			{Name: "ext-a", Family: "spec06", Class: HighMPKI, Path: "ext-a.pmpt", SHA256: sum, Records: 500},
			{Name: "ext-b", Path: "ext-b.pmpt"}, // defaults: family external, class medium
		},
	})

	specs, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("loaded %d specs, want 2", len(specs))
	}
	a, b := specs[0], specs[1]
	if a.Name != "ext-a" || a.Family != "spec06" || a.Class != HighMPKI || a.File != p1 {
		t.Errorf("spec a = %+v", a)
	}
	if b.Family != "external" || b.Class != MediumMPKI {
		t.Errorf("spec b defaults not applied: %+v", b)
	}

	// The spec's New opens the file lazily and caps at the request.
	src := a.New(100)
	if src.Name() != "ext-a" {
		t.Errorf("source name %q", src.Name())
	}
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Errorf("capped source yielded %d records, want 100", n)
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Error("source empty after Reset")
	}

	// Asking for more than the file holds drains the file and stops.
	src = a.New(10_000)
	n = 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 500 {
		t.Errorf("oversized request yielded %d records, want 500", n)
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	writePMPT(t, dir, "ext-a", 100)

	cases := []struct {
		name string
		m    Manifest
		want string
	}{
		{"bad version", Manifest{Version: 99, Traces: []ExternalSpec{{Name: "x", Path: "ext-a.pmpt"}}}, "version"},
		{"empty", Manifest{Version: ManifestVersion}, "no traces"},
		{"no name", Manifest{Version: ManifestVersion, Traces: []ExternalSpec{{Path: "ext-a.pmpt"}}}, "no name"},
		{"no path", Manifest{Version: ManifestVersion, Traces: []ExternalSpec{{Name: "x"}}}, "no path"},
		{"dup name", Manifest{Version: ManifestVersion, Traces: []ExternalSpec{
			{Name: "x", Path: "ext-a.pmpt"}, {Name: "x", Path: "ext-a.pmpt"},
		}}, "duplicate"},
	}
	for _, c := range cases {
		path := writeManifest(t, t.TempDir(), c.m)
		if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestManifestVerify(t *testing.T) {
	dir := t.TempDir()
	p := writePMPT(t, dir, "ext-a", 100)
	sum, err := FileSHA256(p)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong hash.
	bad := strings.Repeat("0", 64)
	path := writeManifest(t, dir, Manifest{Version: ManifestVersion,
		Traces: []ExternalSpec{{Name: "ext-a", Path: "ext-a.pmpt", SHA256: bad}}})
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "sha256") {
		t.Errorf("wrong hash: err %v", err)
	}

	// Wrong record count.
	path = writeManifest(t, dir, Manifest{Version: ManifestVersion,
		Traces: []ExternalSpec{{Name: "ext-a", Path: "ext-a.pmpt", Records: 99}}})
	if _, err := LoadManifest(path); err == nil || !strings.Contains(err.Error(), "records") {
		t.Errorf("wrong records: err %v", err)
	}

	// Missing file.
	path = writeManifest(t, dir, Manifest{Version: ManifestVersion,
		Traces: []ExternalSpec{{Name: "gone", Path: "missing.pmpt"}}})
	if _, err := LoadManifest(path); err == nil {
		t.Error("missing file: no error")
	}

	// All good.
	path = writeManifest(t, dir, Manifest{Version: ManifestVersion,
		Traces: []ExternalSpec{{Name: "ext-a", Path: "ext-a.pmpt", SHA256: sum, Records: 100}}})
	if _, err := LoadManifest(path); err != nil {
		t.Errorf("valid manifest: %v", err)
	}
}

func TestLimitSource(t *testing.T) {
	tr := Collect(NewStream("lim", 7, 50, DefaultStreamParams()), 0)
	if s := Limit(tr, 0); s != Source(tr) {
		t.Error("Limit(0) should return the source unchanged")
	}
	tr.Reset()
	s := Limit(tr, 10)
	for i := 0; i < 10; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("record %d missing", i)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("limit not enforced")
	}
	s.Reset()
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Errorf("after Reset: %d records, want 10", n)
	}
}
