package trace

import (
	"bytes"
	"testing"

	"pmp/internal/mem"
)

func TestRecordInstructions(t *testing.T) {
	r := Record{Gap: 5}
	if got := r.Instructions(); got != 6 {
		t.Errorf("Instructions() = %d, want 6", got)
	}
}

func TestTraceSource(t *testing.T) {
	recs := []Record{{PC: 1, Addr: 64}, {PC: 2, Addr: 128, Gap: 3}}
	tr := NewTrace("t", recs)
	if tr.Name() != "t" || tr.Len() != 2 {
		t.Fatalf("bad trace: %q len %d", tr.Name(), tr.Len())
	}
	var got []Record
	for {
		r, ok := tr.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("replay mismatch: %v", got)
	}
	tr.Reset()
	if r, ok := tr.Next(); !ok || r != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x400123, Addr: 0x7fff0040, Gap: 7},
		{PC: 0x400456, Addr: 0x7fff1080, Gap: 0},
		{PC: ^uint64(0), Addr: mem.Addr(^uint64(0)), Gap: 65535},
	}
	tr := NewTrace("roundtrip", recs)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if back.Name() != "roundtrip" || back.Len() != len(recs) {
		t.Fatalf("header mismatch: %q %d", back.Name(), back.Len())
	}
	for i, r := range back.Records() {
		if r != recs[i] {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Correct magic, bad version.
	var buf bytes.Buffer
	buf.Write([]byte("PMPT"))
	buf.Write(make([]byte, 12)) // version 0
	if _, err := Read(&buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestCollect(t *testing.T) {
	g := NewStream("s", 1, 100, DefaultStreamParams())
	tr := Collect(g, 10)
	if tr.Len() != 10 {
		t.Errorf("Collect(10) len = %d", tr.Len())
	}
	tr = Collect(g, 0)
	if tr.Len() != 100 {
		t.Errorf("Collect(all) len = %d", tr.Len())
	}
}

func generators(n int) []Source {
	return []Source{
		NewStream("stream", 42, n, DefaultStreamParams()),
		NewStride("stride", 42, n, DefaultStrideParams()),
		NewBackward("backward", 42, n, DefaultBackwardParams()),
		NewGraph("graph", 42, n, DefaultGraphParams()),
		NewPointerChase("chase", 42, n, DefaultPointerChaseParams()),
		NewMixed("mixed", 42, n, DefaultMixedParams()),
	}
}

func TestGeneratorsDeterministicAndBounded(t *testing.T) {
	const n = 2000
	for _, g := range generators(n) {
		t.Run(g.Name(), func(t *testing.T) {
			first := Collect(g, 0)
			if first.Len() != n {
				t.Fatalf("emitted %d records, want %d", first.Len(), n)
			}
			second := Collect(g, 0) // Collect resets
			for i := range first.Records() {
				if first.Records()[i] != second.Records()[i] {
					t.Fatalf("record %d differs after Reset", i)
				}
			}
		})
	}
}

func TestStreamIsSequentialPerPC(t *testing.T) {
	g := NewStream("s", 7, 5000, StreamParams{
		Streams: 2, RestartProb: 0, WorkingSet: 1 << 20, GapMean: 2,
	})
	last := map[uint64]uint64{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		id := r.Addr.LineID()
		// Element walks revisit the current line several times, then
		// advance by exactly one line.
		if prev, seen := last[r.PC]; seen && id != prev && id != prev+1 {
			t.Fatalf("stream %#x jumped from line %d to %d", r.PC, prev, id)
		}
		last[r.PC] = id
	}
}

func TestStrideIsConstantPerPC(t *testing.T) {
	g := NewStride("s", 7, 5000, StrideParams{
		Walkers: 1, Strides: []int{3}, WorkingSet: 1 << 20, GapMean: 2, PhaseLen: 1 << 30,
	})
	var prev uint64
	seen := false
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		id := r.Addr.LineID()
		// Each strided line is read a few times, then the walker moves
		// exactly `stride` lines.
		if seen && id != prev && id != prev+3 {
			t.Fatalf("stride walker jumped from %d to %d", prev, id)
		}
		prev, seen = id, true
	}
}

func TestBackwardEntersRegionsHigh(t *testing.T) {
	g := NewBackward("b", 7, 20000, BackwardParams{
		Walkers: 1, WorkingSet: 8 << 20, LocalProb: 0, GapMean: 2,
	})
	// The first access to every fresh region from the backward walker
	// should be at a high offset. Track first-touch offsets.
	firstTouch := map[uint64]int{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		pid := r.Addr.PageID()
		if _, seen := firstTouch[pid]; !seen {
			firstTouch[pid] = r.Addr.PageOffset()
		}
	}
	high := 0
	for _, off := range firstTouch {
		if off == mem.LinesPerPage-1 {
			high++
		}
	}
	if high*10 < len(firstTouch)*9 {
		t.Errorf("only %d/%d regions entered at the top offset", high, len(firstTouch))
	}
}

func TestGraphBurstsAreSequential(t *testing.T) {
	g := NewGraph("g", 7, 5000, GraphParams{
		Vertices: 1 << 16, MaxDegree: 16,
		RankBytes: 4 << 20, EdgeBytes: 16 << 20,
		RandomProb: 0, GapMean: 2,
	})
	var prev uint64
	seen := false
	jumps := 0
	n := 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		id := r.Addr.LineID()
		if seen && id != prev && id != prev+1 {
			jumps++
		}
		prev, seen = id, true
		n++
	}
	// Bursts average several lines of several reads each, so true
	// discontinuities are rare.
	if jumps*4 > n {
		t.Errorf("too many discontinuities: %d of %d", jumps, n)
	}
}

func TestSuiteShape(t *testing.T) {
	specs := Suite()
	if len(specs) != 125 {
		t.Fatalf("suite has %d traces, want 125", len(specs))
	}
	counts := map[Family]int{}
	names := map[string]bool{}
	for _, s := range specs {
		counts[s.Family]++
		if names[s.Name] {
			t.Errorf("duplicate trace name %q", s.Name)
		}
		names[s.Name] = true
		if s.Class != LowMPKI && s.Class != MediumMPKI && s.Class != HighMPKI {
			t.Errorf("trace %q has bad class %q", s.Name, s.Class)
		}
	}
	want := map[Family]int{SPEC06: 38, SPEC17: 36, Ligra: 42, PARSEC: 9}
	for f, n := range want {
		if counts[f] != n {
			t.Errorf("family %s has %d traces, want %d", f, counts[f], n)
		}
	}
}

func TestSuiteGeneratorsWork(t *testing.T) {
	for _, s := range Suite()[:8] {
		g := s.New(100)
		tr := Collect(g, 0)
		if tr.Len() != 100 {
			t.Errorf("%s emitted %d records", s.Name, tr.Len())
		}
	}
}

func TestRepresentativeBalanced(t *testing.T) {
	specs := Representative(12)
	if len(specs) == 0 || len(specs) > 12 {
		t.Fatalf("Representative(12) returned %d specs", len(specs))
	}
	fams := map[Family]bool{}
	for _, s := range specs {
		fams[s.Family] = true
	}
	for _, f := range []Family{SPEC06, SPEC17, Ligra, PARSEC} {
		if !fams[f] {
			t.Errorf("family %s missing from representative subset", f)
		}
	}
	if got := Representative(1000); len(got) != 125 {
		t.Errorf("Representative(1000) should return the whole suite, got %d", len(got))
	}
}

func TestByClass(t *testing.T) {
	m := ByClass(Suite())
	total := 0
	for _, class := range []MPKIClass{LowMPKI, MediumMPKI, HighMPKI} {
		if len(m[class]) == 0 {
			t.Errorf("class %s is empty", class)
		}
		total += len(m[class])
	}
	if total != 125 {
		t.Errorf("classes cover %d traces, want 125", total)
	}
}
