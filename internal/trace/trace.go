// Package trace defines the instruction-trace format consumed by the
// simulator and provides deterministic synthetic workload generators
// standing in for the paper's 125 SPEC CPU 2006/2017, PARSEC and Ligra
// traces (see DESIGN.md for the substitution argument).
//
// A trace is a sequence of load records; each record carries the number
// of non-memory instructions that precede the load, so a trace of L
// records represents L + sum(Gap) instructions. Stores are not modelled:
// every prefetcher in the paper trains on L1D loads.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"pmp/internal/mem"
)

// DepKind describes a load's address dependency. Dependent loads
// cannot issue until their producer's data returns; they are what make
// prefetching valuable on irregular code.
type DepKind uint8

// Dependency kinds.
const (
	// DepNone: the address comes from an induction variable or constant
	// (array walks) — the load issues as soon as it dispatches.
	DepNone DepKind = iota
	// DepPrev: the address was produced by the immediately preceding
	// load in program order (e.g. rank[edge[i]] where the edge load just
	// ran).
	DepPrev
	// DepChain: the address was produced by the previous load of the
	// same static instruction (pointer chasing: node = node->next).
	DepChain
)

// Record is one load instruction.
type Record struct {
	PC   uint64   // program counter of the load
	Addr mem.Addr // virtual byte address accessed
	Gap  uint16   // non-memory instructions preceding this load
	Dep  DepKind  // address dependency (see DepKind)
}

// Instructions returns the instruction count the record represents.
func (r Record) Instructions() uint64 { return uint64(r.Gap) + 1 }

// Source is a replayable stream of records. Generators regenerate
// deterministically on Reset; file and in-memory sources rewind.
type Source interface {
	// Name returns a stable identifier for reports.
	Name() string
	// Next returns the next record; ok is false at end of trace.
	Next() (r Record, ok bool)
	// Reset restarts the source from the beginning.
	Reset()
}

// Trace is an in-memory source.
type Trace struct {
	name string
	recs []Record
	pos  int
}

// NewTrace wraps records in a Source.
func NewTrace(name string, recs []Record) *Trace {
	return &Trace{name: name, recs: recs}
}

// Name implements Source.
func (t *Trace) Name() string { return t.name }

// Next implements Source.
func (t *Trace) Next() (Record, bool) {
	if t.pos >= len(t.recs) {
		return Record{}, false
	}
	r := t.recs[t.pos]
	t.pos++
	return r, true
}

// Reset implements Source.
func (t *Trace) Reset() { t.pos = 0 }

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.recs) }

// Records returns the underlying slice (not a copy).
func (t *Trace) Records() []Record { return t.recs }

// Collect materializes up to max records from a source (all records if
// max <= 0).
func Collect(s Source, max int) *Trace {
	var recs []Record
	s.Reset()
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		recs = append(recs, r)
		if max > 0 && len(recs) >= max {
			break
		}
	}
	return NewTrace(s.Name(), recs)
}

// --- binary trace files ---

var magic = [4]byte{'P', 'M', 'P', 'T'}

const formatVersion = 2

// ErrBadFormat is returned when a trace file is malformed.
var ErrBadFormat = errors.New("trace: bad file format")

// Write serializes a trace: a 16-byte header (magic, version, record
// count, name length) followed by the name and fixed-width records.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], formatVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.recs)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.name); err != nil {
		return err
	}
	var rec [19]byte
	for _, r := range t.recs {
		binary.LittleEndian.PutUint64(rec[0:], r.PC)
		binary.LittleEndian.PutUint64(rec[8:], uint64(r.Addr))
		binary.LittleEndian.PutUint16(rec[16:], r.Gap)
		rec[18] = byte(r.Dep)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadFormat
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	nameLen := binary.LittleEndian.Uint32(hdr[8:])
	if nameLen > 4096 {
		return nil, fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	// Do not trust the header's record count for allocation: a corrupt
	// file must not force a giant up-front slice. Read bounded chunks
	// sized exactly by the data that actually arrives, then concatenate
	// once — appending into one growing slice instead would re-copy
	// every already-read record at each doubling (FullScale traces run
	// to millions of records).
	const chunkRecords = 1 << 20
	var chunks [][]Record
	var rec [19]byte
	for read := uint32(0); read < n; {
		chunk := make([]Record, 0, min(int(n-read), chunkRecords))
		for len(chunk) < cap(chunk) {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: reading record %d: %w", read, err)
			}
			chunk = append(chunk, decodeRecord(rec[:]))
			read++
		}
		chunks = append(chunks, chunk)
	}
	if len(chunks) == 1 {
		return NewTrace(string(name), chunks[0]), nil
	}
	recs := make([]Record, 0, int(n))
	for _, c := range chunks {
		recs = append(recs, c...)
	}
	return NewTrace(string(name), recs), nil
}
