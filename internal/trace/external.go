package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// External-suite manifests: a JSON file listing converted real-workload
// traces (.pmpt files produced by `pmptrace convert` from ChampSim/DPC
// sets) so they load next to the synthetic Suite and drop into pmpsim,
// pmpexperiments and the distributed sweep unchanged. See
// docs/traces.md ("External workloads") for the schema and workflow.

// ManifestVersion is the current manifest schema version.
const ManifestVersion = 1

// ExternalSpec is one manifest entry: a converted trace on disk plus
// the suite metadata the experiment tables group by.
type ExternalSpec struct {
	// Name is the suite-unique trace name (e.g. "spec06.mcf-46B").
	Name string `json:"name"`
	// Family groups the trace in per-family table columns. Free-form;
	// the synthetic families (spec06, spec17, ligra, parsec) are
	// conventional. Defaults to "external".
	Family Family `json:"family,omitempty"`
	// Class is the MPKI class used for heterogeneous mix construction.
	// Defaults to medium.
	Class MPKIClass `json:"class,omitempty"`
	// Path locates the .pmpt file, relative to the manifest's directory
	// unless absolute.
	Path string `json:"path"`
	// SHA256 is the hex digest of the .pmpt file; when set, Verify
	// checks it. `pmptrace convert` prints it with a ready-to-paste
	// manifest snippet.
	SHA256 string `json:"sha256,omitempty"`
	// Records documents the converted record count (informational).
	Records int `json:"records,omitempty"`
}

// Manifest is the external-suite manifest file.
type Manifest struct {
	Version int            `json:"version"`
	Traces  []ExternalSpec `json:"traces"`
}

// ReadManifest parses a manifest file, validates it, and resolves every
// entry's Path relative to the manifest's directory.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("trace: manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("trace: manifest %s: version %d, want %d", path, m.Version, ManifestVersion)
	}
	if len(m.Traces) == 0 {
		return nil, fmt.Errorf("trace: manifest %s: no traces", path)
	}
	dir := filepath.Dir(path)
	seen := map[string]bool{}
	for i := range m.Traces {
		e := &m.Traces[i]
		if e.Name == "" {
			return nil, fmt.Errorf("trace: manifest %s: entry %d has no name", path, i)
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("trace: manifest %s: duplicate trace name %q", path, e.Name)
		}
		seen[e.Name] = true
		if e.Path == "" {
			return nil, fmt.Errorf("trace: manifest %s: trace %q has no path", path, e.Name)
		}
		if !filepath.IsAbs(e.Path) {
			e.Path = filepath.Join(dir, e.Path)
		}
		if e.Family == "" {
			e.Family = "external"
		}
		if e.Class == "" {
			e.Class = MediumMPKI
		}
	}
	return &m, nil
}

// Specs converts the manifest entries into suite specs (see FileSpec).
func (m *Manifest) Specs() []Spec {
	specs := make([]Spec, len(m.Traces))
	for i, e := range m.Traces {
		specs[i] = FileSpec(e)
	}
	return specs
}

// Verify checks that every entry's file exists, is a readable .pmpt,
// and matches its SHA256 when one is recorded.
func (m *Manifest) Verify() error {
	for _, e := range m.Traces {
		info, err := Stat(e.Path)
		if err != nil {
			return fmt.Errorf("trace: manifest trace %q: %w", e.Name, err)
		}
		if e.Records > 0 && info.Records != e.Records {
			return fmt.Errorf("trace: manifest trace %q: file has %d records, manifest says %d",
				e.Name, info.Records, e.Records)
		}
		if e.SHA256 == "" {
			continue
		}
		sum, err := FileSHA256(e.Path)
		if err != nil {
			return fmt.Errorf("trace: manifest trace %q: %w", e.Name, err)
		}
		if sum != e.SHA256 {
			return fmt.Errorf("trace: manifest trace %q: sha256 %s, manifest says %s", e.Name, sum, e.SHA256)
		}
	}
	return nil
}

// LoadManifest reads, verifies and converts a manifest in one step —
// the path CLI surfaces take.
func LoadManifest(path string) ([]Spec, error) {
	m, err := ReadManifest(path)
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m.Specs(), nil
}

// FileSpec builds the suite spec for one external trace. Its New opens
// a fresh lazy FileSource per call (sources are single-use streams; see
// trace.Source) and caps it at the requested record count, so a
// converted 200M-load trace participates in a QuickScale run without
// loading whole. New panics when the file cannot be opened — inside a
// sweep that quarantines the job, exactly like a crashed simulation,
// instead of wedging the whole run.
func FileSpec(e ExternalSpec) Spec {
	name, path := e.Name, e.Path
	return Spec{
		Name:   name,
		Family: e.Family,
		Class:  e.Class,
		File:   path,
		New: func(n int) Source {
			fs, err := OpenFile(path)
			if err != nil {
				panic(fmt.Sprintf("trace: external trace %q: %v", name, err))
			}
			return Limit(fs, n)
		},
	}
}

// FileSHA256 returns the lowercase hex SHA-256 of a file's contents.
func FileSHA256(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Limit caps a source at max records (max <= 0: unlimited). Reset
// rewinds both the cap and the underlying source.
func Limit(s Source, max int) Source {
	if max <= 0 {
		return s
	}
	return &limitSource{src: s, max: max}
}

type limitSource struct {
	src Source
	max int
	n   int
}

func (l *limitSource) Name() string { return l.src.Name() }

func (l *limitSource) Next() (Record, bool) {
	if l.n >= l.max {
		return Record{}, false
	}
	r, ok := l.src.Next()
	if ok {
		l.n++
	}
	return r, ok
}

func (l *limitSource) Reset() {
	l.src.Reset()
	l.n = 0
}
