package trace

import (
	"math"
	"math/rand"

	"pmp/internal/mem"
)

// The generators in this file are deterministic: the same (seed, length,
// params) always yields the same record stream, so experiments are
// reproducible without storing multi-gigabyte trace files. Each
// generator mimics the pattern structure of one workload family the
// paper evaluates (see DESIGN.md §1).

type base struct {
	name    string
	seed    int64
	length  int
	rng     *rand.Rand
	emitted int
}

func newBase(name string, seed int64, length int) base {
	b := base{name: name, seed: seed, length: length}
	b.resetBase()
	return b
}

func (b *base) Name() string { return b.name }

func (b *base) resetBase() {
	b.rng = rand.New(rand.NewSource(b.seed))
	b.emitted = 0
}

func (b *base) done() bool { return b.emitted >= b.length }

func (b *base) gap(mean int) uint16 {
	// Geometric-ish gap around the mean keeps instruction mix plausible.
	g := b.rng.Intn(2*mean + 1)
	return uint16(g)
}

// line returns the byte address of lineID with a random intra-line offset.
func (b *base) line(lineID uint64) mem.Addr {
	return mem.Addr(lineID*mem.LineBytes + uint64(b.rng.Intn(8))*8)
}

// elem returns the byte address of the idx-th 8-byte element.
func elem(idx uint64) mem.Addr { return mem.Addr(idx * 8) }

const elemsPerLine = mem.LineBytes / 8

// --- Stream: sequential scans (streaming SPEC workloads, e.g. libquantum/lbm) ---

// StreamParams tunes the Stream generator.
type StreamParams struct {
	Streams     int     // concurrent sequential streams
	RestartProb float64 // per-access probability a stream jumps to a new base
	WorkingSet  uint64  // bytes of address space streams roam over
	GapMean     int     // mean non-load gap
}

// DefaultStreamParams returns sensible defaults.
func DefaultStreamParams() StreamParams {
	return StreamParams{Streams: 4, RestartProb: 0.0005, WorkingSet: 64 << 20, GapMean: 4}
}

// Stream emits interleaved ascending element scans (8-byte elements, so
// each line is touched several times before the scan advances): dense
// full-region patterns with trigger offsets concentrated at region
// starts, and the intra-line reuse real streaming code exhibits.
type Stream struct {
	base
	p   StreamParams
	pcs []uint64
	pos []uint64 // element index per stream
}

// NewStream constructs a Stream generator.
func NewStream(name string, seed int64, length int, p StreamParams) *Stream {
	s := &Stream{base: newBase(name, seed, length), p: p}
	s.init()
	return s
}

func (s *Stream) init() {
	s.pcs = make([]uint64, s.p.Streams)
	s.pos = make([]uint64, s.p.Streams)
	for i := range s.pcs {
		s.pcs[i] = 0x400000 + uint64(i)*0x40
		s.pos[i] = uint64(s.rng.Int63n(int64(s.p.WorkingSet/8))) &^ (elemsPerLine - 1)
	}
}

// Reset implements Source.
func (s *Stream) Reset() { s.resetBase(); s.init() }

// Next implements Source.
func (s *Stream) Next() (Record, bool) {
	if s.done() {
		return Record{}, false
	}
	s.emitted++
	i := s.rng.Intn(s.p.Streams)
	if s.rng.Float64() < s.p.RestartProb {
		s.pos[i] = uint64(s.rng.Int63n(int64(s.p.WorkingSet/8))) &^ (elemsPerLine - 1)
	}
	r := Record{PC: s.pcs[i], Addr: elem(s.pos[i]), Gap: s.gap(s.p.GapMean)}
	s.pos[i]++
	return r, true
}

// --- Stride: constant-stride walkers (astar-like slashes) ---

// StrideParams tunes the Stride generator.
type StrideParams struct {
	Walkers    int   // concurrent strided walkers
	Strides    []int // line strides to cycle among (paper Fig 5b shows 3)
	WorkingSet uint64
	GapMean    int
	PhaseLen   int // accesses before a walker re-bases
}

// DefaultStrideParams returns sensible defaults.
func DefaultStrideParams() StrideParams {
	return StrideParams{Walkers: 3, Strides: []int{2, 3, 4}, WorkingSet: 3 << 20, GapMean: 8, PhaseLen: 4096}
}

// Stride emits constant-stride scans; patterns are evenly spaced bits
// whose spacing equals the stride, clustering cleanly by trigger offset.
// Each strided line is read AccessesPerLine times in a row (fields of a
// struct), giving realistic intra-line reuse.
type Stride struct {
	base
	p      StrideParams
	pos    []uint64
	stride []int
	left   []int
	sub    []int
}

// accessesPerStrideLine is the number of consecutive reads per strided
// line (struct fields touched per element).
const accessesPerStrideLine = 4

// NewStride constructs a Stride generator.
func NewStride(name string, seed int64, length int, p StrideParams) *Stride {
	s := &Stride{base: newBase(name, seed, length), p: p}
	s.init()
	return s
}

func (s *Stride) init() {
	s.pos = make([]uint64, s.p.Walkers)
	s.stride = make([]int, s.p.Walkers)
	s.left = make([]int, s.p.Walkers)
	s.sub = make([]int, s.p.Walkers)
	for i := range s.pos {
		s.rebase(i)
	}
}

func (s *Stride) rebase(i int) {
	s.pos[i] = uint64(s.rng.Int63n(int64(s.p.WorkingSet / mem.LineBytes)))
	s.stride[i] = s.p.Strides[s.rng.Intn(len(s.p.Strides))]
	s.left[i] = s.p.PhaseLen
}

// Reset implements Source.
func (s *Stride) Reset() { s.resetBase(); s.init() }

// Next implements Source.
func (s *Stride) Next() (Record, bool) {
	if s.done() {
		return Record{}, false
	}
	s.emitted++
	i := s.rng.Intn(s.p.Walkers)
	if s.left[i] <= 0 {
		s.rebase(i)
	}
	s.left[i]--
	pc := 0x500000 + uint64(i)*0x40 + uint64(s.stride[i])*4
	r := Record{PC: pc, Addr: s.line(s.pos[i]), Gap: s.gap(s.p.GapMean)}
	s.sub[i]++
	if s.sub[i] >= accessesPerStrideLine {
		s.sub[i] = 0
		s.pos[i] += uint64(s.stride[i])
	}
	return r, true
}

// --- Backward: MCF-like backward array walks ---

// BackwardParams tunes the Backward generator.
type BackwardParams struct {
	Walkers    int
	WorkingSet uint64
	LocalProb  float64 // fraction of accesses in the local forward window
	GapMean    int
}

// DefaultBackwardParams returns sensible defaults.
func DefaultBackwardParams() BackwardParams {
	return BackwardParams{Walkers: 3, WorkingSet: 48 << 20, LocalProb: 0.35, GapMean: 4}
}

// Backward reproduces the MCF behaviour from the paper's §III
// discussion: loops walk a big array backward via pred pointers, so
// regions are entered at their last line (big trigger offsets) and then
// filled descending; a second population of accesses forms the "blue
// dotted slash" of small forward offsets around the current position.
type Backward struct {
	base
	p     BackwardParams
	pos   []uint64 // current line of each backward walker
	sub   []int    // intra-line accesses left for the current line
	local uint64   // current line of the local-window population
}

// NewBackward constructs a Backward generator.
func NewBackward(name string, seed int64, length int, p BackwardParams) *Backward {
	b := &Backward{base: newBase(name, seed, length), p: p}
	b.init()
	return b
}

func (b *Backward) init() {
	b.pos = make([]uint64, b.p.Walkers)
	b.sub = make([]int, b.p.Walkers)
	for i := range b.pos {
		b.rebase(i)
	}
	b.local = uint64(b.rng.Int63n(int64(b.p.WorkingSet / mem.LineBytes)))
}

func (b *Backward) rebase(i int) {
	// Start at the end of a region-aligned block so the first access in
	// each region has the maximal trigger offset.
	blocks := b.p.WorkingSet / mem.PageBytes
	blk := uint64(b.rng.Int63n(int64(blocks)))
	b.pos[i] = blk*mem.LinesPerPage + mem.LinesPerPage - 1
}

// Reset implements Source.
func (b *Backward) Reset() { b.resetBase(); b.init() }

// Next implements Source.
func (b *Backward) Next() (Record, bool) {
	if b.done() {
		return Record{}, false
	}
	b.emitted++
	if b.rng.Float64() < b.p.LocalProb {
		// Local forward window around a slowly advancing pointer.
		delta := uint64(b.rng.Intn(4))
		r := Record{PC: 0x600000, Addr: b.line(b.local + delta), Gap: b.gap(b.p.GapMean)}
		if b.rng.Float64() < 0.3 {
			b.local++
		}
		return r, true
	}
	i := b.rng.Intn(b.p.Walkers)
	pc := 0x601000 + uint64(i)*0x40 // the two pred-chasing loops
	// Walking ->pred pointers: each node address comes from the
	// previous load.
	r := Record{PC: pc, Addr: b.line(b.pos[i]), Gap: b.gap(b.p.GapMean), Dep: DepChain}
	b.sub[i]++
	if b.sub[i] < 2 { // two node fields per line
		return r, true
	}
	b.sub[i] = 0
	if b.pos[i] == 0 || b.rng.Float64() < 0.002 {
		b.rebase(i)
	} else {
		b.pos[i]--
	}
	return r, true
}

// --- Graph: Ligra-like frontier traversal ---

// GraphParams tunes the Graph generator.
type GraphParams struct {
	Vertices   int
	MaxDegree  int
	RankBytes  uint64  // size of the per-vertex property array
	EdgeBytes  uint64  // size of the edge array
	RandomProb float64 // property-array accesses interleaved per edge
	GapMean    int
}

// DefaultGraphParams returns sensible defaults.
func DefaultGraphParams() GraphParams {
	return GraphParams{
		Vertices: 1 << 20, MaxDegree: 48,
		RankBytes: 16 << 20, EdgeBytes: 96 << 20,
		RandomProb: 0.2, GapMean: 6,
	}
}

// Graph mimics the memory structure of Ligra push/pull iterations over
// a CSR graph:
//
//   - The edge array is consumed in power-law neighbor-list bursts.
//     Because CSR stores consecutive vertices' lists adjacently and
//     frontiers are processed in vertex order, bursts mostly continue
//     where the previous one ended, with occasional jumps when the
//     frontier is sparse.
//   - Property (rank) lookups interleave: partly a sequential sweep of
//     the property array (push iterations), partly random (pull
//     indexing by neighbor ID) — the genuinely irregular component.
type Graph struct {
	base
	p        GraphParams
	burstPos uint64 // current edge-array line
	burstLen int    // lines left in the current neighbor burst
	burstSub int    // intra-line edge reads left
	rankSeq  uint64 // sequential property-scan position (element index)
}

// NewGraph constructs a Graph generator.
func NewGraph(name string, seed int64, length int, p GraphParams) *Graph {
	g := &Graph{base: newBase(name, seed, length), p: p}
	g.init()
	return g
}

func (g *Graph) init() {
	g.burstPos = uint64(g.rng.Int63n(int64(g.p.EdgeBytes / mem.LineBytes)))
	g.burstLen, g.burstSub = 0, 0
	g.rankSeq = uint64(g.rng.Int63n(int64(g.p.RankBytes/8))) &^ (elemsPerLine - 1)
}

// Reset implements Source.
func (g *Graph) Reset() { g.resetBase(); g.init() }

func (g *Graph) newBurst() {
	// Power-law degree: most vertices have few neighbors, a heavy tail
	// has many.
	u := g.rng.Float64()
	if u < 1e-6 {
		u = 1e-6
	}
	deg := 1 + int(math.Pow(u, -0.6))
	if deg > g.p.MaxDegree {
		deg = g.p.MaxDegree
	}
	g.burstLen = deg
	if g.rng.Float64() < 0.2 {
		// Sparse frontier: jump to an unrelated part of the edge array.
		g.burstPos = uint64(g.rng.Int63n(int64(g.p.EdgeBytes / mem.LineBytes)))
	}
	// Dense frontier: the next vertex's list starts right after the
	// previous one, so burstPos simply continues.
}

// Next implements Source.
func (g *Graph) Next() (Record, bool) {
	if g.done() {
		return Record{}, false
	}
	g.emitted++
	if g.rng.Float64() < g.p.RandomProb {
		if g.rng.Float64() < 0.5 {
			// Pull-style property lookup. Vertices are visited with
			// frequency proportional to their degree, so the power-law
			// head dominates: hot vertices concentrate into a small,
			// cacheable prefix of the property array.
			lines := float64(g.p.RankBytes / mem.LineBytes)
			l := uint64(lines * math.Pow(g.rng.Float64(), 4))
			// rank[edge[i]]: the address depends on the edge load.
			return Record{PC: 0x700000, Addr: g.line(l), Gap: g.gap(g.p.GapMean), Dep: DepPrev}, true
		}
		// Push-style property sweep: sequential elements.
		r := Record{PC: 0x700080, Addr: elem(g.rankSeq), Gap: g.gap(g.p.GapMean)}
		g.rankSeq++
		if g.rankSeq >= g.p.RankBytes/8 {
			g.rankSeq = 0
		}
		return r, true
	}
	if g.burstLen <= 0 {
		g.newBurst()
	}
	r := Record{PC: 0x700040, Addr: g.line(g.burstPos), Gap: g.gap(g.p.GapMean)}
	g.burstSub++
	if g.burstSub >= elemsPerLine { // 8-byte edge IDs: 8 reads per line
		g.burstSub = 0
		g.burstPos++
		if g.rng.Float64() < 0.15 {
			// Weighted/filtered edges: skip a line, breaking pure
			// constant-delta sequences while staying spatially dense.
			g.burstPos++
		}
		if g.burstPos >= g.p.EdgeBytes/mem.LineBytes {
			g.burstPos = 0
		}
		g.burstLen--
	}
	return r, true
}

// --- PointerChase: dependent random walks (low prefetchability) ---

// PointerChaseParams tunes the PointerChase generator.
type PointerChaseParams struct {
	WorkingSet uint64
	HotSet     uint64  // bytes of a hot subset
	HotProb    float64 // probability an access goes to the hot subset
	GapMean    int
}

// DefaultPointerChaseParams returns sensible defaults.
func DefaultPointerChaseParams() PointerChaseParams {
	return PointerChaseParams{WorkingSet: 64 << 20, HotSet: 1 << 20, HotProb: 0.5, GapMean: 8}
}

// PointerChase emits dependent-looking random accesses with a hot
// subset; it bounds how much any prefetcher can help and supplies the
// high-MPKI irregular end of the suite.
type PointerChase struct {
	base
	p PointerChaseParams
}

// NewPointerChase constructs a PointerChase generator.
func NewPointerChase(name string, seed int64, length int, p PointerChaseParams) *PointerChase {
	return &PointerChase{base: newBase(name, seed, length), p: p}
}

// Reset implements Source.
func (pc *PointerChase) Reset() { pc.resetBase() }

// Next implements Source.
func (pc *PointerChase) Next() (Record, bool) {
	if pc.done() {
		return Record{}, false
	}
	pc.emitted++
	set := pc.p.WorkingSet
	basePC := uint64(0x800000)
	if pc.rng.Float64() < pc.p.HotProb {
		set = pc.p.HotSet
		basePC = 0x800040
	}
	l := uint64(pc.rng.Int63n(int64(set / mem.LineBytes)))
	return Record{PC: basePC, Addr: pc.line(l), Gap: pc.gap(pc.p.GapMean), Dep: DepChain}, true
}

// --- Mixed: PARSEC-like phase alternation ---

// MixedParams tunes the Mixed generator.
type MixedParams struct {
	PhaseLen int // records per phase
	GapMean  int
}

// DefaultMixedParams returns sensible defaults.
func DefaultMixedParams() MixedParams { return MixedParams{PhaseLen: 8192, GapMean: 5} }

// Mixed cycles among streaming, strided and irregular phases the way
// pipeline-parallel PARSEC applications alternate between data-parallel
// sweeps and shared-structure updates.
type Mixed struct {
	base
	p      MixedParams
	phase  int
	inner  Source
	left   int
	nPhase int
}

// NewMixed constructs a Mixed generator.
func NewMixed(name string, seed int64, length int, p MixedParams) *Mixed {
	m := &Mixed{base: newBase(name, seed, length), p: p}
	m.nextPhase()
	return m
}

// Reset implements Source.
func (m *Mixed) Reset() {
	m.resetBase()
	m.phase = 0
	m.nextPhase()
}

func (m *Mixed) nextPhase() {
	seed := m.seed*131 + int64(m.phase)
	switch m.phase % 3 {
	case 0:
		m.inner = NewStream(m.name, seed, m.length, StreamParams{
			Streams: 2, RestartProb: 0.001, WorkingSet: 32 << 20, GapMean: m.p.GapMean,
		})
	case 1:
		m.inner = NewStride(m.name, seed, m.length, StrideParams{
			Walkers: 2, Strides: []int{2, 5}, WorkingSet: 32 << 20,
			GapMean: m.p.GapMean, PhaseLen: 2048,
		})
	default:
		m.inner = NewPointerChase(m.name, seed, m.length, PointerChaseParams{
			WorkingSet: 32 << 20, HotSet: 2 << 20, HotProb: 0.6, GapMean: m.p.GapMean,
		})
	}
	m.phase++
	m.left = m.p.PhaseLen
}

// Next implements Source.
func (m *Mixed) Next() (Record, bool) {
	if m.done() {
		return Record{}, false
	}
	m.emitted++
	if m.left <= 0 {
		m.nextPhase()
	}
	m.left--
	r, _ := m.inner.Next()
	return r, true
}
