package trace

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pmp/internal/mem"
)

// writeTestTrace generates a synthetic trace, writes it as a .pmpt
// file, and returns the path plus the in-memory reference.
func writeTestTrace(t *testing.T, name string, records int) (string, *Trace) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(records + 1)))
	recs := make([]Record, records)
	for i := range recs {
		recs[i] = Record{
			PC:   rng.Uint64(),
			Addr: mem.Addr(rng.Uint64()) &^ (mem.LineBytes - 1),
			Gap:  uint16(rng.Intn(500)),
			Dep:  DepKind(rng.Intn(3)),
		}
	}
	tr := &Trace{name: name, recs: recs}
	path := filepath.Join(t.TempDir(), "t.pmpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, tr
}

// drainAndCompare streams src and compares every record against ref.
func drainAndCompare(t *testing.T, src Source, ref *Trace) {
	t.Helper()
	for i, want := range ref.Records() {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("source ended at record %d of %d", i, ref.Len())
		}
		if got != want {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if r, ok := src.Next(); ok {
		t.Fatalf("source yielded extra record %+v past %d", r, ref.Len())
	}
}

func TestFileSourceRoundTrip(t *testing.T) {
	path, ref := writeTestTrace(t, "spec06.unit-0", 3000)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Name() != ref.Name() {
		t.Fatalf("Name = %q, want %q", src.Name(), ref.Name())
	}
	if src.Len() != ref.Len() {
		t.Fatalf("Len = %d, want %d", src.Len(), ref.Len())
	}
	drainAndCompare(t, src, ref)
	// Reset must replay the identical stream.
	src.Reset()
	drainAndCompare(t, src, ref)
}

// The windowed (non-mmap) path must serve the identical stream. Force
// it by dropping the mapping after open; window refills cross record
// boundaries at windowRecords, so use > 2 windows of records.
func TestFileSourceWindowedFallback(t *testing.T) {
	path, ref := writeTestTrace(t, "fallback", windowRecords*2+137)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.data != nil {
		if src.unmap != nil {
			if err := src.unmap(); err != nil {
				t.Fatal(err)
			}
			src.unmap = nil
		}
		src.data = nil
		src.win = make([]byte, windowRecords*recordSize)
	}
	if src.Mapped() {
		t.Fatal("source still reports mapped after forcing fallback")
	}
	drainAndCompare(t, src, ref)
	src.Reset()
	drainAndCompare(t, src, ref)
}

func TestFileSourceEmptyTrace(t *testing.T) {
	path, _ := writeTestTrace(t, "empty", 0)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Mapped() {
		t.Error("empty payload must not be mapped")
	}
	if _, ok := src.Next(); ok {
		t.Error("empty trace yielded a record")
	}
}

func TestStat(t *testing.T) {
	path, ref := writeTestTrace(t, "statcheck", 512)
	inf, err := Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Name != "statcheck" || inf.Records != 512 || inf.Version != formatVersion {
		t.Fatalf("Stat = %+v", inf)
	}
	want := int64(headerSize + len(ref.Name()) + 512*recordSize)
	if inf.SizeBytes != want {
		t.Fatalf("SizeBytes = %d, want %d", inf.SizeBytes, want)
	}
	st, _ := os.Stat(path)
	if inf.SizeBytes != st.Size() {
		t.Fatalf("SizeBytes = %d, file is %d", inf.SizeBytes, st.Size())
	}
	if inf.MmapEligible != mmapSupported {
		t.Fatalf("MmapEligible = %v on a platform where mmapSupported = %v",
			inf.MmapEligible, mmapSupported)
	}
}

func TestOpenFileRejectsTruncated(t *testing.T) {
	path, _ := writeTestTrace(t, "trunc", 100)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.pmpt")
	if err := os.WriteFile(short, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(short); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("OpenFile(truncated) = %v, want ErrBadFormat", err)
	}
	if _, err := Stat(short); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("Stat(truncated) = %v, want ErrBadFormat", err)
	}
}

func TestOpenFileRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.pmpt")
	if err := os.WriteFile(path, []byte("not a trace file at all........."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("OpenFile(bad magic) = %v, want ErrBadFormat", err)
	}
}

// The lazy source must agree with the buffered Read decoder — the two
// share no I/O machinery, so agreement certifies both.
func TestFileSourceMatchesBufferedRead(t *testing.T) {
	path, _ := writeTestTrace(t, "crosscheck", 2048)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	drainAndCompare(t, src, ref)
}

// Steady-state Next on a mapped source must not allocate: the
// simulator calls it once per trace record.
func TestFileSourceNextDoesNotAllocate(t *testing.T) {
	path, _ := writeTestTrace(t, "allocs", 4096)
	src, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	avg := testing.AllocsPerRun(100, func() {
		src.Reset()
		for {
			if _, ok := src.Next(); !ok {
				break
			}
		}
	})
	if avg != 0 {
		t.Errorf("replay allocates %.3f allocs/run, want 0", avg)
	}
}
