package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"pmp/internal/mem"
)

// recordSize is the on-disk size of one fixed-width record.
const recordSize = 19

// headerSize is the fixed prefix before the trace name: magic (4),
// version (4), record count (4), name length (4).
const headerSize = 16

// decodeRecord decodes one fixed-width record from b (len >=
// recordSize).
//
//pmp:hotpath
func decodeRecord(b []byte) Record {
	return Record{
		PC:   binary.LittleEndian.Uint64(b[0:]),
		Addr: mem.Addr(binary.LittleEndian.Uint64(b[8:])),
		Gap:  binary.LittleEndian.Uint16(b[16:]),
		Dep:  DepKind(b[18]),
	}
}

// Info summarizes a trace file's header without decoding its records.
type Info struct {
	Path      string
	Name      string // embedded trace name
	Version   int    // format version
	Records   int    // record count from the header
	SizeBytes int64  // file size on disk
	// MmapEligible reports whether OpenFile will serve this file from a
	// memory mapping on this platform (false on non-Linux builds and
	// for empty record payloads, where the ReaderAt window is used).
	MmapEligible bool
}

// Stat reads and validates a trace file's header. Unlike Read it does
// not touch the record payload, so it is O(1) in the trace length.
func Stat(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, err
	}
	defer f.Close()
	name, version, count, size, err := readHeader(f)
	if err != nil {
		return Info{}, fmt.Errorf("%s: %w", path, err)
	}
	return Info{
		Path:         path,
		Name:         name,
		Version:      version,
		Records:      count,
		SizeBytes:    size,
		MmapEligible: mmapSupported && count > 0,
	}, nil
}

// readHeader parses and validates the header of an open trace file,
// returning the embedded name, format version, record count and total
// file size. The file position is left at the first record.
func readHeader(f *os.File) (name string, version, count int, size int64, err error) {
	var hdr [headerSize]byte
	if _, err = io.ReadFull(f, hdr[:]); err != nil {
		return "", 0, 0, 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[0:4]) != magic {
		return "", 0, 0, 0, ErrBadFormat
	}
	v := binary.LittleEndian.Uint32(hdr[4:])
	if v != formatVersion {
		return "", 0, 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	n := binary.LittleEndian.Uint32(hdr[8:])
	nameLen := binary.LittleEndian.Uint32(hdr[12:])
	if nameLen > 4096 {
		return "", 0, 0, 0, fmt.Errorf("%w: unreasonable name length %d", ErrBadFormat, nameLen)
	}
	st, err := f.Stat()
	if err != nil {
		return "", 0, 0, 0, err
	}
	want := int64(headerSize) + int64(nameLen) + int64(n)*recordSize
	if st.Size() < want {
		return "", 0, 0, 0, fmt.Errorf("%w: truncated: %d bytes, header promises %d",
			ErrBadFormat, st.Size(), want)
	}
	nb := make([]byte, nameLen)
	if _, err = io.ReadFull(f, nb); err != nil {
		return "", 0, 0, 0, fmt.Errorf("trace: reading name: %w", err)
	}
	return string(nb), int(v), int(n), st.Size(), nil
}

// windowRecords sizes the FileSource fallback read window. 1024
// records is 19KB — comfortably L2-resident while amortizing syscalls.
const windowRecords = 1024

// FileSource streams a .pmpt trace file, decoding records lazily on
// Next instead of materializing the whole trace up front (Read copies
// a FullScale trace — tens of millions of records — into the heap
// before the first access is simulated; FileSource starts in O(1)
// and keeps at most one record decoded).
//
// On Linux the record payload is memory-mapped (with
// MADV_SEQUENTIAL read-ahead advice) and Next is a bounds check plus a
// 19-byte decode straight from the page cache. Elsewhere — or when the
// mapping fails — a sliding io.ReaderAt window of windowRecords
// records provides the same lazy semantics portably.
type FileSource struct {
	name  string
	count int
	f     *os.File
	off   int64 // file offset of the first record
	pos   int   // next record index

	data  []byte       // mmap'd record payload; nil => windowed mode
	unmap func() error // releases data

	win      []byte // fallback window, windowRecords*recordSize bytes
	winStart int    // record index at win[0]
	winLen   int    // valid records in win
}

// OpenFile opens a trace file for lazy streaming. The caller must
// Close the source when done (Sources handed to the simulator outlive
// every Reset/replay cycle, so Close is not part of the Source
// contract).
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	name, _, count, size, err := readHeader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	off, _ := f.Seek(0, io.SeekCurrent)
	s := &FileSource{name: name, count: count, f: f, off: off}
	payload := int64(count) * recordSize
	if data, unmap, ok := mmapFile(f, size); ok && payload > 0 {
		s.data = data[off : off+payload]
		s.unmap = unmap
	} else {
		s.win = make([]byte, windowRecords*recordSize)
		s.winLen = 0
	}
	return s, nil
}

// Name implements Source.
func (s *FileSource) Name() string { return s.name }

// Len returns the trace's record count.
func (s *FileSource) Len() int { return s.count }

// Mapped reports whether records are served from a memory mapping.
func (s *FileSource) Mapped() bool { return s.data != nil }

// Next implements Source.
//
//pmp:hotpath
func (s *FileSource) Next() (Record, bool) {
	if s.pos >= s.count {
		return Record{}, false
	}
	if s.data != nil {
		r := decodeRecord(s.data[s.pos*recordSize:])
		s.pos++
		return r, true
	}
	if s.pos < s.winStart || s.pos >= s.winStart+s.winLen {
		if !s.fillWindow(s.pos) {
			return Record{}, false
		}
	}
	r := decodeRecord(s.win[(s.pos-s.winStart)*recordSize:])
	s.pos++
	return r, true
}

// fillWindow slides the fallback window to start at record index
// start. It reports whether any records were read.
func (s *FileSource) fillWindow(start int) bool {
	n := min(windowRecords, s.count-start)
	if n <= 0 {
		return false
	}
	want := n * recordSize
	got, err := s.f.ReadAt(s.win[:want], s.off+int64(start)*recordSize)
	if got < want && err != nil {
		// readHeader verified the payload exists; a short read here is
		// the file shrinking underneath us. Treat it as end of trace.
		s.winLen = 0
		return false
	}
	s.winStart = start
	s.winLen = n
	return true
}

// Reset implements Source.
func (s *FileSource) Reset() { s.pos = 0 }

// Close releases the mapping (if any) and the file handle.
func (s *FileSource) Close() error {
	var err error
	if s.unmap != nil {
		err = s.unmap()
		s.unmap = nil
		s.data = nil
	}
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}
