package trace

import "pmp/internal/mem"

// Extra generators beyond the 125-trace suite: workload archetypes
// useful for exercising prefetchers outside the paper's benchmark
// families. They are exposed through pmptrace and the library API but
// deliberately not part of Suite(), whose composition is calibrated to
// the paper's Table VI.

// --- HashJoin: database probe-phase workload ---

// HashJoinParams tunes the HashJoin generator.
type HashJoinParams struct {
	BuildBytes uint64 // hash table size (randomly probed)
	ProbeBytes uint64 // outer relation (streamed)
	RowsPerKey int    // consecutive outer rows sharing cache locality
	GapMean    int
}

// DefaultHashJoinParams returns sensible defaults.
func DefaultHashJoinParams() HashJoinParams {
	return HashJoinParams{
		BuildBytes: 24 << 20,
		ProbeBytes: 64 << 20,
		RowsPerKey: 4,
		GapMean:    6,
	}
}

// HashJoin interleaves a sequential scan of the outer relation with
// dependent random probes into the hash table — the classic database
// pattern: perfectly prefetchable stream + unprefetchable dependent
// lookups.
type HashJoin struct {
	base
	p        HashJoinParams
	probePos uint64 // element cursor in the outer relation
	inRow    int
}

// NewHashJoin constructs a HashJoin generator.
func NewHashJoin(name string, seed int64, length int, p HashJoinParams) *HashJoin {
	g := &HashJoin{base: newBase(name, seed, length), p: p}
	g.init()
	return g
}

func (g *HashJoin) init() {
	g.probePos = uint64(g.rng.Int63n(int64(g.p.ProbeBytes/8))) &^ (elemsPerLine - 1)
	g.inRow = 0
}

// Reset implements Source.
func (g *HashJoin) Reset() { g.resetBase(); g.init() }

// Next implements Source.
func (g *HashJoin) Next() (Record, bool) {
	if g.done() {
		return Record{}, false
	}
	g.emitted++
	// Alternate: RowsPerKey scan reads, then one hash probe whose
	// address comes from the scanned key (dependent).
	if g.inRow < g.p.RowsPerKey {
		g.inRow++
		r := Record{PC: 0x900000, Addr: elem(g.probePos), Gap: g.gap(g.p.GapMean)}
		g.probePos++
		if g.probePos >= g.p.ProbeBytes/8 {
			g.probePos = 0
		}
		return r, true
	}
	g.inRow = 0
	l := uint64(g.rng.Int63n(int64(g.p.BuildBytes / mem.LineBytes)))
	return Record{PC: 0x900040, Addr: g.line(l), Gap: g.gap(g.p.GapMean), Dep: DepPrev}, true
}

// --- TiledGEMM: blocked matrix multiply ---

// TiledGEMMParams tunes the TiledGEMM generator.
type TiledGEMMParams struct {
	N       int // matrix dimension in 8-byte elements
	Tile    int // tile edge in elements
	GapMean int
}

// DefaultTiledGEMMParams returns sensible defaults (N=1024 doubles,
// 32x32 tiles: each matrix is 8MB).
func DefaultTiledGEMMParams() TiledGEMMParams {
	return TiledGEMMParams{N: 1024, Tile: 32, GapMean: 2}
}

// TiledGEMM emits the access pattern of a blocked C += A×B inner
// kernel: row-major streams through an A tile, column-strided walks
// through a B tile (stride = N elements = large line strides), and a
// hot C tile that stays cache-resident. Exercises stream, large-stride
// and reuse behaviour simultaneously.
type TiledGEMM struct {
	base
	p TiledGEMMParams
	// tile cursors (element indices within the kernel's three loops)
	i, j, k int
	ti, tj  int // current tile origin
	phase   int // 0: load A[i][k], 1: load B[k][j], 2: load C[i][j]
}

// NewTiledGEMM constructs a TiledGEMM generator; it panics when the
// tile does not divide the matrix dimension.
func NewTiledGEMM(name string, seed int64, length int, p TiledGEMMParams) *TiledGEMM {
	if p.Tile <= 0 || p.N%p.Tile != 0 {
		panic("trace: tile must divide N")
	}
	return &TiledGEMM{base: newBase(name, seed, length), p: p}
}

// Reset implements Source.
func (g *TiledGEMM) Reset() {
	g.resetBase()
	g.i, g.j, g.k, g.ti, g.tj, g.phase = 0, 0, 0, 0, 0, 0
}

// Base addresses of the three matrices (element index spaces).
func (g *TiledGEMM) aElem(i, k int) uint64 { return uint64(i*g.p.N + k) }
func (g *TiledGEMM) bElem(k, j int) uint64 {
	off := uint64(g.p.N * g.p.N)
	return off + uint64(k*g.p.N+j)
}
func (g *TiledGEMM) cElem(i, j int) uint64 {
	off := uint64(2 * g.p.N * g.p.N)
	return off + uint64(i*g.p.N+j)
}

// Next implements Source.
func (g *TiledGEMM) Next() (Record, bool) {
	if g.done() {
		return Record{}, false
	}
	g.emitted++
	var r Record
	switch g.phase {
	case 0:
		r = Record{PC: 0xa00000, Addr: elem(g.aElem(g.ti+g.i, g.k)), Gap: g.gap(g.p.GapMean)}
	case 1:
		r = Record{PC: 0xa00040, Addr: elem(g.bElem(g.k, g.tj+g.j)), Gap: g.gap(g.p.GapMean)}
	default:
		r = Record{PC: 0xa00080, Addr: elem(g.cElem(g.ti+g.i, g.tj+g.j)), Gap: g.gap(g.p.GapMean)}
	}
	// Advance the blocked loop nest: for i, j in tile: for k in tile.
	g.phase++
	if g.phase == 3 {
		g.phase = 0
		g.k++
		if g.k == g.p.Tile {
			g.k = 0
			g.j++
			if g.j == g.p.Tile {
				g.j = 0
				g.i++
				if g.i == g.p.Tile {
					g.i = 0
					g.tj += g.p.Tile
					if g.tj >= g.p.N {
						g.tj = 0
						g.ti = (g.ti + g.p.Tile) % g.p.N
					}
				}
			}
		}
	}
	return r, true
}

// ExtraSpecs lists the extension generators in Spec form so tools can
// offer them alongside the suite.
func ExtraSpecs() []Spec {
	return []Spec{
		{
			Name: "extra.hashjoin", Family: "extra", Class: HighMPKI,
			New: func(n int) Source {
				return NewHashJoin("extra.hashjoin", 71, n, DefaultHashJoinParams())
			},
		},
		{
			Name: "extra.gemm", Family: "extra", Class: LowMPKI,
			New: func(n int) Source {
				return NewTiledGEMM("extra.gemm", 72, n, DefaultTiledGEMMParams())
			},
		},
	}
}
