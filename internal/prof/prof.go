// Package prof wires the standard runtime/pprof collectors into the
// command-line tools. Both pmpsim and pmpexperiments expose
// -cpuprofile/-memprofile flags backed by Start, so any simulation the
// repo can run can also be profiled:
//
//	pmpsim -pf pmp -cpuprofile cpu.pprof -memprofile mem.pprof
//	go tool pprof cpu.pprof
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges for a heap
// profile to be written to memPath when the returned stop function
// runs. Either path may be empty to skip that profile. Callers must
// invoke stop exactly once on every non-error return, normally via
// defer immediately after checking err.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // flush recently freed objects out of the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}
