// Package cpu models the processor core as an out-of-order window with
// in-order retirement: instructions are dispatched at a fixed width per
// cycle into a ROB; a load completes when the memory hierarchy returns
// its data; when the ROB is full the front end stalls until the oldest
// instruction retires. This reproduces the first-order property that
// matters for prefetcher evaluation — the ROB bounds how many misses can
// overlap (memory-level parallelism) — without simulating a full
// pipeline.
package cpu

import "fmt"

// Config describes the core.
type Config struct {
	Width int // dispatch/retire width (instructions per cycle)
	ROB   int // reorder-buffer entries
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: width must be positive, got %d", c.Width)
	}
	if c.ROB <= 0 {
		return fmt.Errorf("cpu: ROB must be positive, got %d", c.ROB)
	}
	return nil
}

// Core is the window model. Construct with New.
type Core struct {
	cfg   Config
	cycle uint64 // current dispatch cycle
	slot  int    // instructions dispatched in the current cycle

	rob  []uint64 // ring buffer of completion cycles
	head int
	size int

	dispatched uint64
}

// New constructs a core; it panics on invalid configuration.
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Core{cfg: cfg, rob: make([]uint64, cfg.ROB)}
}

// Config returns the core configuration.
func (c *Core) Config() Config { return c.cfg }

// Cycle returns the current dispatch cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// Dispatched returns the number of instructions dispatched so far.
func (c *Core) Dispatched() uint64 { return c.dispatched }

// reserve frees a ROB slot if the window is full, stalling the front
// end until the oldest instruction retires. Retirement is in-order: the
// head's completion time lower-bounds the stall target. reserve must run
// before a load consults the memory hierarchy so that the load's issue
// cycle reflects the stall.
func (c *Core) reserve() {
	if c.size < c.cfg.ROB {
		return
	}
	oldest := c.rob[c.head]
	c.head++
	if c.head == len(c.rob) {
		c.head = 0
	}
	c.size--
	if oldest > c.cycle {
		c.cycle = oldest
		c.slot = 0
	}
}

// push inserts a completion time into the reserved tail slot.
func (c *Core) push(done uint64) {
	tail := c.head + c.size
	if tail >= len(c.rob) {
		tail -= len(c.rob)
	}
	c.rob[tail] = done
	c.size++
}

// advance consumes one dispatch slot.
func (c *Core) advance() {
	c.slot++
	if c.slot >= c.cfg.Width {
		c.slot = 0
		c.cycle++
	}
	c.dispatched++
}

// DispatchNonLoads dispatches n single-cycle non-memory instructions.
func (c *Core) DispatchNonLoads(n int) {
	for i := 0; i < n; i++ {
		c.reserve()
		c.push(c.cycle + 1)
		c.advance()
	}
}

// DispatchLoad dispatches one load. The memory hierarchy is consulted
// through complete, which receives the load's issue cycle (after any
// ROB-full stall) and must return its data-ready cycle.
func (c *Core) DispatchLoad(complete func(issue uint64) uint64) {
	c.reserve()
	done := complete(c.cycle)
	if done < c.cycle+1 {
		done = c.cycle + 1
	}
	c.push(done)
	c.advance()
}

// Drain retires every in-flight instruction and returns the final cycle
// count: the time at which the last instruction retires.
func (c *Core) Drain() uint64 {
	final := c.cycle
	for i := 0; i < c.size; i++ {
		idx := c.head + i
		if idx >= len(c.rob) {
			idx -= len(c.rob)
		}
		if c.rob[idx] > final {
			final = c.rob[idx]
		}
	}
	c.head, c.size = 0, 0
	c.cycle = final
	c.slot = 0
	return final
}

// Reset returns the core to its initial state.
func (c *Core) Reset() {
	c.cycle, c.slot, c.head, c.size, c.dispatched = 0, 0, 0, 0, 0
}
