package cpu

import "testing"

func TestConfigValidate(t *testing.T) {
	if err := (Config{Width: 4, ROB: 352}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{Width: 0, ROB: 1}).Validate(); err == nil {
		t.Error("zero width should be invalid")
	}
	if err := (Config{Width: 1, ROB: 0}).Validate(); err == nil {
		t.Error("zero ROB should be invalid")
	}
}

func TestIdealIPCEqualsWidth(t *testing.T) {
	c := New(Config{Width: 4, ROB: 32})
	c.DispatchNonLoads(400)
	cycles := c.Drain()
	if cycles != 100 {
		t.Errorf("400 non-loads at width 4 took %d cycles, want 100", cycles)
	}
}

func TestLoadLatencyHidesUnderWindow(t *testing.T) {
	// A single long load amid enough independent work retires without
	// stalling dispatch: total time is dominated by the instruction
	// stream, not the load.
	c := New(Config{Width: 1, ROB: 100})
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 50 })
	c.DispatchNonLoads(99) // fills the window exactly
	cycles := c.Drain()
	if cycles != 100 {
		t.Errorf("load fully hidden should give 100 cycles, got %d", cycles)
	}
}

func TestROBFullStallsOnLoad(t *testing.T) {
	// With a tiny ROB, a long load blocks dispatch once the window fills.
	c := New(Config{Width: 1, ROB: 4})
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 1000 })
	c.DispatchNonLoads(10)
	cycles := c.Drain()
	// The 4th subsequent instruction cannot dispatch until the load
	// retires at cycle 1000.
	if cycles < 1000 {
		t.Errorf("ROB-full stall missing: %d cycles", cycles)
	}
	if cycles > 1020 {
		t.Errorf("stall too large: %d cycles", cycles)
	}
}

func TestMLPOverlapsLoads(t *testing.T) {
	// Two independent misses inside the window overlap; with MLP the
	// total is ~one latency, without it ~two.
	run := func(rob int) uint64 {
		c := New(Config{Width: 1, ROB: rob})
		for i := 0; i < 2; i++ {
			c.DispatchLoad(func(issue uint64) uint64 { return issue + 500 })
		}
		return c.Drain()
	}
	overlapped := run(64)
	serialized := run(1)
	if overlapped > 520 {
		t.Errorf("overlapped misses took %d cycles, want ~501", overlapped)
	}
	if serialized < 1000 {
		t.Errorf("serialized misses took %d cycles, want ~1001", serialized)
	}
}

func TestInOrderRetirementBound(t *testing.T) {
	// A short load behind a long load cannot retire first; dispatch past
	// a full ROB waits for the long head.
	c := New(Config{Width: 1, ROB: 2})
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 100 })
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 1 })
	c.DispatchNonLoads(1) // forces retirement of the long head
	if got := c.Cycle(); got < 100 {
		t.Errorf("dispatch proceeded at cycle %d before head retired", got)
	}
}

func TestDispatchedCount(t *testing.T) {
	c := New(Config{Width: 4, ROB: 8})
	c.DispatchNonLoads(5)
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 1 })
	if got := c.Dispatched(); got != 6 {
		t.Errorf("Dispatched = %d, want 6", got)
	}
}

func TestReset(t *testing.T) {
	c := New(Config{Width: 4, ROB: 8})
	c.DispatchNonLoads(100)
	c.Drain()
	c.Reset()
	if c.Cycle() != 0 || c.Dispatched() != 0 {
		t.Error("Reset should zero cycle and dispatch counters")
	}
}

func TestDrainIdempotent(t *testing.T) {
	c := New(Config{Width: 1, ROB: 4})
	c.DispatchLoad(func(issue uint64) uint64 { return issue + 10 })
	first := c.Drain()
	second := c.Drain()
	if second != first {
		t.Errorf("second Drain = %d, want %d", second, first)
	}
}

func TestLoadMinimumOneCycle(t *testing.T) {
	c := New(Config{Width: 1, ROB: 4})
	c.DispatchLoad(func(issue uint64) uint64 { return issue }) // degenerate
	if got := c.Drain(); got != 1 {
		t.Errorf("zero-latency load should still take 1 cycle, got %d", got)
	}
}
