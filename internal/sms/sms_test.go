package sms

import (
	"testing"

	"pmp/internal/mem"
)

func smallConfig() Config {
	return Config{
		Region: mem.NewRegion(mem.DefaultRegion),
		FTSets: 2, FTWays: 2,
		ATSets: 1, ATWays: 2,
	}
}

func addrOf(region uint64, offset int) mem.Addr {
	return mem.Addr(region*mem.PageBytes + uint64(offset)*mem.LineBytes)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{FTSets: 0, FTWays: 1, ATSets: 1, ATWays: 1},
		{FTSets: 3, FTWays: 1, ATSets: 1, ATWays: 1},
		{FTSets: 1, FTWays: 0, ATSets: 1, ATWays: 1},
		{FTSets: 1, FTWays: 1, ATSets: 5, ATWays: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestFirstAccessIsTrigger(t *testing.T) {
	f := New(smallConfig())
	trig, isTrig, _ := f.Observe(0x400, addrOf(5, 7))
	if !isTrig {
		t.Fatal("first access to a region should be a trigger")
	}
	if trig.RegionID != 5 || trig.Offset != 7 || trig.PC != 0x400 {
		t.Errorf("trigger = %+v", trig)
	}
	// Second access to the same line: still filtering, not a trigger.
	if _, isTrig, _ := f.Observe(0x404, addrOf(5, 7)); isTrig {
		t.Error("repeat access to trigger line should not re-trigger")
	}
}

func TestAccumulationAndEvictClose(t *testing.T) {
	f := New(smallConfig())
	f.Observe(0x400, addrOf(5, 7)) // trigger
	f.Observe(0x404, addrOf(5, 9)) // promotes to AT
	f.Observe(0x408, addrOf(5, 12))
	p, ok := f.OnEvict(addrOf(5, 0))
	if !ok {
		t.Fatal("eviction should close the accumulating pattern")
	}
	if p.RegionID != 5 || p.Trigger != 7 || p.PC != 0x400 {
		t.Errorf("pattern = %+v", p)
	}
	want := mem.BitVectorOf(mem.LinesPerPage, 7, 9, 12)
	if p.Bits != want {
		t.Errorf("bits = %v, want %v", p.Bits, want)
	}
	// Anchored form puts the trigger at position 0.
	if a := p.Anchored(); !a.Test(0) || !a.Test(2) || !a.Test(5) {
		t.Errorf("anchored = %v", a)
	}
	// The region is gone; a new access re-triggers.
	if _, isTrig, _ := f.Observe(0x40c, addrOf(5, 3)); !isTrig {
		t.Error("region should re-trigger after close")
	}
}

func TestEvictOfFilteredRegionDropsSilently(t *testing.T) {
	f := New(smallConfig())
	f.Observe(0x400, addrOf(5, 7))
	if _, ok := f.OnEvict(addrOf(5, 7)); ok {
		t.Error("single-access region should not produce a pattern")
	}
	if _, isTrig, _ := f.Observe(0x400, addrOf(5, 7)); !isTrig {
		t.Error("region should re-trigger after FT drop")
	}
}

func TestEvictUnknownRegion(t *testing.T) {
	f := New(smallConfig())
	if _, ok := f.OnEvict(addrOf(99, 0)); ok {
		t.Error("unknown region eviction should be a no-op")
	}
}

func TestATDisplacementClosesPattern(t *testing.T) {
	f := New(smallConfig()) // AT: 1 set x 2 ways
	// Fill the AT with two accumulating regions.
	for r := uint64(1); r <= 2; r++ {
		f.Observe(0x400, addrOf(r, 0))
		f.Observe(0x404, addrOf(r, 1))
	}
	// A third promotion displaces the LRU entry (region 1).
	f.Observe(0x408, addrOf(3, 0))
	_, _, closed := f.Observe(0x40c, addrOf(3, 2))
	if len(closed) != 1 {
		t.Fatalf("displacement should close one pattern, got %d", len(closed))
	}
	if closed[0].RegionID != 1 {
		t.Errorf("closed region %d, want 1 (LRU)", closed[0].RegionID)
	}
}

func TestFTDisplacementIsSilent(t *testing.T) {
	cfg := smallConfig() // FT: 2 sets x 2 ways
	f := New(cfg)
	// Regions 0,2,4,6 all map to FT set 0. Three triggers displace one.
	for _, r := range []uint64{0, 2, 4} {
		_, isTrig, closed := f.Observe(0x400, addrOf(r, 0))
		if !isTrig {
			t.Fatalf("region %d should trigger", r)
		}
		if len(closed) != 0 {
			t.Fatalf("FT displacement should not close patterns")
		}
	}
	// Region 0 was displaced: it triggers again.
	if _, isTrig, _ := f.Observe(0x400, addrOf(0, 1)); !isTrig {
		t.Error("displaced region should re-trigger")
	}
}

func TestPatternPCIsTriggerPC(t *testing.T) {
	f := New(smallConfig())
	f.Observe(0x111, addrOf(7, 3))
	f.Observe(0x222, addrOf(7, 4))
	f.Observe(0x333, addrOf(7, 5))
	p, ok := f.OnEvict(addrOf(7, 3))
	if !ok || p.PC != 0x111 {
		t.Errorf("pattern PC = %#x, want trigger PC 0x111", p.PC)
	}
}

func TestSmallerRegions(t *testing.T) {
	cfg := smallConfig()
	cfg.Region = mem.NewRegion(1024) // 16 lines
	f := New(cfg)
	f.Observe(1, 1024*3+64*15) // region 3, offset 15
	f.Observe(2, 1024*3+64*2)  // offset 2
	p, ok := f.OnEvict(1024 * 3)
	if !ok {
		t.Fatal("pattern should close")
	}
	if p.Bits.Len() != 16 || !p.Bits.Test(15) || !p.Bits.Test(2) {
		t.Errorf("pattern = %v", p.Bits)
	}
	if p.Trigger != 15 {
		t.Errorf("trigger = %d, want 15", p.Trigger)
	}
}

func TestStorageBitsPaperGeometry(t *testing.T) {
	// Paper Table III: FT 8x8 totals 376 bytes; AT 2x16 totals 456 bytes.
	// Our accounting: FT entry = 33+5+6+3 = 47b; 64 entries = 3008b = 376B.
	// AT entry = 35+5+64+6+4 = 114b; 32 entries = 3648b = 456B.
	f := New(DefaultConfig())
	want := 64*47 + 32*114
	if got := f.StorageBits(); got != want {
		t.Errorf("StorageBits() = %d, want %d", got, want)
	}
	if got := f.StorageBits() / 8; got != 376+456 {
		t.Errorf("bytes = %d, want 832", got)
	}
}

func TestManyRegionsNoCrossTalk(t *testing.T) {
	f := New(DefaultConfig())
	// Interleave accesses to many regions; each should accumulate its
	// own offsets only.
	for r := uint64(0); r < 8; r++ {
		f.Observe(r, addrOf(r, int(r)))
		f.Observe(r, addrOf(r, int(r)+1))
	}
	for r := uint64(0); r < 8; r++ {
		p, ok := f.OnEvict(addrOf(r, 0))
		if !ok {
			t.Fatalf("region %d should be accumulating", r)
		}
		want := mem.BitVectorOf(mem.LinesPerPage, int(r), int(r)+1)
		if p.Bits != want {
			t.Errorf("region %d bits = %v, want %v", r, p.Bits, want)
		}
	}
}
