// Package sms implements the Spatial Memory Streaming pattern-capturing
// framework (Somogyi et al., ISCA'06) that PMP, Bingo and the pattern
// analysis tooling are built on (paper §II-B).
//
// Two set-associative tables track in-progress spatial patterns:
//
//   - The Filter Table (FT) records the first access (the trigger
//     access) to each memory region: PC, address, trigger offset.
//   - The Accumulation Table (AT) accumulates the access bit vector of
//     regions that have seen at least two distinct offsets.
//
// Accumulation for a region ends when a cached line of the region is
// evicted (reported via OnEvict) or when its AT entry is displaced; the
// completed pattern is then handed to the consumer.
package sms

import (
	"fmt"

	"pmp/internal/mem"
)

// Config sizes the framework. PMP's defaults (paper Table III) are an
// 8x8 FT and a 2x16 AT over 4KB regions.
type Config struct {
	Region mem.Region
	FTSets int
	FTWays int
	ATSets int
	ATWays int
}

// DefaultConfig returns the PMP paper's capture geometry.
func DefaultConfig() Config {
	return Config{
		Region: mem.NewRegion(mem.DefaultRegion),
		FTSets: 8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.FTSets <= 0 || c.FTSets&(c.FTSets-1) != 0 {
		return fmt.Errorf("sms: FT sets must be a positive power of two, got %d", c.FTSets)
	}
	if c.ATSets <= 0 || c.ATSets&(c.ATSets-1) != 0 {
		return fmt.Errorf("sms: AT sets must be a positive power of two, got %d", c.ATSets)
	}
	if c.FTWays <= 0 || c.ATWays <= 0 {
		return fmt.Errorf("sms: ways must be positive (%d, %d)", c.FTWays, c.ATWays)
	}
	return nil
}

// Trigger describes the first access observed in a region.
type Trigger struct {
	RegionID uint64
	PC       uint64
	Offset   int      // trigger offset (line granularity) within the region
	Addr     mem.Addr // full byte address of the trigger access
}

// Pattern is a completed spatial pattern.
type Pattern struct {
	RegionID    uint64
	PC          uint64   // PC of the region's trigger access
	Trigger     int      // trigger offset (line granularity)
	TriggerAddr mem.Addr // full byte address of the trigger access
	Bits        mem.BitVector
}

// Anchored returns the pattern left-circular-shifted so the trigger
// offset is position 0 (the form PMP merges).
func (p Pattern) Anchored() mem.BitVector { return p.Bits.Anchor(p.Trigger) }

type ftEntry struct {
	valid   bool
	tag     uint64
	pc      uint64
	trigger int
	addr    mem.Addr // byte address of the trigger access
	lru     uint64
}

type atEntry struct {
	valid   bool
	tag     uint64
	pc      uint64
	trigger int
	addr    mem.Addr // byte address of the trigger access
	bits    mem.BitVector
	lru     uint64
}

// Framework is the FT+AT capture engine. Construct with New.
type Framework struct {
	cfg   Config
	ft    []ftEntry
	at    []atEntry
	stamp uint64
	// out is reused across Observe calls to avoid per-access allocation.
	out []Pattern
}

// New constructs a framework; it panics on invalid configuration.
func New(cfg Config) *Framework {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.Region.Lines() == 0 {
		cfg.Region = mem.NewRegion(mem.DefaultRegion)
	}
	return &Framework{
		cfg: cfg,
		ft:  make([]ftEntry, cfg.FTSets*cfg.FTWays),
		at:  make([]atEntry, cfg.ATSets*cfg.ATWays),
	}
}

// Config returns the framework configuration.
func (f *Framework) Config() Config { return f.cfg }

// Region returns the tracked region geometry.
func (f *Framework) Region() mem.Region { return f.cfg.Region }

func (f *Framework) ftSet(region uint64) []ftEntry {
	i := (region & uint64(f.cfg.FTSets-1)) * uint64(f.cfg.FTWays)
	return f.ft[i : i+uint64(f.cfg.FTWays)]
}

func (f *Framework) atSet(region uint64) []atEntry {
	i := (region & uint64(f.cfg.ATSets-1)) * uint64(f.cfg.ATWays)
	return f.at[i : i+uint64(f.cfg.ATWays)]
}

// Observe processes one demand access. It returns:
//
//   - trig, isTrigger: set when this access is the first in its region
//     (missed both tables) — the moment PMP runs its prediction;
//   - closed: patterns whose accumulation this access terminated (AT
//     displacement). The slice is reused by the next Observe call.
func (f *Framework) Observe(pc uint64, addr mem.Addr) (trig Trigger, isTrigger bool, closed []Pattern) {
	f.stamp++
	f.out = f.out[:0]
	region := f.cfg.Region.ID(addr)
	offset := f.cfg.Region.Offset(addr)

	// 1. Region already accumulating: extend the pattern.
	atSet := f.atSet(region)
	for i := range atSet {
		e := &atSet[i]
		if e.valid && e.tag == region {
			e.bits.Set(offset)
			e.lru = f.stamp
			return Trigger{}, false, nil
		}
	}

	// 2. Region in the filter table: promote on a second distinct offset.
	ftSet := f.ftSet(region)
	for i := range ftSet {
		e := &ftSet[i]
		if !e.valid || e.tag != region {
			continue
		}
		if e.trigger == offset {
			e.lru = f.stamp // same line touched again; still filtering
			return Trigger{}, false, nil
		}
		bits := mem.NewBitVector(f.cfg.Region.Lines())
		bits.Set(e.trigger)
		bits.Set(offset)
		f.insertAT(region, e.pc, e.trigger, e.addr, bits)
		e.valid = false
		return Trigger{}, false, f.out
	}

	// 3. Fresh region: allocate a filter entry; this is a trigger access.
	victim := 0
	oldest := ^uint64(0)
	for i := range ftSet {
		e := &ftSet[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	ftSet[victim] = ftEntry{valid: true, tag: region, pc: pc, trigger: offset, addr: addr, lru: f.stamp}
	return Trigger{RegionID: region, PC: pc, Offset: offset, Addr: addr}, true, f.out
}

// insertAT places a new accumulation entry, closing the LRU victim's
// pattern if one is displaced.
func (f *Framework) insertAT(region uint64, pc uint64, trigger int, addr mem.Addr, bits mem.BitVector) {
	set := f.atSet(region)
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		e := &set[i]
		if !e.valid {
			victim = i
			oldest = 0
			break
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	v := &set[victim]
	if v.valid {
		f.out = append(f.out, Pattern{RegionID: v.tag, PC: v.pc, Trigger: v.trigger, TriggerAddr: v.addr, Bits: v.bits})
	}
	*v = atEntry{valid: true, tag: region, pc: pc, trigger: trigger, addr: addr, bits: bits, lru: f.stamp}
}

// OnEvict closes accumulation for the region containing the evicted
// line, if it is accumulating (paper §II-B: "the accumulation process
// ... finishes when any cached data belonging to this region is
// evicted"). It returns the completed pattern, valid until the next
// Observe/OnEvict call.
func (f *Framework) OnEvict(line mem.Addr) (Pattern, bool) {
	region := f.cfg.Region.ID(line)
	set := f.atSet(region)
	for i := range set {
		e := &set[i]
		if e.valid && e.tag == region {
			p := Pattern{RegionID: e.tag, PC: e.pc, Trigger: e.trigger, TriggerAddr: e.addr, Bits: e.bits}
			e.valid = false
			return p, true
		}
	}
	// A region still in the FT has a single-access pattern; eviction
	// simply drops it (nothing useful to learn from one access).
	ftSet := f.ftSet(region)
	for i := range ftSet {
		e := &ftSet[i]
		if e.valid && e.tag == region {
			e.valid = false
			break
		}
	}
	return Pattern{}, false
}

// Flush closes every in-progress accumulation and returns the
// patterns (end-of-trace bookkeeping for analysis tools; hardware has
// no equivalent operation).
func (f *Framework) Flush() []Pattern {
	var out []Pattern
	for i := range f.at {
		e := &f.at[i]
		if e.valid {
			out = append(out, Pattern{
				RegionID: e.tag, PC: e.pc, Trigger: e.trigger,
				TriggerAddr: e.addr, Bits: e.bits,
			})
			e.valid = false
		}
	}
	for i := range f.ft {
		f.ft[i].valid = false
	}
	return out
}

// StorageBits returns the hardware budget of the framework following
// the paper's Table III accounting: with 48-bit addresses and 4KB
// regions, FT entries hold a region tag (36b minus set-index bits =
// 33b), a hashed PC (5b), the trigger offset and LRU state; AT entries
// add the bit vector.
func (f *Framework) StorageBits() int {
	regionBits := 48 - f.cfg.Region.Shift()
	offBits := log2(f.cfg.Region.Lines())
	ftTag := regionBits - log2(f.cfg.FTSets)
	atTag := regionBits - log2(f.cfg.ATSets)
	ftEntryBits := ftTag + 5 + offBits + log2(f.cfg.FTWays)
	atEntryBits := atTag + 5 + f.cfg.Region.Lines() + offBits + log2(f.cfg.ATWays)
	return f.cfg.FTSets*f.cfg.FTWays*ftEntryBits + f.cfg.ATSets*f.cfg.ATWays*atEntryBits
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
