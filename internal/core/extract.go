package core

import (
	"math/bits"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// extractor converts a triggered counter row into an anchored prefetch
// pattern: one target level per anchored offset. Index 0 (the trigger
// itself) is always LevelNone — "the trigger offset itself will never
// be prefetched" (paper §IV-B).
//
// The production path (ExtractRow) is mask-first: the scheme's float
// thresholds are pre-scaled once per trigger to integer lane
// comparisons against the time counter (AFE) or counter sum (ARE), the
// table answers with uint64 candidate masks in one SWAR pass, and the
// masks are scattered into the level slice. The float semantics of the
// schemes are preserved exactly — the integer threshold is the smallest
// counter value satisfying the original float comparison, found by
// binary search over the same float64 expression — and the legacy
// per-offset float path (Extract) is kept as the reference the
// differential fuzz tests compare against.
type extractor struct {
	scheme Scheme
	tl1d   float64
	tl2c   float64
	anel1  uint32
	anel2  uint32
}

func newExtractor(c Config) extractor {
	return extractor{
		scheme: c.Scheme,
		tl1d:   c.TL1D,
		tl2c:   c.TL2C,
		anel1:  c.ANEL1,
		anel2:  c.ANEL2,
	}
}

// ExtractRow fills dst (len == t.RowLen()) with the per-offset target
// level for row `row`, using the table's word-parallel threshold
// compare. This is the hot path behind every PMP trigger access.
//
//pmp:hotpath
func (e extractor) ExtractRow(t mem.PatternTable, row int, dst []prefetch.Level) {
	for i := range dst {
		dst[i] = prefetch.LevelNone
	}
	var thr1, thr2 uint32
	switch e.scheme {
	case ANE:
		thr1, thr2 = e.anel1, e.anel2
	case ARE:
		den := t.RowSum(row)
		if den == 0 {
			return
		}
		thr1 = minCountFor(den, e.tl1d, t.MaxCounter())
		thr2 = minCountFor(den, e.tl2c, t.MaxCounter())
	default: // AFE
		tc := t.RowTime(row)
		if tc == 0 {
			return
		}
		thr1 = minCountFor(uint64(tc), e.tl1d, t.MaxCounter())
		thr2 = minCountFor(uint64(tc), e.tl2c, t.MaxCounter())
	}
	ge1, ge2 := t.CompareRow(row, thr1, thr2)
	// L1 takes precedence over L2, and the trigger offset is never a
	// target.
	ge2 &^= ge1 | 1
	ge1 &^= 1
	for m := ge1; m != 0; m &= m - 1 {
		dst[bits.TrailingZeros64(m)] = prefetch.LevelL1
	}
	for m := ge2; m != 0; m &= m - 1 {
		dst[bits.TrailingZeros64(m)] = prefetch.LevelL2
	}
}

// minCountFor returns the smallest counter value c in [0, max] with
// float64(c)/float64(den) >= thr, or max+1 when no counter can clear
// the threshold. Binary search over the exact float64 predicate the
// scalar reference evaluates per offset, so pre-scaling cannot drift
// from the float semantics even at rounding boundaries.
//
//pmp:hotpath
func minCountFor(den uint64, thr float64, max uint32) uint32 {
	fd := float64(den)
	lo, hi := uint32(0), max+1
	for lo < hi {
		mid := (lo + hi) / 2
		if float64(mid)/fd >= thr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Extract fills dst (len == cv.Len()) with the per-offset target level
// using the paper's literal per-offset float comparisons. It is the
// reference implementation: ExtractRow must agree with it bit-for-bit
// on every reachable state (see the differential fuzz tests).
func (e extractor) Extract(cv *mem.CounterVector, dst []prefetch.Level) {
	for i := range dst {
		dst[i] = prefetch.LevelNone
	}
	switch e.scheme {
	case ANE:
		e.extractANE(cv, dst)
	case ARE:
		e.extractARE(cv, dst)
	default:
		e.extractAFE(cv, dst)
	}
}

// extractAFE selects offsets whose access frequency (counter/time)
// clears a threshold: >= TL1D goes to L1D, else >= TL2C goes to L2C.
func (e extractor) extractAFE(cv *mem.CounterVector, dst []prefetch.Level) {
	t := cv.Time()
	if t == 0 {
		return
	}
	ft := float64(t)
	for i := 1; i < cv.Len(); i++ {
		f := float64(cv.At(i)) / ft
		switch {
		case f >= e.tl1d:
			dst[i] = prefetch.LevelL1
		case f >= e.tl2c:
			dst[i] = prefetch.LevelL2
		}
	}
}

// extractANE selects offsets whose raw counter clears an absolute
// threshold.
func (e extractor) extractANE(cv *mem.CounterVector, dst []prefetch.Level) {
	for i := 1; i < cv.Len(); i++ {
		c := cv.At(i)
		switch {
		case c >= e.anel1:
			dst[i] = prefetch.LevelL1
		case c >= e.anel2:
			dst[i] = prefetch.LevelL2
		}
	}
}

// extractARE selects offsets whose share of the non-trigger counter sum
// clears a threshold. As the paper notes, this implicitly caps the
// prefetch depth at 1/threshold.
func (e extractor) extractARE(cv *mem.CounterVector, dst []prefetch.Level) {
	sum := cv.Sum()
	if sum == 0 {
		return
	}
	fs := float64(sum)
	for i := 1; i < cv.Len(); i++ {
		r := float64(cv.At(i)) / fs
		switch {
		case r >= e.tl1d:
			dst[i] = prefetch.LevelL1
		case r >= e.tl2c:
			dst[i] = prefetch.LevelL2
		}
	}
}
