package core

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// extractor converts a triggered counter vector into an anchored
// prefetch pattern: one target level per anchored offset. Index 0 (the
// trigger itself) is always LevelNone — "the trigger offset itself will
// never be prefetched" (paper §IV-B).
type extractor struct {
	scheme Scheme
	tl1d   float64
	tl2c   float64
	anel1  uint32
	anel2  uint32
}

func newExtractor(c Config) extractor {
	return extractor{
		scheme: c.Scheme,
		tl1d:   c.TL1D,
		tl2c:   c.TL2C,
		anel1:  c.ANEL1,
		anel2:  c.ANEL2,
	}
}

// Extract fills dst (len == cv.Len()) with the per-offset target level.
func (e extractor) Extract(cv *mem.CounterVector, dst []prefetch.Level) {
	for i := range dst {
		dst[i] = prefetch.LevelNone
	}
	switch e.scheme {
	case ANE:
		e.extractANE(cv, dst)
	case ARE:
		e.extractARE(cv, dst)
	default:
		e.extractAFE(cv, dst)
	}
}

// extractAFE selects offsets whose access frequency (counter/time)
// clears a threshold: >= TL1D goes to L1D, else >= TL2C goes to L2C.
func (e extractor) extractAFE(cv *mem.CounterVector, dst []prefetch.Level) {
	t := cv.Time()
	if t == 0 {
		return
	}
	ft := float64(t)
	for i := 1; i < cv.Len(); i++ {
		f := float64(cv.At(i)) / ft
		switch {
		case f >= e.tl1d:
			dst[i] = prefetch.LevelL1
		case f >= e.tl2c:
			dst[i] = prefetch.LevelL2
		}
	}
}

// extractANE selects offsets whose raw counter clears an absolute
// threshold.
func (e extractor) extractANE(cv *mem.CounterVector, dst []prefetch.Level) {
	for i := 1; i < cv.Len(); i++ {
		c := cv.At(i)
		switch {
		case c >= e.anel1:
			dst[i] = prefetch.LevelL1
		case c >= e.anel2:
			dst[i] = prefetch.LevelL2
		}
	}
}

// extractARE selects offsets whose share of the non-trigger counter sum
// clears a threshold. As the paper notes, this implicitly caps the
// prefetch depth at 1/threshold.
func (e extractor) extractARE(cv *mem.CounterVector, dst []prefetch.Level) {
	sum := cv.Sum()
	if sum == 0 {
		return
	}
	fs := float64(sum)
	for i := 1; i < cv.Len(); i++ {
		r := float64(cv.At(i)) / fs
		switch {
		case r >= e.tl1d:
			dst[i] = prefetch.LevelL1
		case r >= e.tl2c:
			dst[i] = prefetch.LevelL2
		}
	}
}
