package core

import (
	"math/rand"
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// diffExtractors builds one extractor per scheme with the given float
// thresholds, so every scheme's mask-first path is exercised against
// its float reference.
func diffExtractors(tl1d, tl2c float64, anel1, anel2 uint32) []extractor {
	var es []extractor
	for _, s := range []Scheme{AFE, ANE, ARE} {
		cfg := DefaultConfig()
		cfg.Scheme = s
		cfg.TL1D, cfg.TL2C = tl1d, tl2c
		cfg.ANEL1, cfg.ANEL2 = anel1, anel2
		es = append(es, newExtractor(cfg))
	}
	return es
}

// checkExtractAgainstReference runs the mask-first ExtractRow on both
// table implementations and the per-offset float Extract on the scalar
// row, and demands all three agree at every offset.
func checkExtractAgainstReference(t *testing.T, e extractor,
	scalar *mem.CounterTable, packed mem.PatternTable, row int) {
	t.Helper()
	length := scalar.RowLen()
	ref := make([]prefetch.Level, length)
	gotScalar := make([]prefetch.Level, length)
	gotPacked := make([]prefetch.Level, length)
	e.Extract(scalar.Row(row), ref)
	ref[0] = prefetch.LevelNone // ExtractRow never targets the trigger
	e.ExtractRow(scalar, row, gotScalar)
	e.ExtractRow(packed, row, gotPacked)
	for i := 0; i < length; i++ {
		if gotScalar[i] != ref[i] {
			t.Fatalf("scheme %v row %d offset %d: mask-first scalar %v, float reference %v\nrow: %s",
				e.scheme, row, i, gotScalar[i], ref[i], scalar.Row(row))
		}
		if gotPacked[i] != ref[i] {
			t.Fatalf("scheme %v row %d offset %d: mask-first packed %v, float reference %v\nrow: %s",
				e.scheme, row, i, gotPacked[i], ref[i], scalar.Row(row))
		}
	}
}

// TestExtractRowMatchesFloatReference is the differential fuzz the
// extract.go doc comment promises: the mask-first ExtractRow (scalar
// and packed tables) must agree bit-for-bit with the per-offset float
// Extract on every reachable table state, across all three schemes and
// a spread of thresholds including exact rounding boundaries.
func TestExtractRowMatchesFloatReference(t *testing.T) {
	thresholds := []struct {
		tl1d, tl2c   float64
		anel1, anel2 uint32
	}{
		{0.5, 0.15, 16, 5},   // paper defaults
		{1, 0.5, 31, 31},     // only saturated counters clear L1
		{0, 0, 0, 0},         // everything clears both (precedence test)
		{0.25, 0.25, 8, 8},   // equal thresholds: L1 precedence everywhere
		{1.0 / 3, 0.2, 1, 1}, // non-representable float threshold
		{2, 1.5, 40, 33},     // unreachable (> max): no targets ever
	}
	geometries := []struct{ length, bits int }{
		{64, 5}, // paper default
		{16, 4}, // headline 4-bit packing, PPT-style short rows
		{33, 6}, // ragged tail word
	}
	for _, g := range geometries {
		rng := rand.New(rand.NewSource(int64(g.length*100 + g.bits)))
		const entries = 4
		scalar := mem.NewCounterTable(entries, g.length, g.bits)
		packed := mem.NewPackedCounterTable(entries, g.length, g.bits)
		for step := 0; step < 1500; step++ {
			row := rng.Intn(entries)
			if rng.Intn(8) == 0 {
				scalar.HalveRow(row)
				packed.HalveRow(row)
			} else {
				p := randomAnchoredPattern(rng, g.length)
				scalar.MergeRow(row, p)
				packed.MergeRow(row, p)
			}
			th := thresholds[step%len(thresholds)]
			for _, e := range diffExtractors(th.tl1d, th.tl2c, th.anel1, th.anel2) {
				checkExtractAgainstReference(t, e, scalar, packed, row)
			}
		}
	}
}

// TestExtractRowEmptyDenominator pins the silent-row contract: a row
// whose time counter (AFE) or counter sum (ARE) is zero yields no
// targets from either path.
func TestExtractRowEmptyDenominator(t *testing.T) {
	scalar := mem.NewCounterTable(1, 8, 5)
	packed := mem.NewPackedCounterTable(1, 8, 5)
	for _, e := range diffExtractors(0.5, 0.15, 16, 5) {
		checkExtractAgainstReference(t, e, scalar, packed, 0)
	}
}

func randomAnchoredPattern(rng *rand.Rand, length int) mem.BitVector {
	p := mem.NewBitVector(length)
	p.Set(0)
	for i := 1; i < length; i++ {
		if rng.Intn(3) == 0 {
			p.Set(i)
		}
	}
	return p
}

// FuzzExtractRow lets the fuzzer hunt for threshold/counter states
// where integer pre-scaling could drift from the float semantics.
func FuzzExtractRow(f *testing.F) {
	f.Add(uint64(0xFFFF_0000_FFFF_0001), uint8(3), uint16(500), uint16(150))
	f.Add(uint64(1), uint8(63), uint16(1000), uint16(1000))
	f.Add(^uint64(0), uint8(200), uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, patternBits uint64, merges uint8, thr1m, thr2m uint16) {
		const length, bits = 64, 5
		scalar := mem.NewCounterTable(1, length, bits)
		packed := mem.NewPackedCounterTable(1, length, bits)
		p := mem.NewBitVector(length)
		for o := 0; o < length; o++ {
			if patternBits&(1<<uint(o)) != 0 {
				p.Set(o)
			}
		}
		p.Set(0)
		for i := 0; i < int(merges%64)+1; i++ {
			scalar.MergeRow(0, p)
			packed.MergeRow(0, p)
		}
		// Thresholds in [0, ~1.6), quantized; fuzzer steers the mantissa.
		tl1d := float64(thr1m) / 40000
		tl2c := float64(thr2m) / 40000
		for _, e := range diffExtractors(tl1d, tl2c, uint32(thr1m%40), uint32(thr2m%40)) {
			checkExtractAgainstReference(t, e, scalar, packed, 0)
		}
	})
}
