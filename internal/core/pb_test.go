package core

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

func levelsWith(n int, m map[int]prefetch.Level) []prefetch.Level {
	out := make([]prefetch.Level, n)
	for k, l := range m {
		out[k] = l
	}
	return out
}

func TestPBNearestFirstOrder(t *testing.T) {
	pb := newPrefetchBuffer(4, mem.NewRegion(4096))
	// Anchored order must be 1, 63, 2, 62, ...
	want := []int{1, 63, 2, 62, 3, 61}
	for i, k := range want {
		if pb.order[i] != k {
			t.Fatalf("order[%d] = %d, want %d (full prefix %v)", i, pb.order[i], k, pb.order[:6])
		}
	}
	if len(pb.order) != 63 {
		t.Errorf("order covers %d offsets, want 63", len(pb.order))
	}
}

func TestPBDrainAssemblesAddresses(t *testing.T) {
	region := mem.NewRegion(4096)
	pb := newPrefetchBuffer(4, region)
	// Trigger at offset 10 in region 3; anchored targets at k=1 (offset
	// 11) and k=63 (offset 9).
	pb.Insert(3, 10, levelsWith(64, map[int]prefetch.Level{
		1:  prefetch.LevelL1,
		63: prefetch.LevelL2,
	}))
	got := pb.Drain(10)
	if len(got) != 2 {
		t.Fatalf("drained %d requests, want 2", len(got))
	}
	wantAddr0 := region.LineAddr(3, 11)
	wantAddr1 := region.LineAddr(3, 9)
	if got[0].Addr != wantAddr0 || got[0].Level != prefetch.LevelL1 {
		t.Errorf("first request = %+v, want addr %#x L1D", got[0], uint64(wantAddr0))
	}
	if got[1].Addr != wantAddr1 || got[1].Level != prefetch.LevelL2 {
		t.Errorf("second request = %+v, want addr %#x L2C", got[1], uint64(wantAddr1))
	}
	// Entry fully drained; nothing more.
	if more := pb.Drain(10); len(more) != 0 {
		t.Errorf("drained extra requests: %v", more)
	}
}

func TestPBDrainRespectsMax(t *testing.T) {
	pb := newPrefetchBuffer(4, mem.NewRegion(4096))
	pb.Insert(1, 0, levelsWith(64, map[int]prefetch.Level{
		1: prefetch.LevelL1, 2: prefetch.LevelL1, 3: prefetch.LevelL1, 4: prefetch.LevelL1,
	}))
	if got := pb.Drain(2); len(got) != 2 {
		t.Fatalf("Drain(2) gave %d", len(got))
	}
	// Remaining targets drain later without repeats.
	rest := pb.Drain(10)
	if len(rest) != 2 {
		t.Fatalf("second drain gave %d, want 2", len(rest))
	}
	seen := map[mem.Addr]bool{}
	for _, r := range rest {
		if seen[r.Addr] {
			t.Errorf("duplicate issue of %#x", uint64(r.Addr))
		}
		seen[r.Addr] = true
	}
	if got := pb.Drain(10); len(got) != 0 {
		t.Error("third drain should be empty")
	}
}

func TestPBTouchResumesRegion(t *testing.T) {
	pb := newPrefetchBuffer(4, mem.NewRegion(4096))
	pb.Insert(1, 0, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1, 2: prefetch.LevelL1}))
	pb.Insert(2, 0, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1, 2: prefetch.LevelL1}))
	// Region 2 is MRU: drains first.
	r := pb.Drain(1)
	if len(r) != 1 || mem.NewRegion(4096).ID(r[0].Addr) != 2 {
		t.Fatalf("MRU drain = %+v, want region 2", r)
	}
	// Touching region 1 resumes it ahead of region 2.
	if !pb.Touch(1) {
		t.Fatal("Touch(1) should find the entry")
	}
	r = pb.Drain(1)
	if len(r) != 1 || mem.NewRegion(4096).ID(r[0].Addr) != 1 {
		t.Fatalf("post-touch drain = %+v, want region 1", r)
	}
	if pb.Touch(99) {
		t.Error("Touch of absent region should return false")
	}
}

func TestPBReplacesLRU(t *testing.T) {
	pb := newPrefetchBuffer(2, mem.NewRegion(4096))
	l := levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1})
	pb.Insert(1, 0, l)
	pb.Insert(2, 0, l)
	pb.Insert(3, 0, l) // displaces region 1 (LRU)
	if pb.Touch(1) {
		t.Error("region 1 should have been displaced")
	}
	if !pb.Touch(2) || !pb.Touch(3) {
		t.Error("regions 2 and 3 should be present")
	}
}

func TestPBReinsertResetsIssued(t *testing.T) {
	pb := newPrefetchBuffer(2, mem.NewRegion(4096))
	l := levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1})
	pb.Insert(1, 0, l)
	if got := pb.Drain(10); len(got) != 1 {
		t.Fatal("first drain should issue one request")
	}
	// Re-inserting the same region re-arms its pattern.
	pb.Insert(1, 0, l)
	if got := pb.Drain(10); len(got) != 1 {
		t.Error("re-inserted pattern should issue again")
	}
}

func TestPBDrainZero(t *testing.T) {
	pb := newPrefetchBuffer(2, mem.NewRegion(4096))
	pb.Insert(1, 0, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1}))
	if got := pb.Drain(0); got != nil {
		t.Errorf("Drain(0) = %v", got)
	}
}

func TestPBSmallRegions(t *testing.T) {
	region := mem.NewRegion(1024) // 16 lines
	pb := newPrefetchBuffer(2, region)
	if len(pb.order) != 15 {
		t.Fatalf("order length = %d, want 15", len(pb.order))
	}
	pb.Insert(5, 14, levelsWith(16, map[int]prefetch.Level{
		1: prefetch.LevelL1, // offset (14+1)%16 = 15
		2: prefetch.LevelL2, // offset 0 (wraps)
	}))
	got := pb.Drain(10)
	if len(got) != 2 {
		t.Fatalf("drained %d", len(got))
	}
	if got[0].Addr != region.LineAddr(5, 15) {
		t.Errorf("first = %#x, want offset 15", uint64(got[0].Addr))
	}
	if got[1].Addr != region.LineAddr(5, 0) {
		t.Errorf("second = %#x, want wrapped offset 0", uint64(got[1].Addr))
	}
}

func TestPBRequeueReissues(t *testing.T) {
	pb := newPrefetchBuffer(4, mem.NewRegion(4096))
	pb.Insert(7, 0, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1}))
	got := pb.Drain(10)
	if len(got) != 1 {
		t.Fatalf("drained %d", len(got))
	}
	if more := pb.Drain(10); len(more) != 0 {
		t.Fatal("entry should be exhausted")
	}
	// The system hands the request back: it must re-issue.
	pb.Requeue(7, 1)
	again := pb.Drain(10)
	if len(again) != 1 || again[0].Addr != got[0].Addr {
		t.Fatalf("requeue did not re-arm the target: %v", again)
	}
}

func TestPBRequeueUnknownRegionDropped(t *testing.T) {
	pb := newPrefetchBuffer(2, mem.NewRegion(4096))
	pb.Requeue(99, 1) // must not panic
	if got := pb.Drain(10); len(got) != 0 {
		t.Errorf("unexpected requests %v", got)
	}
}

func TestPBRequeueNeverIssuedIsNoop(t *testing.T) {
	pb := newPrefetchBuffer(2, mem.NewRegion(4096))
	pb.Insert(7, 0, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1}))
	pb.Requeue(7, 1) // not yet issued: pending count must not inflate
	if got := pb.Drain(10); len(got) != 1 {
		t.Errorf("drained %d, want exactly 1", len(got))
	}
}

func TestPBCrossRegionDrainAndRequeue(t *testing.T) {
	region := mem.NewRegion(4096)
	pb := newPrefetchBuffer(2, region)
	pb.crossRegion = true
	// Trigger at offset 63: anchored k=1 wraps; with projection it
	// targets region+1 offset 0.
	pb.Insert(5, 63, levelsWith(64, map[int]prefetch.Level{1: prefetch.LevelL1}))
	got := pb.Drain(10)
	if len(got) != 1 {
		t.Fatalf("drained %d", len(got))
	}
	want := region.LineAddr(6, 0)
	if got[0].Addr != want {
		t.Fatalf("target %#x, want %#x (projected)", uint64(got[0].Addr), uint64(want))
	}
	// Requeue with the projected coordinates finds the entry of region 5.
	pb.Requeue(6, 0)
	again := pb.Drain(10)
	if len(again) != 1 || again[0].Addr != want {
		t.Fatalf("cross-region requeue failed: %v", again)
	}
}
