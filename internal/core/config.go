// Package core implements the Pattern Merging Prefetcher (PMP), the
// paper's primary contribution: spatial patterns captured by an SMS
// framework are anchored on their trigger offset and merged into counter
// vectors held in two tagless direct-mapped tables (the Offset Pattern
// Table indexed by trigger offset and the PC Pattern Table indexed by
// hashed PC); prefetch targets are extracted by access frequency and the
// two predictions are arbitrated into per-offset target cache levels.
package core

import (
	"fmt"

	"pmp/internal/mem"
)

// Scheme selects the prefetch-pattern extraction strategy (paper §IV-B).
type Scheme uint8

// Extraction schemes.
const (
	// AFE is Access-Frequency-based Extraction: counter/time >= threshold
	// (the paper's default).
	AFE Scheme = iota
	// ANE is Access-Number-based Extraction: counter >= absolute threshold.
	ANE
	// ARE is Access-Ratio-based Extraction: counter/sum >= threshold.
	ARE
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case AFE:
		return "AFE"
	case ANE:
		return "ANE"
	case ARE:
		return "ARE"
	default:
		return "invalid"
	}
}

// FeatureMode selects the prediction table structure (paper §IV-C and
// the §V-E3 ablations).
type FeatureMode uint8

// Feature modes.
const (
	// DualTables is the default: OPT (trigger offset) + PPT (PC) with
	// arbitration.
	DualTables FeatureMode = iota
	// OPTOnly uses a single Offset Pattern Table.
	OPTOnly
	// PPTOnly uses a single PC Pattern Table sized like the OPT.
	PPTOnly
	// Combined uses a single table indexed by PC concatenated with
	// trigger offset (2^(PCBits+TriggerBits) entries).
	Combined
)

// String implements fmt.Stringer.
func (m FeatureMode) String() string {
	switch m {
	case DualTables:
		return "dual"
	case OPTOnly:
		return "opt-only"
	case PPTOnly:
		return "ppt-only"
	case Combined:
		return "combined"
	default:
		return "invalid"
	}
}

// Config holds every preset parameter of PMP (paper Table II) plus the
// ablation knobs exercised in §V-E.
type Config struct {
	RegionBytes     int     // tracked region size (4096 default; Table IX)
	OPTCounterBits  int     // OPT counter width (5 default; Table X)
	PPTCounterBits  int     // PPT counter width (5)
	TriggerBits     int     // trigger-offset feature width (6 default; Table X)
	PCBits          int     // hashed-PC feature width (5)
	MonitoringRange int     // offsets per PPT counter (2 default; Table XI)
	TL1D            float64 // L1D confidence threshold (0.50)
	TL2C            float64 // L2C confidence threshold (0.15)
	ANEL1           uint32  // ANE absolute L1 threshold (16, §V-E2)
	ANEL2           uint32  // ANE absolute L2 threshold (5)
	Scheme          Scheme
	Feature         FeatureMode
	PBEntries       int // prefetch buffer entries (16)
	// LowLevelDegree caps L2C/LLC prefetches per prediction; 0 means
	// unlimited (default). 1 is the paper's PMP-Limit.
	LowLevelDegree int

	// Ablation switches (not part of the paper's design; used by the
	// harness to quantify individual mechanisms).
	//
	// NoHalving freezes counter vectors at saturation instead of
	// halving them (paper §IV-A aging disabled).
	NoHalving bool
	// NoResume disables the prefetch buffer's continue-on-reaccess
	// behaviour (paper §IV-B): pending targets drain only right after
	// their trigger.
	NoResume bool
	// CrossRegion is an extension beyond the paper ("PMP does not
	// support cross-page prefetching", §V-E4): anchored targets that
	// wrap past the region end are projected into the *next* region
	// instead of wrapping back. For forward streams the wrapped targets
	// are behind the access front and useless; projecting them forward
	// prefetches the next region's head before its trigger.
	CrossRegion bool

	// Capture-framework geometry (paper Table III).
	FTSets, FTWays int
	ATSets, ATWays int
}

// DefaultConfig returns the paper's Table II/III configuration.
func DefaultConfig() Config {
	return Config{
		RegionBytes:     mem.DefaultRegion,
		OPTCounterBits:  5,
		PPTCounterBits:  5,
		TriggerBits:     6,
		PCBits:          5,
		MonitoringRange: 2,
		TL1D:            0.50,
		TL2C:            0.15,
		ANEL1:           16,
		ANEL2:           5,
		Scheme:          AFE,
		Feature:         DualTables,
		PBEntries:       16,
		FTSets:          8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

// PatternLen returns the OPT pattern length (lines per region).
func (c Config) PatternLen() int { return c.RegionBytes / mem.LineBytes }

// PPTLen returns the coarse PPT pattern length.
func (c Config) PPTLen() int { return c.PatternLen() / c.MonitoringRange }

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.RegionBytes < 2*mem.LineBytes || c.RegionBytes > mem.PageBytes ||
		c.RegionBytes&(c.RegionBytes-1) != 0 {
		return fmt.Errorf("pmp: region bytes must be a power of two in [128, 4096], got %d", c.RegionBytes)
	}
	minTrigger := log2(c.PatternLen())
	if c.TriggerBits < minTrigger || c.TriggerBits > 12 {
		return fmt.Errorf("pmp: trigger bits must be in [%d, 12], got %d", minTrigger, c.TriggerBits)
	}
	if c.PCBits < 1 || c.PCBits > 16 {
		return fmt.Errorf("pmp: PC bits must be in [1, 16], got %d", c.PCBits)
	}
	if c.OPTCounterBits < 1 || c.OPTCounterBits > 16 ||
		c.PPTCounterBits < 1 || c.PPTCounterBits > 16 {
		return fmt.Errorf("pmp: counter bits must be in [1, 16]")
	}
	if c.MonitoringRange < 1 || c.PatternLen()%c.MonitoringRange != 0 {
		return fmt.Errorf("pmp: monitoring range %d must divide pattern length %d",
			c.MonitoringRange, c.PatternLen())
	}
	if !(c.TL2C > 0 && c.TL2C <= c.TL1D && c.TL1D <= 1) {
		return fmt.Errorf("pmp: thresholds must satisfy 0 < TL2C <= TL1D <= 1 (%v, %v)", c.TL1D, c.TL2C)
	}
	if c.PBEntries < 1 {
		return fmt.Errorf("pmp: prefetch buffer needs at least one entry, got %d", c.PBEntries)
	}
	if c.Scheme > ARE {
		return fmt.Errorf("pmp: unknown extraction scheme %d", c.Scheme)
	}
	if c.Feature > Combined {
		return fmt.Errorf("pmp: unknown feature mode %d", c.Feature)
	}
	if c.LowLevelDegree < 0 {
		return fmt.Errorf("pmp: low-level degree must be >= 0, got %d", c.LowLevelDegree)
	}
	return nil
}

// StorageBreakdown itemizes the hardware budget like the paper's
// Table III.
type StorageBreakdown struct {
	FilterTableBits int
	AccumTableBits  int
	OPTBits         int
	PPTBits         int
	PrefetchBufBits int
	TotalBits       int
}

// TotalBytes returns the total budget in bytes.
func (s StorageBreakdown) TotalBytes() float64 { return float64(s.TotalBits) / 8 }

// Storage computes the Table III accounting for the configuration.
func (c Config) Storage() StorageBreakdown {
	region := mem.NewRegion(c.RegionBytes)
	regionBits := 48 - region.Shift()
	offBits := log2(c.PatternLen())

	ftEntry := (regionBits - log2(c.FTSets)) + 5 + offBits + log2(c.FTWays)
	atEntry := (regionBits - log2(c.ATSets)) + 5 + c.PatternLen() + offBits + log2(c.ATWays)

	var optBits, pptBits int
	switch c.Feature {
	case DualTables:
		optBits = (1 << c.TriggerBits) * c.PatternLen() * c.OPTCounterBits
		pptBits = (1 << c.PCBits) * c.PPTLen() * c.PPTCounterBits
	case OPTOnly:
		optBits = (1 << c.TriggerBits) * c.PatternLen() * c.OPTCounterBits
	case PPTOnly:
		// Sized like the OPT (paper §V-E3: "a single PPT with the same
		// size as the OPT").
		pptBits = (1 << c.TriggerBits) * c.PatternLen() * c.OPTCounterBits
	case Combined:
		optBits = (1 << (c.TriggerBits + c.PCBits)) * c.PatternLen() * c.OPTCounterBits
	}

	// PB entry: full region tag + 2 bits per prefetchable offset
	// (PatternLen-1 targets; the trigger itself is never prefetched) +
	// LRU.
	pbEntry := regionBits + 2*(c.PatternLen()-1) + log2(c.PBEntries)

	s := StorageBreakdown{
		FilterTableBits: c.FTSets * c.FTWays * ftEntry,
		AccumTableBits:  c.ATSets * c.ATWays * atEntry,
		OPTBits:         optBits,
		PPTBits:         pptBits,
		PrefetchBufBits: c.PBEntries * pbEntry,
	}
	s.TotalBits = s.FilterTableBits + s.AccumTableBits + s.OPTBits + s.PPTBits + s.PrefetchBufBits
	return s
}

func log2(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}
