package core

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// pbEntry holds one arbitrated prefetch pattern awaiting issue, keyed by
// region (paper Fig 6c bottom).
type pbEntry struct {
	valid   bool
	region  uint64
	trigger int              // trigger line offset, to unanchor targets
	levels  []prefetch.Level // anchored target levels; index 0 unused
	issued  []bool           // per anchored index
	pending int              // cached count of unissued targets
	lru     uint64
}

// prefetchBuffer is PMP's Prefetch Buffer: a small fully-associative
// LRU store of final prefetch patterns. Prefetches drain nearest-first
// relative to the trigger line; when the prefetch queue fills, draining
// resumes on the next access to the region (the entry is bumped MRU by
// Touch).
type prefetchBuffer struct {
	entries []pbEntry
	region  mem.Region
	// order lists anchored indices nearest-first: 1, n-1, 2, n-2, ...
	// (anchored index k targets line (trigger+k) mod n, so small k is
	// just ahead of the trigger and n-k just behind).
	order []int
	stamp uint64
	// crossRegion projects wrapping targets into the next region
	// (extension; see core.Config.CrossRegion).
	crossRegion bool
}

func newPrefetchBuffer(entries int, region mem.Region) *prefetchBuffer {
	n := region.Lines()
	order := make([]int, 0, n-1)
	for d := 1; d <= n/2; d++ {
		order = append(order, d)
		if other := n - d; other != d {
			order = append(order, other)
		}
	}
	pb := &prefetchBuffer{
		entries: make([]pbEntry, entries),
		region:  region,
		order:   order,
	}
	for i := range pb.entries {
		pb.entries[i].levels = make([]prefetch.Level, n)
		pb.entries[i].issued = make([]bool, n)
	}
	return pb
}

// Insert stores a freshly arbitrated pattern for the region, replacing
// an existing entry for the same region or the LRU victim.
func (pb *prefetchBuffer) Insert(region uint64, trigger int, levels []prefetch.Level) {
	pb.stamp++
	victim := 0
	oldest := ^uint64(0)
	for i := range pb.entries {
		e := &pb.entries[i]
		if e.valid && e.region == region {
			victim = i
			break
		}
		if !e.valid {
			if oldest != 0 {
				victim = i
				oldest = 0
			}
			continue
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	e := &pb.entries[victim]
	e.valid = true
	e.region = region
	e.trigger = trigger
	e.lru = pb.stamp
	copy(e.levels, levels)
	e.pending = 0
	for i := range e.issued {
		e.issued[i] = false
		if i > 0 && e.levels[i] != prefetch.LevelNone {
			e.pending++
		}
	}
}

// Touch bumps the region's entry to MRU so draining resumes there. It
// reports whether the region was present.
func (pb *prefetchBuffer) Touch(region uint64) bool {
	for i := range pb.entries {
		e := &pb.entries[i]
		if e.valid && e.region == region {
			pb.stamp++
			e.lru = pb.stamp
			return true
		}
	}
	return false
}

// Drain emits up to max requests, MRU entry first, nearest offsets
// first within an entry.
func (pb *prefetchBuffer) Drain(max int) []prefetch.Request {
	if max <= 0 {
		return nil
	}
	return pb.DrainInto(nil, max)
}

// DrainInto emits up to max requests like Drain, appending them to the
// caller-owned dst: the allocation-free fast path behind
// prefetch.BulkIssuer.
func (pb *prefetchBuffer) DrainInto(dst []prefetch.Request, max int) []prefetch.Request {
	if max <= 0 {
		return dst
	}
	emitted := 0
	for emitted < max {
		e := pb.mruPending()
		if e == nil {
			break
		}
		for _, k := range pb.order {
			if emitted >= max {
				break
			}
			if e.issued[k] || e.levels[k] == prefetch.LevelNone {
				continue
			}
			e.issued[k] = true
			e.pending--
			n := pb.region.Lines()
			regionID := e.region
			raw := e.trigger + k
			if raw >= n && pb.crossRegion {
				regionID++ // project forward instead of wrapping back
			}
			dst = append(dst, prefetch.Request{
				Addr:  pb.region.LineAddr(regionID, raw%n),
				Level: e.levels[k],
			})
			emitted++
		}
		// Fully drained entries stay resident: the system may hand
		// requests back via Requeue when MSHRs are full, and draining
		// resumes on the next access to the region.
	}
	return dst
}

// Requeue re-arms the target at (region, offset) so a later Drain
// re-issues it. Unknown regions (entry since replaced) are dropped.
// With cross-region projection a target may live in the entry of the
// preceding region.
func (pb *prefetchBuffer) Requeue(region uint64, offset int) {
	if pb.requeueIn(region, region, offset) {
		return
	}
	if pb.crossRegion && region > 0 {
		pb.requeueIn(region-1, region, offset)
	}
}

// requeueIn re-arms the target of `entryRegion` whose projected address
// lands at (targetRegion, offset). It reports whether the entry exists.
func (pb *prefetchBuffer) requeueIn(entryRegion, targetRegion uint64, offset int) bool {
	for i := range pb.entries {
		e := &pb.entries[i]
		if !e.valid || e.region != entryRegion {
			continue
		}
		n := pb.region.Lines()
		raw := offset - e.trigger
		if targetRegion == entryRegion+1 {
			raw += n
		} else if raw < 0 {
			raw += n
		}
		if raw > 0 && raw < n && e.levels[raw] != prefetch.LevelNone && e.issued[raw] {
			e.issued[raw] = false
			e.pending++
		}
		return true
	}
	return false
}

func (pb *prefetchBuffer) mruPending() *pbEntry {
	var best *pbEntry
	var bestLRU uint64
	for i := range pb.entries {
		e := &pb.entries[i]
		if !e.valid || e.pending == 0 {
			continue
		}
		if best == nil || e.lru > bestLRU {
			best, bestLRU = e, e.lru
		}
	}
	return best
}
