package core

import (
	"math/bits"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// pbEntry holds one arbitrated prefetch pattern awaiting issue, keyed by
// region (paper Fig 6c bottom).
//
// The per-target issue state is two rank bitmaps rather than a []bool:
// bit r of targetRank marks that order[r] is a real target (level !=
// LevelNone at insert), bit r of pendingRank that it is still awaiting
// issue. Draining walks pendingRank's set bits with TrailingZeros64 —
// nearest-first for free, since ranks are already nearest-first — and a
// requeued target is re-armed with one OR. Issued-but-unacknowledged
// targets are exactly targetRank &^ pendingRank.
type pbEntry struct {
	valid       bool
	region      uint64
	trigger     int              // trigger line offset, to unanchor targets
	levels      []prefetch.Level // anchored target levels; index 0 unused
	targetRank  uint64           // bit r: order[r] is a target
	pendingRank uint64           // bit r: order[r] not yet issued
	lru         uint64
}

// prefetchBuffer is PMP's Prefetch Buffer: a small fully-associative
// LRU store of final prefetch patterns. Prefetches drain nearest-first
// relative to the trigger line; when the prefetch queue fills, draining
// resumes on the next access to the region (the entry is bumped MRU by
// Touch).
type prefetchBuffer struct {
	entries []pbEntry
	region  mem.Region
	// order lists anchored indices nearest-first: 1, n-1, 2, n-2, ...
	// (anchored index k targets line (trigger+k) mod n, so small k is
	// just ahead of the trigger and n-k just behind).
	order []int
	// rankOf inverts order: rankOf[order[r]] == r (rankOf[0] unused).
	rankOf []int
	// hint is the slot of the most recently matched region. Requeues and
	// touches arrive in bursts against one region (a drain bounced off a
	// full MSHR file hands every request of the entry back), so checking
	// it first turns the associative scan into a single compare.
	hint int
	// pendingSlots has bit i set when entries[i] is valid with at least
	// one pending target, so the MRU search visits only drainable
	// entries (usually one) instead of every slot.
	pendingSlots []uint64
	// drainSlot is the slot mruPending last returned, so DrainInto can
	// clear its pending bit without a reverse lookup.
	drainSlot int
	stamp     uint64
	// crossRegion projects wrapping targets into the next region
	// (extension; see core.Config.CrossRegion).
	crossRegion bool
}

func newPrefetchBuffer(entries int, region mem.Region) *prefetchBuffer {
	n := region.Lines()
	order := make([]int, 0, n-1)
	for d := 1; d <= n/2; d++ {
		order = append(order, d)
		if other := n - d; other != d {
			order = append(order, other)
		}
	}
	rankOf := make([]int, n)
	for r, k := range order {
		rankOf[k] = r
	}
	pb := &prefetchBuffer{
		entries:      make([]pbEntry, entries),
		region:       region,
		order:        order,
		rankOf:       rankOf,
		pendingSlots: make([]uint64, (entries+63)/64),
	}
	for i := range pb.entries {
		pb.entries[i].levels = make([]prefetch.Level, n)
	}
	return pb
}

// Insert stores a freshly arbitrated pattern for the region, replacing
// an existing entry for the same region or the LRU victim.
func (pb *prefetchBuffer) Insert(region uint64, trigger int, levels []prefetch.Level) {
	pb.stamp++
	victim := 0
	oldest := ^uint64(0)
	for i := range pb.entries {
		e := &pb.entries[i]
		if e.valid && e.region == region {
			victim = i
			break
		}
		if !e.valid {
			if oldest != 0 {
				victim = i
				oldest = 0
			}
			continue
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	pb.hint = victim
	e := &pb.entries[victim]
	e.valid = true
	e.region = region
	e.trigger = trigger
	e.lru = pb.stamp
	copy(e.levels, levels)
	e.targetRank = 0
	for r, k := range pb.order {
		if levels[k] != prefetch.LevelNone {
			e.targetRank |= 1 << uint(r)
		}
	}
	e.pendingRank = e.targetRank
	pb.setPending(victim, e.pendingRank != 0)
}

// setPending records whether slot i has pending targets.
//
//pmp:hotpath
func (pb *prefetchBuffer) setPending(i int, pending bool) {
	if pending {
		pb.pendingSlots[i>>6] |= 1 << uint(i&63)
	} else {
		pb.pendingSlots[i>>6] &^= 1 << uint(i&63)
	}
}

// Touch bumps the region's entry to MRU so draining resumes there. It
// reports whether the region was present.
//
//pmp:hotpath
func (pb *prefetchBuffer) Touch(region uint64) bool {
	i, ok := pb.lookup(region)
	if !ok {
		return false
	}
	pb.stamp++
	pb.entries[i].lru = pb.stamp
	return true
}

// lookup returns the slot holding region's entry. Regions are unique
// across slots (Insert replaces in place), so the hint-first probe is
// exact, not just heuristic.
//
//pmp:hotpath
func (pb *prefetchBuffer) lookup(region uint64) (int, bool) {
	if h := pb.hint; h < len(pb.entries) {
		if e := &pb.entries[h]; e.valid && e.region == region {
			return h, true
		}
	}
	for i := range pb.entries {
		e := &pb.entries[i]
		if e.valid && e.region == region {
			pb.hint = i
			return i, true
		}
	}
	return 0, false
}

// Drain emits up to max requests, MRU entry first, nearest offsets
// first within an entry.
func (pb *prefetchBuffer) Drain(max int) []prefetch.Request {
	if max <= 0 {
		return nil
	}
	return pb.DrainInto(nil, max)
}

// DrainInto emits up to max requests like Drain, appending them to the
// caller-owned dst: the allocation-free fast path behind
// prefetch.BulkIssuer. The inner walk visits only pending targets —
// one TrailingZeros64 per emitted request — instead of scanning every
// rank of the order.
//
//pmp:hotpath
func (pb *prefetchBuffer) DrainInto(dst []prefetch.Request, max int) []prefetch.Request {
	if max <= 0 {
		return dst
	}
	n := pb.region.Lines()
	emitted := 0
	for emitted < max {
		e := pb.mruPending()
		if e == nil {
			break
		}

		for m := e.pendingRank; m != 0 && emitted < max; m &= m - 1 {
			r := bits.TrailingZeros64(m)
			k := pb.order[r]
			e.pendingRank &^= 1 << uint(r)
			if e.pendingRank == 0 {
				pb.setPending(pb.drainSlot, false)
			}
			regionID := e.region
			raw := e.trigger + k
			if raw >= n && pb.crossRegion {
				regionID++ // project forward instead of wrapping back
			}
			dst = append(dst, prefetch.Request{
				Addr:  pb.region.LineAddr(regionID, raw%n),
				Level: e.levels[k],
			})
			emitted++
		}
		// Fully drained entries stay resident: the system may hand
		// requests back via Requeue when MSHRs are full, and draining
		// resumes on the next access to the region.
	}
	return dst
}

// Requeue re-arms the target at (region, offset) so a later Drain
// re-issues it. Unknown regions (entry since replaced) are dropped.
// With cross-region projection a target may live in the entry of the
// preceding region.
//
//pmp:hotpath
func (pb *prefetchBuffer) Requeue(region uint64, offset int) {
	if pb.requeueIn(region, region, offset) {
		return
	}
	if pb.crossRegion && region > 0 {
		pb.requeueIn(region-1, region, offset)
	}
}

// requeueIn re-arms the target of `entryRegion` whose projected address
// lands at (targetRegion, offset). It reports whether the entry exists.
//
//pmp:hotpath
func (pb *prefetchBuffer) requeueIn(entryRegion, targetRegion uint64, offset int) bool {
	i, ok := pb.lookup(entryRegion)
	if !ok {
		return false
	}
	e := &pb.entries[i]
	n := pb.region.Lines()
	raw := offset - e.trigger
	if targetRegion == entryRegion+1 {
		raw += n
	} else if raw < 0 {
		raw += n
	}
	if raw > 0 && raw < n {
		// Re-arm only a real target that was actually issued.
		bit := uint64(1) << uint(pb.rankOf[raw])
		e.pendingRank |= e.targetRank &^ e.pendingRank & bit
		if e.pendingRank != 0 {
			pb.setPending(i, true)
		}
	}
	return true
}

// mruPending returns the MRU entry with pending targets (recording its
// slot in drainSlot), walking only the pendingSlots bitmap.
//
//pmp:hotpath
func (pb *prefetchBuffer) mruPending() *pbEntry {
	var best *pbEntry
	var bestLRU uint64
	for w, bmw := range pb.pendingSlots {
		for m := bmw; m != 0; m &= m - 1 {
			i := w<<6 + bits.TrailingZeros64(m)
			e := &pb.entries[i]
			if best == nil || e.lru > bestLRU {
				best, bestLRU = e, e.lru
				pb.drainSlot = i
			}
		}
	}
	return best
}
