package core

import (
	"testing"

	"pmp/internal/prefetch"
)

func TestDesignBConfigValidate(t *testing.T) {
	if err := DefaultDesignBConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	c := DefaultDesignBConfig()
	c.Ways = 0
	if err := c.Validate(); err == nil {
		t.Error("zero ways should be invalid")
	}
	c = DefaultDesignBConfig()
	c.L2Threshold = 99
	if err := c.Validate(); err == nil {
		t.Error("inverted thresholds should be invalid")
	}
	c = DefaultDesignBConfig()
	c.RegionBytes = 100
	if err := c.Validate(); err == nil {
		t.Error("bad region should be invalid")
	}
}

func TestDesignBLearnsIdenticalPatterns(t *testing.T) {
	cfg := DefaultDesignBConfig()
	cfg.L1Threshold = 4
	cfg.L2Threshold = 2
	d := NewDesignB(cfg)
	teach(d, 0x400, 0, 10, []int{0, 1, 2})
	train(d, 0x400, regionAddr(1000, 0))
	reqs := d.Issue(64)
	if len(reqs) != 2 {
		t.Fatalf("issued %d, want 2", len(reqs))
	}
	for _, r := range reqs {
		if r.Level != prefetch.LevelL1 {
			t.Errorf("level = %v, want L1D above threshold", r.Level)
		}
	}
}

func TestDesignBColdStart(t *testing.T) {
	cfg := DefaultDesignBConfig()
	cfg.L1Threshold = 16
	cfg.L2Threshold = 5
	d := NewDesignB(cfg)
	teach(d, 0x400, 0, 2, []int{0, 1}) // counter = 2 < L2 threshold
	train(d, 0x400, regionAddr(1000, 0))
	if reqs := d.Issue(64); len(reqs) != 0 {
		t.Errorf("below-threshold pattern prefetched: %v", reqs)
	}
}

// Design B's weakness (paper §V-E1): non-identical patterns thrash the
// set. With 1 way, alternating patterns never accumulate a counter.
func TestDesignBThrashing(t *testing.T) {
	cfg := DefaultDesignBConfig()
	cfg.Ways = 1
	cfg.L1Threshold = 4
	cfg.L2Threshold = 2
	d := NewDesignB(cfg)
	// Alternate two different patterns with the same trigger offset.
	for r := 0; r < 40; r++ {
		offs := []int{0, 1}
		if r%2 == 1 {
			offs = []int{0, 2}
		}
		teach(d, 0x400, uint64(r*2+1), 1, offs)
	}
	train(d, 0x400, regionAddr(9000, 0))
	if reqs := d.Issue(64); len(reqs) != 0 {
		t.Errorf("1-way Design B should thrash, issued %v", reqs)
	}
	// With more ways, both patterns persist and one reaches threshold.
	cfg.Ways = 8
	d = NewDesignB(cfg)
	for r := 0; r < 40; r++ {
		offs := []int{0, 1}
		if r%2 == 1 {
			offs = []int{0, 2}
		}
		teach(d, 0x400, uint64(r*2+1), 1, offs)
	}
	train(d, 0x400, regionAddr(9000, 0))
	if reqs := d.Issue(64); len(reqs) == 0 {
		t.Error("8-way Design B should retain patterns")
	}
}

func TestDesignBName(t *testing.T) {
	if got := NewDesignB(DefaultDesignBConfig()).Name(); got != "designb-8w" {
		t.Errorf("name = %q", got)
	}
}

// Name must be computed once at construction, not formatted per call
// (prefetcherimpl contract: names key result maps on hot paths).
func TestDesignBNameAllocFree(t *testing.T) {
	d := NewDesignB(DefaultDesignBConfig())
	first := d.Name()
	if allocs := testing.AllocsPerRun(100, func() { _ = d.Name() }); allocs != 0 {
		t.Errorf("Name() allocates %.0f times per call, want 0", allocs)
	}
	if again := d.Name(); again != first {
		t.Errorf("Name() unstable: %q then %q", first, again)
	}
}

func TestDesignBStorageGrowsWithWays(t *testing.T) {
	small := DefaultDesignBConfig()
	big := DefaultDesignBConfig()
	big.Ways = 512
	sb := NewDesignB(small).StorageBits()
	bb := NewDesignB(big).StorageBits()
	if bb <= sb {
		t.Errorf("512-way (%d bits) should dwarf 8-way (%d bits)", bb, sb)
	}
}

func TestDesignBOnFillIgnored(t *testing.T) {
	d := NewDesignB(DefaultDesignBConfig())
	d.OnFill(0, prefetch.LevelL1, false) // must not panic
}
