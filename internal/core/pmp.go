package core

import (
	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sms"
)

// PMP is the Pattern Merging Prefetcher. Construct with New.
//
// Training (paper Fig 7, left): every L1D load runs through the SMS
// capture framework; completed region patterns are anchored on their
// trigger offset and merged into the Offset Pattern Table and the
// (coarse) PC Pattern Table.
//
// Prefetching (paper Fig 7, right): when a load triggers a fresh
// region, both tables are indexed (trigger-offset feature and hashed-PC
// feature), candidate prefetch patterns are extracted with the
// configured scheme, arbitrated into per-offset target levels, and the
// final pattern is stored in the Prefetch Buffer from which requests
// drain nearest-first as prefetch-queue slots free up.
type PMP struct {
	cfg    Config
	region mem.Region
	fw     *sms.Framework
	ext    extractor
	pb     *prefetchBuffer

	// Pattern tables behind the PatternTable interface: by default the
	// bit-parallel PackedCounterTable (64/bits counters per uint64 word,
	// SWAR merge/halve/compare), with the scalar CounterTable as the
	// reference fallback for counter widths too wide to pack.
	opt mem.PatternTable // primary table (trigger-offset indexed)
	ppt mem.PatternTable // supplement table (PC indexed, coarse)

	// scratch buffers reused across predictions
	optLevels []prefetch.Level
	pptLevels []prefetch.Level
	final     []prefetch.Level

	stats Stats
}

// Stats counts PMP-internal training/prediction activity (useful in
// tests and the analysis tooling; the simulator measures performance
// externally).
type Stats struct {
	PatternsMerged uint64
	Predictions    uint64
	TargetsQueued  uint64
	Halvings       uint64
}

// New constructs a PMP from the configuration; it panics on an invalid
// configuration (programming error at the call site).
func New(cfg Config) *PMP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	region := mem.NewRegion(cfg.RegionBytes)
	n := cfg.PatternLen()

	p := &PMP{
		cfg:    cfg,
		region: region,
		fw: sms.New(sms.Config{
			Region: region,
			FTSets: cfg.FTSets, FTWays: cfg.FTWays,
			ATSets: cfg.ATSets, ATWays: cfg.ATWays,
		}),
		ext: newExtractor(cfg),
		pb:  newPrefetchBuffer(cfg.PBEntries, region),
		// crossRegion set below once the buffer exists.
		optLevels: make([]prefetch.Level, n),
		final:     make([]prefetch.Level, n),
	}

	p.pb.crossRegion = cfg.CrossRegion
	switch cfg.Feature {
	case DualTables:
		p.opt = mem.NewPatternTable(1<<cfg.TriggerBits, n, cfg.OPTCounterBits)
		p.ppt = mem.NewPatternTable(1<<cfg.PCBits, cfg.PPTLen(), cfg.PPTCounterBits)
		p.pptLevels = make([]prefetch.Level, cfg.PPTLen())
	case OPTOnly:
		p.opt = mem.NewPatternTable(1<<cfg.TriggerBits, n, cfg.OPTCounterBits)
	case PPTOnly:
		// Sized like the OPT (§V-E3), indexed by hashed PC, full length.
		p.ppt = mem.NewPatternTable(1<<cfg.TriggerBits, n, cfg.OPTCounterBits)
		p.pptLevels = make([]prefetch.Level, n)
	case Combined:
		p.opt = mem.NewPatternTable(1<<(cfg.TriggerBits+cfg.PCBits), n, cfg.OPTCounterBits)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *PMP) Name() string { return "pmp" }

// Config returns the active configuration.
func (p *PMP) Config() Config { return p.cfg }

// Stats returns internal activity counters.
func (p *PMP) Stats() Stats { return p.stats }

// triggerIndex derives the OPT index from the trigger access's byte
// address: the top TriggerBits bits of the in-region byte offset. For
// the default 6-bit width over 4KB regions this is exactly the line
// offset; wider widths (Table X) append sub-line address bits.
func (p *PMP) triggerIndex(addr mem.Addr) int {
	inRegion := uint64(addr) & uint64(p.cfg.RegionBytes-1)
	return int(inRegion >> uint(p.region.Shift()-p.cfg.TriggerBits))
}

func (p *PMP) pcIndex(pc uint64) int {
	return int(mem.HashPC(pc, p.cfg.PCBits))
}

// Train implements prefetch.Prefetcher.
func (p *PMP) Train(a prefetch.Access) {
	trig, isTrigger, closed := p.fw.Observe(a.PC, a.Addr)
	for i := range closed {
		p.merge(closed[i])
	}
	if isTrigger {
		p.predict(trig)
		return
	}
	// Re-access to a buffered region resumes its draining (paper §IV-B:
	// "when any load with the address of the same region reappears ...
	// the process continues").
	if !p.cfg.NoResume {
		p.pb.Touch(p.region.ID(a.Addr))
	}
}

// OnEvict implements prefetch.Prefetcher.
func (p *PMP) OnEvict(line mem.Addr) {
	if pat, ok := p.fw.OnEvict(line); ok {
		p.merge(pat)
	}
}

// OnFill implements prefetch.Prefetcher. PMP does not learn from
// prefetch outcomes.
func (p *PMP) OnFill(mem.Addr, prefetch.Level, bool) {}

// merge folds a completed pattern into the pattern tables.
func (p *PMP) merge(pat sms.Pattern) {
	p.stats.PatternsMerged++
	anchored := pat.Anchored()
	switch p.cfg.Feature {
	case DualTables:
		p.mergeInto(p.opt, p.triggerIndex(pat.TriggerAddr), anchored)
		p.mergeInto(p.ppt, p.pcIndex(pat.PC), anchored.Fold(p.cfg.MonitoringRange))
	case OPTOnly:
		p.mergeInto(p.opt, p.triggerIndex(pat.TriggerAddr), anchored)
	case PPTOnly:
		p.mergeInto(p.ppt, int(mem.HashPC(pat.PC, p.cfg.TriggerBits)), anchored)
	case Combined:
		idx := p.pcIndex(pat.PC)<<p.cfg.TriggerBits | p.triggerIndex(pat.TriggerAddr)
		p.mergeInto(p.opt, idx, anchored)
	}
}

// mergeInto accumulates a pattern into a table row, honouring the
// halving ablation.
//
//pmp:hotpath
func (p *PMP) mergeInto(t mem.PatternTable, row int, pattern mem.BitVector) {
	if p.cfg.NoHalving {
		t.MergeRowNoHalve(row, pattern)
		return
	}
	if t.MergeRow(row, pattern) {
		p.stats.Halvings++
	}
}

// predict runs extraction and arbitration for a trigger access and
// stores the final pattern in the prefetch buffer.
func (p *PMP) predict(trig sms.Trigger) {
	p.stats.Predictions++
	switch p.cfg.Feature {
	case DualTables:
		p.ext.ExtractRow(p.opt, p.triggerIndex(trig.Addr), p.optLevels)
		p.ext.ExtractRow(p.ppt, p.pcIndex(trig.PC), p.pptLevels)
		p.arbitrate()
	case OPTOnly:
		p.ext.ExtractRow(p.opt, p.triggerIndex(trig.Addr), p.optLevels)
		copy(p.final, p.optLevels)
	case PPTOnly:
		p.ext.ExtractRow(p.ppt, int(mem.HashPC(trig.PC, p.cfg.TriggerBits)), p.pptLevels)
		copy(p.final, p.pptLevels)
	case Combined:
		idx := p.pcIndex(trig.PC)<<p.cfg.TriggerBits | p.triggerIndex(trig.Addr)
		p.ext.ExtractRow(p.opt, idx, p.optLevels)
		copy(p.final, p.optLevels)
	}
	p.capLowLevel()
	queued := 0
	for k := 1; k < len(p.final); k++ {
		if p.final[k] != prefetch.LevelNone {
			queued++
		}
	}
	if queued == 0 {
		return
	}
	p.stats.TargetsQueued += uint64(queued)
	p.pb.Insert(trig.RegionID, trig.Offset, p.final)
}

// arbitrate combines the OPT and PPT candidate patterns into p.final
// using the paper's four rules (Fig 6e):
//
//  1. L1D only when both tables predict L1D;
//  2. if both predict but either says L2C, prefetch to L2C;
//  3. if the PPT is silent, downgrade the OPT's level;
//  4. if the OPT is silent, do not prefetch.
func (p *PMP) arbitrate() {
	m := p.cfg.MonitoringRange
	for k := range p.final {
		o := p.optLevels[k]
		if k == 0 || o == prefetch.LevelNone {
			p.final[k] = prefetch.LevelNone // rule 4
			continue
		}
		pp := p.pptLevels[k/m]
		switch {
		case pp == prefetch.LevelNone:
			p.final[k] = o.Downgrade() // rule 3
		case o == prefetch.LevelL1 && pp == prefetch.LevelL1:
			p.final[k] = prefetch.LevelL1 // rule 1
		default:
			p.final[k] = prefetch.LevelL2 // rule 2
		}
	}
}

// capLowLevel enforces the PMP-Limit low-level prefetch degree: at most
// LowLevelDegree non-L1D targets survive, nearest-first.
func (p *PMP) capLowLevel() {
	if p.cfg.LowLevelDegree <= 0 {
		return
	}
	kept := 0
	for _, k := range p.pb.order {
		l := p.final[k]
		if l == prefetch.LevelNone || l == prefetch.LevelL1 {
			continue
		}
		if kept < p.cfg.LowLevelDegree {
			kept++
			continue
		}
		p.final[k] = prefetch.LevelNone
	}
}

// Issue implements prefetch.Prefetcher.
func (p *PMP) Issue(max int) []prefetch.Request {
	return p.pb.Drain(max)
}

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (p *PMP) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return p.pb.DrainInto(dst, max)
}

// Requeue implements prefetch.Requeuer: an unadmitted request returns
// to the prefetch buffer and is retried when the region is re-accessed.
func (p *PMP) Requeue(r prefetch.Request) {
	p.pb.Requeue(p.region.ID(r.Addr), p.region.Offset(r.Addr))
}

// StorageBits implements prefetch.Prefetcher.
func (p *PMP) StorageBits() int { return p.cfg.Storage().TotalBits }
