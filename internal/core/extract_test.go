package core

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// mergeVector builds a counter vector by merging a sequence of anchored
// patterns, returning the result.
func mergeVector(length, bits int, patterns ...[]int) *mem.CounterVector {
	cv := mem.NewCounterVector(length, bits)
	for _, offs := range patterns {
		p := mem.NewBitVector(length)
		p.Set(0)
		for _, o := range offs {
			p.Set(o)
		}
		cv.Merge(p)
	}
	return cv
}

func defaultExtractor() extractor { return newExtractor(DefaultConfig()) }

// Paper §IV-B AFE example: counter vector (4, 2, 0, 1) with T_l1d = 1/2
// and T_l2c reachable converts offset 1 (freq 2/4) to L1.
func TestAFEPaperExample(t *testing.T) {
	// Build (4, 2, 0, 1): four merges; offset 1 in two of them, offset 3
	// in one.
	cv := mergeVector(4, 5, []int{1}, []int{1, 3}, nil, nil)
	got := make([]prefetch.Level, 4)
	defaultExtractor().Extract(cv, got)
	if got[0] != prefetch.LevelNone {
		t.Error("trigger offset must never be prefetched")
	}
	if got[1] != prefetch.LevelL1 {
		t.Errorf("offset 1 (freq 0.5) = %v, want L1D", got[1])
	}
	if got[2] != prefetch.LevelNone {
		t.Errorf("offset 2 (freq 0) = %v, want none", got[2])
	}
	if got[3] != prefetch.LevelL2 {
		t.Errorf("offset 3 (freq 0.25) = %v, want L2C", got[3])
	}
}

func TestAFEUntrainedIsSilent(t *testing.T) {
	cv := mem.NewCounterVector(8, 5)
	got := make([]prefetch.Level, 8)
	defaultExtractor().Extract(cv, got)
	for i, l := range got {
		if l != prefetch.LevelNone {
			t.Errorf("untrained vector produced %v at %d", l, i)
		}
	}
}

// The AFE has no cold-start problem: an offset present in every pattern
// has frequency 1 from the first merge (paper §IV-B).
func TestAFENoColdStart(t *testing.T) {
	cv := mergeVector(8, 5, []int{1})
	got := make([]prefetch.Level, 8)
	defaultExtractor().Extract(cv, got)
	if got[1] != prefetch.LevelL1 {
		t.Errorf("offset seen in 1/1 patterns = %v, want L1D immediately", got[1])
	}
}

// The AFE handles stream patterns: all 63 offsets at frequency 1 are
// all selected (paper: "every offset that frequently occurs can be
// independently selected").
func TestAFEStreamPattern(t *testing.T) {
	all := make([]int, 63)
	for i := range all {
		all[i] = i + 1
	}
	cv := mergeVector(64, 5, all, all, all)
	got := make([]prefetch.Level, 64)
	defaultExtractor().Extract(cv, got)
	for i := 1; i < 64; i++ {
		if got[i] != prefetch.LevelL1 {
			t.Fatalf("stream offset %d = %v, want L1D", i, got[i])
		}
	}
}

// The ARE caps prefetch depth at 1/threshold: a uniform 63-offset
// stream yields nothing at T=15% (paper §IV-B).
func TestAREDepthLimit(t *testing.T) {
	all := make([]int, 63)
	for i := range all {
		all[i] = i + 1
	}
	cv := mergeVector(64, 5, all, all, all)
	cfg := DefaultConfig()
	cfg.Scheme = ARE
	got := make([]prefetch.Level, 64)
	newExtractor(cfg).Extract(cv, got)
	for i := 1; i < 64; i++ {
		if got[i] != prefetch.LevelNone {
			t.Fatalf("ARE selected offset %d on a uniform stream", i)
		}
	}
}

func TestAREConcentratedPattern(t *testing.T) {
	// One dominant offset: ratio 2/3 >= 0.5 -> L1; minor offset 1/3 ->
	// L2 (>= 0.15).
	cv := mergeVector(4, 5, []int{1}, []int{1, 3}, nil)
	cfg := DefaultConfig()
	cfg.Scheme = ARE
	got := make([]prefetch.Level, 4)
	newExtractor(cfg).Extract(cv, got)
	if got[1] != prefetch.LevelL1 || got[3] != prefetch.LevelL2 {
		t.Errorf("ARE = %v, want [_, L1D, none, L2C]", got)
	}
}

func TestAREEmptySum(t *testing.T) {
	cv := mergeVector(4, 5, nil, nil) // only the trigger counter advances
	cfg := DefaultConfig()
	cfg.Scheme = ARE
	got := make([]prefetch.Level, 4)
	newExtractor(cfg).Extract(cv, got)
	for _, l := range got {
		if l != prefetch.LevelNone {
			t.Error("zero-sum vector should be silent")
		}
	}
}

// The ANE needs absolute counts: an offset must be seen T times before
// being prefetched (the cold-start problem, paper §IV-B).
func TestANEColdStart(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scheme = ANE
	cfg.ANEL1 = 16
	cfg.ANEL2 = 5
	cfg.OPTCounterBits = 8
	e := newExtractor(cfg)
	got := make([]prefetch.Level, 8)

	cv := mem.NewCounterVector(8, 8)
	p := mem.BitVectorOf(8, 0, 1)
	for i := 0; i < 4; i++ {
		cv.Merge(p)
	}
	e.Extract(cv, got)
	if got[1] != prefetch.LevelNone {
		t.Errorf("4 observations = %v, want none (below ANE L2 threshold)", got[1])
	}
	cv.Merge(p)
	e.Extract(cv, got)
	if got[1] != prefetch.LevelL2 {
		t.Errorf("5 observations = %v, want L2C", got[1])
	}
	for i := 0; i < 11; i++ {
		cv.Merge(p)
	}
	e.Extract(cv, got)
	if got[1] != prefetch.LevelL1 {
		t.Errorf("16 observations = %v, want L1D", got[1])
	}
}

// Halving barely changes AFE output (paper footnote 1), unlike ANE.
func TestAFESurvivesHalving(t *testing.T) {
	cv := mergeVector(8, 8,
		[]int{1}, []int{1}, []int{1, 2}, []int{1},
		[]int{1}, []int{1}, []int{1, 2}, []int{1})
	got := make([]prefetch.Level, 8)
	e := defaultExtractor()
	e.Extract(cv, got)
	before1, before2 := got[1], got[2]
	cv.Halve()
	e.Extract(cv, got)
	if got[1] != before1 {
		t.Errorf("offset 1 changed across halving: %v -> %v", before1, got[1])
	}
	if got[2] != before2 {
		t.Errorf("offset 2 changed across halving: %v -> %v", before2, got[2])
	}
}
