package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// TestPMPRandomStreamInvariants hammers PMP with arbitrary access
// streams and checks the safety invariants the simulator relies on:
// no panics, line-aligned targets, valid levels, and no duplicate
// targets within a drain window.
func TestPMPRandomStreamInvariants(t *testing.T) {
	f := func(seed int64, schemeSel, featSel uint8) bool {
		cfg := DefaultConfig()
		cfg.Scheme = []Scheme{AFE, ANE, ARE}[int(schemeSel)%3]
		cfg.Feature = []FeatureMode{DualTables, OPTOnly, PPTOnly, Combined}[int(featSel)%4]
		p := New(cfg)
		rng := rand.New(rand.NewSource(seed))

		for i := 0; i < 3000; i++ {
			pc := uint64(0x400000 + rng.Intn(16)*4)
			addr := mem.Addr(rng.Int63n(1 << 30))
			p.Train(prefetch.Access{PC: pc, Addr: addr})
			if rng.Intn(4) == 0 {
				p.OnEvict(mem.Addr(rng.Int63n(1 << 30)).Line())
			}
			for _, r := range p.Issue(rng.Intn(9)) {
				if r.Addr != r.Addr.Line() {
					t.Logf("unaligned target %#x", uint64(r.Addr))
					return false
				}
				if r.Level != prefetch.LevelL1 && r.Level != prefetch.LevelL2 && r.Level != prefetch.LevelLLC {
					t.Logf("invalid level %v", r.Level)
					return false
				}
			}
			if rng.Intn(16) == 0 {
				// Requeue a random plausible address; must never panic.
				p.Requeue(prefetch.Request{Addr: addr.Line(), Level: prefetch.LevelL2})
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestDesignBRandomStreamInvariants does the same for Design B.
func TestDesignBRandomStreamInvariants(t *testing.T) {
	f := func(seed int64, waysSel uint8) bool {
		cfg := DefaultDesignBConfig()
		cfg.Ways = []int{1, 8, 32}[int(waysSel)%3]
		d := NewDesignB(cfg)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 2000; i++ {
			d.Train(prefetch.Access{
				PC:   uint64(0x400000 + rng.Intn(8)*4),
				Addr: mem.Addr(rng.Int63n(1 << 28)),
			})
			for _, r := range d.Issue(8) {
				if r.Addr != r.Addr.Line() {
					return false
				}
			}
			if rng.Intn(4) == 0 {
				d.OnEvict(mem.Addr(rng.Int63n(1 << 28)).Line())
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestPMPNeverPrefetchesTriggerLine asserts the hard rule from §IV-B
// across schemes: the prediction made for a fresh region's trigger
// access never targets the trigger line itself. Each probe uses a
// never-before-seen region and drains the full prediction immediately,
// so the issued requests belong to exactly that prediction.
func TestPMPNeverPrefetchesTriggerLine(t *testing.T) {
	for _, scheme := range []Scheme{AFE, ANE, ARE} {
		cfg := DefaultConfig()
		cfg.Scheme = scheme
		cfg.ANEL1 = 2
		cfg.ANEL2 = 1 // make ANE predict readily at short training
		p := New(cfg)
		rng := rand.New(rand.NewSource(int64(scheme) + 5))

		// Train on dense region patterns so predictions fire.
		for r := uint64(0); r < 30; r++ {
			for off := 0; off < 8; off++ {
				p.Train(prefetch.Access{PC: 0x400, Addr: mem.Addr(r*mem.PageBytes + uint64(off*mem.LineBytes))})
				p.Issue(64)
			}
			p.OnEvict(mem.Addr(r * mem.PageBytes))
		}

		for i := 0; i < 200; i++ {
			region := uint64(1_000_000 + i) // fresh region every probe
			trig := rng.Intn(64)
			p.Train(prefetch.Access{PC: 0x400, Addr: mem.Addr(region*mem.PageBytes + uint64(trig*mem.LineBytes))})
			for _, r := range p.Issue(64) {
				if r.Addr.PageID() == region && r.Addr.PageOffset() == trig {
					t.Fatalf("scheme %v prefetched the trigger line (region %d offset %d)",
						scheme, region, trig)
				}
			}
		}
	}
}
