package core_test

import (
	"fmt"

	"pmp/internal/core"
	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// Example demonstrates the full PMP flow: train on region patterns,
// then predict for a region it has never seen.
func Example() {
	pmp := core.New(core.DefaultConfig())
	addr := func(region uint64, offset int) mem.Addr {
		return mem.Addr(region*mem.PageBytes + uint64(offset)*mem.LineBytes)
	}

	// A loop touches offsets 0..3 of many 4KB regions.
	for region := uint64(0); region < 24; region++ {
		for off := 0; off < 4; off++ {
			pmp.Train(prefetch.Access{PC: 0x400, Addr: addr(region, off)})
			pmp.Issue(64)
		}
		pmp.OnEvict(addr(region, 0)) // eviction closes the region pattern
	}

	// A single trigger access to a fresh region predicts the rest.
	pmp.Train(prefetch.Access{PC: 0x400, Addr: addr(999, 0)})
	for _, r := range pmp.Issue(64) {
		fmt.Printf("prefetch offset %d -> %v\n", r.Addr.PageOffset(), r.Level)
	}
	// Output:
	// prefetch offset 1 -> L2C
	// prefetch offset 2 -> L1D
	// prefetch offset 3 -> L1D
}

// ExampleConfig_Storage reproduces the paper's Table III accounting.
func ExampleConfig_Storage() {
	s := core.DefaultConfig().Storage()
	fmt.Printf("filter table        %4d B\n", s.FilterTableBits/8)
	fmt.Printf("accumulation table  %4d B\n", s.AccumTableBits/8)
	fmt.Printf("offset pattern tbl  %4d B\n", s.OPTBits/8)
	fmt.Printf("pc pattern table    %4d B\n", s.PPTBits/8)
	fmt.Printf("prefetch buffer     %4d B\n", s.PrefetchBufBits/8)
	fmt.Printf("total               %.1f KB\n", s.TotalBytes()/1024)
	// Output:
	// filter table         376 B
	// accumulation table   456 B
	// offset pattern tbl  2560 B
	// pc pattern table     640 B
	// prefetch buffer      332 B
	// total               4.3 KB
}
