package core

import (
	"testing"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
)

// train drives one access through the prefetcher.
func train(p prefetch.Prefetcher, pc uint64, addr mem.Addr) {
	p.Train(prefetch.Access{PC: pc, Addr: addr})
}

func regionAddr(region uint64, offset int) mem.Addr {
	return mem.Addr(region*mem.PageBytes + uint64(offset)*mem.LineBytes)
}

// teach trains the prefetcher on `rounds` fresh regions, each accessed
// at the given offsets (first offset is the trigger), closing each
// region pattern by eviction. Regions start at startRegion.
func teach(p prefetch.Prefetcher, pc uint64, startRegion uint64, rounds int, offsets []int) {
	for r := 0; r < rounds; r++ {
		region := startRegion + uint64(r)
		for _, o := range offsets {
			train(p, pc, regionAddr(region, o))
			p.Issue(64) // drain so earlier predictions don't accumulate
		}
		p.OnEvict(regionAddr(region, offsets[0]))
	}
}

func TestPMPLearnsSequentialPattern(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{0, 1, 2, 3})

	// A trigger access at offset 0 of a fresh region predicts the
	// learned pattern.
	train(p, 0x400, regionAddr(1000, 0))
	reqs := p.Issue(64)
	if len(reqs) != 3 {
		t.Fatalf("issued %d requests, want 3: %v", len(reqs), reqs)
	}
	// Offset 1 shares the PPT's coarse group 0 with the trigger, whose
	// element is the (never-extracted) time counter, so arbitration rule
	// 3 downgrades it to L2C; offsets 2 and 3 get full PPT agreement.
	want := map[mem.Addr]prefetch.Level{
		regionAddr(1000, 1): prefetch.LevelL2,
		regionAddr(1000, 2): prefetch.LevelL1,
		regionAddr(1000, 3): prefetch.LevelL1,
	}
	for _, r := range reqs {
		wl, ok := want[r.Addr]
		if !ok {
			t.Errorf("unexpected target %#x", uint64(r.Addr))
			continue
		}
		if r.Level != wl {
			t.Errorf("target %#x level = %v, want %v", uint64(r.Addr), r.Level, wl)
		}
	}
}

func TestPMPTriggerNeverPrefetched(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{5, 6, 7})
	train(p, 0x400, regionAddr(1000, 5))
	for _, r := range p.Issue(64) {
		if r.Addr == regionAddr(1000, 5) {
			t.Fatal("trigger line was prefetched")
		}
	}
}

func TestPMPBackwardPatternWraps(t *testing.T) {
	// MCF-style: enter at the top offset, walk down. Anchored offsets
	// wrap around the region.
	p := New(DefaultConfig())
	teach(p, 0x600, 0, 20, []int{63, 62, 61})
	train(p, 0x600, regionAddr(500, 63))
	reqs := p.Issue(64)
	if len(reqs) != 2 {
		t.Fatalf("issued %d requests, want 2: %v", len(reqs), reqs)
	}
	want := map[mem.Addr]bool{
		regionAddr(500, 62): true,
		regionAddr(500, 61): true,
	}
	for _, r := range reqs {
		if !want[r.Addr] {
			t.Errorf("unexpected target %#x (offsets should stay in region)", uint64(r.Addr))
		}
	}
}

func TestPMPPatternsShareAcrossRegions(t *testing.T) {
	// Patterns learned in one set of regions prefetch in never-seen
	// regions — the compulsory-miss coverage the paper highlights.
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{0, 1})
	train(p, 0x400, regionAddr(1<<30, 0))
	if reqs := p.Issue(64); len(reqs) == 0 {
		t.Error("no prefetch in a fresh region despite trained pattern")
	}
}

func TestPMPArbitrationDowngradesWithoutPPT(t *testing.T) {
	// Train the OPT strongly via one PC; then trigger with a PC whose
	// PPT entry is empty: rule 3 downgrades L1 -> L2.
	cfg := DefaultConfig()
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1})

	// Find a PC that hashes to a different PPT entry than 0x400.
	trainedIdx := mem.HashPC(0x400, cfg.PCBits)
	otherPC := uint64(0x404)
	for mem.HashPC(otherPC, cfg.PCBits) == trainedIdx {
		otherPC += 4
	}
	train(p, otherPC, regionAddr(2000, 0))
	reqs := p.Issue(64)
	if len(reqs) == 0 {
		t.Fatal("OPT prediction should survive PPT silence")
	}
	for _, r := range reqs {
		if r.Level != prefetch.LevelL2 {
			t.Errorf("level = %v, want L2C (downgraded from L1)", r.Level)
		}
	}
}

func TestPMPArbitrationRule2(t *testing.T) {
	// An offset at L2 confidence in the OPT with PPT agreement lands in
	// L2C. Teach offset 3 (outside the trigger's coarse group) in 1/4 of
	// patterns: freq 0.25 -> L2 in both tables -> rule 2 keeps L2C.
	p := New(DefaultConfig())
	pc := uint64(0x400)
	for r := 0; r < 40; r++ {
		region := uint64(r)
		train(p, pc, regionAddr(region, 0))
		if r%4 == 0 {
			train(p, pc, regionAddr(region, 3))
		}
		// Always include offset 32 so patterns have >= 2 accesses and
		// complete.
		train(p, pc, regionAddr(region, 32))
		p.Issue(64)
		p.OnEvict(regionAddr(region, 0))
	}
	train(p, pc, regionAddr(3000, 0))
	reqs := p.Issue(64)
	var got prefetch.Level
	for _, r := range reqs {
		if r.Addr == regionAddr(3000, 3) {
			got = r.Level
		}
	}
	if got != prefetch.LevelL2 {
		t.Errorf("quarter-frequency offset level = %v, want L2C", got)
	}
}

func TestPMPOPTOnlySkipsArbitration(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Feature = OPTOnly
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1})
	train(p, 0x999, regionAddr(2000, 0)) // unknown PC is irrelevant here
	reqs := p.Issue(64)
	if len(reqs) == 0 {
		t.Fatal("OPT-only should predict")
	}
	if reqs[0].Level != prefetch.LevelL1 {
		t.Errorf("OPT-only level = %v, want L1D (no downgrade without arbitration)", reqs[0].Level)
	}
}

func TestPMPPPTOnlyPredictsByPC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Feature = PPTOnly
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1})
	train(p, 0x400, regionAddr(2000, 0))
	if reqs := p.Issue(64); len(reqs) == 0 {
		t.Error("PPT-only should predict for the trained PC")
	}
}

func TestPMPCombinedFeature(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Feature = Combined
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1})
	train(p, 0x400, regionAddr(2000, 0))
	if reqs := p.Issue(64); len(reqs) == 0 {
		t.Error("combined feature should predict for trained (PC, offset)")
	}
	// A different PC maps to a different combined entry: silent.
	trainedIdx := mem.HashPC(0x400, cfg.PCBits)
	otherPC := uint64(0x404)
	for mem.HashPC(otherPC, cfg.PCBits) == trainedIdx {
		otherPC += 4
	}
	train(p, otherPC, regionAddr(3000, 0))
	if reqs := p.Issue(64); len(reqs) != 0 {
		t.Errorf("combined feature predicted %d targets for untrained PC", len(reqs))
	}
}

func TestPMPLimitCapsLowLevelPrefetches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LowLevelDegree = 1
	p := New(cfg)
	// Teach a pattern whose offsets sit at L2 confidence (~25%), with a
	// constant spine so patterns complete.
	pc := uint64(0x400)
	for r := 0; r < 40; r++ {
		region := uint64(r)
		train(p, pc, regionAddr(region, 0))
		train(p, pc, regionAddr(region, 32))
		o := 1 + r%4*8 // rotates among 1, 9, 17, 25 -> each at freq 1/4
		train(p, pc, regionAddr(region, o))
		p.Issue(64)
		p.OnEvict(regionAddr(region, 0))
	}
	train(p, pc, regionAddr(4000, 0))
	lowLevel := 0
	for _, r := range p.Issue(64) {
		if r.Level != prefetch.LevelL1 {
			lowLevel++
		}
	}
	if lowLevel > 1 {
		t.Errorf("PMP-Limit issued %d low-level prefetches, want <= 1", lowLevel)
	}
}

func TestPMPIssueRespectsMax(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{0, 1, 2, 3, 4, 5, 6, 7})
	train(p, 0x400, regionAddr(1000, 0))
	first := p.Issue(3)
	if len(first) > 3 {
		t.Fatalf("Issue(3) returned %d", len(first))
	}
	rest := p.Issue(64)
	seen := map[mem.Addr]bool{}
	for _, r := range append(first, rest...) {
		if seen[r.Addr] {
			t.Errorf("duplicate prefetch %#x", uint64(r.Addr))
		}
		seen[r.Addr] = true
	}
	if len(first)+len(rest) != 7 {
		t.Errorf("total issued = %d, want 7", len(first)+len(rest))
	}
}

func TestPMPResumeOnRegionReaccess(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{0, 1, 2, 3})
	// Trigger two regions; drain nothing yet.
	train(p, 0x400, regionAddr(1000, 0))
	train(p, 0x400, regionAddr(2000, 0))
	// Touching region 1000 resumes its draining first.
	train(p, 0x400, regionAddr(1000, 1))
	reqs := p.Issue(1)
	if len(reqs) != 1 {
		t.Fatal("expected a request")
	}
	if mem.NewRegion(4096).ID(reqs[0].Addr) != 1000 {
		t.Errorf("drained region %d first, want the re-accessed 1000",
			mem.NewRegion(4096).ID(reqs[0].Addr))
	}
}

func TestPMPUntrainedIsSilent(t *testing.T) {
	p := New(DefaultConfig())
	train(p, 0x400, regionAddr(1, 0))
	if reqs := p.Issue(64); len(reqs) != 0 {
		t.Errorf("untrained PMP issued %v", reqs)
	}
}

func TestPMPStatsProgress(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 10, []int{0, 1})
	s := p.Stats()
	if s.PatternsMerged != 10 {
		t.Errorf("merged = %d, want 10", s.PatternsMerged)
	}
	if s.Predictions != 10 {
		t.Errorf("predictions = %d, want 10", s.Predictions)
	}
}

func TestPMPHalvingOccurs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OPTCounterBits = 2 // time counter saturates at 3
	p := New(cfg)
	teach(p, 0x400, 0, 12, []int{0, 1})
	if p.Stats().Halvings == 0 {
		t.Error("2-bit counters should have halved during 12 merges")
	}
}

func TestPMPName(t *testing.T) {
	if New(DefaultConfig()).Name() != "pmp" {
		t.Error("wrong name")
	}
}

func TestPMPStorageBitsMatchesConfig(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg)
	if p.StorageBits() != cfg.Storage().TotalBits {
		t.Error("StorageBits disagrees with Config.Storage")
	}
}

func TestPMPSmallRegion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RegionBytes = 1024
	cfg.TriggerBits = 4
	p := New(cfg)
	// 16-line regions; teach offsets 0..2.
	for r := 0; r < 20; r++ {
		base := mem.Addr(uint64(r) * 1024)
		for o := 0; o < 3; o++ {
			train(p, 0x400, base+mem.Addr(o*64))
		}
		p.Issue(64)
		p.OnEvict(base)
	}
	train(p, 0x400, mem.Addr(999*1024))
	reqs := p.Issue(64)
	if len(reqs) != 2 {
		t.Fatalf("issued %d, want 2", len(reqs))
	}
	for _, r := range reqs {
		if r.Addr < 999*1024 || r.Addr >= 1000*1024 {
			t.Errorf("target %#x outside the 1KB region", uint64(r.Addr))
		}
	}
}

func TestPMPWideTriggerBits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TriggerBits = 8 // sub-line feature bits
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1})
	train(p, 0x400, regionAddr(2000, 0))
	if reqs := p.Issue(64); len(reqs) == 0 {
		t.Error("wide trigger bits should still predict (same sub-line offsets)")
	}
}

func TestPMPOnFillIgnored(t *testing.T) {
	p := New(DefaultConfig())
	p.OnFill(0, prefetch.LevelL1, true) // must not panic or change state
	if p.Stats() != (Stats{}) {
		t.Error("OnFill should not mutate stats")
	}
}

func TestPMPNoHalvingFreezes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OPTCounterBits = 2 // saturates quickly
	cfg.NoHalving = true
	p := New(cfg)
	teach(p, 0x400, 0, 12, []int{0, 1})
	if p.Stats().Halvings != 0 {
		t.Error("NoHalving config should never halve")
	}
	// Frozen counters still predict.
	train(p, 0x400, regionAddr(900, 0))
	if len(p.Issue(64)) == 0 {
		t.Error("frozen vectors should still produce predictions")
	}
}

func TestPMPNoResumeStopsDraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoResume = true
	p := New(cfg)
	teach(p, 0x400, 0, 20, []int{0, 1, 2, 3})
	// Two triggered regions; without resume, draining order follows
	// insertion (MRU at trigger time), untouched by re-accesses.
	train(p, 0x400, regionAddr(1000, 0))
	train(p, 0x400, regionAddr(2000, 0))
	train(p, 0x400, regionAddr(1000, 1)) // would resume 1000 if enabled
	reqs := p.Issue(1)
	if len(reqs) != 1 {
		t.Fatal("expected one request")
	}
	if mem.NewRegion(4096).ID(reqs[0].Addr) != 2000 {
		t.Errorf("NoResume should keep draining the last trigger (2000), got region %d",
			mem.NewRegion(4096).ID(reqs[0].Addr))
	}
}

func TestPMPCrossRegionProjectsForward(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CrossRegion = true
	p := New(cfg)
	// Teach a forward stream entering regions at offset 62: the pattern
	// covers offsets 62, 63 and (wrapping in anchored space) 0, 1 of the
	// next region's worth of lines.
	teach(p, 0x400, 0, 20, []int{62, 63, 0, 1})
	train(p, 0x400, regionAddr(1000, 62))
	reqs := p.Issue(64)
	if len(reqs) == 0 {
		t.Fatal("no prefetches")
	}
	sawNext := false
	for _, r := range reqs {
		region := mem.NewRegion(4096).ID(r.Addr)
		switch region {
		case 1000: // offset 63: in-region target
		case 1001: // projected wrap targets
			sawNext = true
		default:
			t.Errorf("target in unexpected region %d", region)
		}
	}
	if !sawNext {
		t.Error("cross-region mode should project wrapped targets into region+1")
	}
}

func TestPMPDefaultWrapsWithinRegion(t *testing.T) {
	p := New(DefaultConfig())
	teach(p, 0x400, 0, 20, []int{62, 63, 0, 1})
	train(p, 0x400, regionAddr(1000, 62))
	for _, r := range p.Issue(64) {
		if mem.NewRegion(4096).ID(r.Addr) != 1000 {
			t.Fatalf("default PMP must not cross regions, target %#x", uint64(r.Addr))
		}
	}
}
