package core

import (
	"fmt"

	"pmp/internal/mem"
	"pmp/internal/prefetch"
	"pmp/internal/sms"
)

// DesignB is the alternative design the paper compares against in
// §V-E1: instead of merging, only *identical* patterns are coalesced —
// each stored pattern is a bit vector with a repetition counter, kept in
// a set-associative cache indexed by trigger offset. On a trigger
// access, the matching set is searched for the pattern with the highest
// counter; if that counter clears the ANE-style threshold, all its
// valid offsets are replayed as prefetch targets.
type DesignB struct {
	cfg    DesignBConfig
	name   string // computed once at construction; Name() must not format per call
	region mem.Region
	fw     *sms.Framework
	pb     *prefetchBuffer
	sets   [][]designBEntry
	stamp  uint64
	final  []prefetch.Level
}

// DesignBConfig sizes Design B.
type DesignBConfig struct {
	RegionBytes    int
	Ways           int    // associativity of the pattern cache (Table VIII: 8..512)
	CounterBits    int    // repetition counter width
	L1Threshold    uint32 // counter needed to replay to L1D
	L2Threshold    uint32 // counter needed to replay to L2C
	PBEntries      int
	FTSets, FTWays int
	ATSets, ATWays int
}

// DefaultDesignBConfig mirrors PMP's capture geometry with an 8-way
// pattern cache.
func DefaultDesignBConfig() DesignBConfig {
	return DesignBConfig{
		RegionBytes: mem.DefaultRegion,
		Ways:        8,
		CounterBits: 5,
		L1Threshold: 16,
		L2Threshold: 5,
		PBEntries:   16,
		FTSets:      8, FTWays: 8,
		ATSets: 2, ATWays: 16,
	}
}

// Validate reports a descriptive error for malformed configurations.
func (c DesignBConfig) Validate() error {
	if c.Ways < 1 {
		return fmt.Errorf("designb: ways must be >= 1, got %d", c.Ways)
	}
	if c.RegionBytes < 2*mem.LineBytes || c.RegionBytes&(c.RegionBytes-1) != 0 {
		return fmt.Errorf("designb: bad region size %d", c.RegionBytes)
	}
	if c.L2Threshold > c.L1Threshold {
		return fmt.Errorf("designb: L2 threshold above L1 threshold")
	}
	return nil
}

type designBEntry struct {
	valid   bool
	pattern mem.BitVector // anchored
	count   uint32
	lru     uint64
}

// NewDesignB constructs a Design B prefetcher; it panics on invalid
// configuration.
func NewDesignB(cfg DesignBConfig) *DesignB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	region := mem.NewRegion(cfg.RegionBytes)
	n := region.Lines()
	sets := make([][]designBEntry, n) // one set per trigger offset
	for i := range sets {
		sets[i] = make([]designBEntry, cfg.Ways)
	}
	return &DesignB{
		cfg:    cfg,
		name:   fmt.Sprintf("designb-%dw", cfg.Ways),
		region: region,
		fw: sms.New(sms.Config{
			Region: region,
			FTSets: cfg.FTSets, FTWays: cfg.FTWays,
			ATSets: cfg.ATSets, ATWays: cfg.ATWays,
		}),
		pb:    newPrefetchBuffer(cfg.PBEntries, region),
		sets:  sets,
		final: make([]prefetch.Level, n),
	}
}

// Name implements prefetch.Prefetcher.
func (d *DesignB) Name() string { return d.name }

// Train implements prefetch.Prefetcher.
func (d *DesignB) Train(a prefetch.Access) {
	trig, isTrigger, closed := d.fw.Observe(a.PC, a.Addr)
	for i := range closed {
		d.insert(closed[i])
	}
	if isTrigger {
		d.predict(trig)
		return
	}
	d.pb.Touch(d.region.ID(a.Addr))
}

// OnEvict implements prefetch.Prefetcher.
func (d *DesignB) OnEvict(line mem.Addr) {
	if pat, ok := d.fw.OnEvict(line); ok {
		d.insert(pat)
	}
}

// OnFill implements prefetch.Prefetcher.
func (d *DesignB) OnFill(mem.Addr, prefetch.Level, bool) {}

func (d *DesignB) insert(pat sms.Pattern) {
	d.stamp++
	anchored := pat.Anchored()
	set := d.sets[pat.Trigger]
	maxCount := uint32(1)<<uint(d.cfg.CounterBits) - 1
	victim := 0
	oldest := ^uint64(0)
	for i := range set {
		e := &set[i]
		if e.valid && e.pattern == anchored {
			if e.count < maxCount {
				e.count++
			}
			e.lru = d.stamp
			return
		}
		if !e.valid {
			victim = i
			oldest = 0
			continue
		}
		if e.lru < oldest {
			oldest, victim = e.lru, i
		}
	}
	set[victim] = designBEntry{valid: true, pattern: anchored, count: 1, lru: d.stamp}
}

func (d *DesignB) predict(trig sms.Trigger) {
	set := d.sets[trig.Offset]
	var best *designBEntry
	for i := range set {
		e := &set[i]
		if e.valid && (best == nil || e.count > best.count) {
			best = e
		}
	}
	if best == nil {
		return
	}
	var level prefetch.Level
	switch {
	case best.count >= d.cfg.L1Threshold:
		level = prefetch.LevelL1
	case best.count >= d.cfg.L2Threshold:
		level = prefetch.LevelL2
	default:
		return
	}
	d.stamp++
	best.lru = d.stamp
	for k := range d.final {
		d.final[k] = prefetch.LevelNone
		if k > 0 && best.pattern.Test(k) {
			d.final[k] = level
		}
	}
	d.pb.Insert(trig.RegionID, trig.Offset, d.final)
}

// Issue implements prefetch.Prefetcher.
func (d *DesignB) Issue(max int) []prefetch.Request { return d.pb.Drain(max) }

// IssueInto implements prefetch.BulkIssuer, the allocation-free drain.
//
//pmp:hotpath
func (d *DesignB) IssueInto(dst []prefetch.Request, max int) []prefetch.Request {
	return d.pb.DrainInto(dst, max)
}

// Requeue implements prefetch.Requeuer.
func (d *DesignB) Requeue(r prefetch.Request) {
	d.pb.Requeue(d.region.ID(r.Addr), d.region.Offset(r.Addr))
}

// StorageBits implements prefetch.Prefetcher: the pattern cache (bit
// vector + counter + LRU per entry) plus the capture framework and
// prefetch buffer.
func (d *DesignB) StorageBits() int {
	n := d.region.Lines()
	entry := n + d.cfg.CounterBits + log2(d.cfg.Ways)
	pb := d.cfg.PBEntries * ((48 - d.region.Shift()) + 2*(n-1) + log2(d.cfg.PBEntries))
	return n*d.cfg.Ways*entry + d.fw.StorageBits() + pb
}
