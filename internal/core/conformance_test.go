package core_test

import (
	"testing"

	"pmp/internal/core"
	"pmp/internal/prefetch"
	"pmp/internal/prefetch/check/conformance"
)

// TestConformance registers PMP (and its limit-study variant) with the
// shared runtime contract harness.
func TestConformance(t *testing.T) {
	t.Run("pmp", func(t *testing.T) {
		conformance.Run(t, func() prefetch.Prefetcher { return core.New(core.DefaultConfig()) })
	})
	t.Run("pmp-limit", func(t *testing.T) {
		cfg := core.DefaultConfig()
		cfg.LowLevelDegree = 1
		conformance.Run(t, func() prefetch.Prefetcher { return core.New(cfg) })
	})
	t.Run("designb", func(t *testing.T) {
		conformance.Run(t, func() prefetch.Prefetcher { return core.NewDesignB(core.DefaultDesignBConfig()) })
	})
}
