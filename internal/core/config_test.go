package core

import (
	"testing"

	"pmp/internal/mem"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.RegionBytes = 100 },
		func(c *Config) { c.RegionBytes = 64 },
		func(c *Config) { c.RegionBytes = 8192 },
		func(c *Config) { c.TriggerBits = 5 }, // below log2(64)
		func(c *Config) { c.TriggerBits = 13 },
		func(c *Config) { c.PCBits = 0 },
		func(c *Config) { c.OPTCounterBits = 0 },
		func(c *Config) { c.PPTCounterBits = 17 },
		func(c *Config) { c.MonitoringRange = 3 },
		func(c *Config) { c.MonitoringRange = 0 },
		func(c *Config) { c.TL1D = 0.1; c.TL2C = 0.5 },
		func(c *Config) { c.TL2C = 0 },
		func(c *Config) { c.TL1D = 1.5 },
		func(c *Config) { c.PBEntries = 0 },
		func(c *Config) { c.Scheme = Scheme(9) },
		func(c *Config) { c.Feature = FeatureMode(9) },
		func(c *Config) { c.LowLevelDegree = -1 },
	}
	for i, m := range mutate {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid: %+v", i, c)
		}
	}
}

func TestPatternLengths(t *testing.T) {
	c := DefaultConfig()
	if c.PatternLen() != 64 || c.PPTLen() != 32 {
		t.Errorf("lengths = %d/%d, want 64/32", c.PatternLen(), c.PPTLen())
	}
	c.RegionBytes = 2048
	c.TriggerBits = 5
	if c.PatternLen() != 32 || c.PPTLen() != 16 {
		t.Errorf("2KB lengths = %d/%d, want 32/16", c.PatternLen(), c.PPTLen())
	}
}

// Paper Table III: the default configuration totals ~4.3KB with the
// exact per-structure byte counts listed.
func TestStorageMatchesTableIII(t *testing.T) {
	s := DefaultConfig().Storage()
	checks := []struct {
		name string
		bits int
		want int // bytes
	}{
		{"filter table", s.FilterTableBits, 376},
		{"accumulation table", s.AccumTableBits, 456},
		{"OPT", s.OPTBits, 2560},
		{"PPT", s.PPTBits, 640},
		{"prefetch buffer", s.PrefetchBufBits, 332},
	}
	for _, c := range checks {
		if got := c.bits / 8; got != c.want {
			t.Errorf("%s = %d bytes, want %d", c.name, got, c.want)
		}
	}
	if kb := s.TotalBytes() / 1024; kb < 4.2 || kb > 4.4 {
		t.Errorf("total = %.2f KB, want ~4.3", kb)
	}
}

// Paper Table IX: overheads for PMP-64/32/16 are ~4.3/2.5/1.6 KB.
func TestStorageTableIX(t *testing.T) {
	// The paper keeps the 6-bit trigger feature for the short-pattern
	// variants (Table X treats the width as an independent knob), which
	// is what reproduces Table IX's 2.5KB / 1.6KB totals.
	cases := []struct {
		region int
		minKB  float64
		maxKB  float64
	}{
		{4096, 4.2, 4.4},
		{2048, 2.4, 2.6},
		{1024, 1.5, 1.7},
	}
	for _, tc := range cases {
		c := DefaultConfig()
		c.RegionBytes = tc.region
		if err := c.Validate(); err != nil {
			t.Fatalf("region %d: %v", tc.region, err)
		}
		kb := c.Storage().TotalBytes() / 1024
		if kb < tc.minKB || kb > tc.maxKB {
			t.Errorf("region %d: %.2f KB, want in [%.1f, %.1f]", tc.region, kb, tc.minKB, tc.maxKB)
		}
	}
}

// Paper §V-E4: 12-bit trigger offsets cost ~64x the default OPT.
func TestStorageGrowsExponentiallyWithTriggerBits(t *testing.T) {
	base := DefaultConfig()
	wide := DefaultConfig()
	wide.TriggerBits = 12
	ratio := float64(wide.Storage().OPTBits) / float64(base.Storage().OPTBits)
	if ratio != 64 {
		t.Errorf("OPT growth ratio = %v, want 64", ratio)
	}
}

// Paper §V-E3: the combined-feature table has 2^11 = 2048 entries vs 96
// for the dual structure.
func TestStorageCombinedFeature(t *testing.T) {
	c := DefaultConfig()
	c.Feature = Combined
	s := c.Storage()
	if s.PPTBits != 0 {
		t.Error("combined mode should have no PPT")
	}
	wantEntries := 2048
	if got := s.OPTBits / (64 * 5); got != wantEntries {
		t.Errorf("combined table entries = %d, want %d", got, wantEntries)
	}
}

func TestSchemeAndFeatureStrings(t *testing.T) {
	if AFE.String() != "AFE" || ANE.String() != "ANE" || ARE.String() != "ARE" {
		t.Error("scheme strings wrong")
	}
	if Scheme(9).String() != "invalid" {
		t.Error("invalid scheme string wrong")
	}
	for m, want := range map[FeatureMode]string{
		DualTables: "dual", OPTOnly: "opt-only", PPTOnly: "ppt-only",
		Combined: "combined", FeatureMode(9): "invalid",
	} {
		if m.String() != want {
			t.Errorf("FeatureMode(%d).String() = %q, want %q", m, m.String(), want)
		}
	}
}

func TestStorageSmallerRegionsUseShorterTags(t *testing.T) {
	big := DefaultConfig()
	small := DefaultConfig()
	small.RegionBytes = 1024
	small.TriggerBits = 4
	if small.Storage().FilterTableBits >= big.Storage().FilterTableBits {
		// 1KB regions: more tag bits per entry (+2) but that's the only
		// growth; the FT entry also loses 2 offset bits, so equal.
		// Just sanity-check it's in a plausible band.
		diff := small.Storage().FilterTableBits - big.Storage().FilterTableBits
		if diff > 64*4 {
			t.Errorf("FT grew too much for small regions: %d bits", diff)
		}
	}
	_ = mem.LineBytes
}
