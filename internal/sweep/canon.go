package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// ReadRecords loads a results store file read-only and resolves it the
// way Open does: last record per ID wins, malformed lines (a truncated
// final write) are skipped. It returns the resolved records and the
// number of lines skipped.
func ReadRecords(path string) (map[string]Record, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("sweep: read store: %w", err)
	}
	defer f.Close()
	byID := map[string]Record{}
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.ID == "" {
			skipped++
			continue
		}
		byID[rec.ID] = rec
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("sweep: read store: %w", err)
	}
	return byID, skipped, nil
}

// WriteCanonical writes the canonical resolution of a results store to
// w: the last record per ID, sorted by ID, one JSON line each, with
// the run-varying fields (attempts, wall time) zeroed. Two stores
// that resolved the same job set to the same results — e.g. a serial
// run and an N-worker distributed run, even one that lost a worker
// mid-sweep — produce byte-identical canonical dumps; the
// distributed-smoke CI gate diffs exactly this.
func WriteCanonical(w io.Writer, path string) error {
	byID, _, err := ReadRecords(path)
	if err != nil {
		return err
	}
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bw := bufio.NewWriter(w)
	for _, id := range ids {
		rec := byID[id]
		rec.Attempts = 0
		rec.WallNS = 0
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("sweep: canonical marshal: %w", err)
		}
		if _, err := bw.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return bw.Flush()
}
