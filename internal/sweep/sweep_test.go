package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmp/internal/sim"
)

// testJob builds a trivial job whose Result encodes its identity, so
// tests can verify which job produced which record.
func testJob(i int, body func(context.Context) sim.Result) Job {
	id := fmt.Sprintf("job-%d", i)
	if body == nil {
		body = func(context.Context) sim.Result {
			return sim.Result{Trace: id, Instructions: uint64(i), Cycles: 1}
		}
	}
	return Job{ID: id, Label: id, Prefetcher: "test", Trace: id, Run: body}
}

func TestJobIDDeterministicAndDistinct(t *testing.T) {
	a := JobID("pmp", "spec06.stream-0", 60_000, "cfg-a")
	b := JobID("pmp", "spec06.stream-0", 60_000, "cfg-a")
	if a != b {
		t.Errorf("same coordinates gave different IDs: %s vs %s", a, b)
	}
	for _, other := range []string{
		JobID("bingo", "spec06.stream-0", 60_000, "cfg-a"),
		JobID("pmp", "spec06.stream-1", 60_000, "cfg-a"),
		JobID("pmp", "spec06.stream-0", 60_001, "cfg-a"),
		JobID("pmp", "spec06.stream-0", 60_000, "cfg-b"),
	} {
		if other == a {
			t.Errorf("different coordinates collided on %s", a)
		}
	}
}

func TestSubmitDeduplicatesByID(t *testing.T) {
	var runs atomic.Int32
	s := New(context.Background(), Options{Workers: 2})
	job := testJob(1, func(context.Context) sim.Result {
		runs.Add(1)
		return sim.Result{Cycles: 1}
	})
	t1 := s.Submit(job)
	t2 := s.Submit(job)
	if t1 != t2 {
		t.Error("same ID should return the same ticket")
	}
	if _, err := t1.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	m := s.Close()
	if got := runs.Load(); got != 1 {
		t.Errorf("job ran %d times, want 1", got)
	}
	if m.Submitted != 1 || m.Deduped != 1 {
		t.Errorf("manifest submitted/deduped = %d/%d, want 1/1", m.Submitted, m.Deduped)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 2
	var cur, max atomic.Int32
	var mu sync.Mutex
	s := New(context.Background(), Options{Workers: workers})
	var tickets []*Ticket
	for i := 0; i < 10; i++ {
		tickets = append(tickets, s.Submit(testJob(i, func(context.Context) sim.Result {
			n := cur.Add(1)
			mu.Lock()
			if n > max.Load() {
				max.Store(n)
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			return sim.Result{Cycles: 1}
		})))
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	s.Close()
	if got := max.Load(); got > workers {
		t.Errorf("observed %d concurrent jobs, pool bound is %d", got, workers)
	}
}

func TestPanickingJobIsQuarantinedRestCompletes(t *testing.T) {
	s := New(context.Background(), Options{Workers: 2, MaxAttempts: 2})
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		j := testJob(i, nil)
		if i == 3 {
			j.Run = func(context.Context) sim.Result { panic("poisoned job") }
		}
		tickets = append(tickets, s.Submit(j))
	}
	for i, tk := range tickets {
		rec, err := tk.Wait()
		if err != nil {
			t.Fatalf("job %d: unexpected error %v", i, err)
		}
		if i == 3 {
			if rec.Status != StatusQuarantined {
				t.Errorf("poisoned job status = %q, want %q", rec.Status, StatusQuarantined)
			}
			if rec.Attempts != 2 {
				t.Errorf("poisoned job attempts = %d, want 2 (bounded retry)", rec.Attempts)
			}
			if rec.Err == "" {
				t.Error("quarantined record should carry the panic message")
			}
			continue
		}
		if rec.Status != StatusOK {
			t.Errorf("job %d status = %q, want ok", i, rec.Status)
		}
		if rec.Result.Instructions != uint64(i) {
			t.Errorf("job %d result mismatch: %d", i, rec.Result.Instructions)
		}
	}
	m := s.Close()
	if m.Quarantined != 1 || m.Completed != 7 {
		t.Errorf("manifest quarantined/completed = %d/%d, want 1/7", m.Quarantined, m.Completed)
	}
	if len(m.QuarantinedJobs) != 1 || m.QuarantinedJobs[0] != "job-3" {
		t.Errorf("manifest quarantined jobs = %v, want [job-3]", m.QuarantinedJobs)
	}
}

func TestTimedOutJobIsQuarantined(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s := New(context.Background(), Options{Workers: 1, MaxAttempts: 2, JobTimeout: 20 * time.Millisecond})
	slow := s.Submit(testJob(0, func(ctx context.Context) sim.Result {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return sim.Result{Cycles: 1}
	}))
	fast := s.Submit(testJob(1, nil))
	rec, err := slow.Wait()
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if rec.Status != StatusQuarantined {
		t.Errorf("timed-out job status = %q, want quarantined", rec.Status)
	}
	if rec.Attempts != 2 {
		t.Errorf("timed-out job attempts = %d, want 2", rec.Attempts)
	}
	if rec, err := fast.Wait(); err != nil || rec.Status != StatusOK {
		t.Errorf("job behind the stuck one should still complete: %v %q", err, rec.Status)
	}
	s.Close()
}

func TestCancelResolvesPendingTickets(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	s := New(ctx, Options{Workers: 1})
	running := make(chan struct{})
	var once sync.Once
	first := s.Submit(testJob(0, func(context.Context) sim.Result {
		once.Do(func() { close(running) })
		<-release
		return sim.Result{Cycles: 1}
	}))
	var rest []*Ticket
	for i := 1; i < 5; i++ {
		rest = append(rest, s.Submit(testJob(i, nil)))
	}
	<-running
	cancel()
	for i, tk := range rest {
		if _, err := tk.Wait(); err == nil {
			t.Errorf("queued job %d should resolve with a cancellation error", i+1)
		}
	}
	// The in-flight job is abandoned with a cancellation error too.
	if _, err := first.Wait(); err == nil {
		t.Error("in-flight job should resolve canceled")
	}
	close(release)
	m := s.Close()
	if m.Canceled == 0 {
		t.Errorf("manifest should count canceled jobs, got %+v", m)
	}
	// New submissions after cancellation resolve immediately.
	if _, err := s.Submit(testJob(99, nil)).Wait(); err == nil {
		t.Error("submission after cancel should resolve with an error")
	}
}

func TestStoreBackedSweepPersistsAndResumes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")

	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var runs atomic.Int32
	mk := func(i int) Job {
		return testJob(i, func(context.Context) sim.Result {
			runs.Add(1)
			return sim.Result{Trace: fmt.Sprintf("job-%d", i), Instructions: uint64(i), Cycles: 1}
		})
	}
	s := New(context.Background(), Options{Workers: 2, Store: st})
	var first []Record
	for i := 0; i < 5; i++ {
		rec, err := s.Submit(mk(i)).Wait()
		if err != nil {
			t.Fatal(err)
		}
		first = append(first, rec)
	}
	m := s.Close()
	if m.Completed != 5 || m.Cached != 0 {
		t.Fatalf("first run completed/cached = %d/%d, want 5/0", m.Completed, m.Cached)
	}

	// Resume: the same five jobs are served from the store; two new
	// ones execute.
	st2, err := OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Loaded() != 5 {
		t.Fatalf("resume loaded %d records, want 5", st2.Loaded())
	}
	runs.Store(0)
	s2 := New(context.Background(), Options{Workers: 2, Store: st2})
	for i := 0; i < 7; i++ {
		tk := s2.Submit(mk(i))
		rec, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if i < 5 {
			if !tk.Cached() {
				t.Errorf("job %d should be served from the store", i)
			}
			if !reflect.DeepEqual(rec.Result, first[i].Result) {
				t.Errorf("job %d cached result differs from original", i)
			}
		} else if tk.Cached() {
			t.Errorf("new job %d cannot be cached", i)
		}
	}
	m2 := s2.Close()
	if runs.Load() != 2 {
		t.Errorf("resume executed %d jobs, want 2", runs.Load())
	}
	if m2.Cached != 5 || m2.Completed != 2 {
		t.Errorf("resume manifest cached/completed = %d/%d, want 5/2", m2.Cached, m2.Completed)
	}

	// The store now holds all seven records.
	st3, err := OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Len() != 7 {
		t.Errorf("final store holds %d records, want 7", st3.Len())
	}
	st3.Close()
}

func TestQuarantinedRecordIsRetriedOnResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, _ := OpenStore(path, false)
	s := New(context.Background(), Options{Workers: 1, MaxAttempts: 1, Store: st})
	rec, err := s.Submit(testJob(0, func(context.Context) sim.Result { panic("flaky") })).Wait()
	if err != nil || rec.Status != StatusQuarantined {
		t.Fatalf("setup: %v %q", err, rec.Status)
	}
	s.Close()

	st2, _ := OpenStore(path, true)
	s2 := New(context.Background(), Options{Workers: 1, Store: st2})
	rec, err = s2.Submit(testJob(0, nil)).Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusOK {
		t.Errorf("quarantined job should be re-run on resume, got %q", rec.Status)
	}
	s2.Close()

	// Last record per ID wins: a fresh resume now sees the OK result.
	st3, _ := OpenStore(path, true)
	if rec, ok := st3.Lookup(JobID("", "", 0, "")); ok {
		t.Fatalf("unexpected record %+v", rec)
	}
	got, ok := st3.Lookup("job-0")
	if !ok || got.Status != StatusOK {
		t.Errorf("store should serve the OK record after retry, got %+v (ok=%v)", got, ok)
	}
	st3.Close()
}

func TestManifestWrittenNextToStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	st, _ := OpenStore(path, false)
	s := New(context.Background(), Options{Workers: 1, Store: st})
	s.Submit(testJob(0, nil)).Wait()
	m := s.Close()
	if m.Store != path {
		t.Errorf("manifest store = %q, want %q", m.Store, path)
	}
	want := filepath.Join(filepath.Dir(path), "run.manifest.json")
	if got := st.ManifestPath(); got != want {
		t.Errorf("manifest path = %q, want %q", got, want)
	}
	b, err := os.ReadFile(st.ManifestPath())
	if err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	var got Manifest
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if got.Completed != 1 || got.Workers != 1 {
		t.Errorf("manifest completed/workers = %d/%d, want 1/1", got.Completed, got.Workers)
	}
}
