package remote

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"pmp/internal/sweep"
)

// Client is the submitter side of the protocol, used by
// cmd/pmpexperiments -remote: submit job specs to a running
// coordinator, poll for their records. A Client is safe for
// concurrent use (every experiment goroutine submits through one).
type Client struct {
	base string
	hc   *http.Client
	// Poll is the results polling interval; <= 0 means 250ms.
	Poll time.Duration
	// MaxSilence bounds how long polling tolerates consecutive
	// transport errors (coordinator down) before giving up; <= 0
	// means 2 minutes.
	MaxSilence time.Duration
	// Token is the shared-secret bearer token sent with every request
	// when the coordinator requires auth (-auth-token). Empty sends no
	// Authorization header.
	Token string
}

// NewClient builds a client for the coordinator address (host:port or
// URL).
func NewClient(addr string) *Client {
	return &Client{
		base: normalizeBase(addr),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Submit sends a batch of job specs. Submission is idempotent: IDs
// the coordinator already knows are deduplicated, IDs resolved in its
// store are served from it.
func (c *Client) Submit(ctx context.Context, jobs []JobSpec) (SubmitResponse, error) {
	var resp SubmitResponse
	err := postJSON(ctx, c.hc, c.base+PathSubmit, c.Token, SubmitRequest{Jobs: jobs}, &resp)
	return resp, err
}

// Status fetches the coordinator's current counters.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	err := postJSON(ctx, c.hc, c.base+PathStatus, c.Token, struct{}{}, &st)
	return st, err
}

// Wait polls until every requested ID has resolved, returning the
// records by ID. Transport errors are retried until MaxSilence
// elapses without a successful poll.
func (c *Client) Wait(ctx context.Context, ids []string) (map[string]sweep.Record, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	maxSilence := c.MaxSilence
	if maxSilence <= 0 {
		maxSilence = 2 * time.Minute
	}
	out := make(map[string]sweep.Record, len(ids))
	remaining := make([]string, 0, len(ids))
	for _, id := range ids {
		remaining = append(remaining, id)
	}
	lastOK := time.Now()
	for len(remaining) > 0 {
		var resp ResultsResponse
		err := postJSON(ctx, c.hc, c.base+PathResults, c.Token, ResultsRequest{IDs: remaining}, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return out, ctx.Err()
			}
			if time.Since(lastOK) > maxSilence {
				return out, fmt.Errorf("remote: coordinator unreachable for %v: %w", maxSilence, err)
			}
			if err := sleepCtx(ctx, poll); err != nil {
				return out, err
			}
			continue
		}
		lastOK = time.Now()
		for _, rec := range resp.Records {
			out[rec.ID] = rec
		}
		if resp.Pending == 0 {
			break
		}
		next := remaining[:0]
		for _, id := range remaining {
			if _, ok := out[id]; !ok {
				next = append(next, id)
			}
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
		if err := sleepCtx(ctx, poll); err != nil {
			return out, err
		}
	}
	return out, nil
}
