package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// normalizeBase turns a user-supplied coordinator address into a base
// URL: a bare host:port gets an http:// scheme, trailing slashes are
// trimmed.
func normalizeBase(addr string) string {
	addr = strings.TrimRight(addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return addr
}

// postJSON sends one JSON request and decodes the JSON response,
// attaching the shared-secret bearer token when one is configured. A
// non-2xx status is returned as a *StatusError so callers can
// distinguish protocol rejections (re-register) from transport
// failures (retry).
func postJSON(ctx context.Context, hc *http.Client, url, token string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("remote: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("remote: build request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if token != "" {
		hreq.Header.Set("Authorization", "Bearer "+token)
	}
	hresp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4<<10))
		return &StatusError{Code: hresp.StatusCode, Msg: strings.TrimSpace(string(msg))}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("remote: decode response: %w", err)
	}
	return nil
}

// StatusError is a non-2xx coordinator response.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.Code, e.Msg)
}

// backoff yields capped exponential retry delays: base, 2*base, ...
// up to max.
func backoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(min(attempt, 16))
	if d > max || d <= 0 {
		return max
	}
	return d
}

// sleepCtx sleeps for d or until the context dies.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
