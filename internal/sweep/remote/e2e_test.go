package remote

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pmp/internal/sim"
	"pmp/internal/sweep"
)

// fakeBuild resolves every spec into a deterministic synthetic result
// derived from the spec itself — a stand-in for a real simulation that
// makes record-for-record comparison meaningful.
func fakeBuild(spec JobSpec) (sweep.Exec, error) {
	h := fnv.New64a()
	h.Write([]byte(spec.ID))
	seed := h.Sum64()
	return sweep.Exec{Run: func(ctx context.Context) sim.Result {
		return sim.Result{
			Trace:        spec.Trace,
			Prefetcher:   spec.Prefetcher,
			Instructions: seed % 1_000_000,
			Cycles:       seed % 500_000,
		}
	}}, nil
}

// serveCoordinator spins up a coordinator over a fresh store behind an
// httptest server.
func serveCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, err := sweep.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = store
	c := NewCoordinator(opts)
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		store.Close()
	})
	return c, srv, path
}

// e2eSpecs is the shared job set for the determinism tests.
func e2eSpecs(n int) []JobSpec {
	specs := make([]JobSpec, n)
	for i := range specs {
		specs[i] = JobSpec{
			ID:         fmt.Sprintf("e2e%04d", i),
			Label:      fmt.Sprintf("pf-%d/trace-%d", i%3, i),
			Prefetcher: fmt.Sprintf("pf-%d", i%3),
			Trace:      fmt.Sprintf("trace-%d", i),
			Run:        wireRun(fmt.Sprintf("trace-%d", i), fmt.Sprintf("pf-%d", i%3)),
		}
	}
	return specs
}

// runDistributed drives a full run: submit, N workers until drained,
// wait for all records, and return the store's canonical dump.
func runDistributed(t *testing.T, nWorkers int, specs []JobSpec) []byte {
	t.Helper()
	_, srv, path := serveCoordinator(t, CoordinatorOptions{
		LeaseMax:   4,
		DrainGrace: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cl := NewClient(srv.URL)
	cl.Poll = 10 * time.Millisecond
	if _, err := cl.Submit(ctx, specs); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := RunWorker(ctx, WorkerOptions{
				Coordinator:     srv.URL,
				Name:            fmt.Sprintf("e2e-%d", i),
				Parallel:        2,
				Build:           fakeBuild,
				Poll:            10 * time.Millisecond,
				ExitWhenDrained: true,
			})
			if err != nil && ctx.Err() == nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}

	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	recs, err := cl.Wait(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("resolved %d/%d jobs", len(recs), len(specs))
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := sweep.WriteCanonical(&buf, path); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The core invariant of distributed mode: the merged store of an
// N-worker run is canonically byte-identical to a serial run of the
// same jobs.
func TestDistributedDeterminism1v3(t *testing.T) {
	specs := e2eSpecs(24)

	// Serial baseline: the same jobs through a plain local pool.
	serialPath := filepath.Join(t.TempDir(), "serial.jsonl")
	store, err := sweep.OpenStore(serialPath, false)
	if err != nil {
		t.Fatal(err)
	}
	pool := sweep.New(context.Background(), sweep.Options{Workers: 1, Store: store})
	for _, s := range specs {
		exec, _ := fakeBuild(s)
		pool.Submit(sweep.Job{ID: s.ID, Label: s.Label, Prefetcher: s.Prefetcher, Trace: s.Trace, Run: exec.Run})
	}
	pool.Close()
	store.Close()
	var serial bytes.Buffer
	if err := sweep.WriteCanonical(&serial, serialPath); err != nil {
		t.Fatal(err)
	}

	one := runDistributed(t, 1, specs)
	three := runDistributed(t, 3, specs)

	if !bytes.Equal(serial.Bytes(), one) {
		t.Errorf("1-worker canonical dump differs from serial:\nserial:\n%s\n1-worker:\n%s", &serial, one)
	}
	if !bytes.Equal(serial.Bytes(), three) {
		t.Errorf("3-worker canonical dump differs from serial:\nserial:\n%s\n3-worker:\n%s", &serial, three)
	}
}

// A worker that dies mid-batch has its jobs re-leased to a survivor
// and the run still completes with every record intact.
func TestWorkerDeathRelease(t *testing.T) {
	coord, srv, path := serveCoordinator(t, CoordinatorOptions{
		LeaseTTL:    400 * time.Millisecond,
		LeaseMax:    4,
		MaxAttempts: 5,
		DrainGrace:  50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	specs := e2eSpecs(8)
	cl := NewClient(srv.URL)
	cl.Poll = 10 * time.Millisecond
	if _, err := cl.Submit(ctx, specs); err != nil {
		t.Fatal(err)
	}

	// The victim leases jobs but never finishes one: its Build blocks
	// until its context is canceled (the SIGKILL stand-in).
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		_ = RunWorker(victimCtx, WorkerOptions{
			Coordinator: srv.URL,
			Name:        "victim",
			Parallel:    2,
			Build: func(spec JobSpec) (sweep.Exec, error) {
				return sweep.Exec{Run: func(jctx context.Context) sim.Result {
					<-jctx.Done()
					return sim.Result{}
				}}, nil
			},
			Poll: 10 * time.Millisecond,
		})
	}()

	// Wait until the victim actually holds a lease, then kill it. If
	// the kill could land before any lease, the test would be vacuous.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := coord.Status(); st.Leased > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never leased a job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	killVictim()
	<-victimDone

	// The survivor drains everything, including the victim's backlog.
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(ctx, WorkerOptions{
			Coordinator:     srv.URL,
			Name:            "survivor",
			Parallel:        2,
			Build:           fakeBuild,
			Poll:            10 * time.Millisecond,
			ExitWhenDrained: true,
		})
	}()

	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	recs, err := cl.Wait(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-workerDone; err != nil && ctx.Err() == nil {
		t.Fatalf("survivor: %v", err)
	}
	for _, s := range specs {
		rec, ok := recs[s.ID]
		if !ok || rec.Status != sweep.StatusOK {
			t.Fatalf("job %s not OK after re-lease: %+v (ok=%v)", s.ID, rec, ok)
		}
	}
	st := coord.Status()
	if st.Expired == 0 {
		t.Fatal("no lease expired — the victim's death was never exercised")
	}
	if st.Quarantined != 0 {
		t.Fatalf("%d jobs quarantined; re-lease should have recovered them all", st.Quarantined)
	}
	onDisk, _, err := sweep.ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != len(specs) {
		t.Fatalf("store has %d records, want %d", len(onDisk), len(specs))
	}
}

// A worker surviving a coordinator restart re-registers and keeps
// working against the replacement (resumed from the same store).
func TestWorkerReregistersAfterCoordinatorRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, err := sweep.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewCoordinator(CoordinatorOptions{Store: store, LeaseMax: 2})
	srv := httptest.NewServer(c1.Handler())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	specs := e2eSpecs(6)
	cl := NewClient(srv.URL)
	cl.Poll = 10 * time.Millisecond
	if _, err := cl.Submit(ctx, specs[:3]); err != nil {
		t.Fatal(err)
	}

	// The worker must outlive the restart, so it polls forever and is
	// canceled explicitly at the end.
	wctx, stopWorker := context.WithCancel(ctx)
	defer stopWorker()
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- RunWorker(wctx, WorkerOptions{
			Coordinator: srv.URL,
			Name:        "steady",
			Parallel:    1,
			Build:       fakeBuild,
			Poll:        10 * time.Millisecond,
		})
	}()

	ids := func(ss []JobSpec) []string {
		out := make([]string, len(ss))
		for i, s := range ss {
			out[i] = s.ID
		}
		return out
	}
	if _, err := cl.Wait(ctx, ids(specs[:3])); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh coordinator resumes the same store behind the
	// same listener. The worker's next lease is rejected (unknown
	// worker), it re-registers, and drains the remaining jobs.
	store.Close()
	store, err = sweep.OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c2 := NewCoordinator(CoordinatorOptions{Store: store, LeaseMax: 2})
	srv.Config.Handler = c2.Handler()

	resp, err := cl.Submit(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached != 3 || resp.Accepted != 3 {
		t.Fatalf("resubmit after restart: %+v, want 3 cached 3 accepted", resp)
	}
	recs, err := cl.Wait(ctx, ids(specs))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(specs) {
		t.Fatalf("resolved %d/%d after restart", len(recs), len(specs))
	}
	if st := c2.Status(); len(st.Workers) == 0 {
		t.Fatal("worker never re-registered with the replacement coordinator")
	}
	stopWorker()
	if err := <-workerDone; err != nil && ctx.Err() == nil && err != context.Canceled {
		t.Fatalf("worker: %v", err)
	}
	srv.Close()
}
