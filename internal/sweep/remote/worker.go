package remote

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"pmp/internal/sweep"
)

// WorkerOptions configures a worker loop.
type WorkerOptions struct {
	// Coordinator is the coordinator's address (host:port or URL).
	Coordinator string
	// Name labels the worker in /status and the manifest; defaults to
	// host/pid.
	Name string
	// Parallel is the local pool size; <= 0 means GOMAXPROCS.
	Parallel int
	// Build resolves a wire job into its executable form (normally
	// bench.BuildJobRun, which materializes spec.Run through the shared
	// BuildRun path). A spec Build rejects is reported back as a
	// quarantined record instead of being run.
	Build func(spec JobSpec) (sweep.Exec, error)
	// Token is the shared-secret bearer token sent with every request
	// when the coordinator requires auth (-auth-token).
	Token string
	// MaxAttempts and JobTimeout configure the local sweep pool (the
	// same retry-then-quarantine semantics as a serial run).
	MaxAttempts int
	JobTimeout  time.Duration
	// Poll is the idle wait between empty leases; <= 0 means 500ms.
	Poll time.Duration
	// ExitWhenDrained makes the worker return once the coordinator
	// reports the run over: every submitted job resolved and no client
	// activity for the coordinator's drain grace, so the worker does
	// not exit in the transient gap between a client's submission
	// waves. Long-lived fleet workers leave it false and keep polling.
	ExitWhenDrained bool
	// Logf, when non-nil, receives one line per worker event.
	Logf func(format string, args ...any)
}

// RunWorker registers with the coordinator and serves leases until the
// context dies (or, with ExitWhenDrained, until the job space is
// drained): lease a batch, run it on a local sweep pool, stream the
// records back as they complete, heartbeat while anything is still
// running. Transport errors back off and retry; a coordinator restart
// (lease/report rejected) triggers re-registration.
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.GOMAXPROCS(0)
	}
	if opts.Poll <= 0 {
		opts.Poll = 500 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Name == "" {
		host, _ := os.Hostname()
		opts.Name = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	if opts.Build == nil {
		return errors.New("remote: WorkerOptions.Build is required")
	}
	w := &worker{
		opts: opts,
		base: normalizeBase(opts.Coordinator),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
	w.pool = sweep.New(ctx, sweep.Options{
		Workers:     opts.Parallel,
		MaxAttempts: opts.MaxAttempts,
		JobTimeout:  opts.JobTimeout,
	})
	defer w.pool.Close()
	return w.run(ctx)
}

// worker is the state of one RunWorker invocation.
type worker struct {
	opts WorkerOptions
	base string
	hc   *http.Client
	pool *sweep.Sweep

	id  string
	ttl time.Duration
}

// register announces the worker, retrying with backoff until the
// context dies.
func (w *worker) register(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		var resp RegisterResponse
		err := postJSON(ctx, w.hc, w.base+PathRegister, w.opts.Token,
			RegisterRequest{Name: w.opts.Name, Parallel: w.opts.Parallel}, &resp)
		if err == nil {
			w.id = resp.WorkerID
			w.ttl = resp.LeaseTTL
			w.opts.Logf("registered as %s (lease TTL %v)", w.id, w.ttl)
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.opts.Logf("register: %v (retrying)", err)
		if err := sleepCtx(ctx, backoff(attempt, 200*time.Millisecond, 10*time.Second)); err != nil {
			return err
		}
	}
}

// run is the lease/execute/report loop.
func (w *worker) run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	errs := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var lease LeaseResponse
		err := postJSON(ctx, w.hc, w.base+PathLease, w.opts.Token,
			LeaseRequest{WorkerID: w.id, Max: 2 * w.opts.Parallel}, &lease)
		if err != nil {
			var se *StatusError
			if errors.As(err, &se) {
				// The coordinator no longer knows us (restart): start over.
				w.opts.Logf("lease rejected (%v); re-registering", err)
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			}
			errs++
			w.opts.Logf("lease: %v (retrying)", err)
			if err := sleepCtx(ctx, backoff(errs, 200*time.Millisecond, 10*time.Second)); err != nil {
				return err
			}
			continue
		}
		errs = 0
		if len(lease.Jobs) == 0 {
			if lease.Drained && w.opts.ExitWhenDrained {
				w.opts.Logf("drained; exiting")
				return nil
			}
			if err := sleepCtx(ctx, w.opts.Poll); err != nil {
				return err
			}
			continue
		}
		w.opts.Logf("leased %d jobs (%s)", len(lease.Jobs), lease.LeaseID)
		if err := w.runBatch(ctx, lease); err != nil {
			return err
		}
	}
}

// runBatch executes one leased batch on the local pool, streaming
// records back as jobs complete and heartbeating while any are still
// running.
func (w *worker) runBatch(ctx context.Context, lease LeaseResponse) error {
	recs := make(chan sweep.Record, len(lease.Jobs))
	outstanding := 0
	for _, spec := range lease.Jobs {
		spec := spec
		exec, err := w.opts.Build(spec)
		if err != nil {
			// Unresolvable on this worker: its quarantine record, not a
			// crash, so the coordinator and store see the failure.
			w.opts.Logf("resolve %s (%s): %v", spec.ID, spec.Label, err)
			recs <- sweep.Record{
				ID: spec.ID, Label: spec.Label,
				Prefetcher: spec.Prefetcher, Trace: spec.Trace,
				Status: sweep.StatusQuarantined, Err: "resolve: " + err.Error(), Attempts: 1,
			}
			outstanding++
			continue
		}
		t := w.pool.Submit(sweep.Job{
			ID:         spec.ID,
			Label:      spec.Label,
			Prefetcher: spec.Prefetcher,
			Trace:      spec.Trace,
			Run:        exec.Run,
			RunMulti:   exec.RunMulti,
		})
		outstanding++
		go func() {
			rec, err := t.Wait()
			if err != nil {
				// Pool canceled: the lease will expire and re-lease
				// elsewhere; nothing to report.
				rec = sweep.Record{}
			}
			recs <- rec
		}()
	}

	heartbeat := w.ttl / 3
	if heartbeat <= 0 {
		heartbeat = 5 * time.Second
	}
	tick := time.NewTicker(heartbeat)
	defer tick.Stop()
	var buf []sweep.Record
	for outstanding > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case rec := <-recs:
			outstanding--
			if rec.ID != "" {
				buf = append(buf, rec)
			}
			// Flush eagerly so the coordinator's store and the lease
			// deadline advance with every completed job.
			if err := w.report(ctx, lease.LeaseID, buf); err != nil {
				return err
			}
			buf = nil
		case <-tick.C:
			if err := w.report(ctx, lease.LeaseID, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// report posts records (empty = heartbeat), retrying transport errors
// until the context dies. A protocol rejection re-registers and drops
// the batch — the lease is gone, and the jobs will be re-leased and
// re-run deterministically.
func (w *worker) report(ctx context.Context, leaseID string, recs []sweep.Record) error {
	for attempt := 0; ; attempt++ {
		var resp ReportResponse
		err := postJSON(ctx, w.hc, w.base+PathReport, w.opts.Token,
			ReportRequest{WorkerID: w.id, LeaseID: leaseID, Records: recs}, &resp)
		if err == nil {
			if resp.Stale > 0 {
				w.opts.Logf("report: %d records stale (re-leased elsewhere)", resp.Stale)
			}
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			w.opts.Logf("report rejected (%v); re-registering", err)
			return w.register(ctx)
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		w.opts.Logf("report: %v (retrying)", err)
		if err := sleepCtx(ctx, backoff(attempt, 200*time.Millisecond, 10*time.Second)); err != nil {
			return err
		}
	}
}
