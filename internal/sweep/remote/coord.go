package remote

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"time"

	"pmp/internal/sweep"
)

// CoordinatorOptions configures a Coordinator. The zero value is
// usable apart from Store, which is required.
type CoordinatorOptions struct {
	// Store receives one record per resolved job and serves
	// already-completed jobs back to Submit (resume across coordinator
	// restarts). Required.
	Store *sweep.Store
	// LeaseTTL is how long a leased batch survives without a report or
	// heartbeat from its worker before being re-queued; <= 0 means 60s.
	LeaseTTL time.Duration
	// LeaseMax bounds one lease's batch size; <= 0 means 16.
	LeaseMax int
	// MaxAttempts bounds lease attempts per job: after MaxAttempts
	// expired leases the job is quarantined, mirroring the local
	// sweep's retry-then-quarantine path. <= 0 means 2.
	MaxAttempts int
	// DrainGrace is how long the coordinator must sit fully resolved
	// with no client contact (submit or results poll) before an empty
	// lease reports Drained. A driving client submits its waves
	// sequentially, so the job space is transiently drained between
	// waves — without the grace an ExitWhenDrained worker exits in
	// that gap and the next wave hangs with no one to run it.
	// <= 0 means 2s.
	DrainGrace time.Duration
	// Addr is the advertised coordinator address, recorded in the run
	// manifest for auditability.
	Addr string
	// AuthToken, when non-empty, requires every request to carry a
	// matching `Authorization: Bearer <token>` header (constant-time
	// compare); unauthorized requests get 401. Shared-secret auth for
	// multi-tenant deployments — distribute the token to workers and
	// clients out of band.
	AuthToken string
	// Logf, when non-nil, receives one line per scheduling event.
	Logf func(format string, args ...any)
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// job lifecycle states.
const (
	jobPending = iota
	jobLeased
	jobDone
)

// coordJob is the coordinator's bookkeeping for one job.
type coordJob struct {
	spec     JobSpec
	state    int
	workerID string
	leaseID  string
	deadline time.Time
	attempts int // lease attempts consumed (expiries included)
	rec      sweep.Record
}

// workerState is the coordinator's bookkeeping for one registration.
type workerState struct {
	id       string
	name     string
	parallel int
	index    int // shard index, fixed at registration
	jobs     int // records merged from this worker
	lastSeen time.Time
}

// Coordinator owns the job space of a distributed sweep: it
// deduplicates submissions by job ID, shards pending jobs across
// registered workers (hash of the job ID, with stealing so an idle
// worker is never starved by a dead shard), tracks leases, merges
// reported records into the store, and re-leases expired batches.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	jobs    map[string]*coordJob
	backlog []string // pending job IDs, FIFO; entries are skipped if no longer pending
	workers map[string]*workerState

	workerSeq  int
	leaseSeq   int
	started    time.Time
	lastClient time.Time // last submit or results poll

	// counters (guarded by mu)
	deduped     int
	cached      int
	completed   int
	quarantined int
	expired     int
	stale       int
	storeErrs   int
}

// NewCoordinator builds a coordinator around the merged store.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 60 * time.Second
	}
	if opts.LeaseMax <= 0 {
		opts.LeaseMax = 16
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2
	}
	if opts.DrainGrace <= 0 {
		opts.DrainGrace = 2 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	c := &Coordinator{
		opts:    opts,
		jobs:    map[string]*coordJob{},
		workers: map[string]*workerState{},
	}
	c.started = opts.Now()
	return c
}

// shardOf maps a job ID onto one of n shards.
func shardOf(id string, n int) int {
	if n <= 0 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(n))
}

// register adds a worker and assigns its shard index.
func (c *Coordinator) register(req RegisterRequest) RegisterResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerSeq++
	w := &workerState{
		id:       fmt.Sprintf("w%d", c.workerSeq),
		name:     req.Name,
		parallel: req.Parallel,
		index:    c.workerSeq - 1,
		lastSeen: c.opts.Now(),
	}
	c.workers[w.id] = w
	c.opts.Logf("register: %s (%s, parallel %d)", w.id, w.name, req.Parallel)
	return RegisterResponse{WorkerID: w.id, LeaseTTL: c.opts.LeaseTTL}
}

// submit queues new jobs, folding duplicates and serving store hits.
func (c *Coordinator) submit(req SubmitRequest) SubmitResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.lastClient = c.opts.Now()
	var resp SubmitResponse
	for _, spec := range req.Jobs {
		if spec.ID == "" {
			continue
		}
		if _, ok := c.jobs[spec.ID]; ok {
			c.deduped++
			resp.Deduped++
			continue
		}
		j := &coordJob{spec: spec}
		if rec, ok := c.opts.Store.Lookup(spec.ID); ok && rec.Status == sweep.StatusOK {
			j.state = jobDone
			j.rec = rec
			c.cached++
			resp.Cached++
			c.jobs[spec.ID] = j
			continue
		}
		j.state = jobPending
		c.jobs[spec.ID] = j
		c.backlog = append(c.backlog, spec.ID)
		resp.Accepted++
	}
	if resp.Accepted > 0 {
		c.opts.Logf("submit: %d queued, %d deduped, %d cached", resp.Accepted, resp.Deduped, resp.Cached)
	}
	return resp
}

// lease grants up to max pending jobs to the worker, preferring jobs
// whose ID hashes to the worker's shard and stealing from other shards
// when its own is empty, so a dead worker's backlog drains through the
// survivors.
func (c *Coordinator) lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		return LeaseResponse{}, fmt.Errorf("unknown worker %q", req.WorkerID)
	}
	now := c.opts.Now()
	w.lastSeen = now
	max := req.Max
	if max <= 0 || max > c.opts.LeaseMax {
		max = c.opts.LeaseMax
	}
	// Compact the queue to live pending entries while splitting it into
	// this worker's shard and the rest. A job can appear twice — its
	// original entry is left behind at lease time and expiry re-queues
	// it — so duplicates are folded here too.
	var mine, theirs []string
	live := c.backlog[:0]
	seen := make(map[string]bool, len(c.backlog))
	n := len(c.workers)
	for _, id := range c.backlog {
		j := c.jobs[id]
		if j == nil || j.state != jobPending || seen[id] {
			continue // resolved, leased since queuing, or duplicate
		}
		seen[id] = true
		live = append(live, id)
		if shardOf(id, n) == w.index%n {
			mine = append(mine, id)
		} else {
			theirs = append(theirs, id)
		}
	}
	c.backlog = live
	picked := mine
	if len(picked) > max {
		picked = picked[:max]
	}
	if len(picked) < max { // shard drained: steal
		picked = append(picked, theirs[:min(max-len(picked), len(theirs))]...)
	}
	if len(picked) == 0 {
		return LeaseResponse{Drained: c.quiescentLocked(now)}, nil
	}
	c.leaseSeq++
	leaseID := fmt.Sprintf("l%d", c.leaseSeq)
	resp := LeaseResponse{LeaseID: leaseID}
	for _, id := range picked {
		j := c.jobs[id]
		j.state = jobLeased
		j.workerID = w.id
		j.leaseID = leaseID
		j.deadline = now.Add(c.opts.LeaseTTL)
		j.attempts++
		resp.Jobs = append(resp.Jobs, j.spec)
	}
	c.opts.Logf("lease %s -> %s: %d jobs", leaseID, w.id, len(resp.Jobs))
	return resp, nil
}

// report merges completed records into the store and extends the
// reporting worker's outstanding leases (heartbeat).
func (c *Coordinator) report(req ReportRequest) (ReportResponse, error) {
	c.mu.Lock()
	c.expireLocked()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		return ReportResponse{}, fmt.Errorf("unknown worker %q", req.WorkerID)
	}
	now := c.opts.Now()
	w.lastSeen = now
	// Heartbeat: everything this worker still holds gets a fresh
	// deadline, so a slow job survives as long as its worker does.
	for _, j := range c.jobs {
		if j.state == jobLeased && j.workerID == w.id {
			j.deadline = now.Add(c.opts.LeaseTTL)
		}
	}
	var resp ReportResponse
	var persist []sweep.Record
	for _, rec := range req.Records {
		j, ok := c.jobs[rec.ID]
		if !ok || j.state == jobDone {
			// Unknown, or already resolved by another worker after this
			// worker's lease expired. Results are deterministic, so the
			// extra copy is dropped rather than re-stored.
			c.stale++
			resp.Stale++
			continue
		}
		j.state = jobDone
		j.rec = rec
		switch rec.Status {
		case sweep.StatusQuarantined:
			c.quarantined++
		default:
			c.completed++
		}
		w.jobs++
		resp.Accepted++
		persist = append(persist, rec)
	}
	c.mu.Unlock()

	for _, rec := range persist {
		if err := c.opts.Store.Append(rec); err != nil {
			c.mu.Lock()
			c.storeErrs++
			c.mu.Unlock()
			c.opts.Logf("store append %s: %v", rec.ID, err)
		}
	}
	if resp.Accepted > 0 {
		c.opts.Logf("report %s <- %s: %d records (%d stale)", req.LeaseID, w.id, resp.Accepted, resp.Stale)
	}
	return resp, nil
}

// results serves resolved records for the requested IDs.
func (c *Coordinator) results(req ResultsRequest) ResultsResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	c.lastClient = c.opts.Now()
	var resp ResultsResponse
	for _, id := range req.IDs {
		if j, ok := c.jobs[id]; ok && j.state == jobDone {
			resp.Records = append(resp.Records, j.rec)
		} else {
			resp.Pending++
		}
	}
	return resp
}

// expireLocked re-queues jobs whose lease deadline has passed; a job
// that has exhausted MaxAttempts lease attempts is quarantined with a
// store record, mirroring the local sweep's retry-then-quarantine
// path. Expiry runs lazily at every coordinator entry point, so a
// polling client is enough to keep a dead worker's backlog moving.
func (c *Coordinator) expireLocked() {
	now := c.opts.Now()
	var lapsed []string
	for id, j := range c.jobs {
		if j.state == jobLeased && !now.Before(j.deadline) {
			lapsed = append(lapsed, id)
		}
	}
	// Sorted, so simultaneous expiries re-queue and hit the store in a
	// deterministic order.
	sort.Strings(lapsed)
	for _, id := range lapsed {
		j := c.jobs[id]
		c.expired++
		if j.attempts < c.opts.MaxAttempts {
			j.state = jobPending
			c.backlog = append(c.backlog, id)
			c.opts.Logf("expire: %s (%s) re-queued (lease %s, worker %s)",
				id, j.spec.Label, j.leaseID, j.workerID)
			continue
		}
		j.state = jobDone
		j.rec = sweep.Record{
			ID:         j.spec.ID,
			Label:      j.spec.Label,
			Prefetcher: j.spec.Prefetcher,
			Trace:      j.spec.Trace,
			Status:     sweep.StatusQuarantined,
			Err: fmt.Sprintf("lease expired %d times (last worker %s)",
				j.attempts, j.workerID),
			Attempts: j.attempts,
		}
		c.quarantined++
		c.opts.Logf("expire: %s (%s) quarantined after %d leases", id, j.spec.Label, j.attempts)
		if err := c.opts.Store.Append(j.rec); err != nil {
			c.storeErrs++
		}
	}
}

// drainedLocked reports whether every submitted job has resolved.
func (c *Coordinator) drainedLocked() bool {
	for _, j := range c.jobs {
		if j.state != jobDone {
			return false
		}
	}
	return true
}

// quiescentLocked reports whether the run is over from a worker's
// point of view: at least one job was submitted, every job has
// resolved, and no client has submitted or polled for DrainGrace.
// The grace guards against the transient drain between a driving
// client's sequential submission waves; requiring a first submission
// keeps an ExitWhenDrained worker that starts before its client from
// exiting immediately.
func (c *Coordinator) quiescentLocked(now time.Time) bool {
	return len(c.jobs) > 0 && c.drainedLocked() &&
		now.Sub(c.lastClient) >= c.opts.DrainGrace
}

// Status returns the coordinator's current counters, workers sorted by
// ID.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	st := Status{
		Deduped:     c.deduped,
		Cached:      c.cached,
		Completed:   c.completed,
		Quarantined: c.quarantined,
		Expired:     c.expired,
		Submitted:   len(c.jobs),
	}
	for _, j := range c.jobs {
		switch j.state {
		case jobPending:
			st.Pending++
		case jobLeased:
			st.Leased++
		case jobDone:
			st.Done++
		}
	}
	st.Drained = st.Done == len(c.jobs)
	for _, w := range c.workers {
		leased := 0
		for _, j := range c.jobs {
			if j.state == jobLeased && j.workerID == w.id {
				leased++
			}
		}
		st.Workers = append(st.Workers, WorkerStatus{
			ID: w.id, Name: w.name, Parallel: w.parallel,
			Jobs: w.jobs, Leased: leased, LastSeen: w.lastSeen,
		})
	}
	sort.Slice(st.Workers, func(i, k int) bool { return st.Workers[i].ID < st.Workers[k].ID })
	return st
}

// Manifest assembles the distributed run's manifest: the serial
// manifest fields plus coordinator address, worker count and
// per-worker merged-job tallies.
func (c *Coordinator) Manifest() sweep.Manifest {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	m := sweep.Manifest{
		RunID:         fmt.Sprintf("%x", c.started.UnixNano()),
		StartedAt:     c.started,
		FinishedAt:    now,
		WallSeconds:   now.Sub(c.started).Seconds(),
		Submitted:     len(c.jobs),
		Deduped:       c.deduped,
		Completed:     c.completed,
		Cached:        c.cached,
		Quarantined:   c.quarantined,
		StoreErrors:   c.storeErrs,
		Coordinator:   c.opts.Addr,
		RemoteWorkers: len(c.workers),
	}
	if len(c.workers) > 0 {
		m.WorkerJobs = map[string]int{}
		for _, w := range c.workers {
			m.WorkerJobs[w.id+"/"+w.name] = w.jobs
		}
	}
	for _, j := range c.jobs {
		if j.state == jobDone && j.rec.Status == sweep.StatusQuarantined {
			m.QuarantinedJobs = append(m.QuarantinedJobs, j.rec.Label)
		}
	}
	sort.Strings(m.QuarantinedJobs)
	return m
}

// Shutdown writes the run manifest next to the store and closes the
// store. The coordinator must not receive requests afterwards.
func (c *Coordinator) Shutdown() (sweep.Manifest, error) {
	m := c.Manifest()
	m.Store = c.opts.Store.Path()
	err := sweep.WriteManifest(c.opts.Store.ManifestPath(), m)
	if cerr := c.opts.Store.Close(); err == nil {
		err = cerr
	}
	return m, err
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decode(w, r, &req) {
			return
		}
		reply(w, c.register(req))
	})
	mux.HandleFunc(PathSubmit, func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if !decode(w, r, &req) {
			return
		}
		// Structural validation only: the coordinator vets that every
		// spec describes a well-formed run (cores, placements within the
		// hierarchy, records, config) without constructing designs or
		// resolving traces — that stays on the workers.
		for _, spec := range req.Jobs {
			if spec.ID == "" {
				continue
			}
			if err := spec.Run.Validate(); err != nil {
				http.Error(w, fmt.Sprintf("invalid job %s (%s): %v", spec.ID, spec.Label, err),
					http.StatusBadRequest)
				return
			}
		}
		reply(w, c.submit(req))
	})
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.lease(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		reply(w, resp)
	})
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, r *http.Request) {
		var req ReportRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.report(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		reply(w, resp)
	})
	mux.HandleFunc(PathResults, func(w http.ResponseWriter, r *http.Request) {
		var req ResultsRequest
		if !decode(w, r, &req) {
			return
		}
		reply(w, c.results(req))
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		reply(w, c.Status())
	})
	return c.authMiddleware(mux)
}

// authMiddleware enforces the shared-secret bearer token on every
// endpoint when AuthToken is set. The compare is constant-time so the
// token cannot be recovered byte-by-byte from response timing.
func (c *Coordinator) authMiddleware(next http.Handler) http.Handler {
	if c.opts.AuthToken == "" {
		return next
	}
	want := []byte("Bearer " + c.opts.AuthToken)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := []byte(r.Header.Get("Authorization"))
		if subtle.ConstantTimeCompare(got, want) != 1 {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// decode reads a JSON request body, replying 400 on malformed input.
func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
