package remote

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pmp/internal/runspec"
	"pmp/internal/sim"
	"pmp/internal/sweep"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testCoordinator builds a coordinator over a temp store with a fake
// clock.
func testCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *fakeClock, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.jsonl")
	store, err := sweep.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	clk := newFakeClock()
	opts.Store = store
	opts.Now = clk.Now
	if opts.LeaseTTL == 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	return NewCoordinator(opts), clk, path
}

func spec(i int) JobSpec {
	return JobSpec{
		ID:         fmt.Sprintf("job%04d", i),
		Label:      fmt.Sprintf("pf/trace-%d", i),
		Prefetcher: "pf",
		Trace:      fmt.Sprintf("trace-%d", i),
		Run:        wireRun(fmt.Sprintf("trace-%d", i), "pf"),
	}
}

// wireRun is a structurally valid single-core run spec for wire tests;
// nothing here ever builds it.
func wireRun(traceName, pf string) runspec.RunSpec {
	return runspec.RunSpec{
		Cores: []runspec.CoreSpec{{
			Trace:   runspec.TraceRef{Name: traceName},
			Variant: runspec.VariantSpec{Name: pf, Registry: pf},
		}},
		Records: 1000,
		Config:  sim.DefaultConfig(),
	}
}

func okRecord(s JobSpec) sweep.Record {
	return sweep.Record{
		ID: s.ID, Label: s.Label, Prefetcher: s.Prefetcher, Trace: s.Trace,
		Status: sweep.StatusOK, Attempts: 1,
		Result: sim.Result{Instructions: 100, Cycles: 50},
	}
}

// A worker that dies has its lease expire, the job re-leases to a
// survivor, and after MaxAttempts expired leases the job is
// quarantined with a store record — in that order.
func TestLeaseExpiryReleaseThenQuarantine(t *testing.T) {
	c, clk, path := testCoordinator(t, CoordinatorOptions{MaxAttempts: 2})

	c.submit(SubmitRequest{Jobs: []JobSpec{spec(1)}})
	w1 := c.register(RegisterRequest{Name: "w1"}).WorkerID
	w2 := c.register(RegisterRequest{Name: "w2"}).WorkerID

	lease1, err := c.lease(LeaseRequest{WorkerID: w1})
	if err != nil || len(lease1.Jobs) != 1 {
		t.Fatalf("first lease: %v jobs=%d", err, len(lease1.Jobs))
	}
	// Before expiry nothing is pending for anyone else.
	if l, _ := c.lease(LeaseRequest{WorkerID: w2}); len(l.Jobs) != 0 {
		t.Fatalf("job leased twice before expiry")
	}

	// w1 dies: its lease lapses and the survivor picks the job up.
	clk.Advance(11 * time.Second)
	lease2, err := c.lease(LeaseRequest{WorkerID: w2})
	if err != nil || len(lease2.Jobs) != 1 {
		t.Fatalf("re-lease after expiry: %v jobs=%d", err, len(lease2.Jobs))
	}
	if got := c.Status(); got.Expired != 1 || got.Quarantined != 0 {
		t.Fatalf("after first expiry: expired=%d quarantined=%d, want 1/0", got.Expired, got.Quarantined)
	}

	// w2 dies too: attempts exhausted, the job quarantines.
	clk.Advance(11 * time.Second)
	st := c.Status()
	if st.Expired != 2 || st.Quarantined != 1 || st.Done != 1 {
		t.Fatalf("after second expiry: %+v", st)
	}
	res := c.results(ResultsRequest{IDs: []string{spec(1).ID}})
	if len(res.Records) != 1 || res.Records[0].Status != sweep.StatusQuarantined {
		t.Fatalf("quarantine record not served: %+v", res)
	}
	if !strings.Contains(res.Records[0].Err, "lease expired") {
		t.Fatalf("quarantine error %q does not name the lease expiry", res.Records[0].Err)
	}

	recs, _, err := sweep.ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := recs[spec(1).ID]; !ok || rec.Status != sweep.StatusQuarantined {
		t.Fatalf("store record after quarantine: %+v (ok=%v)", rec, ok)
	}
}

// A report is also a heartbeat: it extends the reporting worker's
// other leases, so a slow job on a live worker is never re-leased.
func TestReportHeartbeatExtendsLease(t *testing.T) {
	c, clk, _ := testCoordinator(t, CoordinatorOptions{})

	c.submit(SubmitRequest{Jobs: []JobSpec{spec(1), spec(2)}})
	w1 := c.register(RegisterRequest{Name: "w1"}).WorkerID
	w2 := c.register(RegisterRequest{Name: "w2"}).WorkerID
	lease, err := c.lease(LeaseRequest{WorkerID: w1})
	if err != nil || len(lease.Jobs) != 2 {
		t.Fatalf("lease: %v jobs=%d", err, len(lease.Jobs))
	}

	// Heartbeat at 80% of TTL, repeatedly: the lease must survive far
	// past the original deadline.
	for i := 0; i < 5; i++ {
		clk.Advance(8 * time.Second)
		if _, err := c.report(ReportRequest{WorkerID: w1, LeaseID: lease.LeaseID}); err != nil {
			t.Fatal(err)
		}
	}
	if l, _ := c.lease(LeaseRequest{WorkerID: w2}); len(l.Jobs) != 0 {
		t.Fatalf("heartbeated lease was stolen")
	}
	if st := c.Status(); st.Expired != 0 {
		t.Fatalf("expired=%d after heartbeats, want 0", st.Expired)
	}
}

// A record arriving after its job was re-leased and completed
// elsewhere is dropped as stale, not double-stored.
func TestStaleReportDropped(t *testing.T) {
	c, clk, path := testCoordinator(t, CoordinatorOptions{MaxAttempts: 3})

	c.submit(SubmitRequest{Jobs: []JobSpec{spec(1)}})
	w1 := c.register(RegisterRequest{Name: "w1"}).WorkerID
	w2 := c.register(RegisterRequest{Name: "w2"}).WorkerID
	l1, _ := c.lease(LeaseRequest{WorkerID: w1})
	clk.Advance(11 * time.Second)
	l2, _ := c.lease(LeaseRequest{WorkerID: w2})
	if len(l2.Jobs) != 1 {
		t.Fatalf("expected re-lease to w2, got %d jobs", len(l2.Jobs))
	}
	if resp, _ := c.report(ReportRequest{WorkerID: w2, LeaseID: l2.LeaseID,
		Records: []sweep.Record{okRecord(spec(1))}}); resp.Accepted != 1 {
		t.Fatalf("w2 report not accepted: %+v", resp)
	}
	// w1 was only stalled, not dead, and reports late.
	resp, err := c.report(ReportRequest{WorkerID: w1, LeaseID: l1.LeaseID,
		Records: []sweep.Record{okRecord(spec(1))}})
	if err != nil || resp.Stale != 1 || resp.Accepted != 0 {
		t.Fatalf("late report: err=%v resp=%+v, want 1 stale", err, resp)
	}
	recs, _, err := sweep.ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("store has %d records, want 1", len(recs))
	}
}

// Submission is idempotent, and a resumed store serves completed jobs
// without leasing them.
func TestSubmitDedupAndResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	store, err := sweep.OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Append(okRecord(spec(1))); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store, err = sweep.OpenStore(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	c := NewCoordinator(CoordinatorOptions{Store: store})

	resp := c.submit(SubmitRequest{Jobs: []JobSpec{spec(1), spec(2)}})
	if resp.Cached != 1 || resp.Accepted != 1 {
		t.Fatalf("submit over resumed store: %+v, want 1 cached 1 accepted", resp)
	}
	resp = c.submit(SubmitRequest{Jobs: []JobSpec{spec(1), spec(2)}})
	if resp.Deduped != 2 {
		t.Fatalf("re-submit: %+v, want 2 deduped", resp)
	}
	res := c.results(ResultsRequest{IDs: []string{spec(1).ID}})
	if len(res.Records) != 1 || res.Records[0].Status != sweep.StatusOK {
		t.Fatalf("cached record not served: %+v", res)
	}
}

// Concurrent reports from many workers merge into the store without
// loss (the coordinator's merge path is the multi-writer case the
// store's locking exists for).
func TestConcurrentReportMerge(t *testing.T) {
	c, _, path := testCoordinator(t, CoordinatorOptions{LeaseMax: 1000})

	const jobs = 200
	var specs []JobSpec
	for i := 0; i < jobs; i++ {
		specs = append(specs, spec(i))
	}
	c.submit(SubmitRequest{Jobs: specs})

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		id := c.register(RegisterRequest{Name: fmt.Sprintf("w%d", w)}).WorkerID
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lease, err := c.lease(LeaseRequest{WorkerID: id, Max: 4})
				if err != nil || len(lease.Jobs) == 0 {
					return
				}
				for _, s := range lease.Jobs {
					if _, err := c.report(ReportRequest{WorkerID: id, LeaseID: lease.LeaseID,
						Records: []sweep.Record{okRecord(s)}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := c.Status()
	if st.Done != jobs || st.Completed != jobs || !st.Drained {
		t.Fatalf("after concurrent drain: %+v", st)
	}
	recs, skipped, err := sweep.ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != jobs || skipped != 0 {
		t.Fatalf("store has %d records (%d skipped), want %d", len(recs), skipped, jobs)
	}
	total := 0
	for _, w := range st.Workers {
		total += w.Jobs
	}
	if total != jobs {
		t.Fatalf("per-worker tallies sum to %d, want %d", total, jobs)
	}
}

// The manifest records the distributed-run audit trail: coordinator
// address, worker count, per-worker tallies.
func TestManifestRecordsWorkers(t *testing.T) {
	c, _, _ := testCoordinator(t, CoordinatorOptions{Addr: "127.0.0.1:7077"})
	c.submit(SubmitRequest{Jobs: []JobSpec{spec(1)}})
	w1 := c.register(RegisterRequest{Name: "alpha"}).WorkerID
	l, _ := c.lease(LeaseRequest{WorkerID: w1})
	c.report(ReportRequest{WorkerID: w1, LeaseID: l.LeaseID, Records: []sweep.Record{okRecord(spec(1))}})

	m := c.Manifest()
	if m.Coordinator != "127.0.0.1:7077" || m.RemoteWorkers != 1 {
		t.Fatalf("manifest: %+v", m)
	}
	if m.WorkerJobs[w1+"/alpha"] != 1 {
		t.Fatalf("worker tallies: %+v", m.WorkerJobs)
	}
	if m.Completed != 1 || m.Submitted != 1 {
		t.Fatalf("manifest counters: %+v", m)
	}
}

// Jobs shard by ID hash: with every worker polling, each job is
// granted exactly once and the shards roughly balance.
func TestLeaseSharding(t *testing.T) {
	c, _, _ := testCoordinator(t, CoordinatorOptions{LeaseMax: 1000})
	const jobs = 100
	var specs []JobSpec
	for i := 0; i < jobs; i++ {
		specs = append(specs, spec(i))
	}
	c.submit(SubmitRequest{Jobs: specs})
	w1 := c.register(RegisterRequest{Name: "w1"}).WorkerID
	w2 := c.register(RegisterRequest{Name: "w2"}).WorkerID

	l1, _ := c.lease(LeaseRequest{WorkerID: w1, Max: jobs / 2})
	l2, _ := c.lease(LeaseRequest{WorkerID: w2, Max: jobs})
	if len(l1.Jobs)+len(l2.Jobs) != jobs {
		t.Fatalf("leased %d+%d, want %d total", len(l1.Jobs), len(l2.Jobs), jobs)
	}
	// w1 asked for half and gets only its own shard first; none of its
	// granted jobs should hash to w2's shard unless stolen, and there
	// was nothing to steal yet.
	for _, s := range l1.Jobs[:min(len(l1.Jobs), jobs/4)] {
		if shardOf(s.ID, 2) != 0 {
			t.Fatalf("w1 granted job %s from shard %d before its own shard drained", s.ID, shardOf(s.ID, 2))
		}
	}
}

// The empty-lease Drained signal must survive the transient drain
// between a driving client's sequential submission waves: it only
// fires once the coordinator has sat fully resolved with no client
// contact for DrainGrace, and never before the first submission.
func TestDrainSignalSurvivesSubmissionWaves(t *testing.T) {
	c, clk, _ := testCoordinator(t, CoordinatorOptions{DrainGrace: 5 * time.Second})
	w1 := c.register(RegisterRequest{Name: "w1"}).WorkerID

	// No client has ever submitted: an idle worker must keep waiting.
	if l, _ := c.lease(LeaseRequest{WorkerID: w1}); l.Drained {
		t.Fatal("drained before any submission")
	}
	clk.Advance(time.Hour)
	if l, _ := c.lease(LeaseRequest{WorkerID: w1}); l.Drained {
		t.Fatal("drained before any submission, even after an hour")
	}

	// Wave 1: submit, run, report. The job space is now transiently
	// drained, but the client contacted us moments ago.
	c.submit(SubmitRequest{Jobs: []JobSpec{spec(1), spec(2)}})
	l, err := c.lease(LeaseRequest{WorkerID: w1})
	if err != nil || len(l.Jobs) != 2 {
		t.Fatalf("wave 1 lease: %v jobs=%d", err, len(l.Jobs))
	}
	c.report(ReportRequest{WorkerID: w1, LeaseID: l.LeaseID,
		Records: []sweep.Record{okRecord(spec(1)), okRecord(spec(2))}})
	if l, _ := c.lease(LeaseRequest{WorkerID: w1}); l.Drained {
		t.Fatal("drained in the gap right after wave 1, before the grace")
	}

	// A results poll inside the grace window is client contact and
	// restarts the clock.
	clk.Advance(4 * time.Second)
	c.results(ResultsRequest{IDs: []string{spec(1).ID}})
	clk.Advance(4 * time.Second)
	if l, _ := c.lease(LeaseRequest{WorkerID: w1}); l.Drained {
		t.Fatal("drained 4s after a results poll, inside the 5s grace")
	}

	// Wave 2 lands inside the grace: business as usual.
	c.submit(SubmitRequest{Jobs: []JobSpec{spec(3)}})
	l, err = c.lease(LeaseRequest{WorkerID: w1})
	if err != nil || len(l.Jobs) != 1 {
		t.Fatalf("wave 2 lease: %v jobs=%d", err, len(l.Jobs))
	}
	c.report(ReportRequest{WorkerID: w1, LeaseID: l.LeaseID,
		Records: []sweep.Record{okRecord(spec(3))}})

	// Only once the client has been silent for the full grace does the
	// run count as over.
	clk.Advance(5*time.Second - time.Millisecond)
	if l, _ := c.lease(LeaseRequest{WorkerID: w1}); l.Drained {
		t.Fatal("drained a millisecond before the grace elapsed")
	}
	clk.Advance(time.Millisecond)
	l, _ = c.lease(LeaseRequest{WorkerID: w1})
	if !l.Drained {
		t.Fatal("not drained after the grace elapsed with no client contact")
	}
}
