// Package remote turns internal/sweep into a network service: a
// coordinator (cmd/pmpsweepd) owns the job space and the merged
// results store, hash-shards pending jobs by job ID across registered
// workers, leases batches over HTTP+JSON, and merges reported records
// into the store. Workers run leased jobs on a local sweep pool and
// stream records back; a worker that dies or stalls lets its lease
// expire, and the coordinator re-leases the jobs to the survivors
// (bounded by MaxAttempts, then the existing quarantine path).
//
// Because every job is deterministic and the store keeps the last
// record per ID, the merged store of an N-worker distributed run is
// record-for-record identical — after last-record-per-ID resolution
// and modulo timing fields — to a serial run of the same job set.
// scripts/distributed_smoke.sh enforces that invariant in CI with a
// worker SIGKILLed mid-sweep.
//
// See docs/sweep.md ("Distributed mode") for protocol and failure
// model details.
package remote

import (
	"time"

	"pmp/internal/runspec"
	"pmp/internal/sweep"
)

// HTTP endpoints served by the coordinator. All take a JSON request
// body (POST) and return a JSON response; /status also answers GET.
const (
	PathRegister = "/register"
	PathLease    = "/lease"
	PathReport   = "/report"
	PathStatus   = "/status"
	PathSubmit   = "/submit"
	PathResults  = "/results"
)

// JobSpec is the wire form of one simulation job: a declarative
// runspec.RunSpec (per-core traces and variants, per-level placements,
// record count, full sim.Config) plus identity and annotations —
// everything a worker needs to reconstruct the run without sharing
// memory with the submitter. bench.BuildJobRun materializes it on the
// worker through the same BuildRun path a local run uses.
type JobSpec struct {
	// ID is the deterministic sweep job identity (sweep.JobID). The
	// coordinator deduplicates and shards by it.
	ID string `json:"id"`
	// Label is the human-readable form used in progress and logs.
	Label string `json:"label"`
	// Prefetcher and Trace annotate store records (and quarantine
	// records for jobs that never built); the run itself is described
	// by Run. Prefetcher is the variant name, Trace the RunSpec's
	// trace key.
	Prefetcher string `json:"prefetcher"`
	Trace      string `json:"trace"`
	// Run is the declarative description of the simulation. The
	// coordinator validates it structurally at submit; the worker
	// builds and executes it.
	Run runspec.RunSpec `json:"run"`
}

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's self-chosen label (host/pid by default).
	Name string `json:"name"`
	// Parallel is the worker's local pool size, reported for /status.
	Parallel int `json:"parallel"`
}

// RegisterResponse assigns the worker its identity and lease terms.
type RegisterResponse struct {
	// WorkerID is the coordinator-assigned identity for this
	// registration; every later request carries it.
	WorkerID string `json:"worker_id"`
	// LeaseTTL is how long a leased batch stays owned without a report
	// or heartbeat before it is re-leased to another worker.
	LeaseTTL time.Duration `json:"lease_ttl_ns"`
}

// LeaseRequest asks for a batch of jobs.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
	// Max bounds the batch size; <= 0 means the coordinator default.
	Max int `json:"max"`
}

// LeaseResponse grants a batch (possibly empty when nothing is
// pending).
type LeaseResponse struct {
	// LeaseID identifies the batch in reports; empty when no jobs were
	// granted.
	LeaseID string    `json:"lease_id,omitempty"`
	Jobs    []JobSpec `json:"jobs,omitempty"`
	// Drained is true when the run is over: at least one job was
	// submitted, every job has resolved, and no client has submitted
	// or polled for the coordinator's drain grace. An idle worker may
	// use it to decide to exit; it is deliberately NOT the
	// instantaneous Status.Drained, which is transiently true between
	// a client's sequential submission waves.
	Drained bool `json:"drained"`
}

// ReportRequest streams completed records back and doubles as the
// lease heartbeat: any report (even an empty one) from a worker
// extends the deadline of its outstanding leases.
type ReportRequest struct {
	WorkerID string         `json:"worker_id"`
	LeaseID  string         `json:"lease_id"`
	Records  []sweep.Record `json:"records,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// Accepted counts records merged into the store by this report.
	Accepted int `json:"accepted"`
	// Stale counts records for jobs that had already resolved (e.g.
	// re-leased after an expiry and finished elsewhere first).
	Stale int `json:"stale"`
}

// SubmitRequest is the client path: a batch of job specs to resolve.
// Submission is idempotent — known IDs are deduplicated.
type SubmitRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// SubmitResponse summarizes a submission.
type SubmitResponse struct {
	Accepted int `json:"accepted"` // newly queued
	Deduped  int `json:"deduped"`  // already known to this run
	Cached   int `json:"cached"`   // resolved from the store (resume)
}

// ResultsRequest polls for resolved jobs by ID.
type ResultsRequest struct {
	IDs []string `json:"ids"`
}

// ResultsResponse returns records for every requested ID that has
// resolved; Pending counts the rest.
type ResultsResponse struct {
	Records []sweep.Record `json:"records,omitempty"`
	Pending int            `json:"pending"`
}

// WorkerStatus is one worker's row in /status.
type WorkerStatus struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Parallel int       `json:"parallel"`
	Jobs     int       `json:"jobs"` // records merged from this worker
	Leased   int       `json:"leased"`
	LastSeen time.Time `json:"last_seen"`
}

// Status is the coordinator's point-in-time view, served at /status.
type Status struct {
	Submitted   int `json:"submitted"`
	Deduped     int `json:"deduped"`
	Cached      int `json:"cached"`
	Pending     int `json:"pending"`
	Leased      int `json:"leased"`
	Done        int `json:"done"`
	Completed   int `json:"completed"`
	Quarantined int `json:"quarantined"`
	// Expired counts leases that timed out and were re-queued (worker
	// death or stall).
	Expired int `json:"expired"`
	// Workers is sorted by worker ID for deterministic rendering.
	Workers []WorkerStatus `json:"workers,omitempty"`
	Drained bool           `json:"drained"`
}
