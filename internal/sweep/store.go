package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"pmp/internal/sim"
)

// Record statuses.
const (
	// StatusOK marks a job that ran to completion; resume serves it
	// from the store instead of re-running it.
	StatusOK = "ok"
	// StatusQuarantined marks a job that panicked or timed out on
	// every attempt. Resume re-runs quarantined jobs (the failure may
	// have been environmental); if the retry succeeds the appended OK
	// record wins, since the last record per ID takes precedence.
	StatusQuarantined = "quarantined"
)

// Record is one line of the results store: the outcome of one job.
type Record struct {
	ID         string     `json:"id"`
	Label      string     `json:"label"`
	Prefetcher string     `json:"prefetcher,omitempty"`
	Trace      string     `json:"trace,omitempty"`
	Status     string     `json:"status"`
	Err        string     `json:"error,omitempty"`
	Attempts   int        `json:"attempts"`
	WallNS     int64      `json:"wall_ns"`
	Result     sim.Result `json:"result"`
	// Results holds the per-core results of a multicore job (Job.
	// RunMulti); single-core jobs leave it nil, so legacy store bytes
	// are unchanged.
	Results []sim.Result `json:"results,omitempty"`
}

// Store is the persistent append-only JSONL results store. Every
// completed job appends exactly one line; nothing is ever rewritten,
// so a crash can at worst truncate the final line (which Open
// tolerates). The in-memory index keeps the last record per ID.
type Store struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	w        *bufio.Writer
	byID     map[string]Record
	loaded   int // valid records read at Open (resume)
	appended int // records appended by this process
	skipped  int // malformed lines ignored at Open
}

// OpenStore opens (creating directories as needed) the JSONL store at
// path. With resume true, existing records are loaded and will be
// served to matching job IDs; with resume false any existing file is
// truncated and the run starts fresh.
func OpenStore(path string, resume bool) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sweep: store dir: %w", err)
		}
	}
	st := &Store{path: path, byID: map[string]Record{}}
	if resume {
		if err := st.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_APPEND | os.O_WRONLY
	if !resume {
		flags = os.O_CREATE | os.O_TRUNC | os.O_WRONLY
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	st.f = f
	st.w = bufio.NewWriter(f)
	return st, nil
}

// load reads existing records, skipping malformed lines (an
// interrupted write can leave a truncated final line; a resumable
// store must not be poisoned by it).
func (st *Store) load() error {
	f, err := os.Open(st.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: load store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.ID == "" {
			st.skipped++
			continue
		}
		st.byID[rec.ID] = rec // last record per ID wins
		st.loaded++
	}
	return sc.Err()
}

// Lookup returns the last record stored for the ID.
func (st *Store) Lookup(id string) (Record, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	rec, ok := st.byID[id]
	return rec, ok
}

// Append writes one record and flushes it to the OS, so a killed
// process loses at most the line being written.
func (st *Store) Append(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sweep: marshal record: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, err := st.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("sweep: append record: %w", err)
	}
	if err := st.w.Flush(); err != nil {
		return fmt.Errorf("sweep: flush store: %w", err)
	}
	st.byID[rec.ID] = rec
	st.appended++
	return nil
}

// Path returns the store's file path.
func (st *Store) Path() string { return st.path }

// Len returns the number of distinct job IDs indexed.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

// Loaded returns the number of valid records read at Open.
func (st *Store) Loaded() int { return st.loaded }

// Appended returns the number of records appended by this process.
func (st *Store) Appended() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.appended
}

// Skipped returns the number of malformed lines ignored at Open.
func (st *Store) Skipped() int { return st.skipped }

// ManifestPath returns the sibling path the run manifest is written
// to: the store path with its .jsonl suffix (if any) replaced by
// .manifest.json.
func (st *Store) ManifestPath() string {
	return strings.TrimSuffix(st.path, ".jsonl") + ".manifest.json"
}

// Close flushes and closes the underlying file.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f == nil {
		return nil
	}
	ferr := st.w.Flush()
	cerr := st.f.Close()
	st.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
