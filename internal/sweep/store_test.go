package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmp/internal/sim"
)

func TestStoreToleratesTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := st.Append(Record{ID: JobID("p", "t", i, "c"), Status: StatusOK,
			Result: sim.Result{Instructions: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Simulate a crash mid-write: append half a JSON line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"truncat`)
	f.Close()

	st2, err := OpenStore(path, true)
	if err != nil {
		t.Fatalf("resume over truncated store: %v", err)
	}
	defer st2.Close()
	if st2.Loaded() != 3 {
		t.Errorf("loaded %d records, want 3 (truncated line skipped)", st2.Loaded())
	}
	if st2.Skipped() != 1 {
		t.Errorf("skipped %d lines, want 1", st2.Skipped())
	}
}

func TestStoreFreshOpenTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, _ := OpenStore(path, false)
	st.Append(Record{ID: "a", Status: StatusOK})
	st.Close()

	st2, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 0 {
		t.Errorf("fresh open should truncate, found %d records", st2.Len())
	}
	if _, ok := st2.Lookup("a"); ok {
		t.Error("record from the truncated file is still served")
	}
}

func TestStoreLastRecordPerIDWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.jsonl")
	st, _ := OpenStore(path, false)
	st.Append(Record{ID: "a", Status: StatusQuarantined, Err: "boom"})
	st.Append(Record{ID: "a", Status: StatusOK, Result: sim.Result{Cycles: 7}})
	st.Close()

	st2, _ := OpenStore(path, true)
	defer st2.Close()
	rec, ok := st2.Lookup("a")
	if !ok || rec.Status != StatusOK || rec.Result.Cycles != 7 {
		t.Errorf("lookup should return the last appended record, got %+v (ok=%v)", rec, ok)
	}
	if st2.Len() != 1 {
		t.Errorf("index holds %d ids, want 1", st2.Len())
	}
}

func TestStoreCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "dir", "results.jsonl")
	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := os.Stat(path); err != nil {
		t.Errorf("store file not created: %v", err)
	}
}

func TestManifestPathSuffixHandling(t *testing.T) {
	for in, want := range map[string]string{
		"runs/sweep.jsonl": "runs/sweep.manifest.json",
		"runs/sweep":       "runs/sweep.manifest.json",
	} {
		st := &Store{path: in}
		if got := st.ManifestPath(); got != want {
			t.Errorf("ManifestPath(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasSuffix((&Store{path: "x.jsonl"}).ManifestPath(), ".manifest.json") {
		t.Error("manifest path should end in .manifest.json")
	}
}
