// Package sweep is the experiment orchestration subsystem: it turns
// the repository's evaluation — many independent (prefetcher, trace,
// config) simulations spread across experiment tables — from a serial
// loop into a scheduling problem. A Sweep owns a bounded worker pool
// shared by every experiment in the process, deduplicates identical
// jobs by deterministic ID, survives per-job panics and timeouts by
// quarantining the failing job, and (optionally) persists every
// completed result to an append-only JSONL store so an interrupted
// run can be resumed without redoing finished work.
//
// See docs/sweep.md for the job model, store format, resume semantics
// and failure handling.
package sweep

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"pmp/internal/sim"
)

// Job is one unit of work: a single deterministic simulation. Two
// jobs with the same ID are assumed interchangeable — the Sweep runs
// whichever is submitted first and hands every later submitter the
// same ticket — so the ID must capture everything the simulation
// depends on (see JobID).
type Job struct {
	// ID is the deterministic identity of the work (JobID). Required.
	ID string
	// Label is the human-readable form shown by progress reporting,
	// e.g. "pmp/spec06.stream-0".
	Label string
	// Prefetcher and Trace annotate the store record.
	Prefetcher string
	Trace      string
	// Run executes the simulation. It must be deterministic (the same
	// result for the same Job.ID regardless of scheduling) and safe to
	// call from any goroutine. The context is canceled when the sweep
	// is interrupted or the per-job timeout fires; Run may ignore it —
	// the worker stops waiting regardless — but a cooperative Run can
	// use it to stop early.
	Run func(ctx context.Context) sim.Result
	// RunMulti, when set instead of Run, executes a multi-result
	// simulation (one result per core of a multicore run). Exactly one
	// of Run/RunMulti must be set; the results land in Record.Results.
	RunMulti func(ctx context.Context) []sim.Result
}

// Exec is a built, executable form of a run spec: exactly one of Run
// (single-core) or RunMulti (multicore) is set. bench.BuildRun
// produces it; the local pool and remote workers submit it unchanged.
type Exec struct {
	Run      func(ctx context.Context) sim.Result
	RunMulti func(ctx context.Context) []sim.Result
}

// JobID hashes the coordinates of one simulation into a deterministic
// identity: prefetcher name, trace spec name, per-trace record count
// (the scale), and the canonical sim.Config fingerprint (which covers
// warm-up and measure windows along with the whole system geometry).
// Any change to any coordinate yields a new ID, so a results store
// never serves stale results to a reconfigured run.
func JobID(prefetcher, trace string, records int, cfgFingerprint string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v1|pf=%s|trace=%s|records=%d|cfg=%s",
		prefetcher, trace, records, cfgFingerprint)))
	return hex.EncodeToString(h[:8])
}

// PanicError wraps a panic recovered from a job attempt.
type PanicError struct {
	Value any
	Stack string
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Interrupted is the panic value bench-layer helpers use to unwind an
// experiment whose sweep was canceled (SIGINT); cmd surfaces recover
// it at the top of each experiment goroutine.
type Interrupted struct{ Err error }

func (i Interrupted) Error() string { return fmt.Sprintf("sweep interrupted: %v", i.Err) }

// Ticket is the future for one submitted job. Tickets are shared:
// submitting an ID already known to the sweep returns the original
// ticket.
type Ticket struct {
	job    Job
	done   chan struct{}
	rec    Record
	err    error
	cached bool
}

// Wait blocks until the job resolves. It returns the store record
// (status StatusOK or StatusQuarantined — a quarantined job is a
// result, not an error, so one poisoned job never aborts a sweep) and
// a non-nil error only when the sweep was canceled before the job
// could run.
func (t *Ticket) Wait() (Record, error) {
	<-t.done
	return t.rec, t.err
}

// Done returns a channel closed when the job resolves.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Cached reports whether the result was served from the results store
// (resume) rather than executed by this run.
func (t *Ticket) Cached() bool {
	<-t.done
	return t.cached
}
