package sweep

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time view of a sweep's progress.
type Snapshot struct {
	Submitted   int // unique jobs accepted
	Deduped     int // submissions folded into an existing ticket
	Done        int // resolved (completed + cached + quarantined + canceled)
	Cached      int // served from the results store
	Completed   int // executed to completion this run
	Quarantined int
	Canceled    int
	StoreErrors int
	Running     []string // labels of currently executing jobs
	Elapsed     time.Duration
}

// ProgressFunc receives periodic snapshots; final is true for the
// last report, issued from Close.
type ProgressFunc func(snap Snapshot, final bool)

// Snapshot returns the sweep's current counters.
func (s *Sweep) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	running := make([]string, 0, len(s.running))
	for _, label := range s.running {
		running = append(running, label)
	}
	sort.Strings(running)
	return Snapshot{
		Submitted:   s.submitted,
		Deduped:     s.deduped,
		Done:        s.done,
		Cached:      s.cached,
		Completed:   s.completed,
		Quarantined: s.quarantined,
		Canceled:    s.canceled,
		StoreErrors: s.storeErrs,
		Running:     running,
		Elapsed:     time.Since(s.started),
	}
}

// progressLoop reports at the configured interval until Close.
func (s *Sweep) progressLoop() {
	defer s.progressWG.Done()
	tick := time.NewTicker(s.opts.ProgressEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.opts.Progress(s.Snapshot(), false)
		case <-s.progressStop:
			return
		}
	}
}

// WriterProgress returns a ProgressFunc rendering one status line per
// report to w (normally stderr): jobs done/total, throughput, ETA and
// the currently running job labels.
func WriterProgress(w io.Writer) ProgressFunc {
	return func(snap Snapshot, final bool) {
		var sb strings.Builder
		fmt.Fprintf(&sb, "sweep: %d/%d done", snap.Done, snap.Submitted)
		if snap.Cached > 0 {
			fmt.Fprintf(&sb, " · %d cached", snap.Cached)
		}
		if snap.Quarantined > 0 {
			fmt.Fprintf(&sb, " · %d quarantined", snap.Quarantined)
		}
		if snap.Canceled > 0 {
			fmt.Fprintf(&sb, " · %d canceled", snap.Canceled)
		}
		if secs := snap.Elapsed.Seconds(); secs > 0 && snap.Completed > 0 {
			rate := float64(snap.Completed) / secs
			fmt.Fprintf(&sb, " · %.1f jobs/s", rate)
			if left := snap.Submitted - snap.Done; left > 0 && !final {
				eta := time.Duration(float64(left) / rate * float64(time.Second)).Round(time.Second)
				fmt.Fprintf(&sb, " · ETA %v", eta)
			}
		}
		if len(snap.Running) > 0 && !final {
			show := snap.Running
			const maxShow = 4
			extra := ""
			if len(show) > maxShow {
				extra = fmt.Sprintf(" +%d", len(show)-maxShow)
				show = show[:maxShow]
			}
			fmt.Fprintf(&sb, " · running: %s%s", strings.Join(show, ", "), extra)
		}
		if final {
			sb.WriteString(" · finished")
		}
		fmt.Fprintln(w, sb.String())
	}
}
