package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Manifest summarizes one sweep run. Close writes it next to the
// results store (Store.ManifestPath) when the sweep is store-backed.
type Manifest struct {
	RunID       string    `json:"run_id"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
	WallSeconds float64   `json:"wall_seconds"`
	Workers     int       `json:"workers"`

	Submitted   int `json:"submitted"` // unique jobs
	Deduped     int `json:"deduped"`   // duplicate submissions folded away
	Completed   int `json:"completed"` // executed this run
	Cached      int `json:"cached"`    // served from the store (resume)
	Quarantined int `json:"quarantined"`
	Canceled    int `json:"canceled"`
	StoreErrors int `json:"store_errors,omitempty"`

	// QuarantinedJobs lists the labels of jobs that were quarantined,
	// so a failed sweep is diagnosable from the manifest alone.
	QuarantinedJobs []string `json:"quarantined_jobs,omitempty"`

	Store string `json:"store,omitempty"`

	// Distributed-mode fields, populated by the pmpsweepd coordinator
	// (internal/sweep/remote) so a sharded run is auditable after the
	// fact: where it ran, how many workers registered, and how many
	// records each worker contributed to the merged store.
	Coordinator   string         `json:"coordinator,omitempty"`
	RemoteWorkers int            `json:"remote_workers,omitempty"`
	WorkerJobs    map[string]int `json:"worker_jobs,omitempty"`
}

// manifest assembles the final manifest from the sweep's counters.
func (s *Sweep) manifest() Manifest {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Manifest{
		RunID:       fmt.Sprintf("%x", s.started.UnixNano()),
		StartedAt:   s.started,
		FinishedAt:  now,
		WallSeconds: now.Sub(s.started).Seconds(),
		Workers:     s.opts.Workers,
		Submitted:   s.submitted,
		Deduped:     s.deduped,
		Completed:   s.completed,
		Cached:      s.cached,
		Quarantined: s.quarantined,
		Canceled:    s.canceled,
		StoreErrors: s.storeErrs,
	}
	if s.quarantined > 0 {
		for _, t := range s.tickets {
			select {
			case <-t.done:
				if t.err == nil && t.rec.Status == StatusQuarantined {
					m.QuarantinedJobs = append(m.QuarantinedJobs, t.rec.Label)
				}
			default:
			}
		}
		sort.Strings(m.QuarantinedJobs)
	}
	return m
}

// WriteManifest writes the manifest as indented JSON. Besides Close,
// the remote coordinator uses it to persist a distributed run's
// manifest next to the merged store.
func WriteManifest(path string, m Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
