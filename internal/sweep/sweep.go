package sweep

import (
	"context"
	"errors"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"pmp/internal/sim"
)

// Options configures a Sweep. The zero value is usable: GOMAXPROCS
// workers, two attempts per job, no timeout, no store, no progress.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means runtime.GOMAXPROCS(0).
	// The pool is shared by every experiment submitting to the sweep,
	// so a small sweep's jobs interleave with a large one's instead of
	// queuing behind a per-experiment barrier.
	Workers int
	// MaxAttempts bounds retries for a job that panics or times out;
	// <= 0 means 2. After the last failed attempt the job is
	// quarantined, not fatal.
	MaxAttempts int
	// JobTimeout bounds one attempt's wall time; 0 disables. A timed
	// out attempt is retried; the abandoned attempt's goroutine is
	// detached (a trace-driven simulation cannot be preempted).
	JobTimeout time.Duration
	// Store, when non-nil, receives one record per completed job and
	// serves already-completed jobs back to Submit (resume).
	Store *Store
	// Progress, when non-nil, receives periodic one-line status
	// reports (done/total, throughput, ETA, running job labels).
	Progress ProgressFunc
	// ProgressEvery is the reporting interval; <= 0 means 5s.
	ProgressEvery time.Duration
}

// Sweep schedules jobs onto a bounded shared worker pool. Construct
// with New; submit with Submit; finish with Close.
type Sweep struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	store  *Store

	mu      sync.Mutex
	cond    *sync.Cond
	backlog []*Ticket // FIFO of unstarted work (unbounded; submission never blocks)
	tickets map[string]*Ticket
	running map[string]string // job ID -> label
	closing bool
	started time.Time

	// counters (guarded by mu)
	submitted   int // unique jobs accepted
	deduped     int // submissions resolved to an existing ticket
	done        int // resolved jobs (ok + cached + quarantined)
	cached      int // served from the store without running
	completed   int // ran to completion with StatusOK this run
	quarantined int
	canceled    int
	storeErrs   int

	wg           sync.WaitGroup // workers
	progressStop chan struct{}
	progressWG   sync.WaitGroup
}

// New builds a Sweep and starts its workers. The context governs the
// whole run: canceling it (e.g. on SIGINT) stops dispatching, resolves
// pending tickets with the cancellation error, and lets Close return
// promptly after flushing the store.
func New(ctx context.Context, opts Options) *Sweep {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 2
	}
	if opts.ProgressEvery <= 0 {
		opts.ProgressEvery = 5 * time.Second
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Sweep{
		opts:    opts,
		ctx:     sctx,
		cancel:  cancel,
		store:   opts.Store,
		tickets: map[string]*Ticket{},
		running: map[string]string{},
		started: time.Now(),
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Wake blocked workers when the context dies so they can drain
	// the queue as canceled.
	go func() {
		<-sctx.Done()
		s.cond.Broadcast()
	}()
	if opts.Progress != nil {
		s.progressStop = make(chan struct{})
		s.progressWG.Add(1)
		go s.progressLoop()
	}
	return s
}

// Submit enqueues a job and returns its ticket. Submission never
// blocks on the pool. An ID the sweep has already seen returns the
// existing ticket (cross-experiment deduplication: F8/F9/F10 all
// needing "pmp on trace X" costs one simulation). An ID whose result
// is in the store resolves immediately without running.
func (s *Sweep) Submit(j Job) *Ticket {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tickets[j.ID]; ok {
		s.deduped++
		return t
	}
	t := &Ticket{job: j, done: make(chan struct{})}
	s.tickets[j.ID] = t
	s.submitted++
	if s.store != nil {
		if rec, ok := s.store.Lookup(j.ID); ok && rec.Status == StatusOK {
			t.rec = rec
			t.cached = true
			s.cached++
			s.done++
			close(t.done)
			return t
		}
	}
	if s.ctx.Err() != nil || s.closing {
		t.err = context.Cause(s.ctx)
		if t.err == nil {
			t.err = errors.New("sweep: closed")
		}
		s.canceled++
		s.done++
		close(t.done)
		return t
	}
	s.backlog = append(s.backlog, t)
	s.cond.Signal()
	return t
}

// worker pulls jobs off the shared FIFO until the sweep closes.
func (s *Sweep) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.backlog) == 0 && !s.closing && s.ctx.Err() == nil {
			s.cond.Wait()
		}
		if len(s.backlog) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.backlog[0]
		s.backlog = s.backlog[1:]
		if s.ctx.Err() != nil {
			t.err = s.ctx.Err()
			s.canceled++
			s.done++
			close(t.done)
			s.mu.Unlock()
			continue
		}
		s.running[t.job.ID] = t.job.Label
		s.mu.Unlock()

		s.runJob(t)
	}
}

// runJob executes one job with bounded retries, quarantining it if
// every attempt panics or times out. The failing job is recorded in
// the store; the rest of the sweep is unaffected.
func (s *Sweep) runJob(t *Ticket) {
	start := time.Now()
	var rec Record
	var tErr error
	var lastErr error
	attempts := 0
	for attempts < s.opts.MaxAttempts {
		attempts++
		res, multi, err := s.attempt(t.job)
		if err == nil {
			rec = s.record(t.job, StatusOK, "", attempts, start)
			rec.Result = res
			rec.Results = multi
			break
		}
		if errors.Is(err, context.Canceled) && s.ctx.Err() != nil {
			tErr = err
			break
		}
		lastErr = err
	}
	persist := false
	s.mu.Lock()
	delete(s.running, t.job.ID)
	switch {
	case tErr != nil:
		t.err = tErr
		s.canceled++
	case rec.Status == StatusOK:
		t.rec = rec
		s.completed++
		persist = true
	default:
		rec = s.record(t.job, StatusQuarantined, lastErr.Error(), attempts, start)
		t.rec = rec
		s.quarantined++
		persist = true
	}
	s.done++
	close(t.done)
	s.mu.Unlock()

	if persist && s.store != nil {
		if err := s.store.Append(t.rec); err != nil {
			s.mu.Lock()
			s.storeErrs++
			s.mu.Unlock()
		}
	}
}

func (s *Sweep) record(j Job, status, errMsg string, attempts int, start time.Time) Record {
	return Record{
		ID:         j.ID,
		Label:      j.Label,
		Prefetcher: j.Prefetcher,
		Trace:      j.Trace,
		Status:     status,
		Err:        errMsg,
		Attempts:   attempts,
		WallNS:     time.Since(start).Nanoseconds(),
	}
}

// attempt runs the job once in its own goroutine so a panic is
// recoverable and a stuck simulation can be abandoned on timeout.
// Multicore jobs (RunMulti) return their per-core results in the
// second value; single-core jobs in the first.
func (s *Sweep) attempt(j Job) (sim.Result, []sim.Result, error) {
	ctx := s.ctx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	type outcome struct {
		res   sim.Result
		multi []sim.Result
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: &PanicError{Value: p, Stack: string(debug.Stack())}}
			}
		}()
		if j.RunMulti != nil {
			ch <- outcome{multi: j.RunMulti(ctx)}
			return
		}
		ch <- outcome{res: j.Run(ctx)}
	}()
	select {
	case o := <-ch:
		return o.res, o.multi, o.err
	case <-ctx.Done():
		// Timeout or sweep cancellation: abandon the attempt. The
		// goroutine is left to finish (and be discarded) on its own.
		return sim.Result{}, nil, ctx.Err()
	}
}

// Close drains the queue (or, if the context was canceled, resolves
// the remainder as canceled), stops the workers and progress
// reporting, writes the run manifest next to the store, closes the
// store, and returns the manifest.
func (s *Sweep) Close() Manifest {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.cancel()
	if s.progressStop != nil {
		close(s.progressStop)
		s.progressWG.Wait()
	}
	m := s.manifest()
	if s.store != nil {
		m.Store = s.store.Path()
		_ = WriteManifest(s.store.ManifestPath(), m)
		_ = s.store.Close()
	}
	if s.opts.Progress != nil {
		s.opts.Progress(s.Snapshot(), true)
	}
	return m
}
