package sweep

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pmp/internal/sim"
)

func canonRecord(id string, attempts int, wallNS int64) Record {
	return Record{
		ID: id, Label: "pf/" + id, Prefetcher: "pf", Trace: id,
		Status: StatusOK, Attempts: attempts, WallNS: wallNS,
		Result: sim.Result{Instructions: 100, Cycles: 50},
	}
}

// The canonical dump is what the distributed-smoke gate diffs: it must
// be sorted by ID, resolve to the last record per ID, and zero the
// fields that legitimately differ between runs (attempts, wall time).
func TestWriteCanonicalNormalizes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Out of order, with a superseded record for "b".
	for _, rec := range []Record{
		canonRecord("c", 1, 111),
		canonRecord("b", 1, 222),
		canonRecord("a", 2, 333),
		canonRecord("b", 3, 444),
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	var buf bytes.Buffer
	if err := WriteCanonical(&buf, path); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("canonical dump has %d lines, want 3:\n%s", len(lines), &buf)
	}
	for i, id := range []string{"a", "b", "c"} {
		if !strings.Contains(lines[i], fmt.Sprintf("%q:%q", "id", id)) {
			t.Errorf("line %d is not job %q: %s", i, id, lines[i])
		}
		if !strings.Contains(lines[i], `"attempts":0`) || !strings.Contains(lines[i], `"wall_ns":0`) {
			t.Errorf("line %d leaks run-specific fields: %s", i, lines[i])
		}
	}
}

// Two stores whose records arrived in different orders with different
// timing print identical canonical dumps — the distributed-vs-serial
// comparison this exists for.
func TestWriteCanonicalOrderInsensitive(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, order []string, wall int64) string {
		path := filepath.Join(dir, name)
		st, err := OpenStore(path, false)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range order {
			if err := st.Append(canonRecord(id, 1+i%2, wall+int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
		return path
	}
	p1 := write("serial.jsonl", []string{"a", "b", "c", "d"}, 100)
	p2 := write("merged.jsonl", []string{"d", "b", "a", "c"}, 9000)

	var b1, b2 bytes.Buffer
	if err := WriteCanonical(&b1, p1); err != nil {
		t.Fatal(err)
	}
	if err := WriteCanonical(&b2, p2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Errorf("canonical dumps differ:\nserial:\n%s\nmerged:\n%s", &b1, &b2)
	}
}

// ReadRecords matches Open's resolution: last record per ID, malformed
// tail skipped, without taking the store's write lock.
func TestReadRecordsSkipsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}
	st.Append(canonRecord("a", 1, 1))
	st.Append(canonRecord("b", 1, 1))
	st.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"c","status":"ok"` + "\n") // truncated write
	f.Close()

	recs, skipped, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || skipped != 1 {
		t.Fatalf("got %d records, %d skipped; want 2 records, 1 skipped", len(recs), skipped)
	}
}

// Store.Append is the multi-writer merge point of the distributed
// coordinator (every worker report lands here concurrently): no lost
// records, no interleaved lines.
func TestStoreConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	st, err := OpenStore(path, false)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := canonRecord(fmt.Sprintf("w%d-%03d", w, i), 1, int64(i))
				if err := st.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// Every record must be visible in-process (Lookup)...
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			id := fmt.Sprintf("w%d-%03d", w, i)
			if _, ok := st.Lookup(id); !ok {
				t.Fatalf("record %s lost from the in-memory index", id)
			}
		}
	}
	st.Close()

	// ...and on disk, with no torn lines.
	recs, skipped, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d malformed lines after concurrent appends", skipped)
	}
	if len(recs) != writers*perWriter {
		t.Errorf("store resolved %d records, want %d", len(recs), writers*perWriter)
	}
}
