package mem

import (
	"math/rand"
	"testing"
)

// randomAnchored returns a random anchored pattern (bit 0 always set).
func randomAnchored(rng *rand.Rand, length int) BitVector {
	p := NewBitVector(length)
	p.Set(0)
	for i := 1; i < length; i++ {
		if rng.Intn(3) == 0 {
			p.Set(i)
		}
	}
	return p
}

// checkRowsEqual compares every counter of a row across the two
// implementations.
func checkRowsEqual(t *testing.T, scalar *CounterTable, packed *PackedCounterTable, row int) {
	t.Helper()
	for j := 0; j < scalar.RowLen(); j++ {
		if s, p := scalar.RowCounter(row, j), packed.RowCounter(row, j); s != p {
			t.Fatalf("row %d counter %d: scalar %d, packed %d\nscalar %s\npacked %s",
				row, j, s, p, scalar.Row(row), packed.RowString(row))
		}
	}
}

// TestPackedMatchesScalar drives identical random operation streams
// through the scalar and packed tables and demands bit-identical
// state and outputs at every step: counters, halve points, time
// counters, sums, and threshold-compare masks.
func TestPackedMatchesScalar(t *testing.T) {
	geometries := []struct{ entries, length, bits int }{
		{4, 64, 5},  // paper default OPT geometry (12 lanes/word)
		{4, 64, 4},  // headline packing: 16 counters per word
		{4, 16, 4},  // PPT-style short rows
		{2, 64, 1},  // degenerate 1-bit counters (saturate immediately)
		{2, 7, 3},   // row shorter than one word, partial last word
		{2, 64, 16}, // widest packable counters, 4 lanes/word
		{2, 33, 6},  // 10 lanes/word, ragged tail
	}
	for _, g := range geometries {
		rng := rand.New(rand.NewSource(int64(g.entries*1000 + g.length*10 + g.bits)))
		scalar := NewCounterTable(g.entries, g.length, g.bits)
		packed := NewPackedCounterTable(g.entries, g.length, g.bits)
		if packed.MaxCounter() != scalar.MaxCounter() {
			t.Fatalf("%+v: MaxCounter mismatch", g)
		}
		for step := 0; step < 4000; step++ {
			row := rng.Intn(g.entries)
			switch rng.Intn(10) {
			case 0:
				scalar.HalveRow(row)
				packed.HalveRow(row)
			case 1:
				p := randomAnchored(rng, g.length)
				scalar.MergeRowNoHalve(row, p)
				packed.MergeRowNoHalve(row, p)
			case 2:
				thr1 := uint32(rng.Intn(int(scalar.MaxCounter()) + 3))
				thr2 := uint32(rng.Intn(int(scalar.MaxCounter()) + 3))
				sg1, sg2 := scalar.CompareRow(row, thr1, thr2)
				pg1, pg2 := packed.CompareRow(row, thr1, thr2)
				if sg1 != pg1 || sg2 != pg2 {
					t.Fatalf("%+v row %d CompareRow(%d, %d): scalar (%#x, %#x), packed (%#x, %#x)\nrow: %s",
						g, row, thr1, thr2, sg1, sg2, pg1, pg2, scalar.Row(row))
				}
			default:
				p := randomAnchored(rng, g.length)
				sh := scalar.MergeRow(row, p)
				ph := packed.MergeRow(row, p)
				if sh != ph {
					t.Fatalf("%+v row %d step %d: halved: scalar %v, packed %v", g, row, step, sh, ph)
				}
			}
			if st, pt := scalar.RowTime(row), packed.RowTime(row); st != pt {
				t.Fatalf("%+v row %d: RowTime: scalar %d, packed %d", g, row, st, pt)
			}
			if ss, ps := scalar.RowSum(row), packed.RowSum(row); ss != ps {
				t.Fatalf("%+v row %d: RowSum: scalar %d, packed %d", g, row, ss, ps)
			}
			checkRowsEqual(t, scalar, packed, row)
		}
		scalar.Reset()
		packed.Reset()
		for row := 0; row < g.entries; row++ {
			checkRowsEqual(t, scalar, packed, row)
		}
	}
}

// FuzzPackedMerge feeds arbitrary pattern/threshold streams through
// both implementations of one row.
func FuzzPackedMerge(f *testing.F) {
	f.Add(uint64(0xFFFF_FFFF_0000_0001), uint8(3), uint8(1), uint8(2))
	f.Add(uint64(1), uint8(20), uint8(0), uint8(31))
	f.Add(^uint64(0), uint8(200), uint8(31), uint8(31))
	f.Fuzz(func(t *testing.T, patternBits uint64, merges, thr1, thr2 uint8) {
		const length, bits = 64, 5
		scalar := NewCounterTable(1, length, bits)
		packed := NewPackedCounterTable(1, length, bits)
		p := NewBitVector(length)
		for o := 0; o < length; o++ {
			if patternBits&(1<<uint(o)) != 0 {
				p.Set(o)
			}
		}
		p.Set(0) // patterns must be anchored
		for i := 0; i < int(merges%64)+1; i++ {
			if sh, ph := scalar.MergeRow(0, p), packed.MergeRow(0, p); sh != ph {
				t.Fatalf("merge %d: halved: scalar %v, packed %v", i, sh, ph)
			}
		}
		sg1, sg2 := scalar.CompareRow(0, uint32(thr1), uint32(thr2))
		pg1, pg2 := packed.CompareRow(0, uint32(thr1), uint32(thr2))
		if sg1 != pg1 || sg2 != pg2 {
			t.Fatalf("CompareRow(%d, %d): scalar (%#x, %#x), packed (%#x, %#x)",
				thr1, thr2, sg1, sg2, pg1, pg2)
		}
		for j := 0; j < length; j++ {
			if s, pk := scalar.RowCounter(0, j), packed.RowCounter(0, j); s != pk {
				t.Fatalf("counter %d: scalar %d, packed %d", j, s, pk)
			}
		}
		if ss, ps := scalar.RowSum(0), packed.RowSum(0); ss != ps {
			t.Fatalf("RowSum: scalar %d, packed %d", ss, ps)
		}
	})
}

func TestPackedPanicsMirrorScalar(t *testing.T) {
	packed := NewPackedCounterTable(1, 8, 4)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	short := NewBitVector(4)
	short.Set(0)
	mustPanic("length mismatch", func() { packed.MergeRow(0, short) })
	unanchored := NewBitVector(8)
	unanchored.Set(3)
	mustPanic("unanchored", func() { packed.MergeRow(0, unanchored) })
	mustPanic("bits too wide", func() { NewPackedCounterTable(1, 8, MaxPackedBits+1) })
	mustPanic("counter index", func() { packed.RowCounter(0, 8) })
}

func TestNewPatternTableSelectsPacked(t *testing.T) {
	if _, ok := NewPatternTable(4, 64, 5).(*PackedCounterTable); !ok {
		t.Error("5-bit counters should select the packed table")
	}
	if _, ok := NewPatternTable(4, 64, MaxPackedBits+1).(*CounterTable); !ok {
		t.Error("overwide counters should fall back to the scalar table")
	}
}

// --- micro-benchmarks: scalar vs packed hot operations ---

func benchPatterns(length int) []BitVector {
	rng := rand.New(rand.NewSource(7))
	ps := make([]BitVector, 64)
	for i := range ps {
		ps[i] = randomAnchored(rng, length)
	}
	return ps
}

func BenchmarkMergeRowScalar(b *testing.B) {
	t := NewCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.MergeRow(i&63, ps[i&63])
	}
}

func BenchmarkMergeRowPacked(b *testing.B) {
	t := NewPackedCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.MergeRow(i&63, ps[i&63])
	}
}

func BenchmarkHalveRowScalar(b *testing.B) {
	t := NewCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	for i := 0; i < 64; i++ {
		t.MergeRowNoHalve(i, ps[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.HalveRow(i & 63)
	}
}

func BenchmarkHalveRowPacked(b *testing.B) {
	t := NewPackedCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	for i := 0; i < 64; i++ {
		t.MergeRowNoHalve(i, ps[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.HalveRow(i & 63)
	}
}

func BenchmarkCompareRowScalar(b *testing.B) {
	t := NewCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	for i := 0; i < 256; i++ {
		t.MergeRow(i&63, ps[i&63])
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		g1, g2 := t.CompareRow(i&63, 3, 1)
		sink += g1 ^ g2
	}
	benchSink = sink
}

func BenchmarkCompareRowPacked(b *testing.B) {
	t := NewPackedCounterTable(64, 64, 5)
	ps := benchPatterns(64)
	for i := 0; i < 256; i++ {
		t.MergeRow(i&63, ps[i&63])
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		g1, g2 := t.CompareRow(i&63, 3, 1)
		sink += g1 ^ g2
	}
	benchSink = sink
}

var benchSink uint64
