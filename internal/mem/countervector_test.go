package mem

import (
	"math"
	"testing"
	"testing/quick"
)

// The paper's Fig 6a example: merging anchored (1,0,1,0,0,0,0,1) into
// counter vector (3,0,3,0,3,0,0,0) yields (4,0,4,0,3,0,0,1).
func TestMergePaperExample(t *testing.T) {
	cv := NewCounterVector(8, 5)
	cv.c = []uint32{3, 0, 3, 0, 3, 0, 0, 0}
	p := BitVectorOf(8, 0, 2, 7)
	if halved := cv.Merge(p); halved {
		t.Fatal("unexpected halving")
	}
	want := []uint32{4, 0, 4, 0, 3, 0, 0, 1}
	got := cv.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge result = %v, want %v", got, want)
		}
	}
}

// The paper's halving example: with time counter max 3,
// (4,0,4,0,3,0,0,1) saturated is halved to (2,0,2,0,1,0,0,0).
// With a 2-bit counter, max = 3; merging until time hits max halves.
func TestHalvingPaperExample(t *testing.T) {
	cv := NewCounterVector(8, 5)
	cv.c = []uint32{4, 0, 4, 0, 3, 0, 0, 1}
	cv.Halve()
	want := []uint32{2, 0, 2, 0, 1, 0, 0, 0}
	got := cv.Snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Halve result = %v, want %v", got, want)
		}
	}
}

func TestMergeSaturationTriggersHalve(t *testing.T) {
	cv := NewCounterVector(4, 2) // max = 3
	p := BitVectorOf(4, 0, 1)
	if cv.Merge(p) {
		t.Error("first merge should not halve")
	}
	if cv.Merge(p) {
		t.Error("second merge should not halve")
	}
	if !cv.Merge(p) {
		t.Error("third merge should saturate the time counter and halve")
	}
	if cv.Time() != 1 { // 3 halved
		t.Errorf("time after halve = %d, want 1", cv.Time())
	}
}

func TestMergeRejectsUnanchored(t *testing.T) {
	cv := NewCounterVector(8, 5)
	defer func() {
		if recover() == nil {
			t.Error("merging pattern with clear trigger bit should panic")
		}
	}()
	cv.Merge(BitVectorOf(8, 1, 2))
}

func TestFrequency(t *testing.T) {
	cv := NewCounterVector(4, 5)
	if cv.Frequency(1) != 0 {
		t.Error("untrained vector should have zero frequency")
	}
	cv.c = []uint32{4, 2, 0, 1}
	// Paper §IV-B AFE example: frequencies (-, 2/4, 0, 1/4).
	if got := cv.Frequency(1); got != 0.5 {
		t.Errorf("Frequency(1) = %v, want 0.5", got)
	}
	if got := cv.Frequency(3); got != 0.25 {
		t.Errorf("Frequency(3) = %v, want 0.25", got)
	}
	if got := cv.Frequency(0); got != 1.0 {
		t.Errorf("Frequency(0) = %v, want 1", got)
	}
}

func TestSumExcludesTrigger(t *testing.T) {
	cv := NewCounterVector(4, 5)
	cv.c = []uint32{4, 2, 0, 1}
	if got := cv.Sum(); got != 3 {
		t.Errorf("Sum() = %d, want 3", got)
	}
}

// Property: merging never lets a counter exceed its saturation value and
// the time counter stays the max element.
func TestMergeInvariants(t *testing.T) {
	f := func(patterns []uint16) bool {
		cv := NewCounterVector(16, 4)
		for _, raw := range patterns {
			p := BitVector{bits: uint64(raw) | 1, n: 16} // force anchored
			cv.Merge(p)
			for i, c := range cv.Snapshot() {
				if c > cv.Max() {
					return false
				}
				if uint32(c) > cv.Time() && i != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: halving approximately preserves frequencies — the paper's
// footnote 1. For counters >= 2 the relative error of freq after a halve
// is bounded by 1/c + 1/t.
func TestHalvePreservesFrequencies(t *testing.T) {
	cv := NewCounterVector(8, 8)
	cv.c = []uint32{200, 100, 50, 3, 0, 255, 17, 60}
	before := make([]float64, 8)
	for i := range before {
		before[i] = cv.Frequency(i)
	}
	cv.Halve()
	for i := range before {
		after := cv.Frequency(i)
		if before[i] == 0 {
			if after != 0 {
				t.Errorf("offset %d: zero frequency became %v", i, after)
			}
			continue
		}
		if math.Abs(after-before[i]) > 0.02 {
			t.Errorf("offset %d: frequency drifted %v -> %v", i, before[i], after)
		}
	}
}

func TestStorageBits(t *testing.T) {
	// Paper Table III: OPT counter vector is 64 x 5b = 320 bits.
	cv := NewCounterVector(64, 5)
	if got := cv.StorageBits(); got != 320 {
		t.Errorf("StorageBits() = %d, want 320", got)
	}
	// PPT coarse vector: 32 x 5b = 160 bits.
	cv = NewCounterVector(32, 5)
	if got := cv.StorageBits(); got != 160 {
		t.Errorf("StorageBits() = %d, want 160", got)
	}
}

func TestCounterVectorString(t *testing.T) {
	cv := NewCounterVector(4, 5)
	cv.c = []uint32{4, 0, 3, 1}
	if got := cv.String(); got != "(4, 0, 3, 1)" {
		t.Errorf("String() = %q", got)
	}
}

func TestCounterVectorReset(t *testing.T) {
	cv := NewCounterVector(4, 5)
	cv.Merge(BitVectorOf(4, 0, 2))
	cv.Reset()
	for i := 0; i < 4; i++ {
		if cv.At(i) != 0 {
			t.Fatalf("Reset left counter %d = %d", i, cv.At(i))
		}
	}
}

func TestCounterVectorConstructorPanics(t *testing.T) {
	for _, tc := range []struct{ n, b int }{{0, 5}, {65, 5}, {8, 0}, {8, 32}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCounterVector(%d,%d) did not panic", tc.n, tc.b)
				}
			}()
			NewCounterVector(tc.n, tc.b)
		}()
	}
}
