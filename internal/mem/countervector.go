package mem

import (
	"fmt"
	"strings"
)

// CounterVector is PMP's merged-pattern representation: one saturating
// counter per (anchored) line offset. Element 0 corresponds to the
// trigger offset itself and is the Time Counter — it increments on every
// merge, so counter[i]/counter[0] is the access frequency of offset i
// over the last observation window (paper §IV-A).
//
// When the time counter saturates at its maximum, every element is
// halved. This ages out stale history while (almost) preserving the
// frequencies the AFE extraction scheme reads.
type CounterVector struct {
	c    []uint32
	max  uint32 // saturation value, (1<<bits)-1
	bits int    // counter width in bits (for storage accounting)
}

// NewCounterVector returns a zeroed vector of `length` counters that are
// `bits` wide (bits in [1, 31]).
func NewCounterVector(length, bits int) *CounterVector {
	if length < 1 || length > 64 {
		panic("mem: counter vector length must be in [1, 64]")
	}
	if bits < 1 || bits > 31 {
		panic("mem: counter bits must be in [1, 31]")
	}
	return &CounterVector{
		c:    make([]uint32, length),
		max:  1<<uint(bits) - 1,
		bits: bits,
	}
}

// Len returns the number of counters.
func (cv *CounterVector) Len() int { return len(cv.c) }

// Bits returns the per-counter width in bits.
func (cv *CounterVector) Bits() int { return cv.bits }

// Max returns the saturation value of each counter.
func (cv *CounterVector) Max() uint32 { return cv.max }

// At returns counter i.
func (cv *CounterVector) At(i int) uint32 { return cv.c[i] }

// Time returns the time counter (element 0).
func (cv *CounterVector) Time() uint32 { return cv.c[0] }

// Merge accumulates an *anchored* bit-vector pattern into the vector:
// every set offset's counter is incremented (saturating). The pattern
// must have been anchored so bit 0 is the trigger offset; merging a
// pattern whose bit 0 is clear is rejected in order to catch missed
// anchoring at the call site.
//
// If the time counter saturates, the whole vector is halved after the
// merge and Merge reports halved=true.
func (cv *CounterVector) Merge(p BitVector) (halved bool) {
	if p.Len() != len(cv.c) {
		panic("mem: pattern length does not match counter vector")
	}
	if p.Bits()&1 == 0 {
		panic("mem: merging unanchored pattern (trigger bit clear)")
	}
	b := p.Bits()
	for i := range cv.c {
		if b&(1<<uint(i)) != 0 && cv.c[i] < cv.max {
			cv.c[i]++
		}
	}
	if cv.c[0] >= cv.max {
		cv.Halve()
		return true
	}
	return false
}

// MergeNoHalve accumulates a pattern like Merge but never halves: when
// the time counter saturates, counters simply freeze at their ceiling.
// This exists for the halving-mechanism ablation; frozen vectors stop
// adapting to phase changes.
func (cv *CounterVector) MergeNoHalve(p BitVector) {
	if p.Len() != len(cv.c) {
		panic("mem: pattern length does not match counter vector")
	}
	if p.Bits()&1 == 0 {
		panic("mem: merging unanchored pattern (trigger bit clear)")
	}
	b := p.Bits()
	for i := range cv.c {
		if b&(1<<uint(i)) != 0 && cv.c[i] < cv.max {
			cv.c[i]++
		}
	}
}

// Halve divides every counter by two (floor). Frequencies
// counter[i]/time are preserved up to integer truncation.
func (cv *CounterVector) Halve() {
	for i := range cv.c {
		cv.c[i] >>= 1
	}
}

// Reset zeroes all counters (same idiom as CounterTable.Reset: one
// clear, not an element loop).
func (cv *CounterVector) Reset() {
	clear(cv.c)
}

// Frequency returns counter[i]/time as a float in [0, +inf); it returns
// 0 when the vector has never been trained (time == 0). The trigger
// element (i == 0) always has frequency 1 once trained.
func (cv *CounterVector) Frequency(i int) float64 {
	t := cv.c[0]
	if t == 0 {
		return 0
	}
	return float64(cv.c[i]) / float64(t)
}

// Sum returns the sum of all counters excluding the trigger element,
// used by the ARE extraction scheme.
func (cv *CounterVector) Sum() uint64 {
	var s uint64
	for _, v := range cv.c[1:] {
		s += uint64(v)
	}
	return s
}

// Snapshot returns a copy of the raw counters (for tests and analysis).
func (cv *CounterVector) Snapshot() []uint32 {
	out := make([]uint32, len(cv.c))
	copy(out, cv.c)
	return out
}

// StorageBits returns the hardware cost of the vector in bits.
func (cv *CounterVector) StorageBits() int { return len(cv.c) * cv.bits }

// String renders the counters like the paper's examples: "(4, 0, 4, 0)".
func (cv *CounterVector) String() string {
	parts := make([]string, len(cv.c))
	for i, v := range cv.c {
		parts[i] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
