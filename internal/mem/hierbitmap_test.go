package mem

import (
	"math/rand"
	"testing"
)

func TestHierBitmapBasics(t *testing.T) {
	b := NewHierBitmap(200)
	if !b.Empty() || b.Count() != 0 {
		t.Fatal("new bitmap not empty")
	}
	if _, ok := b.First(); ok {
		t.Fatal("First on empty bitmap reported a live index")
	}
	for _, i := range []int{0, 63, 64, 127, 199} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("Test(%d) false after Set", i)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	if i, ok := b.First(); !ok || i != 0 {
		t.Fatalf("First = %d,%v, want 0,true", i, ok)
	}
	b.Clear(0)
	if i, ok := b.First(); !ok || i != 63 {
		t.Fatalf("First after Clear(0) = %d,%v, want 63,true", i, ok)
	}
	// Iterate in order via NextAfter.
	want := []int{63, 64, 127, 199}
	var got []int
	for i, ok := b.First(); ok; i, ok = b.NextAfter(i) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iteration = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("iteration = %v, want %v", got, want)
		}
	}
}

func TestHierBitmapFillAndReset(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130, MaxHierBitmap} {
		b := NewHierBitmap(n)
		b.Fill()
		if b.Count() != n {
			t.Fatalf("n=%d: Count after Fill = %d", n, b.Count())
		}
		if i, ok := b.First(); !ok || i != 0 {
			t.Fatalf("n=%d: First after Fill = %d,%v", n, i, ok)
		}
		// The tail word must not contain bits past the universe.
		if n < MaxHierBitmap {
			last := n - 1
			b.Clear(last)
			if b.Count() != n-1 {
				t.Fatalf("n=%d: Count after Clear(last) = %d", n, b.Count())
			}
		}
		b.Reset()
		if !b.Empty() {
			t.Fatalf("n=%d: not empty after Reset", n)
		}
	}
}

// TestHierBitmapVsReference drives random operations against a plain
// boolean-slice model.
func TestHierBitmapVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 300
	b := NewHierBitmap(n)
	ref := make([]bool, n)
	refFirstAfter := func(after int) (int, bool) {
		for i := after + 1; i < n; i++ {
			if ref[i] {
				return i, true
			}
		}
		return 0, false
	}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			ref[i] = true
		case 1:
			b.Clear(i)
			ref[i] = false
		case 2:
			if b.Test(i) != ref[i] {
				t.Fatalf("step %d: Test(%d) = %v, want %v", step, i, b.Test(i), ref[i])
			}
		}
		if gi, gok := b.First(); true {
			wi, wok := refFirstAfter(-1)
			if gok != wok || (gok && gi != wi) {
				t.Fatalf("step %d: First = %d,%v, want %d,%v", step, gi, gok, wi, wok)
			}
		}
		j := rng.Intn(n)
		gi, gok := b.NextAfter(j)
		wi, wok := refFirstAfter(j)
		if gok != wok || (gok && gi != wi) {
			t.Fatalf("step %d: NextAfter(%d) = %d,%v, want %d,%v", step, j, gi, gok, wi, wok)
		}
	}
}

func TestHierBitmapBounds(t *testing.T) {
	for _, n := range []int{0, -1, MaxHierBitmap + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHierBitmap(%d) did not panic", n)
				}
			}()
			NewHierBitmap(n)
		}()
	}
	b := NewHierBitmap(10)
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			b.Set(i)
		}()
	}
}
