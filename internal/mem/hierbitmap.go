package mem

import "math/bits"

// HierBitmap is a two-level bitmap over a fixed universe of up to 4096
// slots: a summary word with one bit per 64-slot lane word, plus the
// lane words themselves. Minimum-index lookup is O(1) — one CLZ on the
// summary, one CLZ on the selected lane word — and every mutation is a
// couple of masked OR/AND-NOT operations, so the structure serves as an
// allocation-free priority index (SupraX-style, SNIPPETS §9.1): bit i
// stands for "slot/priority i is live" and First finds the minimum in
// two instructions regardless of population.
//
// Bits are stored MSB-first (index 0 is the most significant bit of
// word 0) so that the minimum index is found with
// bits.LeadingZeros64 — the hardware CLZ idiom the hierarchical queue
// literature is built on — rather than a software loop.
type HierBitmap struct {
	summary uint64
	words   []uint64
	n       int
}

// MaxHierBitmap is the largest universe a HierBitmap supports: 64 lane
// words of 64 bits under a single summary word.
const MaxHierBitmap = 64 * 64

// NewHierBitmap returns an empty bitmap over indices [0, n). n must be
// in [1, MaxHierBitmap].
func NewHierBitmap(n int) HierBitmap {
	if n < 1 || n > MaxHierBitmap {
		panic("mem: hierarchical bitmap universe must be in [1, 4096]")
	}
	return HierBitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (b *HierBitmap) Len() int { return b.n }

// bitOf maps index i to its (word, MSB-first mask) pair.
func bitOf(i int) (int, uint64) { return i >> 6, 1 << uint(63-i&63) }

// Set marks index i live.
//
//pmp:hotpath
func (b *HierBitmap) Set(i int) {
	b.check(i)
	w, m := bitOf(i)
	b.words[w] |= m
	b.summary |= 1 << uint(63-w)
}

// Clear unmarks index i.
//
//pmp:hotpath
func (b *HierBitmap) Clear(i int) {
	b.check(i)
	w, m := bitOf(i)
	b.words[w] &^= m
	if b.words[w] == 0 {
		b.summary &^= 1 << uint(63-w)
	}
}

// Test reports whether index i is live.
//
//pmp:hotpath
func (b *HierBitmap) Test(i int) bool {
	b.check(i)
	w, m := bitOf(i)
	return b.words[w]&m != 0
}

func (b *HierBitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic("mem: hierarchical bitmap index out of range")
	}
}

// First returns the minimum live index, or (0, false) when the bitmap
// is empty. Two CLZ instructions, no loops.
//
//pmp:hotpath
func (b *HierBitmap) First() (int, bool) {
	if b.summary == 0 {
		return 0, false
	}
	w := bits.LeadingZeros64(b.summary)
	return w<<6 + bits.LeadingZeros64(b.words[w]), true
}

// NextAfter returns the minimum live index strictly greater than i, or
// (0, false) when none exists. It is the closure-free iteration
// primitive: start with First, then call NextAfter until false.
//
//pmp:hotpath
func (b *HierBitmap) NextAfter(i int) (int, bool) {
	if i < 0 {
		return b.First()
	}
	if i >= b.n-1 {
		return 0, false
	}
	w, m := bitOf(i + 1)
	// Bits at or below (MSB-first: less significant than) index i+1's
	// position within its word.
	if rest := b.words[w] & (m | (m - 1)); rest != 0 {
		return w<<6 + bits.LeadingZeros64(rest), true
	}
	// Later words via the summary.
	sm := uint64(1) << uint(63-w)
	rest := b.summary & (sm - 1)
	if rest == 0 {
		return 0, false
	}
	w = bits.LeadingZeros64(rest)
	return w<<6 + bits.LeadingZeros64(b.words[w]), true
}

// Count returns the number of live indices.
func (b *HierBitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no index is live.
//
//pmp:hotpath
func (b *HierBitmap) Empty() bool { return b.summary == 0 }

// Reset clears every index.
func (b *HierBitmap) Reset() {
	b.summary = 0
	clear(b.words)
}

// Fill marks every index in the universe live.
func (b *HierBitmap) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
		b.summary |= 1 << uint(63-i)
	}
	// Trim the tail word to the universe.
	if tail := b.n & 63; tail != 0 {
		b.words[len(b.words)-1] = ^(^uint64(0) >> uint(tail))
	}
}
