package mem

// PatternTable is the row-oriented contract PMP's pattern tables are
// accessed through: merge an anchored pattern into a row, read the
// row's time counter or counter sum, and compare every counter of a row
// against integer thresholds in one pass. Two implementations exist —
// the scalar CounterTable (one uint32 per counter, reference semantics)
// and the bit-parallel PackedCounterTable (64/bits counters per word,
// SWAR operations) — and they are required to be bit-identical for the
// same operation stream; the differential fuzz tests enforce it.
type PatternTable interface {
	// Entries returns the number of rows.
	Entries() int
	// RowLen returns the number of counters per row.
	RowLen() int
	// Bits returns the per-counter width in bits.
	Bits() int
	// MaxCounter returns the saturation ceiling, (1<<Bits)-1.
	MaxCounter() uint32

	// MergeRow accumulates an anchored pattern into row i (saturating
	// increment of every selected counter) and halves the whole row when
	// the time counter saturates, reporting whether it did.
	MergeRow(i int, p BitVector) (halved bool)
	// MergeRowNoHalve accumulates like MergeRow but freezes counters at
	// their ceiling instead of halving (the aging ablation).
	MergeRowNoHalve(i int, p BitVector)
	// HalveRow divides every counter of row i by two (floor).
	HalveRow(i int)

	// RowTime returns row i's time counter (counter 0).
	RowTime(i int) uint32
	// RowSum returns the sum of row i's counters excluding the trigger
	// counter (ARE extraction).
	RowSum(i int) uint64
	// RowCounter returns counter j of row i.
	RowCounter(i, j int) uint32
	// CompareRow returns offset masks of row i's counters clearing each
	// threshold (counter >= thr, bit j set for counter j). Thresholds
	// above MaxCounter yield empty masks.
	CompareRow(i int, thr1, thr2 uint32) (ge1, ge2 uint64)

	// Reset zeroes every counter in the table.
	Reset()
	// StorageBits returns the hardware cost of the table in bits.
	StorageBits() int
}

// NewPatternTable returns the fastest PatternTable for the geometry:
// the bit-parallel packed table whenever the counter width packs at
// least four lanes to a word (bits <= MaxPackedBits, every valid PMP
// configuration), the scalar table otherwise.
func NewPatternTable(entries, length, bits int) PatternTable {
	if bits <= MaxPackedBits {
		return NewPackedCounterTable(entries, length, bits)
	}
	return NewCounterTable(entries, length, bits)
}

// The scalar CounterTable implements PatternTable by delegating to its
// CounterVector rows; it is the reference the packed implementation is
// differentially fuzzed against.

// RowLen implements PatternTable.
func (t *CounterTable) RowLen() int { return t.rows[0].Len() }

// Bits implements PatternTable.
func (t *CounterTable) Bits() int { return t.bits }

// MaxCounter implements PatternTable.
func (t *CounterTable) MaxCounter() uint32 { return t.rows[0].Max() }

// MergeRow implements PatternTable.
//
//pmp:hotpath
func (t *CounterTable) MergeRow(i int, p BitVector) bool { return t.rows[i].Merge(p) }

// MergeRowNoHalve implements PatternTable.
//
//pmp:hotpath
func (t *CounterTable) MergeRowNoHalve(i int, p BitVector) { t.rows[i].MergeNoHalve(p) }

// HalveRow implements PatternTable.
//
//pmp:hotpath
func (t *CounterTable) HalveRow(i int) { t.rows[i].Halve() }

// RowTime implements PatternTable.
//
//pmp:hotpath
func (t *CounterTable) RowTime(i int) uint32 { return t.rows[i].Time() }

// RowSum implements PatternTable.
//
//pmp:hotpath
func (t *CounterTable) RowSum(i int) uint64 { return t.rows[i].Sum() }

// RowCounter implements PatternTable.
func (t *CounterTable) RowCounter(i, j int) uint32 { return t.rows[i].At(j) }

// CompareRow implements PatternTable (scalar reference loop).
//
//pmp:hotpath
func (t *CounterTable) CompareRow(i int, thr1, thr2 uint32) (ge1, ge2 uint64) {
	cv := &t.rows[i]
	for j := 0; j < cv.Len(); j++ {
		c := cv.At(j)
		if c >= thr1 {
			ge1 |= 1 << uint(j)
		}
		if c >= thr2 {
			ge2 |= 1 << uint(j)
		}
	}
	return ge1, ge2
}
