package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// BitVector is a spatial memory-access pattern over a region of up to 64
// lines, exactly as used by SMS-family prefetchers: bit i is set when
// line offset i of the region has been accessed. The zero value is an
// empty pattern of length 0; construct with NewBitVector.
//
// BitVector is a small value type; methods that modify it use pointer
// receivers, pure queries use value receivers.
type BitVector struct {
	bits uint64
	n    int // pattern length (number of valid offsets), 1..64
}

// NewBitVector returns an empty pattern of the given length. Length must
// be in [1, 64].
func NewBitVector(length int) BitVector {
	if length < 1 || length > 64 {
		panic("mem: bit vector length must be in [1, 64]")
	}
	return BitVector{n: length}
}

// BitVectorOf builds a pattern of the given length with the listed
// offsets set. Offsets outside [0, length) panic.
func BitVectorOf(length int, offsets ...int) BitVector {
	v := NewBitVector(length)
	for _, o := range offsets {
		v.Set(o)
	}
	return v
}

// Len returns the pattern length.
func (v BitVector) Len() int { return v.n }

// Bits returns the raw bit set. Only the low Len() bits are meaningful.
func (v BitVector) Bits() uint64 { return v.bits }

// Set marks offset o as accessed.
func (v *BitVector) Set(o int) {
	v.check(o)
	v.bits |= 1 << uint(o)
}

// Clear unmarks offset o.
func (v *BitVector) Clear(o int) {
	v.check(o)
	v.bits &^= 1 << uint(o)
}

// Test reports whether offset o is set.
func (v BitVector) Test(o int) bool {
	v.check(o)
	return v.bits&(1<<uint(o)) != 0
}

func (v BitVector) check(o int) {
	if o < 0 || o >= v.n {
		panic(fmt.Sprintf("mem: offset %d out of range for %d-bit pattern", o, v.n))
	}
}

// PopCount returns the number of set offsets.
func (v BitVector) PopCount() int { return bits.OnesCount64(v.bits) }

// Empty reports whether no offset is set.
func (v BitVector) Empty() bool { return v.bits == 0 }

// Anchor returns the pattern left-circular-shifted so that the trigger
// offset becomes position 0 (paper Fig 6a). Anchoring makes patterns
// from different regions comparable: position k of the result means
// "k lines after the trigger, modulo the region".
func (v BitVector) Anchor(trigger int) BitVector {
	v.check(trigger)
	return v.RotateLeft(trigger)
}

// Unanchor inverts Anchor for the given trigger offset.
func (v BitVector) Unanchor(trigger int) BitVector {
	v.check(trigger)
	return v.RotateLeft(-trigger)
}

// RotateLeft rotates the pattern left by k positions within its length
// (negative k rotates right). Bits never cross the pattern length.
func (v BitVector) RotateLeft(k int) BitVector {
	n := v.n
	k %= n
	if k < 0 {
		k += n
	}
	if k == 0 || n == 64 {
		if n == 64 {
			return BitVector{bits: bits.RotateLeft64(v.bits, -k), n: n}
		}
		return v
	}
	mask := uint64(1)<<uint(n) - 1
	b := v.bits & mask
	out := (b>>uint(k) | b<<uint(n-k)) & mask
	return BitVector{bits: out, n: n}
}

// Or returns the union of two equal-length patterns.
func (v BitVector) Or(o BitVector) BitVector {
	v.sameLen(o)
	return BitVector{bits: v.bits | o.bits, n: v.n}
}

// And returns the intersection of two equal-length patterns.
func (v BitVector) And(o BitVector) BitVector {
	v.sameLen(o)
	return BitVector{bits: v.bits & o.bits, n: v.n}
}

func (v BitVector) sameLen(o BitVector) {
	if v.n != o.n {
		panic("mem: bit vector length mismatch")
	}
}

// Fold ORs together groups of `group` adjacent bits, producing a pattern
// of length Len()/group. This is the coarse reduction used by the PMP
// PC Pattern Table (paper Fig 6d): 10100001 with group 2 folds to 1101.
func (v BitVector) Fold(group int) BitVector {
	if group < 1 || v.n%group != 0 {
		panic("mem: fold group must divide pattern length")
	}
	if group == 1 {
		return v
	}
	out := NewBitVector(v.n / group)
	for i := 0; i < v.n; i += group {
		seg := v.bits >> uint(i) & (1<<uint(group) - 1)
		if seg != 0 {
			out.Set(i / group)
		}
	}
	return out
}

// Offsets returns the set offsets in ascending order.
func (v BitVector) Offsets() []int {
	out := make([]int, 0, v.PopCount())
	b := v.bits
	for b != 0 {
		o := bits.TrailingZeros64(b)
		out = append(out, o)
		b &= b - 1
	}
	return out
}

// String renders the pattern LSB-first (offset 0 leftmost), e.g. "1011"
// for offsets {0,2,3} with length 4, matching the paper's examples.
func (v BitVector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
