package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrLinePage(t *testing.T) {
	a := Addr(0x12345)
	if got := a.Line(); got != 0x12340 {
		t.Errorf("Line() = %#x, want 0x12340", uint64(got))
	}
	if got := a.Page(); got != 0x12000 {
		t.Errorf("Page() = %#x, want 0x12000", uint64(got))
	}
	if got := a.LineID(); got != 0x12345>>6 {
		t.Errorf("LineID() = %#x", got)
	}
	if got := a.PageID(); got != 0x12 {
		t.Errorf("PageID() = %#x, want 0x12", got)
	}
	if got := a.PageOffset(); got != (0x345 >> 6) {
		t.Errorf("PageOffset() = %d, want %d", got, 0x345>>6)
	}
}

func TestNewRegionValid(t *testing.T) {
	for _, size := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		r := NewRegion(size)
		if r.Bytes() != size {
			t.Errorf("Bytes() = %d, want %d", r.Bytes(), size)
		}
		if r.Lines() != size/LineBytes {
			t.Errorf("Lines() = %d, want %d", r.Lines(), size/LineBytes)
		}
	}
}

func TestNewRegionInvalid(t *testing.T) {
	for _, size := range []int{0, 32, 63, 100, 8192, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRegion(%d) did not panic", size)
				}
			}()
			NewRegion(size)
		}()
	}
}

func TestRegionOffsetAndBase(t *testing.T) {
	r := NewRegion(4096)
	a := Addr(0x7fff_1234_5678)
	if got, want := r.Offset(a), a.PageOffset(); got != want {
		t.Errorf("Offset = %d, want %d", got, want)
	}
	if got, want := r.Base(a), a.Page(); got != want {
		t.Errorf("Base = %#x, want %#x", uint64(got), uint64(want))
	}

	r2 := NewRegion(1024) // 16 lines
	a2 := Addr(1024*5 + 64*3 + 17)
	if got := r2.Offset(a2); got != 3 {
		t.Errorf("Offset = %d, want 3", got)
	}
	if got := r2.ID(a2); got != 5 {
		t.Errorf("ID = %d, want 5", got)
	}
}

// Property: LineAddr is a right inverse of (ID, Offset) for any address.
func TestRegionRoundTrip(t *testing.T) {
	for _, size := range []int{1024, 2048, 4096} {
		r := NewRegion(size)
		f := func(raw uint64) bool {
			a := Addr(raw).Line()
			back := r.LineAddr(r.ID(a), r.Offset(a))
			return back == a
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("region %d: %v", size, err)
		}
	}
}
