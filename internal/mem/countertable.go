package mem

// CounterTable is a dense 2D array of saturating counters: `entries`
// CounterVector rows of equal length sharing one contiguous backing
// slice. PMP's pattern tables are thousands of short vectors that are
// indexed on every trigger access; storing them as individual
// heap-allocated *CounterVector values (one pointer dereference plus
// one cache miss per probe, plus per-vector allocator overhead) costs
// measurably more than a flat array. The table hands out stable
// *CounterVector views into the backing store, so all existing
// CounterVector operations (Merge, Halve, Frequency, ...) work
// unchanged on rows.
type CounterTable struct {
	rows []CounterVector
	back []uint32
	bits int
}

// NewCounterTable returns a zeroed table of `entries` rows, each a
// CounterVector of `length` counters `bits` wide. Bounds match
// NewCounterVector (length in [1, 64], bits in [1, 31]); entries must
// be positive.
func NewCounterTable(entries, length, bits int) *CounterTable {
	if entries < 1 {
		panic("mem: counter table needs at least one entry")
	}
	if length < 1 || length > 64 {
		panic("mem: counter vector length must be in [1, 64]")
	}
	if bits < 1 || bits > 31 {
		panic("mem: counter bits must be in [1, 31]")
	}
	back := make([]uint32, entries*length)
	rows := make([]CounterVector, entries)
	maxVal := uint32(1)<<uint(bits) - 1
	for i := range rows {
		rows[i] = CounterVector{
			c:    back[i*length : (i+1)*length : (i+1)*length],
			max:  maxVal,
			bits: bits,
		}
	}
	return &CounterTable{rows: rows, back: back, bits: bits}
}

// Entries returns the number of rows.
//
//pmp:hotpath
func (t *CounterTable) Entries() int { return len(t.rows) }

// Row returns the i'th row as a live view: mutations through the
// returned vector update the table. The pointer is stable for the
// table's lifetime.
//
//pmp:hotpath
func (t *CounterTable) Row(i int) *CounterVector { return &t.rows[i] }

// Reset zeroes every counter in the table.
func (t *CounterTable) Reset() {
	clear(t.back)
}

// StorageBits returns the hardware cost of the whole table in bits.
func (t *CounterTable) StorageBits() int { return len(t.back) * t.bits }
