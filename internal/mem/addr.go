// Package mem provides the low-level address arithmetic, bit-vector and
// counter-vector primitives shared by the simulator and by every
// prefetcher in this repository.
//
// Terminology follows the PMP paper (MICRO 2022):
//
//   - A cache line is 64 bytes.
//   - A memory region is a 4KB (by default) aligned block of 64 lines.
//   - The offset of an access is the index of its line within its region.
//   - The trigger offset of a region is the offset of the first access
//     observed in that region.
package mem

// Fundamental geometry constants. Line size is fixed at 64 bytes across
// the whole repository (as in ChampSim); region size is configurable per
// prefetcher but defaults to a 4KB page.
const (
	LineBytes     = 64   // bytes per cache line
	LineShift     = 6    // log2(LineBytes)
	PageBytes     = 4096 // bytes per page; also the default region size
	PageShift     = 12   // log2(PageBytes)
	LinesPerPage  = PageBytes / LineBytes
	DefaultRegion = PageBytes
	// PageOffsetBits is the width of a line offset within a page
	// (log2(LinesPerPage)), the shift used when packing a PC with a
	// trigger offset into one key.
	PageOffsetBits = PageShift - LineShift
)

// Addr is a byte-granular virtual address.
type Addr uint64

// Line returns the cache-line address (line-aligned byte address).
func (a Addr) Line() Addr { return a &^ (LineBytes - 1) }

// LineID returns the line number (address >> LineShift).
func (a Addr) LineID() uint64 { return uint64(a) >> LineShift }

// Page returns the page-aligned byte address.
func (a Addr) Page() Addr { return a &^ (PageBytes - 1) }

// PageID returns the page number (address >> PageShift).
func (a Addr) PageID() uint64 { return uint64(a) >> PageShift }

// PageOffset returns the line offset of the address within its 4KB page,
// in [0, LinesPerPage).
func (a Addr) PageOffset() int { return int(uint64(a)>>LineShift) & (LinesPerPage - 1) }

// Region describes an aligned power-of-two block of lines used as the
// pattern-tracking granule. A Region value is cheap and immutable.
type Region struct {
	bytes  uint64 // region size in bytes (power of two, >= LineBytes)
	shift  uint   // log2(bytes)
	lines  int    // lines per region
	lshift uint   // log2(lines)
}

// NewRegion returns a Region of the given size in bytes. Size must be a
// power of two between LineBytes and PageBytes; NewRegion panics
// otherwise, since a malformed region is a programming error rather than
// a runtime condition.
func NewRegion(sizeBytes int) Region {
	if sizeBytes < LineBytes || sizeBytes > PageBytes || sizeBytes&(sizeBytes-1) != 0 {
		panic("mem: region size must be a power of two in [64, 4096]")
	}
	shift := uint(0)
	for 1<<shift != sizeBytes {
		shift++
	}
	return Region{
		bytes:  uint64(sizeBytes),
		shift:  shift,
		lines:  sizeBytes / LineBytes,
		lshift: shift - LineShift,
	}
}

// Bytes returns the region size in bytes.
func (r Region) Bytes() int { return int(r.bytes) }

// Shift returns log2 of the region size in bytes.
func (r Region) Shift() int { return int(r.shift) }

// Lines returns the number of cache lines per region (the pattern length).
func (r Region) Lines() int { return r.lines }

// ID returns the region number of an address (address >> log2(size)).
func (r Region) ID(a Addr) uint64 { return uint64(a) >> r.shift }

// Base returns the region-aligned byte address containing a.
func (r Region) Base(a Addr) Addr { return a &^ Addr(r.bytes-1) }

// Offset returns the line offset of a within its region, in [0, Lines()).
func (r Region) Offset(a Addr) int {
	return int(uint64(a)>>LineShift) & (r.lines - 1)
}

// LineAddr reconstructs the line-aligned byte address for the given
// region ID and line offset.
func (r Region) LineAddr(regionID uint64, offset int) Addr {
	return Addr(regionID<<r.shift | uint64(offset)<<LineShift)
}
