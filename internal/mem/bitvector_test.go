package mem

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestBitVectorBasics(t *testing.T) {
	v := NewBitVector(8)
	if !v.Empty() || v.Len() != 8 {
		t.Fatalf("fresh vector not empty or wrong length: %v", v)
	}
	v.Set(0)
	v.Set(2)
	v.Set(3)
	if got := v.String(); got != "10110000" {
		t.Errorf("String() = %q, want 10110000", got)
	}
	if v.PopCount() != 3 {
		t.Errorf("PopCount() = %d, want 3", v.PopCount())
	}
	if !v.Test(2) || v.Test(1) {
		t.Error("Test gave wrong membership")
	}
	v.Clear(2)
	if v.Test(2) {
		t.Error("Clear(2) did not clear")
	}
	if got := v.Offsets(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Errorf("Offsets() = %v, want [0 3]", got)
	}
}

// The paper's Fig 6a example: bit vector (0,1,1,0,1,0,0,0) with trigger
// offset 2 anchors to (1,0,1,0,0,0,0,1).
func TestAnchorPaperExample(t *testing.T) {
	v := BitVectorOf(8, 1, 2, 4)
	anchored := v.Anchor(2)
	want := BitVectorOf(8, 0, 2, 7)
	if anchored != want {
		t.Errorf("Anchor(2) = %v, want %v", anchored, want)
	}
}

func TestAnchorUnanchorRoundTrip(t *testing.T) {
	f := func(raw uint64, trig uint8, lenSel uint8) bool {
		lengths := []int{8, 16, 32, 64}
		n := lengths[int(lenSel)%len(lengths)]
		v := BitVector{bits: raw & (1<<uint(n) - 1), n: n}
		if n == 64 {
			v.bits = raw
		}
		tr := int(trig) % n
		return v.Anchor(tr).Unanchor(tr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: anchoring always moves the trigger bit to position 0 and
// preserves population count.
func TestAnchorInvariants(t *testing.T) {
	f := func(raw uint64, trig uint8) bool {
		n := 64
		v := BitVector{bits: raw, n: n}
		tr := int(trig) % n
		v.Set(tr)
		a := v.Anchor(tr)
		return a.Test(0) && a.PopCount() == v.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateLeft64Path(t *testing.T) {
	v := BitVector{bits: 1, n: 64}
	r := v.RotateLeft(1) // left-circular shift: bit 1 -> position 0? No: offset o moves to o-1
	if !r.Test(63) {
		t.Errorf("RotateLeft(1) of bit0 should wrap to 63, got %v", r.Offsets())
	}
	// Check the semantic matches the <64 path.
	v8 := BitVectorOf(8, 0)
	r8 := v8.RotateLeft(1)
	if !r8.Test(7) {
		t.Errorf("8-bit RotateLeft(1) of bit0 should be bit7, got %v", r8.Offsets())
	}
	v64 := BitVector{bits: 1 << 5, n: 64}
	if got := v64.RotateLeft(5); !got.Test(0) || got.PopCount() != 1 {
		t.Errorf("64-bit RotateLeft(5) wrong: %v", got.Offsets())
	}
}

func TestOrAnd(t *testing.T) {
	a := BitVectorOf(4, 0, 2, 3) // 1011 in paper order
	b := BitVectorOf(4, 0, 1)
	if got := a.Or(b); got != BitVectorOf(4, 0, 1, 2, 3) {
		t.Errorf("Or = %v", got)
	}
	if got := a.And(b); got != BitVectorOf(4, 0) {
		t.Errorf("And = %v", got)
	}
}

// The paper's Fig 6d example: 8-bit vector 10100001 folds (group 2) to 1101.
func TestFoldPaperExample(t *testing.T) {
	v := BitVectorOf(8, 0, 2, 7)
	got := v.Fold(2)
	want := BitVectorOf(4, 0, 1, 3)
	if got != want {
		t.Errorf("Fold(2) = %v, want %v", got, want)
	}
}

func TestFoldGroup1Identity(t *testing.T) {
	v := BitVectorOf(8, 1, 5)
	if v.Fold(1) != v {
		t.Error("Fold(1) should be identity")
	}
}

// Property: a folded bit is set iff at least one source bit in its group
// is set, and popcount never increases.
func TestFoldInvariants(t *testing.T) {
	f := func(raw uint64) bool {
		v := BitVector{bits: raw, n: 64}
		for _, g := range []int{2, 4, 8} {
			fv := v.Fold(g)
			if fv.Len() != 64/g {
				return false
			}
			if fv.PopCount() > v.PopCount() {
				return false
			}
			for i := 0; i < fv.Len(); i++ {
				any := false
				for j := 0; j < g; j++ {
					if v.Test(i*g + j) {
						any = true
					}
				}
				if fv.Test(i) != any {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitVectorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	v := NewBitVector(8)
	mustPanic("NewBitVector(0)", func() { NewBitVector(0) })
	mustPanic("NewBitVector(65)", func() { NewBitVector(65) })
	mustPanic("Set(-1)", func() { v.Set(-1) })
	mustPanic("Set(8)", func() { v.Set(8) })
	mustPanic("Fold(3)", func() { v.Fold(3) })
	mustPanic("length mismatch", func() { v.Or(NewBitVector(4)) })
}

func TestPopCountMatchesStdlib(t *testing.T) {
	f := func(raw uint64) bool {
		v := BitVector{bits: raw, n: 64}
		return v.PopCount() == bits.OnesCount64(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
