package mem

import "testing"

func TestSatInc(t *testing.T) {
	if got := SatInc(uint8(2), 3); got != 3 {
		t.Errorf("SatInc(2, 3) = %d, want 3", got)
	}
	if got := SatInc(uint8(3), 3); got != 3 {
		t.Errorf("SatInc(3, 3) = %d, want 3 (clamped)", got)
	}
	if got := SatInc(uint8(255), 255); got != 255 {
		t.Errorf("SatInc(255, 255) = %d, want 255 (no wrap)", got)
	}
}

func TestSatDec(t *testing.T) {
	if got := SatDec(uint8(1), 0); got != 0 {
		t.Errorf("SatDec(1, 0) = %d, want 0", got)
	}
	if got := SatDec(uint8(0), 0); got != 0 {
		t.Errorf("SatDec(0, 0) = %d, want 0 (no wrap)", got)
	}
	if got := SatDec(int8(-4), -4); got != -4 {
		t.Errorf("SatDec(-4, -4) = %d, want -4 (clamped)", got)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct {
		v, d, min, max, want int8
	}{
		{10, 5, -16, 15, 15},   // clamps high
		{-10, -20, -16, 15, -16}, // clamps low
		{3, 4, -16, 15, 7},     // in range
		{120, 10, -128, 127, 127}, // would overflow int8
		{-120, -10, -128, 127, -128},
	}
	for _, c := range cases {
		if got := SatAdd(c.v, c.d, c.min, c.max); got != c.want {
			t.Errorf("SatAdd(%d, %d, %d, %d) = %d, want %d", c.v, c.d, c.min, c.max, got, c.want)
		}
	}
}
