package mem

import "testing"

// FuzzBitVectorOps cross-checks the rotate/fold/anchor algebra on
// arbitrary inputs.
func FuzzBitVectorOps(f *testing.F) {
	f.Add(uint64(0b1011), 2, 8)
	f.Add(^uint64(0), 63, 64)
	f.Add(uint64(1), 0, 16)

	f.Fuzz(func(t *testing.T, raw uint64, k int, nSel int) {
		lengths := []int{8, 16, 32, 64}
		n := lengths[abs(nSel)%len(lengths)]
		v := BitVector{bits: raw & mask(n), n: n}
		trig := abs(k) % n

		// Rotation preserves population count and composes to identity.
		r := v.RotateLeft(trig)
		if r.PopCount() != v.PopCount() {
			t.Fatalf("rotate changed popcount: %d -> %d", v.PopCount(), r.PopCount())
		}
		if r.RotateLeft(-trig) != v {
			t.Fatal("rotate does not invert")
		}
		// Rotating by the length is the identity.
		if v.RotateLeft(n) != v {
			t.Fatal("full rotation is not identity")
		}
		// Anchoring a vector with the trigger set puts bit 0 on.
		v.Set(trig)
		if !v.Anchor(trig).Test(0) {
			t.Fatal("anchor lost the trigger bit")
		}
		// Fold(2) halves length and ORs pairs.
		fv := v.Fold(2)
		if fv.Len() != n/2 {
			t.Fatalf("fold length %d, want %d", fv.Len(), n/2)
		}
		for i := 0; i < fv.Len(); i++ {
			want := v.Test(2*i) || v.Test(2*i+1)
			if fv.Test(i) != want {
				t.Fatalf("fold bit %d wrong", i)
			}
		}
	})
}

func mask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

func abs(v int) int {
	if v < 0 {
		if v == -v { // MinInt
			return 0
		}
		return -v
	}
	return v
}
