package mem

import (
	"testing"
	"testing/quick"
)

func TestFoldXORRange(t *testing.T) {
	f := func(v uint64) bool {
		for _, b := range []int{1, 5, 6, 12, 16} {
			if FoldXOR(v, b) >= 1<<uint(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFoldXORIdentityForWideBits(t *testing.T) {
	if got := FoldXOR(0xdead, 64); got != 0xdead {
		t.Errorf("FoldXOR(_, 64) = %#x, want identity", got)
	}
	if got := FoldXOR(0xdead, 0); got != 0xdead {
		t.Errorf("FoldXOR(_, 0) = %#x, want identity", got)
	}
}

func TestFoldXORKnown(t *testing.T) {
	// 0b1101_0110 folded to 4 bits: 1101 ^ 0110 = 1011.
	if got := FoldXOR(0xd6, 4); got != 0xb {
		t.Errorf("FoldXOR(0xd6, 4) = %#x, want 0xb", got)
	}
}

func TestMix64Distributes(t *testing.T) {
	// Consecutive inputs should land in different low-bit buckets most of
	// the time; a weak mixer would alias heavily.
	buckets := map[uint64]int{}
	for i := uint64(0); i < 1024; i++ {
		buckets[Mix64(i)&63]++
	}
	if len(buckets) < 60 {
		t.Errorf("Mix64 uses only %d/64 buckets over consecutive inputs", len(buckets))
	}
	for b, n := range buckets {
		if n > 48 { // expectation 16, allow generous skew
			t.Errorf("bucket %d grossly overloaded: %d", b, n)
		}
	}
}

func TestHashPCStable(t *testing.T) {
	if HashPC(0x400123, 5) != HashPC(0x400123, 5) {
		t.Error("HashPC not deterministic")
	}
	if HashPC(0x400123, 5) >= 32 {
		t.Error("HashPC out of range")
	}
}
