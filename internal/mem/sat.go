package mem

// Saturating scalar counter helpers. Hardware confidence counters clamp
// at their ceiling instead of wrapping; the satcounter analyzer
// (docs/linting.md) requires fields documented as saturating to be
// updated through these helpers or behind an explicit ceiling
// comparison.

// Integer constrains the saturating helpers to the integer counter
// widths used by the prefetchers.
type Integer interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64
}

// SatInc returns v+1 clamped at max.
func SatInc[T Integer](v, max T) T {
	if v < max {
		return v + 1
	}
	return max
}

// SatDec returns v-1 clamped at min.
func SatDec[T Integer](v, min T) T {
	if v > min {
		return v - 1
	}
	return min
}

// SatAdd returns v+d clamped to [min, max]; d may be negative for
// signed counter types (perceptron weights).
func SatAdd[T Integer](v, d, min, max T) T {
	s := v + d
	if d > 0 && (s > max || s < v) {
		return max
	}
	if d < 0 && (s < min || s > v) {
		return min
	}
	return s
}
