package mem

// FoldXOR reduces a 64-bit value to `bits` bits by XOR-folding
// successive bit groups. This is the standard cheap hardware hash used
// by prefetchers to index small tables (the paper's "hashed PC" is a
// 5-bit folded PC).
func FoldXOR(v uint64, bits int) uint64 {
	if bits <= 0 || bits >= 64 {
		return v
	}
	mask := uint64(1)<<uint(bits) - 1
	var out uint64
	for v != 0 {
		out ^= v & mask
		v >>= uint(bits)
	}
	return out
}

// HashPC returns the `bits`-bit hashed PC feature.
func HashPC(pc uint64, bits int) uint64 { return FoldXOR(pc, bits) }

// Mix64 is a strong 64-bit finalizer (splitmix64) used where the
// software needs well-distributed hashes — e.g. bucketing patterns for
// the analysis tooling — rather than a hardware-plausible fold.
func Mix64(v uint64) uint64 {
	v += 0x9e3779b97f4a7c15
	v = (v ^ v>>30) * 0xbf58476d1ce4e5b9
	v = (v ^ v>>27) * 0x94d049bb133111eb
	return v ^ v>>31
}
