package mem

import (
	"fmt"
	"math/bits"
	"strings"
)

// PackedCounterTable is the bit-parallel implementation of PatternTable:
// every row's saturating counters are packed `64/bits` to a uint64 word
// (16 per word at the 4-bit width, 12 at the paper's default 5 bits), and
// the three per-trigger operations — Merge, Halve, threshold compare —
// run word-at-a-time with SWAR bit tricks instead of per-counter loops:
//
//   - Merge is a carry-save saturating increment: lanes already at their
//     ceiling are detected with an AND-fold across the lane bits, masked
//     out of the pattern-selected increment vector, and the remaining
//     lanes are bumped with a single ADD (no lane can carry into its
//     neighbour because saturated lanes were excluded).
//   - Halve is one shift and one mask per word: (w >> 1) & halveMask,
//     where halveMask clears the bit each lane would otherwise inherit
//     from its upper neighbour.
//   - CompareRow evaluates counter >= threshold for every lane at once
//     using the Hacker's-Delight unsigned SWAR comparison (MSB-decomposed
//     borrow-free subtraction) and returns the selected offsets as a
//     uint64 mask — no per-offset divides; the caller pre-scales its
//     float thresholds to integer lane comparisons once per extraction.
//
// Semantics are bit-identical to the scalar CounterVector path; the
// differential fuzz tests in this package and internal/core prove it.
type PackedCounterTable struct {
	words   []uint64
	entries int
	length  int // counters per row
	bits    int // counter width
	lanes   int // counters per word, 64/bits
	wpr     int // words per row
	max     uint32

	// Per-word-in-row lane masks. All words of a row share the full-word
	// masks except the last, which may hold fewer valid lanes.
	lsb   []uint64 // bit 0 of every valid lane
	msb   []uint64 // bit bits-1 of every valid lane
	halve []uint64 // low bits-1 bits of every valid lane

	// Scatter/gather lookup tables, hoisting the divides the hot loops
	// would otherwise pay per set bit (div by a non-constant is tens of
	// cycles; a 64-entry byte table is one L1 load).
	selWord [64]uint8  // offset -> word index within the row
	selMask [64]uint64 // offset -> lane-LSB select mask within that word
	laneOf  [64]uint8  // bit position within a word -> lane index
}

// MaxPackedBits is the widest counter PackedCounterTable packs. Above
// this width (never reached by valid PMP configurations, which cap
// counters at 16 bits) NewPatternTable falls back to the scalar table.
const MaxPackedBits = 16

// NewPackedCounterTable returns a zeroed table of `entries` rows, each
// `length` counters of `bits` width. Bounds: entries >= 1, length in
// [1, 64], bits in [1, MaxPackedBits].
func NewPackedCounterTable(entries, length, bits int) *PackedCounterTable {
	if entries < 1 {
		panic("mem: counter table needs at least one entry")
	}
	if length < 1 || length > 64 {
		panic("mem: counter vector length must be in [1, 64]")
	}
	if bits < 1 || bits > MaxPackedBits {
		panic("mem: packed counter bits must be in [1, 16]")
	}
	lanes := 64 / bits
	wpr := (length + lanes - 1) / lanes
	t := &PackedCounterTable{
		words:   make([]uint64, entries*wpr),
		entries: entries,
		length:  length,
		bits:    bits,
		lanes:   lanes,
		wpr:     wpr,
		max:     uint32(1)<<uint(bits) - 1,
		lsb:     make([]uint64, wpr),
		msb:     make([]uint64, wpr),
		halve:   make([]uint64, wpr),
	}
	for w := 0; w < wpr; w++ {
		valid := lanes
		if w == wpr-1 {
			valid = length - w*lanes
		}
		var lsb uint64
		for l := 0; l < valid; l++ {
			lsb |= 1 << uint(l*bits)
		}
		t.lsb[w] = lsb
		t.msb[w] = lsb << uint(bits-1)
		t.halve[w] = lsb * (1<<uint(bits-1) - 1)
	}
	for o := 0; o < length; o++ {
		t.selWord[o] = uint8(o / lanes)
		t.selMask[o] = 1 << uint(o%lanes*bits)
	}
	for b := 0; b < 64; b++ {
		t.laneOf[b] = uint8(b / bits)
	}
	return t
}

// Entries implements PatternTable.
func (t *PackedCounterTable) Entries() int { return t.entries }

// RowLen implements PatternTable.
func (t *PackedCounterTable) RowLen() int { return t.length }

// Bits implements PatternTable.
func (t *PackedCounterTable) Bits() int { return t.bits }

// MaxCounter implements PatternTable.
func (t *PackedCounterTable) MaxCounter() uint32 { return t.max }

// LanesPerWord returns the packing density (counters per uint64).
func (t *PackedCounterTable) LanesPerWord() int { return t.lanes }

// row returns the word slice backing row i.
//
//pmp:hotpath
func (t *PackedCounterTable) row(i int) []uint64 {
	return t.words[i*t.wpr : (i+1)*t.wpr : (i+1)*t.wpr]
}

// satLSB returns a mask with bit 0 of every lane of w whose counter sits
// at the saturation ceiling: an AND-fold of the word across its lane
// bits leaves lane-LSB 1 exactly when all `bits` lane bits are 1.
//
//pmp:hotpath
func (t *PackedCounterTable) satLSB(w uint64, wi int) uint64 {
	x := w
	for s := 1; s < t.bits; s++ {
		x &= w >> uint(s)
	}
	return x & t.lsb[wi]
}

// MergeRow implements PatternTable: a SWAR saturating increment of all
// lanes selected by the anchored pattern (~4 ops per word beyond the
// saturation fold), followed by a word-parallel halve when the time
// counter saturates. It reports whether the row was halved.
//
//pmp:hotpath
func (t *PackedCounterTable) MergeRow(i int, p BitVector) bool {
	t.mergeRow(i, p)
	row := t.row(i)
	if uint32(row[0]&uint64(t.max)) >= t.max {
		t.HalveRow(i)
		return true
	}
	return false
}

// MergeRowNoHalve implements PatternTable: like MergeRow but counters
// freeze at their ceiling (the halving-mechanism ablation).
//
//pmp:hotpath
func (t *PackedCounterTable) MergeRowNoHalve(i int, p BitVector) { t.mergeRow(i, p) }

//pmp:hotpath
func (t *PackedCounterTable) mergeRow(i int, p BitVector) {
	if p.Len() != t.length {
		panic("mem: pattern length does not match counter vector")
	}
	if p.Bits()&1 == 0 {
		panic("mem: merging unanchored pattern (trigger bit clear)")
	}
	// Spread the pattern's offset bits into per-word lane-LSB select
	// masks. Patterns are sparse, so iterating set bits beats a dense
	// deposit; the scratch lives on the stack (wpr <= 16).
	var sel [16]uint64
	for bm := p.Bits(); bm != 0; bm &= bm - 1 {
		o := bits.TrailingZeros64(bm)
		sel[t.selWord[o]] |= t.selMask[o]
	}
	row := t.row(i)
	for w := range row {
		s := sel[w]
		if s == 0 {
			continue
		}
		// Carry-save saturating increment: drop saturated lanes from the
		// select mask, then one ADD bumps every remaining lane; no lane
		// can overflow into its neighbour because lanes below the ceiling
		// have headroom by construction.
		row[w] += s &^ t.satLSB(row[w], w)
	}
}

// HalveRow implements PatternTable: every counter is divided by two in
// one shift+mask per word, the mask stopping each lane from inheriting
// the LSB of its upper neighbour.
//
//pmp:hotpath
func (t *PackedCounterTable) HalveRow(i int) {
	row := t.row(i)
	for w := range row {
		row[w] = row[w] >> 1 & t.halve[w]
	}
}

// RowTime implements PatternTable: the time counter is lane 0 of the
// row's first word.
//
//pmp:hotpath
func (t *PackedCounterTable) RowTime(i int) uint32 {
	return uint32(t.row(i)[0] & uint64(t.max))
}

// RowSum implements PatternTable: the sum of all counters excluding the
// trigger lane (ARE extraction). The horizontal add stays in registers.
//
//pmp:hotpath
func (t *PackedCounterTable) RowSum(i int) uint64 {
	var sum uint64
	rem := t.length
	for _, word := range t.row(i) {
		valid := min(rem, t.lanes)
		for l := 0; l < valid; l++ {
			sum += word & uint64(t.max)
			word >>= uint(t.bits)
		}
		rem -= valid
	}
	return sum - uint64(t.RowTime(i))
}

// RowCounter implements PatternTable: the value of counter j of row i.
func (t *PackedCounterTable) RowCounter(i, j int) uint32 {
	if j < 0 || j >= t.length {
		panic("mem: counter index out of range")
	}
	return uint32(t.row(i)[j/t.lanes] >> uint(j%t.lanes*t.bits) & uint64(t.max))
}

// CompareRow implements PatternTable: offset masks of the counters
// clearing each threshold (counter >= thr), one SWAR unsigned-compare
// pass per word per threshold. A threshold above the saturation ceiling
// yields an empty mask (no counter can reach it).
//
//pmp:hotpath
func (t *PackedCounterTable) CompareRow(i int, thr1, thr2 uint32) (ge1, ge2 uint64) {
	row := t.row(i)
	for w, word := range row {
		base := w * t.lanes
		if thr1 <= t.max {
			for f := t.geFlags(word, thr1, w); f != 0; f &= f - 1 {
				ge1 |= 1 << uint(base+int(t.laneOf[bits.TrailingZeros64(f)]))
			}
		}
		if thr2 <= t.max {
			for f := t.geFlags(word, thr2, w); f != 0; f &= f - 1 {
				ge2 |= 1 << uint(base+int(t.laneOf[bits.TrailingZeros64(f)]))
			}
		}
	}
	return ge1, ge2
}

// geFlags returns lane-MSB flags for every valid lane of word w whose
// counter is >= thr: the classic SWAR unsigned comparison. Setting each
// lane's MSB in x and clearing it in y makes the subtraction borrow-free
// across lanes; the lane MSBs of x, y and the difference then decide >=
// by the usual MSB case analysis.
//
//pmp:hotpath
func (t *PackedCounterTable) geFlags(word uint64, thr uint32, w int) uint64 {
	m := t.msb[w]
	y := t.lsb[w] * uint64(thr)
	sx := word & m
	sy := y & m
	diff := (word | m) - (y &^ m)
	return (sx&^sy | ^(sx^sy)&diff) & m
}

// Reset implements PatternTable.
func (t *PackedCounterTable) Reset() { clear(t.words) }

// StorageBits implements PatternTable: the hardware cost is the counter
// payload, not the host representation's padding.
func (t *PackedCounterTable) StorageBits() int { return t.entries * t.length * t.bits }

// RowString renders row i like CounterVector.String, for tests and
// debugging.
func (t *PackedCounterTable) RowString(i int) string {
	parts := make([]string, t.length)
	for j := range parts {
		parts[j] = fmt.Sprint(t.RowCounter(i, j))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
