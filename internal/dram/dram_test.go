package dram

import "testing"

func cfg() Config {
	return Config{Channels: 1, TransferMTps: 3200, BusBytes: 8, CoreClockMHz: 4000, LatencyCycles: 80}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Channels: 0, TransferMTps: 1, BusBytes: 1, CoreClockMHz: 1},
		{Channels: 1, TransferMTps: 0, BusBytes: 1, CoreClockMHz: 1},
		{Channels: 1, TransferMTps: 1, BusBytes: 0, CoreClockMHz: 1},
		{Channels: 1, TransferMTps: 1, BusBytes: 1, CoreClockMHz: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func TestTransferCycles(t *testing.T) {
	// 64B line / 8B bus = 8 transfers; 4000MHz/3200MT/s = 1.25 cyc each
	// => 10 cycles.
	if got := cfg().TransferCycles(); got != 10 {
		t.Errorf("TransferCycles = %d, want 10", got)
	}
	// 800 MT/s: 8 * 4000/800 = 40 cycles.
	c := cfg()
	c.TransferMTps = 800
	if got := c.TransferCycles(); got != 40 {
		t.Errorf("TransferCycles(800) = %d, want 40", got)
	}
}

func TestAccessLatencyAndQueueing(t *testing.T) {
	d := New(cfg())
	// First access at cycle 0: transfer 10 + latency 80 = 90.
	if got := d.Access(0, 0, true); got != 90 {
		t.Errorf("first access completes at %d, want 90", got)
	}
	// Second access at cycle 0 queues behind the first transfer:
	// starts at 10, completes at 10+10+80 = 100.
	if got := d.Access(1, 0, true); got != 100 {
		t.Errorf("queued access completes at %d, want 100", got)
	}
	// An access far in the future sees an idle channel.
	if got := d.Access(2, 1000, true); got != 1090 {
		t.Errorf("idle access completes at %d, want 1090", got)
	}
}

func TestChannelsIndependent(t *testing.T) {
	c := cfg()
	c.Channels = 2
	d := New(c)
	// Lines 0 and 1 map to different channels; both start immediately.
	if got := d.Access(0, 0, true); got != 90 {
		t.Errorf("ch0 completes at %d, want 90", got)
	}
	if got := d.Access(1, 0, true); got != 90 {
		t.Errorf("ch1 completes at %d, want 90 (independent channel)", got)
	}
}

func TestStats(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0, true) // warm-up access, stats off
	d.EnableStats(true)
	d.Access(1, 0, true)
	d.Access(2, 0, false)
	s := d.Stats()
	if s.Requests != 2 || s.DemandRequests != 1 || s.PrefetchRequests != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.BusyCycles != 20 {
		t.Errorf("busy = %d, want 20", s.BusyCycles)
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Error("ResetStats should zero counters")
	}
}

func TestReset(t *testing.T) {
	d := New(cfg())
	d.Access(0, 0, true)
	d.Reset()
	if got := d.Access(0, 0, true); got != 90 {
		t.Errorf("after Reset access completes at %d, want 90", got)
	}
}

func TestBandwidthScalesThroughput(t *testing.T) {
	// Saturating a slow channel should finish much later than a fast one.
	finish := func(mtps int) uint64 {
		c := cfg()
		c.TransferMTps = mtps
		d := New(c)
		var done uint64
		for i := 0; i < 100; i++ {
			done = d.Access(uint64(i), 0, true)
		}
		return done
	}
	slow, fast := finish(800), finish(3200)
	if slow <= fast*3 {
		t.Errorf("800MT/s (%d) should be ~4x slower than 3200MT/s (%d)", slow, fast)
	}
}
