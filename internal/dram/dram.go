// Package dram models main memory as a set of bandwidth-limited
// channels. Each line transfer occupies a channel for a fixed number of
// core cycles derived from the configured transfer rate (MT/s), on top
// of a fixed access latency — enough to reproduce the paper's bandwidth
// sensitivity study (Fig 12a) and the 4-core bandwidth contention that
// motivates PMP-Limit.
package dram

import "fmt"

// Config describes the memory system.
type Config struct {
	Channels      int    // independent channels (1 single-core, 2 4-core)
	TransferMTps  int    // transfer rate in mega-transfers/second (e.g. 3200)
	BusBytes      int    // bytes per transfer (8 for DDR)
	CoreClockMHz  int    // core clock, to convert MT/s into core cycles
	LatencyCycles uint64 // fixed access latency (row access, controller) in core cycles
}

// Validate reports a descriptive error for malformed configurations.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("dram: channels must be positive, got %d", c.Channels)
	}
	if c.TransferMTps <= 0 || c.BusBytes <= 0 || c.CoreClockMHz <= 0 {
		return fmt.Errorf("dram: rate/bus/clock must be positive (%d, %d, %d)",
			c.TransferMTps, c.BusBytes, c.CoreClockMHz)
	}
	return nil
}

// TransferCycles returns the channel occupancy of one 64-byte line
// transfer in core cycles (rounded up, minimum 1).
func (c Config) TransferCycles() uint64 {
	transfers := 64 / c.BusBytes
	// cycles per transfer = coreMHz / MT/s; keep integer math exact by
	// scaling: total = transfers * coreMHz / MTps, rounded up.
	n := uint64(transfers) * uint64(c.CoreClockMHz)
	d := uint64(c.TransferMTps)
	cyc := (n + d - 1) / d
	if cyc == 0 {
		cyc = 1
	}
	return cyc
}

// Stats counts memory traffic.
type Stats struct {
	Requests         uint64 // total line requests serviced
	DemandRequests   uint64
	PrefetchRequests uint64
	BusyCycles       uint64 // total channel-busy cycles
}

// DRAM is the memory model. The zero value is unusable; construct with
// New.
//
// The controller gives demand reads priority over prefetches, as real
// memory controllers do: a demand arriving while prefetch transfers are
// queued bypasses the backlog and waits out at most (half of) the
// transfer already occupying the bus; prefetches queue behind
// everything. Without this, an aggressive prefetcher would add its
// whole traffic to every demand's latency, which no real system allows.
type DRAM struct {
	cfg        Config
	demandFree []uint64 // per-channel next-free cycle as seen by demands
	allFree    []uint64 // per-channel next-free cycle including prefetches
	xfer       uint64
	statsOn    bool
	stats      Stats
}

// New constructs the memory model; it panics on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DRAM{
		cfg:        cfg,
		demandFree: make([]uint64, cfg.Channels),
		allFree:    make([]uint64, cfg.Channels),
		xfer:       cfg.TransferCycles(),
	}
}

// Config returns the configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// EnableStats switches traffic accounting on or off.
func (d *DRAM) EnableStats(on bool) { d.statsOn = on }

// ResetStats zeroes the counters.
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// Access services one line request issued at `now` on the channel for
// lineID, returning the completion cycle. Demands queue only behind
// other demands (plus the transfer currently on the bus); prefetches
// queue behind all earlier traffic.
func (d *DRAM) Access(lineID uint64, now uint64, demand bool) uint64 {
	ch := int(lineID) % d.cfg.Channels
	var start uint64
	if demand {
		start = max(now, d.demandFree[ch])
		if d.allFree[ch] > start {
			// A prefetch transfer occupies the bus: wait out the
			// residual (half a transfer on average).
			start += d.xfer / 2
		}
		d.demandFree[ch] = start + d.xfer
		if d.allFree[ch] < d.demandFree[ch] {
			d.allFree[ch] = d.demandFree[ch]
		}
	} else {
		start = max(now, d.allFree[ch], d.demandFree[ch])
		d.allFree[ch] = start + d.xfer
	}
	if d.statsOn {
		d.stats.Requests++
		if demand {
			d.stats.DemandRequests++
		} else {
			d.stats.PrefetchRequests++
		}
		d.stats.BusyCycles += d.xfer
	}
	return start + d.xfer + d.cfg.LatencyCycles
}

// Reset clears channel occupancy (between runs).
func (d *DRAM) Reset() {
	for i := range d.demandFree {
		d.demandFree[i] = 0
		d.allFree[i] = 0
	}
}
