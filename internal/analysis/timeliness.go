package analysis

import (
	"fmt"
	"strings"

	"pmp/internal/prefetch"
	"pmp/internal/sim"
)

// LevelTimeliness pairs one cache level's lifecycle aggregate with the
// coverage it achieved against that level's demand misses.
type LevelTimeliness struct {
	Level    prefetch.Level
	Stats    sim.LifecycleStats
	Coverage float64
}

// TimelinessReport derives the evaluation metrics the paper's fill-level
// arbitration reasons about from one prefetcher's lifecycle snapshot:
// how many prefetches were timely, late, useless or redundant, how much
// slack the timely ones had, and which 4KB regions dominated the
// traffic.
type TimelinessReport struct {
	Prefetcher string
	Total      sim.LifecycleStats
	Open       uint64
	Levels     []LevelTimeliness     // levels with any activity, L1 outward
	TopRegions []sim.RegionLifecycle // hottest regions by issue count
}

// Timeliness builds one report per lifecycle snapshot in the result
// (empty when the run was not traced). topRegions bounds the per-report
// region list; <= 0 keeps none.
func Timeliness(res sim.Result, topRegions int) []TimelinessReport {
	demandMisses := [4]uint64{
		prefetch.LevelL1:  res.L1D.DemandMisses,
		prefetch.LevelL2:  res.L2C.DemandMisses,
		prefetch.LevelLLC: res.LLC.DemandMisses,
	}
	reports := make([]TimelinessReport, 0, len(res.Lifecycle))
	for _, sn := range res.Lifecycle {
		r := TimelinessReport{Prefetcher: sn.Prefetcher, Total: sn.Total, Open: sn.Open}
		for lv, st := range sn.PerLevel {
			if st == (sim.LifecycleStats{}) {
				continue
			}
			r.Levels = append(r.Levels, LevelTimeliness{
				Level:    prefetch.Level(lv),
				Stats:    st,
				Coverage: st.Coverage(demandMisses[lv]),
			})
		}
		if topRegions > 0 {
			n := min(topRegions, len(sn.Regions))
			r.TopRegions = sn.Regions[:n]
		}
		reports = append(reports, r)
	}
	return reports
}

// String renders the report as the block `pmpsim -trace-lifecycle`
// prints.
func (r TimelinessReport) String() string {
	var sb strings.Builder
	t := r.Total
	fmt.Fprintf(&sb, "lifecycle [%s]: %d issued, %d redundant, %d open\n",
		r.Prefetcher, t.Issued, t.Redundant, r.Open)
	fmt.Fprintf(&sb, "  timely %d / late %d / useless %d (accuracy %.1f%%, timely %.1f%% of used)\n",
		t.Timely, t.Late, t.Useless, 100*t.Accuracy(), 100*t.TimelyFraction())
	fmt.Fprintf(&sb, "  avg fill-to-use slack %.0f cyc, avg lateness %.0f cyc\n",
		t.AvgSlack(), t.AvgLateness())
	for _, lv := range r.Levels {
		s := lv.Stats
		fmt.Fprintf(&sb, "  %-3s: issued %d, timely/late/useless/redundant %d/%d/%d/%d, coverage %.1f%%, slack %.0f cyc\n",
			lv.Level, s.Issued, s.Timely, s.Late, s.Useless, s.Redundant, 100*lv.Coverage, s.AvgSlack())
	}
	for i, reg := range r.TopRegions {
		s := reg.Stats
		fmt.Fprintf(&sb, "  region#%d %#012x: issued %d, timely/late/useless %d/%d/%d\n",
			i+1, uint64(reg.Region), s.Issued, s.Timely, s.Late, s.Useless)
	}
	return sb.String()
}
