// Package analysis reproduces the paper's Section III pattern studies:
// pattern collision/duplicate rates per indexing feature (Table I),
// pattern frequency concentration (Fig 2), intra-cluster centroid
// diameter distance per feature (Fig 4), and offset heat maps (Fig 5).
//
// Patterns are captured with the same SMS framework configuration the
// paper uses for its motivation study: a 4x16 Filter Table, an 8x16
// Accumulation Table and 64-line (4KB) patterns.
package analysis

import (
	"math"
	"sort"

	"pmp/internal/mem"
	"pmp/internal/sms"
	"pmp/internal/trace"
)

// Corpus is a bag of captured patterns; each element is one occurrence.
type Corpus struct {
	Patterns []sms.Pattern
}

// CaptureConfig returns the paper's Section III capture geometry.
func CaptureConfig() sms.Config {
	return sms.Config{
		Region: mem.NewRegion(mem.DefaultRegion),
		FTSets: 4, FTWays: 16,
		ATSets: 8, ATWays: 16,
	}
}

// Capture replays a trace through the capture framework and collects
// every completed pattern (limit <= 0 captures the whole trace).
// Patterns close on Accumulation Table displacement and a final flush,
// mirroring the paper's trace-analysis setup.
func Capture(src trace.Source, limit int) *Corpus {
	fw := sms.New(CaptureConfig())
	c := &Corpus{}
	src.Reset()
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		_, _, closed := fw.Observe(r.PC, r.Addr)
		c.Patterns = append(c.Patterns, closed...)
		if limit > 0 && len(c.Patterns) >= limit {
			return c
		}
	}
	c.Patterns = append(c.Patterns, fw.Flush()...)
	return c
}

// CaptureAll merges the captures of several traces into one corpus.
func CaptureAll(srcs []trace.Source, limitPer int) *Corpus {
	c := &Corpus{}
	for _, s := range srcs {
		c.Patterns = append(c.Patterns, Capture(s, limitPer).Patterns...)
	}
	return c
}

// Feature is one of the indexing features compared in Table I / Fig 4.
type Feature int

// The features from the paper's Table I.
const (
	FeatPC Feature = iota
	FeatTriggerOffset
	FeatPCTrigger
	FeatAddress
	FeatPCAddress
)

// String implements fmt.Stringer using the paper's labels.
func (f Feature) String() string {
	switch f {
	case FeatPC:
		return "PC (32b)"
	case FeatTriggerOffset:
		return "Trigger Offset (6b)"
	case FeatPCTrigger:
		return "PC+Trigger Offset (38b)"
	case FeatAddress:
		return "Address (48b)"
	case FeatPCAddress:
		return "PC+Address (80b)"
	default:
		return "invalid"
	}
}

// Features lists all Table I features in presentation order.
func Features() []Feature {
	return []Feature{FeatPC, FeatTriggerOffset, FeatPCTrigger, FeatAddress, FeatPCAddress}
}

// Value returns the full-width feature value of a pattern, used for the
// collision/duplicate analysis.
func (f Feature) Value(p sms.Pattern) uint64 {
	pc32 := p.PC & 0xffffffff
	addr48 := uint64(p.TriggerAddr.Line()) & 0xffffffffffff
	switch f {
	case FeatPC:
		return pc32
	case FeatTriggerOffset:
		return uint64(p.Trigger)
	case FeatPCTrigger:
		return pc32<<mem.PageOffsetBits | uint64(p.Trigger)
	case FeatAddress:
		return addr48
	case FeatPCAddress:
		return mem.Mix64(pc32<<32 ^ addr48) // 80b feature folded to a unique-ish 64b key
	default:
		return 0
	}
}

// Hash6 clusters the feature into 64 sets, the Fig 4 / Fig 5 setup
// ("all the features have the same value range ... a width of 6 bits").
func (f Feature) Hash6(p sms.Pattern) int {
	if f == FeatTriggerOffset {
		return p.Trigger & (mem.LinesPerPage - 1)
	}
	return int(mem.FoldXOR(mem.Mix64(f.Value(p)), 6))
}

// patternKey identifies a pattern for identity comparisons. The paper
// compares patterns in their anchored form (the form that is actually
// stored and merged).
func patternKey(p sms.Pattern) uint64 { return p.Anchored().Bits() }

// PCRPDR computes the average Pattern Collision Rate (distinct patterns
// per feature value) and Pattern Duplicate Rate (feature values per
// distinct pattern) over the corpus — Table I.
func PCRPDR(c *Corpus, f Feature) (pcr, pdr float64) {
	byFeature := map[uint64]map[uint64]struct{}{}
	byPattern := map[uint64]map[uint64]struct{}{}
	for _, p := range c.Patterns {
		fv := f.Value(p)
		pk := patternKey(p)
		if byFeature[fv] == nil {
			byFeature[fv] = map[uint64]struct{}{}
		}
		byFeature[fv][pk] = struct{}{}
		if byPattern[pk] == nil {
			byPattern[pk] = map[uint64]struct{}{}
		}
		byPattern[pk][fv] = struct{}{}
	}
	if len(byFeature) == 0 {
		return 0, 0
	}
	var sum float64
	for _, pats := range byFeature {
		sum += float64(len(pats))
	}
	pcr = sum / float64(len(byFeature))
	sum = 0
	for _, fvs := range byPattern {
		sum += float64(len(fvs))
	}
	pdr = sum / float64(len(byPattern))
	return pcr, pdr
}

// FrequencyStats summarizes pattern occurrence concentration (Fig 2 and
// Observation 1's statistics).
type FrequencyStats struct {
	Occurrences int       // total pattern occurrences
	Distinct    int       // distinct patterns
	OnceFrac    float64   // fraction of distinct patterns seen exactly once
	TopShare    []float64 // cumulative share of the top-K patterns, per requested K
}

// Frequencies computes occurrence concentration for the given top-K
// list (e.g. 10, 100, 1000).
func Frequencies(c *Corpus, topK []int) FrequencyStats {
	counts := map[uint64]int{}
	for _, p := range c.Patterns {
		counts[patternKey(p)]++
	}
	st := FrequencyStats{Occurrences: len(c.Patterns), Distinct: len(counts)}
	if st.Distinct == 0 {
		st.TopShare = make([]float64, len(topK))
		return st
	}
	once := 0
	all := make([]int, 0, len(counts))
	for _, n := range counts {
		if n == 1 {
			once++
		}
		all = append(all, n)
	}
	st.OnceFrac = float64(once) / float64(st.Distinct)
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	for _, k := range topK {
		if k > len(all) {
			k = len(all)
		}
		sum := 0
		for _, n := range all[:k] {
			sum += n
		}
		st.TopShare = append(st.TopShare, float64(sum)/float64(st.Occurrences))
	}
	return st
}

// ICDD computes the average Intra-cluster Centroid Diameter Distance of
// the corpus clustered by the 6-bit feature (Fig 4, Equation 1): for
// each non-empty cluster, twice the mean Euclidean distance between its
// pattern vectors and their centroid; clusters are averaged unweighted.
func ICDD(c *Corpus, f Feature) float64 {
	n := mem.LinesPerPage
	type cluster struct {
		count int
		sum   []float64
		pats  []mem.BitVector
	}
	clusters := map[int]*cluster{}
	for _, p := range c.Patterns {
		key := f.Hash6(p)
		cl := clusters[key]
		if cl == nil {
			cl = &cluster{sum: make([]float64, n)}
			clusters[key] = cl
		}
		a := p.Anchored()
		for i := 0; i < n; i++ {
			if a.Test(i) {
				cl.sum[i]++
			}
		}
		cl.pats = append(cl.pats, a)
		cl.count++
	}
	if len(clusters) == 0 {
		return 0
	}
	var total float64
	for _, cl := range clusters {
		centroid := make([]float64, n)
		for i := range centroid {
			centroid[i] = cl.sum[i] / float64(cl.count)
		}
		var dist float64
		for _, a := range cl.pats {
			var d2 float64
			for i := 0; i < n; i++ {
				v := centroid[i]
				if a.Test(i) {
					v = 1 - v
				}
				d2 += v * v
			}
			dist += math.Sqrt(d2)
		}
		total += 2 * dist / float64(cl.count)
	}
	return total / float64(len(clusters))
}

// HeatMap builds the Fig 5 matrix for a feature: rows are the 64
// feature indexes, columns the 64 region offsets; cell (i, o) counts
// occurrences of patterns in cluster i that contain offset o. Offsets
// are the pattern's raw (unanchored) region offsets, matching the
// figure's x-axis.
func HeatMap(c *Corpus, f Feature) [64][64]float64 {
	var m [64][64]float64
	for _, p := range c.Patterns {
		row := f.Hash6(p) & 63
		for o := 0; o < mem.LinesPerPage; o++ {
			if p.Bits.Test(o) {
				m[row][o]++
			}
		}
	}
	return m
}

// RenderHeatMap renders the matrix as ASCII art, darker glyphs meaning
// more occurrences (log scale).
func RenderHeatMap(m [64][64]float64) string {
	shades := []byte(" .:-=+*#%@")
	var maxV float64
	for i := range m {
		for j := range m[i] {
			if m[i][j] > maxV {
				maxV = m[i][j]
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	buf := make([]byte, 0, 65*64)
	for i := range m {
		for j := range m[i] {
			v := math.Log1p(m[i][j]) / math.Log1p(maxV)
			idx := int(v * float64(len(shades)-1))
			buf = append(buf, shades[idx])
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}
