package analysis_test

import (
	"strings"
	"testing"

	"pmp/internal/analysis"
	"pmp/internal/prefetch"
	"pmp/internal/prefetchers/nextline"
	"pmp/internal/sim"
	"pmp/internal/trace"
)

func tracedStreamResult(t *testing.T) sim.Result {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Warmup = 10_000
	sys := sim.NewSystem(cfg, nextline.New(2))
	sys.EnableLifecycleTracing(nil)
	p := trace.DefaultStreamParams()
	p.Streams = 2
	return sys.Run(trace.NewStream("stream", 1, 60_000, p))
}

func TestTimelinessReportFromTracedRun(t *testing.T) {
	res := tracedStreamResult(t)
	reports := analysis.Timeliness(res, 3)
	if len(reports) != 1 {
		t.Fatalf("got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if r.Prefetcher != "nextline" {
		t.Errorf("prefetcher = %q", r.Prefetcher)
	}
	if r.Total.Issued == 0 || r.Total.Used() == 0 {
		t.Fatalf("stream run recorded no lifecycle activity: %+v", r.Total)
	}
	if len(r.TopRegions) == 0 || len(r.TopRegions) > 3 {
		t.Errorf("top regions = %d, want 1..3", len(r.TopRegions))
	}
	var sawL1 bool
	for _, lv := range r.Levels {
		if lv.Level == prefetch.LevelL1 {
			sawL1 = true
			if lv.Coverage <= 0 || lv.Coverage > 1 {
				t.Errorf("L1 coverage = %v, want (0, 1]", lv.Coverage)
			}
		}
	}
	if !sawL1 {
		t.Error("nextline report missing the L1 level")
	}

	out := r.String()
	for _, want := range []string{"lifecycle [nextline]", "timely", "late", "useless", "slack", "region#1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
}

func TestTimelinessEmptyWithoutTracing(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Warmup = 1_000
	res := sim.NewSystem(cfg, nextline.New(1)).Run(trace.NewStream("s", 1, 5_000, trace.DefaultStreamParams()))
	if got := analysis.Timeliness(res, 5); len(got) != 0 {
		t.Errorf("untraced run produced %d reports", len(got))
	}
}
