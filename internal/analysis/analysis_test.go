package analysis

import (
	"strings"
	"testing"

	"pmp/internal/mem"
	"pmp/internal/sms"
	"pmp/internal/trace"
)

// pat builds a pattern occurrence for synthetic corpora.
func pat(pc uint64, region uint64, trigger int, offsets ...int) sms.Pattern {
	bits := mem.NewBitVector(mem.LinesPerPage)
	bits.Set(trigger)
	for _, o := range offsets {
		bits.Set(o)
	}
	return sms.Pattern{
		RegionID:    region,
		PC:          pc,
		Trigger:     trigger,
		TriggerAddr: mem.Addr(region*mem.PageBytes + uint64(trigger)*mem.LineBytes),
		Bits:        bits,
	}
}

func TestCaptureProducesPatterns(t *testing.T) {
	src := trace.NewStream("s", 1, 30000, trace.StreamParams{
		Streams: 2, RestartProb: 0.001, WorkingSet: 4 << 20, GapMean: 2,
	})
	c := Capture(src, 0)
	if len(c.Patterns) == 0 {
		t.Fatal("no patterns captured")
	}
	for _, p := range c.Patterns {
		if p.Bits.Empty() {
			t.Fatal("captured empty pattern")
		}
		if !p.Bits.Test(p.Trigger) {
			t.Fatal("pattern missing its trigger bit")
		}
	}
}

func TestCaptureLimit(t *testing.T) {
	src := trace.NewStream("s", 1, 50000, trace.DefaultStreamParams())
	c := Capture(src, 5)
	if len(c.Patterns) < 5 {
		t.Errorf("limit produced %d patterns", len(c.Patterns))
	}
}

func TestCaptureAllMerges(t *testing.T) {
	mk := func(seed int64) trace.Source {
		return trace.NewStream("s", seed, 20000, trace.StreamParams{
			Streams: 2, RestartProb: 0.001, WorkingSet: 4 << 20, GapMean: 2,
		})
	}
	c := CaptureAll([]trace.Source{mk(1), mk(2)}, 0)
	c1 := Capture(mk(1), 0)
	if len(c.Patterns) <= len(c1.Patterns) {
		t.Error("merged corpus should be larger than a single capture")
	}
}

func TestFeatureValuesDistinguish(t *testing.T) {
	a := pat(0x400, 1, 3, 4)
	b := pat(0x404, 2, 3, 4) // same trigger, different PC and region
	if FeatTriggerOffset.Value(a) != FeatTriggerOffset.Value(b) {
		t.Error("trigger offset feature should match")
	}
	if FeatPC.Value(a) == FeatPC.Value(b) {
		t.Error("PC feature should differ")
	}
	if FeatAddress.Value(a) == FeatAddress.Value(b) {
		t.Error("address feature should differ")
	}
	if FeatPCAddress.Value(a) == FeatPCAddress.Value(b) {
		t.Error("PC+Address feature should differ")
	}
	if FeatPCTrigger.Value(a) == FeatPCTrigger.Value(b) {
		t.Error("PC+Trigger feature should differ")
	}
}

func TestFeatureStrings(t *testing.T) {
	for _, f := range Features() {
		if f.String() == "invalid" || f.String() == "" {
			t.Errorf("feature %d has no label", f)
		}
	}
	if Feature(99).String() != "invalid" {
		t.Error("unknown feature should be invalid")
	}
}

// The paper's Fig 3 example: pattern 1101 indexed by features A and B
// has PDR 2; feature B indexing patterns 1101 and 0101 has PCR 2.
func TestPCRPDRSemantics(t *testing.T) {
	// Feature = trigger offset. Two trigger offsets (A=0, B=1).
	// Pattern X = {0,2,3} anchored; appears under both triggers.
	// Pattern Y appears only under trigger 1.
	corpus := &Corpus{Patterns: []sms.Pattern{
		pat(1, 1, 0, 2, 3), // X under A
		pat(1, 2, 1, 3, 4), // X under B (anchored identical: +1, +2, +3)... choose carefully
		pat(1, 3, 1, 9),    // Y under B
	}}
	// Anchored(trigger 0, {0,2,3}) = bits {0,2,3}.
	// Anchored(trigger 1, {1,3,4}) = bits {0,2,3} as well -> same pattern.
	pcr, pdr := PCRPDR(corpus, FeatTriggerOffset)
	// Feature A -> {X}: 1 pattern. Feature B -> {X, Y}: 2 patterns.
	if pcr != 1.5 {
		t.Errorf("PCR = %v, want 1.5", pcr)
	}
	// Pattern X -> {A, B}: 2 values. Pattern Y -> {B}: 1 value.
	if pdr != 1.5 {
		t.Errorf("PDR = %v, want 1.5", pdr)
	}
}

func TestPCRPDREmptyCorpus(t *testing.T) {
	pcr, pdr := PCRPDR(&Corpus{}, FeatPC)
	if pcr != 0 || pdr != 0 {
		t.Error("empty corpus should give zeros")
	}
}

// Fine-grained features collide less but duplicate more — the Table I
// ordering — on a realistic workload mix.
func TestTableIOrderingHolds(t *testing.T) {
	srcs := []trace.Source{
		trace.NewStream("s", 1, 40000, trace.StreamParams{Streams: 2, RestartProb: 0.001, WorkingSet: 8 << 20, GapMean: 2}),
		trace.NewBackward("b", 2, 40000, trace.DefaultBackwardParams()),
		trace.NewStride("t", 3, 40000, trace.DefaultStrideParams()),
	}
	c := CaptureAll(srcs, 0)
	pcrTO, pdrTO := PCRPDR(c, FeatTriggerOffset)
	pcrPA, pdrPA := PCRPDR(c, FeatPCAddress)
	if pcrPA >= pcrTO {
		t.Errorf("PC+Address PCR (%.1f) should undercut Trigger Offset PCR (%.1f)", pcrPA, pcrTO)
	}
	if pdrPA <= pdrTO {
		t.Errorf("PC+Address PDR (%.1f) should exceed Trigger Offset PDR (%.1f)", pdrPA, pdrTO)
	}
}

func TestFrequenciesConcentration(t *testing.T) {
	// 10 occurrences of one pattern, 5 singletons.
	corpus := &Corpus{}
	for i := 0; i < 10; i++ {
		corpus.Patterns = append(corpus.Patterns, pat(1, uint64(i), 0, 1))
	}
	for i := 0; i < 5; i++ {
		corpus.Patterns = append(corpus.Patterns, pat(1, uint64(100+i), 0, 10+i, 20+i))
	}
	st := Frequencies(corpus, []int{1, 3})
	if st.Occurrences != 15 || st.Distinct != 6 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OnceFrac < 0.8 || st.OnceFrac > 0.85 { // 5/6
		t.Errorf("once fraction = %v, want 5/6", st.OnceFrac)
	}
	if st.TopShare[0] != 10.0/15 {
		t.Errorf("top-1 share = %v, want 2/3", st.TopShare[0])
	}
	if st.TopShare[1] != 12.0/15 {
		t.Errorf("top-3 share = %v, want 0.8", st.TopShare[1])
	}
}

func TestFrequenciesEmpty(t *testing.T) {
	st := Frequencies(&Corpus{}, []int{10})
	if st.Distinct != 0 || len(st.TopShare) != 1 || st.TopShare[0] != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestICDDZeroForIdenticalPatterns(t *testing.T) {
	corpus := &Corpus{}
	for i := 0; i < 20; i++ {
		corpus.Patterns = append(corpus.Patterns, pat(1, uint64(i), 5, 6, 7))
	}
	if got := ICDD(corpus, FeatTriggerOffset); got != 0 {
		t.Errorf("identical patterns should have ICDD 0, got %v", got)
	}
}

func TestICDDGrowsWithDivergence(t *testing.T) {
	similar := &Corpus{}
	diverse := &Corpus{}
	for i := 0; i < 40; i++ {
		similar.Patterns = append(similar.Patterns, pat(1, uint64(i), 0, 1, 2))
		// Diverse: random-ish offsets under the same trigger.
		diverse.Patterns = append(diverse.Patterns,
			pat(1, uint64(i), 0, 1+(i*7)%60, 1+(i*13)%60))
	}
	s := ICDD(similar, FeatTriggerOffset)
	d := ICDD(diverse, FeatTriggerOffset)
	if d <= s {
		t.Errorf("diverse ICDD (%v) should exceed similar (%v)", d, s)
	}
}

// Observation 3: over a mix of workloads (the paper averages 125
// traces), trigger-offset clustering yields lower ICDD than PC+Address
// or PC clustering.
func TestObservation3(t *testing.T) {
	srcs := []trace.Source{
		trace.NewStream("s", 1, 40000, trace.DefaultStreamParams()),
		trace.NewBackward("b", 7, 40000, trace.DefaultBackwardParams()),
		trace.NewStride("t", 3, 40000, trace.DefaultStrideParams()),
		trace.NewGraph("g", 5, 40000, trace.DefaultGraphParams()),
	}
	var to, pa, pc float64
	for _, src := range srcs {
		c := Capture(src, 0)
		to += ICDD(c, FeatTriggerOffset)
		pa += ICDD(c, FeatPCAddress)
		pc += ICDD(c, FeatPC)
	}
	if to >= pa {
		t.Errorf("trigger-offset ICDD (%.3f) should undercut PC+Address (%.3f)", to, pa)
	}
	if to >= pc {
		t.Errorf("trigger-offset ICDD (%.3f) should undercut PC (%.3f)", to, pc)
	}
}

func TestHeatMapCounts(t *testing.T) {
	corpus := &Corpus{Patterns: []sms.Pattern{
		pat(1, 1, 5, 6),
		pat(1, 2, 5, 6),
		pat(1, 3, 9),
	}}
	m := HeatMap(corpus, FeatTriggerOffset)
	if m[5][6] != 2 || m[5][5] != 2 {
		t.Errorf("row 5: offset 5 = %v, offset 6 = %v, want 2, 2", m[5][5], m[5][6])
	}
	if m[9][9] != 1 {
		t.Errorf("row 9 offset 9 = %v, want 1", m[9][9])
	}
	if m[0][0] != 0 {
		t.Error("untouched cell should be zero")
	}
}

func TestRenderHeatMap(t *testing.T) {
	var m [64][64]float64
	m[0][0] = 100
	s := RenderHeatMap(m)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 64 || len(lines[0]) != 64 {
		t.Fatalf("rendered %dx%d", len(lines), len(lines[0]))
	}
	if lines[0][0] != '@' {
		t.Errorf("hottest cell glyph = %c, want @", lines[0][0])
	}
	if lines[1][0] != ' ' {
		t.Errorf("cold cell glyph = %c, want space", lines[1][0])
	}
	// Degenerate all-zero map must not panic.
	var zero [64][64]float64
	RenderHeatMap(zero)
}

// The MCF-like trace's heat map shows big trigger offsets with backward
// (lower-offset) accesses: mass below the diagonal at high rows.
func TestHeatMapBackwardStructure(t *testing.T) {
	src := trace.NewBackward("b", 7, 60000, trace.BackwardParams{
		Walkers: 2, WorkingSet: 16 << 20, LocalProb: 0, GapMean: 2,
	})
	c := Capture(src, 0)
	m := HeatMap(c, FeatTriggerOffset)
	row := m[63] // patterns triggered at the top offset
	var below, above float64
	for o := 0; o < 63; o++ {
		below += row[o]
	}
	above = row[63]
	if below <= above {
		t.Errorf("backward walks should fill offsets below the trigger (below=%v, at=%v)", below, above)
	}
}
