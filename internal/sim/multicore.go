package sim

import (
	"pmp/internal/prefetch"
	"pmp/internal/trace"
)

// Multicore simulates N cores, each with a private L1D/L2 hierarchy and
// prefetcher, sharing an inclusive LLC and the DRAM channels — the
// paper's 4-core configuration (Table IV: 8GB, 2 channels). It is a
// Machine with trace replay enabled (multi-programmed-mix semantics).
type Multicore struct {
	mach *Machine
}

// NewMulticore builds an n-core system; prefetchers supplies one
// prefetcher per core. It panics on invalid configuration.
func NewMulticore(cfg Config, prefetchers []prefetch.Prefetcher) *Multicore {
	m := &Multicore{mach: NewMachine(cfg, prefetchers)}
	m.mach.SetTraceReplay(true)
	return m
}

// Machine returns the underlying N-core machine.
func (m *Multicore) Machine() *Machine { return m.mach }

// EnableLifecycleTracing turns on per-request prefetch lifecycle
// tracking on every core (see System.EnableLifecycleTracing). The
// shared LLC fans its lifecycle events out to every core's tracker;
// each tracker resolves only the requests it issued, so per-core
// snapshots stay attributable. The optional sink is shared by all
// cores.
func (m *Multicore) EnableLifecycleTracing(sink func(LifecycleEvent)) {
	m.mach.EnableLifecycleTracing(sink)
}

// LifecycleSnapshots returns each core's per-prefetcher lifecycle
// aggregates (nil when tracing is off); AggregateLifecycle sums them.
func (m *Multicore) LifecycleSnapshots() [][]LifecycleSnapshot {
	if m.mach.NumCores() == 0 || m.mach.Core(0).lt == nil {
		return nil
	}
	out := make([][]LifecycleSnapshot, m.mach.NumCores())
	for i := range out {
		out[i] = m.mach.Core(i).LifecycleSnapshots()
	}
	return out
}

// Run replays one trace per core, interleaved by simulated time (the
// core furthest behind in cycles steps next), and returns per-core
// results. Traces that end before a core finishes its measurement
// window are replayed from the start, as ChampSim does for
// multi-programmed mixes, up to cfg.MaxTraceWraps times. cfg.Measure
// must be > 0.
func (m *Multicore) Run(traces []trace.Source) []Result {
	return m.mach.Run(traces)
}
